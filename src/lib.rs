//! # pedsim — facade crate
//!
//! Re-exports the whole workspace behind one dependency. See the README for
//! the architecture overview and `DESIGN.md` for the paper mapping.

#![warn(missing_docs)]

pub use pedsim_core as core;
pub use pedsim_grid as grid;
pub use pedsim_obs as obs;
pub use pedsim_runner as runner;
pub use pedsim_scenario as scenario;
pub use pedsim_stats as stats;
pub use philox;
pub use simt;

/// The commonly-used surface of the whole workspace.
pub mod prelude {
    pub use pedsim_core::prelude::*;
    pub use pedsim_runner::prelude::*;
}

pub use prelude::*;
