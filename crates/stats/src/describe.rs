//! Descriptive statistics over `f64` samples.

/// Summary statistics of one sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Unbiased (n−1) sample variance; 0 for n < 2.
    pub var: f64,
    /// Sample standard deviation.
    pub sd: f64,
    /// Standard error of the mean.
    pub sem: f64,
    /// Smallest value.
    pub min: f64,
    /// Largest value.
    pub max: f64,
}

impl Summary {
    /// Summarise a sample (must be non-empty).
    pub fn of(xs: &[f64]) -> Self {
        assert!(!xs.is_empty(), "cannot summarise an empty sample");
        let n = xs.len();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n as f64 - 1.0)
        } else {
            0.0
        };
        let sd = var.sqrt();
        Self {
            n,
            mean,
            var,
            sd,
            sem: sd / (n as f64).sqrt(),
            min: xs.iter().copied().fold(f64::INFINITY, f64::min),
            max: xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }

    /// Normal-approximation confidence interval at `z` standard errors
    /// (e.g. 1.96 for 95 %).
    pub fn ci(&self, z: f64) -> (f64, f64) {
        (self.mean - z * self.sem, self.mean + z * self.sem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_summary() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sum of squared deviations = 32; var = 32/7.
        assert!((s.var - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn singleton() {
        let s = Summary::of(&[3.0]);
        assert_eq!(s.var, 0.0);
        assert_eq!(s.mean, 3.0);
    }

    #[test]
    fn ci_brackets_mean() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        let (lo, hi) = s.ci(1.96);
        assert!(lo < s.mean && s.mean < hi);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_rejected() {
        let _ = Summary::of(&[]);
    }
}
