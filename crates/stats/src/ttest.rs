//! Welch's and paired t-tests.

use crate::describe::Summary;
use crate::special::t_p_two_sided;

/// Result of a t-test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TTestResult {
    /// The t statistic.
    pub t: f64,
    /// Degrees of freedom (Welch–Satterthwaite for the unequal-variance
    /// test; n−1 for the paired test).
    pub df: f64,
    /// Two-sided p-value.
    pub p: f64,
    /// Difference of means (x − y).
    pub mean_diff: f64,
}

/// Welch's unequal-variance two-sample t-test.
///
/// Degenerate inputs (both variances zero) return `t = 0, p = 1` when the
/// means are equal, and `t = ±inf, p = 0` otherwise.
pub fn welch_t_test(x: &[f64], y: &[f64]) -> TTestResult {
    assert!(
        x.len() >= 2 && y.len() >= 2,
        "need at least 2 observations per sample"
    );
    let sx = Summary::of(x);
    let sy = Summary::of(y);
    let vx = sx.var / sx.n as f64;
    let vy = sy.var / sy.n as f64;
    let mean_diff = sx.mean - sy.mean;
    if vx + vy == 0.0 {
        let (t, p) = if mean_diff == 0.0 {
            (0.0, 1.0)
        } else {
            (f64::INFINITY.copysign(mean_diff), 0.0)
        };
        return TTestResult {
            t,
            df: (sx.n + sy.n - 2) as f64,
            p,
            mean_diff,
        };
    }
    let t = mean_diff / (vx + vy).sqrt();
    let df =
        (vx + vy) * (vx + vy) / (vx * vx / (sx.n as f64 - 1.0) + vy * vy / (sy.n as f64 - 1.0));
    TTestResult {
        t,
        df,
        p: t_p_two_sided(t, df),
        mean_diff,
    }
}

/// Paired-sample t-test on the per-pair differences.
pub fn paired_t_test(x: &[f64], y: &[f64]) -> TTestResult {
    assert_eq!(x.len(), y.len(), "paired test needs equal lengths");
    assert!(x.len() >= 2, "need at least 2 pairs");
    let diffs: Vec<f64> = x.iter().zip(y).map(|(a, b)| a - b).collect();
    let s = Summary::of(&diffs);
    let df = (s.n - 1) as f64;
    if s.sem == 0.0 {
        let (t, p) = if s.mean == 0.0 {
            (0.0, 1.0)
        } else {
            (f64::INFINITY.copysign(s.mean), 0.0)
        };
        return TTestResult {
            t,
            df,
            p,
            mean_diff: s.mean,
        };
    }
    let t = s.mean / s.sem;
    TTestResult {
        t,
        df,
        p: t_p_two_sided(t, df),
        mean_diff: s.mean,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_samples_not_significant() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let r = welch_t_test(&x, &x);
        assert!(r.t.abs() < 1e-12);
        assert!((r.p - 1.0).abs() < 1e-9);
    }

    #[test]
    fn clearly_shifted_samples_significant() {
        let x = [1.0, 1.1, 0.9, 1.05, 0.95, 1.02];
        let y = [5.0, 5.1, 4.9, 5.05, 4.95, 5.02];
        let r = welch_t_test(&x, &y);
        assert!(r.p < 1e-6, "p = {}", r.p);
        assert!(r.mean_diff < 0.0);
    }

    /// Hand-checked Welch example:
    /// x̄ = 20.6, s²ₓ = 1.3; ȳ = 22.2, s²ᵧ = 0.7 →
    /// t = −1.6/√0.4 = −2.529822…, df = 0.16/0.0218 = 7.33945…
    #[test]
    fn welch_hand_checked() {
        let x = [19.0, 20.0, 21.0, 22.0, 21.0];
        let y = [23.0, 22.0, 21.0, 22.0, 23.0];
        let r = welch_t_test(&x, &y);
        assert!((r.t + 1.6 / 0.4f64.sqrt()).abs() < 1e-9, "t = {}", r.t);
        assert!((r.df - 0.16 / 0.0218).abs() < 1e-9, "df = {}", r.df);
        // p for |t| = 2.53 at df ≈ 7.34 lands near 0.039.
        assert!((0.030..0.048).contains(&r.p), "p = {}", r.p);
    }

    /// Paired test, hand-checked: diffs = [0.3, 0.2, 0.4, 0.3],
    /// mean 0.3, var 0.02/3 → t = 0.3/(√(0.02/3)/2) = 7.348469…, df = 3.
    #[test]
    fn paired_hand_checked() {
        let x = [5.1, 4.9, 6.0, 5.5];
        let y = [4.8, 4.7, 5.6, 5.2];
        let r = paired_t_test(&x, &y);
        let expect_t = 0.3 / ((0.02f64 / 3.0).sqrt() / 2.0);
        assert!((r.t - expect_t).abs() < 1e-9, "t = {}", r.t);
        assert_eq!(r.df, 3.0);
        assert!((0.002..0.010).contains(&r.p), "p = {}", r.p);
    }

    #[test]
    fn degenerate_zero_variance() {
        let x = [2.0, 2.0, 2.0];
        let y = [2.0, 2.0, 2.0];
        let r = welch_t_test(&x, &y);
        assert_eq!(r.p, 1.0);
        let z = [3.0, 3.0, 3.0];
        let r = welch_t_test(&x, &z);
        assert_eq!(r.p, 0.0);
    }
}
