//! Small dense linear algebra for the GLM/OLS normal equations.
//!
//! Design matrices here have 2–4 columns, so a plain partial-pivoting
//! Gauss–Jordan on `p × p` systems is the right tool.

/// A dense row-major `p × p` matrix with solve/invert, sized for normal
/// equations (not a general-purpose linear algebra type).
#[derive(Debug, Clone, PartialEq)]
pub struct SmallMatrix {
    n: usize,
    a: Vec<f64>,
}

impl SmallMatrix {
    /// Zero matrix of side `n`.
    pub fn zeros(n: usize) -> Self {
        Self {
            n,
            a: vec![0.0; n * n],
        }
    }

    /// Side length.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Read element `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.a[i * self.n + j]
    }

    /// Write element `(i, j)`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.a[i * self.n + j] = v;
    }

    /// Add to element `(i, j)`.
    #[inline]
    pub fn add(&mut self, i: usize, j: usize, v: f64) {
        self.a[i * self.n + j] += v;
    }

    /// Solve `A x = b` by Gauss–Jordan with partial pivoting.
    /// Returns `None` when the system is (numerically) singular.
    pub fn solve(&self, b: &[f64]) -> Option<Vec<f64>> {
        assert_eq!(b.len(), self.n);
        let n = self.n;
        let mut m = self.a.clone();
        let mut x = b.to_vec();
        for col in 0..n {
            // Pivot.
            let pivot = (col..n).max_by(|&i, &j| {
                m[i * n + col]
                    .abs()
                    .partial_cmp(&m[j * n + col].abs())
                    .expect("finite")
            })?;
            if m[pivot * n + col].abs() < 1e-12 {
                return None;
            }
            if pivot != col {
                for j in 0..n {
                    m.swap(col * n + j, pivot * n + j);
                }
                x.swap(col, pivot);
            }
            let d = m[col * n + col];
            for j in 0..n {
                m[col * n + j] /= d;
            }
            x[col] /= d;
            for i in 0..n {
                if i != col {
                    let f = m[i * n + col];
                    if f != 0.0 {
                        for j in 0..n {
                            m[i * n + j] -= f * m[col * n + j];
                        }
                        x[i] -= f * x[col];
                    }
                }
            }
        }
        Some(x)
    }

    /// Matrix inverse (column-by-column solve); `None` when singular.
    #[allow(clippy::needless_range_loop)]
    pub fn inverse(&self) -> Option<SmallMatrix> {
        let n = self.n;
        let mut inv = SmallMatrix::zeros(n);
        for j in 0..n {
            let mut e = vec![0.0; n];
            e[j] = 1.0;
            let col = self.solve(&e)?;
            for i in 0..n {
                inv.set(i, j, col[i]);
            }
        }
        Some(inv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(n: usize, vals: &[f64]) -> SmallMatrix {
        let mut m = SmallMatrix::zeros(n);
        for i in 0..n {
            for j in 0..n {
                m.set(i, j, vals[i * n + j]);
            }
        }
        m
    }

    #[test]
    fn solves_2x2() {
        let m = mat(2, &[2.0, 1.0, 1.0, 3.0]);
        let x = m.solve(&[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solves_3x3_with_pivoting() {
        // First pivot is zero → requires row swap.
        let m = mat(3, &[0.0, 1.0, 2.0, 1.0, 0.0, 1.0, 2.0, 1.0, 0.0]);
        let b = [5.0, 2.0, 1.0];
        let x = m.solve(&b).unwrap();
        // Verify Ax = b.
        for (i, &bi) in b.iter().enumerate() {
            let s: f64 = (0..3).map(|j| m.get(i, j) * x[j]).sum();
            assert!((s - bi).abs() < 1e-10);
        }
    }

    #[test]
    fn singular_returns_none() {
        let m = mat(2, &[1.0, 2.0, 2.0, 4.0]);
        assert!(m.solve(&[1.0, 2.0]).is_none());
        assert!(m.inverse().is_none());
    }

    #[test]
    fn inverse_roundtrip() {
        let m = mat(3, &[4.0, 2.0, 1.0, 2.0, 5.0, 3.0, 1.0, 3.0, 6.0]);
        let inv = m.inverse().unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let s: f64 = (0..3).map(|k| m.get(i, k) * inv.get(k, j)).sum();
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((s - expect).abs() < 1e-10);
            }
        }
    }
}
