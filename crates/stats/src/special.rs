//! Special functions: `ln Γ`, the regularised incomplete beta, and `erf`.
//!
//! Implementations follow the classical numerical-analysis forms (Lanczos
//! approximation; Lentz's continued fraction for the incomplete beta;
//! a Chebyshev-fitted complementary error function). Accuracy targets are
//! ~1e-10 for `ln_gamma`/`inc_beta` and ~1e-7 for `erf` — comfortably
//! beyond what hypothesis-test p-values require.

/// Lanczos g=7, n=9 coefficients (published values; full precision intentional).
#[allow(clippy::excessive_precision)]
const LANCZOS: [f64; 9] = [
    0.999_999_999_999_809_93,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_13,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_571_6e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural log of the gamma function, `x > 0`.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1−x) = π / sin(πx)
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = LANCZOS[0];
    let t = x + 7.5;
    for (i, &c) in LANCZOS.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularised incomplete beta `I_x(a, b)`, for `a, b > 0`, `0 ≤ x ≤ 1`.
pub fn inc_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "inc_beta requires a, b > 0");
    assert!((0.0..=1.0).contains(&x), "inc_beta requires x in [0,1]");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    // front = Γ(a+b)/(Γ(a)Γ(b)) · xᵃ(1−x)ᵇ — symmetric under
    // (a,b,x) ↔ (b,a,1−x), so one evaluation serves both branches.
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    // Use the continued fraction in its fast-converging region.
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Lentz's modified continued fraction for the incomplete beta.
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-15;
    const FPMIN: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Error function, |error| ≲ 1.2e-7 (Numerical Recipes Chebyshev fit).
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// Complementary error function.
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.265_512_23
            + t * (1.000_023_68
                + t * (0.374_091_96
                    + t * (0.096_784_18
                        + t * (-0.186_288_06
                            + t * (0.278_868_07
                                + t * (-1.135_203_98
                                    + t * (1.488_515_87
                                        + t * (-0.822_152_23 + t * 0.170_872_77)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Standard normal CDF.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Two-sided p-value of a standard-normal statistic.
pub fn normal_p_two_sided(z: f64) -> f64 {
    erfc(z.abs() / std::f64::consts::SQRT_2)
}

/// CDF of Student's t with `df` degrees of freedom.
pub fn t_cdf(t: f64, df: f64) -> f64 {
    assert!(df > 0.0, "t_cdf requires df > 0");
    let x = df / (df + t * t);
    let p = 0.5 * inc_beta(0.5 * df, 0.5, x);
    if t >= 0.0 {
        1.0 - p
    } else {
        p
    }
}

/// Two-sided p-value of a t statistic with `df` degrees of freedom.
pub fn t_p_two_sided(t: f64, df: f64) -> f64 {
    let x = df / (df + t * t);
    inc_beta(0.5 * df, 0.5, x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1)=1, Γ(2)=1, Γ(5)=24, Γ(0.5)=√π
        assert!(ln_gamma(1.0).abs() < 1e-10);
        assert!(ln_gamma(2.0).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn inc_beta_identities() {
        // I_x(1,1) = x
        for x in [0.1, 0.25, 0.5, 0.9] {
            assert!((inc_beta(1.0, 1.0, x) - x).abs() < 1e-12);
        }
        // Symmetry point: I_0.5(a,a) = 0.5
        for a in [0.5, 1.0, 2.0, 7.5] {
            assert!((inc_beta(a, a, 0.5) - 0.5).abs() < 1e-12);
        }
        // I_x(2,1) = x² (CDF of Beta(2,1))
        assert!((inc_beta(2.0, 1.0, 0.3) - 0.09).abs() < 1e-12);
        // Complement identity.
        let v = inc_beta(3.0, 5.0, 0.4);
        let w = inc_beta(5.0, 3.0, 0.6);
        assert!((v + w - 1.0).abs() < 1e-12);
        assert_eq!(inc_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(inc_beta(2.0, 3.0, 1.0), 1.0);
    }

    #[test]
    fn erf_known_values() {
        // The Chebyshev fit carries ~1.2e-7 fractional error everywhere
        // (including a ~3e-8 offset at 0) — ample for p-values.
        assert!(erf(0.0).abs() < 1e-7);
        assert!((erf(1.0) - 0.842_700_792_9).abs() < 2e-7);
        assert!((erf(2.0) - 0.995_322_265_0).abs() < 2e-7);
        assert!((erf(-1.0) + 0.842_700_792_9).abs() < 2e-7);
        assert!((erfc(3.0) - 2.209_049_7e-5).abs() < 1e-7);
    }

    #[test]
    fn normal_cdf_quantiles() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.959_964) - 0.975).abs() < 1e-5);
        assert!((normal_cdf(-1.644_854) - 0.05).abs() < 1e-5);
    }

    #[test]
    fn t_cdf_matches_known_quantiles() {
        // t_{0.975, 10} = 2.228139
        assert!((t_cdf(2.228_139, 10.0) - 0.975).abs() < 1e-5);
        // t_{0.95, 5} = 2.015048
        assert!((t_cdf(2.015_048, 5.0) - 0.95).abs() < 1e-5);
        // With huge df, t → normal.
        assert!((t_cdf(1.96, 1e6) - normal_cdf(1.96)).abs() < 1e-4);
        // Symmetry.
        assert!((t_cdf(1.3, 7.0) + t_cdf(-1.3, 7.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn two_sided_p_values() {
        assert!((t_p_two_sided(2.228_139, 10.0) - 0.05).abs() < 1e-5);
        assert!((normal_p_two_sided(1.959_964) - 0.05).abs() < 1e-5);
        assert!((t_p_two_sided(0.0, 10.0) - 1.0).abs() < 1e-12);
    }
}
