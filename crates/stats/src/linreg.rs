//! Ordinary least squares, for trend summaries (e.g. "speedup declines
//! with population" in Figure 5c).

use crate::linalg::SmallMatrix;
use crate::special::t_p_two_sided;

/// A fitted OLS line (or plane).
#[derive(Debug, Clone)]
pub struct OlsFit {
    /// Coefficients `[intercept, slopes…]`.
    pub coef: Vec<f64>,
    /// Standard errors.
    pub se: Vec<f64>,
    /// t statistics.
    pub t: Vec<f64>,
    /// Two-sided p-values (t distribution, n − p df).
    pub p: Vec<f64>,
    /// Coefficient of determination.
    pub r2: f64,
    /// Residual degrees of freedom.
    pub df: f64,
}

#[allow(clippy::needless_range_loop)]
/// Fit `y ~ 1 + x₁ + …` by OLS. `xs[i]` is observation i's covariates
/// (without intercept). Returns `None` if the normal equations are
/// singular or there are not more observations than coefficients.
pub fn ols(xs: &[Vec<f64>], y: &[f64]) -> Option<OlsFit> {
    let n = y.len();
    if n == 0 || xs.len() != n {
        return None;
    }
    let k = xs[0].len();
    let p = k + 1;
    if n <= p || xs.iter().any(|x| x.len() != k) {
        return None;
    }
    let design = |i: usize, j: usize| -> f64 {
        if j == 0 {
            1.0
        } else {
            xs[i][j - 1]
        }
    };
    let mut xtx = SmallMatrix::zeros(p);
    let mut xty = vec![0.0; p];
    for i in 0..n {
        for a in 0..p {
            let xa = design(i, a);
            for b in a..p {
                xtx.add(a, b, xa * design(i, b));
            }
            xty[a] += xa * y[i];
        }
    }
    for a in 0..p {
        for b in 0..a {
            let v = xtx.get(b, a);
            xtx.set(a, b, v);
        }
    }
    let coef = xtx.solve(&xty)?;
    let cov = xtx.inverse()?;

    let mean_y = y.iter().sum::<f64>() / n as f64;
    let mut ss_res = 0.0;
    let mut ss_tot = 0.0;
    for i in 0..n {
        let fit: f64 = (0..p).map(|j| design(i, j) * coef[j]).sum();
        ss_res += (y[i] - fit) * (y[i] - fit);
        ss_tot += (y[i] - mean_y) * (y[i] - mean_y);
    }
    let df = (n - p) as f64;
    let sigma2 = ss_res / df;
    let se: Vec<f64> = (0..p)
        .map(|j| (sigma2 * cov.get(j, j)).max(0.0).sqrt())
        .collect();
    let t: Vec<f64> = coef
        .iter()
        .zip(&se)
        .map(|(c, s)| if *s > 0.0 { c / s } else { 0.0 })
        .collect();
    let pvals: Vec<f64> = t.iter().map(|&t| t_p_two_sided(t, df)).collect();
    let r2 = if ss_tot > 0.0 {
        1.0 - ss_res / ss_tot
    } else {
        1.0
    };
    Some(OlsFit {
        coef,
        se,
        t,
        p: pvals,
        r2,
        df,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..10).map(|i| 3.0 + 2.0 * i as f64).collect();
        let fit = ols(&xs, &y).unwrap();
        assert!((fit.coef[0] - 3.0).abs() < 1e-10);
        assert!((fit.coef[1] - 2.0).abs() < 1e-10);
        assert!((fit.r2 - 1.0).abs() < 1e-12);
    }

    /// Anscombe's first quartet: slope 0.5001, intercept 3.0001, R² 0.6665.
    #[test]
    fn anscombe_first_quartet() {
        let x = [10.0, 8.0, 13.0, 9.0, 11.0, 14.0, 6.0, 4.0, 12.0, 7.0, 5.0];
        let y = [
            8.04, 6.95, 7.58, 8.81, 8.33, 9.96, 7.24, 4.26, 10.84, 4.82, 5.68,
        ];
        let xs: Vec<Vec<f64>> = x.iter().map(|&v| vec![v]).collect();
        let fit = ols(&xs, &y).unwrap();
        assert!((fit.coef[1] - 0.5001).abs() < 1e-3, "{:?}", fit.coef);
        assert!((fit.coef[0] - 3.0001).abs() < 1e-3, "{:?}", fit.coef);
        assert!((fit.r2 - 0.6665).abs() < 1e-3, "r2 = {}", fit.r2);
    }

    #[test]
    fn flat_data_slope_not_significant() {
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..20)
            .map(|i| if i % 2 == 0 { 5.1 } else { 4.9 })
            .collect();
        let fit = ols(&xs, &y).unwrap();
        assert!(fit.p[1] > 0.3, "slope p = {}", fit.p[1]);
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(ols(&[], &[]).is_none());
        let xs = vec![vec![1.0], vec![1.0]];
        assert!(ols(&xs, &[1.0, 2.0]).is_none()); // n == p
    }
}
