//! Binomial generalized linear model with logit link, fitted by IRLS.
//!
//! Reproduces the paper's Figure-6b analysis: R's
//! `glm(cbind(crossed, total - crossed) ~ agents + is_gpu, family = binomial)`
//! followed by a significance test on the `is_gpu` coefficient
//! (paper: p = 0.6145, i.e. no CPU/GPU difference).
//!
//! The fit is classical iteratively reweighted least squares on grouped
//! binomial data; coefficient significance is the Wald test (the statistic
//! R's `summary.glm` prints as "z value" and the paper calls a t-test).

use crate::linalg::SmallMatrix;
use crate::special::normal_p_two_sided;

/// One grouped-binomial observation.
#[derive(Debug, Clone)]
struct Obs {
    /// Covariates (without intercept; the model adds it).
    x: Vec<f64>,
    /// Successes (agents that crossed).
    y: f64,
    /// Trials (agents present).
    n: f64,
}

/// Why a fit failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GlmError {
    /// Fewer observations than coefficients.
    TooFewObservations,
    /// Covariate dimensions differ between observations.
    RaggedDesign,
    /// The weighted normal equations became singular (e.g. perfect
    /// separation or a constant covariate).
    Singular,
}

impl std::fmt::Display for GlmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GlmError::TooFewObservations => write!(f, "fewer observations than coefficients"),
            GlmError::RaggedDesign => write!(f, "observations have differing covariate counts"),
            GlmError::Singular => {
                write!(f, "normal equations singular (separation or collinearity)")
            }
        }
    }
}

impl std::error::Error for GlmError {}

/// A fitted binomial GLM.
#[derive(Debug, Clone)]
pub struct GlmFit {
    /// Coefficients: `[intercept, covariates…]`.
    pub coef: Vec<f64>,
    /// Wald standard errors per coefficient.
    pub se: Vec<f64>,
    /// Wald statistics `coef / se`.
    pub z: Vec<f64>,
    /// Two-sided p-values of the Wald statistics.
    pub p: Vec<f64>,
    /// Residual deviance.
    pub deviance: f64,
    /// IRLS iterations used.
    pub iterations: usize,
    /// Whether the coefficient change dropped below tolerance.
    pub converged: bool,
}

/// Builder/fitter for grouped binomial data.
#[derive(Debug, Clone, Default)]
pub struct BinomialGlm {
    rows: Vec<Obs>,
}

impl BinomialGlm {
    /// Empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one observation: `successes` of `trials` at `covariates`.
    pub fn push(&mut self, covariates: &[f64], successes: u64, trials: u64) -> &mut Self {
        assert!(successes <= trials, "successes exceed trials");
        assert!(trials > 0, "zero-trial observation");
        self.rows.push(Obs {
            x: covariates.to_vec(),
            y: successes as f64,
            n: trials as f64,
        });
        self
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no observations were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Fit by IRLS (max 50 iterations, tolerance 1e-10 on coefficients).
    #[allow(clippy::needless_range_loop)]
    pub fn fit(&self) -> Result<GlmFit, GlmError> {
        let k = match self.rows.first() {
            None => return Err(GlmError::TooFewObservations),
            Some(o) => o.x.len(),
        };
        if self.rows.iter().any(|o| o.x.len() != k) {
            return Err(GlmError::RaggedDesign);
        }
        let p = k + 1; // + intercept
        if self.rows.len() < p {
            return Err(GlmError::TooFewObservations);
        }

        const MAX_ITER: usize = 50;
        const TOL: f64 = 1e-10;
        const W_FLOOR: f64 = 1e-10;

        let design = |o: &Obs, j: usize| -> f64 {
            if j == 0 {
                1.0
            } else {
                o.x[j - 1]
            }
        };

        let mut beta = vec![0.0; p];
        let mut iterations = 0;
        let mut converged = false;
        let mut xtwx = SmallMatrix::zeros(p);
        for _ in 0..MAX_ITER {
            iterations += 1;
            xtwx = SmallMatrix::zeros(p);
            let mut xtwz = vec![0.0; p];
            for o in &self.rows {
                let eta: f64 = (0..p).map(|j| design(o, j) * beta[j]).sum();
                let mu = 1.0 / (1.0 + (-eta).exp());
                let w = (o.n * mu * (1.0 - mu)).max(W_FLOOR);
                let z = eta + (o.y - o.n * mu) / w;
                for a in 0..p {
                    let xa = design(o, a);
                    for b in a..p {
                        xtwx.add(a, b, w * xa * design(o, b));
                    }
                    xtwz[a] += w * xa * z;
                }
            }
            // Mirror the upper triangle.
            for a in 0..p {
                for b in 0..a {
                    let v = xtwx.get(b, a);
                    xtwx.set(a, b, v);
                }
            }
            let new_beta = xtwx.solve(&xtwz).ok_or(GlmError::Singular)?;
            let delta = beta
                .iter()
                .zip(&new_beta)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            beta = new_beta;
            if delta < TOL {
                converged = true;
                break;
            }
        }

        let cov = xtwx.inverse().ok_or(GlmError::Singular)?;
        let se: Vec<f64> = (0..p).map(|j| cov.get(j, j).max(0.0).sqrt()).collect();
        let z: Vec<f64> = beta
            .iter()
            .zip(&se)
            .map(|(b, s)| if *s > 0.0 { b / s } else { 0.0 })
            .collect();
        let pvals: Vec<f64> = z.iter().map(|&z| normal_p_two_sided(z)).collect();

        // Residual deviance: 2 Σ [y ln(y/μ̂) + (n−y) ln((n−y)/(n−μ̂))].
        let mut deviance = 0.0;
        for o in &self.rows {
            let eta: f64 = (0..p).map(|j| design(o, j) * beta[j]).sum();
            let mu = o.n / (1.0 + (-eta).exp());
            let term = |obs: f64, fit: f64| -> f64 {
                if obs <= 0.0 {
                    0.0
                } else {
                    obs * (obs / fit.max(1e-300)).ln()
                }
            };
            deviance += 2.0 * (term(o.y, mu) + term(o.n - o.y, o.n - mu));
        }

        Ok(GlmFit {
            coef: beta,
            se,
            z,
            p: pvals,
            deviance,
            iterations,
            converged,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two-group design has a closed-form MLE:
    /// intercept = logit(p₀), slope = logit(p₁) − logit(p₀),
    /// SE(slope) = √(1/(n₀p₀q₀) + 1/(n₁p₁q₁)).
    #[test]
    fn two_group_exact_mle() {
        let mut m = BinomialGlm::new();
        m.push(&[0.0], 30, 100).push(&[1.0], 60, 100);
        let fit = m.fit().expect("fit");
        assert!(fit.converged);
        let logit = |p: f64| (p / (1.0 - p)).ln();
        assert!((fit.coef[0] - logit(0.3)).abs() < 1e-8, "{:?}", fit.coef);
        assert!((fit.coef[1] - (logit(0.6) - logit(0.3))).abs() < 1e-8);
        let se_expect = (1.0f64 / (100.0 * 0.3 * 0.7) + 1.0 / (100.0 * 0.6 * 0.4)).sqrt();
        assert!((fit.se[1] - se_expect).abs() < 1e-8, "{:?}", fit.se);
        // Saturated two-parameter model on two observations: deviance 0.
        assert!(fit.deviance.abs() < 1e-8);
    }

    /// With data generated exactly on the model surface, IRLS recovers the
    /// generating coefficients.
    #[test]
    fn recovers_continuous_coefficients() {
        let (b0, b1) = (0.5f64, 0.8f64);
        let mut m = BinomialGlm::new();
        let n = 1_000_000u64;
        for x in [-2.0, -1.0, 0.0, 1.0, 2.0] {
            let p = 1.0 / (1.0 + (-(b0 + b1 * x)).exp());
            let y = (n as f64 * p).round() as u64;
            m.push(&[x], y, n);
        }
        let fit = m.fit().expect("fit");
        assert!((fit.coef[0] - b0).abs() < 1e-3, "{:?}", fit.coef);
        assert!((fit.coef[1] - b1).abs() < 1e-3, "{:?}", fit.coef);
    }

    /// An indicator with no real effect gets a large p-value; the paper's
    /// Figure 6b conclusion has this form.
    #[test]
    fn null_indicator_not_significant() {
        let mut m = BinomialGlm::new();
        // Same crossing profile for "cpu" (0) and "gpu" (1) across sizes.
        for (x, frac) in [(1.0, 0.95), (2.0, 0.8), (3.0, 0.5), (4.0, 0.2)] {
            for ind in [0.0, 1.0] {
                let n = 1000u64;
                let y = (n as f64 * frac) as u64;
                m.push(&[x, ind], y, n);
            }
        }
        let fit = m.fit().expect("fit");
        assert!(fit.p[2] > 0.9, "indicator p = {}", fit.p[2]);
        // The size covariate, in contrast, matters enormously.
        assert!(fit.p[1] < 1e-10, "size p = {}", fit.p[1]);
    }

    #[test]
    fn real_effect_is_detected() {
        let mut m = BinomialGlm::new();
        for (x, f_cpu, f_gpu) in [(1.0, 0.9, 0.6), (2.0, 0.8, 0.5), (3.0, 0.7, 0.4)] {
            m.push(&[x, 0.0], (1000.0 * f_cpu) as u64, 1000);
            m.push(&[x, 1.0], (1000.0 * f_gpu) as u64, 1000);
        }
        let fit = m.fit().expect("fit");
        assert!(fit.p[2] < 1e-10, "indicator p = {}", fit.p[2]);
        assert!(fit.coef[2] < 0.0);
    }

    #[test]
    fn error_cases() {
        assert_eq!(
            BinomialGlm::new().fit().unwrap_err(),
            GlmError::TooFewObservations
        );
        let mut ragged = BinomialGlm::new();
        ragged.push(&[1.0], 1, 2).push(&[1.0, 2.0], 1, 2);
        assert_eq!(ragged.fit().unwrap_err(), GlmError::RaggedDesign);
        let mut collinear = BinomialGlm::new();
        // Constant covariate == intercept → singular.
        collinear
            .push(&[1.0], 10, 20)
            .push(&[1.0], 12, 20)
            .push(&[1.0], 8, 20);
        assert_eq!(collinear.fit().unwrap_err(), GlmError::Singular);
    }
}
