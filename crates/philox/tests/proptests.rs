//! Property-based tests for the Philox generator.

use philox::{draw4, philox4x32, ClampedNormal, Philox4x32, StreamRng};
use proptest::prelude::*;

proptest! {
    /// The bijection is a pure function: same inputs, same outputs.
    #[test]
    fn deterministic(ctr in any::<[u32; 4]>(), key in any::<[u32; 2]>()) {
        prop_assert_eq!(philox4x32(ctr, key), philox4x32(ctr, key));
    }

    /// Flipping any single counter bit changes the output block.
    #[test]
    fn counter_avalanche(ctr in any::<[u32; 4]>(), key in any::<[u32; 2]>(), bit in 0usize..128) {
        let mut flipped = ctr;
        flipped[bit / 32] ^= 1 << (bit % 32);
        prop_assert_ne!(philox4x32(ctr, key), philox4x32(flipped, key));
    }

    /// Flipping any single key bit changes the output block.
    #[test]
    fn key_avalanche(ctr in any::<[u32; 4]>(), key in any::<[u32; 2]>(), bit in 0usize..64) {
        let mut flipped = key;
        flipped[bit / 32] ^= 1 << (bit % 32);
        prop_assert_ne!(philox4x32(ctr, key), philox4x32(ctr, flipped));
    }

    /// Skip-ahead equals sequential stepping for arbitrary distances.
    #[test]
    fn advance_consistency(key in any::<[u32; 2]>(), n in 0u64..500) {
        let mut seq = Philox4x32::new(key);
        for _ in 0..n {
            seq.next_block();
        }
        let mut skip = Philox4x32::new(key);
        skip.advance(n);
        prop_assert_eq!(seq.counter(), skip.counter());
    }

    /// Stream draws never depend on evaluation order: the stateless draw of
    /// block k equals the k-th block of the stateful stream.
    #[test]
    fn stream_blocks_match_stateless(seed in any::<u64>(), stream in any::<u64>(), k in 0u64..64) {
        let mut s = StreamRng::new(seed, stream);
        let mut last = [0u32; 4];
        for i in 0..=k {
            let b = [s.next_u32(), s.next_u32(), s.next_u32(), s.next_u32()];
            if i == k {
                last = b;
            }
        }
        prop_assert_eq!(last, draw4(seed, stream, k));
    }

    /// Bounded draws honour their bound.
    #[test]
    fn bounded_in_range(seed in any::<u64>(), bound in 1u32..100) {
        let mut s = StreamRng::new(seed, 0);
        for _ in 0..64 {
            prop_assert!(s.bounded_u32(bound) < bound);
        }
    }

    /// LEM rank draws stay within [0, max_rank].
    #[test]
    fn clamped_normal_in_range(seed in any::<u64>(), sigma in 0.1f64..5.0, max_rank in 0u32..8) {
        let cn = ClampedNormal::new(sigma);
        let mut s = StreamRng::new(seed, 1);
        for _ in 0..64 {
            prop_assert!(cn.rank(s.next_u32(), s.next_u32(), max_rank) <= max_rank);
        }
    }

    /// Uniforms live in the unit interval.
    #[test]
    fn uniforms_unit_interval(seed in any::<u64>()) {
        let mut s = StreamRng::new(seed, 2);
        for _ in 0..64 {
            let u = s.uniform_f32();
            prop_assert!((0.0..1.0).contains(&u));
        }
    }
}
