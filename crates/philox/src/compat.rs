//! `rand` ecosystem interop.
//!
//! Property-based tests (proptest) and any downstream code written against
//! `rand` traits can use [`PhiloxRng`], a thin adapter over
//! [`crate::StreamRng`].

use std::convert::Infallible;

use rand::rand_core::TryRng;
use rand::SeedableRng;

use crate::StreamRng;

/// A [`rand::Rng`]-compatible adapter over a Philox stream.
///
/// Implements the infallible [`TryRng`], which gives the blanket
/// [`rand::Rng`] implementation.
#[derive(Debug, Clone)]
pub struct PhiloxRng(StreamRng);

impl PhiloxRng {
    /// Wrap an explicit `(seed, stream)` pair.
    pub fn new(seed: u64, stream: u64) -> Self {
        Self(StreamRng::new(seed, stream))
    }

    /// Access the underlying stream.
    pub fn stream(&mut self) -> &mut StreamRng {
        &mut self.0
    }
}

impl TryRng for PhiloxRng {
    type Error = Infallible;

    #[inline]
    fn try_next_u32(&mut self) -> Result<u32, Infallible> {
        Ok(self.0.next_u32())
    }

    #[inline]
    fn try_next_u64(&mut self) -> Result<u64, Infallible> {
        Ok(self.0.next_u64())
    }

    fn try_fill_bytes(&mut self, dst: &mut [u8]) -> Result<(), Infallible> {
        let mut chunks = dst.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.0.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.0.next_u32().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
        Ok(())
    }
}

impl SeedableRng for PhiloxRng {
    type Seed = [u8; 16];

    fn from_seed(seed: Self::Seed) -> Self {
        let k = u64::from_le_bytes(seed[..8].try_into().expect("8 bytes"));
        let s = u64::from_le_bytes(seed[8..].try_into().expect("8 bytes"));
        Self::new(k, s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn fill_bytes_matches_words() {
        let mut a = PhiloxRng::new(1, 2);
        let mut b = PhiloxRng::new(1, 2);
        let mut buf = [0u8; 10];
        a.fill_bytes(&mut buf);
        let w0 = b.next_u32().to_le_bytes();
        let w1 = b.next_u32().to_le_bytes();
        let w2 = b.next_u32().to_le_bytes();
        assert_eq!(&buf[..4], &w0);
        assert_eq!(&buf[4..8], &w1);
        assert_eq!(&buf[8..], &w2[..2]);
    }

    #[test]
    fn from_seed_roundtrip() {
        let mut seed = [0u8; 16];
        seed[..8].copy_from_slice(&42u64.to_le_bytes());
        seed[8..].copy_from_slice(&7u64.to_le_bytes());
        let mut a = PhiloxRng::from_seed(seed);
        let mut b = PhiloxRng::new(42, 7);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
