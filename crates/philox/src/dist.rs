//! Distribution transforms over raw Philox words.
//!
//! All transforms are pure functions of their input words so that kernels
//! can combine them with the stateless [`crate::draw4`] API and stay
//! schedule-independent.

/// Map a 32-bit word to `f32` uniform in `[0, 1)` using the high 24 bits.
#[inline(always)]
pub fn uniform_f32(w: u32) -> f32 {
    // 2^-24; the high bits of a multiplicative generator are the strongest.
    (w >> 8) as f32 * (1.0 / 16_777_216.0)
}

/// Map a 64-bit word to `f64` uniform in `[0, 1)` using the high 53 bits.
#[inline(always)]
pub fn uniform_f64(w: u64) -> f64 {
    (w >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
}

/// Lemire's nearly-divisionless bounded integer: returns `(value, accept)`.
///
/// When `accept` is false the caller must retry with a fresh word (the
/// rejection zone removes modulo bias). For `bound` ≤ 8, rejection occurs
/// with probability < 2⁻²⁹.
#[inline(always)]
pub fn lemire_bounded(w: u32, bound: u32) -> (u32, bool) {
    let m = u64::from(w) * u64::from(bound);
    let lo = m as u32;
    if lo < bound {
        // Threshold = 2^32 mod bound, computed without u64 division by bound
        // being hot: bound is tiny here so a plain rem is fine.
        let threshold = bound.wrapping_neg() % bound;
        if lo < threshold {
            return ((m >> 32) as u32, false);
        }
    }
    ((m >> 32) as u32, true)
}

/// Box–Muller from two 32-bit words: returns one standard-normal `f32`.
#[inline]
pub fn normal_f32(a: u32, b: u32) -> f32 {
    let (z0, _) = box_muller(f64::from(uniform_f32(a)), f64::from(uniform_f32(b)));
    z0 as f32
}

/// Box–Muller from two 64-bit words: returns one standard-normal `f64`.
#[inline]
pub fn normal_f64(a: u64, b: u64) -> f64 {
    let (z0, _) = box_muller(uniform_f64(a), uniform_f64(b));
    z0
}

/// The Box–Muller transform: two uniforms in `[0,1)` → two independent
/// standard normals. `u1` is nudged away from zero to keep `ln` finite.
#[inline]
pub fn box_muller(u1: f64, u2: f64) -> (f64, f64) {
    let u1 = u1.max(1e-300);
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = 2.0 * std::f64::consts::PI * u2;
    (r * theta.cos(), r * theta.sin())
}

/// The paper's LEM selection draw: a normal sample with "negative numbers
/// converted to zeroes and numbers more than the highest rank rounded off to
/// the highest" (§II.A). Encapsulated here so the CPU and GPU engines share
/// one definition.
#[derive(Debug, Clone, Copy)]
pub struct ClampedNormal {
    /// Standard deviation of the underlying normal (the paper does not give
    /// one; see `pedsim-core::params::LemParams::sigma`).
    pub sigma: f64,
}

impl ClampedNormal {
    /// Create a clamped-normal sampler with the given spread.
    #[inline]
    pub fn new(sigma: f64) -> Self {
        Self { sigma }
    }

    /// Map two raw words to a rank in `[0, max_rank]` (inclusive).
    ///
    /// Negative draws clamp to rank 0 (the least-distance cell); draws past
    /// `max_rank` clamp to `max_rank`; otherwise the draw is rounded to the
    /// nearest integer rank.
    #[inline]
    pub fn rank(&self, a: u32, b: u32, max_rank: u32) -> u32 {
        let z = f64::from(normal_f32(a, b)) * self.sigma;
        if z <= 0.0 {
            0
        } else {
            let r = z.round();
            if r >= f64::from(max_rank) {
                max_rank
            } else {
                r as u32
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StreamRng;

    #[test]
    fn uniform_f32_bounds() {
        assert_eq!(uniform_f32(0), 0.0);
        assert!(uniform_f32(u32::MAX) < 1.0);
    }

    #[test]
    fn uniform_f64_bounds() {
        assert_eq!(uniform_f64(0), 0.0);
        assert!(uniform_f64(u64::MAX) < 1.0);
    }

    #[test]
    fn lemire_small_bounds_exact_distribution() {
        // For bound=3, count acceptance-region hits per value over the whole
        // 16-bit prefix space scaled down — cheap smoke check of uniformity.
        let mut counts = [0u32; 3];
        for w in (0..1u64 << 20).map(|x| (x << 12) as u32) {
            let (v, ok) = lemire_bounded(w, 3);
            if ok {
                counts[v as usize] += 1;
            }
        }
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        assert!(max / min < 1.01, "counts {counts:?}");
    }

    #[test]
    fn box_muller_zero_u1_is_finite() {
        let (z0, z1) = box_muller(0.0, 0.25);
        assert!(z0.is_finite() && z1.is_finite());
    }

    #[test]
    fn clamped_normal_rank_bounds() {
        let cn = ClampedNormal::new(1.5);
        let mut s = StreamRng::new(7, 7);
        for _ in 0..5000 {
            let r = cn.rank(s.next_u32(), s.next_u32(), 7);
            assert!(r <= 7);
        }
    }

    #[test]
    fn clamped_normal_prefers_rank_zero() {
        // Half of the normal mass is negative → rank 0 at least ~50%.
        let cn = ClampedNormal::new(1.0);
        let mut s = StreamRng::new(3, 1);
        let n = 10_000;
        let zeros = (0..n)
            .filter(|_| cn.rank(s.next_u32(), s.next_u32(), 7) == 0)
            .count();
        assert!(
            zeros as f64 > 0.55 * n as f64,
            "rank-0 fraction {}",
            zeros as f64 / n as f64
        );
    }

    #[test]
    fn clamped_normal_max_rank_zero_degenerates() {
        let cn = ClampedNormal::new(10.0);
        let mut s = StreamRng::new(11, 0);
        for _ in 0..100 {
            assert_eq!(cn.rank(s.next_u32(), s.next_u32(), 0), 0);
        }
    }
}
