//! CURAND-style streams on top of the Philox bijection.
//!
//! A stream is identified by `(seed, stream id)`. The 64-bit seed becomes
//! the Philox key; the 64-bit stream id occupies the high counter words, so
//! distinct streams are distinct counter subspaces of the same bijection and
//! never overlap. Within a stream the low 64 counter bits count draws.
//!
//! This layout mirrors `curand_init(seed, subsequence, offset, &state)`:
//! `seed → key`, `stream → subsequence`, `counter → offset`.

use crate::philox::philox4x32;

#[inline(always)]
fn ctr_for(stream: u64, counter: u64) -> [u32; 4] {
    [
        counter as u32,
        (counter >> 32) as u32,
        stream as u32,
        (stream >> 32) as u32,
    ]
}

#[inline(always)]
fn key_for(seed: u64) -> [u32; 2] {
    [seed as u32, (seed >> 32) as u32]
}

/// One stateless 128-bit draw: `f(seed, stream, counter)`.
///
/// Kernels that need a handful of numbers per (cell, step) call this with
/// `stream = cell id` and `counter = step` — the result is independent of
/// which host thread executes the cell and in what order, which is what
/// makes the sequential and parallel execution policies bit-identical.
#[inline]
pub fn draw4(seed: u64, stream: u64, counter: u64) -> [u32; 4] {
    philox4x32(ctr_for(stream, counter), key_for(seed))
}

/// One stateless 64-bit draw (the first two words of [`draw4`]).
#[inline]
pub fn draw2(seed: u64, stream: u64, counter: u64) -> [u32; 2] {
    let b = draw4(seed, stream, counter);
    [b[0], b[1]]
}

/// One stateless 32-bit draw (the first word of [`draw4`]).
#[inline]
pub fn draw(seed: u64, stream: u64, counter: u64) -> u32 {
    draw4(seed, stream, counter)[0]
}

/// A sequential random stream: `(seed, stream id)` plus a draw counter.
///
/// Each call produces one 128-bit Philox block and serves it out in 32-bit
/// words, so consecutive `next_u32` calls cost one Philox evaluation per
/// four words. `Copy` is deliberate: a kernel may freely fork the stream
/// state into a local variable (matching CURAND's value-type `curandState`).
#[derive(Debug, Clone, Copy)]
pub struct StreamRng {
    seed: u64,
    stream: u64,
    counter: u64,
    /// Buffered block and the number of words already consumed from it.
    buf: [u32; 4],
    used: u8,
}

impl StreamRng {
    /// Open stream `stream` under `seed`, positioned at the first draw.
    #[inline]
    pub fn new(seed: u64, stream: u64) -> Self {
        Self {
            seed,
            stream,
            counter: 0,
            buf: [0; 4],
            used: 4,
        }
    }

    /// Open a stream positioned `offset` *blocks* (4 words each) in.
    #[inline]
    pub fn with_offset(seed: u64, stream: u64, offset: u64) -> Self {
        Self {
            seed,
            stream,
            counter: offset,
            buf: [0; 4],
            used: 4,
        }
    }

    /// The stream identifier.
    #[inline]
    pub fn stream_id(&self) -> u64 {
        self.stream
    }

    /// The experiment seed.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Next raw 32-bit word.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        if self.used == 4 {
            self.buf = draw4(self.seed, self.stream, self.counter);
            self.counter = self.counter.wrapping_add(1);
            self.used = 0;
        }
        let w = self.buf[self.used as usize];
        self.used += 1;
        w
    }

    /// Next raw 64-bit word.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        lo | (hi << 32)
    }

    /// Uniform `f32` in `[0, 1)`.
    #[inline]
    pub fn uniform_f32(&mut self) -> f32 {
        crate::dist::uniform_f32(self.next_u32())
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn uniform_f64(&mut self) -> f64 {
        crate::dist::uniform_f64(self.next_u64())
    }

    /// Uniform integer in `[0, bound)` without modulo bias (Lemire).
    ///
    /// `bound` must be non-zero.
    #[inline]
    pub fn bounded_u32(&mut self, bound: u32) -> u32 {
        debug_assert!(bound > 0, "bounded_u32 requires bound > 0");
        let (mut val, mut ok) = crate::dist::lemire_bounded(self.next_u32(), bound);
        // The rejection branch is vanishingly rare for small bounds (the
        // simulation draws bounds ≤ 8), but must loop for correctness.
        while !ok {
            let (v, o) = crate::dist::lemire_bounded(self.next_u32(), bound);
            val = v;
            ok = o;
        }
        val
    }

    /// Standard normal `f32` via Box–Muller (one of the pair is discarded —
    /// CURAND's `curand_normal` does the same for its scalar variant).
    #[inline]
    pub fn normal_f32(&mut self) -> f32 {
        let a = self.next_u32();
        let b = self.next_u32();
        crate::dist::normal_f32(a, b)
    }

    /// Standard normal `f64` via Box–Muller.
    #[inline]
    pub fn normal_f64(&mut self) -> f64 {
        let a = self.next_u64();
        let b = self.next_u64();
        crate::dist::normal_f64(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_reproducible() {
        let mut a = StreamRng::new(123, 5);
        let mut b = StreamRng::new(123, 5);
        for _ in 0..100 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn distinct_streams_decorrelate() {
        let mut a = StreamRng::new(123, 5);
        let mut b = StreamRng::new(123, 6);
        let hits = (0..256).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(hits <= 1, "streams nearly identical: {hits} matching words");
    }

    #[test]
    fn distinct_seeds_decorrelate() {
        let mut a = StreamRng::new(1, 0);
        let mut b = StreamRng::new(2, 0);
        let hits = (0..256).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(hits <= 1);
    }

    #[test]
    fn stateless_draw_matches_stream_blocks() {
        let mut s = StreamRng::new(77, 9);
        let words: Vec<u32> = (0..8).map(|_| s.next_u32()).collect();
        let b0 = draw4(77, 9, 0);
        let b1 = draw4(77, 9, 1);
        assert_eq!(&words[..4], &b0);
        assert_eq!(&words[4..], &b1);
    }

    #[test]
    fn with_offset_skips_blocks() {
        let mut a = StreamRng::new(5, 1);
        for _ in 0..8 {
            a.next_u32();
        }
        let mut b = StreamRng::with_offset(5, 1, 2);
        assert_eq!(a.next_u32(), b.next_u32());
    }

    #[test]
    fn bounded_u32_in_range_and_covers() {
        let mut s = StreamRng::new(99, 0);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            let v = s.bounded_u32(8);
            assert!(v < 8);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&x| x), "1000 draws should cover 0..8");
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut s = StreamRng::new(42, 3);
        for _ in 0..1000 {
            let u = s.uniform_f32();
            assert!((0.0..1.0).contains(&u));
            let v = s.uniform_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn normal_moments_plausible() {
        let mut s = StreamRng::new(2024, 0);
        let n = 20_000;
        let (mut sum, mut sumsq) = (0.0f64, 0.0f64);
        for _ in 0..n {
            let x = f64::from(s.normal_f32());
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.08, "var {var}");
    }
}
