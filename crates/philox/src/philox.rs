//! The Philox4x32 bijection.
//!
//! Philox is a keyed bijection on 128-bit counters built from integer
//! multiplication high/low halves and a Weyl key schedule. Ten rounds give
//! Crush-resistant output (Salmon et al., SC'11). The constants below are
//! the published ones; the unit tests pin the implementation to the
//! Random123 known-answer vectors so a transcription error cannot survive.

/// First round multiplier (applied to counter word 0).
const PHILOX_M4X32_0: u32 = 0xD251_1F53;
/// Second round multiplier (applied to counter word 2).
const PHILOX_M4X32_1: u32 = 0xCD9E_8D57;
/// Weyl increment for key word 0 (golden ratio).
const PHILOX_W32_0: u32 = 0x9E37_79B9;
/// Weyl increment for key word 1 (sqrt(3) - 1).
const PHILOX_W32_1: u32 = 0xBB67_AE85;

/// The standard number of rounds. Fewer rounds are measurably weaker; more
/// buy nothing for simulation use.
pub const PHILOX_DEFAULT_ROUNDS: u32 = 10;

#[inline(always)]
fn mulhilo(a: u32, b: u32) -> (u32, u32) {
    let p = u64::from(a) * u64::from(b);
    ((p >> 32) as u32, p as u32)
}

#[inline(always)]
fn round(ctr: [u32; 4], key: [u32; 2]) -> [u32; 4] {
    let (hi0, lo0) = mulhilo(PHILOX_M4X32_0, ctr[0]);
    let (hi1, lo1) = mulhilo(PHILOX_M4X32_1, ctr[2]);
    [hi1 ^ ctr[1] ^ key[0], lo1, hi0 ^ ctr[3] ^ key[1], lo0]
}

#[inline(always)]
fn bump_key(key: [u32; 2]) -> [u32; 2] {
    [
        key[0].wrapping_add(PHILOX_W32_0),
        key[1].wrapping_add(PHILOX_W32_1),
    ]
}

/// Apply Philox4x32 with an explicit round count.
///
/// Exposed for the statistical-quality tests (which compare round counts);
/// simulation code should use [`philox4x32`].
#[inline]
pub fn philox4x32_rounds(mut ctr: [u32; 4], mut key: [u32; 2], rounds: u32) -> [u32; 4] {
    for r in 0..rounds {
        if r > 0 {
            key = bump_key(key);
        }
        ctr = round(ctr, key);
    }
    ctr
}

/// Philox4x32-10: 128-bit counter + 64-bit key → 128 random bits.
#[inline]
pub fn philox4x32(ctr: [u32; 4], key: [u32; 2]) -> [u32; 4] {
    philox4x32_rounds(ctr, key, PHILOX_DEFAULT_ROUNDS)
}

/// An incrementing-counter convenience wrapper around [`philox4x32`].
///
/// Unlike [`crate::StreamRng`] this exposes the raw counter/key layout; it
/// is the building block for the higher-level stream API and for tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Philox4x32 {
    key: [u32; 2],
    ctr: [u32; 4],
}

impl Philox4x32 {
    /// Create a generator with the given key and a zero counter.
    #[inline]
    pub fn new(key: [u32; 2]) -> Self {
        Self { key, ctr: [0; 4] }
    }

    /// Create a generator positioned at an arbitrary counter.
    #[inline]
    pub fn with_counter(key: [u32; 2], ctr: [u32; 4]) -> Self {
        Self { key, ctr }
    }

    /// The current counter value (the position in the stream).
    #[inline]
    pub fn counter(&self) -> [u32; 4] {
        self.ctr
    }

    /// Produce the next 128-bit block and advance the counter by one.
    #[inline]
    pub fn next_block(&mut self) -> [u32; 4] {
        let out = philox4x32(self.ctr, self.key);
        self.advance(1);
        out
    }

    /// Skip ahead `n` blocks in O(1) — the CURAND `skipahead` operation.
    #[inline]
    pub fn advance(&mut self, n: u64) {
        let lo = u64::from(self.ctr[0]) | (u64::from(self.ctr[1]) << 32);
        let (new_lo, carry) = lo.overflowing_add(n);
        self.ctr[0] = new_lo as u32;
        self.ctr[1] = (new_lo >> 32) as u32;
        if carry {
            let hi = u64::from(self.ctr[2]) | (u64::from(self.ctr[3]) << 32);
            let hi = hi.wrapping_add(1);
            self.ctr[2] = hi as u32;
            self.ctr[3] = (hi >> 32) as u32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Random123 kat_vectors: philox4x32-10, all-zero counter and key.
    #[test]
    fn kat_zero() {
        let out = philox4x32([0, 0, 0, 0], [0, 0]);
        assert_eq!(out, [0x6627_e8d5, 0xe169_c58d, 0xbc57_ac4c, 0x9b00_dbd8]);
    }

    /// Random123 kat_vectors: philox4x32-10, all-ones counter and key.
    #[test]
    fn kat_ones() {
        let out = philox4x32([u32::MAX; 4], [u32::MAX; 2]);
        assert_eq!(out, [0x408f_276d, 0x41c8_3b0e, 0xa20b_c7c6, 0x6d54_51fd]);
    }

    /// Random123 kat_vectors: philox4x32-10, pi-digit counter and key.
    #[test]
    fn kat_pi() {
        let ctr = [0x243f_6a88, 0x85a3_08d3, 0x1319_8a2e, 0x0370_7344];
        let key = [0xa409_3822, 0x299f_31d0];
        let out = philox4x32(ctr, key);
        assert_eq!(out, [0xd16c_fe09, 0x94fd_cceb, 0x5001_e420, 0x2412_6ea1]);
    }

    #[test]
    fn bijection_distinct_counters_distinct_outputs() {
        // Not a proof of bijectivity, but catches gross state-collapse bugs.
        let key = [0xdead_beef, 0x0bad_f00d];
        let a = philox4x32([0, 0, 0, 0], key);
        let b = philox4x32([1, 0, 0, 0], key);
        let c = philox4x32([0, 1, 0, 0], key);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn advance_matches_sequential_stepping() {
        let key = [7, 11];
        let mut seq = Philox4x32::new(key);
        for _ in 0..1000 {
            seq.next_block();
        }
        let mut skipped = Philox4x32::new(key);
        skipped.advance(1000);
        assert_eq!(seq.counter(), skipped.counter());
        assert_eq!(seq.next_block(), skipped.next_block());
    }

    #[test]
    fn advance_carries_into_high_words() {
        let key = [1, 2];
        let mut g = Philox4x32::with_counter(key, [u32::MAX, u32::MAX, 0, 0]);
        g.advance(1);
        assert_eq!(g.counter(), [0, 0, 1, 0]);
        let mut h = Philox4x32::with_counter(key, [u32::MAX, u32::MAX, u32::MAX, 0]);
        h.advance(2);
        assert_eq!(h.counter(), [1, 0, 0, 1]);
    }

    #[test]
    fn fewer_rounds_differ() {
        let ctr = [3, 1, 4, 1];
        let key = [5, 9];
        assert_ne!(
            philox4x32_rounds(ctr, key, 7),
            philox4x32_rounds(ctr, key, 10)
        );
    }
}
