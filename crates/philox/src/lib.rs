//! # philox — counter-based random numbers for data-parallel simulation
//!
//! The paper this repository reproduces uses NVIDIA's CURAND library to give
//! every GPU thread an independent random stream. CURAND's default
//! generators are *counter-based*: the n-th draw of stream s under seed k is
//! a pure function `f(k, s, n)`, so any thread can produce its numbers
//! without shared state and without caring about scheduling order.
//!
//! This crate provides the same facility on the host: the
//! [Philox4x32-10](https://dl.acm.org/doi/10.1145/2063384.2063405)
//! generator of Salmon et al. (SC'11, "Parallel random numbers: as easy as
//! 1, 2, 3"), which is also one of CURAND's shipped generators. The
//! implementation is pinned to the published Random123 known-answer vectors.
//!
//! Three layers are exposed:
//!
//! * [`philox4x32`] / [`Philox4x32`] — the raw bijection: 128-bit counter ×
//!   64-bit key → 128 random bits.
//! * [`StreamRng`] — a CURAND-style sequential stream `(seed, stream id)`
//!   with `next_u32`, `uniform_f32`, `normal_f32`, … This is what simulation
//!   kernels hold per thread.
//! * [`draw`] helpers — single stateless draws `f(seed, stream, counter)`,
//!   used where a kernel needs exactly one number per (cell, step) and wants
//!   determinism independent of execution order.
//!
//! ## Example
//!
//! ```
//! use philox::StreamRng;
//!
//! // Two cells get decorrelated streams under one experiment seed.
//! let mut a = StreamRng::new(42, 0);
//! let mut b = StreamRng::new(42, 1);
//! assert_ne!(a.next_u32(), b.next_u32());
//!
//! // Streams are reproducible.
//! let mut a2 = StreamRng::new(42, 0);
//! assert_eq!(StreamRng::new(42, 0).next_u32(), a2.next_u32());
//! ```

#![warn(missing_docs)]

mod compat;
mod dist;
mod philox;
mod stream;

pub use compat::PhiloxRng;
pub use dist::{
    box_muller, lemire_bounded, normal_f32, normal_f64, uniform_f32, uniform_f64, ClampedNormal,
};
pub use philox::{philox4x32, philox4x32_rounds, Philox4x32, PHILOX_DEFAULT_ROUNDS};
pub use stream::{draw, draw2, draw4, StreamRng};
