//! Sweep grids: registry world × population × seed enumeration.
//!
//! The paper's evaluation is built from sweeps — an agent-count ladder
//! (Fig. 5), a density grid (Fig. 6), repeated seeds for significance —
//! and every harness used to hand-roll its own nested loops. This module
//! enumerates the cross product declaratively: a [`grid`] call yields one
//! [`SweepPoint`] per (world, population, seed) triple, each carrying a
//! ready-built, reseeded [`Scenario`]. The runner crate turns points into
//! jobs; the ordering is deterministic (worlds outermost, then
//! populations, then seeds) so downstream reports are reproducible.

use pedsim_grid::EnvConfig;

use crate::registry;
use crate::scenario::Scenario;

/// Build a registry world by name on a `side × side` grid with `per_side`
/// agents per group, using each world's canonical interior parameters
/// (doorway gap = side/6, pillar spacing = side/8, both floored to sane
/// minima). Multi-group and asymmetric worlds split `per_side` so every
/// world fields exactly `2 × per_side` agents in total: the four-way
/// plaza splits `2 × per_side` across its four streams (remainder
/// distributed, one per axis, so odd `per_side` stays exact), the
/// T-junction runs `per_side` per stream, and the asymmetric corridor a
/// 2:1 `per_side` vs `per_side / 2` mix (a deliberate 1.5× exception —
/// the uneven split *is* the workload). Open-boundary worlds interpret
/// `per_side` as the per-group slot capacity and feed an inflow of
/// `per_side / side` agents per step per group, so the steady live
/// population lands near the closed worlds' density. Returns `None` for
/// unknown names; see [`registry::names`].
pub fn build_world(name: &str, side: usize, per_side: usize) -> Option<Scenario> {
    match name {
        "paper_corridor" => Some(registry::paper_corridor(&EnvConfig::small(
            side, side, per_side,
        ))),
        "doorway" => Some(registry::doorway(side, side, per_side, (side / 6).max(2))),
        "pillar_hall" => Some(registry::pillar_hall(
            side,
            side,
            per_side,
            (side / 8).max(4),
        )),
        "crossing" => Some(registry::crossing(side, per_side)),
        "four_way_crossing" => Some(registry::four_way_crossing_mixed(
            side,
            four_way_split(per_side),
        )),
        "t_junction_merge" => Some(registry::t_junction_merge(side, per_side)),
        "asymmetric_corridor" => Some(registry::asymmetric_corridor(
            side,
            side,
            per_side,
            (per_side / 2).max(1),
        )),
        "open_corridor" => Some(registry::open_corridor(
            side,
            side,
            per_side.max(1),
            open_world_rate(side, per_side),
        )),
        "open_crossing" => Some(registry::open_crossing(
            side,
            per_side.max(1),
            open_world_rate(side, per_side),
        )),
        _ => None,
    }
}

/// Split a nominal `2 × per_side` total exactly across the four plaza
/// streams: every stream gets `per_side / 2`, and an odd `per_side`'s two
/// leftover agents go one to each axis (north and west). The invariant
/// `sum == 2 × per_side` holds for every `per_side ≥ 1` — rounding every
/// stream down used to drop two agents per odd `per_side`, so sweep rows
/// at the same nominal population compared different crowd sizes.
pub fn four_way_split(per_side: usize) -> [usize; 4] {
    let q = per_side / 2;
    let r = per_side % 2;
    [q + r, q, q + r, q]
}

/// The canonical sweep inflow for open worlds: `per_side / side` agents
/// per step per group. Transit takes ≈ `side` steps, so the steady live
/// population per group settles near `per_side` — the same density axis
/// the closed worlds sweep.
fn open_world_rate(side: usize, per_side: usize) -> f64 {
    (per_side.max(1) as f64 / side.max(1) as f64).max(0.25)
}

/// One cell of a sweep grid: a world at a population and a seed.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Registry world name.
    pub world: String,
    /// Agents per group.
    pub per_side: usize,
    /// Replica seed (already applied to `scenario`).
    pub seed: u64,
    /// The materialisable world, reseeded for this replica.
    pub scenario: Scenario,
}

/// Enumerate `worlds × per_sides × seeds` on a `side × side` grid, in
/// deterministic order (worlds outermost, seeds innermost).
///
/// Panics on unknown world names — a sweep definition naming a world that
/// does not exist is a caller bug, not a skippable cell.
pub fn grid(worlds: &[&str], side: usize, per_sides: &[usize], seeds: &[u64]) -> Vec<SweepPoint> {
    let mut points = Vec::with_capacity(worlds.len() * per_sides.len() * seeds.len());
    for &world in worlds {
        for &per_side in per_sides {
            // Build once per (world, population); reseeding is cheap.
            let base = build_world(world, side, per_side)
                .unwrap_or_else(|| panic!("unknown registry world {world:?}"));
            for &seed in seeds {
                points.push(SweepPoint {
                    world: world.to_string(),
                    per_side,
                    seed,
                    scenario: base.clone().with_seed(seed),
                });
            }
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_world_covers_the_registry() {
        for &name in registry::names() {
            let s = build_world(name, 48, 60).unwrap_or_else(|| panic!("{name} missing"));
            assert_eq!(s.name(), name);
            // Every closed world fields exactly 2 × per_side agents in
            // total (the asymmetric corridor's 2:1 mix is deliberate);
            // open worlds start empty and hold 2 × per_side recyclable
            // slots instead.
            let expected_total = match name {
                "asymmetric_corridor" => 90,
                "open_corridor" | "open_crossing" => 0,
                _ => 120,
            };
            assert_eq!(s.total_agents(), expected_total, "{name}");
            if s.is_open() {
                assert_eq!(s.total_capacity(), 120, "{name}");
            }
        }
        assert!(build_world("no_such_world", 48, 60).is_none());
    }

    #[test]
    fn four_way_split_is_exact_for_odd_populations() {
        // The old `per_side / 2` split dropped two agents whenever
        // per_side was odd, so sweep rows at the same nominal population
        // compared different crowd sizes across worlds.
        for per_side in 1..=64 {
            let split = four_way_split(per_side);
            assert_eq!(
                split.iter().sum::<usize>(),
                2 * per_side,
                "split {split:?} for per_side {per_side}"
            );
            let s = build_world("four_way_crossing", 48, per_side).expect("registry world");
            assert_eq!(s.total_agents(), 2 * per_side, "per_side {per_side}");
        }
    }

    #[test]
    fn open_worlds_carry_sources_for_every_group() {
        for name in ["open_corridor", "open_crossing"] {
            let s = build_world(name, 32, 24).expect("registry world");
            assert!(s.is_open(), "{name}");
            for g in 0..s.n_groups() {
                let src = s
                    .source(pedsim_grid::cell::Group::new(g))
                    .unwrap_or_else(|| panic!("{name} group {g} has no source"));
                assert!(src.rate > 0.0);
            }
        }
    }

    #[test]
    fn grid_enumerates_the_cross_product_in_order() {
        let pts = grid(&["paper_corridor", "doorway"], 32, &[20, 40], &[1, 2, 3]);
        assert_eq!(pts.len(), 2 * 2 * 3);
        // Worlds outermost, then populations, then seeds.
        assert_eq!(pts[0].world, "paper_corridor");
        assert_eq!((pts[0].per_side, pts[0].seed), (20, 1));
        assert_eq!((pts[2].per_side, pts[2].seed), (20, 3));
        assert_eq!((pts[3].per_side, pts[3].seed), (40, 1));
        assert_eq!(pts[6].world, "doorway");
        // The seed is applied to the scenario itself.
        assert!(pts.iter().all(|p| p.scenario.seed() == p.seed));
        assert!(pts
            .iter()
            .all(|p| p.scenario.agents_per_side() == p.per_side));
    }

    #[test]
    #[should_panic(expected = "unknown registry world")]
    fn grid_rejects_unknown_worlds() {
        let _ = grid(&["atlantis"], 32, &[10], &[1]);
    }
}
