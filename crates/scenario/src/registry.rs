//! Ready-made scenarios.
//!
//! Four canonical worlds, each exercising one routing regime:
//!
//! * [`paper_corridor`] — exactly the paper's evaluation geometry
//!   (obstacle-free bi-directional corridor, edge spawn bands). Takes the
//!   row-table fast path and reproduces the legacy `EnvConfig` trajectories
//!   bit for bit.
//! * [`doorway`] — the corridor pinched to a `gap`-cell doorway mid-height:
//!   the classic bottleneck benchmark (cf. the CALM model's constrained
//!   aisle geometries, arXiv:1910.05749).
//! * [`pillar_hall`] — scattered interior pillars, a mass-gathering hall.
//! * [`crossing`] — two orthogonal streams (top→bottom and left→right)
//!   crossing mid-grid (cf. dynamic navigation fields for intersecting
//!   flows, arXiv:1705.03569).

use pedsim_grid::cell::Group;
use pedsim_grid::EnvConfig;

use crate::region::Region;
use crate::scenario::Scenario;

/// The registry's scenario names, in presentation order.
pub fn names() -> &'static [&'static str] {
    &["paper_corridor", "doorway", "pillar_hall", "crossing"]
}

/// Derive the spawn-band depth the legacy corridor would use for this
/// population (the ~0.6-fill rule of [`EnvConfig::effective_spawn_rows`]).
fn band_rows(width: usize, height: usize, per_side: usize) -> usize {
    EnvConfig::small(width, height, per_side).effective_spawn_rows()
}

/// The paper's evaluation geometry as a declarative scenario, mirroring
/// `cfg` (including its seed). Obstacle-free with full-width opposite-edge
/// targets, so it routes by the row-table fast path — bit-identical to
/// building the same [`EnvConfig`] directly.
pub fn paper_corridor(cfg: &EnvConfig) -> Scenario {
    let (w, h) = (cfg.width, cfg.height);
    let s = cfg.effective_spawn_rows();
    Scenario::builder("paper_corridor", w, h)
        .spawn(Group::Top, Region::row_band(0, s, w))
        .spawn(Group::Bottom, Region::row_band(h - s, s, w))
        .target(Group::Top, Region::row_band(h - s, s, w))
        .target(Group::Bottom, Region::row_band(0, s, w))
        .agents_per_side(cfg.agents_per_side)
        .seed(cfg.seed)
        .build()
        .expect("paper corridor geometry is always valid")
}

/// The corridor with a full wall at mid-height pierced by a centred
/// `gap`-cell doorway. Shrinking `gap` turns lane formation into a
/// bottleneck fight.
pub fn doorway(width: usize, height: usize, per_side: usize, gap: usize) -> Scenario {
    assert!(gap >= 1 && gap <= width, "doorway gap must be 1..=width");
    let s = band_rows(width, height, per_side);
    let mid = height / 2;
    assert!(
        mid >= s && mid < height - s,
        "doorway corridor of {height} rows cannot seat {per_side} agents per side: \
         the {s}-row spawn bands reach the mid-height wall"
    );
    let gap_start = (width - gap) / 2;
    let mut b = Scenario::builder("doorway", width, height);
    if gap_start > 0 {
        b = b.wall_rect(mid, 0, 1, gap_start);
    }
    if gap_start + gap < width {
        b = b.wall_rect(mid, gap_start + gap, 1, width - gap_start - gap);
    }
    b.spawn(Group::Top, Region::row_band(0, s, width))
        .spawn(Group::Bottom, Region::row_band(height - s, s, width))
        .target(Group::Top, Region::row_band(height - s, s, width))
        .target(Group::Bottom, Region::row_band(0, s, width))
        .agents_per_side(per_side)
        .build()
        .expect("doorway geometry is always valid")
}

/// A hall with pillars every `spacing` cells in the interior (outside both
/// spawn bands, clear of the side margins).
pub fn pillar_hall(width: usize, height: usize, per_side: usize, spacing: usize) -> Scenario {
    assert!(spacing >= 2, "pillar spacing must be at least 2");
    let s = band_rows(width, height, per_side);
    let mut b = Scenario::builder("pillar_hall", width, height);
    let mut r = s + 2;
    while r + 2 + s < height {
        let mut c = 2;
        while c + 2 < width {
            b = b.wall_cell(r, c);
            c += spacing;
        }
        r += spacing;
    }
    b.spawn(Group::Top, Region::row_band(0, s, width))
        .spawn(Group::Bottom, Region::row_band(height - s, s, width))
        .target(Group::Top, Region::row_band(height - s, s, width))
        .target(Group::Bottom, Region::row_band(0, s, width))
        .agents_per_side(per_side)
        .build()
        .expect("pillar hall geometry is always valid")
}

/// Two orthogonal streams on a `side × side` plaza: the top group walks
/// top→bottom, the bottom group walks left→right, crossing mid-grid. The
/// column-band target makes this the first registry world whose routing
/// cannot be expressed by row distances at all.
pub fn crossing(side: usize, per_side: usize) -> Scenario {
    // Smallest band depth whose rectangle (excluding the shared corner)
    // seats the population at ≲ 60 % fill, mirroring the corridor rule.
    let s = (1..side / 2)
        .find(|&s| (s * (side - s)) as f64 * 0.6 >= per_side as f64)
        .unwrap_or(side / 2)
        .max(2);
    assert!(
        s * (side - s) >= per_side,
        "crossing plaza of side {side} cannot seat {per_side} agents per stream"
    );
    Scenario::builder("crossing", side, side)
        // Vertical stream: spawns across the top, right of the horizontal
        // stream's band (regions must be disjoint).
        .spawn(Group::Top, Region::rect(0, s, s, side - s))
        .target(Group::Top, Region::row_band(side - s, s, side))
        // Horizontal stream: spawns down the left side, below the vertical
        // stream's band.
        .spawn(Group::Bottom, Region::rect(s, 0, side - s, s))
        .target(Group::Bottom, Region::col_band(side - s, s, side))
        .agents_per_side(per_side)
        .build()
        .expect("crossing geometry is always valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pedsim_grid::DistanceKind;

    #[test]
    fn paper_corridor_mirrors_env_config() {
        let cfg = EnvConfig::small(32, 32, 40).with_seed(11);
        let s = paper_corridor(&cfg);
        assert!(s.uses_row_fast_path());
        assert_eq!(s.distance_data().kind, DistanceKind::Rows);
        // Same placement, bit for bit.
        let legacy = pedsim_grid::Environment::new(&cfg);
        let scen = s.build_environment();
        assert_eq!(legacy.mat, scen.mat);
        assert_eq!(legacy.index, scen.index);
        assert_eq!(legacy.props, scen.props);
        assert_eq!(legacy.spawn_rows, scen.spawn_rows);
    }

    #[test]
    fn doorway_has_exactly_gap_passable_cells_mid_row() {
        for gap in [1usize, 4, 9] {
            let s = doorway(32, 32, 60, gap);
            let mid = 16;
            let open = (0..32).filter(|&c| !s.is_wall(mid, c)).count();
            assert_eq!(open, gap, "gap {gap}");
            assert_eq!(s.distance_data().kind, DistanceKind::Grid);
            s.build_environment()
                .check_consistency()
                .expect("consistent");
        }
    }

    #[test]
    fn pillar_hall_keeps_bands_clear() {
        let s = pillar_hall(48, 48, 200, 6);
        assert!(!s.walls().is_empty());
        let env = s.build_environment();
        env.check_consistency().expect("consistent");
        // No pillar inside either spawn band.
        for &(r, _) in s.walls() {
            assert!((r as usize) >= env.spawn_rows);
            assert!((r as usize) < 48 - env.spawn_rows);
        }
    }

    #[test]
    fn crossing_streams_are_disjoint_and_orthogonal() {
        let s = crossing(40, 150);
        assert_eq!(s.distance_data().kind, DistanceKind::Grid);
        let env = s.build_environment();
        env.check_consistency().expect("consistent");
        // The horizontal stream's target is a column band: crossing for
        // bottom agents means "reached the right edge".
        assert!(env.has_crossed(Group::Bottom, 20, 39));
        assert!(!env.has_crossed(Group::Bottom, 20, 0));
        // And the vertical stream still crosses downward.
        assert!(env.has_crossed(Group::Top, 39, 20));
    }

    #[test]
    fn registry_names_cover_all_constructors() {
        assert_eq!(names().len(), 4);
    }

    #[test]
    #[should_panic(expected = "reach the mid-height wall")]
    fn doorway_rejects_bands_touching_the_wall() {
        // 8 rows with 20 agents per side derives 4-row bands: the bottom
        // band includes row 4 = the wall row.
        let _ = doorway(8, 8, 20, 2);
    }
}
