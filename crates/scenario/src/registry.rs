//! Ready-made scenarios.
//!
//! Nine canonical worlds, each exercising one routing/grouping/boundary
//! regime:
//!
//! * [`paper_corridor`] — exactly the paper's evaluation geometry
//!   (obstacle-free bi-directional corridor, edge spawn bands). Takes the
//!   row-table fast path and reproduces the legacy `EnvConfig` trajectories
//!   bit for bit.
//! * [`doorway`] — the corridor pinched to a `gap`-cell doorway mid-height:
//!   the classic bottleneck benchmark (cf. the CALM model's constrained
//!   aisle geometries, arXiv:1910.05749).
//! * [`pillar_hall`] — scattered interior pillars, a mass-gathering hall.
//! * [`crossing`] — two orthogonal streams (top→bottom and left→right)
//!   crossing mid-grid (cf. dynamic navigation fields for intersecting
//!   flows, arXiv:1705.03569). The horizontal stream is a true
//!   second-axis group: its heading derives as rightward, so its
//!   forward-priority cell and per-group metrics describe the flow it
//!   actually is (it used to be mislabelled as a "bottom" stream).
//! * [`four_way_crossing`] — four orthogonal streams on a plaza, one per
//!   edge, all crossing mid-grid: the first world needing more than two
//!   directional groups.
//! * [`t_junction_merge`] — two streams entering a top corridor from its
//!   ends and merging down a single stem toward a shared exit.
//! * [`asymmetric_corridor`] — the paper corridor with uneven group
//!   populations (exercising the explicit per-group index ranges).
//! * [`open_corridor`] — the paper corridor with **open boundaries**: both
//!   edge bands are Poisson-like inflow sources, both targets are sinks,
//!   and the corridor carries two continuous opposing streams at a
//!   sustained density (the fundamental-diagram workload; cf. dynamic
//!   navigation fields for bidirectional corridor flow, arXiv:1705.03569).
//! * [`open_crossing`] — two continuous orthogonal streams crossing
//!   mid-plaza, open boundaries on both.

use pedsim_grid::cell::Group;
use pedsim_grid::EnvConfig;

use crate::region::Region;
use crate::scenario::Scenario;

/// The registry's scenario names, in presentation order.
pub fn names() -> &'static [&'static str] {
    &[
        "paper_corridor",
        "doorway",
        "pillar_hall",
        "crossing",
        "four_way_crossing",
        "t_junction_merge",
        "asymmetric_corridor",
        "open_corridor",
        "open_crossing",
    ]
}

/// Derive the spawn-band depth the legacy corridor would use for this
/// population (the ~0.6-fill rule of [`EnvConfig::effective_spawn_rows`]).
fn band_rows(width: usize, height: usize, per_side: usize) -> usize {
    EnvConfig::small(width, height, per_side).effective_spawn_rows()
}

/// The paper's evaluation geometry as a declarative scenario, mirroring
/// `cfg` (including its seed). Obstacle-free with full-width opposite-edge
/// targets, so it routes by the row-table fast path — bit-identical to
/// building the same [`EnvConfig`] directly.
pub fn paper_corridor(cfg: &EnvConfig) -> Scenario {
    let (w, h) = (cfg.width, cfg.height);
    let s = cfg.effective_spawn_rows();
    Scenario::builder("paper_corridor", w, h)
        .spawn(Group::TOP, Region::row_band(0, s, w))
        .spawn(Group::BOTTOM, Region::row_band(h - s, s, w))
        .target(Group::TOP, Region::row_band(h - s, s, w))
        .target(Group::BOTTOM, Region::row_band(0, s, w))
        .agents_per_side(cfg.agents_per_side)
        .seed(cfg.seed)
        .build()
        .expect("paper corridor geometry is always valid")
}

/// The corridor with a full wall at mid-height pierced by a centred
/// `gap`-cell doorway. Shrinking `gap` turns lane formation into a
/// bottleneck fight.
pub fn doorway(width: usize, height: usize, per_side: usize, gap: usize) -> Scenario {
    assert!(gap >= 1 && gap <= width, "doorway gap must be 1..=width");
    let s = band_rows(width, height, per_side);
    let mid = height / 2;
    assert!(
        mid >= s && mid < height - s,
        "doorway corridor of {height} rows cannot seat {per_side} agents per side: \
         the {s}-row spawn bands reach the mid-height wall"
    );
    let gap_start = (width - gap) / 2;
    let mut b = Scenario::builder("doorway", width, height);
    if gap_start > 0 {
        b = b.wall_rect(mid, 0, 1, gap_start);
    }
    if gap_start + gap < width {
        b = b.wall_rect(mid, gap_start + gap, 1, width - gap_start - gap);
    }
    b.spawn(Group::TOP, Region::row_band(0, s, width))
        .spawn(Group::BOTTOM, Region::row_band(height - s, s, width))
        .target(Group::TOP, Region::row_band(height - s, s, width))
        .target(Group::BOTTOM, Region::row_band(0, s, width))
        .agents_per_side(per_side)
        .build()
        .expect("doorway geometry is always valid")
}

/// A hall with pillars every `spacing` cells in the interior (outside both
/// spawn bands, clear of the side margins).
pub fn pillar_hall(width: usize, height: usize, per_side: usize, spacing: usize) -> Scenario {
    assert!(spacing >= 2, "pillar spacing must be at least 2");
    let s = band_rows(width, height, per_side);
    let mut b = Scenario::builder("pillar_hall", width, height);
    let mut r = s + 2;
    while r + 2 + s < height {
        let mut c = 2;
        while c + 2 < width {
            b = b.wall_cell(r, c);
            c += spacing;
        }
        r += spacing;
    }
    b.spawn(Group::TOP, Region::row_band(0, s, width))
        .spawn(Group::BOTTOM, Region::row_band(height - s, s, width))
        .target(Group::TOP, Region::row_band(height - s, s, width))
        .target(Group::BOTTOM, Region::row_band(0, s, width))
        .agents_per_side(per_side)
        .build()
        .expect("pillar hall geometry is always valid")
}

/// Two orthogonal streams on a `side × side` plaza: group 0 walks
/// top→bottom, group 1 walks left→right, crossing mid-grid. The second
/// group's rightward heading is derived from its regions, so its
/// forward-priority cell, distance plane, and target-mask metrics all
/// describe a genuine second-axis flow.
pub fn crossing(side: usize, per_side: usize) -> Scenario {
    // Smallest band depth whose rectangle (excluding the shared corner)
    // seats the population at ≲ 60 % fill, mirroring the corridor rule.
    let s = (1..side / 2)
        .find(|&s| (s * (side - s)) as f64 * 0.6 >= per_side as f64)
        .unwrap_or(side / 2)
        .max(2);
    assert!(
        s * (side - s) >= per_side,
        "crossing plaza of side {side} cannot seat {per_side} agents per stream"
    );
    Scenario::builder("crossing", side, side)
        // Vertical stream: spawns across the top, right of the horizontal
        // stream's band (regions must be disjoint).
        .spawn(Group::TOP, Region::rect(0, s, s, side - s))
        .target(Group::TOP, Region::row_band(side - s, s, side))
        // Horizontal stream: spawns down the left side, below the vertical
        // stream's band.
        .spawn(Group::BOTTOM, Region::rect(s, 0, side - s, s))
        .target(Group::BOTTOM, Region::col_band(side - s, s, side))
        .agents_per_side(per_side)
        .build()
        .expect("crossing geometry is always valid")
}

/// Band depth for a four-way plaza: each edge band spans `side - 2·depth`
/// cells per row (corners are cut so the four spawn regions stay
/// disjoint). Prefers the ~0.6-fill corridor convention, falling back to
/// the smallest band that physically seats the population.
fn four_way_band(side: usize, per_group: usize) -> usize {
    let cap = |s: usize| s * side.saturating_sub(2 * s);
    let max_s = side / 3;
    (2..=max_s)
        .find(|&s| cap(s) as f64 * 0.6 >= per_group as f64)
        .or_else(|| (2..=max_s).find(|&s| cap(s) >= per_group))
        .unwrap_or_else(|| {
            panic!("four-way plaza of side {side} cannot seat {per_group} agents per stream")
        })
}

/// Four orthogonal streams on a `side × side` plaza, one entering from
/// each edge and exiting through the opposite edge — all four cross
/// mid-grid. Groups are indexed north (0, down), south (1, up),
/// west (2, right), east (3, left); each spawn band excludes the plaza
/// corners so the four regions stay disjoint.
pub fn four_way_crossing(side: usize, per_group: usize) -> Scenario {
    four_way_crossing_mixed(side, [per_group; 4])
}

/// [`four_way_crossing`] with one explicit population per stream (north,
/// south, west, east). Sweeps use this to split an odd nominal population
/// exactly instead of rounding every stream down.
pub fn four_way_crossing_mixed(side: usize, per_group: [usize; 4]) -> Scenario {
    let largest = per_group.iter().copied().max().unwrap_or(0);
    let s = four_way_band(side, largest);
    let span = side - 2 * s;
    let north = Region::rect(0, s, s, span);
    let south = Region::rect(side - s, s, s, span);
    let west = Region::rect(s, 0, span, s);
    let east = Region::rect(s, side - s, span, s);
    Scenario::builder("four_way_crossing", side, side)
        .group(north.clone(), south.clone(), per_group[0])
        .group(south, north, per_group[1])
        .group(west.clone(), east.clone(), per_group[2])
        .group(east, west, per_group[3])
        .build()
        .expect("four-way crossing geometry is always valid")
}

/// Two streams entering a top corridor from its left and right ends and
/// merging down a single central stem toward one shared exit band at the
/// bottom — the classic T-junction merge. Both groups share the exit's
/// target cells (their mask bits overlap), so throughput measures the
/// merged flow.
pub fn t_junction_merge(side: usize, per_group: usize) -> Scenario {
    assert!(side >= 16, "t-junction needs a side of at least 16");
    let bar = side / 4; // top corridor height
    let stem_w = (side / 4).max(2);
    let stem_c0 = (side - stem_w) / 2;
    // Spawn width at each corridor end: prefer ~0.6 fill, fall back to
    // the smallest width that seats the group; both ends stay disjoint.
    let max_w = side / 2;
    let spawn_w = (1..=max_w)
        .find(|&w| (bar * w) as f64 * 0.6 >= per_group as f64)
        .or_else(|| (1..=max_w).find(|&w| bar * w >= per_group))
        .unwrap_or_else(|| {
            panic!("t-junction of side {side} cannot seat {per_group} agents per stream")
        });
    let exit_rows = 2usize;
    let mut b = Scenario::builder("t_junction_merge", side, side);
    // Everything below the corridor is wall except the stem.
    if stem_c0 > 0 {
        b = b.wall_rect(bar, 0, side - bar, stem_c0);
    }
    if stem_c0 + stem_w < side {
        b = b.wall_rect(bar, stem_c0 + stem_w, side - bar, side - stem_c0 - stem_w);
    }
    let exit = Region::rect(side - exit_rows, stem_c0, exit_rows, stem_w);
    b.group(Region::rect(0, 0, bar, spawn_w), exit.clone(), per_group)
        .group(
            Region::rect(0, side - spawn_w, bar, spawn_w),
            exit,
            per_group,
        )
        .build()
        .expect("t-junction geometry is always valid")
}

/// The paper corridor with uneven populations: `top` agents walking down
/// against `bottom` agents walking up. Obstacle-free with opposite-edge
/// band targets, so it still takes the row-table fast path — asymmetric
/// index ranges on the legacy routing, exactly the case the old
/// `agents_per_side * 2` bookkeeping got wrong.
pub fn asymmetric_corridor(width: usize, height: usize, top: usize, bottom: usize) -> Scenario {
    let s_top = band_rows(width, height, top);
    let s_bottom = band_rows(width, height, bottom);
    assert!(
        s_top + s_bottom <= height,
        "corridor of {height} rows cannot seat {top}+{bottom} agents: spawn bands overlap"
    );
    Scenario::builder("asymmetric_corridor", width, height)
        .spawn(Group::TOP, Region::row_band(0, s_top, width))
        .spawn(
            Group::BOTTOM,
            Region::row_band(height - s_bottom, s_bottom, width),
        )
        .target(
            Group::TOP,
            Region::row_band(height - s_bottom, s_bottom, width),
        )
        .target(Group::BOTTOM, Region::row_band(0, s_top, width))
        .population(Group::TOP, top)
        .population(Group::BOTTOM, bottom)
        .build()
        .expect("asymmetric corridor geometry is always valid")
}

/// The paper corridor with open boundaries: both edge bands feed a
/// continuous Poisson-like inflow of `rate` agents per step per group, and
/// both target bands are sinks that remove arriving agents. Each group
/// holds `capacity_per_side` recyclable property slots (the most agents of
/// that group ever live at once); the corridor starts empty and fills
/// toward the inflow/outflow equilibrium. Obstacle-free with full-width
/// opposite-edge targets, so it routes by the row-table fast path — the
/// open-boundary lifecycle on the paper's exact corridor geometry.
pub fn open_corridor(width: usize, height: usize, capacity_per_side: usize, rate: f64) -> Scenario {
    assert!(rate >= 0.0, "inflow rate must be non-negative");
    // The band is the inflow's footprint, not a resident population: size
    // it so the per-cell spawn probability stays ≤ 0.25 (4× headroom for
    // congested steps), one row minimum, a quarter of the corridor at
    // most. Slot capacity is independent — the pool lives off-grid.
    let s = ((rate * 4.0 / width.max(1) as f64).ceil() as usize).clamp(1, (height / 4).max(1));
    assert!(
        s * 2 <= height,
        "open corridor of {height} rows cannot fit inflow bands of {s} rows"
    );
    let top = Region::row_band(0, s, width);
    let bottom = Region::row_band(height - s, s, width);
    Scenario::builder("open_corridor", width, height)
        .spawn(Group::TOP, top.clone())
        .spawn(Group::BOTTOM, bottom.clone())
        .target(Group::TOP, bottom.clone())
        .target(Group::BOTTOM, top.clone())
        .population(Group::TOP, 0)
        .population(Group::BOTTOM, 0)
        .capacity(Group::TOP, capacity_per_side)
        .capacity(Group::BOTTOM, capacity_per_side)
        .source(Group::TOP, top, rate)
        .source(Group::BOTTOM, bottom, rate)
        .build()
        .expect("open corridor geometry is always valid")
}

/// Two continuous orthogonal streams on a `side × side` plaza with open
/// boundaries: group 0 flows top→bottom, group 1 left→right, each fed at
/// `rate` agents per step from its edge band and drained at the opposite
/// edge. Same geometry as [`crossing`], so the streams intersect mid-grid
/// at a sustained density instead of one transient wave.
pub fn open_crossing(side: usize, capacity_per_stream: usize, rate: f64) -> Scenario {
    let s = (1..side / 2)
        .find(|&s| (s * (side - s)) as f64 * 0.6 >= capacity_per_stream as f64)
        .unwrap_or(side / 2)
        .max(2);
    let top = Region::rect(0, s, s, side - s);
    let left = Region::rect(s, 0, side - s, s);
    Scenario::builder("open_crossing", side, side)
        .spawn(Group::TOP, top.clone())
        .target(Group::TOP, Region::row_band(side - s, s, side))
        .spawn(Group::BOTTOM, left.clone())
        .target(Group::BOTTOM, Region::col_band(side - s, s, side))
        .population(Group::TOP, 0)
        .population(Group::BOTTOM, 0)
        .capacity(Group::TOP, capacity_per_stream)
        .capacity(Group::BOTTOM, capacity_per_stream)
        .source(Group::TOP, top, rate)
        .source(Group::BOTTOM, left, rate)
        .build()
        .expect("open crossing geometry is always valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pedsim_grid::{DistanceKind, Heading};

    #[test]
    fn paper_corridor_mirrors_env_config() {
        let cfg = EnvConfig::small(32, 32, 40).with_seed(11);
        let s = paper_corridor(&cfg);
        assert!(s.uses_row_fast_path());
        assert_eq!(s.distance_data().kind, DistanceKind::Rows);
        // Same placement, bit for bit.
        let legacy = pedsim_grid::Environment::new(&cfg);
        let scen = s.build_environment();
        assert_eq!(legacy.mat, scen.mat);
        assert_eq!(legacy.index, scen.index);
        assert_eq!(legacy.props, scen.props);
        assert_eq!(legacy.spawn_rows, scen.spawn_rows);
        assert_eq!(legacy.group_sizes, scen.group_sizes);
    }

    #[test]
    fn doorway_has_exactly_gap_passable_cells_mid_row() {
        for gap in [1usize, 4, 9] {
            let s = doorway(32, 32, 60, gap);
            let mid = 16;
            let open = (0..32).filter(|&c| !s.is_wall(mid, c)).count();
            assert_eq!(open, gap, "gap {gap}");
            assert_eq!(s.distance_data().kind, DistanceKind::Grid);
            s.build_environment()
                .check_consistency()
                .expect("consistent");
        }
    }

    #[test]
    fn pillar_hall_keeps_bands_clear() {
        let s = pillar_hall(48, 48, 200, 6);
        assert!(!s.walls().is_empty());
        let env = s.build_environment();
        env.check_consistency().expect("consistent");
        // No pillar inside either spawn band.
        for &(r, _) in s.walls() {
            assert!((r as usize) >= env.spawn_rows);
            assert!((r as usize) < 48 - env.spawn_rows);
        }
    }

    #[test]
    fn crossing_streams_are_disjoint_and_orthogonal() {
        let s = crossing(40, 150);
        assert_eq!(s.distance_data().kind, DistanceKind::Grid);
        // The horizontal stream is a true second-axis group now: its
        // heading is rightward and its forward slot follows.
        assert_eq!(s.group(Group::BOTTOM).heading, Heading::Right);
        assert_eq!(s.distance_data().forward, vec![0, 4]);
        let env = s.build_environment();
        env.check_consistency().expect("consistent");
        // The horizontal stream's target is a column band: crossing for
        // its agents means "reached the right edge".
        assert!(env.has_crossed(Group::BOTTOM, 20, 39));
        assert!(!env.has_crossed(Group::BOTTOM, 20, 0));
        // And the vertical stream still crosses downward.
        assert!(env.has_crossed(Group::TOP, 39, 20));
    }

    #[test]
    fn four_way_crossing_has_four_disjoint_streams() {
        let s = four_way_crossing(40, 100);
        assert_eq!(s.n_groups(), 4);
        assert_eq!(s.distance_data().kind, DistanceKind::Grid);
        assert_eq!(s.distance_data().groups, 4);
        assert_eq!(s.distance_data().forward, vec![0, 5, 4, 3]);
        let env = s.build_environment();
        env.check_consistency().expect("consistent");
        assert_eq!(env.total_agents(), 400);
        // Each stream's target sits at the opposite edge.
        assert!(env.has_crossed(Group::new(0), 39, 20)); // north → bottom
        assert!(env.has_crossed(Group::new(1), 0, 20)); // south → top
        assert!(env.has_crossed(Group::new(2), 20, 39)); // west → right
        assert!(env.has_crossed(Group::new(3), 20, 0)); // east → left
        assert!(!env.has_crossed(Group::new(2), 20, 0));
    }

    #[test]
    fn t_junction_walls_leave_only_the_stem() {
        let s = t_junction_merge(32, 40);
        let env = s.build_environment();
        env.check_consistency().expect("consistent");
        // Below the corridor, only stem columns are passable.
        let bar = 8;
        let open: Vec<usize> = (0..32).filter(|&c| !s.is_wall(bar, c)).collect();
        assert_eq!(open, (12..20).collect::<Vec<_>>());
        // Both groups share the exit cells: both mask bits set.
        let mask = s.target_mask();
        assert_eq!(
            mask.get(31, 15),
            Group::TOP.target_bit() | Group::BOTTOM.target_bit()
        );
        // Both headings derive downward (the merge direction).
        assert_eq!(s.group(Group::TOP).heading, Heading::Down);
        assert_eq!(s.group(Group::BOTTOM).heading, Heading::Down);
    }

    #[test]
    fn asymmetric_corridor_keeps_fast_path_with_uneven_groups() {
        let s = asymmetric_corridor(32, 32, 60, 20);
        assert!(s.uses_row_fast_path());
        assert_eq!(s.populations(), vec![60, 20]);
        assert_eq!(s.total_agents(), 80);
        let env = s.build_environment();
        env.check_consistency().expect("consistent");
        assert_eq!(env.group_of(60), Group::TOP);
        assert_eq!(env.group_of(61), Group::BOTTOM);
    }

    #[test]
    fn registry_names_cover_all_constructors() {
        assert_eq!(names().len(), 9);
    }

    #[test]
    fn open_corridor_is_open_on_the_fast_path() {
        let s = open_corridor(32, 32, 60, 1.5);
        assert!(s.is_open());
        assert!(s.uses_row_fast_path());
        assert_eq!(s.total_agents(), 0);
        assert_eq!(s.total_capacity(), 120);
        assert_eq!(s.capacities(), vec![60, 60]);
        let src = s.source(Group::TOP).expect("top source");
        assert!((src.rate - 1.5).abs() < 1e-12);
        // Sources sit on the groups' own spawn bands, away from their sinks.
        assert!(src.region.contains(0, 5));
        let env = s.build_environment();
        env.check_consistency().expect("consistent");
        assert_eq!(env.live_count(), 0);
        assert_eq!(env.free[0].len(), 60);
        // Smallest slot pops first.
        assert_eq!(env.free[0].first(), Some(&1));
        assert_eq!(env.free[1].first(), Some(&61));
    }

    #[test]
    fn open_crossing_streams_are_orthogonal_and_open() {
        let s = open_crossing(32, 50, 2.0);
        assert!(s.is_open());
        assert_eq!(s.group(Group::BOTTOM).heading, Heading::Right);
        assert_eq!(s.distance_data().kind, DistanceKind::Grid);
        let env = s.build_environment();
        env.check_consistency().expect("consistent");
        assert_eq!(env.live_count(), 0);
        assert_eq!(env.total_agents(), 100);
    }

    #[test]
    #[should_panic(expected = "reach the mid-height wall")]
    fn doorway_rejects_bands_touching_the_wall() {
        // 8 rows with 20 agents per side derives 4-row bands: the bottom
        // band includes row 4 = the wall row.
        let _ = doorway(8, 8, 20, 2);
    }
}
