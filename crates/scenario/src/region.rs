//! Cell regions: where agents spawn and where they are headed.

/// A set of cells with a fixed enumeration order.
///
/// The order matters: spawn placement runs a partial Fisher–Yates shuffle
/// over the region's cells, so the enumeration order is part of the
/// deterministic-placement contract (the registry's `paper_corridor`
/// reproduces the legacy corridor bit for bit *because* its spawn regions
/// enumerate the same band cells in the same row-major order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    cells: Vec<(u16, u16)>,
}

impl Region {
    /// A rectangle of `rows × cols` cells with top-left corner `(r0, c0)`,
    /// enumerated row-major.
    pub fn rect(r0: usize, c0: usize, rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "empty region rectangle");
        assert!(
            r0 + rows <= u16::MAX as usize && c0 + cols <= u16::MAX as usize,
            "region exceeds u16 coordinates"
        );
        Self {
            cells: (r0..r0 + rows)
                .flat_map(|r| (c0..c0 + cols).map(move |c| (r as u16, c as u16)))
                .collect(),
        }
    }

    /// A full-width horizontal band: rows `r0..r0 + rows` over `width`
    /// columns (the classic spawn/target band shape).
    pub fn row_band(r0: usize, rows: usize, width: usize) -> Self {
        Self::rect(r0, 0, rows, width)
    }

    /// A full-height vertical band: columns `c0..c0 + cols` over `height`
    /// rows.
    pub fn col_band(c0: usize, cols: usize, height: usize) -> Self {
        Self::rect(0, c0, height, cols)
    }

    /// An explicit cell list (kept in the given order).
    ///
    /// Panics on duplicates: a region is a *set* with an enumeration
    /// order, and a duplicated spawn cell would otherwise surface only as
    /// a placement panic deep inside `build_environment`.
    pub fn from_cells(cells: impl IntoIterator<Item = (u16, u16)>) -> Self {
        let cells: Vec<_> = cells.into_iter().collect();
        assert!(!cells.is_empty(), "empty region");
        let mut seen = cells.clone();
        seen.sort_unstable();
        let before = seen.len();
        seen.dedup();
        assert_eq!(before, seen.len(), "duplicate cell in region");
        Self { cells }
    }

    /// The cells in enumeration order.
    #[inline]
    pub fn cells(&self) -> &[(u16, u16)] {
        &self.cells
    }

    /// Number of cells.
    #[inline]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Always false — regions cannot be constructed empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Membership test (linear; regions are small and this is not on a
    /// simulation hot path).
    pub fn contains(&self, r: u16, c: u16) -> bool {
        self.cells.contains(&(r, c))
    }

    /// Number of distinct rows the region touches.
    pub fn row_extent(&self) -> usize {
        let mut rows: Vec<u16> = self.cells.iter().map(|&(r, _)| r).collect();
        rows.sort_unstable();
        rows.dedup();
        rows.len()
    }

    /// Whether this region is exactly the full-width band of `rows` rows
    /// flush against the given edge (`top = true` for rows `0..rows`).
    pub fn is_edge_row_band(&self, width: usize, height: usize, top: bool) -> bool {
        let rows = self.cells.len() / width.max(1);
        if rows * width != self.cells.len() || rows == 0 || rows > height {
            return false;
        }
        let r0 = if top { 0 } else { height - rows };
        *self == Self::row_band(r0, rows, width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_is_row_major() {
        let r = Region::rect(2, 3, 2, 2);
        assert_eq!(r.cells(), &[(2, 3), (2, 4), (3, 3), (3, 4)]);
        assert_eq!(r.len(), 4);
        assert!(r.contains(3, 4));
        assert!(!r.contains(4, 3));
        assert_eq!(r.row_extent(), 2);
    }

    #[test]
    fn edge_band_detection() {
        let top = Region::row_band(0, 3, 16);
        assert!(top.is_edge_row_band(16, 32, true));
        assert!(!top.is_edge_row_band(16, 32, false));
        let bottom = Region::row_band(29, 3, 16);
        assert!(bottom.is_edge_row_band(16, 32, false));
        // An interior band is neither.
        let mid = Region::row_band(10, 3, 16);
        assert!(!mid.is_edge_row_band(16, 32, true));
        assert!(!mid.is_edge_row_band(16, 32, false));
        // A partial-width rect is not a band.
        let partial = Region::rect(0, 1, 3, 15);
        assert!(!partial.is_edge_row_band(16, 32, true));
    }

    #[test]
    fn from_cells_keeps_order() {
        let r = Region::from_cells([(5, 5), (2, 9), (5, 6)]);
        assert_eq!(r.cells(), &[(5, 5), (2, 9), (5, 6)]);
    }

    #[test]
    #[should_panic(expected = "duplicate cell")]
    fn from_cells_rejects_duplicates() {
        let _ = Region::from_cells([(1, 1), (2, 2), (1, 1)]);
    }

    #[test]
    fn col_band_shape() {
        let r = Region::col_band(0, 2, 4);
        assert_eq!(r.len(), 8);
        assert!(r.contains(3, 1));
        assert!(!r.contains(3, 2));
    }
}
