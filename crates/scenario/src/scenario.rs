//! The declarative world description and its builder.

use std::sync::{Arc, OnceLock};

use pedsim_grid::cell::Group;
use pedsim_grid::{
    place_in_cells, DistanceData, DistanceTables, EnvConfig, Environment, GridDistanceField,
    Matrix, PropertyTable, CELL_EMPTY, CELL_WALL,
};
use philox::StreamRng;

use crate::region::Region;

/// Why a scenario description is rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioError {
    /// The grid is smaller than the simulation substrate supports.
    WorldTooSmall {
        /// Requested width.
        width: usize,
        /// Requested height.
        height: usize,
    },
    /// A region or wall cell lies outside the grid.
    OutOfBounds {
        /// What was out of bounds.
        what: &'static str,
        /// The offending cell.
        cell: (u16, u16),
    },
    /// A group's spawn region is missing.
    MissingSpawn(&'static str),
    /// A group's target region is missing.
    MissingTarget(&'static str),
    /// A spawn region overlaps a wall or the other group's spawn region.
    SpawnOverlap {
        /// What the spawn collides with.
        with: &'static str,
        /// The shared cell.
        cell: (u16, u16),
    },
    /// A spawn region cannot hold the requested population.
    SpawnTooSmall {
        /// The group whose region is too small.
        group: &'static str,
        /// Requested agents.
        agents: usize,
        /// Region capacity.
        capacity: usize,
    },
    /// Every cell of a group's target region is walled off.
    TargetWalled(&'static str),
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::WorldTooSmall { width, height } => {
                write!(f, "world {width}x{height} is too small (need >= 2x4)")
            }
            Self::OutOfBounds { what, cell } => {
                write!(f, "{what} cell ({}, {}) out of bounds", cell.0, cell.1)
            }
            Self::MissingSpawn(g) => write!(f, "{g} group has no spawn region"),
            Self::MissingTarget(g) => write!(f, "{g} group has no target region"),
            Self::SpawnOverlap { with, cell } => {
                write!(
                    f,
                    "spawn region overlaps {with} at ({}, {})",
                    cell.0, cell.1
                )
            }
            Self::SpawnTooSmall {
                group,
                agents,
                capacity,
            } => write!(
                f,
                "{group} spawn region holds {capacity} cells, cannot seat {agents} agents"
            ),
            Self::TargetWalled(g) => write!(f, "every {g} target cell is a wall"),
        }
    }
}

impl std::error::Error for ScenarioError {}

/// A declarative simulation world: geometry, interior obstacles, per-group
/// spawn and target regions, and population.
///
/// Scenarios are immutable once built (construction goes through
/// [`ScenarioBuilder`], which validates the description), so engines can
/// share one behind an `Arc`; the distance field is computed once per
/// instance and shared by every engine built from it.
#[derive(Debug, Clone)]
pub struct Scenario {
    name: String,
    width: usize,
    height: usize,
    /// Interior obstacle cells, sorted row-major and deduplicated.
    walls: Vec<(u16, u16)>,
    spawns: [Region; 2],
    targets: [Region; 2],
    agents_per_side: usize,
    seed: u64,
    /// Lazily computed distance field (seed-independent, so survives
    /// `with_seed`); excluded from equality.
    dist_cache: OnceLock<Arc<DistanceData>>,
}

impl PartialEq for Scenario {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.width == other.width
            && self.height == other.height
            && self.walls == other.walls
            && self.spawns == other.spawns
            && self.targets == other.targets
            && self.agents_per_side == other.agents_per_side
            && self.seed == other.seed
    }
}

impl Scenario {
    /// Start describing a `width × height` world.
    pub fn builder(name: impl Into<String>, width: usize, height: usize) -> ScenarioBuilder {
        ScenarioBuilder {
            name: name.into(),
            width,
            height,
            walls: Vec::new(),
            spawns: [None, None],
            targets: [None, None],
            agents_per_side: 0,
            seed: 0,
        }
    }

    /// Scenario name (registry key / report label).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Grid width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Grid height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Interior obstacle cells (sorted row-major).
    pub fn walls(&self) -> &[(u16, u16)] {
        &self.walls
    }

    /// Group `g`'s spawn region.
    pub fn spawn(&self, g: Group) -> &Region {
        &self.spawns[g.index()]
    }

    /// Group `g`'s target region.
    pub fn target(&self, g: Group) -> &Region {
        &self.targets[g.index()]
    }

    /// Agents per group.
    pub fn agents_per_side(&self) -> usize {
        self.agents_per_side
    }

    /// Total population.
    pub fn total_agents(&self) -> usize {
        self.agents_per_side * 2
    }

    /// Placement/kernel seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Builder-style seed change (scenario validity is seed-independent).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Whether `(r, c)` is an interior wall cell.
    pub fn is_wall(&self, r: usize, c: usize) -> bool {
        r <= u16::MAX as usize
            && c <= u16::MAX as usize
            && self.walls.binary_search(&(r as u16, c as u16)).is_ok()
    }

    /// True when the world is obstacle-free *and* both targets are the
    /// classic full-width opposite-edge bands — exactly the geometry the
    /// paper's row-based distance tables encode. Such scenarios take the
    /// [`DistanceTables`] fast path and reproduce the legacy corridor
    /// trajectories bit for bit; everything else routes through a
    /// [`GridDistanceField`].
    pub fn uses_row_fast_path(&self) -> bool {
        self.walls.is_empty()
            && self.targets[Group::Top.index()].is_edge_row_band(self.width, self.height, false)
            && self.targets[Group::Bottom.index()].is_edge_row_band(self.width, self.height, true)
    }

    /// The distance field this scenario routes by, in uploadable form.
    /// Computed on first call and cached: every engine built from the same
    /// scenario instance (CPU/GPU pairs, repeated runs) shares one field
    /// instead of re-running the Dijkstra.
    pub fn distance_data(&self) -> Arc<DistanceData> {
        self.dist_cache
            .get_or_init(|| {
                Arc::new(if self.uses_row_fast_path() {
                    DistanceData::from_field(&DistanceTables::new(self.height))
                } else {
                    let field = GridDistanceField::compute(
                        self.height,
                        self.width,
                        |r, c| self.is_wall(r, c),
                        [
                            self.targets[Group::Top.index()].cells(),
                            self.targets[Group::Bottom.index()].cells(),
                        ],
                    );
                    DistanceData::from_field(&field)
                })
            })
            .clone()
    }

    /// The per-cell target bitmask ([`Group::target_bit`] bits).
    pub fn target_mask(&self) -> Matrix<u8> {
        let mut mask = Matrix::filled(self.height, self.width, 0u8);
        for g in Group::BOTH {
            for &(r, c) in self.targets[g.index()].cells() {
                let cur = mask.get(r as usize, c as usize);
                mask.set(r as usize, c as usize, cur | g.target_bit());
            }
        }
        mask
    }

    /// An [`EnvConfig`] mirroring this scenario's geometry (the record the
    /// simulation configuration carries for reporting and kernel seeding).
    ///
    /// `spawn_rows` reports the *top* group's row extent and `spawn_fill`
    /// the classic 0.6 convention; for asymmetric worlds (e.g. the
    /// registry's `crossing`) these are reporting approximations only —
    /// crossing semantics always come from the per-cell target mask, never
    /// from this record.
    pub fn env_config(&self) -> EnvConfig {
        EnvConfig {
            width: self.width,
            height: self.height,
            agents_per_side: self.agents_per_side,
            spawn_rows: Some(self.spawns[0].row_extent()),
            spawn_fill: 0.6,
            seed: self.seed,
        }
    }

    /// Build and populate the world (the paper's data-preparation stage
    /// over a declarative description): walls stamped into `mat`, both
    /// groups placed uniformly at random inside their spawn regions with
    /// the same dedicated RNG streams the legacy corridor uses, target
    /// bitmask attached.
    pub fn build_environment(&self) -> Environment {
        let n = self.agents_per_side;
        let mut mat = Matrix::filled(self.height, self.width, CELL_EMPTY);
        let mut index = Matrix::filled(self.height, self.width, 0u32);
        let mut props = PropertyTable::new(2 * n);
        for &(r, c) in &self.walls {
            mat.set(r as usize, c as usize, CELL_WALL);
        }
        // The same dedicated placement streams Environment::new uses, far
        // away from the per-cell streams the kernels draw from.
        let mut rng_top = StreamRng::new(self.seed, u64::MAX - 1);
        let mut rng_bot = StreamRng::new(self.seed, u64::MAX - 2);
        place_in_cells(
            &mut mat,
            &mut index,
            &mut props,
            Group::Top.label(),
            self.spawns[Group::Top.index()].cells().to_vec(),
            n,
            1,
            &mut rng_top,
        );
        place_in_cells(
            &mut mat,
            &mut index,
            &mut props,
            Group::Bottom.label(),
            self.spawns[Group::Bottom.index()].cells().to_vec(),
            n,
            (n + 1) as u32,
            &mut rng_bot,
        );
        Environment {
            mat,
            index,
            props,
            spawn_rows: self.spawns[0].row_extent(),
            agents_per_side: n,
            seed: self.seed,
            targets: Some(Arc::new(self.target_mask())),
        }
    }
}

/// Builder for [`Scenario`] (validates on [`ScenarioBuilder::build`]).
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    name: String,
    width: usize,
    height: usize,
    walls: Vec<(u16, u16)>,
    spawns: [Option<Region>; 2],
    targets: [Option<Region>; 2],
    agents_per_side: usize,
    seed: u64,
}

impl ScenarioBuilder {
    /// Add a single obstacle cell.
    pub fn wall_cell(mut self, r: usize, c: usize) -> Self {
        assert!(
            r <= u16::MAX as usize && c <= u16::MAX as usize,
            "wall cell ({r},{c}) exceeds u16 coordinates"
        );
        self.walls.push((r as u16, c as u16));
        self
    }

    /// Add a rectangle of obstacle cells.
    pub fn wall_rect(mut self, r0: usize, c0: usize, rows: usize, cols: usize) -> Self {
        assert!(
            r0 + rows <= u16::MAX as usize && c0 + cols <= u16::MAX as usize,
            "wall rectangle exceeds u16 coordinates"
        );
        for r in r0..r0 + rows {
            for c in c0..c0 + cols {
                self.walls.push((r as u16, c as u16));
            }
        }
        self
    }

    /// Set group `g`'s spawn region.
    pub fn spawn(mut self, g: Group, region: Region) -> Self {
        self.spawns[g.index()] = Some(region);
        self
    }

    /// Set group `g`'s target region.
    pub fn target(mut self, g: Group, region: Region) -> Self {
        self.targets[g.index()] = Some(region);
        self
    }

    /// Set the per-group population.
    pub fn agents_per_side(mut self, n: usize) -> Self {
        self.agents_per_side = n;
        self
    }

    /// Set the placement/kernel seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validate the description and produce the immutable [`Scenario`].
    pub fn build(self) -> Result<Scenario, ScenarioError> {
        let (w, h) = (self.width, self.height);
        if w < 2 || h < 4 {
            return Err(ScenarioError::WorldTooSmall {
                width: w,
                height: h,
            });
        }
        let in_bounds = |&(r, c): &(u16, u16)| (r as usize) < h && (c as usize) < w;
        let mut walls = self.walls;
        walls.sort_unstable();
        walls.dedup();
        if let Some(&cell) = walls.iter().find(|c| !in_bounds(c)) {
            return Err(ScenarioError::OutOfBounds { what: "wall", cell });
        }
        let group_name = |g: Group| match g {
            Group::Top => "top",
            Group::Bottom => "bottom",
        };
        let mut spawns = Vec::with_capacity(2);
        let mut targets = Vec::with_capacity(2);
        for g in Group::BOTH {
            let spawn = self.spawns[g.index()]
                .clone()
                .ok_or(ScenarioError::MissingSpawn(group_name(g)))?;
            if let Some(&cell) = spawn.cells().iter().find(|c| !in_bounds(c)) {
                return Err(ScenarioError::OutOfBounds {
                    what: "spawn",
                    cell,
                });
            }
            if let Some(&cell) = spawn
                .cells()
                .iter()
                .find(|&&(r, c)| walls.binary_search(&(r, c)).is_ok())
            {
                return Err(ScenarioError::SpawnOverlap {
                    with: "a wall",
                    cell,
                });
            }
            if spawn.len() < self.agents_per_side {
                return Err(ScenarioError::SpawnTooSmall {
                    group: group_name(g),
                    agents: self.agents_per_side,
                    capacity: spawn.len(),
                });
            }
            let target = self.targets[g.index()]
                .clone()
                .ok_or(ScenarioError::MissingTarget(group_name(g)))?;
            if let Some(&cell) = target.cells().iter().find(|c| !in_bounds(c)) {
                return Err(ScenarioError::OutOfBounds {
                    what: "target",
                    cell,
                });
            }
            if target
                .cells()
                .iter()
                .all(|&(r, c)| walls.binary_search(&(r, c)).is_ok())
            {
                return Err(ScenarioError::TargetWalled(group_name(g)));
            }
            spawns.push(spawn);
            targets.push(target);
        }
        let (bottom_spawn, top_spawn) = (spawns.pop().expect("two"), spawns.pop().expect("two"));
        // Sorted probe list keeps this O((n+m) log m); regions reach ~10^4
        // cells at paper scale and a linear-scan contains would go
        // quadratic here.
        let mut bottom_cells: Vec<(u16, u16)> = bottom_spawn.cells().to_vec();
        bottom_cells.sort_unstable();
        if let Some(&cell) = top_spawn
            .cells()
            .iter()
            .find(|c| bottom_cells.binary_search(c).is_ok())
        {
            return Err(ScenarioError::SpawnOverlap {
                with: "the other group's spawn region",
                cell,
            });
        }
        let (bottom_target, top_target) =
            (targets.pop().expect("two"), targets.pop().expect("two"));
        Ok(Scenario {
            name: self.name,
            width: w,
            height: h,
            walls,
            spawns: [top_spawn, bottom_spawn],
            targets: [top_target, bottom_target],
            agents_per_side: self.agents_per_side,
            seed: self.seed,
            dist_cache: OnceLock::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corridor() -> Scenario {
        Scenario::builder("t", 16, 16)
            .spawn(Group::Top, Region::row_band(0, 3, 16))
            .spawn(Group::Bottom, Region::row_band(13, 3, 16))
            .target(Group::Top, Region::row_band(13, 3, 16))
            .target(Group::Bottom, Region::row_band(0, 3, 16))
            .agents_per_side(20)
            .seed(5)
            .build()
            .expect("valid")
    }

    #[test]
    fn corridor_takes_row_fast_path() {
        let s = corridor();
        assert!(s.uses_row_fast_path());
        let d = s.distance_data();
        assert_eq!(d.kind, pedsim_grid::DistanceKind::Rows);
        assert_eq!(d.data.len(), 2 * 16 * 8);
    }

    #[test]
    fn walls_force_grid_field() {
        let s = Scenario::builder("t", 16, 16)
            .wall_rect(8, 0, 1, 7)
            .wall_rect(8, 9, 1, 7)
            .spawn(Group::Top, Region::row_band(0, 3, 16))
            .spawn(Group::Bottom, Region::row_band(13, 3, 16))
            .target(Group::Top, Region::row_band(13, 3, 16))
            .target(Group::Bottom, Region::row_band(0, 3, 16))
            .agents_per_side(20)
            .build()
            .expect("valid");
        assert!(!s.uses_row_fast_path());
        let d = s.distance_data();
        assert_eq!(d.kind, pedsim_grid::DistanceKind::Grid);
        assert_eq!(d.data.len(), 2 * 16 * 16);
        assert!(s.is_wall(8, 0) && !s.is_wall(8, 8));
    }

    #[test]
    fn environment_matches_description() {
        let s = Scenario::builder("t", 16, 16)
            .wall_rect(8, 0, 1, 6)
            .spawn(Group::Top, Region::row_band(0, 3, 16))
            .spawn(Group::Bottom, Region::row_band(13, 3, 16))
            .target(Group::Top, Region::row_band(13, 3, 16))
            .target(Group::Bottom, Region::row_band(0, 3, 16))
            .agents_per_side(12)
            .seed(9)
            .build()
            .expect("valid");
        let env = s.build_environment();
        env.check_consistency().expect("consistent");
        assert_eq!(env.mat.count(CELL_WALL), 6);
        assert_eq!(env.mat.count(Group::Top.label()), 12);
        assert_eq!(env.mat.count(Group::Bottom.label()), 12);
        assert!(env.targets.is_some());
        assert!(env.has_crossed(Group::Top, 14, 3));
        assert!(!env.has_crossed(Group::Top, 8, 3));
    }

    #[test]
    fn validation_rejects_bad_descriptions() {
        let base = || {
            Scenario::builder("t", 16, 16)
                .spawn(Group::Top, Region::row_band(0, 3, 16))
                .spawn(Group::Bottom, Region::row_band(13, 3, 16))
                .target(Group::Top, Region::row_band(13, 3, 16))
                .target(Group::Bottom, Region::row_band(0, 3, 16))
                .agents_per_side(10)
        };
        assert!(base().build().is_ok());
        // Spawn overlapping a wall.
        assert!(matches!(
            base().wall_cell(1, 1).build(),
            Err(ScenarioError::SpawnOverlap { .. })
        ));
        // Overcrowded spawn.
        assert!(matches!(
            base().agents_per_side(49).build(),
            Err(ScenarioError::SpawnTooSmall { .. })
        ));
        // Out-of-bounds wall.
        assert!(matches!(
            base().wall_cell(20, 0).build(),
            Err(ScenarioError::OutOfBounds { .. })
        ));
        // Missing target.
        assert!(matches!(
            Scenario::builder("t", 16, 16)
                .spawn(Group::Top, Region::row_band(0, 3, 16))
                .spawn(Group::Bottom, Region::row_band(13, 3, 16))
                .target(Group::Top, Region::row_band(13, 3, 16))
                .agents_per_side(10)
                .build(),
            Err(ScenarioError::MissingTarget("bottom"))
        ));
        // Fully-walled target.
        assert!(matches!(
            Scenario::builder("t", 16, 16)
                .wall_rect(8, 0, 1, 16)
                .spawn(Group::Top, Region::row_band(0, 3, 16))
                .spawn(Group::Bottom, Region::row_band(13, 3, 16))
                .target(Group::Top, Region::rect(8, 0, 1, 16))
                .target(Group::Bottom, Region::row_band(0, 3, 16))
                .agents_per_side(10)
                .build(),
            Err(ScenarioError::TargetWalled("top"))
        ));
        // Overlapping spawns.
        assert!(matches!(
            Scenario::builder("t", 16, 16)
                .spawn(Group::Top, Region::row_band(0, 3, 16))
                .spawn(Group::Bottom, Region::row_band(2, 3, 16))
                .target(Group::Top, Region::row_band(13, 3, 16))
                .target(Group::Bottom, Region::row_band(0, 3, 16))
                .agents_per_side(10)
                .build(),
            Err(ScenarioError::SpawnOverlap { .. })
        ));
    }

    #[test]
    fn seed_round_trip_and_env_config() {
        let s = corridor().with_seed(77);
        assert_eq!(s.seed(), 77);
        let ec = s.env_config();
        assert_eq!(ec.width, 16);
        assert_eq!(ec.seed, 77);
        assert_eq!(ec.spawn_rows, Some(3));
    }
}
