//! The declarative world description and its builder.

use std::sync::{Arc, OnceLock};

use pedsim_grid::cell::{Group, Heading, MAX_GROUPS};
use pedsim_grid::{
    place_in_cells, DistanceData, DistanceTables, EnvConfig, Environment, GridDistanceField,
    Matrix, PropertyTable, CELL_EMPTY, CELL_WALL,
};
use philox::StreamRng;

use crate::region::Region;

/// Why a scenario description is rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioError {
    /// The grid is smaller than the simulation substrate supports.
    WorldTooSmall {
        /// Requested width.
        width: usize,
        /// Requested height.
        height: usize,
    },
    /// No directional group was declared.
    NoGroups,
    /// More groups than the label/bitmask scheme supports.
    TooManyGroups {
        /// Declared group count.
        groups: usize,
    },
    /// A region or wall cell lies outside the grid.
    OutOfBounds {
        /// What was out of bounds.
        what: &'static str,
        /// The offending cell.
        cell: (u16, u16),
    },
    /// A group's spawn region is missing.
    MissingSpawn(usize),
    /// A group's target region is missing.
    MissingTarget(usize),
    /// A spawn region overlaps a wall or another group's spawn region.
    SpawnOverlap {
        /// What the spawn collides with.
        with: &'static str,
        /// The shared cell.
        cell: (u16, u16),
    },
    /// A spawn region cannot hold the requested population.
    SpawnTooSmall {
        /// The group whose region is too small.
        group: usize,
        /// Requested agents.
        agents: usize,
        /// Region capacity.
        capacity: usize,
    },
    /// Every cell of a group's target region is walled off.
    TargetWalled(usize),
    /// A group's slot capacity is smaller than its initial population.
    CapacityBelowPopulation {
        /// The group whose capacity is too small.
        group: usize,
        /// Declared slot capacity.
        capacity: usize,
        /// Initial population.
        population: usize,
    },
    /// A source region's inflow rate is negative, NaN, or infinite.
    InvalidSourceRate(usize),
    /// A source region overlaps a wall or the group's own target region
    /// (agents would despawn the step after they appear).
    SourceOverlap {
        /// What the source collides with.
        with: &'static str,
        /// The shared cell.
        cell: (u16, u16),
    },
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::WorldTooSmall { width, height } => {
                write!(f, "world {width}x{height} is too small (need >= 2x4)")
            }
            Self::NoGroups => write!(f, "scenario declares no directional groups"),
            Self::TooManyGroups { groups } => {
                write!(f, "{groups} groups exceed the supported {MAX_GROUPS}")
            }
            Self::OutOfBounds { what, cell } => {
                write!(f, "{what} cell ({}, {}) out of bounds", cell.0, cell.1)
            }
            Self::MissingSpawn(g) => write!(f, "group {g} has no spawn region"),
            Self::MissingTarget(g) => write!(f, "group {g} has no target region"),
            Self::SpawnOverlap { with, cell } => {
                write!(
                    f,
                    "spawn region overlaps {with} at ({}, {})",
                    cell.0, cell.1
                )
            }
            Self::SpawnTooSmall {
                group,
                agents,
                capacity,
            } => write!(
                f,
                "group {group} spawn region holds {capacity} cells, cannot seat {agents} agents"
            ),
            Self::TargetWalled(g) => write!(f, "every group-{g} target cell is a wall"),
            Self::CapacityBelowPopulation {
                group,
                capacity,
                population,
            } => write!(
                f,
                "group {group} capacity {capacity} cannot hold its initial \
                 population of {population}"
            ),
            Self::InvalidSourceRate(g) => {
                write!(f, "group {g} source rate must be finite and non-negative")
            }
            Self::SourceOverlap { with, cell } => {
                write!(
                    f,
                    "source region overlaps {with} at ({}, {})",
                    cell.0, cell.1
                )
            }
        }
    }
}

impl std::error::Error for ScenarioError {}

/// A per-group inflow source: new agents of the group appear inside
/// `region` at a Poisson-like rate, making the world *open-boundary*.
///
/// Each step, every empty source cell flips an independent coin with
/// probability `rate / region.len()`, so the expected inflow over the
/// whole region is `rate` agents per step (less when the region is
/// congested or the group's slot pool is exhausted). The draws are keyed
/// by the Philox `(seed, stream, counter)` scheme — one dedicated stream
/// per group, one counter range per step — so both engines produce the
/// identical arrival sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceDesc {
    /// Cells where agents appear, enumerated in the deterministic spawn
    /// order.
    pub region: Region,
    /// Expected arrivals per step across the whole region.
    pub rate: f64,
}

/// One directional group of a scenario: where it spawns, where it is
/// headed, and how many agents it fields.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupDesc {
    /// Spawn region (cells enumerated in the deterministic placement
    /// order).
    pub spawn: Region,
    /// Target region (arrival cells; may overlap other groups' targets).
    pub target: Region,
    /// Agents this group fields initially. Groups may be asymmetric.
    pub population: usize,
    /// Travel direction — the forward-priority anchor. Derived from the
    /// spawn→target displacement unless overridden in the builder.
    pub heading: Heading,
    /// Property-slot capacity: the most agents of this group that can be
    /// live at once. Equals `population` unless raised in the builder;
    /// open-boundary worlds size it above the initial population so the
    /// inflow has slots to recycle into.
    pub capacity: usize,
    /// Inflow source (open-boundary worlds). Any group carrying a source
    /// makes the whole scenario open: every group's target region then
    /// acts as a sink that removes arriving agents.
    pub source: Option<SourceDesc>,
}

/// A declarative simulation world: geometry, interior obstacles, and one
/// spawn/target/population description per directional group (up to
/// [`MAX_GROUPS`]).
///
/// Scenarios are immutable once built (construction goes through
/// [`ScenarioBuilder`], which validates the description), so engines can
/// share one behind an `Arc`; the distance field is computed once per
/// instance and shared by every engine built from it.
#[derive(Debug, Clone)]
pub struct Scenario {
    name: String,
    width: usize,
    height: usize,
    /// Interior obstacle cells, sorted row-major and deduplicated.
    walls: Vec<(u16, u16)>,
    groups: Vec<GroupDesc>,
    seed: u64,
    /// Lazily computed distance field (seed-independent, so survives
    /// `with_seed`); excluded from equality.
    dist_cache: OnceLock<Arc<DistanceData>>,
}

impl PartialEq for Scenario {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.width == other.width
            && self.height == other.height
            && self.walls == other.walls
            && self.groups == other.groups
            && self.seed == other.seed
    }
}

impl Scenario {
    /// Start describing a `width × height` world.
    pub fn builder(name: impl Into<String>, width: usize, height: usize) -> ScenarioBuilder {
        ScenarioBuilder {
            name: name.into(),
            width,
            height,
            walls: Vec::new(),
            slots: Vec::new(),
            default_population: 0,
            seed: 0,
        }
    }

    /// Scenario name (registry key / report label).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Grid width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Grid height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Interior obstacle cells (sorted row-major).
    pub fn walls(&self) -> &[(u16, u16)] {
        &self.walls
    }

    /// Number of directional groups.
    pub fn n_groups(&self) -> usize {
        self.groups.len()
    }

    /// Group `g`'s full description.
    pub fn group(&self, g: Group) -> &GroupDesc {
        &self.groups[g.index()]
    }

    /// All group descriptions, in index order.
    pub fn groups(&self) -> &[GroupDesc] {
        &self.groups
    }

    /// Group `g`'s spawn region.
    pub fn spawn(&self, g: Group) -> &Region {
        &self.groups[g.index()].spawn
    }

    /// Group `g`'s target region.
    pub fn target(&self, g: Group) -> &Region {
        &self.groups[g.index()].target
    }

    /// Per-group populations, in index order.
    pub fn populations(&self) -> Vec<usize> {
        self.groups.iter().map(|g| g.population).collect()
    }

    /// Group 0's population — the per-side count of the classic symmetric
    /// corridor (reporting convenience; asymmetric worlds should read
    /// [`Scenario::populations`]).
    pub fn agents_per_side(&self) -> usize {
        self.groups[0].population
    }

    /// Total initial population over all groups.
    pub fn total_agents(&self) -> usize {
        self.groups.iter().map(|g| g.population).sum()
    }

    /// Per-group slot capacities, in index order (equal to the populations
    /// for closed worlds).
    pub fn capacities(&self) -> Vec<usize> {
        self.groups.iter().map(|g| g.capacity).collect()
    }

    /// Total slot capacity over all groups — the size of the property
    /// table both engines allocate.
    pub fn total_capacity(&self) -> usize {
        self.groups.iter().map(|g| g.capacity).sum()
    }

    /// Group `g`'s inflow source, when it has one.
    pub fn source(&self, g: Group) -> Option<&SourceDesc> {
        self.groups[g.index()].source.as_ref()
    }

    /// Whether this is an open-boundary world: at least one group carries
    /// an inflow source. In an open world every group's target region is a
    /// sink — arriving agents are removed from the grid and their slots
    /// recycled — and runs are measured by flux, not arrival.
    pub fn is_open(&self) -> bool {
        self.groups.iter().any(|g| g.source.is_some())
    }

    /// Placement/kernel seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// A stable 64-bit fingerprint of everything that determines this
    /// scenario's trajectory: geometry, walls, every group's regions,
    /// population, heading, capacity, inflow source, and the seed. Equal
    /// scenarios hash equal **across commits and platforms** (fixed
    /// FNV-1a, never `std::hash`), which is what lets the results
    /// registry compare rows recorded weeks apart. The name participates
    /// too — two differently-named but otherwise identical worlds are
    /// different experiments.
    pub fn config_hash(&self) -> u64 {
        let mut h = pedsim_obs::hash::Fnv64::new()
            .str(&self.name)
            .usize(self.width)
            .usize(self.height)
            .u64(self.seed)
            .usize(self.walls.len());
        for &(r, c) in &self.walls {
            h = h.u64(u64::from(r) << 16 | u64::from(c));
        }
        h = h.usize(self.groups.len());
        for g in &self.groups {
            h = h
                .usize(g.population)
                .usize(g.capacity)
                .u64(g.heading.forward_index() as u64);
            for region in [&g.spawn, &g.target] {
                h = h.usize(region.cells().len());
                for &(r, c) in region.cells() {
                    h = h.u64(u64::from(r) << 16 | u64::from(c));
                }
            }
            match &g.source {
                None => h = h.u64(0),
                Some(s) => {
                    h = h.u64(1).f64(s.rate).usize(s.region.cells().len());
                    for &(r, c) in s.region.cells() {
                        h = h.u64(u64::from(r) << 16 | u64::from(c));
                    }
                }
            }
        }
        h.finish()
    }

    /// Builder-style seed change (scenario validity is seed-independent).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// A stable 64-bit fingerprint of the *routing geometry* alone: the
    /// exact inputs of [`Scenario::distance_data`] — extents, walls, each
    /// group's target cells and heading — and nothing else. Two scenarios
    /// with equal geometry hashes compute bit-identical distance fields
    /// even when they differ by name, seed, population, capacity, spawn
    /// regions, or inflow sources; the world cache uses this key to reuse
    /// the expensive per-group Dijkstra across the seed-varied replicas
    /// of a sweep rung. The covered inputs also fully determine
    /// [`Scenario::uses_row_fast_path`], so the row-table/grid-field
    /// choice can never diverge between producer and consumer.
    pub fn geometry_hash(&self) -> u64 {
        let mut h = pedsim_obs::hash::Fnv64::new()
            .str("routing_geometry")
            .usize(self.width)
            .usize(self.height)
            .usize(self.walls.len());
        for &(r, c) in &self.walls {
            h = h.u64(u64::from(r) << 16 | u64::from(c));
        }
        h = h.usize(self.groups.len());
        for g in &self.groups {
            h = h.u64(g.heading.forward_index() as u64);
            h = h.usize(g.target.cells().len());
            for &(r, c) in g.target.cells() {
                h = h.u64(u64::from(r) << 16 | u64::from(c));
            }
        }
        h.finish()
    }

    /// Pre-seed the lazy distance-field cache with an already computed
    /// plane set. A no-op when a field is already cached. The caller must
    /// only pass fields computed for an identical [`geometry_hash`] —
    /// the world cache's field level upholds this by construction.
    ///
    /// [`geometry_hash`]: Scenario::geometry_hash
    pub fn seed_distance_cache(&self, dist: Arc<DistanceData>) {
        let _ = self.dist_cache.set(dist);
    }

    /// Whether `(r, c)` is an interior wall cell.
    pub fn is_wall(&self, r: usize, c: usize) -> bool {
        r <= u16::MAX as usize
            && c <= u16::MAX as usize
            && self.walls.binary_search(&(r as u16, c as u16)).is_ok()
    }

    /// True when the world is an obstacle-free two-group corridor whose
    /// targets are the classic full-width opposite-edge bands — exactly
    /// the geometry the paper's row-based distance tables encode. Such
    /// scenarios take the [`DistanceTables`] fast path and reproduce the
    /// legacy corridor trajectories bit for bit; everything else routes
    /// through a [`GridDistanceField`].
    pub fn uses_row_fast_path(&self) -> bool {
        self.groups.len() == 2
            && self.walls.is_empty()
            && self.groups[0]
                .target
                .is_edge_row_band(self.width, self.height, false)
            && self.groups[1]
                .target
                .is_edge_row_band(self.width, self.height, true)
            && self.groups[0].heading == Heading::Down
            && self.groups[1].heading == Heading::Up
    }

    /// The distance field this scenario routes by, in uploadable form.
    /// Computed on first call and cached: every engine built from the same
    /// scenario instance (CPU/GPU pairs, repeated runs) shares one field
    /// instead of re-running the Dijkstra.
    pub fn distance_data(&self) -> Arc<DistanceData> {
        self.dist_cache
            .get_or_init(|| {
                Arc::new(if self.uses_row_fast_path() {
                    DistanceData::from_field(&DistanceTables::new(self.height))
                } else {
                    let targets: Vec<&[(u16, u16)]> =
                        self.groups.iter().map(|g| g.target.cells()).collect();
                    let forward: Vec<u8> = self
                        .groups
                        .iter()
                        .map(|g| g.heading.forward_index() as u8)
                        .collect();
                    let field = GridDistanceField::compute(
                        self.height,
                        self.width,
                        |r, c| self.is_wall(r, c),
                        &targets,
                    )
                    .with_forward(forward);
                    DistanceData::from_field(&field)
                })
            })
            .clone()
    }

    /// The per-cell target bitmask ([`Group::target_bit`] bits).
    pub fn target_mask(&self) -> Matrix<u8> {
        let mut mask = Matrix::filled(self.height, self.width, 0u8);
        for (gi, group) in self.groups.iter().enumerate() {
            let bit = Group::new(gi).target_bit();
            for &(r, c) in group.target.cells() {
                let cur = mask.get(r as usize, c as usize);
                mask.set(r as usize, c as usize, cur | bit);
            }
        }
        mask
    }

    /// An [`EnvConfig`] mirroring this scenario's geometry (the record the
    /// simulation configuration carries for reporting and kernel seeding).
    ///
    /// `agents_per_side` reports group 0's population, `spawn_rows` group
    /// 0's row extent, and `spawn_fill` the classic 0.6 convention; for
    /// multi-group or asymmetric worlds these are reporting approximations
    /// only — populations and crossing semantics always come from the
    /// scenario itself, never from this record.
    pub fn env_config(&self) -> EnvConfig {
        EnvConfig {
            width: self.width,
            height: self.height,
            agents_per_side: self.groups[0].population,
            spawn_rows: Some(self.groups[0].spawn.row_extent()),
            spawn_fill: 0.6,
            seed: self.seed,
        }
    }

    /// Build and populate the world (the paper's data-preparation stage
    /// over a declarative description): walls stamped into `mat`, each
    /// group placed uniformly at random inside its spawn region with its
    /// dedicated RNG stream (`u64::MAX - 1 - g`, so the two legacy groups
    /// keep the exact streams the classic corridor uses), target bitmask
    /// attached.
    pub fn build_environment(&self) -> Environment {
        let total = self.total_capacity();
        let mut mat = Matrix::filled(self.height, self.width, CELL_EMPTY);
        let mut index = Matrix::filled(self.height, self.width, 0u32);
        let mut props = PropertyTable::new(total);
        let mut alive = vec![false; total + 1];
        let mut free: Vec<pedsim_grid::environment::FreeSlots> =
            Vec::with_capacity(self.groups.len());
        for &(r, c) in &self.walls {
            mat.set(r as usize, c as usize, CELL_WALL);
        }
        let mut first_index = 1u32;
        for (gi, group) in self.groups.iter().enumerate() {
            // The dedicated placement streams, far away from the per-cell
            // streams the kernels draw from.
            let mut rng = StreamRng::new(self.seed, u64::MAX - 1 - gi as u64);
            place_in_cells(
                &mut mat,
                &mut index,
                &mut props,
                Group::new(gi).label(),
                group.spawn.cells().to_vec(),
                group.population,
                first_index,
                &mut rng,
            );
            for slot in first_index..first_index + group.population as u32 {
                alive[slot as usize] = true;
            }
            // Slots beyond the initial population start dead with the group
            // label pre-assigned (kernels read labels through an immutable
            // table), queued for recycling smallest-first.
            let spare_lo = first_index + group.population as u32;
            let spare_hi = first_index + group.capacity as u32;
            for slot in spare_lo..spare_hi {
                props.id[slot as usize] = Group::new(gi).label();
            }
            free.push((spare_lo..spare_hi).collect());
            first_index = spare_hi;
        }
        let live = self.total_agents();
        let pos = Environment::derive_pos(&props, self.width);
        Environment {
            mat,
            index,
            props,
            spawn_rows: self.groups[0].spawn.row_extent(),
            group_sizes: self.capacities(),
            seed: self.seed,
            targets: Some(Arc::new(self.target_mask())),
            alive,
            free,
            live,
            pos,
        }
    }
}

/// One group being described: regions, and optional population/heading
/// overrides resolved at [`ScenarioBuilder::build`] time.
#[derive(Debug, Clone, Default)]
struct GroupSlot {
    spawn: Option<Region>,
    target: Option<Region>,
    population: Option<usize>,
    heading: Option<Heading>,
    capacity: Option<usize>,
    source: Option<SourceDesc>,
}

/// Builder for [`Scenario`] (validates on [`ScenarioBuilder::build`]).
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    name: String,
    width: usize,
    height: usize,
    walls: Vec<(u16, u16)>,
    slots: Vec<GroupSlot>,
    default_population: usize,
    seed: u64,
}

impl ScenarioBuilder {
    /// Add a single obstacle cell.
    pub fn wall_cell(mut self, r: usize, c: usize) -> Self {
        assert!(
            r <= u16::MAX as usize && c <= u16::MAX as usize,
            "wall cell ({r},{c}) exceeds u16 coordinates"
        );
        self.walls.push((r as u16, c as u16));
        self
    }

    /// Add a rectangle of obstacle cells.
    pub fn wall_rect(mut self, r0: usize, c0: usize, rows: usize, cols: usize) -> Self {
        assert!(
            r0 + rows <= u16::MAX as usize && c0 + cols <= u16::MAX as usize,
            "wall rectangle exceeds u16 coordinates"
        );
        for r in r0..r0 + rows {
            for c in c0..c0 + cols {
                self.walls.push((r as u16, c as u16));
            }
        }
        self
    }

    fn slot_mut(&mut self, g: Group) -> &mut GroupSlot {
        while self.slots.len() <= g.index() {
            self.slots.push(GroupSlot::default());
        }
        &mut self.slots[g.index()]
    }

    /// Set group `g`'s spawn region.
    pub fn spawn(mut self, g: Group, region: Region) -> Self {
        self.slot_mut(g).spawn = Some(region);
        self
    }

    /// Set group `g`'s target region.
    pub fn target(mut self, g: Group, region: Region) -> Self {
        self.slot_mut(g).target = Some(region);
        self
    }

    /// Set group `g`'s population (overrides
    /// [`ScenarioBuilder::agents_per_side`], enabling asymmetric worlds).
    pub fn population(mut self, g: Group, agents: usize) -> Self {
        self.slot_mut(g).population = Some(agents);
        self
    }

    /// Override group `g`'s heading (otherwise derived from the
    /// spawn→target centroid displacement).
    pub fn heading(mut self, g: Group, heading: Heading) -> Self {
        self.slot_mut(g).heading = Some(heading);
        self
    }

    /// Raise group `g`'s property-slot capacity above its initial
    /// population (open-boundary worlds size the pool the inflow recycles
    /// into; closed worlds leave it at the population).
    pub fn capacity(mut self, g: Group, slots: usize) -> Self {
        self.slot_mut(g).capacity = Some(slots);
        self
    }

    /// Attach an inflow source to group `g`: agents of the group appear
    /// inside `region` at an expected `rate` per step (see [`SourceDesc`]).
    /// Any source makes the scenario open-boundary — every group's target
    /// region then despawns arriving agents.
    pub fn source(mut self, g: Group, region: Region, rate: f64) -> Self {
        self.slot_mut(g).source = Some(SourceDesc { region, rate });
        self
    }

    /// Append a fully-specified group at the next free index.
    pub fn group(mut self, spawn: Region, target: Region, population: usize) -> Self {
        let g = Group::new(self.slots.len());
        self = self.spawn(g, spawn).target(g, target);
        self.population(g, population)
    }

    /// Set the default per-group population (any group without an explicit
    /// [`ScenarioBuilder::population`] uses this).
    pub fn agents_per_side(mut self, n: usize) -> Self {
        self.default_population = n;
        self
    }

    /// Set the placement/kernel seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validate the description and produce the immutable [`Scenario`].
    pub fn build(self) -> Result<Scenario, ScenarioError> {
        let (w, h) = (self.width, self.height);
        if w < 2 || h < 4 {
            return Err(ScenarioError::WorldTooSmall {
                width: w,
                height: h,
            });
        }
        if self.slots.is_empty() {
            return Err(ScenarioError::NoGroups);
        }
        if self.slots.len() > MAX_GROUPS {
            return Err(ScenarioError::TooManyGroups {
                groups: self.slots.len(),
            });
        }
        let in_bounds = |&(r, c): &(u16, u16)| (r as usize) < h && (c as usize) < w;
        let mut walls = self.walls;
        walls.sort_unstable();
        walls.dedup();
        if let Some(&cell) = walls.iter().find(|c| !in_bounds(c)) {
            return Err(ScenarioError::OutOfBounds { what: "wall", cell });
        }
        let mut groups: Vec<GroupDesc> = Vec::with_capacity(self.slots.len());
        // Hash set of every earlier spawn cell keeps the pairwise
        // disjointness check O(total cells); regions reach ~10^4 cells at
        // paper scale and a linear-scan contains would go quadratic here.
        // audit:allow(hash-container, membership-only set — never iterated, so hash order cannot reach any output)
        let mut earlier_spawns: std::collections::HashSet<(u16, u16)> = Default::default();
        for (gi, slot) in self.slots.iter().enumerate() {
            let spawn = slot.spawn.clone().ok_or(ScenarioError::MissingSpawn(gi))?;
            if let Some(&cell) = spawn.cells().iter().find(|c| !in_bounds(c)) {
                return Err(ScenarioError::OutOfBounds {
                    what: "spawn",
                    cell,
                });
            }
            if let Some(&cell) = spawn
                .cells()
                .iter()
                .find(|&&(r, c)| walls.binary_search(&(r, c)).is_ok())
            {
                return Err(ScenarioError::SpawnOverlap {
                    with: "a wall",
                    cell,
                });
            }
            if let Some(&cell) = spawn.cells().iter().find(|c| earlier_spawns.contains(c)) {
                return Err(ScenarioError::SpawnOverlap {
                    with: "another group's spawn region",
                    cell,
                });
            }
            let population = slot.population.unwrap_or(self.default_population);
            if spawn.len() < population {
                return Err(ScenarioError::SpawnTooSmall {
                    group: gi,
                    agents: population,
                    capacity: spawn.len(),
                });
            }
            let target = slot
                .target
                .clone()
                .ok_or(ScenarioError::MissingTarget(gi))?;
            if let Some(&cell) = target.cells().iter().find(|c| !in_bounds(c)) {
                return Err(ScenarioError::OutOfBounds {
                    what: "target",
                    cell,
                });
            }
            if target
                .cells()
                .iter()
                .all(|&(r, c)| walls.binary_search(&(r, c)).is_ok())
            {
                return Err(ScenarioError::TargetWalled(gi));
            }
            let heading = slot
                .heading
                .unwrap_or_else(|| derive_heading(&spawn, &target));
            let capacity = slot.capacity.unwrap_or(population);
            if capacity < population {
                return Err(ScenarioError::CapacityBelowPopulation {
                    group: gi,
                    capacity,
                    population,
                });
            }
            if let Some(source) = &slot.source {
                if !source.rate.is_finite() || source.rate < 0.0 {
                    return Err(ScenarioError::InvalidSourceRate(gi));
                }
                if let Some(&cell) = source.region.cells().iter().find(|c| !in_bounds(c)) {
                    return Err(ScenarioError::OutOfBounds {
                        what: "source",
                        cell,
                    });
                }
                if let Some(&cell) = source
                    .region
                    .cells()
                    .iter()
                    .find(|&&(r, c)| walls.binary_search(&(r, c)).is_ok())
                {
                    return Err(ScenarioError::SourceOverlap {
                        with: "a wall",
                        cell,
                    });
                }
                // A source cell inside the group's own sink would despawn
                // its arrivals the step after they appear.
                if let Some(&cell) = source
                    .region
                    .cells()
                    .iter()
                    .find(|&&(r, c)| target.contains(r, c))
                {
                    return Err(ScenarioError::SourceOverlap {
                        with: "the group's own target region",
                        cell,
                    });
                }
            }
            earlier_spawns.extend(spawn.cells().iter().copied());
            groups.push(GroupDesc {
                spawn,
                target,
                population,
                heading,
                capacity,
                source: slot.source.clone(),
            });
        }
        Ok(Scenario {
            name: self.name,
            width: w,
            height: h,
            walls,
            groups,
            seed: self.seed,
            dist_cache: OnceLock::new(),
        })
    }
}

/// Derive a group's heading from the displacement between its spawn and
/// target centroids (dominant axis wins; rows beat columns on a tie, so
/// the classic corridor derives down/up exactly).
fn derive_heading(spawn: &Region, target: &Region) -> Heading {
    let centroid = |region: &Region| {
        let n = region.len() as f64;
        let (sr, sc) = region
            .cells()
            .iter()
            .fold((0.0f64, 0.0f64), |(ar, ac), &(r, c)| {
                (ar + r as f64, ac + c as f64)
            });
        (sr / n, sc / n)
    };
    let (spawn_r, spawn_c) = centroid(spawn);
    let (target_r, target_c) = centroid(target);
    Heading::from_delta(target_r - spawn_r, target_c - spawn_c)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corridor() -> Scenario {
        Scenario::builder("t", 16, 16)
            .spawn(Group::TOP, Region::row_band(0, 3, 16))
            .spawn(Group::BOTTOM, Region::row_band(13, 3, 16))
            .target(Group::TOP, Region::row_band(13, 3, 16))
            .target(Group::BOTTOM, Region::row_band(0, 3, 16))
            .agents_per_side(20)
            .seed(5)
            .build()
            .expect("valid")
    }

    #[test]
    fn corridor_takes_row_fast_path() {
        let s = corridor();
        assert!(s.uses_row_fast_path());
        assert_eq!(s.group(Group::TOP).heading, Heading::Down);
        assert_eq!(s.group(Group::BOTTOM).heading, Heading::Up);
        let d = s.distance_data();
        assert_eq!(d.kind, pedsim_grid::DistanceKind::Rows);
        assert_eq!(d.data.len(), 2 * 16 * 8);
        assert_eq!(d.forward, vec![0, 5]);
    }

    #[test]
    fn walls_force_grid_field() {
        let s = Scenario::builder("t", 16, 16)
            .wall_rect(8, 0, 1, 7)
            .wall_rect(8, 9, 1, 7)
            .spawn(Group::TOP, Region::row_band(0, 3, 16))
            .spawn(Group::BOTTOM, Region::row_band(13, 3, 16))
            .target(Group::TOP, Region::row_band(13, 3, 16))
            .target(Group::BOTTOM, Region::row_band(0, 3, 16))
            .agents_per_side(20)
            .build()
            .expect("valid");
        assert!(!s.uses_row_fast_path());
        let d = s.distance_data();
        assert_eq!(d.kind, pedsim_grid::DistanceKind::Grid);
        assert_eq!(d.data.len(), 2 * 16 * 16);
        assert_eq!(d.forward, vec![0, 5]);
        assert!(s.is_wall(8, 0) && !s.is_wall(8, 8));
    }

    #[test]
    fn environment_matches_description() {
        let s = Scenario::builder("t", 16, 16)
            .wall_rect(8, 0, 1, 6)
            .spawn(Group::TOP, Region::row_band(0, 3, 16))
            .spawn(Group::BOTTOM, Region::row_band(13, 3, 16))
            .target(Group::TOP, Region::row_band(13, 3, 16))
            .target(Group::BOTTOM, Region::row_band(0, 3, 16))
            .agents_per_side(12)
            .seed(9)
            .build()
            .expect("valid");
        let env = s.build_environment();
        env.check_consistency().expect("consistent");
        assert_eq!(env.mat.count(CELL_WALL), 6);
        assert_eq!(env.mat.count(Group::TOP.label()), 12);
        assert_eq!(env.mat.count(Group::BOTTOM.label()), 12);
        assert!(env.targets.is_some());
        assert!(env.has_crossed(Group::TOP, 14, 3));
        assert!(!env.has_crossed(Group::TOP, 8, 3));
    }

    #[test]
    fn asymmetric_populations_build() {
        let s = Scenario::builder("t", 16, 16)
            .spawn(Group::TOP, Region::row_band(0, 3, 16))
            .spawn(Group::BOTTOM, Region::row_band(13, 3, 16))
            .target(Group::TOP, Region::row_band(13, 3, 16))
            .target(Group::BOTTOM, Region::row_band(0, 3, 16))
            .population(Group::TOP, 5)
            .population(Group::BOTTOM, 30)
            .build()
            .expect("valid");
        assert_eq!(s.populations(), vec![5, 30]);
        assert_eq!(s.total_agents(), 35);
        let env = s.build_environment();
        env.check_consistency().expect("consistent");
        assert_eq!(env.group_sizes, vec![5, 30]);
        assert_eq!(env.mat.count(Group::TOP.label()), 5);
        assert_eq!(env.mat.count(Group::BOTTOM.label()), 30);
        // Index ranges are contiguous: agent 6 belongs to the bottom group.
        assert_eq!(env.group_of(5), Group::TOP);
        assert_eq!(env.group_of(6), Group::BOTTOM);
    }

    #[test]
    fn four_groups_build_and_label() {
        let s = Scenario::builder("plaza", 24, 24)
            .group(Region::rect(0, 4, 4, 16), Region::rect(20, 4, 4, 16), 10)
            .group(Region::rect(20, 4, 4, 16), Region::rect(0, 4, 4, 16), 10)
            .group(Region::rect(4, 0, 16, 4), Region::rect(4, 20, 16, 4), 10)
            .group(Region::rect(4, 20, 16, 4), Region::rect(4, 0, 16, 4), 10)
            .build()
            .expect("valid");
        assert_eq!(s.n_groups(), 4);
        assert_eq!(s.group(Group::new(0)).heading, Heading::Down);
        assert_eq!(s.group(Group::new(1)).heading, Heading::Up);
        assert_eq!(s.group(Group::new(2)).heading, Heading::Right);
        assert_eq!(s.group(Group::new(3)).heading, Heading::Left);
        let d = s.distance_data();
        assert_eq!(d.groups, 4);
        assert_eq!(d.forward, vec![0, 5, 4, 3]);
        let env = s.build_environment();
        env.check_consistency().expect("consistent");
        for gi in 0..4u8 {
            assert_eq!(env.mat.count(gi + 1), 10, "group {gi}");
        }
        // Orthogonal groups' target bits land in the mask.
        let mask = s.target_mask();
        assert_eq!(mask.get(10, 22) & Group::new(2).target_bit(), 4);
    }

    #[test]
    fn validation_rejects_bad_descriptions() {
        let base = || {
            Scenario::builder("t", 16, 16)
                .spawn(Group::TOP, Region::row_band(0, 3, 16))
                .spawn(Group::BOTTOM, Region::row_band(13, 3, 16))
                .target(Group::TOP, Region::row_band(13, 3, 16))
                .target(Group::BOTTOM, Region::row_band(0, 3, 16))
                .agents_per_side(10)
        };
        assert!(base().build().is_ok());
        // Spawn overlapping a wall.
        assert!(matches!(
            base().wall_cell(1, 1).build(),
            Err(ScenarioError::SpawnOverlap { .. })
        ));
        // Overcrowded spawn.
        assert!(matches!(
            base().agents_per_side(49).build(),
            Err(ScenarioError::SpawnTooSmall { .. })
        ));
        // Out-of-bounds wall.
        assert!(matches!(
            base().wall_cell(20, 0).build(),
            Err(ScenarioError::OutOfBounds { .. })
        ));
        // Missing target.
        assert!(matches!(
            Scenario::builder("t", 16, 16)
                .spawn(Group::TOP, Region::row_band(0, 3, 16))
                .spawn(Group::BOTTOM, Region::row_band(13, 3, 16))
                .target(Group::TOP, Region::row_band(13, 3, 16))
                .agents_per_side(10)
                .build(),
            Err(ScenarioError::MissingTarget(1))
        ));
        // No groups at all.
        assert!(matches!(
            Scenario::builder("t", 16, 16).build(),
            Err(ScenarioError::NoGroups)
        ));
        // Fully-walled target.
        assert!(matches!(
            Scenario::builder("t", 16, 16)
                .wall_rect(8, 0, 1, 16)
                .spawn(Group::TOP, Region::row_band(0, 3, 16))
                .spawn(Group::BOTTOM, Region::row_band(13, 3, 16))
                .target(Group::TOP, Region::rect(8, 0, 1, 16))
                .target(Group::BOTTOM, Region::row_band(0, 3, 16))
                .agents_per_side(10)
                .build(),
            Err(ScenarioError::TargetWalled(0))
        ));
        // Overlapping spawns.
        assert!(matches!(
            Scenario::builder("t", 16, 16)
                .spawn(Group::TOP, Region::row_band(0, 3, 16))
                .spawn(Group::BOTTOM, Region::row_band(2, 3, 16))
                .target(Group::TOP, Region::row_band(13, 3, 16))
                .target(Group::BOTTOM, Region::row_band(0, 3, 16))
                .agents_per_side(10)
                .build(),
            Err(ScenarioError::SpawnOverlap { .. })
        ));
    }

    #[test]
    fn heading_override_beats_derivation() {
        let s = Scenario::builder("t", 16, 16)
            .spawn(Group::TOP, Region::row_band(0, 3, 16))
            .spawn(Group::BOTTOM, Region::row_band(13, 3, 16))
            .target(Group::TOP, Region::row_band(13, 3, 16))
            .target(Group::BOTTOM, Region::row_band(0, 3, 16))
            .heading(Group::TOP, Heading::Right)
            .agents_per_side(10)
            .build()
            .expect("valid");
        assert_eq!(s.group(Group::TOP).heading, Heading::Right);
        // A non-corridor heading disables the row fast path.
        assert!(!s.uses_row_fast_path());
    }

    #[test]
    fn seed_round_trip_and_env_config() {
        let s = corridor().with_seed(77);
        assert_eq!(s.seed(), 77);
        let ec = s.env_config();
        assert_eq!(ec.width, 16);
        assert_eq!(ec.seed, 77);
        assert_eq!(ec.spawn_rows, Some(3));
    }

    #[test]
    fn config_hash_is_stable_and_separates_experiments() {
        let a = corridor();
        // Equal descriptions fingerprint equal, including across clones.
        assert_eq!(a.config_hash(), corridor().config_hash());
        assert_eq!(a.config_hash(), a.clone().config_hash());
        // Every trajectory-relevant knob moves the fingerprint.
        assert_ne!(a.config_hash(), corridor().with_seed(6).config_hash());
        let renamed = Scenario::builder("other", 16, 16)
            .spawn(Group::TOP, Region::row_band(0, 3, 16))
            .spawn(Group::BOTTOM, Region::row_band(13, 3, 16))
            .target(Group::TOP, Region::row_band(13, 3, 16))
            .target(Group::BOTTOM, Region::row_band(0, 3, 16))
            .agents_per_side(20)
            .seed(5)
            .build()
            .expect("valid");
        assert_ne!(a.config_hash(), renamed.config_hash());
        let walled = Scenario::builder("t", 16, 16)
            .wall_cell(8, 8)
            .spawn(Group::TOP, Region::row_band(0, 3, 16))
            .spawn(Group::BOTTOM, Region::row_band(13, 3, 16))
            .target(Group::TOP, Region::row_band(13, 3, 16))
            .target(Group::BOTTOM, Region::row_band(0, 3, 16))
            .agents_per_side(20)
            .seed(5)
            .build()
            .expect("valid");
        assert_ne!(a.config_hash(), walled.config_hash());
        // An inflow source changes the experiment too.
        let open = crate::registry::open_corridor(16, 16, 20, 1.0).with_seed(5);
        assert_ne!(open.config_hash(), open.with_seed(9).config_hash());
    }

    #[test]
    fn geometry_hash_ignores_seed_and_population_but_tracks_routing() {
        let a = crate::registry::open_corridor(16, 16, 20, 1.0).with_seed(5);
        // Everything that does not feed the distance field leaves the
        // geometry hash alone: seed, inflow rate, capacity.
        assert_eq!(a.geometry_hash(), a.clone().with_seed(9).geometry_hash());
        assert_eq!(
            a.geometry_hash(),
            crate::registry::open_corridor(16, 16, 10, 4.0).geometry_hash()
        );
        // ... while the full config hash distinguishes all of those.
        assert_ne!(a.config_hash(), a.clone().with_seed(9).config_hash());
        // Routing inputs do move it: extents, walls, targets.
        assert_ne!(
            a.geometry_hash(),
            crate::registry::open_corridor(16, 20, 20, 1.0).geometry_hash()
        );
        assert_ne!(
            corridor().geometry_hash(),
            crate::registry::crossing(16, 10).geometry_hash()
        );
    }

    #[test]
    fn seeded_distance_cache_is_used_and_first_write_wins() {
        let a = crate::registry::crossing(16, 10).with_seed(1);
        let b = crate::registry::crossing(16, 10).with_seed(2);
        assert_eq!(a.geometry_hash(), b.geometry_hash());
        let field = a.distance_data();
        b.seed_distance_cache(field.clone());
        // The injected plane set is served as-is — no recompute.
        assert!(Arc::ptr_eq(&field, &b.distance_data()));
        // Seeding after a field exists is a no-op.
        let other = corridor().distance_data();
        b.seed_distance_cache(other);
        assert!(Arc::ptr_eq(&field, &b.distance_data()));
    }
}
