//! # pedsim-scenario — declarative simulation worlds
//!
//! The paper evaluates exactly one geometry: a square bi-directional
//! corridor with edge spawn bands. Its motivating use case — mass
//! gatherings — is full of doorways, pillars, and crossing streams. This
//! crate closes that gap declaratively:
//!
//! * [`Region`] — an ordered cell set (spawn areas, target areas);
//! * [`Scenario`] / [`ScenarioBuilder`] — a validated world description:
//!   geometry, interior obstacle cells, and up to
//!   [`pedsim_grid::cell::MAX_GROUPS`] directional groups, each with its
//!   own spawn/target regions, population (asymmetric mixes allowed), and
//!   heading;
//! * [`registry`] — ready-made worlds: `paper_corridor` (the paper's
//!   geometry, bit-identical to the legacy `EnvConfig` path), `doorway`,
//!   `pillar_hall`, `crossing`, `four_way_crossing`, `t_junction_merge`,
//!   `asymmetric_corridor`, and the open-boundary `open_corridor` /
//!   `open_crossing`;
//! * [`sweep`] — registry-world × population × seed grids, the input
//!   enumeration for `pedsim-runner` batches.
//!
//! Worlds may be **open-boundary**: a group with a [`scenario::SourceDesc`]
//! receives a deterministic Poisson-like inflow, and every target region
//! becomes a sink that removes arriving agents and recycles their property
//! slots — the continuous bi-directional streams the paper's corridor
//! models, at sustained densities instead of one transient.
//!
//! A scenario knows how to *materialise* itself
//! ([`Scenario::build_environment`]) and how agents *route* through it
//! ([`Scenario::distance_data`]): obstacle-free corridor worlds take the
//! paper's row-based constant-memory tables, everything else gets a
//! per-group Dijkstra flow field from `pedsim-grid`. The engines in
//! `pedsim-core` consume both through one `DistRef` view, so the four
//! kernels are geometry-agnostic.

#![warn(missing_docs)]

pub mod region;
pub mod registry;
#[allow(clippy::module_inception)]
pub mod scenario;
pub mod sweep;

pub use region::Region;
pub use scenario::{GroupDesc, Scenario, ScenarioBuilder, ScenarioError, SourceDesc};
pub use sweep::SweepPoint;
