//! Property-based tests for the pooled backend's tile partition.
//!
//! Every pooled stage dispatches over [`band_ranges`]; the SAFETY
//! arguments for its raw scatter writes rest on the partition being a
//! partition. These properties pin that down at every plausible thread
//! count, not just the sizes the unit tests happen to pick.

use pedsim_core::engine::pooled::band_ranges;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Pairwise-disjoint and exhaustive: every index in `0..n` falls in
    /// exactly one band, for any element count and any part count a
    /// worker-pool size could produce.
    #[test]
    fn bands_are_disjoint_and_exhaustive(n in 0usize..10_000, parts in 0usize..256) {
        let bands = band_ranges(n, parts);
        prop_assert_eq!(bands.len(), parts.max(1));
        let mut covered = 0usize;
        let mut cursor = 0usize;
        for b in &bands {
            // Contiguous ascending ranges cannot overlap each other or
            // leave gaps; checking the chain checks both.
            prop_assert_eq!(b.start, cursor, "gap or overlap at {:?}", b);
            prop_assert!(b.end >= b.start);
            covered += b.end - b.start;
            cursor = b.end;
        }
        prop_assert_eq!(cursor, n);
        prop_assert_eq!(covered, n);
    }

    /// Balance: band sizes differ by at most one, so no straggler band
    /// can serialise a stage.
    #[test]
    fn bands_are_balanced(n in 0usize..10_000, parts in 1usize..256) {
        let bands = band_ranges(n, parts);
        let min = bands.iter().map(|b| b.len()).min().unwrap();
        let max = bands.iter().map(|b| b.len()).max().unwrap();
        prop_assert!(max - min <= 1, "band sizes vary by {} (n={}, parts={})", max - min, n, parts);
    }

    /// The partition is a pure function of `(n, parts)` — the same tile
    /// layout on every host and every run.
    #[test]
    fn bands_are_deterministic(n in 0usize..10_000, parts in 0usize..256) {
        prop_assert_eq!(band_ranges(n, parts), band_ranges(n, parts));
    }
}
