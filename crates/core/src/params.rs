//! Model and simulation parameters.
//!
//! The paper leaves several constants unspecified; the defaults here are
//! the values EXPERIMENTS.md was produced with, and each is swept by an
//! ablation bench:
//!
//! * `LemParams::sigma` — the spread of the truncated-normal rank draw
//!   (§II.A gives the clamping rule but not the σ);
//! * `AcoParams::{alpha, beta}` — eq. (2)'s exponents (Ant System
//!   convention α = 1, β = 2…5; we default to 1 and 2);
//! * `AcoParams::rho` — eq. (3)'s evaporation rate;
//! * `AcoParams::q` — the deposit numerator of eq. (5) (`Δτ = Q / L_k`);
//! * `AcoParams::tau0` — initial pheromone level and evaporation floor.

/// Least-Effort-Model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LemParams {
    /// Standard deviation of the normal rank draw. Larger σ spreads choice
    /// probability toward worse-ranked cells.
    pub sigma: f64,
    /// The paper's modification (§IV.c): "forward movement is given the
    /// highest priority" — an empty forward cell is taken without scoring.
    pub forward_priority: bool,
    /// Scanning range (§VII future work, implemented in
    /// `extensions::ranges`): cells looked ahead per ray when scoring.
    /// `1` reproduces the paper's baseline exactly.
    pub scan_range: u8,
}

impl Default for LemParams {
    fn default() -> Self {
        Self {
            sigma: 1.0,
            forward_priority: true,
            scan_range: 1,
        }
    }
}

/// Modified-Ant-System parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcoParams {
    /// Pheromone weight α of eq. (2).
    pub alpha: f32,
    /// Heuristic weight β of eq. (2) (η = 1/distance-to-target).
    pub beta: f32,
    /// Evaporation rate ρ of eq. (3), in (0, 1].
    pub rho: f32,
    /// Deposit numerator Q of eq. (5): an arriving agent deposits `Q/L_k`.
    pub q: f32,
    /// Initial pheromone and evaporation floor τ₀.
    pub tau0: f32,
    /// Forward-cell priority, as in LEM.
    pub forward_priority: bool,
}

impl Default for AcoParams {
    fn default() -> Self {
        Self {
            alpha: 1.0,
            beta: 2.0,
            rho: 0.02,
            q: 8.0,
            tau0: 0.1,
            forward_priority: true,
        }
    }
}

/// Which movement model drives the simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ModelKind {
    /// Least Effort Model (eq. 1).
    Lem(LemParams),
    /// Modified Ant System (eqs. 2–5).
    Aco(AcoParams),
}

impl ModelKind {
    /// Default-parameter LEM.
    pub fn lem() -> Self {
        ModelKind::Lem(LemParams::default())
    }

    /// Default-parameter ACO.
    pub fn aco() -> Self {
        ModelKind::Aco(AcoParams::default())
    }

    /// True for the ACO variant.
    pub fn is_aco(&self) -> bool {
        matches!(self, ModelKind::Aco(_))
    }

    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::Lem(_) => "LEM",
            ModelKind::Aco(_) => "ACO",
        }
    }
}

/// Full simulation configuration.
///
/// Cheap to clone: the scenario handle (when present) is an `Arc` to an
/// immutable world description.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Environment geometry and population. When a scenario handle is set,
    /// this mirrors the scenario (same extents, population, and seed) and
    /// exists for reporting and kernel seeding. Do not mutate it while
    /// `scenario` is `Some`: kernels seed from `env.seed` but placement
    /// seeds from the scenario, so a hand-edited seed would produce a
    /// mixed-seed run. Reseed via `Scenario::with_seed` +
    /// [`SimConfig::from_scenario`] instead.
    pub env: pedsim_grid::EnvConfig,
    /// Declarative world description (spawn/target regions, interior
    /// obstacles, flow-field routing). `None` runs the paper's classic
    /// corridor from `env` alone.
    pub scenario: Option<std::sync::Arc<pedsim_scenario::Scenario>>,
    /// Movement model.
    pub model: ModelKind,
    /// Enable scatter-conflict checking on all device buffers (tests on,
    /// wall-clock benches off).
    pub checked: bool,
    /// Track crossing/movement metrics each step (small O(N) cost).
    pub track_metrics: bool,
}

impl SimConfig {
    /// A configuration over `env` with `model` and metrics on (the
    /// classic corridor; no scenario handle).
    pub fn new(env: pedsim_grid::EnvConfig, model: ModelKind) -> Self {
        Self {
            env,
            scenario: None,
            model,
            checked: false,
            track_metrics: true,
        }
    }

    /// A configuration over a declarative scenario with `model` and
    /// metrics on. The `env` record is derived from the scenario. Takes
    /// the scenario by reference — callers keep theirs; the clone shares
    /// any already-computed distance field through the scenario's lazy
    /// cache, so no flow-field work is repeated.
    pub fn from_scenario(scenario: &pedsim_scenario::Scenario, model: ModelKind) -> Self {
        Self::from_shared(std::sync::Arc::new(scenario.clone()), model)
    }

    /// A configuration over an already-shared scenario handle — the
    /// zero-copy door used when many configurations reference one world.
    pub fn from_shared(
        scenario: std::sync::Arc<pedsim_scenario::Scenario>,
        model: ModelKind,
    ) -> Self {
        Self {
            env: scenario.env_config(),
            scenario: Some(scenario),
            model,
            checked: false,
            track_metrics: true,
        }
    }

    /// Builder: toggle conflict checking.
    pub fn with_checked(mut self, on: bool) -> Self {
        self.checked = on;
        self
    }

    /// Builder: toggle metrics tracking.
    pub fn with_metrics(mut self, on: bool) -> Self {
        self.track_metrics = on;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let l = LemParams::default();
        assert!(l.sigma > 0.0 && l.forward_priority);
        let a = AcoParams::default();
        assert!(a.alpha > 0.0 && a.beta > 0.0);
        assert!((0.0..=1.0).contains(&a.rho));
        assert!(a.tau0 > 0.0);
    }

    #[test]
    fn from_scenario_mirrors_geometry() {
        let cfg = pedsim_grid::EnvConfig::small(32, 32, 40).with_seed(3);
        let sim = SimConfig::from_scenario(
            &pedsim_scenario::registry::paper_corridor(&cfg),
            ModelKind::lem(),
        );
        assert_eq!(sim.env.width, 32);
        assert_eq!(sim.env.height, 32);
        assert_eq!(sim.env.agents_per_side, 40);
        assert_eq!(sim.env.seed, 3);
        assert!(sim.scenario.is_some());
        // Clones share the scenario handle.
        let clone = sim.clone();
        assert!(std::sync::Arc::ptr_eq(
            sim.scenario.as_ref().unwrap(),
            clone.scenario.as_ref().unwrap()
        ));
    }

    #[test]
    fn model_kind_names() {
        assert_eq!(ModelKind::lem().name(), "LEM");
        assert_eq!(ModelKind::aco().name(), "ACO");
        assert!(ModelKind::aco().is_aco());
        assert!(!ModelKind::lem().is_aco());
    }
}
