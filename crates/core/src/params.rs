//! Model and simulation parameters.
//!
//! The paper leaves several constants unspecified; the defaults here are
//! the values EXPERIMENTS.md was produced with, and each is swept by an
//! ablation bench:
//!
//! * `LemParams::sigma` — the spread of the truncated-normal rank draw
//!   (§II.A gives the clamping rule but not the σ);
//! * `AcoParams::{alpha, beta}` — eq. (2)'s exponents (Ant System
//!   convention α = 1, β = 2…5; we default to 1 and 2);
//! * `AcoParams::rho` — eq. (3)'s evaporation rate;
//! * `AcoParams::q` — the deposit numerator of eq. (5) (`Δτ = Q / L_k`);
//! * `AcoParams::tau0` — initial pheromone level and evaporation floor.

/// Least-Effort-Model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LemParams {
    /// Standard deviation of the normal rank draw. Larger σ spreads choice
    /// probability toward worse-ranked cells.
    pub sigma: f64,
    /// The paper's modification (§IV.c): "forward movement is given the
    /// highest priority" — an empty forward cell is taken without scoring.
    pub forward_priority: bool,
    /// Scanning range (§VII future work, implemented in
    /// `extensions::ranges`): cells looked ahead per ray when scoring.
    /// `1` reproduces the paper's baseline exactly.
    pub scan_range: u8,
}

impl Default for LemParams {
    fn default() -> Self {
        Self {
            sigma: 1.0,
            forward_priority: true,
            scan_range: 1,
        }
    }
}

/// Modified-Ant-System parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcoParams {
    /// Pheromone weight α of eq. (2).
    pub alpha: f32,
    /// Heuristic weight β of eq. (2) (η = 1/distance-to-target).
    pub beta: f32,
    /// Evaporation rate ρ of eq. (3), in (0, 1].
    pub rho: f32,
    /// Deposit numerator Q of eq. (5): an arriving agent deposits `Q/L_k`.
    pub q: f32,
    /// Initial pheromone and evaporation floor τ₀.
    pub tau0: f32,
    /// Forward-cell priority, as in LEM.
    pub forward_priority: bool,
}

impl Default for AcoParams {
    fn default() -> Self {
        Self {
            alpha: 1.0,
            beta: 2.0,
            rho: 0.02,
            q: 8.0,
            tau0: 0.1,
            forward_priority: true,
        }
    }
}

/// Which movement model drives the simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ModelKind {
    /// Least Effort Model (eq. 1).
    Lem(LemParams),
    /// Modified Ant System (eqs. 2–5).
    Aco(AcoParams),
}

impl ModelKind {
    /// Default-parameter LEM.
    pub fn lem() -> Self {
        ModelKind::Lem(LemParams::default())
    }

    /// Default-parameter ACO.
    pub fn aco() -> Self {
        ModelKind::Aco(AcoParams::default())
    }

    /// True for the ACO variant.
    pub fn is_aco(&self) -> bool {
        matches!(self, ModelKind::Aco(_))
    }

    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::Lem(_) => "LEM",
            ModelKind::Aco(_) => "ACO",
        }
    }
}

/// How the kernel stages traverse the world each step.
///
/// The paper's §IV mapping launches one thread per environment cell; at
/// corridor occupancies (~6 % on the paper's geometry) that sweeps ~16
/// cells to advance one agent. `Sparse` drives InitialCalc, Tour, and
/// Movement from the live-agent slot list instead (through the
/// maintained agent→cell position index), producing byte-identical
/// trajectories — the per-cell Philox streams are keyed by cell, so
/// skipping cells no agent touches consumes no draws.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IterationMode {
    /// One pass per grid cell (the paper's mapping). Fastest when most
    /// cells are occupied.
    Dense,
    /// One pass per live agent slot, in deterministic slot order.
    /// Fastest at low occupancy; bit-identical to `Dense`.
    Sparse,
    /// Pick per engine at build time by initial occupancy:
    /// `live / (width·height) <` [`IterationMode::AUTO_THRESHOLD`]
    /// selects `Sparse`.
    Auto,
}

impl IterationMode {
    /// Occupancy below which `Auto` resolves to `Sparse`. At 25 %
    /// occupancy the sparse movement pass touches roughly as many cells
    /// as the dense sweep (each agent reads its 8-neighbourhood plus the
    /// target resolve), so the crossover sits near 1/4; corridor worlds
    /// (~6–8 %) resolve sparse, near-jammed stress grids stay dense.
    pub const AUTO_THRESHOLD: f64 = 0.25;

    /// Resolve `Auto` against a world's initial occupancy; `Dense` and
    /// `Sparse` pass through unchanged.
    pub fn resolve(self, live: usize, cells: usize) -> IterationMode {
        match self {
            IterationMode::Auto => {
                if cells > 0 && (live as f64 / cells as f64) < Self::AUTO_THRESHOLD {
                    IterationMode::Sparse
                } else {
                    IterationMode::Dense
                }
            }
            other => other,
        }
    }

    /// Registry/report key (`dense` / `sparse` / `auto`).
    pub fn name(&self) -> &'static str {
        match self {
            IterationMode::Dense => "dense",
            IterationMode::Sparse => "sparse",
            IterationMode::Auto => "auto",
        }
    }
}

/// Full simulation configuration.
///
/// Cheap to clone: the scenario handle (when present) is an `Arc` to an
/// immutable world description.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Environment geometry and population. When a scenario handle is set,
    /// this mirrors the scenario (same extents, population, and seed) and
    /// exists for reporting and kernel seeding. Do not mutate it while
    /// `scenario` is `Some`: kernels seed from `env.seed` but placement
    /// seeds from the scenario, so a hand-edited seed would produce a
    /// mixed-seed run. Reseed via `Scenario::with_seed` +
    /// [`SimConfig::from_scenario`] instead.
    pub env: pedsim_grid::EnvConfig,
    /// Declarative world description (spawn/target regions, interior
    /// obstacles, flow-field routing). `None` runs the paper's classic
    /// corridor from `env` alone.
    pub scenario: Option<std::sync::Arc<pedsim_scenario::Scenario>>,
    /// Movement model.
    pub model: ModelKind,
    /// Enable scatter-conflict checking on all device buffers (tests on,
    /// wall-clock benches off).
    pub checked: bool,
    /// Track crossing/movement metrics each step (small O(N) cost).
    pub track_metrics: bool,
    /// How the kernel stages traverse the world (dense cell sweep vs
    /// sparse live-slot iteration). Not part of the world: compiled
    /// worlds and trajectories are identical in both modes.
    pub iteration: IterationMode,
}

impl SimConfig {
    /// A configuration over `env` with `model` and metrics on (the
    /// classic corridor; no scenario handle).
    pub fn new(env: pedsim_grid::EnvConfig, model: ModelKind) -> Self {
        Self {
            env,
            scenario: None,
            model,
            checked: false,
            track_metrics: true,
            iteration: IterationMode::Auto,
        }
    }

    /// A configuration over a declarative scenario with `model` and
    /// metrics on. The `env` record is derived from the scenario. Takes
    /// the scenario by reference — callers keep theirs; the clone shares
    /// any already-computed distance field through the scenario's lazy
    /// cache, so no flow-field work is repeated.
    pub fn from_scenario(scenario: &pedsim_scenario::Scenario, model: ModelKind) -> Self {
        Self::from_shared(std::sync::Arc::new(scenario.clone()), model)
    }

    /// A configuration over an already-shared scenario handle — the
    /// zero-copy door used when many configurations reference one world.
    pub fn from_shared(
        scenario: std::sync::Arc<pedsim_scenario::Scenario>,
        model: ModelKind,
    ) -> Self {
        Self {
            env: scenario.env_config(),
            scenario: Some(scenario),
            model,
            checked: false,
            track_metrics: true,
            iteration: IterationMode::Auto,
        }
    }

    /// Builder: toggle conflict checking.
    pub fn with_checked(mut self, on: bool) -> Self {
        self.checked = on;
        self
    }

    /// Builder: toggle metrics tracking.
    pub fn with_metrics(mut self, on: bool) -> Self {
        self.track_metrics = on;
        self
    }

    /// Builder: pick the stage traversal mode (defaults to
    /// [`IterationMode::Auto`]).
    pub fn with_iteration_mode(mut self, mode: IterationMode) -> Self {
        self.iteration = mode;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let l = LemParams::default();
        assert!(l.sigma > 0.0 && l.forward_priority);
        let a = AcoParams::default();
        assert!(a.alpha > 0.0 && a.beta > 0.0);
        assert!((0.0..=1.0).contains(&a.rho));
        assert!(a.tau0 > 0.0);
    }

    #[test]
    fn from_scenario_mirrors_geometry() {
        let cfg = pedsim_grid::EnvConfig::small(32, 32, 40).with_seed(3);
        let sim = SimConfig::from_scenario(
            &pedsim_scenario::registry::paper_corridor(&cfg),
            ModelKind::lem(),
        );
        assert_eq!(sim.env.width, 32);
        assert_eq!(sim.env.height, 32);
        assert_eq!(sim.env.agents_per_side, 40);
        assert_eq!(sim.env.seed, 3);
        assert!(sim.scenario.is_some());
        // Clones share the scenario handle.
        let clone = sim.clone();
        assert!(std::sync::Arc::ptr_eq(
            sim.scenario.as_ref().unwrap(),
            clone.scenario.as_ref().unwrap()
        ));
    }

    #[test]
    fn auto_mode_resolves_by_occupancy() {
        assert_eq!(IterationMode::Auto.resolve(60, 1024), IterationMode::Sparse);
        assert_eq!(IterationMode::Auto.resolve(512, 1024), IterationMode::Dense);
        assert_eq!(IterationMode::Auto.resolve(0, 0), IterationMode::Dense);
        // Explicit modes pass through regardless of occupancy.
        assert_eq!(IterationMode::Dense.resolve(1, 1024), IterationMode::Dense);
        assert_eq!(
            IterationMode::Sparse.resolve(1000, 1024),
            IterationMode::Sparse
        );
        assert_eq!(IterationMode::Sparse.name(), "sparse");
    }

    #[test]
    fn model_kind_names() {
        assert_eq!(ModelKind::lem().name(), "LEM");
        assert_eq!(ModelKind::aco().name(), "ACO");
        assert!(ModelKind::aco().is_aco());
        assert!(!ModelKind::lem().is_aco());
    }
}
