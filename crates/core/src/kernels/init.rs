//! The supporting kernel (§IV.e): re-initialise the scan matrix and the
//! FUTURE fields before each step.

use pedsim_grid::property::NO_FUTURE;
use pedsim_grid::scan::SCAN_INVALID;
use simt::exec::{BlockCtx, BlockKernel};
use simt::memory::ScatterView;

/// One thread per property-table row (including the 0th sentinel row).
pub struct InitKernel<'a> {
    /// Rows to clear (`N + 1`).
    pub rows: usize,
    /// Scan values to zero.
    pub scan_val: ScatterView<'a, f32>,
    /// Scan indices to invalidate.
    pub scan_idx: ScatterView<'a, u8>,
    /// FUTURE ROW to reset.
    pub future_row: ScatterView<'a, u16>,
    /// FUTURE COLUMN to reset.
    pub future_col: ScatterView<'a, u16>,
}

impl BlockKernel for InitKernel<'_> {
    fn block(&self, ctx: &mut BlockCtx) {
        let rows = self.rows;
        ctx.threads(|t| {
            let i = t.global_linear();
            if i < rows {
                for s in 0..8 {
                    self.scan_val.write(i * 8 + s, 0.0);
                    self.scan_idx.write(i * 8 + s, SCAN_INVALID);
                }
                self.future_row.write(i, NO_FUTURE);
                self.future_col.write(i, NO_FUTURE);
                t.note_global_stores(10);
            }
        });
    }

    fn name(&self) -> &'static str {
        "init"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simt::exec::LaunchConfig;
    use simt::memory::ScatterBuffer;
    use simt::{Device, Dim2};

    #[test]
    fn clears_everything() {
        let rows = 300usize;
        let scan_val = ScatterBuffer::new(rows * 8, 5.0f32, true);
        let scan_idx = ScatterBuffer::new(rows * 8, 3u8, true);
        let fr = ScatterBuffer::new(rows, 7u16, true);
        let fc = ScatterBuffer::new(rows, 7u16, true);
        for b in [&fr, &fc] {
            b.begin_epoch();
        }
        scan_val.begin_epoch();
        scan_idx.begin_epoch();
        let k = InitKernel {
            rows,
            scan_val: scan_val.view(),
            scan_idx: scan_idx.view(),
            future_row: fr.view(),
            future_col: fc.view(),
        };
        let device = Device::sequential();
        let blocks = (rows as u32).div_ceil(256);
        let cfg = LaunchConfig::new(Dim2::new(blocks, 1), Dim2::new(256, 1));
        device.launch(&cfg, &k).expect("launch");
        assert!(scan_val.as_slice().iter().all(|&v| v == 0.0));
        assert!(scan_idx.as_slice().iter().all(|&v| v == SCAN_INVALID));
        assert!(fr.as_slice().iter().all(|&v| v == NO_FUTURE));
        assert!(fc.as_slice().iter().all(|&v| v == NO_FUTURE));
    }
}
