//! The agent-movement phase (§IV.d): scatter-to-gather conflict resolution,
//! position/index exchange, and the fused pheromone update.
//!
//! One thread per cell over 16×16 blocks; `mat`/`index` are read through
//! 20×20 tiles (halo 2 — one ring for the cell's own gather, a second so an
//! occupied cell can *recompute* its agent's target-cell gather and learn
//! deterministically whether the agent left; see
//! [`crate::model::movement`]). Every output slot — the cell's `mat`/
//! `index` entry, the winner's `row`/`col`/`tour` slots, the cell's two
//! pheromone entries — is written by exactly one thread, which the checked
//! buffers enforce.

use pedsim_grid::cell::{Group, CELL_EMPTY, CELL_WALL};
use pedsim_grid::property::NO_FUTURE;
use pedsim_grid::PheromoneField;
use simt::exec::{BlockCtx, BlockKernel};
use simt::memory::ScatterView;
use simt::Dim2;

use crate::model::gather_winner;
use crate::params::AcoParams;

/// Halo width needed by the winner recomputation.
pub const MOVEMENT_HALO: u32 = 2;

/// Per-cell movement kernel.
pub struct MovementKernel<'a> {
    /// Environment width.
    pub w: usize,
    /// Environment height.
    pub h: usize,
    /// Current cell labels (tiled, halo 2).
    pub mat_in: &'a [u8],
    /// Current agent indices (tiled, halo 2).
    pub index_in: &'a [u32],
    /// FUTURE ROW (read, random access).
    pub future_row: &'a [u16],
    /// FUTURE COLUMN (read).
    pub future_col: &'a [u16],
    /// Agent labels (read).
    pub id: &'a [u8],
    /// Agent rows (written for winners).
    pub row: ScatterView<'a, u16>,
    /// Agent columns (written for winners).
    pub col: ScatterView<'a, u16>,
    /// Agent→cell position index (written for winners — kept in lock-step
    /// with `row`/`col` so the sparse traversal mode can find any agent's
    /// cell in O(1)).
    pub pos: ScatterView<'a, u32>,
    /// Tour lengths (exclusive read-modify-write for winners).
    pub tour: ScatterView<'a, f32>,
    /// Next cell labels (every cell written once).
    pub mat_out: ScatterView<'a, u8>,
    /// Next agent indices (every cell written once).
    pub index_out: ScatterView<'a, u32>,
    /// Current pheromone fields (ACO): one plane per group, in group-index
    /// order.
    pub pher_in: Option<&'a [&'a [f32]]>,
    /// Next pheromone fields (ACO), same order.
    pub pher_out: Option<&'a [ScatterView<'a, f32>]>,
    /// ACO parameters (None for LEM runs).
    pub aco: Option<AcoParams>,
}

impl BlockKernel for MovementKernel<'_> {
    fn block(&self, ctx: &mut BlockCtx) {
        let dims = Dim2::new(self.w as u32, self.h as u32);
        let mat_tile = ctx.load_tile(self.mat_in, dims, MOVEMENT_HALO, CELL_WALL);
        let idx_tile = ctx.load_tile(self.index_in, dims, MOVEMENT_HALO, 0u32);
        ctx.sync();
        let (w, h) = (self.w, self.h);
        // Hoist the SoA agent-property arrays into locals: the hot loop
        // indexes flat slices directly instead of re-reading kernel
        // struct fields per thread.
        let future_row = self.future_row;
        let future_col = self.future_col;
        let id = self.id;
        ctx.threads(|t| {
            let (r, c) = t.global_rc();
            if (r as usize) >= h || (c as usize) >= w {
                return;
            }
            let (ri, ci) = (i64::from(r), i64::from(c));
            let lin = r as usize * w + c as usize;
            let occ = |rr: i64, cc: i64| mat_tile.get(rr, cc);
            let idx = |rr: i64, cc: i64| idx_tile.get(rr, cc);
            let fut = |a: u32| (future_row[a as usize], future_col[a as usize]);
            let mut rng = t.rng_for(lin as u64);
            let arrival = gather_winner(&occ, &idx, &fut, ri, ci, &mut rng);
            let own = idx(ri, ci);
            t.note_shared_loads(18);
            t.alu(24);

            // Deposit of the arriving agent, credited to its group's
            // plane: (group index, amount).
            let mut deposit: Option<(usize, f32)> = None;
            if let Some(arr) = arrival {
                let a = arr.agent as usize;
                self.mat_out.write(lin, id[a]);
                self.index_out.write(lin, arr.agent);
                self.row.write(a, r as u16);
                self.col.write(a, c as u16);
                self.pos.write(a, lin as u32);
                t.note_global_stores(5);
                if let Some(p) = self.aco {
                    // Exclusive RMW: only this thread touches slot `a`.
                    let l_new = self.tour.read(a) + arr.step_len();
                    self.tour.write(a, l_new);
                    let g = Group::from_label(id[a]).expect("arrival has a group label");
                    deposit = Some((g.index(), p.q / l_new));
                    t.note_global_stores(1);
                }
            } else if own != 0 && future_row[own as usize] != NO_FUTURE {
                // SoA probe: FUTURE ROW alone decides staying vs moving,
                // so the column array is only touched when the agent
                // actually leaves. Recompute its target cell's gather with
                // the *target's* stream.
                let (fr, fc) = fut(own);
                let (fri, fci) = (i64::from(fr), i64::from(fc));
                let tlin = (fr as usize) * w + fc as usize;
                let mut trng = t.rng_for(tlin as u64);
                let wins = gather_winner(&occ, &idx, &fut, fri, fci, &mut trng)
                    .is_some_and(|a| a.agent == own);
                t.alu(24);
                if wins {
                    self.mat_out.write(lin, CELL_EMPTY);
                    self.index_out.write(lin, 0);
                } else {
                    self.mat_out.write(lin, occ(ri, ci));
                    self.index_out.write(lin, own);
                }
                t.note_global_stores(2);
            } else {
                // Copy-through.
                self.mat_out.write(lin, occ(ri, ci));
                self.index_out.write(lin, own);
                t.note_global_stores(2);
            }

            if let (Some(p), Some(pin), Some(pout)) = (self.aco, self.pher_in, self.pher_out) {
                for (g, (plane_in, plane_out)) in pin.iter().zip(pout.iter()).enumerate() {
                    let dep = match deposit {
                        Some((dg, amount)) if dg == g => amount,
                        _ => 0.0,
                    };
                    let next = PheromoneField::fused_update(plane_in[lin], p.tau0, p.rho, dep);
                    plane_out.write(lin, next);
                }
                t.note_global_stores(pin.len() as u64);
                t.note_global_loads(pin.len() as u64);
            }
        });
    }

    fn shared_bytes(&self) -> u32 {
        // 20×20 u8 mat tile + 20×20 u32 index tile.
        (20 * 20 + 20 * 20 * 4) as u32
    }

    fn regs_per_thread(&self) -> u32 {
        28
    }

    fn name(&self) -> &'static str {
        "movement"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{DeviceState, InitialCalcKernel, TourKernel};
    use crate::params::ModelKind;
    use pedsim_grid::cell::CELL_TOP;
    use pedsim_grid::{EnvConfig, Environment};
    use simt::exec::{ExecPolicy, LaunchConfig};
    use simt::Device;

    /// Run init-free single step of calc→tour→movement on a checked state.
    fn one_step(model: ModelKind, seed: u64, policy: ExecPolicy) -> (Environment, DeviceState) {
        let env = Environment::new(&EnvConfig::small(32, 32, 60).with_seed(seed));
        let dist = pedsim_grid::DistanceData::rows(env.height());
        let state = DeviceState::upload(&env, &dist, model, true);
        let device = Device::builder().policy(policy).build();
        let cells = LaunchConfig::tiled_over(Dim2::new(32, 32), Dim2::square(16)).with_seed(seed);
        let rows = LaunchConfig::new(
            Dim2::new((state.n as u32).div_ceil(256), 1),
            Dim2::new(256, 1),
        )
        .with_seed(seed);

        state.scan_val.begin_epoch();
        state.scan_idx.begin_epoch();
        state.front.begin_epoch();
        state.front_k.begin_epoch();
        let pher_slices = state.pher.as_ref().map(|p| p.slices(0));
        let calc = InitialCalcKernel {
            w: state.w,
            h: state.h,
            mat_in: state.mat[0].as_slice(),
            index_in: state.index[0].as_slice(),
            dist: state.dist_ref(),
            pher_in: pher_slices.as_deref(),
            model,
            scan_val: state.scan_val.view(),
            scan_idx: state.scan_idx.view(),
            front: state.front.view(),
            front_k: state.front_k.view(),
        };
        device.launch(&cells.with_salt(1), &calc).expect("calc");

        state.future_row.begin_epoch();
        state.future_col.begin_epoch();
        let tour = TourKernel {
            n: state.n,
            alive: &state.alive,
            scan_val: state.scan_val.as_slice(),
            scan_idx: state.scan_idx.as_slice(),
            front: state.front.as_slice(),
            front_k: state.front_k.as_slice(),
            row: state.row.as_slice(),
            col: state.col.as_slice(),
            future_row: state.future_row.view(),
            future_col: state.future_col.view(),
            model,
        };
        device.launch(&rows.with_salt(2), &tour).expect("tour");

        state.mat[1].begin_epoch();
        state.index[1].begin_epoch();
        state.row.begin_epoch();
        state.col.begin_epoch();
        state.pos.begin_epoch();
        state.tour.begin_epoch();
        if let Some(p) = state.pher.as_ref() {
            p.begin_epoch(1);
        }
        let aco = match model {
            ModelKind::Aco(p) => Some(p),
            ModelKind::Lem(_) => None,
        };
        let pher_views = state.pher.as_ref().map(|p| p.views(1));
        let mv = MovementKernel {
            w: state.w,
            h: state.h,
            mat_in: state.mat[0].as_slice(),
            index_in: state.index[0].as_slice(),
            future_row: state.future_row.as_slice(),
            future_col: state.future_col.as_slice(),
            id: &state.id,
            row: state.row.view(),
            col: state.col.view(),
            pos: state.pos.view(),
            tour: state.tour.view(),
            mat_out: state.mat[1].view(),
            index_out: state.index[1].view(),
            pher_in: pher_slices.as_deref(),
            pher_out: pher_views.as_deref(),
            aco,
        };
        device.launch(&cells.with_salt(3), &mv).expect("movement");
        (env, state)
    }

    #[test]
    fn agents_conserved_after_one_kernel_step() {
        let (env, state) = one_step(ModelKind::lem(), 31, ExecPolicy::Sequential);
        let before: usize = env.mat.count(CELL_TOP);
        let after = state.mat[1]
            .as_slice()
            .iter()
            .filter(|&&v| v == CELL_TOP)
            .count();
        assert_eq!(before, after);
        // Every live agent index appears exactly once in index_out.
        let mut seen = vec![0u32; state.n + 1];
        for &v in state.index[1].as_slice() {
            if v != 0 {
                seen[v as usize] += 1;
            }
        }
        assert!(seen[1..].iter().all(|&c| c == 1), "duplicated/lost agents");
    }

    #[test]
    fn movers_moved_into_their_futures() {
        let (env, state) = one_step(ModelKind::aco(), 32, ExecPolicy::Sequential);
        let mut moved = 0;
        for i in 1..=state.n {
            let (or, oc) = env.props.position(i);
            let (nr, nc) = (state.row.as_slice()[i], state.col.as_slice()[i]);
            if (or, oc) != (nr, nc) {
                moved += 1;
                // New position must be the agent's chosen future.
                assert_eq!(state.future_row.as_slice()[i], nr, "agent {i}");
                assert_eq!(state.future_col.as_slice()[i], nc, "agent {i}");
                // Tour length accumulated by exactly one step.
                let t = state.tour.as_slice()[i];
                assert!((0.99..=1.42).contains(&t), "agent {i} tour {t}");
            } else {
                assert_eq!(state.tour.as_slice()[i], 0.0, "stayer {i} gained tour");
            }
        }
        assert!(moved > 0, "nobody moved");
    }

    #[test]
    fn pheromone_deposited_exactly_at_arrivals() {
        let (env, state) = one_step(ModelKind::aco(), 33, ExecPolicy::Sequential);
        let p = state.pher.as_ref().expect("ACO");
        let tau0 = p.params.tau0;
        let top_out = p.fields[Group::TOP.index()][1].as_slice();
        for i in 1..=state.n {
            let (or, oc) = env.props.position(i);
            let (nr, nc) = (state.row.as_slice()[i], state.col.as_slice()[i]);
            if (or, oc) != (nr, nc) && state.id[i] == Group::TOP.label() {
                let cell = nr as usize * state.w + nc as usize;
                assert!(
                    top_out[cell] > tau0,
                    "agent {i} arrival cell has no deposit"
                );
            }
        }
        // Cells without arrivals only evaporate (stay at the floor).
        let arrivals: std::collections::HashSet<usize> = (1..=state.n)
            .filter(|&i| {
                env.props.position(i) != (state.row.as_slice()[i], state.col.as_slice()[i])
                    && state.id[i] == Group::TOP.label()
            })
            .map(|i| state.row.as_slice()[i] as usize * state.w + state.col.as_slice()[i] as usize)
            .collect();
        for (cell, &v) in top_out.iter().enumerate() {
            if !arrivals.contains(&cell) {
                assert!(
                    (v - tau0).abs() < 1e-6,
                    "cell {cell} changed without arrival: {v}"
                );
            }
        }
    }

    #[test]
    fn parallel_policy_matches_sequential_per_kernel() {
        for model in [ModelKind::lem(), ModelKind::aco()] {
            let (_, seq) = one_step(model, 34, ExecPolicy::Sequential);
            let (_, par) = one_step(model, 34, ExecPolicy::Parallel { workers: 3 });
            assert_eq!(seq.mat[1].as_slice(), par.mat[1].as_slice());
            assert_eq!(seq.index[1].as_slice(), par.index[1].as_slice());
            assert_eq!(seq.row.as_slice(), par.row.as_slice());
        }
    }
}
