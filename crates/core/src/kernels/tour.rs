//! The tour-construction phase (§IV.c): one thread per agent decides the
//! next cell.
//!
//! The paper launches 8 worker threads per agent (32×8-thread blocks) and
//! reduces the scan row in-warp; this implementation assigns one thread per
//! agent and performs the 8-wide reduction serially inside the thread — the
//! arithmetic, memory traffic, and random draws are identical, only the
//! intra-warp micro-parallelism of the reduction is not modelled (noted in
//! DESIGN.md §6). CURAND draws become the agent-keyed Philox streams, so
//! the CPU reference produces the same selections.

use pedsim_grid::cell::NEIGHBOR_OFFSETS;
use pedsim_grid::property::NO_FUTURE;
use simt::exec::{BlockCtx, BlockKernel};
use simt::memory::ScatterView;

use crate::model::{aco_select, lem_select, ScanRow};
use crate::params::ModelKind;

/// Per-agent selection kernel.
pub struct TourKernel<'a> {
    /// Total agents.
    pub n: usize,
    /// Per-slot liveness mask (read): dead slots — the open-boundary
    /// recycling pool — are not on the grid and make no decision (their
    /// future stays NO_FUTURE from the init kernel). Closed worlds pass an
    /// all-ones mask, so the predicated skip never fires there.
    pub alive: &'a [u8],
    /// Scan values (read).
    pub scan_val: &'a [f32],
    /// Scan indices (read).
    pub scan_idx: &'a [u8],
    /// FRONT CELL status (read).
    pub front: &'a [u8],
    /// FRONT CELL neighbour slot (read).
    pub front_k: &'a [u8],
    /// Agent rows (read).
    pub row: &'a [u16],
    /// Agent columns (read).
    pub col: &'a [u16],
    /// FUTURE ROW (written).
    pub future_row: ScatterView<'a, u16>,
    /// FUTURE COLUMN (written).
    pub future_col: ScatterView<'a, u16>,
    /// Movement model.
    pub model: ModelKind,
}

impl BlockKernel for TourKernel<'_> {
    fn block(&self, ctx: &mut BlockCtx) {
        let n = self.n;
        ctx.threads(|t| {
            let agent = t.global_linear() + 1;
            if agent <= n && self.alive[agent] != 0 {
                let scan = ScanRow {
                    vals: self.scan_val[agent * 8..agent * 8 + 8]
                        .try_into()
                        .expect("8 slots"),
                    idxs: self.scan_idx[agent * 8..agent * 8 + 8]
                        .try_into()
                        .expect("8 slots"),
                };
                t.note_global_loads(20);
                let front = self.front[agent];
                let front_k = self.front_k[agent] as usize;
                let mut rng = t.rng_for(agent as u64);
                let k = match self.model {
                    ModelKind::Lem(p) => lem_select(&scan, front, front_k, &p, &mut rng),
                    ModelKind::Aco(p) => aco_select(&scan, front, front_k, &p, &mut rng),
                };
                t.alu(16);
                match k {
                    Some(k) => {
                        let (dr, dc) = NEIGHBOR_OFFSETS[k];
                        let r = i64::from(self.row[agent]) + dr;
                        let c = i64::from(self.col[agent]) + dc;
                        self.future_row.write(agent, r as u16);
                        self.future_col.write(agent, c as u16);
                    }
                    None => {
                        self.future_row.write(agent, NO_FUTURE);
                        self.future_col.write(agent, NO_FUTURE);
                    }
                }
                t.note_global_stores(2);
            }
        });
    }

    fn regs_per_thread(&self) -> u32 {
        24
    }

    fn name(&self) -> &'static str {
        "tour"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{DeviceState, InitialCalcKernel};
    use pedsim_grid::cell::CELL_EMPTY;
    use pedsim_grid::{EnvConfig, Environment};
    use simt::exec::LaunchConfig;
    use simt::{Device, Dim2};

    fn run_tour(model: ModelKind, seed: u64, salt: u64) -> (Environment, DeviceState) {
        // Two spawn rows so plenty of agents face a blocked forward cell
        // and actually consume randomness.
        let env = Environment::new(&EnvConfig::small(32, 32, 40).with_seed(seed));
        let dist = pedsim_grid::DistanceData::rows(env.height());
        let state = DeviceState::upload(&env, &dist, model, true);
        let device = Device::sequential();
        // Stage 2 first so the scan matrix is populated.
        state.scan_val.begin_epoch();
        state.scan_idx.begin_epoch();
        state.front.begin_epoch();
        state.front_k.begin_epoch();
        let pher_slices = state.pher.as_ref().map(|p| p.slices(0));
        let calc = InitialCalcKernel {
            w: state.w,
            h: state.h,
            mat_in: state.mat[0].as_slice(),
            index_in: state.index[0].as_slice(),
            dist: state.dist_ref(),
            pher_in: pher_slices.as_deref(),
            model,
            scan_val: state.scan_val.view(),
            scan_idx: state.scan_idx.view(),
            front: state.front.view(),
            front_k: state.front_k.view(),
        };
        device
            .launch(
                &LaunchConfig::tiled_over(Dim2::new(32, 32), Dim2::square(16)),
                &calc,
            )
            .expect("calc");

        state.future_row.begin_epoch();
        state.future_col.begin_epoch();
        let tour = TourKernel {
            n: state.n,
            alive: &state.alive,
            scan_val: state.scan_val.as_slice(),
            scan_idx: state.scan_idx.as_slice(),
            front: state.front.as_slice(),
            front_k: state.front_k.as_slice(),
            row: state.row.as_slice(),
            col: state.col.as_slice(),
            future_row: state.future_row.view(),
            future_col: state.future_col.view(),
            model,
        };
        let blocks = (state.n as u32).div_ceil(256);
        let cfg = LaunchConfig::new(Dim2::new(blocks, 1), Dim2::new(256, 1))
            .with_seed(seed)
            .with_salt(salt);
        device.launch(&cfg, &tour).expect("tour");
        (env, state)
    }

    #[test]
    fn futures_are_adjacent_empty_cells() {
        let (env, state) = run_tour(ModelKind::lem(), 5, 2);
        let fr = state.future_row.as_slice();
        let fc = state.future_col.as_slice();
        let mut decided = 0;
        for i in 1..=env.total_agents() {
            if fr[i] == NO_FUTURE {
                continue;
            }
            decided += 1;
            let (r, c) = env.props.position(i);
            let dr = (i64::from(fr[i]) - i64::from(r)).abs();
            let dc = (i64::from(fc[i]) - i64::from(c)).abs();
            assert!(
                dr <= 1 && dc <= 1 && dr + dc > 0,
                "agent {i} target not adjacent"
            );
            assert_eq!(
                env.mat.get(fr[i] as usize, fc[i] as usize),
                CELL_EMPTY,
                "agent {i} targets an occupied cell"
            );
        }
        assert!(decided > 0, "nobody chose a move");
    }

    #[test]
    fn deterministic_per_salt() {
        let (_, a) = run_tour(ModelKind::aco(), 7, 2);
        let (_, b) = run_tour(ModelKind::aco(), 7, 2);
        assert_eq!(a.future_row.as_slice(), b.future_row.as_slice());
        let (_, c) = run_tour(ModelKind::aco(), 7, 6);
        // A different salt redraws; some agents will differ (front-priority
        // agents won't, so compare the whole vector loosely).
        assert_ne!(
            (a.future_row.as_slice(), a.future_col.as_slice()),
            (c.future_row.as_slice(), c.future_col.as_slice()),
        );
    }
}
