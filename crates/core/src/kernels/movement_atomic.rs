//! The atomic-operation movement variant the paper *rejects* (§IV.d: "an
//! atomic operation serializes an application and thus increases
//! computation time"), kept as the baseline for the scatter-to-gather
//! ablation bench.
//!
//! One thread per **agent**. Each thread tries to claim its agent's future
//! cell with an `atomicCAS` on the index matrix; the winner then updates
//! its own source cell and the property table. Claim order depends on
//! thread scheduling, so unlike the gather kernel this variant is **not
//! deterministic** under the parallel policy — one more reason the paper's
//! design is the right one. It exists to measure, not to simulate with:
//! the ablation bench compares its wall-clock and atomic-op counts against
//! [`super::MovementKernel`].

use pedsim_grid::cell::CELL_EMPTY;
use pedsim_grid::property::NO_FUTURE;
use simt::exec::{BlockCtx, BlockKernel};
use simt::memory::{AtomicBuffer, ScatterView};

/// Per-agent CAS-claim movement kernel (ablation baseline).
pub struct AtomicMovementKernel<'a> {
    /// Environment width.
    pub w: usize,
    /// Total agents.
    pub n: usize,
    /// Cell labels, updated in place through atomics (u32-widened).
    pub mat: &'a AtomicBuffer,
    /// Agent index per cell, updated in place through atomics.
    pub index: &'a AtomicBuffer,
    /// FUTURE ROW (read).
    pub future_row: &'a [u16],
    /// FUTURE COLUMN (read).
    pub future_col: &'a [u16],
    /// Agent labels (read).
    pub id: &'a [u8],
    /// Agent rows (written by the claiming thread).
    pub row: ScatterView<'a, u16>,
    /// Agent columns (written by the claiming thread).
    pub col: ScatterView<'a, u16>,
}

impl BlockKernel for AtomicMovementKernel<'_> {
    fn block(&self, ctx: &mut BlockCtx) {
        let (n, w) = (self.n, self.w);
        ctx.threads(|t| {
            let agent = t.global_linear() + 1;
            if agent > n {
                return;
            }
            let fr = self.future_row[agent];
            if fr == NO_FUTURE {
                return;
            }
            let fc = self.future_col[agent];
            let target = fr as usize * w + fc as usize;
            // Claim the empty target cell: CAS index 0 → agent.
            let prev = self.index.compare_and_swap(target, 0, agent as u32);
            t.note_atomics(1);
            if prev == 0 {
                // Won the cell. Publish the label, clear the source.
                let r = self.row.read(agent);
                let c = self.col.read(agent);
                let source = r as usize * w + c as usize;
                self.mat.store(target, u32::from(self.id[agent]));
                self.index.store(source, 0);
                self.mat.store(source, u32::from(CELL_EMPTY));
                self.row.write(agent, fr);
                self.col.write(agent, fc);
                t.note_global_stores(5);
            }
        });
    }

    fn regs_per_thread(&self) -> u32 {
        16
    }

    fn name(&self) -> &'static str {
        "movement_atomic"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simt::exec::LaunchConfig;
    use simt::memory::ScatterBuffer;
    use simt::{Device, Dim2};

    /// Three agents race for one cell; exactly one must win, and the final
    /// state must be consistent (agent count conserved, no duplicates).
    #[test]
    fn cas_claims_are_exclusive() {
        let w = 8usize;
        let mat = AtomicBuffer::new(w * w, 0);
        let index = AtomicBuffer::new(w * w, 0);
        // Agents 1,2,3 at (3,2),(3,4),(5,3); all target (4,3).
        let pos = [(0u16, 0u16), (3, 2), (3, 4), (5, 3)];
        for (a, &(r, c)) in pos.iter().enumerate().skip(1) {
            index.store(r as usize * w + c as usize, a as u32);
            mat.store(r as usize * w + c as usize, 1);
        }
        let row = ScatterBuffer::from_vec(pos.iter().map(|p| p.0).collect(), false);
        let col = ScatterBuffer::from_vec(pos.iter().map(|p| p.1).collect(), false);
        let fr = vec![NO_FUTURE, 4, 4, 4];
        let fc = vec![NO_FUTURE, 3, 3, 3];
        let id = vec![0u8, 1, 1, 1];
        let k = AtomicMovementKernel {
            w,
            n: 3,
            mat: &mat,
            index: &index,
            future_row: &fr,
            future_col: &fc,
            id: &id,
            row: row.view(),
            col: col.view(),
        };
        let device = Device::parallel();
        let cfg = LaunchConfig::new(Dim2::new(1, 1), Dim2::new(256, 1));
        device.launch(&cfg, &k).expect("launch");

        // Exactly one agent sits at the target.
        let winner = index.load(4 * w + 3);
        assert!((1..=3).contains(&winner), "winner = {winner}");
        // Agent count conserved: 3 non-zero index cells.
        let occupied = index.to_vec().iter().filter(|&&v| v != 0).count();
        assert_eq!(occupied, 3);
        // Winner's property row matches the target.
        assert_eq!(row.as_slice()[winner as usize], 4);
        assert_eq!(col.as_slice()[winner as usize], 3);
    }
}
