//! The initial calculation phase (§IV.b): one thread per environment cell,
//! 16×16 blocks over an 18×18 shared tile (Figure 3).
//!
//! Occupied-cell threads score their agent's eight neighbours — eq. (1)
//! candidates for LEM, eq. (2) numerators for ACO — into the agent's scan
//! row, and record the FRONT CELL status. Control flow is uniform in the
//! paper's sense: the occupied/empty distinction is a *predicated* path
//! (the paper routes empty threads' results to the sacrificial 0th scan
//! row; here the masked lanes simply skip the stores), so the kernel
//! records no warp divergence.

use pedsim_grid::cell::Group;
use pedsim_grid::cell::CELL_WALL;
use pedsim_grid::DistRef;
use simt::exec::{BlockCtx, BlockKernel};
use simt::memory::ScatterView;
use simt::Dim2;

use crate::model::{aco_scan_row, front_status, lem_scan_row};
use crate::params::ModelKind;

/// Per-cell scoring kernel.
pub struct InitialCalcKernel<'a> {
    /// Environment width.
    pub w: usize,
    /// Environment height.
    pub h: usize,
    /// Current cell labels (read as 18×18 tiles).
    pub mat_in: &'a [u8],
    /// Current agent indices (own-cell read).
    pub index_in: &'a [u32],
    /// Constant-memory distance field (layout-tagged view).
    pub dist: DistRef<'a>,
    /// Current pheromone fields (ACO): one plane per group, in group-index
    /// order.
    pub pher_in: Option<&'a [&'a [f32]]>,
    /// Movement model.
    pub model: ModelKind,
    /// Scan values out.
    pub scan_val: ScatterView<'a, f32>,
    /// Scan indices out.
    pub scan_idx: ScatterView<'a, u8>,
    /// FRONT CELL status out.
    pub front: ScatterView<'a, u8>,
    /// FRONT CELL neighbour slot out.
    pub front_k: ScatterView<'a, u8>,
}

impl InitialCalcKernel<'_> {
    /// Halo width the mat tile needs: 1 for the baseline, the scan range
    /// when the look-ahead extension is active.
    fn halo(&self) -> u32 {
        match self.model {
            ModelKind::Lem(p) => u32::from(p.scan_range.max(1)),
            ModelKind::Aco(_) => 1,
        }
    }
}

impl BlockKernel for InitialCalcKernel<'_> {
    fn block(&self, ctx: &mut BlockCtx) {
        let dims = Dim2::new(self.w as u32, self.h as u32);
        let mat_tile = ctx.load_tile(self.mat_in, dims, self.halo(), CELL_WALL);
        // The paper's stacked 36×18 local pheromone matrix — all group
        // fields tiled together, selected by the agent's label.
        let pher_tile = self
            .pher_in
            .map(|planes| ctx.load_multi_tile(planes, dims, 1, 0.0f32));
        ctx.sync();
        let (w, h) = (self.w, self.h);
        // Hoist the per-array handles out of the thread loop: each agent
        // property is its own flat array (SoA), so the hot loop indexes
        // plain locals instead of re-reading kernel struct fields.
        let index_in = self.index_in;
        let dist = self.dist;
        let model = self.model;
        let scan_val = self.scan_val;
        let scan_idx = self.scan_idx;
        let front = self.front;
        let front_k = self.front_k;
        ctx.threads(|t| {
            let (r, c) = t.global_rc();
            if (r as usize) < h && (c as usize) < w {
                let (ri, ci) = (i64::from(r), i64::from(c));
                let occ = |rr: i64, cc: i64| mat_tile.get(rr, cc);
                let label = occ(ri, ci);
                // Predicated path: empty lanes skip the stores (the paper
                // instead routes them to scan row 0 — same warp timing,
                // same effect).
                if let Some(g) = Group::from_label(label) {
                    let a = index_in[r as usize * w + c as usize] as usize;
                    t.note_global_loads(1);
                    debug_assert!(a > 0, "occupied cell must be indexed");
                    let row = match model {
                        ModelKind::Lem(p) => lem_scan_row(&occ, dist, g, ri, ci, p.scan_range),
                        ModelKind::Aco(p) => {
                            let tile = pher_tile.as_ref().expect("ACO pheromone tile");
                            let which = g.index();
                            let tau = |rr: i64, cc: i64| tile.get(which, rr, cc);
                            aco_scan_row(&occ, &tau, dist, &p, g, ri, ci)
                        }
                    };
                    for s in 0..8 {
                        scan_val.write(a * 8 + s, row.vals[s]);
                        scan_idx.write(a * 8 + s, row.idxs[s]);
                    }
                    let fk = dist.front_k(g, ri, ci);
                    front.write(a, front_status(&occ, fk, ri, ci));
                    front_k.write(a, fk as u8);
                    t.note_global_stores(18);
                    t.note_shared_loads(9);
                    t.alu(32);
                }
            }
        });
    }

    fn shared_bytes(&self) -> u32 {
        // (16+2·halo)² mat tile + (ACO) one 18×18 f32 pheromone tile per
        // group.
        let side = 16 + 2 * self.halo();
        let mat = side * side;
        let pher = self
            .pher_in
            .map_or(0, |planes| planes.len() as u32 * 18 * 18 * 4);
        mat + pher
    }

    fn regs_per_thread(&self) -> u32 {
        20
    }

    fn name(&self) -> &'static str {
        "initial_calc"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::DeviceState;
    use pedsim_grid::scan::SCAN_INVALID;
    use pedsim_grid::{EnvConfig, Environment};
    use simt::exec::LaunchConfig;
    use simt::Device;

    fn run(model: ModelKind) -> (Environment, DeviceState) {
        let env = Environment::new(&EnvConfig::small(32, 32, 25).with_seed(9));
        let dist = pedsim_grid::DistanceData::rows(env.height());
        let state = DeviceState::upload(&env, &dist, model, true);
        state.scan_val.begin_epoch();
        state.scan_idx.begin_epoch();
        state.front.begin_epoch();
        state.front_k.begin_epoch();
        let pher_slices = state.pher.as_ref().map(|p| p.slices(0));
        let k = InitialCalcKernel {
            w: state.w,
            h: state.h,
            mat_in: state.mat[0].as_slice(),
            index_in: state.index[0].as_slice(),
            dist: state.dist_ref(),
            pher_in: pher_slices.as_deref(),
            model,
            scan_val: state.scan_val.view(),
            scan_idx: state.scan_idx.view(),
            front: state.front.view(),
            front_k: state.front_k.view(),
        };
        let cfg = LaunchConfig::tiled_over(Dim2::new(32, 32), Dim2::square(16));
        Device::sequential().launch(&cfg, &k).expect("launch");
        (env, state)
    }

    #[test]
    fn lem_scan_rows_match_reference() {
        let (env, state) = run(ModelKind::lem());
        let dist = pedsim_grid::DistanceData::rows(32);
        let occ = |r: i64, c: i64| env.mat.get_or(r, c, CELL_WALL);
        for i in 1..=env.total_agents() {
            let (r, c) = env.props.position(i);
            let g = env.group_of(i);
            let expect = lem_scan_row(&occ, dist.dist_ref(), g, i64::from(r), i64::from(c), 1);
            let vals = &state.scan_val.as_slice()[i * 8..i * 8 + 8];
            let idxs = &state.scan_idx.as_slice()[i * 8..i * 8 + 8];
            assert_eq!(idxs, &expect.idxs, "agent {i} idxs");
            assert_eq!(vals, &expect.vals, "agent {i} vals");
        }
    }

    #[test]
    fn aco_rows_are_by_neighbour_index() {
        let (env, state) = run(ModelKind::aco());
        for i in 1..=env.total_agents() {
            let idxs = &state.scan_idx.as_slice()[i * 8..i * 8 + 8];
            assert_eq!(idxs, &[0, 1, 2, 3, 4, 5, 6, 7], "agent {i}");
        }
    }

    #[test]
    fn sentinel_row_untouched() {
        let (_, state) = run(ModelKind::lem());
        assert!(state.scan_val.as_slice()[..8].iter().all(|&v| v == 0.0));
        assert!(state.scan_idx.as_slice()[..8]
            .iter()
            .all(|&v| v == SCAN_INVALID));
    }

    #[test]
    fn front_status_recorded() {
        let (env, state) = run(ModelKind::lem());
        let occ = |r: i64, c: i64| env.mat.get_or(r, c, CELL_WALL);
        for i in 1..=env.total_agents() {
            let (r, c) = env.props.position(i);
            let fwd = env.group_of(i).forward_index();
            let expect = front_status(&occ, fwd, i64::from(r), i64::from(c));
            assert_eq!(state.front.as_slice()[i], expect, "agent {i}");
            // Row-table worlds: the front slot is the group-forward cell.
            assert_eq!(state.front_k.as_slice()[i] as usize, fwd, "agent {i}");
        }
    }
}
