//! The four simulation kernels (§IV.b–e) for the virtual GPU, plus the
//! device-resident buffer set they operate on.
//!
//! Buffer discipline (what makes the launches race-free *and* faithful to
//! the paper's scatter-to-gather design):
//!
//! * `mat` and `index` are **ping-pong pairs**: each movement launch reads
//!   tiles of the *in* buffer and writes every cell of the *out* buffer
//!   exactly once (copy-through for unchanged cells, decided by the
//!   deterministic winner recomputation — see
//!   [`crate::model::movement`]);
//! * `row`/`col`/`tour` are written in place, but only for arriving agents
//!   and only by the unique thread of the arrival cell;
//! * `scan`/`front`/`future` are rewritten wholesale by their producing
//!   kernel each step;
//! * the pheromone fields are ping-pong pairs — one pair per directional
//!   group, indexed by [`pedsim_grid::cell::Group::index`] — updated by
//!   the movement kernel (evaporate everywhere + deposit at arrivals).
//!
//! In checked mode every one of those "exactly once" claims is enforced at
//! runtime by the `ScatterBuffer` conflict detector.

pub mod init;
pub mod initial_calc;
pub mod movement;
pub mod movement_atomic;
pub mod sparse;
pub mod tour;

pub use init::InitKernel;
pub use initial_calc::InitialCalcKernel;
pub use movement::MovementKernel;
pub use movement_atomic::AtomicMovementKernel;
pub use sparse::{
    EvaporationKernel, SparseCalcKernel, SparseInitKernel, SparseMoveApplyKernel,
    SparseMoveDecodeKernel,
};
pub use tour::TourKernel;

use pedsim_grid::cell::CELL_EMPTY;
use pedsim_grid::property::NO_FUTURE;
use pedsim_grid::scan::SCAN_INVALID;
use pedsim_grid::{DistRef, DistanceData, DistanceKind, Environment};
use simt::memory::{ConstantBuffer, ScatterBuffer, ScatterView};

use crate::params::{AcoParams, ModelKind};

/// Ping-pong pheromone buffers (ACO only): one `[current, next]` pair per
/// directional group, in group-index order.
pub struct PherBuffers {
    /// Per-group fields, `[current, next]` by the owner's `cur` flag.
    pub fields: Vec<[ScatterBuffer<f32>; 2]>,
    /// ACO parameters the kernels need.
    pub params: AcoParams,
}

impl PherBuffers {
    /// Borrow every group's side-`side` plane (the kernels' read set).
    pub fn slices(&self, side: usize) -> Vec<&[f32]> {
        self.fields.iter().map(|f| f[side].as_slice()).collect()
    }

    /// Views over every group's side-`side` plane (the kernels' write
    /// set).
    pub fn views(&self, side: usize) -> Vec<ScatterView<'_, f32>> {
        self.fields.iter().map(|f| f[side].view()).collect()
    }

    /// Begin a write epoch on every group's side-`side` plane.
    pub fn begin_epoch(&self, side: usize) {
        for f in &self.fields {
            f[side].begin_epoch();
        }
    }
}

/// All device-resident state (the output of the data-preparation stage,
/// §IV.a).
pub struct DeviceState {
    /// Environment width.
    pub w: usize,
    /// Environment height.
    pub h: usize,
    /// Total agents.
    pub n: usize,
    /// Per-group populations (agent indices are contiguous in group
    /// order, 1-based).
    pub group_sizes: Vec<usize>,
    /// Cell labels, ping-pong.
    pub mat: [ScatterBuffer<u8>; 2],
    /// Agent indices per cell, ping-pong.
    pub index: [ScatterBuffer<u32>; 2],
    /// Which side of the `mat`/`index` ping-pong pair is current. Dense
    /// movement flips it every step; sparse movement updates in place and
    /// never flips.
    pub cur: usize,
    /// Which side of the pheromone ping-pong pair is current. Tracked
    /// separately from `cur` because the pheromone field ping-pongs in
    /// *both* traversal modes (evaporation rewrites every cell), while
    /// `mat`/`index` only ping-pong in dense mode.
    pub pher_cur: usize,
    /// Agent rows (in-place, arrival-owned writes).
    pub row: ScatterBuffer<u16>,
    /// Agent columns.
    pub col: ScatterBuffer<u16>,
    /// Agent→cell position index: `pos[a] = row[a] * w + col[a]` for every
    /// slot (dead slots keep their last position, mirroring `row`/`col`).
    /// Winner-owned writes by the movement kernels; the sparse apply
    /// kernel reads it to find each winner's source cell.
    pub pos: ScatterBuffer<u32>,
    /// Sparse-movement outcome scratch, agent-keyed: destination linear
    /// index for this step's winners, `u32::MAX` for everyone else.
    /// Rewritten for every live slot by each decode launch.
    pub won: ScatterBuffer<u32>,
    /// Chosen future rows.
    pub future_row: ScatterBuffer<u16>,
    /// Chosen future columns.
    pub future_col: ScatterBuffer<u16>,
    /// Front-cell status per agent.
    pub front: ScatterBuffer<u8>,
    /// Front-cell neighbour slot (0–7) per agent.
    pub front_k: ScatterBuffer<u8>,
    /// Scan values, `(N+1)×8`.
    pub scan_val: ScatterBuffer<f32>,
    /// Scan neighbour indices, `(N+1)×8`.
    pub scan_idx: ScatterBuffer<u8>,
    /// Accumulated tour lengths.
    pub tour: ScatterBuffer<f32>,
    /// Pheromone fields (ACO only).
    pub pher: Option<PherBuffers>,
    /// Immutable agent labels (`group index + 1`), sentinel at 0.
    pub id: Vec<u8>,
    /// Per-slot liveness mask (1 live, 0 dead; sentinel 0 at index 0).
    /// Host-managed between launches by the open-boundary lifecycle; read
    /// by the tour kernel so dead slots make no decision.
    pub alive: Vec<u8>,
    /// Recyclable property slots per group (`pop_first()` yields the
    /// smallest — the shared deterministic recycling order).
    pub free: Vec<pedsim_grid::environment::FreeSlots>,
    /// Live agents currently on the grid.
    pub live: usize,
    /// Constant-memory distance field (row tables or flow field).
    pub dist: ConstantBuffer<f32>,
    /// Layout of `dist`.
    pub dist_kind: DistanceKind,
    /// Group planes held by `dist`.
    pub dist_groups: usize,
    /// Per-group forward neighbour slots of `dist`.
    pub dist_forward: Vec<u8>,
    /// Per-cell target bitmask carried for download (scenario worlds).
    pub targets: Option<std::sync::Arc<pedsim_grid::Matrix<u8>>>,
}

impl DeviceState {
    /// Upload an environment and its distance field (the host→device copy
    /// of §IV.a). For the classic corridor pass
    /// [`DistanceData::rows`]`(env.height())`.
    pub fn upload(env: &Environment, dist: &DistanceData, model: ModelKind, checked: bool) -> Self {
        let (h, w) = (env.height(), env.width());
        let n = env.total_agents();
        let groups = env.n_groups();
        assert!(
            dist.groups >= groups,
            "distance field holds {} planes for {groups} groups",
            dist.groups
        );
        let pher = match model {
            ModelKind::Aco(p) => Some(PherBuffers {
                fields: (0..groups)
                    .map(|_| {
                        [
                            ScatterBuffer::new(h * w, p.tau0, checked),
                            ScatterBuffer::new(h * w, p.tau0, checked),
                        ]
                    })
                    .collect(),
                params: p,
            }),
            ModelKind::Lem(_) => None,
        };
        Self {
            w,
            h,
            n,
            group_sizes: env.group_sizes.clone(),
            mat: [
                ScatterBuffer::from_vec(env.mat.as_slice().to_vec(), checked),
                ScatterBuffer::new(h * w, CELL_EMPTY, checked),
            ],
            index: [
                ScatterBuffer::from_vec(env.index.as_slice().to_vec(), checked),
                ScatterBuffer::new(h * w, 0u32, checked),
            ],
            cur: 0,
            pher_cur: 0,
            row: ScatterBuffer::from_vec(env.props.row.clone(), checked),
            col: ScatterBuffer::from_vec(env.props.col.clone(), checked),
            pos: ScatterBuffer::from_vec(env.pos.clone(), checked),
            won: ScatterBuffer::new(n + 1, u32::MAX, checked),
            future_row: ScatterBuffer::new(n + 1, NO_FUTURE, checked),
            future_col: ScatterBuffer::new(n + 1, NO_FUTURE, checked),
            front: ScatterBuffer::new(n + 1, CELL_EMPTY, checked),
            front_k: ScatterBuffer::new(n + 1, 0u8, checked),
            scan_val: ScatterBuffer::new((n + 1) * 8, 0.0f32, checked),
            scan_idx: ScatterBuffer::new((n + 1) * 8, SCAN_INVALID, checked),
            tour: ScatterBuffer::new(n + 1, 0.0f32, checked),
            pher,
            id: env.props.id.clone(),
            alive: env.alive.iter().map(|&a| u8::from(a)).collect(),
            free: env.free.clone(),
            live: env.live,
            dist: ConstantBuffer::new(dist.data.clone()),
            dist_kind: dist.kind,
            dist_groups: dist.groups,
            dist_forward: dist.forward.clone(),
            targets: env.targets.clone(),
        }
    }

    /// The layout-tagged distance view the kernels consume.
    #[inline]
    pub fn dist_ref(&self) -> DistRef<'_> {
        DistRef {
            kind: self.dist_kind,
            height: self.h,
            width: self.w,
            groups: self.dist_groups,
            forward: &self.dist_forward,
            data: self.dist.as_slice(),
        }
    }

    /// Download the device state back into a host [`Environment`]
    /// (device→host copy for validation and snapshots).
    pub fn download(&self, spawn_rows: usize, seed: u64) -> Environment {
        use pedsim_grid::{Matrix, PropertyTable};
        let mut props = PropertyTable::new(self.n);
        props.id = self.id.clone();
        props.row = self.row.as_slice().to_vec();
        props.col = self.col.as_slice().to_vec();
        props.future_row = self.future_row.as_slice().to_vec();
        props.future_col = self.future_col.as_slice().to_vec();
        props.front = self.front.as_slice().to_vec();
        props.front_k = self.front_k.as_slice().to_vec();
        Environment {
            mat: Matrix::from_vec(self.h, self.w, self.mat[self.cur].as_slice().to_vec()),
            index: Matrix::from_vec(self.h, self.w, self.index[self.cur].as_slice().to_vec()),
            props,
            spawn_rows,
            group_sizes: self.group_sizes.clone(),
            seed,
            pos: self.pos.as_slice().to_vec(),
            targets: self.targets.clone(),
            alive: self.alive.iter().map(|&a| a != 0).collect(),
            free: self.free.clone(),
            live: self.live,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pedsim_grid::EnvConfig;

    #[test]
    fn upload_download_roundtrip() {
        let env = Environment::new(&EnvConfig::small(32, 32, 20).with_seed(3));
        let dist = DistanceData::rows(env.height());
        let state = DeviceState::upload(&env, &dist, ModelKind::aco(), true);
        let back = state.download(env.spawn_rows, env.seed);
        assert_eq!(back.mat, env.mat);
        assert_eq!(back.index, env.index);
        assert_eq!(back.props.row, env.props.row);
        assert_eq!(back.group_sizes, env.group_sizes);
        back.check_consistency().expect("round-trips consistent");
        let pher = state.pher.as_ref().expect("ACO pheromone");
        assert_eq!(pher.fields.len(), 2);
    }

    #[test]
    fn lem_state_has_no_pheromone() {
        let env = Environment::new(&EnvConfig::small(16, 16, 5));
        let state = DeviceState::upload(&env, &DistanceData::rows(16), ModelKind::lem(), false);
        assert!(state.pher.is_none());
        assert_eq!(state.n, 10);
        assert_eq!(state.dist_forward, vec![0, 5]);
    }
}
