//! Agent-centric (sparse) kernel variants: one thread per **live agent**
//! instead of one per environment cell, driven by a host-maintained live
//! slot list in ascending slot order.
//!
//! Byte-identical to the dense per-cell kernels: the movement streams are
//! keyed by *cell* linear index, so visiting only the cells live agents
//! actually target consumes exactly the draws the dense sweep would make
//! there, and every write is slot- or cell-keyed with the same value the
//! dense kernel computes. See DESIGN.md §16 for the equivalence argument.
//!
//! The movement phase splits into two launches because the dense kernel's
//! cell-ownership trick (every cell decides its own fate) has no sparse
//! analogue:
//!
//! * [`SparseMoveDecodeKernel`] — each live agent recomputes the gather
//!   at its *target* cell with that cell's stream and records whether it
//!   won (`won[a] = target lin`, else `u32::MAX`);
//! * [`SparseMoveApplyKernel`] — each winner clears its source cell and
//!   claims its destination **in place** on the current `mat`/`index`
//!   side. Sources (all occupied at step start) and destinations (all
//!   empty at step start) are disjoint, per-winner-unique sets, so the
//!   in-place writes are conflict-free — the checked buffers enforce it.
//!
//! ACO adds a dense [`EvaporationKernel`] sweep (the field itself stays
//! O(cells) — evaporation touches every cell by definition) whose
//! destination entries the apply kernel then overwrites with the fused
//! evaporate+deposit value, computed from the *pre-step* field exactly as
//! the dense movement kernel does.

use pedsim_grid::cell::{Group, CELL_EMPTY, CELL_WALL};
use pedsim_grid::property::NO_FUTURE;
use pedsim_grid::{DistRef, PheromoneField};
use simt::exec::{BlockCtx, BlockKernel};
use simt::memory::ScatterView;

use crate::model::{aco_scan_row, front_status, gather_winner, lem_scan_row};
use crate::params::{AcoParams, ModelKind};

/// The sparse supporting kernel (§IV.e): clear the FUTURE fields of live
/// slots only. Dead slots' stale records are never read by any sparse
/// stage (the tour kernel is alive-masked, the decode kernel walks the
/// live list), and the scan matrix needs no clear at all — the sparse
/// calc kernel rewrites every live row before the tour kernel reads it.
pub struct SparseInitKernel<'a> {
    /// Live agent slots, ascending.
    pub live: &'a [u32],
    /// FUTURE ROW to reset.
    pub future_row: ScatterView<'a, u16>,
    /// FUTURE COLUMN to reset.
    pub future_col: ScatterView<'a, u16>,
}

impl BlockKernel for SparseInitKernel<'_> {
    fn block(&self, ctx: &mut BlockCtx) {
        let live = self.live;
        ctx.threads(|t| {
            let i = t.global_linear();
            if i < live.len() {
                let a = live[i] as usize;
                self.future_row.write(a, NO_FUTURE);
                self.future_col.write(a, NO_FUTURE);
                t.note_global_stores(2);
            }
        });
    }

    fn name(&self) -> &'static str {
        "init_sparse"
    }
}

/// The sparse initial-calculation kernel (§IV.b): one thread per live
/// agent scores its own neighbourhood from global memory (no shared
/// tiles — at sparse occupancies the 8-neighbourhood reads of the live
/// agents touch far fewer cells than a tiled sweep loads).
pub struct SparseCalcKernel<'a> {
    /// Environment width.
    pub w: usize,
    /// Environment height.
    pub h: usize,
    /// Live agent slots, ascending.
    pub live: &'a [u32],
    /// Current cell labels (global reads, wall outside).
    pub mat_in: &'a [u8],
    /// Agent rows (read).
    pub row: &'a [u16],
    /// Agent columns (read).
    pub col: &'a [u16],
    /// Agent labels (read).
    pub id: &'a [u8],
    /// Constant-memory distance field.
    pub dist: DistRef<'a>,
    /// Current pheromone fields (ACO), per group.
    pub pher_in: Option<&'a [&'a [f32]]>,
    /// Movement model.
    pub model: ModelKind,
    /// Scan values out.
    pub scan_val: ScatterView<'a, f32>,
    /// Scan indices out.
    pub scan_idx: ScatterView<'a, u8>,
    /// FRONT CELL status out.
    pub front: ScatterView<'a, u8>,
    /// FRONT CELL neighbour slot out.
    pub front_k: ScatterView<'a, u8>,
}

impl BlockKernel for SparseCalcKernel<'_> {
    fn block(&self, ctx: &mut BlockCtx) {
        let (w, h) = (self.w, self.h);
        let live = self.live;
        let mat_in = self.mat_in;
        let dist = self.dist;
        let model = self.model;
        let occ = move |rr: i64, cc: i64| {
            if rr < 0 || cc < 0 || rr >= h as i64 || cc >= w as i64 {
                CELL_WALL
            } else {
                mat_in[rr as usize * w + cc as usize]
            }
        };
        ctx.threads(|t| {
            let i = t.global_linear();
            if i >= live.len() {
                return;
            }
            let a = live[i] as usize;
            let (r, c) = (i64::from(self.row[a]), i64::from(self.col[a]));
            let g = Group::from_label(self.id[a]).expect("live slot has group label");
            let row = match model {
                ModelKind::Lem(p) => lem_scan_row(&occ, dist, g, r, c, p.scan_range),
                ModelKind::Aco(p) => {
                    let planes = self.pher_in.expect("ACO pheromone planes");
                    let plane = planes[g.index()];
                    let tau = |rr: i64, cc: i64| {
                        if rr < 0 || cc < 0 || rr >= h as i64 || cc >= w as i64 {
                            0.0
                        } else {
                            plane[rr as usize * w + cc as usize]
                        }
                    };
                    aco_scan_row(&occ, &tau, dist, &p, g, r, c)
                }
            };
            for s in 0..8 {
                self.scan_val.write(a * 8 + s, row.vals[s]);
                self.scan_idx.write(a * 8 + s, row.idxs[s]);
            }
            let fk = dist.front_k(g, r, c);
            self.front.write(a, front_status(&occ, fk, r, c));
            self.front_k.write(a, fk as u8);
            t.note_global_loads(11);
            t.note_global_stores(18);
            t.alu(32);
        });
    }

    fn regs_per_thread(&self) -> u32 {
        22
    }

    fn name(&self) -> &'static str {
        "initial_calc_sparse"
    }
}

/// Sparse movement, phase 1: each live agent with a future recomputes the
/// winner at its target cell — with the *target cell's* Philox stream, the
/// same draw the dense sweep makes there — and records the outcome in the
/// agent-keyed `won` buffer (`target lin` on a win, `u32::MAX` otherwise).
/// Every live slot is written exactly once per launch, so stale entries
/// from the previous step are never read by the apply phase.
pub struct SparseMoveDecodeKernel<'a> {
    /// Environment width.
    pub w: usize,
    /// Environment height.
    pub h: usize,
    /// Live agent slots, ascending.
    pub live: &'a [u32],
    /// Current cell labels (global reads, wall outside).
    pub mat_in: &'a [u8],
    /// Current agent indices (global reads, 0 outside).
    pub index_in: &'a [u32],
    /// FUTURE ROW (read).
    pub future_row: &'a [u16],
    /// FUTURE COLUMN (read).
    pub future_col: &'a [u16],
    /// Per-agent outcome: destination linear index, `u32::MAX` = stay.
    pub won: ScatterView<'a, u32>,
}

impl BlockKernel for SparseMoveDecodeKernel<'_> {
    fn block(&self, ctx: &mut BlockCtx) {
        let (w, h) = (self.w, self.h);
        let live = self.live;
        let mat_in = self.mat_in;
        let index_in = self.index_in;
        let future_row = self.future_row;
        let future_col = self.future_col;
        let occ = move |rr: i64, cc: i64| {
            if rr < 0 || cc < 0 || rr >= h as i64 || cc >= w as i64 {
                CELL_WALL
            } else {
                mat_in[rr as usize * w + cc as usize]
            }
        };
        let idx = move |rr: i64, cc: i64| {
            if rr < 0 || cc < 0 || rr >= h as i64 || cc >= w as i64 {
                0
            } else {
                index_in[rr as usize * w + cc as usize]
            }
        };
        let fut = move |a: u32| (future_row[a as usize], future_col[a as usize]);
        ctx.threads(|t| {
            let i = t.global_linear();
            if i >= live.len() {
                return;
            }
            let a = live[i];
            let fr = future_row[a as usize];
            if fr == NO_FUTURE {
                self.won.write(a as usize, u32::MAX);
                return;
            }
            let fc = future_col[a as usize];
            let tlin = fr as usize * w + fc as usize;
            let mut rng = t.rng_for(tlin as u64);
            let wins = gather_winner(&occ, &idx, &fut, i64::from(fr), i64::from(fc), &mut rng)
                .is_some_and(|arr| arr.agent == a);
            self.won
                .write(a as usize, if wins { tlin as u32 } else { u32::MAX });
            t.note_global_loads(20);
            t.note_global_stores(1);
            t.alu(24);
        });
    }

    fn regs_per_thread(&self) -> u32 {
        24
    }

    fn name(&self) -> &'static str {
        "movement_decode_sparse"
    }
}

/// Sparse movement, phase 2: winners apply their move **in place** on the
/// current `mat`/`index` side. Each winner's source cell was occupied and
/// its destination empty at step start, so across winners the {source} and
/// {destination} sets are disjoint and per-winner unique — every cell slot
/// is written at most once per launch (checked buffers enforce this), and
/// no ping-pong swap happens in sparse mode.
pub struct SparseMoveApplyKernel<'a> {
    /// Environment width.
    pub w: usize,
    /// Live agent slots, ascending.
    pub live: &'a [u32],
    /// Per-agent outcome from the decode phase.
    pub won: &'a [u32],
    /// Agent labels (read).
    pub id: &'a [u8],
    /// Agent rows (winner-owned writes).
    pub row: ScatterView<'a, u16>,
    /// Agent columns (winner-owned writes).
    pub col: ScatterView<'a, u16>,
    /// Agent→cell position index (read own slot, winner-owned writes).
    pub pos: ScatterView<'a, u32>,
    /// Cell labels, current side, updated in place.
    pub mat: ScatterView<'a, u8>,
    /// Agent indices, current side, updated in place.
    pub index: ScatterView<'a, u32>,
    /// Tour lengths (exclusive RMW for winners, ACO only).
    pub tour: ScatterView<'a, f32>,
    /// **Pre-step** pheromone planes (ACO): the deposit is fused from the
    /// un-evaporated value, exactly as the dense kernel computes it.
    pub pher_in: Option<&'a [&'a [f32]]>,
    /// Next pheromone planes (ACO), already evaporated by
    /// [`EvaporationKernel`]; winners overwrite their destination entry.
    pub pher_out: Option<&'a [ScatterView<'a, f32>]>,
    /// ACO parameters (None for LEM runs).
    pub aco: Option<AcoParams>,
}

impl BlockKernel for SparseMoveApplyKernel<'_> {
    fn block(&self, ctx: &mut BlockCtx) {
        let w = self.w;
        let live = self.live;
        let won = self.won;
        ctx.threads(|t| {
            let i = t.global_linear();
            if i >= live.len() {
                return;
            }
            let a = live[i] as usize;
            let dst = won[a];
            if dst == u32::MAX {
                return;
            }
            let src = self.pos.read(a);
            let (dr, dc) = ((dst as usize / w) as u16, (dst as usize % w) as u16);
            let (sr, sc) = ((src as usize / w) as u16, (src as usize % w) as u16);
            self.mat.write(src as usize, CELL_EMPTY);
            self.index.write(src as usize, 0);
            self.mat.write(dst as usize, self.id[a]);
            self.index.write(dst as usize, a as u32);
            self.row.write(a, dr);
            self.col.write(a, dc);
            self.pos.write(a, dst);
            t.note_global_loads(3);
            t.note_global_stores(7);
            if let (Some(p), Some(pin), Some(pout)) = (self.aco, self.pher_in, self.pher_out) {
                let diagonal = sr != dr && sc != dc;
                let step_len = if diagonal {
                    std::f32::consts::SQRT_2
                } else {
                    1.0
                };
                // Exclusive RMW: only this thread touches slot `a`.
                let l_new = self.tour.read(a) + step_len;
                self.tour.write(a, l_new);
                let g = Group::from_label(self.id[a]).expect("winner has a group label");
                let next = PheromoneField::fused_update(
                    pin[g.index()][dst as usize],
                    p.tau0,
                    p.rho,
                    p.q / l_new,
                );
                pout[g.index()].write(dst as usize, next);
                t.note_global_loads(2);
                t.note_global_stores(2);
            }
            t.alu(16);
        });
    }

    fn regs_per_thread(&self) -> u32 {
        26
    }

    fn name(&self) -> &'static str {
        "movement_apply_sparse"
    }
}

/// Dense evaporation sweep for sparse ACO steps: `τ ← fused(τ, τ₀, ρ, 0)`
/// over every cell of every group plane. The field is a per-cell substrate
/// — evaporation is O(cells) in any traversal — so this is the one dense
/// launch a sparse ACO step keeps.
pub struct EvaporationKernel<'a> {
    /// Environment width.
    pub w: usize,
    /// Environment height.
    pub h: usize,
    /// Current pheromone planes, per group.
    pub pher_in: &'a [&'a [f32]],
    /// Next pheromone planes, per group.
    pub pher_out: &'a [ScatterView<'a, f32>],
    /// ACO parameters (τ₀ floor and evaporation rate ρ).
    pub params: AcoParams,
}

impl BlockKernel for EvaporationKernel<'_> {
    fn block(&self, ctx: &mut BlockCtx) {
        let (w, h) = (self.w, self.h);
        let p = self.params;
        ctx.threads(|t| {
            let (r, c) = t.global_rc();
            if (r as usize) >= h || (c as usize) >= w {
                return;
            }
            let lin = r as usize * w + c as usize;
            for (plane_in, plane_out) in self.pher_in.iter().zip(self.pher_out.iter()) {
                let next = PheromoneField::fused_update(plane_in[lin], p.tau0, p.rho, 0.0);
                plane_out.write(lin, next);
            }
            t.note_global_loads(self.pher_in.len() as u64);
            t.note_global_stores(self.pher_in.len() as u64);
            t.alu(4 * self.pher_in.len() as u64);
        });
    }

    fn regs_per_thread(&self) -> u32 {
        12
    }

    fn name(&self) -> &'static str {
        "pheromone_evaporate"
    }
}
