//! World compilation and the content-addressed world cache.
//!
//! The setup path is a three-stage pipeline (DESIGN.md §15):
//!
//! ```text
//! Scenario (declarative)  →  CompiledWorld (immutable artifact)  →  engine state (per replica)
//! ```
//!
//! [`CompiledWorld`] owns everything replicas only *read* — the placed
//! environment template (wall matrix, placement, target bitmask), the
//! per-group distance/flow-field planes, the metrics geometry, and the
//! configuration fingerprint — behind an `Arc`, so one compilation
//! serves every replica of a job and every backend of a comparison run.
//! Engines borrow the distance planes through the same `DistRef` views
//! as before; the kernels are untouched.
//!
//! [`WorldCache`] sits on top: a bounded, content-addressed LRU map
//! keyed by the configuration fingerprint ([`Scenario::config_hash`]
//! for scenario worlds). Repeated jobs — sweeps, the fundamental-diagram
//! inflow ladder, a future server — skip world compilation entirely on
//! a hit. Because replicas of one ladder rung usually differ *only* by
//! seed, the cache keeps a second, seed-independent level keyed by
//! [`Scenario::geometry_hash`] that reuses the expensive distance-field
//! planes (the per-group Dijkstra) even when the full key misses.
//!
//! [`Scenario::config_hash`]: pedsim_scenario::Scenario::config_hash
//! [`Scenario::geometry_hash`]: pedsim_scenario::Scenario::geometry_hash

use std::sync::{Arc, Mutex, MutexGuard};

use pedsim_grid::{DistanceData, Environment};

use crate::metrics::Geometry;
use crate::params::SimConfig;

/// The immutable compiled-world artifact: everything the engines read
/// but never write, produced once per configuration and shared behind
/// an `Arc` by every replica built from it.
///
/// The environment template is *placed* (walls stamped, agents seated by
/// the scenario's placement streams), so construction from a compiled
/// world is a clone plus engine-local buffer allocation — no Dijkstra,
/// no placement, no validation.
#[derive(Debug)]
pub struct CompiledWorld {
    /// The scenario this world was compiled from (`None` for the classic
    /// `EnvConfig` corridor).
    scenario: Option<Arc<pedsim_scenario::Scenario>>,
    /// The placed environment template, cloned per replica. Cloning is
    /// bit-identical to re-running placement: `build_environment` is a
    /// pure function of the scenario.
    env0: Environment,
    /// Per-group distance/flow-field planes in uploadable form.
    dist: Arc<DistanceData>,
    /// Metrics geometry (extents, spawn rows, group index ranges).
    geom: Geometry,
    /// Content address: [`CompiledWorld::fingerprint_of`] of the source
    /// configuration.
    fingerprint: u64,
}

impl CompiledWorld {
    /// Run the data-preparation stage (§IV.a) for `cfg`: materialise the
    /// scenario when one is attached (walls, regions, row-fast-path or
    /// flow-field routing), else the paper's classic corridor from the
    /// `EnvConfig` alone. Both engines consume the result through this
    /// single door so they always agree on the world they simulate.
    pub fn compile(cfg: &SimConfig) -> Arc<Self> {
        let (env0, dist) = match &cfg.scenario {
            Some(s) => (s.build_environment(), s.distance_data()),
            None => (
                Environment::new(&cfg.env),
                Arc::new(DistanceData::rows(cfg.env.height)),
            ),
        };
        let geom = Geometry::with_groups(
            env0.width(),
            env0.height(),
            env0.spawn_rows,
            &env0.group_sizes,
        );
        Arc::new(Self {
            scenario: cfg.scenario.clone(),
            env0,
            dist,
            geom,
            fingerprint: Self::fingerprint_of(cfg),
        })
    }

    /// The content address a configuration compiles to: the scenario's
    /// own [`config_hash`] when one is set, otherwise a fixed FNV-1a
    /// hash over every `EnvConfig` field of the classic corridor. Stable
    /// across commits and platforms for equal configurations — the
    /// provenance key results and registry rows carry.
    ///
    /// [`config_hash`]: pedsim_scenario::Scenario::config_hash
    pub fn fingerprint_of(cfg: &SimConfig) -> u64 {
        match &cfg.scenario {
            Some(s) => s.config_hash(),
            None => {
                let env = &cfg.env;
                pedsim_obs::hash::Fnv64::new()
                    .str("classic_corridor")
                    .usize(env.width)
                    .usize(env.height)
                    .usize(env.agents_per_side)
                    .u64(env.spawn_rows.map_or(u64::MAX, |r| r as u64))
                    .f64(env.spawn_fill)
                    .u64(env.seed)
                    .finish()
            }
        }
    }

    /// Whether this world is the one `cfg` would compile to (the
    /// `from_world` constructors' debug guard).
    pub fn matches(&self, cfg: &SimConfig) -> bool {
        Self::fingerprint_of(cfg) == self.fingerprint
    }

    /// A fresh per-replica environment: a clone of the placed template.
    pub fn environment(&self) -> Environment {
        self.env0.clone()
    }

    /// The shared distance/flow-field planes.
    pub fn distance(&self) -> Arc<DistanceData> {
        self.dist.clone()
    }

    /// The metrics geometry.
    pub fn geometry(&self) -> Geometry {
        self.geom
    }

    /// The content address ([`CompiledWorld::fingerprint_of`]).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The scenario this world was compiled from, when one was attached.
    pub fn scenario(&self) -> Option<&Arc<pedsim_scenario::Scenario>> {
        self.scenario.as_ref()
    }
}

/// Cumulative [`WorldCache`] traffic counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Full-key hits: the compiled world was served as-is.
    pub hits: u64,
    /// Full-key misses: a world had to be compiled.
    pub misses: u64,
    /// Distance-field reuses on a full-key miss: the compile skipped the
    /// flow-field computation (same routing geometry, different seed).
    pub field_hits: u64,
    /// Full-key misses whose routing geometry was also unseen.
    pub field_misses: u64,
    /// Worlds evicted by the LRU bound.
    pub evictions: u64,
}

/// Default [`WorldCache`] capacity: comfortably above the distinct
/// configurations of one smoke ladder, small enough that paper-scale
/// worlds (hundreds of MB of placed matrices) cannot pile up.
pub const DEFAULT_WORLD_CACHE_CAPACITY: usize = 32;

/// Keys under which [`WorldCache::export`] publishes its counters as
/// recorder gauges, in [`CacheStats`] field order.
pub const WORLD_CACHE_GAUGES: [&str; 5] = [
    "world_cache.hits",
    "world_cache.misses",
    "world_cache.field_hits",
    "world_cache.field_misses",
    "world_cache.evictions",
];

/// A bounded, content-addressed cache of compiled worlds.
///
/// Two levels, both LRU over a small `Vec` (deterministic iteration, no
/// hash containers in engine code):
///
/// 1. **worlds** — full fingerprint → [`CompiledWorld`]. A hit skips
///    compilation entirely (placement *and* flow fields).
/// 2. **fields** — [`Scenario::geometry_hash`] → distance planes. On a
///    full-key miss for a scenario world, a field hit pre-seeds the
///    scenario's lazy distance cache so the compile skips the per-group
///    Dijkstra — the expensive part — and only re-runs placement. Sound
///    because the geometry hash covers every input of the field
///    computation (extents, walls, targets, headings, group count),
///    including the row-fast-path predicate.
///
/// Thread-safe; compilation happens outside the lock (two threads may
/// race to compile the same world — both results are bit-identical and
/// the last insert wins).
///
/// [`Scenario::geometry_hash`]: pedsim_scenario::Scenario::geometry_hash
#[derive(Debug)]
pub struct WorldCache {
    capacity: usize,
    inner: Mutex<CacheInner>,
}

#[derive(Debug, Default)]
struct CacheInner {
    /// LRU order: least-recently-used first, most-recent at the back.
    worlds: Vec<(u64, Arc<CompiledWorld>)>,
    /// Same LRU discipline, keyed by routing geometry.
    fields: Vec<(u64, Arc<DistanceData>)>,
    stats: CacheStats,
}

impl Default for WorldCache {
    fn default() -> Self {
        Self::new(DEFAULT_WORLD_CACHE_CAPACITY)
    }
}

impl WorldCache {
    /// A cache holding at most `capacity` compiled worlds (and as many
    /// distance-field planes), `capacity ≥ 1`.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            inner: Mutex::new(CacheInner::default()),
        }
    }

    fn lock(&self) -> MutexGuard<'_, CacheInner> {
        // A panic while holding the lock cannot leave the Vec maps in a
        // torn state (all mutations are single push/remove calls), so a
        // poisoned cache is still a valid cache.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The world `cfg` compiles to: served from cache on a fingerprint
    /// hit, compiled (and inserted) on a miss. On a miss for a scenario
    /// world, a previously compiled distance field for the same routing
    /// geometry is reused so only placement re-runs.
    pub fn get_or_compile(&self, cfg: &SimConfig) -> Arc<CompiledWorld> {
        let key = CompiledWorld::fingerprint_of(cfg);
        {
            let mut inner = self.lock();
            if let Some(pos) = inner.worlds.iter().position(|(k, _)| *k == key) {
                let entry = inner.worlds.remove(pos);
                let world = entry.1.clone();
                inner.worlds.push(entry);
                inner.stats.hits += 1;
                return world;
            }
            inner.stats.misses += 1;
            if let Some(s) = &cfg.scenario {
                let gkey = s.geometry_hash();
                if let Some(pos) = inner.fields.iter().position(|(k, _)| *k == gkey) {
                    let entry = inner.fields.remove(pos);
                    s.seed_distance_cache(entry.1.clone());
                    inner.fields.push(entry);
                    inner.stats.field_hits += 1;
                } else {
                    inner.stats.field_misses += 1;
                }
            }
        }
        // Compile outside the lock: the Dijkstra can take milliseconds at
        // paper scale and must not serialise unrelated lookups.
        let world = CompiledWorld::compile(cfg);
        let mut inner = self.lock();
        if let Some(s) = &cfg.scenario {
            let gkey = s.geometry_hash();
            if !inner.fields.iter().any(|(k, _)| *k == gkey) {
                if inner.fields.len() >= self.capacity {
                    inner.fields.remove(0);
                }
                inner.fields.push((gkey, world.distance()));
            }
        }
        if !inner.worlds.iter().any(|(k, _)| *k == key) {
            if inner.worlds.len() >= self.capacity {
                inner.worlds.remove(0);
                inner.stats.evictions += 1;
            }
            inner.worlds.push((key, world.clone()));
        }
        world
    }

    /// Cumulative traffic counters.
    pub fn stats(&self) -> CacheStats {
        self.lock().stats
    }

    /// Compiled worlds currently held.
    pub fn len(&self) -> usize {
        self.lock().worlds.len()
    }

    /// Whether no world is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The LRU bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Publish the traffic counters as recorder gauges (the
    /// [`WORLD_CACHE_GAUGES`] keys) — the `pedsim-obs` telemetry hook.
    pub fn export(&self, rec: &mut pedsim_obs::Recorder) {
        let s = self.stats();
        let values = [s.hits, s.misses, s.field_hits, s.field_misses, s.evictions];
        for (key, value) in WORLD_CACHE_GAUGES.into_iter().zip(values) {
            rec.set_gauge(key, value as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ModelKind;
    use pedsim_grid::EnvConfig;
    use pedsim_scenario::registry;

    fn classic(seed: u64) -> SimConfig {
        SimConfig::new(
            EnvConfig::small(16, 16, 8).with_seed(seed),
            ModelKind::lem(),
        )
    }

    fn crossing(seed: u64) -> SimConfig {
        SimConfig::from_scenario(
            &registry::crossing(24, 20).with_seed(seed),
            ModelKind::aco(),
        )
    }

    #[test]
    fn compile_is_deterministic_and_fingerprinted() {
        let cfg = crossing(7);
        let a = CompiledWorld::compile(&cfg);
        let b = CompiledWorld::compile(&cfg);
        assert_eq!(a.environment(), b.environment());
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert!(a.matches(&cfg));
        assert!(!a.matches(&crossing(8)));
        // Scenario worlds fingerprint with the scenario's own hash; the
        // classic corridor gets the EnvConfig field hash.
        assert_eq!(
            a.fingerprint(),
            cfg.scenario.as_ref().expect("scenario").config_hash()
        );
        assert_ne!(
            CompiledWorld::fingerprint_of(&classic(1)),
            CompiledWorld::fingerprint_of(&classic(2))
        );
    }

    #[test]
    fn cache_hits_on_equal_configs_and_shares_one_arc() {
        let cache = WorldCache::default();
        let a = cache.get_or_compile(&crossing(3));
        let b = cache.get_or_compile(&crossing(3));
        assert!(Arc::ptr_eq(&a, &b), "hit must serve the same artifact");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn seed_change_misses_the_full_key_but_reuses_the_field() {
        let cache = WorldCache::default();
        let a = cache.get_or_compile(&crossing(3));
        let b = cache.get_or_compile(&crossing(4));
        assert!(!Arc::ptr_eq(&a, &b), "different seeds are different worlds");
        // ... but the (seed-independent) distance planes are shared.
        assert!(Arc::ptr_eq(&a.distance(), &b.distance()));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (0, 2));
        assert_eq!((s.field_hits, s.field_misses), (1, 1));
        // And the reused field is bit-identical to a cold compute.
        let cold = CompiledWorld::compile(&crossing(4));
        assert_eq!(b.distance().data, cold.distance().data);
        assert_eq!(b.distance().kind, cold.distance().kind);
    }

    #[test]
    fn lru_bound_evicts_the_least_recently_used() {
        let cache = WorldCache::new(2);
        cache.get_or_compile(&classic(1));
        cache.get_or_compile(&classic(2));
        cache.get_or_compile(&classic(1)); // refresh 1: LRU order is now [2, 1]
        cache.get_or_compile(&classic(3)); // evicts 2
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        cache.get_or_compile(&classic(1)); // still cached
        assert_eq!(cache.stats().hits, 2);
        cache.get_or_compile(&classic(2)); // was evicted: a miss
        assert_eq!(cache.stats().misses, 4);
    }

    #[test]
    fn export_publishes_every_counter_as_a_gauge() {
        let cache = WorldCache::default();
        cache.get_or_compile(&classic(1));
        cache.get_or_compile(&classic(1));
        let mut rec = pedsim_obs::Recorder::new();
        cache.export(&mut rec);
        assert_eq!(rec.gauge("world_cache.hits"), Some(1.0));
        assert_eq!(rec.gauge("world_cache.misses"), Some(1.0));
        for key in WORLD_CACHE_GAUGES {
            assert!(rec.gauge(key).is_some(), "missing gauge {key}");
        }
    }

    #[test]
    fn cached_worlds_run_bit_identically_to_cold_compiles() {
        use crate::engine::cpu::CpuEngine;
        use crate::engine::Engine;
        let cache = WorldCache::default();
        cache.get_or_compile(&crossing(5)); // warm the field level
        let warm = cache.get_or_compile(&crossing(6)); // field hit
        let mut from_cache = CpuEngine::from_world(&warm, crossing(6));
        let mut cold = CpuEngine::new(crossing(6));
        from_cache.run(15);
        cold.run(15);
        assert_eq!(from_cache.mat_snapshot(), cold.mat_snapshot());
        assert_eq!(from_cache.positions(), cold.positions());
    }
}
