//! Separated scanning and moving ranges (§VII future work): "Increasing
//! the scanning range as well as the movement range and using different
//! values for scanning and moving ranges … would add realism".
//!
//! Movement stays single-cell (the paper's moving range), but the LEM
//! scoring can look `scan` cells down each of the eight rays and penalise
//! congested directions: the effective distance of neighbour `k` becomes
//! `D_k · (1 + congestion_k)`, where `congestion_k` is the fraction of
//! occupied cells along the ray beyond the neighbour itself. With
//! `scan = 1` the model reduces exactly to the paper's baseline.

use pedsim_grid::cell::{CELL_EMPTY, NEIGHBOR_OFFSETS};

/// Scanning/moving range pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanRanges {
    /// Cells looked ahead per ray (≥ 1).
    pub scan: u8,
    /// Cells moved per step (fixed at 1 in this reproduction, as in the
    /// paper).
    pub move_range: u8,
}

impl Default for ScanRanges {
    fn default() -> Self {
        Self {
            scan: 1,
            move_range: 1,
        }
    }
}

/// Congestion along ray `k` from `(r, c)`: the fraction of occupied cells
/// at distances `2..=scan` in that direction (0.0 when `scan <= 1`).
///
/// `occ` must return [`pedsim_grid::CELL_WALL`] outside the environment;
/// walls count as congestion (a short ray toward the border is
/// unattractive).
#[inline]
pub fn ray_congestion(occ: &impl Fn(i64, i64) -> u8, r: i64, c: i64, k: usize, scan: u8) -> f32 {
    if scan <= 1 {
        return 0.0;
    }
    let (dr, dc) = NEIGHBOR_OFFSETS[k];
    let mut blocked = 0u32;
    for step in 2..=i64::from(scan) {
        if occ(r + dr * step, c + dc * step) != CELL_EMPTY {
            blocked += 1;
        }
    }
    blocked as f32 / f32::from(scan - 1)
}

/// Apply the congestion penalty to a base distance.
#[inline]
pub fn penalised_distance(base: f32, congestion: f32) -> f32 {
    base * (1.0 + congestion)
}

/// Convenience: the penalised distances of all eight rays (used by the
/// look-ahead LEM scan row).
pub fn scan_range_row(
    occ: &impl Fn(i64, i64) -> u8,
    base: &[f32; 8],
    r: i64,
    c: i64,
    scan: u8,
) -> [f32; 8] {
    let mut out = *base;
    if scan > 1 {
        for (k, v) in out.iter_mut().enumerate() {
            *v = penalised_distance(*v, ray_congestion(occ, r, c, k, scan));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pedsim_grid::cell::{CELL_TOP, CELL_WALL};

    fn world(blockers: &[(i64, i64)]) -> impl Fn(i64, i64) -> u8 + '_ {
        move |r, c| {
            if !(0..50).contains(&r) || !(0..50).contains(&c) {
                CELL_WALL
            } else if blockers.contains(&(r, c)) {
                CELL_TOP
            } else {
                CELL_EMPTY
            }
        }
    }

    #[test]
    fn scan_one_is_identity() {
        let occ = world(&[]);
        let base = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        assert_eq!(scan_range_row(&occ, &base, 25, 25, 1), base);
    }

    #[test]
    fn open_rays_unpenalised() {
        let occ = world(&[]);
        assert_eq!(ray_congestion(&occ, 25, 25, 0, 5), 0.0);
    }

    #[test]
    fn crowd_ahead_penalises_forward_ray() {
        // Crowd at rows 27 and 28 straight down (ray k=0 from (25,25)).
        let blockers = [(27, 25), (28, 25)];
        let occ = world(&blockers);
        let cong = ray_congestion(&occ, 25, 25, 0, 4);
        // Distances 2..=4: cells (27,25) blocked, (28,25) blocked, (29,25)
        // free → 2/3.
        assert!((cong - 2.0 / 3.0).abs() < 1e-6);
        // A clear lateral ray is unaffected.
        assert_eq!(ray_congestion(&occ, 25, 25, 4, 4), 0.0);
    }

    #[test]
    fn walls_count_as_congestion() {
        let occ = world(&[]);
        // From (1, 25) looking up (k=5): rows -1.. are walls.
        let cong = ray_congestion(&occ, 1, 25, 5, 3);
        assert!((cong - 1.0).abs() < 1e-6);
    }

    #[test]
    fn penalty_scales_distance() {
        assert_eq!(penalised_distance(10.0, 0.5), 15.0);
        assert_eq!(penalised_distance(10.0, 0.0), 10.0);
    }
}
