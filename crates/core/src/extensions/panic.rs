//! Panic alarm (§VII future work): "introduce a panic alarm to emulate
//! some sort of crisis situation".
//!
//! At a trigger step the population's decision parameters change: LEM
//! agents draw with an inflated σ (more erratic rank choices), ACO agents
//! lose trust in trails (α scaled down) and overweight goal distance
//! (β scaled up). Both engines already re-read their model parameters
//! every step, so the alarm is a pure parameter overlay — determinism and
//! CPU/GPU agreement are preserved through the switch.

use crate::engine::cpu::CpuEngine;
use crate::engine::gpu::GpuEngine;
use crate::engine::Engine;
use crate::params::ModelKind;

/// How the alarm distorts behaviour.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PanicParams {
    /// Step at which the alarm fires.
    pub trigger_step: u64,
    /// LEM: σ is multiplied by this (≥ 1 = more erratic).
    pub sigma_factor: f64,
    /// ACO: α (trail trust) is multiplied by this (≤ 1 = panic ignores
    /// predecessors).
    pub alpha_factor: f32,
    /// ACO: β (goal urgency) is multiplied by this (≥ 1 = flight reflex).
    pub beta_factor: f32,
}

impl Default for PanicParams {
    fn default() -> Self {
        Self {
            trigger_step: 0,
            sigma_factor: 3.0,
            alpha_factor: 0.0,
            beta_factor: 2.0,
        }
    }
}

/// Engines that can swap model parameters mid-run (same model kind only).
pub trait ModelSwitch {
    /// Replace the model parameters. Panics if the variant changes (a LEM
    /// run cannot become an ACO run — the pheromone substrate would be
    /// missing).
    fn switch_model(&mut self, model: ModelKind);
}

impl ModelSwitch for CpuEngine {
    fn switch_model(&mut self, model: ModelKind) {
        self.set_model(model).unwrap_or_else(|e| panic!("{e}"));
    }
}

impl ModelSwitch for GpuEngine {
    fn switch_model(&mut self, model: ModelKind) {
        self.set_model(model).unwrap_or_else(|e| panic!("{e}"));
    }
}

/// The alarm driver.
#[derive(Debug, Clone, Copy)]
pub struct PanicAlarm {
    /// Alarm parameters.
    pub params: PanicParams,
}

impl PanicAlarm {
    /// An alarm with the given parameters.
    pub fn new(params: PanicParams) -> Self {
        Self { params }
    }

    /// The post-alarm version of `model`.
    pub fn panicked_model(&self, model: ModelKind) -> ModelKind {
        match model {
            ModelKind::Lem(mut p) => {
                p.sigma *= self.params.sigma_factor;
                ModelKind::Lem(p)
            }
            ModelKind::Aco(mut p) => {
                p.alpha *= self.params.alpha_factor;
                p.beta *= self.params.beta_factor;
                ModelKind::Aco(p)
            }
        }
    }

    /// Run `engine` for `total_steps`, firing the alarm at
    /// `params.trigger_step` (clamped to the run length).
    pub fn run<E: Engine + ModelSwitch>(&self, engine: &mut E, total_steps: u64) {
        let trigger = self.params.trigger_step.min(total_steps);
        engine.run(trigger);
        engine.switch_model(self.panicked_model(engine.model()));
        engine.run(total_steps - trigger);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{AcoParams, LemParams, SimConfig};
    use pedsim_grid::EnvConfig;
    use simt::Device;

    fn cfg(model: ModelKind, seed: u64) -> SimConfig {
        SimConfig::new(EnvConfig::small(32, 32, 30).with_seed(seed), model).with_checked(true)
    }

    #[test]
    fn panicked_model_scales_parameters() {
        let alarm = PanicAlarm::new(PanicParams {
            trigger_step: 10,
            sigma_factor: 3.0,
            alpha_factor: 0.0,
            beta_factor: 2.0,
        });
        match alarm.panicked_model(ModelKind::Lem(LemParams::default())) {
            ModelKind::Lem(p) => assert!((p.sigma - 3.0).abs() < 1e-12),
            _ => panic!("kind changed"),
        }
        match alarm.panicked_model(ModelKind::Aco(AcoParams::default())) {
            ModelKind::Aco(p) => {
                assert_eq!(p.alpha, 0.0);
                assert!((p.beta - 4.0).abs() < 1e-6);
            }
            _ => panic!("kind changed"),
        }
    }

    #[test]
    fn alarm_changes_trajectory() {
        let alarm = PanicAlarm::new(PanicParams {
            trigger_step: 5,
            sigma_factor: 8.0,
            alpha_factor: 0.0,
            beta_factor: 1.0,
        });
        let mut panicked = CpuEngine::new(cfg(ModelKind::lem(), 9));
        alarm.run(&mut panicked, 40);
        let mut calm = CpuEngine::new(cfg(ModelKind::lem(), 9));
        calm.run(40);
        assert_ne!(panicked.mat_snapshot(), calm.mat_snapshot());
        panicked
            .environment()
            .check_consistency()
            .expect("panic keeps the world consistent");
    }

    #[test]
    fn engines_agree_through_the_alarm() {
        let alarm = PanicAlarm::new(PanicParams {
            trigger_step: 8,
            sigma_factor: 1.0,
            alpha_factor: 0.2,
            beta_factor: 2.0,
        });
        let c = cfg(ModelKind::aco(), 13);
        let mut cpu = CpuEngine::new(c.clone());
        let mut gpu = GpuEngine::new(c, Device::parallel());
        alarm.run(&mut cpu, 25);
        alarm.run(&mut gpu, 25);
        assert_eq!(cpu.mat_snapshot(), gpu.mat_snapshot());
        assert_eq!(cpu.positions(), gpu.positions());
    }

    #[test]
    #[should_panic(expected = "variant")]
    fn kind_change_rejected() {
        let mut e = CpuEngine::new(cfg(ModelKind::lem(), 1));
        e.switch_model(ModelKind::aco());
    }
}
