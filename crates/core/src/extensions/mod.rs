//! The paper's future-work features (§VII), implemented.
//!
//! * [`panic`] — "introduce a panic alarm to emulate some sort of crisis
//!   situation": a parameter-switching overlay that, at a trigger step,
//!   inflates the LEM draw spread / suppresses pheromone trust.
//! * [`ranges`] — "separating the scanning ranges and moving ranges of the
//!   pedestrians": look-ahead scoring over a radius-R neighbourhood while
//!   movement stays single-cell.

pub mod panic;
pub mod ranges;

pub use panic::{PanicAlarm, PanicParams};
pub use ranges::{scan_range_row, ScanRanges};
