//! Throughput and movement metrics (§VI).
//!
//! The paper's headline result metric is **throughput**: "the number of
//! pedestrians able to cross the environment and reach the other side"
//! within the step budget. Crossing is sticky — once an agent has reached
//! its goal it counts even if it later wanders back out. The goal is the
//! opposite spawn band in the classic corridor, or the group's declared
//! target region in scenario worlds (doorways, crossings, halls).
//! [`Metrics`] also tracks per-step movement (for gridlock detection) and a
//! lane-formation index used by the analysis examples.

use std::collections::VecDeque;
use std::sync::Arc;

use pedsim_grid::cell::Group;
use pedsim_grid::Matrix;

/// Longest gridlock patience window [`Metrics`] retains movement history
/// for. Bounds the per-engine memory at O(1) regardless of run length; a
/// patience beyond this is a configuration error.
pub const MAX_GRIDLOCK_PATIENCE: u64 = 256;

/// Static scenario geometry the metrics need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geometry {
    /// Environment width.
    pub width: usize,
    /// Environment height.
    pub height: usize,
    /// Spawn-band rows at each edge.
    pub spawn_rows: usize,
    /// Agents per group.
    pub agents_per_side: usize,
}

impl Geometry {
    /// Whether a group-`g` agent in `row` is past the crossing line.
    #[inline]
    pub fn has_crossed(&self, g: Group, row: usize) -> bool {
        match g {
            Group::Top => row >= self.height - self.spawn_rows,
            Group::Bottom => row < self.spawn_rows,
        }
    }

    /// Total agents.
    #[inline]
    pub fn total_agents(&self) -> usize {
        self.agents_per_side * 2
    }

    /// Group of agent `idx` under the index-range convention.
    ///
    /// Agent indices are **1-based**: slot 0 is the unused sentinel and is
    /// not a member of either group.
    #[inline]
    pub fn group_of(&self, idx: usize) -> Group {
        debug_assert!(idx >= 1, "agent indices are 1-based; 0 is the sentinel");
        if (1..=self.agents_per_side).contains(&idx) {
            Group::Top
        } else {
            Group::Bottom
        }
    }
}

/// Running simulation metrics.
#[derive(Debug, Clone)]
pub struct Metrics {
    geom: Geometry,
    /// Per-cell target bitmask ([`Group::target_bit`]); `None` uses the
    /// classic opposite-band convention from `geom`.
    targets: Option<Arc<Matrix<u8>>>,
    /// Sticky per-agent crossed flags (index 0 unused).
    crossed: Vec<bool>,
    /// Agents of the top group that have crossed.
    pub crossed_top: usize,
    /// Agents of the bottom group that have crossed.
    pub crossed_bottom: usize,
    /// Agents that changed cell in the most recent step.
    pub moved_last_step: usize,
    /// Total cell changes across all steps.
    pub total_moves: u64,
    /// Steps observed.
    pub steps: u64,
    /// Agents moved in each of the last ≤ [`MAX_GRIDLOCK_PATIENCE`]
    /// observed steps (a bounded ring; the gridlock patience window reads
    /// its tail).
    moved_recent: VecDeque<u32>,
    prev_row: Vec<u16>,
    prev_col: Vec<u16>,
}

impl Metrics {
    /// Fresh metrics for a classic corridor; `row`/`col` are the initial
    /// agent positions (index 0 = sentinel).
    pub fn new(geom: Geometry, row: &[u16], col: &[u16]) -> Self {
        Self::with_targets(geom, None, row, col)
    }

    /// Fresh metrics with an optional per-cell target mask (scenario
    /// worlds count arrivals inside the mask instead of past the band
    /// line).
    pub fn with_targets(
        geom: Geometry,
        targets: Option<Arc<Matrix<u8>>>,
        row: &[u16],
        col: &[u16],
    ) -> Self {
        Self {
            geom,
            targets,
            crossed: vec![false; geom.total_agents() + 1],
            crossed_top: 0,
            crossed_bottom: 0,
            moved_last_step: 0,
            total_moves: 0,
            steps: 0,
            moved_recent: VecDeque::with_capacity(MAX_GRIDLOCK_PATIENCE as usize),
            prev_row: row.to_vec(),
            prev_col: col.to_vec(),
        }
    }

    /// Observe the post-step agent positions.
    pub fn observe(&mut self, row: &[u16], col: &[u16]) {
        let n = self.geom.total_agents();
        let mut moved = 0usize;
        for i in 1..=n {
            if row[i] != self.prev_row[i] || col[i] != self.prev_col[i] {
                moved += 1;
                self.prev_row[i] = row[i];
                self.prev_col[i] = col[i];
            }
            if !self.crossed[i] {
                let g = self.geom.group_of(i);
                let arrived = match &self.targets {
                    Some(mask) => mask.get(row[i] as usize, col[i] as usize) & g.target_bit() != 0,
                    None => self.geom.has_crossed(g, row[i] as usize),
                };
                if arrived {
                    self.crossed[i] = true;
                    match g {
                        Group::Top => self.crossed_top += 1,
                        Group::Bottom => self.crossed_bottom += 1,
                    }
                }
            }
        }
        self.moved_last_step = moved;
        if self.moved_recent.len() == MAX_GRIDLOCK_PATIENCE as usize {
            self.moved_recent.pop_front();
        }
        self.moved_recent.push_back(moved as u32);
        self.total_moves += moved as u64;
        self.steps += 1;
    }

    /// Total crossed agents (both groups) — the paper's throughput number.
    #[inline]
    pub fn throughput(&self) -> usize {
        self.crossed_top + self.crossed_bottom
    }

    /// Whether agent `i` has crossed.
    #[inline]
    pub fn agent_crossed(&self, i: usize) -> bool {
        self.crossed[i]
    }

    /// Whether every agent has reached its target — a run that can stop
    /// early with nothing left to measure.
    #[inline]
    pub fn all_arrived(&self) -> bool {
        self.throughput() == self.geom.total_agents()
    }

    /// True when fewer than `threshold` agents moved in each of the last
    /// `patience` observed steps — the paper's "total gridlock" regime past
    /// 51,200 agents. A finished crowd is *not* gridlocked: once every
    /// agent has arrived, standing still is success, so this returns
    /// `false` regardless of movement. `patience` is clamped to ≥ 1 and
    /// must not exceed [`MAX_GRIDLOCK_PATIENCE`] (asserted), and the
    /// window must be fully observed (fewer than `patience` steps so far
    /// ⇒ not gridlocked) so a single congested step cannot misfire.
    #[inline]
    pub fn is_gridlocked(&self, threshold: usize, patience: u64) -> bool {
        assert!(
            patience <= MAX_GRIDLOCK_PATIENCE,
            "gridlock patience {patience} exceeds the retained history \
             ({MAX_GRIDLOCK_PATIENCE} steps)"
        );
        if self.all_arrived() {
            return false;
        }
        let window = patience.max(1) as usize;
        self.moved_recent.len() >= window
            && self
                .moved_recent
                .iter()
                .rev()
                .take(window)
                .all(|&m| (m as usize) < threshold)
    }

    /// The scenario geometry.
    #[inline]
    pub fn geometry(&self) -> Geometry {
        self.geom
    }
}

/// Lane-formation index of a configuration: the mean over rows of
/// |top − bottom| / (top + bottom) within same-column runs… simplified to a
/// column-segregation measure: for each column, the fraction of its agents
/// belonging to the column's majority group, averaged over non-empty
/// columns, rescaled to [0, 1] (0 = perfectly mixed, 1 = fully segregated
/// columns). Bi-directional lane formation drives this up.
pub fn lane_index(mat: &Matrix<u8>) -> f64 {
    use pedsim_grid::cell::{CELL_BOTTOM, CELL_TOP};
    let mut acc = 0.0f64;
    let mut cols = 0usize;
    for c in 0..mat.width() {
        let mut top = 0usize;
        let mut bottom = 0usize;
        for r in 0..mat.height() {
            match mat.get(r, c) {
                CELL_TOP => top += 1,
                CELL_BOTTOM => bottom += 1,
                _ => {}
            }
        }
        let n = top + bottom;
        if n > 0 {
            let maj = top.max(bottom) as f64 / n as f64; // in [0.5, 1]
            acc += (maj - 0.5) * 2.0;
            cols += 1;
        }
    }
    if cols == 0 {
        0.0
    } else {
        acc / cols as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pedsim_grid::cell::{CELL_BOTTOM, CELL_EMPTY, CELL_TOP};

    fn geom() -> Geometry {
        Geometry {
            width: 16,
            height: 16,
            spawn_rows: 3,
            agents_per_side: 2,
        }
    }

    #[test]
    fn crossing_is_sticky() {
        let g = geom();
        // Agents 1,2 top; 3,4 bottom. Initial rows 0 and 15.
        let mut m = Metrics::new(g, &[0, 0, 1, 15, 15], &[0, 0, 1, 0, 1]);
        // Agent 1 jumps to row 13 (crossed), agent 3 to row 2 (crossed).
        m.observe(&[0, 13, 1, 2, 15], &[0, 0, 1, 0, 1]);
        assert_eq!(m.crossed_top, 1);
        assert_eq!(m.crossed_bottom, 1);
        assert_eq!(m.throughput(), 2);
        assert_eq!(m.moved_last_step, 2);
        // Agent 1 wanders back out of the band — still counted.
        m.observe(&[0, 10, 1, 2, 15], &[0, 0, 1, 0, 1]);
        assert_eq!(m.crossed_top, 1);
        assert!(m.agent_crossed(1));
        assert_eq!(m.steps, 2);
        assert_eq!(m.total_moves, 3);
    }

    #[test]
    fn target_mask_counts_region_arrivals() {
        let g = geom();
        // Top group's target is a single interior doorway cell (8, 4);
        // bottom group's target is the top-left corner.
        let mut mask = Matrix::filled(16, 16, 0u8);
        mask.set(8, 4, Group::Top.target_bit());
        mask.set(0, 0, Group::Bottom.target_bit());
        let mut m = Metrics::with_targets(
            g,
            Some(Arc::new(mask)),
            &[0, 0, 1, 15, 15],
            &[0, 0, 1, 0, 1],
        );
        // Agent 1 reaches row 15 — past the classic band line, but NOT its
        // region → no crossing counted.
        m.observe(&[0, 15, 1, 15, 15], &[0, 9, 1, 0, 1]);
        assert_eq!(m.throughput(), 0);
        // Agent 1 steps onto the doorway cell; agent 3 reaches (0,0).
        m.observe(&[0, 8, 1, 0, 15], &[0, 4, 1, 0, 1]);
        assert_eq!(m.crossed_top, 1);
        assert_eq!(m.crossed_bottom, 1);
        // The other group's bit does not count: agent 4 on (8,4).
        m.observe(&[0, 8, 1, 0, 8], &[0, 4, 1, 0, 4]);
        assert_eq!(m.crossed_bottom, 1);
    }

    #[test]
    fn gridlock_detection() {
        let g = geom();
        let mut m = Metrics::new(g, &[0, 5, 5, 10, 10], &[0, 1, 2, 1, 2]);
        assert!(!m.is_gridlocked(1, 1)); // no steps yet
        m.observe(&[0, 5, 5, 10, 10], &[0, 1, 2, 1, 2]); // nobody moved
        assert!(m.is_gridlocked(1, 1));
        assert_eq!(m.moved_last_step, 0);
    }

    #[test]
    fn gridlock_patience_needs_consecutive_low_steps() {
        let g = geom();
        let mut m = Metrics::new(g, &[0, 5, 5, 10, 10], &[0, 1, 2, 1, 2]);
        m.observe(&[0, 5, 5, 10, 10], &[0, 1, 2, 1, 2]); // frozen
        m.observe(&[0, 6, 5, 10, 10], &[0, 1, 2, 1, 2]); // one moved
        m.observe(&[0, 6, 5, 10, 10], &[0, 1, 2, 1, 2]); // frozen
                                                         // Patience 2 needs two consecutive frozen steps; the last two are
                                                         // (moved=1, moved=0), so threshold 1 is not yet gridlock.
        assert!(!m.is_gridlocked(1, 2));
        m.observe(&[0, 6, 5, 10, 10], &[0, 1, 2, 1, 2]); // frozen again
        assert!(m.is_gridlocked(1, 2));
        // A wider window than the history observed never fires.
        assert!(!m.is_gridlocked(1, 64));
    }

    #[test]
    fn gridlock_history_is_bounded() {
        let g = geom();
        let mut m = Metrics::new(g, &[0, 5, 5, 10, 10], &[0, 1, 2, 1, 2]);
        for _ in 0..(MAX_GRIDLOCK_PATIENCE + 50) {
            m.observe(&[0, 5, 5, 10, 10], &[0, 1, 2, 1, 2]);
        }
        assert_eq!(m.moved_recent.len(), MAX_GRIDLOCK_PATIENCE as usize);
        assert!(m.is_gridlocked(1, MAX_GRIDLOCK_PATIENCE));
    }

    #[test]
    #[should_panic(expected = "exceeds the retained history")]
    fn gridlock_patience_beyond_retention_is_rejected() {
        let m = Metrics::new(geom(), &[0, 5, 5, 10, 10], &[0, 1, 2, 1, 2]);
        let _ = m.is_gridlocked(1, MAX_GRIDLOCK_PATIENCE + 1);
    }

    #[test]
    fn arrived_crowd_is_not_gridlocked() {
        let g = geom();
        let mut m = Metrics::new(g, &[0, 0, 1, 15, 15], &[0, 0, 1, 0, 1]);
        // Everyone jumps straight into the opposite band, then freezes.
        m.observe(&[0, 14, 14, 1, 1], &[0, 0, 1, 0, 1]);
        m.observe(&[0, 14, 14, 1, 1], &[0, 0, 1, 0, 1]);
        m.observe(&[0, 14, 14, 1, 1], &[0, 0, 1, 0, 1]);
        assert!(m.all_arrived());
        assert_eq!(m.throughput(), g.total_agents());
        // Zero movement for several steps, but the run *succeeded*.
        assert!(!m.is_gridlocked(1, 2));
    }

    #[test]
    fn group_of_uses_one_based_boundary() {
        let g = geom(); // agents_per_side = 2
        assert_eq!(g.group_of(1), Group::Top);
        assert_eq!(g.group_of(2), Group::Top);
        assert_eq!(g.group_of(3), Group::Bottom);
        assert_eq!(g.group_of(4), Group::Bottom);
    }

    #[test]
    #[should_panic(expected = "1-based")]
    #[cfg(debug_assertions)]
    fn group_of_rejects_sentinel() {
        let _ = geom().group_of(0);
    }

    #[test]
    fn lane_index_extremes() {
        // Fully segregated: column 0 all top, column 1 all bottom.
        let mut seg = Matrix::filled(4, 2, CELL_EMPTY);
        for r in 0..4 {
            seg.set(r, 0, CELL_TOP);
            seg.set(r, 1, CELL_BOTTOM);
        }
        assert!((lane_index(&seg) - 1.0).abs() < 1e-12);

        // Perfectly mixed columns.
        let mut mix = Matrix::filled(4, 2, CELL_EMPTY);
        for r in 0..4 {
            let v = if r % 2 == 0 { CELL_TOP } else { CELL_BOTTOM };
            mix.set(r, 0, v);
            mix.set(r, 1, v);
        }
        assert!(lane_index(&mix).abs() < 1e-12);

        // Empty grid.
        let empty = Matrix::filled(4, 2, CELL_EMPTY);
        assert_eq!(lane_index(&empty), 0.0);
    }
}
