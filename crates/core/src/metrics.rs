//! Throughput and movement metrics (§VI).
//!
//! The paper's headline result metric is **throughput**: "the number of
//! pedestrians able to cross the environment and reach the other side"
//! within the step budget. Crossing is sticky — once an agent has reached
//! its goal it counts even if it later wanders back out. The goal is the
//! opposite spawn band in the classic corridor, or the group's declared
//! target region in scenario worlds (doorways, crossings, halls).
//! [`Metrics`] also tracks per-step movement (for gridlock detection) and a
//! lane-formation index used by the analysis examples.
//!
//! Populations may be asymmetric: [`Geometry`] carries one explicit
//! (1-based, contiguous) agent-index range per directional group rather
//! than assuming `agents_per_side * 2`, so per-group throughput and the
//! `all_arrived` predicate stay correct for any group-size mix.

use std::collections::VecDeque;
use std::sync::Arc;

use pedsim_grid::cell::{Group, CELL_EMPTY, CELL_WALL, MAX_GROUPS};
use pedsim_grid::Matrix;

/// Longest gridlock patience window [`Metrics`] retains movement history
/// for. Bounds the per-engine memory at O(1) regardless of run length; a
/// patience beyond this is a configuration error.
pub const MAX_GRIDLOCK_PATIENCE: u64 = 256;

/// Longest flux window [`Metrics`] retains per-step crossing counts for
/// (the sliding window behind [`Metrics::windowed_flux`] and the
/// steady-state stop condition). Same O(1)-memory rationale as
/// [`MAX_GRIDLOCK_PATIENCE`].
pub const MAX_FLUX_WINDOW: u64 = 256;

/// Window (steps) over which the engines' telemetry evaluates
/// [`Metrics::gridlock_warning`] each step — matched to the runner's
/// flux report window so the live gauge and the batch report read the
/// same trend.
pub const GRIDLOCK_WARNING_WINDOW: u64 = 64;

/// Static scenario geometry the metrics need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geometry {
    /// Environment width.
    pub width: usize,
    /// Environment height.
    pub height: usize,
    /// Spawn-band rows at each edge (classic corridor; reporting value for
    /// scenario worlds).
    pub spawn_rows: usize,
    /// 1-based start index per group plus an end sentinel: group `g` owns
    /// agents `starts[g]..starts[g + 1]`.
    starts: [u32; MAX_GROUPS + 1],
    n_groups: u8,
}

impl Geometry {
    /// Geometry with one explicit population per directional group.
    /// Agent indices are 1-based and contiguous in group order.
    pub fn with_groups(width: usize, height: usize, spawn_rows: usize, sizes: &[usize]) -> Self {
        assert!(
            (1..=MAX_GROUPS).contains(&sizes.len()),
            "group count {} out of range 1..={MAX_GROUPS}",
            sizes.len()
        );
        let mut starts = [0u32; MAX_GROUPS + 1];
        let mut next = 1u32;
        for (g, &size) in sizes.iter().enumerate() {
            starts[g] = next;
            next += u32::try_from(size).expect("group size fits u32");
        }
        for s in starts.iter_mut().skip(sizes.len()) {
            *s = next;
        }
        Self {
            width,
            height,
            spawn_rows,
            starts,
            n_groups: sizes.len() as u8,
        }
    }

    /// The classic symmetric two-group corridor geometry.
    pub fn two_sided(width: usize, height: usize, spawn_rows: usize, per_side: usize) -> Self {
        Self::with_groups(width, height, spawn_rows, &[per_side, per_side])
    }

    /// Number of directional groups.
    #[inline]
    pub fn n_groups(&self) -> usize {
        self.n_groups as usize
    }

    /// Population of group `g`.
    #[inline]
    pub fn group_size(&self, g: Group) -> usize {
        (self.starts[g.index() + 1] - self.starts[g.index()]) as usize
    }

    /// The 1-based agent-index range of group `g`.
    #[inline]
    pub fn group_range(&self, g: Group) -> std::ops::Range<usize> {
        self.starts[g.index()] as usize..self.starts[g.index() + 1] as usize
    }

    /// Whether a group-`g` agent in `row` is past the crossing line — the
    /// classic corridor's opposite-band convention. Two-group corridors
    /// only; worlds with more groups (or orthogonal streams) must count
    /// arrivals through a per-cell target mask.
    #[inline]
    pub fn has_crossed(&self, g: Group, row: usize) -> bool {
        assert!(
            self.n_groups == 2,
            "the row-band crossing fallback is two-group only; \
             multi-group worlds must carry a target mask"
        );
        if g == Group::TOP {
            row >= self.height - self.spawn_rows
        } else {
            row < self.spawn_rows
        }
    }

    /// Total agents.
    #[inline]
    pub fn total_agents(&self) -> usize {
        (self.starts[self.n_groups as usize] - 1) as usize
    }

    /// Group of agent `idx` under the index-range convention.
    ///
    /// Agent indices are **1-based**: slot 0 is the unused sentinel and is
    /// not a member of any group.
    #[inline]
    pub fn group_of(&self, idx: usize) -> Group {
        debug_assert!(idx >= 1, "agent indices are 1-based; 0 is the sentinel");
        debug_assert!(idx <= self.total_agents(), "agent index out of range");
        let idx = idx as u32;
        for g in 0..self.n_groups as usize {
            if idx < self.starts[g + 1] {
                return Group::new(g);
            }
        }
        unreachable!("agent index beyond every group range")
    }
}

/// Running simulation metrics.
#[derive(Debug, Clone)]
pub struct Metrics {
    geom: Geometry,
    /// Per-cell target bitmask ([`Group::target_bit`]); `None` uses the
    /// classic opposite-band convention from `geom`.
    targets: Option<Arc<Matrix<u8>>>,
    /// Sticky per-agent crossed flags (index 0 unused).
    crossed: Vec<bool>,
    /// Crossed-agent count per group.
    crossed_per_group: [u32; MAX_GROUPS],
    /// Agents that changed cell in the most recent step.
    pub moved_last_step: usize,
    /// Total cell changes across all steps.
    pub total_moves: u64,
    /// Steps observed.
    pub steps: u64,
    /// Agents moved in each of the last ≤ [`MAX_GRIDLOCK_PATIENCE`]
    /// observed steps (a bounded ring; the gridlock patience window reads
    /// its tail).
    moved_recent: VecDeque<u32>,
    /// New crossings observed in each of the last ≤ [`MAX_FLUX_WINDOW`]
    /// steps (the sliding window behind [`Metrics::windowed_flux`]).
    crossed_recent: VecDeque<u32>,
    /// Live-agent count after each of the last ≤ [`MAX_FLUX_WINDOW`]
    /// observed steps (the density trend behind
    /// [`Metrics::gridlock_warning`]).
    live_recent: VecDeque<u32>,
    /// Per-slot liveness (index 0 unused). Closed worlds keep every slot
    /// live; open-boundary engines report lifecycle events through
    /// [`Metrics::note_spawn`] / [`Metrics::note_despawn`].
    live: Vec<bool>,
    live_count: usize,
    /// Non-wall cells of the world (the denominator of
    /// [`Metrics::live_density`]).
    passable_cells: usize,
    /// Open-boundary mode: throughput counts crossing *events* (recycled
    /// slots may cross repeatedly) and [`Metrics::all_arrived`] never
    /// fires — open runs are measured by flux, not arrival.
    open: bool,
    prev_row: Vec<u16>,
    prev_col: Vec<u16>,
}

impl Metrics {
    /// Fresh metrics for a classic corridor; `row`/`col` are the initial
    /// agent positions (index 0 = sentinel).
    pub fn new(geom: Geometry, row: &[u16], col: &[u16]) -> Self {
        Self::with_targets(geom, None, row, col)
    }

    /// Fresh metrics with an optional per-cell target mask (scenario
    /// worlds count arrivals inside the mask instead of past the band
    /// line).
    pub fn with_targets(
        geom: Geometry,
        targets: Option<Arc<Matrix<u8>>>,
        row: &[u16],
        col: &[u16],
    ) -> Self {
        let n = geom.total_agents();
        let mut live = vec![true; n + 1];
        live[0] = false;
        Self {
            geom,
            targets,
            crossed: vec![false; n + 1],
            crossed_per_group: [0; MAX_GROUPS],
            moved_last_step: 0,
            total_moves: 0,
            steps: 0,
            moved_recent: VecDeque::with_capacity(MAX_GRIDLOCK_PATIENCE as usize),
            crossed_recent: VecDeque::with_capacity(MAX_FLUX_WINDOW as usize),
            live_recent: VecDeque::with_capacity(MAX_FLUX_WINDOW as usize),
            live,
            live_count: n,
            passable_cells: geom.width * geom.height,
            open: false,
            prev_row: row.to_vec(),
            prev_col: col.to_vec(),
        }
    }

    /// Switch to open-boundary accounting: liveness is seeded from the
    /// environment's per-slot flags, `passable_cells` becomes the density
    /// denominator (grid cells minus walls), throughput counts crossing
    /// *events*, and [`Metrics::all_arrived`] is permanently false (open
    /// runs stop on steps, gridlock, or steady flux instead).
    pub fn enable_open(&mut self, passable_cells: usize, alive: &[bool]) {
        assert_eq!(alive.len(), self.live.len(), "liveness table size");
        self.open = true;
        self.passable_cells = passable_cells.max(1);
        self.live.copy_from_slice(alive);
        self.live[0] = false;
        self.live_count = self.live.iter().filter(|&&a| a).count();
    }

    /// Observe the post-step agent positions. Dead slots (open-boundary
    /// worlds) are skipped for both movement and crossing accounting.
    pub fn observe(&mut self, row: &[u16], col: &[u16]) {
        let n = self.geom.total_agents();
        let mut moved = 0usize;
        let mut crossings = 0u32;
        for i in 1..=n {
            if !self.live[i] {
                continue;
            }
            if row[i] != self.prev_row[i] || col[i] != self.prev_col[i] {
                moved += 1;
                self.prev_row[i] = row[i];
                self.prev_col[i] = col[i];
            }
            if !self.crossed[i] {
                let g = self.geom.group_of(i);
                let arrived = match &self.targets {
                    Some(mask) => mask.get(row[i] as usize, col[i] as usize) & g.target_bit() != 0,
                    None => self.geom.has_crossed(g, row[i] as usize),
                };
                if arrived {
                    self.crossed[i] = true;
                    self.crossed_per_group[g.index()] += 1;
                    crossings += 1;
                }
            }
        }
        self.moved_last_step = moved;
        if self.moved_recent.len() == MAX_GRIDLOCK_PATIENCE as usize {
            self.moved_recent.pop_front();
        }
        // A step with no live agents is idle, not frozen: record a
        // never-below-threshold sentinel so an open world's empty warm-up
        // steps cannot satisfy the gridlock window once the first agent
        // spawns.
        self.moved_recent.push_back(if self.live_count == 0 {
            u32::MAX
        } else {
            moved as u32
        });
        if self.crossed_recent.len() == MAX_FLUX_WINDOW as usize {
            self.crossed_recent.pop_front();
        }
        self.crossed_recent.push_back(crossings);
        if self.live_recent.len() == MAX_FLUX_WINDOW as usize {
            self.live_recent.pop_front();
        }
        self.live_recent.push_back(self.live_count as u32);
        self.total_moves += moved as u64;
        self.steps += 1;
    }

    /// Record that the lifecycle removed the agent in slot `i` at its sink
    /// (open-boundary worlds). The slot's sticky crossed flag is cleared so
    /// its next occupant can cross again — the cumulative per-group counts
    /// (and hence [`Metrics::throughput`]) keep the event.
    pub fn note_despawn(&mut self, i: usize) {
        debug_assert!(self.live[i], "despawn of a dead slot {i}");
        self.live[i] = false;
        self.live_count -= 1;
        self.crossed[i] = false;
    }

    /// Record that the lifecycle spawned a new agent into slot `i` at
    /// `(r, c)` (open-boundary worlds). The previous-position shadow is
    /// reset so the recycled slot's first step is not miscounted as a
    /// teleporting move.
    pub fn note_spawn(&mut self, i: usize, r: u16, c: u16) {
        debug_assert!(!self.live[i], "spawn into a live slot {i}");
        self.live[i] = true;
        self.live_count += 1;
        self.crossed[i] = false;
        self.prev_row[i] = r;
        self.prev_col[i] = c;
    }

    /// Live agents currently on the grid (equals the population for closed
    /// worlds).
    #[inline]
    pub fn live_count(&self) -> usize {
        self.live_count
    }

    /// Live agents per passable cell — the density axis of the
    /// fundamental diagram.
    #[inline]
    pub fn live_density(&self) -> f64 {
        self.live_count as f64 / self.passable_cells as f64
    }

    /// Mean crossings per step over the last `window` observed steps —
    /// the flux axis of the fundamental diagram. `None` until `window`
    /// steps have been observed. `window` is clamped to ≥ 1 and must not
    /// exceed [`MAX_FLUX_WINDOW`] (asserted).
    pub fn windowed_flux(&self, window: u64) -> Option<f64> {
        assert!(
            window <= MAX_FLUX_WINDOW,
            "flux window {window} exceeds the retained history ({MAX_FLUX_WINDOW} steps)"
        );
        let window = window.max(1) as usize;
        if self.crossed_recent.len() < window {
            return None;
        }
        let sum: u64 = self
            .crossed_recent
            .iter()
            .rev()
            .take(window)
            .map(|&c| u64::from(c))
            .sum();
        Some(sum as f64 / window as f64)
    }

    /// True when the flux has settled: the window is fully observed,
    /// **both** halves saw at least one crossing (a warming-up world whose
    /// first arrivals land in the recent half is ramping, not steady), and
    /// the mean flux of the two halves differs by at most `epsilon`.
    /// `window` must be 2..=[`MAX_FLUX_WINDOW`] (asserted; the halves each
    /// need at least one step).
    pub fn is_steady(&self, epsilon: f64, window: u64) -> bool {
        assert!(
            (2..=MAX_FLUX_WINDOW).contains(&window),
            "steady-state window {window} outside 2..={MAX_FLUX_WINDOW}"
        );
        let window = window as usize;
        if self.crossed_recent.len() < window {
            return false;
        }
        // Newest-first over the ring: the recent half vs the older half
        // before it (no allocation — this runs every step of every open
        // replica through the stop-condition check).
        let half = window / 2;
        let recent: u64 = self
            .crossed_recent
            .iter()
            .rev()
            .take(half)
            .map(|&c| u64::from(c))
            .sum();
        let older: u64 = self
            .crossed_recent
            .iter()
            .rev()
            .skip(half)
            .take(window - half)
            .map(|&c| u64::from(c))
            .sum();
        if recent == 0 || older == 0 {
            return false;
        }
        let recent_mean = recent as f64 / half as f64;
        let older_mean = older as f64 / (window - half) as f64;
        (recent_mean - older_mean).abs() <= epsilon
    }

    /// Least-squares slope per step of the last `window` entries of a
    /// ring, `None` until the window is fully observed. `window` must be
    /// 2..=[`MAX_FLUX_WINDOW`] (asserted; one point has no slope).
    fn ring_slope(ring: &VecDeque<u32>, window: u64) -> Option<f64> {
        assert!(
            (2..=MAX_FLUX_WINDOW).contains(&window),
            "trend window {window} outside 2..={MAX_FLUX_WINDOW}"
        );
        let window = window as usize;
        if ring.len() < window {
            return None;
        }
        // x = 0..window in chronological order; slope = Σ(x-x̄)(y-ȳ)/Σ(x-x̄)².
        let x_mean = (window as f64 - 1.0) / 2.0;
        let y_mean = ring
            .iter()
            .rev()
            .take(window)
            .map(|&y| f64::from(y))
            .sum::<f64>()
            / window as f64;
        let mut num = 0.0f64;
        let mut den = 0.0f64;
        for (x, &y) in ring.iter().skip(ring.len() - window).enumerate() {
            let dx = x as f64 - x_mean;
            num += dx * (f64::from(y) - y_mean);
            den += dx * dx;
        }
        Some(num / den)
    }

    /// Least-squares slope of per-step crossings over the last `window`
    /// observed steps (crossings per step²): negative while throughput
    /// decays, positive while flow builds. `None` until `window` steps
    /// have been observed; `window` must be 2..=[`MAX_FLUX_WINDOW`]
    /// (asserted).
    pub fn flux_slope(&self, window: u64) -> Option<f64> {
        Self::ring_slope(&self.crossed_recent, window)
    }

    /// Least-squares slope of the live-agent count over the last
    /// `window` observed steps (agents per step): positive while an open
    /// world accumulates more pedestrians than it drains. `None` until
    /// `window` steps have been observed; `window` must be
    /// 2..=[`MAX_FLUX_WINDOW`] (asserted).
    pub fn density_slope(&self, window: u64) -> Option<f64> {
        Self::ring_slope(&self.live_recent, window)
    }

    /// Gridlock early-warning gauge in `[0, 1]`: how strongly the recent
    /// window looks like congestion onset — flux *falling* while live
    /// density *rises*. The two normalized trends (projected loss or
    /// growth over a window, relative to the window mean, clamped to
    /// `[0, 1]`) are combined by geometric mean, so **both** signals must
    /// be present: free flow ramp-up (flux and density rising) and
    /// drain-out (both falling) stay near 0, unlike either slope alone.
    /// Full gridlock also reads 0 — flux is flat at zero by then; this
    /// gauge is the *early* warning, [`Metrics::is_gridlocked`] the
    /// postmortem. `None` until `window` steps have been observed;
    /// `window` must be 2..=[`MAX_FLUX_WINDOW`] (asserted).
    pub fn gridlock_warning(&self, window: u64) -> Option<f64> {
        const EPS: f64 = 1e-9;
        let flux_slope = self.flux_slope(window)?;
        let density_slope = self.density_slope(window)?;
        let w = window.max(1) as f64;
        let mean_flux = self.windowed_flux(window).unwrap_or(0.0);
        let mean_live = self
            .live_recent
            .iter()
            .rev()
            .take(window as usize)
            .map(|&l| f64::from(l))
            .sum::<f64>()
            / w;
        // Projected relative flux loss over one window...
        let loss = ((-flux_slope).max(0.0) * w / (mean_flux + EPS)).min(1.0);
        // ...and projected relative density growth over one window.
        let growth = (density_slope.max(0.0) * w / (mean_live + EPS)).min(1.0);
        Some((loss * growth).sqrt())
    }

    /// Agents of group `g` that have reached their target.
    #[inline]
    pub fn crossed(&self, g: Group) -> usize {
        self.crossed_per_group[g.index()] as usize
    }

    /// Crossed agents of the classic top group (group 0).
    #[inline]
    pub fn crossed_top(&self) -> usize {
        self.crossed(Group::TOP)
    }

    /// Crossed agents of the classic bottom group (group 1).
    #[inline]
    pub fn crossed_bottom(&self) -> usize {
        self.crossed(Group::BOTTOM)
    }

    /// Total crossed agents over all groups — the paper's throughput
    /// number.
    #[inline]
    pub fn throughput(&self) -> usize {
        self.crossed_per_group[..self.geom.n_groups()]
            .iter()
            .map(|&c| c as usize)
            .sum()
    }

    /// Whether agent `i` has crossed.
    #[inline]
    pub fn agent_crossed(&self, i: usize) -> bool {
        self.crossed[i]
    }

    /// Whether every agent has reached its target — a run that can stop
    /// early with nothing left to measure. Always false for open-boundary
    /// worlds: the inflow never "finishes", and the cumulative event count
    /// crossing the slot capacity means nothing there.
    #[inline]
    pub fn all_arrived(&self) -> bool {
        !self.open && self.throughput() == self.geom.total_agents()
    }

    /// True when fewer than `threshold` agents moved in each of the last
    /// `patience` observed steps — the paper's "total gridlock" regime past
    /// 51,200 agents. A finished crowd is *not* gridlocked: once every
    /// agent has arrived, standing still is success, so this returns
    /// `false` regardless of movement. `patience` is clamped to ≥ 1 and
    /// must not exceed [`MAX_GRIDLOCK_PATIENCE`] (asserted), and the
    /// window must be fully observed (fewer than `patience` steps so far
    /// ⇒ not gridlocked) so a single congested step cannot misfire.
    #[inline]
    pub fn is_gridlocked(&self, threshold: usize, patience: u64) -> bool {
        assert!(
            patience <= MAX_GRIDLOCK_PATIENCE,
            "gridlock patience {patience} exceeds the retained history \
             ({MAX_GRIDLOCK_PATIENCE} steps)"
        );
        if self.all_arrived() {
            return false;
        }
        // An empty open world is idle, not stuck: nothing has spawned yet
        // (or everything drained), so zero movement is not gridlock.
        if self.live_count == 0 {
            return false;
        }
        let window = patience.max(1) as usize;
        self.moved_recent.len() >= window
            && self
                .moved_recent
                .iter()
                .rev()
                .take(window)
                .all(|&m| (m as usize) < threshold)
    }

    /// The scenario geometry.
    #[inline]
    pub fn geometry(&self) -> Geometry {
        self.geom
    }
}

/// Lane-formation index of a configuration: for each column, the fraction
/// of its agents belonging to the column's majority group, averaged over
/// non-empty columns, rescaled to [0, 1] (0 = perfectly mixed, 1 = fully
/// segregated columns). Any number of group labels participates; lane
/// formation in directional flow drives this up.
pub fn lane_index(mat: &Matrix<u8>) -> f64 {
    let mut acc = 0.0f64;
    let mut cols = 0usize;
    for c in 0..mat.width() {
        let mut counts = [0usize; MAX_GROUPS];
        for r in 0..mat.height() {
            let label = mat.get(r, c);
            if label != CELL_EMPTY && label != CELL_WALL {
                if let Some(g) = Group::from_label(label) {
                    counts[g.index()] += 1;
                }
            }
        }
        let n: usize = counts.iter().sum();
        if n > 0 {
            let maj = counts.iter().max().copied().unwrap_or(0) as f64 / n as f64;
            // maj ∈ [1/groups, 1]; rescale against the two-group floor so
            // legacy values are unchanged.
            acc += ((maj - 0.5) * 2.0).max(0.0);
            cols += 1;
        }
    }
    if cols == 0 {
        0.0
    } else {
        acc / cols as f64
    }
}

/// Per-row band count of a configuration: scanning each row in column
/// order, count the maximal runs of same-group agents among the occupied
/// cells (empty gaps and walls do not break a run — lanes survive
/// spacing), then average over rows with at least one agent. In a
/// corridor with vertical lanes every row cuts across the lanes, so this
/// estimates the number of lanes; 0 on an empty grid, 1 when each
/// populated row holds a single group.
pub fn band_count(mat: &Matrix<u8>) -> f64 {
    let mut acc = 0.0f64;
    let mut rows = 0usize;
    for r in 0..mat.height() {
        let mut bands = 0u32;
        let mut prev: Option<Group> = None;
        for c in 0..mat.width() {
            let label = mat.get(r, c);
            if label == CELL_EMPTY || label == CELL_WALL {
                continue;
            }
            if let Some(g) = Group::from_label(label) {
                if prev != Some(g) {
                    bands += 1;
                    prev = Some(g);
                }
            }
        }
        if bands > 0 {
            acc += f64::from(bands);
            rows += 1;
        }
    }
    if rows == 0 {
        0.0
    } else {
        acc / rows as f64
    }
}

/// Group segregation index of a configuration in `[0, 1]`: for each
/// agent with at least one occupied 8-neighbor, the fraction of those
/// neighbors sharing its group, rescaled against the two-group mixing
/// floor (`((f - 0.5) * 2).max(0)`) and averaged over the contributing
/// agents. 0 for a well-mixed crowd (or no agent has neighbors), 1 when
/// every agent sits in a single-group cluster. Complements
/// [`lane_index`]: this is orientation-free local order, lanes or not.
pub fn segregation_index(mat: &Matrix<u8>) -> f64 {
    let mut acc = 0.0f64;
    let mut agents = 0usize;
    for r in 0..mat.height() {
        for c in 0..mat.width() {
            let Some(g) = group_at(mat, r as i64, c as i64) else {
                continue;
            };
            let mut same = 0usize;
            let mut occupied = 0usize;
            for dr in -1i64..=1 {
                for dc in -1i64..=1 {
                    if dr == 0 && dc == 0 {
                        continue;
                    }
                    if let Some(ng) = group_at(mat, r as i64 + dr, c as i64 + dc) {
                        occupied += 1;
                        if ng == g {
                            same += 1;
                        }
                    }
                }
            }
            if occupied > 0 {
                let frac = same as f64 / occupied as f64;
                acc += ((frac - 0.5) * 2.0).max(0.0);
                agents += 1;
            }
        }
    }
    if agents == 0 {
        0.0
    } else {
        acc / agents as f64
    }
}

/// The group occupying `(r, c)`, if any (out-of-bounds, empty, and wall
/// cells hold no group).
fn group_at(mat: &Matrix<u8>, r: i64, c: i64) -> Option<Group> {
    if r < 0 || c < 0 || r as usize >= mat.height() || c as usize >= mat.width() {
        return None;
    }
    let label = mat.get(r as usize, c as usize);
    if label == CELL_EMPTY || label == CELL_WALL {
        return None;
    }
    Group::from_label(label)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pedsim_grid::cell::{CELL_BOTTOM, CELL_EMPTY, CELL_TOP};

    fn geom() -> Geometry {
        Geometry::two_sided(16, 16, 3, 2)
    }

    #[test]
    fn crossing_is_sticky() {
        let g = geom();
        // Agents 1,2 top; 3,4 bottom. Initial rows 0 and 15.
        let mut m = Metrics::new(g, &[0, 0, 1, 15, 15], &[0, 0, 1, 0, 1]);
        // Agent 1 jumps to row 13 (crossed), agent 3 to row 2 (crossed).
        m.observe(&[0, 13, 1, 2, 15], &[0, 0, 1, 0, 1]);
        assert_eq!(m.crossed_top(), 1);
        assert_eq!(m.crossed_bottom(), 1);
        assert_eq!(m.throughput(), 2);
        assert_eq!(m.moved_last_step, 2);
        // Agent 1 wanders back out of the band — still counted.
        m.observe(&[0, 10, 1, 2, 15], &[0, 0, 1, 0, 1]);
        assert_eq!(m.crossed_top(), 1);
        assert!(m.agent_crossed(1));
        assert_eq!(m.steps, 2);
        assert_eq!(m.total_moves, 3);
    }

    #[test]
    fn target_mask_counts_region_arrivals() {
        let g = geom();
        // Top group's target is a single interior doorway cell (8, 4);
        // bottom group's target is the top-left corner.
        let mut mask = Matrix::filled(16, 16, 0u8);
        mask.set(8, 4, Group::TOP.target_bit());
        mask.set(0, 0, Group::BOTTOM.target_bit());
        let mut m = Metrics::with_targets(
            g,
            Some(Arc::new(mask)),
            &[0, 0, 1, 15, 15],
            &[0, 0, 1, 0, 1],
        );
        // Agent 1 reaches row 15 — past the classic band line, but NOT its
        // region → no crossing counted.
        m.observe(&[0, 15, 1, 15, 15], &[0, 9, 1, 0, 1]);
        assert_eq!(m.throughput(), 0);
        // Agent 1 steps onto the doorway cell; agent 3 reaches (0,0).
        m.observe(&[0, 8, 1, 0, 15], &[0, 4, 1, 0, 1]);
        assert_eq!(m.crossed_top(), 1);
        assert_eq!(m.crossed_bottom(), 1);
        // The other group's bit does not count: agent 4 on (8,4).
        m.observe(&[0, 8, 1, 0, 8], &[0, 4, 1, 0, 4]);
        assert_eq!(m.crossed_bottom(), 1);
    }

    #[test]
    fn asymmetric_groups_attribute_crossings_correctly() {
        // 1 top agent, 3 bottom agents — the old `agents_per_side * 2`
        // convention would misclassify agent 2 as Top.
        let g = Geometry::with_groups(16, 16, 3, &[1, 3]);
        assert_eq!(g.total_agents(), 4);
        assert_eq!(g.group_of(1), Group::TOP);
        assert_eq!(g.group_of(2), Group::BOTTOM);
        assert_eq!(g.group_of(4), Group::BOTTOM);
        assert_eq!(g.group_range(Group::TOP), 1..2);
        assert_eq!(g.group_range(Group::BOTTOM), 2..5);
        let mut m = Metrics::new(g, &[0, 0, 15, 15, 15], &[0, 0, 0, 1, 2]);
        // Agent 2 (bottom) reaches row 2: a *bottom* crossing.
        m.observe(&[0, 0, 2, 15, 15], &[0, 0, 0, 1, 2]);
        assert_eq!(m.crossed_bottom(), 1);
        assert_eq!(m.crossed_top(), 0);
        // All four arrive.
        m.observe(&[0, 13, 2, 2, 2], &[0, 0, 0, 1, 2]);
        assert!(m.all_arrived());
        assert_eq!(m.crossed_top(), 1);
        assert_eq!(m.crossed_bottom(), 3);
    }

    #[test]
    fn four_group_geometry_ranges() {
        let g = Geometry::with_groups(32, 32, 2, &[5, 7, 3, 9]);
        assert_eq!(g.n_groups(), 4);
        assert_eq!(g.total_agents(), 24);
        assert_eq!(g.group_range(Group::new(0)), 1..6);
        assert_eq!(g.group_range(Group::new(1)), 6..13);
        assert_eq!(g.group_range(Group::new(2)), 13..16);
        assert_eq!(g.group_range(Group::new(3)), 16..25);
        assert_eq!(g.group_of(13), Group::new(2));
        assert_eq!(g.group_of(24), Group::new(3));
        assert_eq!(g.group_size(Group::new(3)), 9);
    }

    #[test]
    #[should_panic(expected = "two-group only")]
    fn band_fallback_rejects_multi_group() {
        let g = Geometry::with_groups(16, 16, 3, &[2, 2, 2]);
        let _ = g.has_crossed(Group::new(2), 0);
    }

    #[test]
    fn gridlock_detection() {
        let g = geom();
        let mut m = Metrics::new(g, &[0, 5, 5, 10, 10], &[0, 1, 2, 1, 2]);
        assert!(!m.is_gridlocked(1, 1)); // no steps yet
        m.observe(&[0, 5, 5, 10, 10], &[0, 1, 2, 1, 2]); // nobody moved
        assert!(m.is_gridlocked(1, 1));
        assert_eq!(m.moved_last_step, 0);
    }

    #[test]
    fn gridlock_patience_needs_consecutive_low_steps() {
        let g = geom();
        let mut m = Metrics::new(g, &[0, 5, 5, 10, 10], &[0, 1, 2, 1, 2]);
        m.observe(&[0, 5, 5, 10, 10], &[0, 1, 2, 1, 2]); // frozen
        m.observe(&[0, 6, 5, 10, 10], &[0, 1, 2, 1, 2]); // one moved
        m.observe(&[0, 6, 5, 10, 10], &[0, 1, 2, 1, 2]); // frozen
                                                         // Patience 2 needs two consecutive frozen steps; the last two are
                                                         // (moved=1, moved=0), so threshold 1 is not yet gridlock.
        assert!(!m.is_gridlocked(1, 2));
        m.observe(&[0, 6, 5, 10, 10], &[0, 1, 2, 1, 2]); // frozen again
        assert!(m.is_gridlocked(1, 2));
        // A wider window than the history observed never fires.
        assert!(!m.is_gridlocked(1, 64));
    }

    #[test]
    fn gridlock_history_is_bounded() {
        let g = geom();
        let mut m = Metrics::new(g, &[0, 5, 5, 10, 10], &[0, 1, 2, 1, 2]);
        for _ in 0..(MAX_GRIDLOCK_PATIENCE + 50) {
            m.observe(&[0, 5, 5, 10, 10], &[0, 1, 2, 1, 2]);
        }
        assert_eq!(m.moved_recent.len(), MAX_GRIDLOCK_PATIENCE as usize);
        assert!(m.is_gridlocked(1, MAX_GRIDLOCK_PATIENCE));
    }

    #[test]
    #[should_panic(expected = "exceeds the retained history")]
    fn gridlock_patience_beyond_retention_is_rejected() {
        let m = Metrics::new(geom(), &[0, 5, 5, 10, 10], &[0, 1, 2, 1, 2]);
        let _ = m.is_gridlocked(1, MAX_GRIDLOCK_PATIENCE + 1);
    }

    #[test]
    fn arrived_crowd_is_not_gridlocked() {
        let g = geom();
        let mut m = Metrics::new(g, &[0, 0, 1, 15, 15], &[0, 0, 1, 0, 1]);
        // Everyone jumps straight into the opposite band, then freezes.
        m.observe(&[0, 14, 14, 1, 1], &[0, 0, 1, 0, 1]);
        m.observe(&[0, 14, 14, 1, 1], &[0, 0, 1, 0, 1]);
        m.observe(&[0, 14, 14, 1, 1], &[0, 0, 1, 0, 1]);
        assert!(m.all_arrived());
        assert_eq!(m.throughput(), g.total_agents());
        // Zero movement for several steps, but the run *succeeded*.
        assert!(!m.is_gridlocked(1, 2));
    }

    #[test]
    fn group_of_uses_one_based_boundary() {
        let g = geom(); // 2 agents per side
        assert_eq!(g.group_of(1), Group::TOP);
        assert_eq!(g.group_of(2), Group::TOP);
        assert_eq!(g.group_of(3), Group::BOTTOM);
        assert_eq!(g.group_of(4), Group::BOTTOM);
    }

    #[test]
    #[should_panic(expected = "1-based")]
    #[cfg(debug_assertions)]
    fn group_of_rejects_sentinel() {
        let _ = geom().group_of(0);
    }

    #[test]
    fn flux_window_counts_crossing_events() {
        let g = geom();
        let mut m = Metrics::new(g, &[0, 0, 1, 15, 15], &[0, 0, 1, 0, 1]);
        assert_eq!(m.windowed_flux(4), None); // nothing observed yet
        m.observe(&[0, 13, 1, 2, 15], &[0, 0, 1, 0, 1]); // 2 crossings
        m.observe(&[0, 13, 1, 2, 15], &[0, 0, 1, 0, 1]); // 0
        assert_eq!(m.windowed_flux(2), Some(1.0));
        assert_eq!(m.windowed_flux(1), Some(0.0));
        assert_eq!(m.windowed_flux(4), None); // window not yet observed
        assert!((m.live_density() - 4.0 / 256.0).abs() < 1e-12);
        assert_eq!(m.live_count(), 4);
    }

    #[test]
    #[should_panic(expected = "exceeds the retained history")]
    fn flux_window_beyond_retention_is_rejected() {
        let m = Metrics::new(geom(), &[0, 5, 5, 10, 10], &[0, 1, 2, 1, 2]);
        let _ = m.windowed_flux(MAX_FLUX_WINDOW + 1);
    }

    #[test]
    fn steady_state_needs_flow_and_settled_halves() {
        let g = geom();
        let mut m = Metrics::new(g, &[0, 5, 5, 10, 10], &[0, 1, 2, 1, 2]);
        // Zero-flux steps: fully observed window, but no flow → not steady.
        for _ in 0..8 {
            m.observe(&[0, 5, 5, 10, 10], &[0, 1, 2, 1, 2]);
        }
        assert!(!m.is_steady(0.5, 4));
        // Ramp-up — all crossings in the recent half, older half quiet —
        // is not steady no matter how loose the epsilon.
        let mut m = Metrics::new(g, &[0, 0, 1, 15, 15], &[0, 0, 1, 0, 1]);
        m.observe(&[0, 0, 1, 15, 15], &[0, 0, 1, 0, 1]); // quiet
        m.observe(&[0, 0, 1, 15, 15], &[0, 0, 1, 0, 1]); // quiet
        m.observe(&[0, 13, 1, 15, 15], &[0, 0, 1, 0, 1]); // agent 1 crosses
        m.observe(&[0, 13, 13, 15, 15], &[0, 0, 1, 0, 1]); // agent 2 crosses
        assert!(!m.is_steady(5.0, 4));
        // Sustained flow — one crossing per half — settles even under a
        // tight epsilon.
        let mut m = Metrics::new(g, &[0, 0, 1, 15, 15], &[0, 0, 1, 0, 1]);
        m.observe(&[0, 13, 1, 15, 15], &[0, 0, 1, 0, 1]); // agent 1 crosses
        m.observe(&[0, 13, 1, 15, 15], &[0, 0, 1, 0, 1]); // quiet
        m.observe(&[0, 13, 13, 15, 15], &[0, 0, 1, 0, 1]); // agent 2 crosses
        m.observe(&[0, 13, 13, 15, 15], &[0, 0, 1, 0, 1]); // quiet
        assert!(m.is_steady(0.1, 4));
        // A window whose recent half is flowless is draining, not steady.
        assert!(!m.is_steady(0.1, 3));
    }

    #[test]
    #[should_panic(expected = "outside 2..=")]
    fn steady_window_of_one_is_rejected() {
        let m = Metrics::new(geom(), &[0, 5, 5, 10, 10], &[0, 1, 2, 1, 2]);
        let _ = m.is_steady(0.5, 1);
    }

    #[test]
    fn open_mode_recycles_slots_and_never_arrives() {
        let g = geom(); // 2 + 2 slots
        let mut m = Metrics::new(g, &[0, 0, 1, 15, 15], &[0, 0, 1, 0, 1]);
        // Slot 3 starts dead (a pooled open-world slot).
        let alive = vec![false, true, true, false, true];
        m.enable_open(200, &alive);
        assert_eq!(m.live_count(), 3);
        assert!((m.live_density() - 3.0 / 200.0).abs() < 1e-12);
        // Agent 1 crosses; the lifecycle drains it.
        m.observe(&[0, 13, 1, 0, 15], &[0, 0, 1, 0, 1]);
        assert_eq!(m.throughput(), 1);
        m.note_despawn(1);
        assert_eq!(m.live_count(), 2);
        // Dead slots are invisible to observation: agent 1's stale
        // position inside the band must not re-count.
        m.observe(&[0, 13, 1, 0, 15], &[0, 0, 1, 0, 1]);
        assert_eq!(m.throughput(), 1);
        // Respawn into slot 1 back at the top; it can cross again, and the
        // jump to the spawn cell is not counted as a move.
        m.note_spawn(1, 0, 4);
        let moves_before = m.total_moves;
        m.observe(&[0, 0, 1, 0, 15], &[0, 4, 1, 0, 1]);
        assert_eq!(m.total_moves, moves_before);
        m.observe(&[0, 14, 1, 0, 15], &[0, 4, 1, 0, 1]);
        assert_eq!(m.throughput(), 2, "recycled slot crossed again");
        // Open worlds never "arrive", even past the slot-capacity count.
        m.observe(&[0, 14, 14, 1, 1], &[0, 4, 1, 0, 1]);
        assert!(m.throughput() >= 2);
        assert!(!m.all_arrived());
    }

    #[test]
    fn empty_open_world_is_not_gridlocked() {
        let g = geom();
        let mut m = Metrics::new(g, &[0, 0, 0, 0, 0], &[0, 0, 0, 0, 0]);
        m.enable_open(256, &[false, false, false, false, false]);
        assert_eq!(m.live_count(), 0);
        for _ in 0..4 {
            m.observe(&[0, 0, 0, 0, 0], &[0, 0, 0, 0, 0]);
        }
        // Nothing moved, but nothing exists: idle, not stuck.
        assert!(!m.is_gridlocked(1, 2));
        // The first spawn after the idle stretch must not inherit the
        // zero-movement window: patience counts only steps with agents.
        m.note_spawn(1, 0, 0);
        assert!(!m.is_gridlocked(1, 2));
        m.observe(&[0, 0, 0, 0, 0], &[0, 0, 0, 0, 0]); // one frozen live step
        assert!(!m.is_gridlocked(1, 2));
        m.observe(&[0, 0, 0, 0, 0], &[0, 0, 0, 0, 0]); // two in a row
        assert!(m.is_gridlocked(1, 2));
    }

    #[test]
    fn lane_index_extremes() {
        // Fully segregated: column 0 all top, column 1 all bottom.
        let mut seg = Matrix::filled(4, 2, CELL_EMPTY);
        for r in 0..4 {
            seg.set(r, 0, CELL_TOP);
            seg.set(r, 1, CELL_BOTTOM);
        }
        assert!((lane_index(&seg) - 1.0).abs() < 1e-12);

        // Perfectly mixed columns.
        let mut mix = Matrix::filled(4, 2, CELL_EMPTY);
        for r in 0..4 {
            let v = if r % 2 == 0 { CELL_TOP } else { CELL_BOTTOM };
            mix.set(r, 0, v);
            mix.set(r, 1, v);
        }
        assert!(lane_index(&mix).abs() < 1e-12);

        // Empty grid.
        let empty = Matrix::filled(4, 2, CELL_EMPTY);
        assert_eq!(lane_index(&empty), 0.0);
    }

    #[test]
    fn lane_index_sees_all_groups() {
        // Four labels, one per column: fully segregated.
        let mut seg = Matrix::filled(4, 4, CELL_EMPTY);
        for r in 0..4 {
            for c in 0..4u8 {
                seg.set(r, c as usize, c + 1);
            }
        }
        assert!((lane_index(&seg) - 1.0).abs() < 1e-12);
        // One column with a 4-way even mix floors at 0.
        let mut mix = Matrix::filled(4, 1, CELL_EMPTY);
        for r in 0..4u8 {
            mix.set(r as usize, 0, r + 1);
        }
        assert_eq!(lane_index(&mix), 0.0);
    }

    #[test]
    fn flux_window_exactly_at_retention_boundary() {
        // `window == MAX_FLUX_WINDOW` is legal (the assert is strictly
        // `>`); it answers None until exactly MAX_FLUX_WINDOW steps have
        // been observed and Some from then on.
        let g = geom();
        let mut m = Metrics::new(g, &[0, 0, 1, 15, 15], &[0, 0, 1, 0, 1]);
        for _ in 0..(MAX_FLUX_WINDOW - 1) {
            m.observe(&[0, 0, 1, 15, 15], &[0, 0, 1, 0, 1]);
        }
        assert_eq!(m.windowed_flux(MAX_FLUX_WINDOW), None);
        // Step MAX_FLUX_WINDOW: agent 1 crosses — the window is full and
        // contains exactly one crossing.
        m.observe(&[0, 13, 1, 15, 15], &[0, 0, 1, 0, 1]);
        let flux = m.windowed_flux(MAX_FLUX_WINDOW).expect("window observed");
        assert!((flux - 1.0 / MAX_FLUX_WINDOW as f64).abs() < 1e-12);
        assert!(m.gridlock_warning(MAX_FLUX_WINDOW).is_some());
    }

    #[test]
    fn flux_ring_wraparound_forgets_old_crossings() {
        // A burst of crossings older than the ring must vanish from the
        // windowed view once MAX_FLUX_WINDOW quiet steps displace it.
        let g = geom();
        let mut m = Metrics::new(g, &[0, 0, 1, 15, 15], &[0, 0, 1, 0, 1]);
        m.observe(&[0, 13, 1, 2, 15], &[0, 0, 1, 0, 1]); // 2 crossings
        assert_eq!(m.windowed_flux(1), Some(2.0));
        for _ in 0..MAX_FLUX_WINDOW {
            m.observe(&[0, 13, 1, 2, 15], &[0, 0, 1, 0, 1]); // quiet
        }
        // The ring holds exactly MAX_FLUX_WINDOW quiet steps now; the
        // burst has been evicted even at the widest legal window.
        assert_eq!(m.windowed_flux(MAX_FLUX_WINDOW), Some(0.0));
        assert_eq!(m.steps, MAX_FLUX_WINDOW + 1);
    }

    #[test]
    fn empty_open_world_trends_are_flat_not_absent() {
        let g = geom();
        let mut m = Metrics::new(g, &[0, 0, 0, 0, 0], &[0, 0, 0, 0, 0]);
        m.enable_open(256, &[false, false, false, false, false]);
        assert_eq!(m.gridlock_warning(4), None, "window not yet observed");
        for _ in 0..4 {
            m.observe(&[0, 0, 0, 0, 0], &[0, 0, 0, 0, 0]);
        }
        // Nothing lives, nothing flows: every trend is exactly flat and
        // the warning gauge reads 0, not NaN and not a false alarm.
        assert_eq!(m.flux_slope(4), Some(0.0));
        assert_eq!(m.density_slope(4), Some(0.0));
        assert_eq!(m.gridlock_warning(4), Some(0.0));
        assert_eq!(m.windowed_flux(4), Some(0.0));
    }

    #[test]
    fn gridlock_warning_requires_falling_flux_and_rising_density() {
        let g = geom();
        let freeze = |m: &mut Metrics| m.observe(&[0, 5, 5, 10, 10], &[0, 1, 2, 1, 2]);

        // Congestion onset: crossings decay while the live count climbs.
        let mut m = Metrics::new(g, &[0, 0, 1, 15, 15], &[0, 0, 1, 0, 1]);
        m.enable_open(256, &[false, true, true, false, true]);
        m.observe(&[0, 13, 1, 0, 15], &[0, 0, 1, 0, 1]); // crossing, 3 live
        m.note_spawn(3, 15, 0);
        freeze(&mut m); // quiet, 4 live
        let w = m.gridlock_warning(2).expect("window observed");
        assert!(w > 0.0, "onset must raise the warning, got {w}");
        assert!(w <= 1.0);
        assert!(m.flux_slope(2).unwrap() < 0.0);
        assert!(m.density_slope(2).unwrap() > 0.0);

        // Drain-out: flux decays but density falls too — no warning.
        let mut m = Metrics::new(g, &[0, 0, 1, 15, 15], &[0, 0, 1, 0, 1]);
        m.enable_open(256, &[false, true, true, true, true]);
        m.observe(&[0, 13, 1, 2, 15], &[0, 0, 1, 0, 1]); // 2 crossings
        m.note_despawn(1);
        m.note_despawn(3);
        freeze(&mut m); // quiet, 2 live
        assert_eq!(m.gridlock_warning(2), Some(0.0));

        // Ramp-up: flux *and* density rising — no warning either.
        let mut m = Metrics::new(g, &[0, 0, 1, 15, 15], &[0, 0, 1, 0, 1]);
        m.enable_open(256, &[false, true, true, false, true]);
        freeze(&mut m); // quiet, 3 live
        m.note_spawn(3, 15, 0);
        m.observe(&[0, 13, 1, 0, 15], &[0, 0, 1, 0, 1]); // crossing, 4 live
        assert_eq!(m.gridlock_warning(2), Some(0.0));
    }

    #[test]
    #[should_panic(expected = "outside 2..=")]
    fn trend_window_of_one_is_rejected() {
        let m = Metrics::new(geom(), &[0, 5, 5, 10, 10], &[0, 1, 2, 1, 2]);
        let _ = m.gridlock_warning(1);
    }

    #[test]
    fn band_count_on_a_hand_built_two_lane_corridor() {
        // Two clean vertical lanes: columns 0-1 top group, columns 2-3
        // bottom group. Every row cuts across 2 bands.
        let mut two_lanes = Matrix::filled(4, 4, CELL_EMPTY);
        for r in 0..4 {
            two_lanes.set(r, 0, CELL_TOP);
            two_lanes.set(r, 1, CELL_TOP);
            two_lanes.set(r, 2, CELL_BOTTOM);
            two_lanes.set(r, 3, CELL_BOTTOM);
        }
        assert!((band_count(&two_lanes) - 2.0).abs() < 1e-12);

        // Gaps inside a lane do not split the band...
        two_lanes.set(1, 1, CELL_EMPTY);
        assert!((band_count(&two_lanes) - 2.0).abs() < 1e-12);
        // ...and a wall does not either (lanes survive spacing).
        two_lanes.set(2, 1, CELL_WALL);
        assert!((band_count(&two_lanes) - 2.0).abs() < 1e-12);

        // Perfect per-cell mixing maximizes the band count.
        let mut mix = Matrix::filled(4, 4, CELL_EMPTY);
        for r in 0..4 {
            for c in 0..4 {
                mix.set(r, c, if c % 2 == 0 { CELL_TOP } else { CELL_BOTTOM });
            }
        }
        assert!((band_count(&mix) - 4.0).abs() < 1e-12);

        // Empty grid: zero bands.
        assert_eq!(band_count(&Matrix::filled(4, 4, CELL_EMPTY)), 0.0);
    }

    #[test]
    fn segregation_index_on_a_hand_built_two_lane_corridor() {
        // The same two-lane picture: interior agents see mostly their own
        // group, only the lane boundary mixes — high but not 1.
        let mut two_lanes = Matrix::filled(4, 4, CELL_EMPTY);
        for r in 0..4 {
            for c in 0..4 {
                two_lanes.set(r, c, if c < 2 { CELL_TOP } else { CELL_BOTTOM });
            }
        }
        let seg = segregation_index(&two_lanes);
        assert!(seg > 0.3, "two lanes should read ordered, got {seg}");
        assert!(seg < 1.0, "the lane boundary still mixes");

        // Fully separated clusters read exactly 1.
        let mut split = Matrix::filled(4, 4, CELL_EMPTY);
        split.set(0, 0, CELL_TOP);
        split.set(0, 1, CELL_TOP);
        split.set(3, 2, CELL_BOTTOM);
        split.set(3, 3, CELL_BOTTOM);
        assert!((segregation_index(&split) - 1.0).abs() < 1e-12);

        // A perfect checkerboard of groups reads 0 (every neighbor
        // fraction is at or below the mixing floor).
        let mut checker = Matrix::filled(4, 4, CELL_EMPTY);
        for r in 0..4 {
            for c in 0..4 {
                checker.set(
                    r,
                    c,
                    if (r + c) % 2 == 0 {
                        CELL_TOP
                    } else {
                        CELL_BOTTOM
                    },
                );
            }
        }
        assert_eq!(segregation_index(&checker), 0.0);

        // No neighbors at all → no contributing agents → 0.
        let mut lone = Matrix::filled(4, 4, CELL_EMPTY);
        lone.set(0, 0, CELL_TOP);
        lone.set(3, 3, CELL_BOTTOM);
        assert_eq!(segregation_index(&lone), 0.0);
        assert_eq!(segregation_index(&Matrix::filled(2, 2, CELL_EMPTY)), 0.0);
    }
}
