//! # pedsim-core — nature-inspired bi-directional pedestrian simulation
//!
//! The primary contribution of Dutta, McLeod & Friesen (IPDPS-W 2014):
//! large-scale bi-directional pedestrian movement under two nature-inspired
//! models — the **Least Effort Model** (eq. 1) and a **modified Ant
//! System** (eqs. 2–5) — implemented as a data-driven four-kernel GPU
//! pipeline plus a single-threaded reference.
//!
//! ## Layout
//!
//! * [`params`] — model parameters and [`params::SimConfig`] (which may
//!   carry a `pedsim-scenario` world: interior obstacles, arbitrary
//!   spawn/target regions, flow-field routing);
//! * [`model`] — the pure decision functions (scoring, selection, conflict
//!   resolution) both engines share;
//! * [`kernels`] — the four `simt` kernels (§IV.b–e) and the device buffer
//!   set, plus the atomic-CAS movement variant kept for ablations;
//! * [`engine`] — [`engine::cpu::CpuEngine`] (sequential reference) and
//!   [`engine::gpu::GpuEngine`] (virtual GPU, sequential or parallel
//!   policy);
//! * [`metrics`] — throughput (the paper's §VI result metric), gridlock,
//!   lane formation;
//! * [`validate`] — exact cross-engine trajectory comparison;
//! * [`extensions`] — the paper's future-work features, implemented
//!   (panic alarm; widened scanning ranges).
//!
//! The `scenario` layer (crate `pedsim-scenario`, re-exported through the
//! prelude) sits between `pedsim-grid` and the engines: declarative worlds
//! — named spawn/target regions and interior obstacle cells — compile to
//! an [`pedsim_grid::Environment`] plus a distance field, and both engines
//! consume them through [`params::SimConfig::from_scenario`].
//!
//! ## Quickstart
//!
//! ```
//! use pedsim_core::prelude::*;
//!
//! let env = EnvConfig::small(32, 32, 30).with_seed(7);
//! let cfg = SimConfig::new(env, ModelKind::aco());
//! let mut engine = GpuEngine::new(cfg, simt::Device::parallel());
//! engine.run(50);
//! let m = engine.metrics().expect("metrics on by default");
//! println!("throughput after 50 steps: {}", m.throughput());
//! ```

#![warn(missing_docs)]
// Soundness gates (DESIGN.md §14): every unsafe operation inside an
// unsafe fn needs its own block + SAFETY comment, and stale blocks fail
// the build instead of rotting.
#![deny(unsafe_op_in_unsafe_fn)]
#![deny(unused_unsafe)]

pub mod engine;
pub mod extensions;
pub mod kernels;
pub mod metrics;
pub mod model;
pub mod params;
pub mod validate;
pub mod world;

/// The commonly-used public surface.
pub mod prelude {
    pub use crate::engine::cpu::CpuEngine;
    pub use crate::engine::gpu::GpuEngine;
    pub use crate::engine::pooled::PooledEngine;
    pub use crate::engine::{
        Backend, Engine, EngineBackend, InvalidStopCondition, ModelSwapError, StopCondition,
        StopReason, UnknownBackend,
    };
    pub use crate::metrics::{band_count, lane_index, segregation_index, Geometry, Metrics};
    pub use crate::params::{AcoParams, IterationMode, LemParams, ModelKind, SimConfig};
    pub use crate::validate::engines_agree;
    pub use crate::world::{CacheStats, CompiledWorld, WorldCache};
    pub use pedsim_grid::{EnvConfig, Environment};
    pub use pedsim_obs::{Histogram, Recorder};
    pub use pedsim_scenario::{registry as scenarios, Region, Scenario, ScenarioBuilder};
}
