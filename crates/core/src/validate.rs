//! Cross-engine validation (the strong form of the paper's §VI check).
//!
//! The paper compares CPU and GPU runs statistically ("Comparing the
//! solution obtained from CPU and GPU is a viable way to begin to establish
//! consistency of the implementation"). Counter-based randomness lets this
//! reproduction do better: for one configuration the CPU reference, the
//! sequential virtual-GPU run, and the parallel virtual-GPU run must agree
//! **exactly**, cell for cell. [`engines_agree`] asserts that; the
//! Figure-6b harness then layers the paper's GLM analysis on top using
//! different seeds per repeat.

use simt::exec::ExecPolicy;
use simt::Device;

use crate::engine::cpu::CpuEngine;
use crate::engine::gpu::GpuEngine;
use crate::engine::Engine;
use crate::params::SimConfig;

/// Where two engine runs first disagreed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Step at which the disagreement was detected.
    pub step: u64,
    /// Human-readable description.
    pub detail: String,
}

/// Run the CPU reference and a virtual-GPU engine (with `workers` host
/// threads; 0 = sequential policy) side by side for `steps`, comparing
/// snapshots every `check_every` steps. Returns the first divergence, or
/// `None` when the trajectories are identical.
pub fn engines_agree(
    cfg: SimConfig,
    steps: u64,
    check_every: u64,
    workers: usize,
) -> Option<Divergence> {
    let policy = if workers == 0 {
        ExecPolicy::Sequential
    } else {
        ExecPolicy::Parallel { workers }
    };
    let device = Device::builder().policy(policy).build();
    let mut cpu = CpuEngine::new(cfg.clone());
    let mut gpu = GpuEngine::new(cfg, device);
    let check_every = check_every.max(1);
    let mut done = 0u64;
    while done < steps {
        let burst = check_every.min(steps - done);
        cpu.run(burst);
        gpu.run(burst);
        done += burst;
        if cpu.mat_snapshot() != gpu.mat_snapshot() {
            return Some(Divergence {
                step: done,
                detail: "environment matrices differ".into(),
            });
        }
        if cpu.positions() != gpu.positions() {
            return Some(Divergence {
                step: done,
                detail: "agent positions differ".into(),
            });
        }
        let (mc, mg) = (cpu.metrics(), gpu.metrics());
        if let (Some(mc), Some(mg)) = (mc, mg) {
            if mc.throughput() != mg.throughput() {
                return Some(Divergence {
                    step: done,
                    detail: format!(
                        "throughput differs: cpu {} vs gpu {}",
                        mc.throughput(),
                        mg.throughput()
                    ),
                });
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ModelKind;
    use pedsim_grid::EnvConfig;

    #[test]
    fn cpu_matches_gpu_sequential_lem() {
        let cfg = SimConfig::new(EnvConfig::small(32, 32, 30).with_seed(21), ModelKind::lem())
            .with_checked(true);
        assert_eq!(engines_agree(cfg, 30, 5, 0), None);
    }

    #[test]
    fn cpu_matches_gpu_parallel_aco() {
        let cfg = SimConfig::new(EnvConfig::small(32, 32, 30).with_seed(22), ModelKind::aco())
            .with_checked(true);
        assert_eq!(engines_agree(cfg, 30, 5, 4), None);
    }
}
