//! Movement-conflict resolution: the scatter-to-gather winner pick (§IV.d).
//!
//! After the tour phase, several agents may have chosen the same empty
//! cell. The paper resolves this from the *empty cell's* perspective: its
//! thread counts the neighbouring agents whose FUTURE cell is this cell and
//! picks one uniformly at random (Figure 4). Because every agent names
//! exactly one future cell, each agent is a candidate at exactly one cell —
//! so every write this resolution produces has a unique owner, and no
//! atomics are needed.
//!
//! [`gather_winner`] is that decision as a pure function. Crucially it is
//! keyed by the *cell's* RNG stream, so any thread can recompute any cell's
//! decision and get the identical answer. The engines use this in two
//! places: the empty cell applies its own arrival, and an occupied cell
//! whose agent targeted `F` recomputes `gather_winner(F)` to learn whether
//! its agent left — giving a race-free, deterministic, double-buffered
//! update with every slot written by exactly one thread.

use pedsim_grid::cell::{CELL_EMPTY, MOVE_LEN, NEIGHBOR_OFFSETS};
use pedsim_grid::property::NO_FUTURE;
use philox::StreamRng;

/// The outcome of a cell's gather: which agent arrives and from where.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Winning agent's index (≥ 1).
    pub agent: u32,
    /// The neighbour slot (0–7) the winner comes *from*, i.e. the winner
    /// stands at `cell + NEIGHBOR_OFFSETS[from_k]`.
    pub from_k: usize,
}

impl Arrival {
    /// Euclidean length of the winning step (the constant-memory
    /// tour-length increment).
    #[inline]
    pub fn step_len(&self) -> f32 {
        MOVE_LEN[self.from_k]
    }
}

/// Resolve the arrival at cell `(r, c)`.
///
/// * `occ`/`idx` read the *pre-movement* cell label and agent index
///   (snapshot semantics; [`pedsim_grid::CELL_WALL`]/0 outside);
/// * `future` maps an agent index to its chosen `(row, col)`
///   (`NO_FUTURE` when none);
/// * `rng` must be the stream keyed by this *cell* and the movement salt.
///
/// Returns `None` if the cell is occupied or no neighbour targets it.
/// Candidates are scanned in neighbour order 0–7, and the winner is drawn
/// uniformly among them with a single bounded draw — both engines and the
/// recomputing neighbour threads therefore agree exactly.
pub fn gather_winner(
    occ: &impl Fn(i64, i64) -> u8,
    idx: &impl Fn(i64, i64) -> u32,
    future: &impl Fn(u32) -> (u16, u16),
    r: i64,
    c: i64,
    rng: &mut StreamRng,
) -> Option<Arrival> {
    if occ(r, c) != CELL_EMPTY {
        // Agents only target empty cells, so an occupied cell gathers
        // nothing (the uniform-count formulation of Figure 4).
        return None;
    }
    let mut candidates: [(u32, u8); 8] = [(0, 0); 8];
    let mut count = 0usize;
    for (k, (dr, dc)) in NEIGHBOR_OFFSETS.iter().enumerate() {
        let (nr, nc) = (r + dr, c + dc);
        let a = idx(nr, nc);
        if a != 0 {
            let (fr, fc) = future(a);
            if fr != NO_FUTURE && i64::from(fr) == r && i64::from(fc) == c {
                candidates[count] = (a, k as u8);
                count += 1;
            }
        }
    }
    if count == 0 {
        return None;
    }
    let pick = if count == 1 {
        // Deterministic: skip the draw so RNG usage matches across
        // recomputations trivially (it would anyway, but this also keeps
        // the single-candidate fast path draw-free, as on the GPU where
        // curand_uniform is only invoked for contended cells).
        0
    } else {
        rng.bounded_u32(count as u32) as usize
    };
    let (agent, from_k) = candidates[pick];
    Some(Arrival {
        agent,
        from_k: from_k as usize,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pedsim_grid::cell::{CELL_TOP, CELL_WALL};

    /// A tiny fixture: agents listed as (index, r, c, future_r, future_c).
    struct World {
        agents: Vec<(u32, i64, i64, u16, u16)>,
    }

    impl World {
        fn occ(&self) -> impl Fn(i64, i64) -> u8 + '_ {
            move |r, c| {
                if !(0..10).contains(&r) || !(0..10).contains(&c) {
                    return CELL_WALL;
                }
                if self
                    .agents
                    .iter()
                    .any(|&(_, ar, ac, _, _)| (ar, ac) == (r, c))
                {
                    CELL_TOP
                } else {
                    CELL_EMPTY
                }
            }
        }

        fn idx(&self) -> impl Fn(i64, i64) -> u32 + '_ {
            move |r, c| {
                self.agents
                    .iter()
                    .find(|&&(_, ar, ac, _, _)| (ar, ac) == (r, c))
                    .map(|&(i, ..)| i)
                    .unwrap_or(0)
            }
        }

        fn future(&self) -> impl Fn(u32) -> (u16, u16) + '_ {
            move |a| {
                self.agents
                    .iter()
                    .find(|&&(i, ..)| i == a)
                    .map(|&(_, _, _, fr, fc)| (fr, fc))
                    .unwrap_or((NO_FUTURE, NO_FUTURE))
            }
        }
    }

    #[test]
    fn single_candidate_wins_without_draw() {
        let w = World {
            agents: vec![(1, 4, 5, 5, 5)],
        };
        let mut rng = StreamRng::new(9, 55);
        let arr = gather_winner(&w.occ(), &w.idx(), &w.future(), 5, 5, &mut rng).unwrap();
        assert_eq!(arr.agent, 1);
        assert_eq!(arr.from_k, 5); // winner is at (4,5) = cell + offset #6 (N)
        assert_eq!(arr.step_len(), 1.0);
        // No randomness consumed.
        let mut rng2 = StreamRng::new(9, 55);
        assert_eq!(rng.next_u32(), rng2.next_u32());
    }

    #[test]
    fn contended_cell_draws_uniformly() {
        // Figure 4: five agents all targeting (5,5).
        let w = World {
            agents: vec![
                (1, 4, 4, 5, 5),
                (2, 4, 5, 5, 5),
                (3, 4, 6, 5, 5),
                (4, 5, 4, 5, 5),
                (5, 6, 5, 5, 5),
            ],
        };
        let mut counts = [0usize; 6];
        for salt in 0..3000u64 {
            let mut rng = StreamRng::with_offset(1, 55, salt << 4);
            let arr = gather_winner(&w.occ(), &w.idx(), &w.future(), 5, 5, &mut rng).unwrap();
            counts[arr.agent as usize] += 1;
        }
        assert_eq!(counts[0], 0);
        for (a, &wins) in counts.iter().enumerate().skip(1) {
            let f = wins as f64 / 3000.0;
            assert!((f - 0.2).abs() < 0.05, "agent {a} won {f}");
        }
    }

    #[test]
    fn occupied_cell_gathers_nothing() {
        let w = World {
            agents: vec![(1, 5, 5, 4, 5), (2, 6, 5, 5, 5)],
        };
        let mut rng = StreamRng::new(0, 0);
        // (5,5) holds agent 1 — even though agent 2 "targets" it (stale
        // future), the occupied guard refuses.
        assert!(gather_winner(&w.occ(), &w.idx(), &w.future(), 5, 5, &mut rng).is_none());
    }

    #[test]
    fn cell_without_suitors_stays_empty() {
        let w = World {
            agents: vec![(1, 4, 4, 3, 3)],
        };
        let mut rng = StreamRng::new(0, 0);
        assert!(gather_winner(&w.occ(), &w.idx(), &w.future(), 5, 5, &mut rng).is_none());
    }

    #[test]
    fn recomputation_agrees() {
        let w = World {
            agents: vec![(1, 4, 4, 5, 5), (2, 6, 6, 5, 5), (3, 4, 5, 5, 5)],
        };
        // Two independent recomputations with the same cell stream agree.
        let mut r1 = StreamRng::with_offset(123, 55, 7 << 4);
        let mut r2 = StreamRng::with_offset(123, 55, 7 << 4);
        let a = gather_winner(&w.occ(), &w.idx(), &w.future(), 5, 5, &mut r1);
        let b = gather_winner(&w.occ(), &w.idx(), &w.future(), 5, 5, &mut r2);
        assert_eq!(a, b);
        assert!(a.is_some());
    }

    #[test]
    fn agents_without_future_are_not_candidates() {
        let w = World {
            agents: vec![(1, 4, 5, NO_FUTURE, NO_FUTURE), (2, 6, 5, 5, 5)],
        };
        let mut rng = StreamRng::new(5, 0);
        let arr = gather_winner(&w.occ(), &w.idx(), &w.future(), 5, 5, &mut rng).unwrap();
        assert_eq!(arr.agent, 2);
    }

    #[test]
    fn diagonal_step_length() {
        let w = World {
            agents: vec![(1, 4, 4, 5, 5)],
        };
        let mut rng = StreamRng::new(5, 0);
        let arr = gather_winner(&w.occ(), &w.idx(), &w.future(), 5, 5, &mut rng).unwrap();
        // Winner at (4,4) relative to (5,5) is offset (-1,-1) = slot 6 (NW).
        assert_eq!(arr.from_k, 6);
        assert!((arr.step_len() - std::f32::consts::SQRT_2).abs() < 1e-6);
    }
}
