//! Pure model arithmetic shared verbatim by both engines.
//!
//! Every decision in the simulation — scoring (eqs. 1–2), selection, and
//! movement-conflict resolution — is implemented here as a pure function of
//! cell state and counter-based random draws. The CPU reference engine and
//! the virtual-GPU engine call the *same* functions with the same RNG
//! keying, which is why their trajectories are bit-identical (the paper's
//! Figure 6b had to settle for a statistical comparison; we can assert
//! equality and then reproduce the statistical analysis on top).

pub mod aco;
pub mod lem;
pub mod movement;

pub use aco::{aco_scan_row, aco_select};
pub use lem::{lem_scan_row, lem_select};
pub use movement::{gather_winner, Arrival};

use pedsim_grid::cell::{CELL_EMPTY, NEIGHBOR_OFFSETS};

/// One agent's scan row: up to eight `(value, neighbour index)` slots.
///
/// LEM fills it with candidate distances in ascending order (invalid tail
/// slots have `idx = SCAN_INVALID`); ACO fills slot `k` with neighbour
/// `k`'s eq. (2) numerator (0 for unavailable neighbours).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScanRow {
    /// Scan values.
    pub vals: [f32; 8],
    /// Neighbour indices, [`pedsim_grid::scan::SCAN_INVALID`] when unused.
    pub idxs: [u8; 8],
}

impl ScanRow {
    /// An all-invalid row.
    pub fn empty() -> Self {
        Self {
            vals: [0.0; 8],
            idxs: [pedsim_grid::scan::SCAN_INVALID; 8],
        }
    }
}

/// The contents of an agent's *front cell* — neighbour slot `front_k` of
/// the agent at `(r, c)` — reading occupancy through `occ` (which must
/// return [`pedsim_grid::CELL_WALL`] outside the environment).
///
/// `front_k` comes from [`pedsim_grid::DistRef::front_k`]: the
/// distance-argmin neighbour, which for the paper's row-distance corridor
/// is exactly the group's row-forward cell (paper Cell #1/#6) and for
/// flow-field worlds points downhill toward the target around obstacles.
#[inline]
pub fn front_status(occ: &impl Fn(i64, i64) -> u8, front_k: usize, r: i64, c: i64) -> u8 {
    let (dr, dc) = NEIGHBOR_OFFSETS[front_k];
    occ(r + dr, c + dc)
}

/// Whether a front-status byte means "free to step into".
#[inline]
pub fn front_is_empty(front: u8) -> bool {
    front == CELL_EMPTY
}

#[cfg(test)]
mod tests {
    use super::*;
    use pedsim_grid::cell::{Group, CELL_TOP, CELL_WALL};

    #[test]
    fn front_status_reads_front_cell() {
        // A 3x3 sandbox: top agent at (1,1), another agent at (2,1).
        let occ = |r: i64, c: i64| -> u8 {
            if !(0..3).contains(&r) || !(0..3).contains(&c) {
                CELL_WALL
            } else if (r, c) == (2, 1) {
                CELL_TOP
            } else {
                CELL_EMPTY
            }
        };
        assert_eq!(
            front_status(&occ, Group::TOP.forward_index(), 1, 1),
            CELL_TOP
        );
        assert_eq!(
            front_status(&occ, Group::BOTTOM.forward_index(), 1, 1),
            CELL_EMPTY
        );
        // At the edge, the forward cell is the wall.
        assert_eq!(
            front_status(&occ, Group::BOTTOM.forward_index(), 0, 1),
            CELL_WALL
        );
        assert!(front_is_empty(CELL_EMPTY));
        assert!(!front_is_empty(CELL_WALL));
    }
}
