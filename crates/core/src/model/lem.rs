//! The Least Effort Model: eq. (1) scoring and rank selection (§II.A).
//!
//! Eq. (1) scores each neighbour `i` as `C_i = (1 − n_i)(D_min / D_i)` —
//! zero for occupied cells, approaching 1 for the nearest-to-target empty
//! cell. Since `D_min/D_i` is strictly decreasing in `D_i`, ranking
//! candidates by `C_i` descending is identical to ranking by distance
//! ascending; the paper stores the scan row "in the increasing order of
//! value [distance]" and we do the same, keeping the paired neighbour
//! index.
//!
//! Selection draws a normal sample, clamps negatives to rank 0 and
//! overflows to the worst rank (§II.A), so the nearest-to-target candidate
//! is chosen most often — the "least effort" in the model's name.

use pedsim_grid::cell::{Group, CELL_EMPTY, NEIGHBOR_OFFSETS};
use pedsim_grid::distance::DistRef;
use pedsim_grid::scan::SCAN_INVALID;
use philox::{ClampedNormal, StreamRng};

use crate::params::LemParams;

use super::ScanRow;

/// Build a LEM scan row for a group-`g` agent at `(r, c)`: available
/// neighbours' target distances, sorted ascending (ties broken by
/// neighbour index, so the ordering is total and engine-independent).
///
/// `occ(r, c)` must return the cell label, [`pedsim_grid::CELL_WALL`]
/// outside the environment. `dist` is the layout-tagged distance view —
/// row tables for the paper's corridor, a flow field for obstacle worlds.
/// `scan_range > 1` enables the look-ahead congestion penalty of
/// `extensions::ranges` (paper future work); `1` is the paper baseline.
pub fn lem_scan_row(
    occ: &impl Fn(i64, i64) -> u8,
    dist: DistRef<'_>,
    g: Group,
    r: i64,
    c: i64,
    scan_range: u8,
) -> ScanRow {
    let mut row = ScanRow::empty();
    let mut filled = 0usize;
    for (k, (dr, dc)) in NEIGHBOR_OFFSETS.iter().enumerate() {
        let available = occ(r + dr, c + dc) == CELL_EMPTY;
        if available {
            let mut d = dist.neighbor(g, r, c, k);
            if scan_range > 1 {
                let cong = crate::extensions::ranges::ray_congestion(occ, r, c, k, scan_range);
                d = crate::extensions::ranges::penalised_distance(d, cong);
            }
            // Insertion sort into the prefix [0, filled): 8 elements max.
            let mut j = filled;
            while j > 0 && row.vals[j - 1] > d {
                row.vals[j] = row.vals[j - 1];
                row.idxs[j] = row.idxs[j - 1];
                j -= 1;
            }
            row.vals[j] = d;
            row.idxs[j] = k as u8;
            filled += 1;
        }
    }
    row
}

/// Pick the next cell for an agent with scan row `row` whose front cell
/// (neighbour slot `front_k`, from [`DistRef::front_k`]) has status
/// `front`. Returns the chosen neighbour index, or `None` when no move is
/// possible.
///
/// Consumes at most two 32-bit draws from `rng` — call with a stream keyed
/// by the agent index and the step salt so both engines agree.
pub fn lem_select(
    row: &ScanRow,
    front: u8,
    front_k: usize,
    params: &LemParams,
    rng: &mut StreamRng,
) -> Option<usize> {
    if params.forward_priority && front == CELL_EMPTY {
        // The paper's modification: an empty forward cell is taken without
        // further calculation (§III). No randomness consumed.
        return Some(front_k);
    }
    let candidates = row.idxs.iter().take_while(|&&i| i != SCAN_INVALID).count();
    if candidates == 0 {
        return None;
    }
    let cn = ClampedNormal::new(params.sigma);
    let rank = cn.rank(rng.next_u32(), rng.next_u32(), (candidates - 1) as u32);
    Some(row.idxs[rank as usize] as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pedsim_grid::cell::{CELL_TOP, CELL_WALL};

    fn open_world(r: i64, c: i64) -> u8 {
        if (0..100).contains(&r) && (0..100).contains(&c) {
            CELL_EMPTY
        } else {
            CELL_WALL
        }
    }

    fn tables() -> pedsim_grid::DistanceTables {
        pedsim_grid::DistanceTables::new(100)
    }

    fn view(t: &pedsim_grid::DistanceTables) -> DistRef<'_> {
        t.dist_ref()
    }

    #[test]
    fn open_neighbourhood_sorted_ascending() {
        let t = tables();
        let row = lem_scan_row(&open_world, view(&t), Group::TOP, 50, 50, 1);
        // All 8 available; first is the forward cell (k=0), last a backward
        // diagonal (k=6 or 7).
        assert_eq!(row.idxs[0], 0);
        assert!(row.vals.windows(2).all(|w| w[0] <= w[1]));
        assert!(row.idxs.iter().all(|&i| i != SCAN_INVALID));
        // Paper ordering: forward, fwd diagonals, laterals, back, back diagonals.
        assert_eq!(&sorted_pair(row.idxs[1], row.idxs[2]), &[1, 2]);
        assert_eq!(&sorted_pair(row.idxs[3], row.idxs[4]), &[3, 4]);
        assert_eq!(row.idxs[5], 5);
        assert_eq!(&sorted_pair(row.idxs[6], row.idxs[7]), &[6, 7]);
    }

    fn sorted_pair(a: u8, b: u8) -> [u8; 2] {
        if a <= b {
            [a, b]
        } else {
            [b, a]
        }
    }

    #[test]
    fn blocked_cells_excluded() {
        let t = tables();
        // Forward cell occupied.
        let occ = |r: i64, c: i64| -> u8 {
            if (r, c) == (51, 50) {
                CELL_TOP
            } else {
                open_world(r, c)
            }
        };
        let row = lem_scan_row(&occ, view(&t), Group::TOP, 50, 50, 1);
        assert!(row
            .idxs
            .iter()
            .take(7)
            .all(|&i| i != 0 && i != SCAN_INVALID));
        assert_eq!(row.idxs[7], SCAN_INVALID);
    }

    #[test]
    fn corner_agent_sees_three_neighbours() {
        let t = tables();
        let row = lem_scan_row(&open_world, view(&t), Group::TOP, 0, 0, 1);
        let n = row.idxs.iter().take_while(|&&i| i != SCAN_INVALID).count();
        assert_eq!(n, 3); // S, SE, E
    }

    #[test]
    fn forward_priority_is_deterministic() {
        let t = tables();
        let row = lem_scan_row(&open_world, view(&t), Group::TOP, 50, 50, 1);
        let mut rng = StreamRng::new(0, 1);
        let k = lem_select(
            &row,
            CELL_EMPTY,
            Group::TOP.forward_index(),
            &LemParams::default(),
            &mut rng,
        );
        assert_eq!(k, Some(0));
        // No randomness consumed: a fresh stream gives the same answer and
        // the two streams stay aligned.
        let mut rng2 = StreamRng::new(0, 1);
        assert_eq!(rng.next_u32(), rng2.next_u32());
    }

    #[test]
    fn boxed_in_agent_cannot_move() {
        let row = ScanRow::empty();
        let mut rng = StreamRng::new(0, 2);
        assert_eq!(
            lem_select(
                &row,
                CELL_TOP,
                Group::TOP.forward_index(),
                &LemParams::default(),
                &mut rng
            ),
            None
        );
    }

    #[test]
    fn blocked_front_picks_low_ranks_most_often() {
        let t = tables();
        let occ = |r: i64, c: i64| -> u8 {
            if (r, c) == (51, 50) {
                CELL_TOP
            } else {
                open_world(r, c)
            }
        };
        let row = lem_scan_row(&occ, view(&t), Group::TOP, 50, 50, 1);
        let params = LemParams::default();
        let mut rng = StreamRng::new(42, 9);
        let mut counts = [0usize; 8];
        for _ in 0..4000 {
            let k = lem_select(
                &row,
                CELL_TOP,
                Group::TOP.forward_index(),
                &params,
                &mut rng,
            )
            .unwrap();
            counts[k] += 1;
        }
        // Best-ranked candidates are the forward diagonals (k=1, k=2).
        let diag = counts[1] + counts[2];
        assert!(diag > 2000, "forward diagonals should dominate: {counts:?}");
        // Backward diagonals should be rare.
        assert!(counts[6] + counts[7] < diag / 2, "{counts:?}");
    }

    #[test]
    fn selection_respects_candidate_bound() {
        let t = tables();
        let row = lem_scan_row(&open_world, view(&t), Group::BOTTOM, 0, 0, 1);
        // Bottom agent at its own target edge: 3 candidates.
        let params = LemParams {
            sigma: 50.0, // extreme spread exercises the clamp
            forward_priority: false,
            ..LemParams::default()
        };
        let mut rng = StreamRng::new(3, 3);
        for _ in 0..500 {
            let k = lem_select(
                &row,
                CELL_TOP,
                Group::TOP.forward_index(),
                &params,
                &mut rng,
            )
            .unwrap();
            assert!(row.idxs[..3].contains(&(k as u8)));
        }
    }
}
