//! The modified Ant System: eq. (2) transition rule with the target-line
//! heuristic (§II.B, §III).
//!
//! For pedestrian movement the TSP heuristic `η_ij = 1/d_ij` becomes
//! `η_k = 1/D_k` where `D_k` is neighbour `k`'s distance to the agent's
//! target line, and the pheromone `τ` is read from the agent's *own
//! group's* field (followers are attracted to predecessors walking the
//! same way — the paper's "visual proposition to follow predecessors").
//!
//! The scan row stores the numerators `τ_k^α · η_k^β` (zero for
//! unavailable neighbours); selection computes the denominator by
//! reduction and draws from the discrete distribution (the paper's random
//! proportional rule), with the forward-cell priority short-circuit.

use pedsim_grid::cell::{Group, CELL_EMPTY, NEIGHBOR_OFFSETS};
use pedsim_grid::distance::DistRef;
use philox::StreamRng;

use crate::params::AcoParams;

use super::ScanRow;

/// Build an ACO scan row for a group-`g` agent at `(r, c)`: slot `k` holds
/// neighbour `k`'s eq. (2) numerator, or 0 when the neighbour is
/// unavailable.
///
/// `occ` reads cell labels ([`pedsim_grid::CELL_WALL`] outside), `tau`
/// reads the agent's group pheromone field at *global* coordinates, and
/// `dist` is the layout-tagged distance view (row tables or flow field).
#[allow(clippy::too_many_arguments)]
pub fn aco_scan_row(
    occ: &impl Fn(i64, i64) -> u8,
    tau: &impl Fn(i64, i64) -> f32,
    dist: DistRef<'_>,
    params: &AcoParams,
    g: Group,
    r: i64,
    c: i64,
) -> ScanRow {
    let mut row = ScanRow::empty();
    for (k, (dr, dc)) in NEIGHBOR_OFFSETS.iter().enumerate() {
        let (nr, nc) = (r + dr, c + dc);
        let available = occ(nr, nc) == CELL_EMPTY;
        row.idxs[k] = k as u8;
        if available {
            let d = dist.neighbor(g, r, c, k);
            let eta = 1.0 / d;
            let t = tau(nr, nc).max(0.0);
            row.vals[k] = t.powf(params.alpha) * eta.powf(params.beta);
        } else {
            row.vals[k] = 0.0;
        }
    }
    row
}

/// Apply the random proportional rule to an ACO scan row whose front cell
/// (neighbour slot `front_k`, from [`DistRef::front_k`]) has status
/// `front`. Returns the chosen neighbour index, or `None` when every
/// numerator is zero (boxed in).
///
/// Consumes at most one 32-bit draw.
pub fn aco_select(
    row: &ScanRow,
    front: u8,
    front_k: usize,
    params: &AcoParams,
    rng: &mut StreamRng,
) -> Option<usize> {
    if params.forward_priority && front == CELL_EMPTY {
        // "If the front cell is empty, then the pedestrian decides to move
        // forward immediately" (§IV.c). No randomness consumed.
        return Some(front_k);
    }
    // The reduction the paper performs across the agent's 8 worker threads.
    let denom: f32 = row.vals.iter().sum();
    // NaN-safe: a NaN denominator (pathological parameters) must also bail.
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    if !(denom > 0.0) {
        return None;
    }
    let u = rng.uniform_f32() * denom;
    let mut acc = 0.0f32;
    let mut chosen = None;
    for (k, &v) in row.vals.iter().enumerate() {
        if v > 0.0 {
            acc += v;
            chosen = Some(k);
            if u < acc {
                return Some(k);
            }
        }
    }
    // Float round-off can leave u ≥ acc by an ulp; fall back to the last
    // positive slot.
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use pedsim_grid::cell::{CELL_TOP, CELL_WALL};

    fn open_world(r: i64, c: i64) -> u8 {
        if (0..100).contains(&r) && (0..100).contains(&c) {
            CELL_EMPTY
        } else {
            CELL_WALL
        }
    }

    fn flat_tau(_: i64, _: i64) -> f32 {
        0.1
    }

    fn tables() -> pedsim_grid::DistanceTables {
        pedsim_grid::DistanceTables::new(100)
    }

    fn view(t: &pedsim_grid::DistanceTables) -> DistRef<'_> {
        t.dist_ref()
    }

    #[test]
    fn numerators_follow_distance_ordering() {
        let t = tables();
        let p = AcoParams::default();
        let row = aco_scan_row(&open_world, &flat_tau, view(&t), &p, Group::TOP, 50, 50);
        // With flat pheromone, numerator ordering is pure heuristic:
        // forward (k=0) largest, backward diagonals (6,7) smallest.
        assert!(row.vals[0] > row.vals[1]);
        assert!(row.vals[1] > row.vals[3]);
        assert!(row.vals[3] > row.vals[5]);
        assert!(row.vals[5] > row.vals[6]);
        assert!((row.vals[6] - row.vals[7]).abs() < 1e-10);
    }

    #[test]
    fn occupied_neighbours_get_zero() {
        let t = tables();
        let p = AcoParams::default();
        let occ = |r: i64, c: i64| -> u8 {
            if (r, c) == (51, 50) {
                CELL_TOP
            } else {
                open_world(r, c)
            }
        };
        let row = aco_scan_row(&occ, &flat_tau, view(&t), &p, Group::TOP, 50, 50);
        assert_eq!(row.vals[0], 0.0);
        assert!(row.vals[1] > 0.0);
    }

    #[test]
    fn pheromone_biases_choice() {
        let t = tables();
        let p = AcoParams {
            forward_priority: false,
            ..AcoParams::default()
        };
        // Strong trail on the forward-left diagonal (51, 49).
        let tau = |r: i64, c: i64| -> f32 {
            if (r, c) == (51, 49) {
                50.0
            } else {
                0.05
            }
        };
        let row = aco_scan_row(&open_world, &tau, view(&t), &p, Group::TOP, 50, 50);
        let mut rng = StreamRng::new(5, 11);
        let mut left = 0;
        let n = 2000;
        for _ in 0..n {
            if aco_select(&row, CELL_TOP, Group::TOP.forward_index(), &p, &mut rng) == Some(1) {
                left += 1;
            }
        }
        assert!(
            left > n * 6 / 10,
            "trail-following should dominate: {left}/{n}"
        );
    }

    #[test]
    fn forward_priority_short_circuits() {
        let t = tables();
        let p = AcoParams::default();
        let row = aco_scan_row(&open_world, &flat_tau, view(&t), &p, Group::BOTTOM, 50, 50);
        let mut rng = StreamRng::new(0, 1);
        let k = aco_select(
            &row,
            CELL_EMPTY,
            Group::BOTTOM.forward_index(),
            &p,
            &mut rng,
        );
        assert_eq!(k, Some(Group::BOTTOM.forward_index()));
        let mut rng2 = StreamRng::new(0, 1);
        assert_eq!(rng.next_u32(), rng2.next_u32()); // nothing consumed
    }

    #[test]
    fn boxed_in_returns_none() {
        let row = ScanRow {
            vals: [0.0; 8],
            idxs: [0, 1, 2, 3, 4, 5, 6, 7],
        };
        let p = AcoParams::default();
        let mut rng = StreamRng::new(1, 1);
        assert_eq!(
            aco_select(&row, CELL_TOP, Group::TOP.forward_index(), &p, &mut rng),
            None
        );
    }

    #[test]
    fn selection_is_proportional() {
        // Two candidates with 3:1 numerators → ~75/25 split.
        let mut row = ScanRow::empty();
        row.vals[2] = 3.0;
        row.vals[4] = 1.0;
        row.idxs = [0, 1, 2, 3, 4, 5, 6, 7];
        let p = AcoParams {
            forward_priority: false,
            ..AcoParams::default()
        };
        let mut rng = StreamRng::new(77, 0);
        let n = 10_000;
        let mut k2 = 0;
        for _ in 0..n {
            match aco_select(&row, CELL_TOP, Group::TOP.forward_index(), &p, &mut rng) {
                Some(2) => k2 += 1,
                Some(4) => {}
                other => panic!("unexpected selection {other:?}"),
            }
        }
        let frac = k2 as f64 / n as f64;
        assert!((frac - 0.75).abs() < 0.02, "frac = {frac}");
    }

    #[test]
    fn zero_beta_ignores_distance() {
        let t = tables();
        let p = AcoParams {
            beta: 0.0,
            forward_priority: false,
            ..AcoParams::default()
        };
        let row = aco_scan_row(&open_world, &flat_tau, view(&t), &p, Group::TOP, 50, 50);
        // All equal numerators with flat pheromone.
        let first = row.vals[0];
        assert!(row.vals.iter().all(|&v| (v - first).abs() < 1e-9));
    }
}
