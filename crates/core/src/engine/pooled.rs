//! The tile-parallel pooled CPU backend (`pooled` in the backend
//! registry).
//!
//! A multi-threaded host engine on the `simt` [`WorkerPool`]: the grid is
//! partitioned into contiguous row bands ([`band_ranges`]) and the four
//! kernel stages run band-parallel with **conflict-free claims** — every
//! output slot is written by exactly one task, so no locks are held in
//! any hot loop.
//!
//! ## The claim protocol (movement)
//!
//! The scalar reference resolves movement per cell with
//! [`gather_winner`]: scan the 8 neighbours in slot order, collect the
//! agents whose FUTURE is this cell, draw one with the *cell's* RNG
//! stream. The pooled backend reaches the identical answer in three
//! barrier-separated phases, seeded from the dormant atomic-CAS movement
//! variant (`kernels/movement_atomic.rs`) but with the tie-break made
//! deterministic:
//!
//! 1. **Claim** (parallel over agents): each mover ORs one bit into its
//!    target cell's claim byte — bit `k` means "the agent standing at
//!    `target + NEIGHBOR_OFFSETS[k]` wants in". `fetch_or` is commutative,
//!    so the byte is schedule-independent (unlike the CAS kernel, where
//!    the *first* claimant wins and the winner depends on thread timing).
//! 2. **Resolve** (parallel over row bands): each cell decodes its claim
//!    byte — the set bits, read in ascending order, are exactly the
//!    candidate list `gather_winner` builds in slot order, and the winner
//!    is drawn with the same `(seed, cell, salt)` stream. An occupied
//!    cell instead decodes its agent's *target* cell to learn whether the
//!    agent left. Each cell writes only its own `mat`/`index`/pheromone
//!    slots.
//! 3. **Apply** (parallel over row bands): arrival cells write their
//!    winner's position/tour slots — each agent wins at most one cell, so
//!    these writes are agent-unique.
//!
//! Because every draw uses the same stream as the scalar engine and every
//! candidate list is bit-equal, trajectories are **bit-identical to
//! `scalar` at every thread count** — asserted by the cross-backend
//! golden parity tests.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

use pedsim_grid::cell::{Group, CELL_EMPTY, CELL_WALL, NEIGHBOR_OFFSETS};
use pedsim_grid::property::NO_FUTURE;
use pedsim_grid::scan::{ScanMatrix, TourLengths, SCAN_INVALID};
use pedsim_grid::{DistanceData, EnvConfig, Environment, Matrix, PheromoneField};
use philox::StreamRng;
use simt::exec::pool::WorkerPool;

use crate::metrics::{Geometry, Metrics};
use crate::model::Arrival;
use crate::model::{
    aco_scan_row, aco_select, front_status, gather_winner, lem_scan_row, lem_select, ScanRow,
};
use crate::params::{IterationMode, ModelKind, SimConfig};

use super::cpu::HostWorld;
use super::lifecycle::OpenLifecycle;
use super::pipeline::{Stage, StageBackend, StepCore, StepTimings};
use super::{swap_model, Engine, ModelSwapError, KERNEL_MOVE, KERNEL_TOUR};
use crate::world::CompiledWorld;

/// Band oversubscription factor: bands per worker, so a straggler band
/// cannot serialise the stage.
const BANDS_PER_WORKER: usize = 4;

/// Split `0..n` into exactly `parts.max(1)` contiguous ranges covering
/// every index exactly once (sizes differ by at most one; trailing ranges
/// may be empty when `parts > n`). This is the tile partition every
/// pooled stage dispatches over — the partition proptest pins the
/// exactly-once property.
pub fn band_ranges(n: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let parts = parts.max(1);
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        out.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, n);
    out
}

/// Inverse of [`NEIGHBOR_OFFSETS`]: the slot `k` with
/// `NEIGHBOR_OFFSETS[k] == (dr, dc)`.
#[inline]
fn offset_slot(dr: i64, dc: i64) -> usize {
    match (dr, dc) {
        (1, 0) => 0,
        (1, -1) => 1,
        (1, 1) => 2,
        (0, -1) => 3,
        (0, 1) => 4,
        (-1, 0) => 5,
        (-1, -1) => 6,
        (-1, 1) => 7,
        _ => unreachable!("future cell is not a neighbour: ({dr},{dc})"),
    }
}

/// Write-set tracker for the `audit-runtime` tile-race detector: one
/// owner word per slot, `0` = unwritten this phase, `1` = host thread,
/// `b + 2` = pool block `b`. A [`Scatter`] lives for exactly one phase,
/// so "written twice while this Scatter exists" is precisely the
/// structural-disjointness violation the SAFETY contracts rule out.
#[cfg(feature = "audit-runtime")]
struct WriteSet {
    owners: Vec<std::sync::atomic::AtomicU32>,
}

#[cfg(feature = "audit-runtime")]
impl WriteSet {
    fn new(len: usize) -> Self {
        Self {
            owners: (0..len)
                .map(|_| std::sync::atomic::AtomicU32::new(0))
                .collect(),
        }
    }

    /// Record a write to slot `i`, panicking if any task already wrote it
    /// during this Scatter's phase.
    fn note(&self, i: usize) {
        let me = match simt::exec::pool::current_block() {
            Some(b) => b as u32 + 2,
            None => 1,
        };
        // ordering: relaxed — the swap is an atomic claim; detection only
        // needs each slot's own modification order, not cross-slot order.
        let prev = self.owners[i].swap(me, Ordering::Relaxed);
        if prev != 0 {
            panic!(
                "tile race: slot {i} written by task {} after task {} in the same phase",
                me.wrapping_sub(2),
                prev.wrapping_sub(2),
            );
        }
    }
}

/// A raw scatter handle over a mutable slice, for disjoint writes from
/// pool tasks (the host-side analogue of `simt::memory::ScatterView`,
/// without the per-slot flag machinery — disjointness here is structural:
/// cell slots are owned by the band holding the cell, agent slots by the
/// unique cell their agent wins). Under `audit-runtime` every write is
/// checked against a per-phase [`WriteSet`] instead of being trusted.
#[cfg_attr(not(feature = "audit-runtime"), derive(Clone, Copy))]
#[cfg_attr(feature = "audit-runtime", derive(Clone))]
struct Scatter<'a, T> {
    ptr: *mut T,
    len: usize,
    #[cfg(feature = "audit-runtime")]
    ws: Arc<WriteSet>,
    _life: std::marker::PhantomData<&'a mut [T]>,
}

// SAFETY: tasks write disjoint slots (see the struct docs); the barrier
// at the end of every `WorkerPool::run` orders writes before any
// subsequent read.
unsafe impl<T: Send> Sync for Scatter<'_, T> {}
unsafe impl<T: Send> Send for Scatter<'_, T> {}

impl<'a, T: Copy> Scatter<'a, T> {
    fn new(s: &'a mut [T]) -> Self {
        Self {
            ptr: s.as_mut_ptr(),
            len: s.len(),
            #[cfg(feature = "audit-runtime")]
            ws: Arc::new(WriteSet::new(s.len())),
            _life: std::marker::PhantomData,
        }
    }

    /// Write slot `i`.
    ///
    /// SAFETY: `i` must be in bounds and written by at most one concurrent
    /// task; no concurrent task may read slot `i` (except the writer).
    #[inline]
    unsafe fn write(&self, i: usize, v: T) {
        debug_assert!(i < self.len);
        #[cfg(feature = "audit-runtime")]
        self.ws.note(i);
        unsafe { *self.ptr.add(i) = v }
    }

    /// Read slot `i`.
    ///
    /// SAFETY: `i` must be in bounds and, within the current phase, only
    /// ever written by the task performing this read.
    #[inline]
    unsafe fn read(&self, i: usize) -> T {
        debug_assert!(i < self.len);
        unsafe { *self.ptr.add(i) }
    }
}

/// Live agents bucketed by contiguous row bands — the sparse iteration
/// surface of the pooled backend.
///
/// Each bucket holds the live slots whose current row falls inside its
/// band; per-slot back-pointers make insert/remove/move O(1). Stage
/// dispatch groups **buckets** into tasks balanced by *agent count*
/// (via [`RowBuckets::task_groups`]), not by row count — at corridor
/// occupancies most rows are empty, so row-balanced bands leave most
/// workers idle (the flat-thread-scaling failure this replaces).
///
/// Maintenance is single-threaded and deterministic: the movement apply
/// phase collects cross-band movers into per-task outboxes merged in
/// task order, and the lifecycle inserts/removes slots in its own
/// slot-ordered phases. Bucket membership never affects trajectories —
/// every sparse-stage write is agent- or cell-keyed — so bucket order
/// only has to be deterministic for reproducible *performance* and for
/// the audit fixtures.
pub(crate) struct RowBuckets {
    rows_per_bucket: usize,
    /// Bucket → live slots (deterministic maintenance order).
    members: Vec<Vec<u32>>,
    /// Slot → owning bucket (`u32::MAX` when dead / unbucketed).
    slot_bucket: Vec<u32>,
    /// Slot → index inside its bucket's member list.
    slot_pos: Vec<u32>,
}

impl RowBuckets {
    /// Buckets covering `height` rows in bands of roughly
    /// `height / buckets_hint` rows, over `capacity + 1` slots.
    pub(crate) fn new(height: usize, capacity: usize, buckets_hint: usize) -> Self {
        let rows_per_bucket = height.div_ceil(buckets_hint.clamp(1, height.max(1))).max(1);
        let n_buckets = height.div_ceil(rows_per_bucket).max(1);
        Self {
            rows_per_bucket,
            members: vec![Vec::new(); n_buckets],
            slot_bucket: vec![u32::MAX; capacity + 1],
            slot_pos: vec![0; capacity + 1],
        }
    }

    /// The bucket owning row `r`.
    #[inline]
    pub(crate) fn bucket_of_row(&self, r: usize) -> usize {
        r / self.rows_per_bucket
    }

    /// Number of buckets.
    pub(crate) fn n_buckets(&self) -> usize {
        self.members.len()
    }

    /// The live slots of bucket `b`.
    #[inline]
    pub(crate) fn members(&self, b: usize) -> &[u32] {
        &self.members[b]
    }

    /// Total bucketed (live) slots.
    pub(crate) fn len(&self) -> usize {
        self.members.iter().map(Vec::len).sum()
    }

    /// Drop all membership and re-insert every live slot in ascending
    /// slot order.
    pub(crate) fn rebuild(&mut self, alive: &[bool], rows: &[u16]) {
        for m in &mut self.members {
            m.clear();
        }
        self.slot_bucket.fill(u32::MAX);
        for (i, &a) in alive.iter().enumerate().skip(1) {
            if a {
                self.insert(i as u32, rows[i]);
            }
        }
    }

    /// Add a live slot standing on `row`.
    pub(crate) fn insert(&mut self, slot: u32, row: u16) {
        debug_assert_eq!(self.slot_bucket[slot as usize], u32::MAX);
        let b = self.bucket_of_row(row as usize);
        self.slot_bucket[slot as usize] = b as u32;
        self.slot_pos[slot as usize] = self.members[b].len() as u32;
        self.members[b].push(slot);
    }

    /// Remove a slot (despawn): O(1) swap-remove, fixing the back-pointer
    /// of the member swapped into its place.
    pub(crate) fn remove(&mut self, slot: u32) {
        let b = self.slot_bucket[slot as usize] as usize;
        debug_assert_ne!(b, u32::MAX as usize, "removing unbucketed slot {slot}");
        let p = self.slot_pos[slot as usize] as usize;
        self.members[b].swap_remove(p);
        if let Some(&moved) = self.members[b].get(p) {
            self.slot_pos[moved as usize] = p as u32;
        }
        self.slot_bucket[slot as usize] = u32::MAX;
    }

    /// Re-home a slot that moved to `row` — a no-op unless the move
    /// crossed a band boundary (moves are ≤ 1 row per step, so this is
    /// the incremental path: most steps touch nothing).
    pub(crate) fn move_to(&mut self, slot: u32, row: u16) {
        let b = self.bucket_of_row(row as usize);
        if self.slot_bucket[slot as usize] as usize != b {
            self.remove(slot);
            self.insert(slot, row);
        }
    }

    /// Partition the buckets into `parts` contiguous groups balanced by
    /// **member count**: group `t` closes once the cumulative count
    /// reaches `⌈(t+1)·total/parts⌉`. Trailing empty buckets may stay
    /// unassigned (they contribute no agents).
    pub(crate) fn task_groups(&self, parts: usize) -> Vec<std::ops::Range<usize>> {
        let parts = parts.max(1);
        let total = self.len();
        let mut out = Vec::with_capacity(parts);
        let mut b = 0;
        let mut acc = 0usize;
        for t in 0..parts {
            let start = b;
            let target = ((t + 1) * total).div_ceil(parts);
            while b < self.n_buckets() && acc < target {
                acc += self.members[b].len();
                b += 1;
            }
            out.push(start..b);
        }
        out
    }

    /// Cross-check the bucket structure against the liveness table: every
    /// live slot bucketed exactly once, in the bucket its row maps to,
    /// with a correct back-pointer; no dead slot bucketed.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn check_consistency(&self, alive: &[bool], rows: &[u16]) -> Result<(), String> {
        let mut seen = vec![false; alive.len()];
        for (b, m) in self.members.iter().enumerate() {
            for (p, &slot) in m.iter().enumerate() {
                let i = slot as usize;
                if seen[i] {
                    return Err(format!("slot {slot} bucketed twice"));
                }
                seen[i] = true;
                if !alive[i] {
                    return Err(format!("dead slot {slot} in bucket {b}"));
                }
                if self.bucket_of_row(rows[i] as usize) != b {
                    return Err(format!("slot {slot} (row {}) in bucket {b}", rows[i]));
                }
                if self.slot_bucket[i] != b as u32 || self.slot_pos[i] != p as u32 {
                    return Err(format!("slot {slot}: stale back-pointer"));
                }
            }
        }
        if let Some(missing) = (1..alive.len()).find(|&i| alive[i] && !seen[i]) {
            return Err(format!("live slot {missing} not bucketed"));
        }
        Ok(())
    }
}

/// The tile-parallel pooled engine.
pub struct PooledEngine {
    core: StepCore,
    backend: PooledBackend,
}

/// The pooled engine's kernel-stage executor: the same host-side world
/// the scalar backend loops over, plus the worker pool and the per-cell
/// claim bytes.
struct PooledBackend {
    cfg: SimConfig,
    geom: Geometry,
    env: Environment,
    mat_next: Matrix<u8>,
    index_next: Matrix<u32>,
    scan: ScanMatrix,
    tour: TourLengths,
    pher: Option<PheromoneField>,
    pher_next: Option<PheromoneField>,
    dist: Arc<DistanceData>,
    seed: u64,
    pool: WorkerPool,
    /// One claim byte per cell: bit `k` set means the agent at
    /// `cell + NEIGHBOR_OFFSETS[k]` targets this cell.
    claims: Vec<AtomicU8>,
    /// When set, every stage launch permutes its band issue order with a
    /// Philox schedule keyed by `(seed, launch_counter)` — the
    /// interleaving explorer's handle into this backend. `None` (the
    /// default) dispatches bands in natural order.
    schedule_seed: Option<u64>,
    /// Monotonic launch counter keying the per-launch permutations.
    launches: std::cell::Cell<u64>,
    /// Traversal mode, resolved from the configuration at build time.
    mode: IterationMode,
    /// Live agents bucketed by row band (`Some` iff sparse mode).
    buckets: Option<RowBuckets>,
    /// Sparse movement decode output, agent-keyed: the destination cell
    /// (linear) the agent won this step, `u32::MAX` = stays put.
    won: Vec<u32>,
}

/// Run `f` over `0..parts` on the pool, optionally permuting the issue
/// order with the schedule key. A free function (not a method) so stages
/// can call it while holding field borrows of the backend.
fn dispatch(
    pool: &WorkerPool,
    schedule: Option<(u64, u64)>,
    parts: usize,
    f: &(dyn Fn(usize) + Sync),
) {
    match schedule {
        None => pool.run(parts, f),
        Some((seed, launch)) => {
            let perm = simt::exec::explore::permutation(seed, launch, parts);
            simt::exec::explore::run_permuted(pool, &perm, f);
        }
    }
}

impl PooledEngine {
    /// Build the engine with `threads` pool workers (runs the
    /// data-preparation stage, like the other backends). A thin
    /// compile-then-construct wrapper over [`PooledEngine::from_world`].
    pub fn new(cfg: SimConfig, threads: usize) -> Self {
        let world = CompiledWorld::compile(&cfg);
        Self::from_world(&world, cfg, threads)
    }

    /// Build per-replica engine state with `threads` pool workers from an
    /// already compiled world. Bit-identical to [`PooledEngine::new`] on
    /// the same configuration.
    pub fn from_world(
        world: &std::sync::Arc<CompiledWorld>,
        cfg: SimConfig,
        threads: usize,
    ) -> Self {
        debug_assert!(
            world.matches(&cfg),
            "CompiledWorld was compiled from a different configuration"
        );
        let env = world.environment();
        let dist = world.distance();
        let geom = world.geometry();
        let core = StepCore::for_world(&cfg, &env, geom);
        let n = env.total_agents();
        let groups = env.n_groups();
        let (pher, pher_next) = match cfg.model {
            ModelKind::Aco(p) => (
                Some(PheromoneField::with_groups(
                    env.height(),
                    env.width(),
                    p.tau0,
                    groups,
                )),
                Some(PheromoneField::with_groups(
                    env.height(),
                    env.width(),
                    p.tau0,
                    groups,
                )),
            ),
            ModelKind::Lem(_) => (None, None),
        };
        let (h, w) = (env.height(), env.width());
        let seed = cfg.env.seed;
        let mode = cfg.iteration.resolve(env.live_count(), h * w);
        let pool = WorkerPool::new(threads);
        let buckets = (mode == IterationMode::Sparse).then(|| {
            // Finer than the task count so count-balanced grouping has
            // room to equalise (BANDS_PER_WORKER × 4 buckets per worker).
            let hint = pool.workers() * BANDS_PER_WORKER * 4;
            let mut b = RowBuckets::new(h, n, hint);
            b.rebuild(&env.alive, &env.props.row);
            b
        });
        Self {
            core,
            backend: PooledBackend {
                cfg,
                geom,
                mat_next: Matrix::filled(h, w, CELL_EMPTY),
                index_next: Matrix::filled(h, w, 0u32),
                scan: ScanMatrix::new(n),
                tour: TourLengths::new(n),
                pher,
                pher_next,
                dist,
                seed,
                pool,
                claims: (0..h * w).map(|_| AtomicU8::new(0)).collect(),
                schedule_seed: None,
                launches: std::cell::Cell::new(0),
                mode,
                buckets,
                won: vec![u32::MAX; n + 1],
                env,
            },
        }
    }

    /// Number of pool worker threads.
    pub fn threads(&self) -> usize {
        self.backend.pool.workers()
    }

    /// Permute every stage launch's band issue order with a Philox
    /// schedule keyed on `seed` (or restore natural order with `None`).
    ///
    /// Trajectories are claimed to be schedule-independent; the
    /// interleaving-exploration tests drive this knob over hundreds of
    /// seeds and assert bit-identity against the scalar backend.
    pub fn set_schedule_seed(&mut self, seed: Option<u64>) {
        self.backend.schedule_seed = seed;
    }

    /// Borrow the current environment state.
    pub fn environment(&self) -> &Environment {
        &self.backend.env
    }

    /// Replace the model parameters mid-run (the panic-alarm extension).
    pub fn set_model(&mut self, model: ModelKind) -> Result<(), ModelSwapError> {
        swap_model(&mut self.backend.cfg.model, model)
    }

    /// Borrow the pheromone field (ACO only).
    pub fn pheromone(&self) -> Option<&PheromoneField> {
        self.backend.pher.as_ref()
    }

    /// Borrow accumulated tour lengths.
    pub fn tour_lengths(&self) -> &TourLengths {
        &self.backend.tour
    }
}

impl PooledBackend {
    /// Bands to dispatch per stage.
    fn parts(&self) -> usize {
        self.pool.workers() * BANDS_PER_WORKER
    }

    /// Schedule key for the next launch, if permuted dispatch is on.
    /// Call at the *top* of a phase, before taking field borrows.
    fn next_schedule(&self) -> Option<(u64, u64)> {
        let seed = self.schedule_seed?;
        let launch = self.launches.get();
        self.launches.set(launch + 1);
        Some((seed, launch))
    }

    fn stage_init(&mut self) {
        // Supporting kernel (§IV.e): clear scan + FUTURE, band-parallel
        // fills (each band owns a contiguous slice of each array).
        let parts = self.parts();
        let schedule = self.next_schedule();
        let sv = Scatter::new(&mut self.scan.vals);
        let si = Scatter::new(&mut self.scan.idxs);
        let fr = Scatter::new(&mut self.env.props.future_row);
        let fc = Scatter::new(&mut self.env.props.future_col);
        let vb = band_ranges(sv.len, parts);
        let fb = band_ranges(fr.len, parts);
        dispatch(&self.pool, schedule, parts, &|b| {
            for i in vb[b].clone() {
                // SAFETY: band-disjoint slots.
                unsafe {
                    sv.write(i, 0.0);
                    si.write(i, SCAN_INVALID);
                }
            }
            for i in fb[b].clone() {
                // SAFETY: band-disjoint slots.
                unsafe {
                    fr.write(i, NO_FUTURE);
                    fc.write(i, NO_FUTURE);
                }
            }
        });
    }

    fn stage_initial_calc(&mut self) {
        // §IV.b over row bands: writes are keyed by the cell's agent, and
        // every agent stands on exactly one cell.
        let (h, w) = (self.geom.height, self.geom.width);
        let parts = self.parts();
        let schedule = self.next_schedule();
        let mat = &self.env.mat;
        let index = &self.env.index;
        let dist = self.dist.dist_ref();
        let model = self.cfg.model;
        let pher = self.pher.as_ref();
        let sv = Scatter::new(&mut self.scan.vals);
        let si = Scatter::new(&mut self.scan.idxs);
        let front = Scatter::new(&mut self.env.props.front);
        let front_k = Scatter::new(&mut self.env.props.front_k);
        let bands = band_ranges(h, parts);
        dispatch(&self.pool, schedule, parts, &|b| {
            let occ = |r: i64, c: i64| mat.get_or(r, c, CELL_WALL);
            for r in bands[b].clone() {
                for c in 0..w {
                    let a = index.get(r, c);
                    if a == 0 {
                        continue;
                    }
                    let label = mat.get(r, c);
                    let g = Group::from_label(label).expect("indexed cell has group label");
                    let row: ScanRow = match model {
                        ModelKind::Lem(p) => {
                            lem_scan_row(&occ, dist, g, r as i64, c as i64, p.scan_range)
                        }
                        ModelKind::Aco(p) => {
                            let tf = pher.expect("ACO has pheromone").of(g);
                            let tau = |rr: i64, cc: i64| tf.get_or(rr, cc, 0.0);
                            aco_scan_row(&occ, &tau, dist, &p, g, r as i64, c as i64)
                        }
                    };
                    let ai = a as usize;
                    for slot in 0..8 {
                        // SAFETY: agent-unique slots (one agent per cell).
                        unsafe {
                            sv.write(ai * 8 + slot, row.vals[slot]);
                            si.write(ai * 8 + slot, row.idxs[slot]);
                        }
                    }
                    let fk = dist.front_k(g, r as i64, c as i64);
                    // SAFETY: agent-unique slots.
                    unsafe {
                        front.write(ai, front_status(&occ, fk, r as i64, c as i64));
                        front_k.write(ai, fk as u8);
                    }
                }
            }
        });
    }

    fn stage_tour(&mut self, step_no: u64) {
        // §IV.c over agent bands: each agent writes only its own FUTURE
        // slots, with its own RNG stream.
        let salt = step_no * 4 + KERNEL_TOUR;
        let n = self.geom.total_agents();
        let parts = self.parts();
        let schedule = self.next_schedule();
        let seed = self.seed;
        let model = self.cfg.model;
        let scan = &self.scan;
        let alive = &self.env.alive;
        let props = &mut self.env.props;
        let front = &props.front;
        let front_k = &props.front_k;
        let prow = &props.row;
        let pcol = &props.col;
        let fr = Scatter::new(&mut props.future_row);
        let fc = Scatter::new(&mut props.future_col);
        let bands = band_ranges(n, parts);
        dispatch(&self.pool, schedule, parts, &|b| {
            for i in bands[b].clone() {
                let a = i + 1;
                if !alive[a] {
                    continue;
                }
                let mut rng = StreamRng::with_offset(seed, a as u64, salt << 4);
                let row = ScanRow {
                    vals: scan.row_vals(a).try_into().expect("8 slots"),
                    idxs: scan.row_idxs(a).try_into().expect("8 slots"),
                };
                let k = match model {
                    ModelKind::Lem(p) => {
                        lem_select(&row, front[a], front_k[a] as usize, &p, &mut rng)
                    }
                    ModelKind::Aco(p) => {
                        aco_select(&row, front[a], front_k[a] as usize, &p, &mut rng)
                    }
                };
                // SAFETY: agent-unique slots.
                unsafe {
                    match k {
                        Some(k) => {
                            let (dr, dc) = NEIGHBOR_OFFSETS[k];
                            fr.write(a, (i64::from(prow[a]) + dr) as u16);
                            fc.write(a, (i64::from(pcol[a]) + dc) as u16);
                        }
                        None => {
                            fr.write(a, NO_FUTURE);
                            fc.write(a, NO_FUTURE);
                        }
                    }
                }
            }
        });
    }

    /// Decode the winner at `(r, c)` from the claim bytes — the parallel
    /// equivalent of [`gather_winner`]: the set bits of the claim byte,
    /// in ascending order, are the slot-ordered candidate list, and the
    /// draw uses the identical cell-keyed stream.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn claimed_winner(
        mat: &Matrix<u8>,
        index: &Matrix<u32>,
        claims: &[AtomicU8],
        seed: u64,
        counter_base: u64,
        w: usize,
        r: usize,
        c: usize,
    ) -> Option<Arrival> {
        if mat.get(r, c) != CELL_EMPTY {
            return None;
        }
        let lin = r * w + c;
        // ordering: relaxed — the claim phase's end-of-launch barrier
        // (the pool's state mutex) already published every fetch_or;
        // within the resolve phase the byte is read-only.
        let mut bits = claims[lin].load(Ordering::Relaxed);
        if bits == 0 {
            return None;
        }
        let count = bits.count_ones();
        let pick = if count == 1 {
            0
        } else {
            let mut rng = StreamRng::with_offset(seed, lin as u64, counter_base);
            rng.bounded_u32(count) as usize
        };
        for _ in 0..pick {
            bits &= bits - 1;
        }
        let k = bits.trailing_zeros() as usize;
        let (dr, dc) = NEIGHBOR_OFFSETS[k];
        let (nr, nc) = ((r as i64 + dr) as usize, (c as i64 + dc) as usize);
        Some(Arrival {
            agent: index.get(nr, nc),
            from_k: k,
        })
    }

    fn stage_movement(&mut self, step_no: u64) {
        // §IV.d in three barrier-separated phases (module docs).
        let salt = step_no * 4 + KERNEL_MOVE;
        let counter_base = salt << 4;
        let (h, w) = (self.geom.height, self.geom.width);
        let n = self.geom.total_agents();
        let parts = self.parts();
        let aco = match self.cfg.model {
            ModelKind::Aco(p) => Some(p),
            ModelKind::Lem(_) => None,
        };

        // Phase 1: reset + register claims (fetch_or is commutative, so
        // the claim bytes are schedule-independent).
        {
            let reset_schedule = self.next_schedule();
            let claim_schedule = self.next_schedule();
            let claims = &self.claims;
            let cell_bands = band_ranges(h * w, parts);
            dispatch(&self.pool, reset_schedule, parts, &|b| {
                for i in cell_bands[b].clone() {
                    // ordering: relaxed — band-disjoint slots; the launch
                    // barrier publishes the zeroes to the claim phase.
                    claims[i].store(0, Ordering::Relaxed);
                }
            });
            let props = &self.env.props;
            let agent_bands = band_ranges(n, parts);
            dispatch(&self.pool, claim_schedule, parts, &|b| {
                for i in agent_bands[b].clone() {
                    let a = i + 1;
                    let fr = props.future_row[a];
                    if fr == NO_FUTURE {
                        continue;
                    }
                    let fc = props.future_col[a];
                    let k = offset_slot(
                        i64::from(props.row[a]) - i64::from(fr),
                        i64::from(props.col[a]) - i64::from(fc),
                    );
                    // ordering: relaxed — fetch_or commutes, so only the
                    // final claim byte matters, and the launch barrier
                    // publishes it before the resolve phase reads.
                    claims[fr as usize * w + fc as usize].fetch_or(1 << k, Ordering::Relaxed);
                }
            });
        }

        // Phase 2: resolve — every cell writes its own mat/index (and
        // pheromone) slots only, so row bands cannot conflict.
        {
            let schedule = self.next_schedule();
            let mat = &self.env.mat;
            let index = &self.env.index;
            let props = &self.env.props;
            let tour = &self.tour;
            let claims = &self.claims;
            let seed = self.seed;
            let mat_out = Scatter::new(self.mat_next.as_mut_slice());
            let idx_out = Scatter::new(self.index_next.as_mut_slice());
            let pin = self.pher.as_ref();
            let pouts: Vec<Scatter<'_, f32>> = match self.pher_next.as_mut() {
                Some(p) => p
                    .planes_mut()
                    .iter_mut()
                    .map(|m| Scatter::new(m.as_mut_slice()))
                    .collect(),
                None => Vec::new(),
            };
            let bands = band_ranges(h, parts);
            dispatch(&self.pool, schedule, parts, &|b| {
                for r in bands[b].clone() {
                    for c in 0..w {
                        let lin = r * w + c;
                        let arrival =
                            Self::claimed_winner(mat, index, claims, seed, counter_base, w, r, c);
                        let own = index.get(r, c);
                        let (new_label, new_index) = if let Some(arr) = arrival {
                            (props.id[arr.agent as usize], arr.agent)
                        } else if own != 0 && props.future_row[own as usize] != NO_FUTURE {
                            // Our agent wants to leave: decode its target
                            // cell to learn whether it won there.
                            let fr = props.future_row[own as usize] as usize;
                            let fc = props.future_col[own as usize] as usize;
                            let wins = Self::claimed_winner(
                                mat,
                                index,
                                claims,
                                seed,
                                counter_base,
                                w,
                                fr,
                                fc,
                            )
                            .is_some_and(|a| a.agent == own);
                            if wins {
                                (CELL_EMPTY, 0)
                            } else {
                                (mat.get(r, c), own)
                            }
                        } else {
                            (mat.get(r, c), own)
                        };
                        // SAFETY: cell-unique slots within this band.
                        unsafe {
                            mat_out.write(lin, new_label);
                            idx_out.write(lin, new_index);
                        }

                        if let (Some(p), Some(pin)) = (aco, pin) {
                            let deposit: Option<(usize, f32)> = arrival.map(|arr| {
                                let a = arr.agent as usize;
                                let l_new = tour.get(a) + arr.step_len();
                                let g = Group::from_label(props.id[a])
                                    .expect("arrival has a group label");
                                (g.index(), p.q / l_new)
                            });
                            for (gi, pout) in pouts.iter().enumerate() {
                                let g = Group::new(gi);
                                let dep = match deposit {
                                    Some((dg, amount)) if dg == gi => amount,
                                    _ => 0.0,
                                };
                                let next = PheromoneField::fused_update(
                                    pin.of(g).get(r, c),
                                    p.tau0,
                                    p.rho,
                                    dep,
                                );
                                // SAFETY: cell-unique slot.
                                unsafe { pout.write(lin, next) };
                            }
                        }
                    }
                }
            });
        }

        // Phase 3: apply — arrival cells update their winner's slots;
        // each agent wins at most one cell, so the writes (and the
        // read-modify-write of the tour) are agent-unique.
        {
            let schedule = self.next_schedule();
            let index = &self.env.index;
            let index_next = &self.index_next;
            let props = &mut self.env.props;
            let prow = Scatter::new(&mut props.row);
            let pcol = Scatter::new(&mut props.col);
            let ppos = Scatter::new(&mut self.env.pos);
            let tours = Scatter::new(&mut self.tour.len);
            let track_tour = aco.is_some();
            let bands = band_ranges(h, parts);
            dispatch(&self.pool, schedule, parts, &|b| {
                for r in bands[b].clone() {
                    for c in 0..w {
                        let a = index_next.get(r, c);
                        if a != 0 && index.get(r, c) != a {
                            let ai = a as usize;
                            // SAFETY: agent-unique slots; only this task
                            // reads/writes index `ai` this phase.
                            unsafe {
                                let (or, oc) = (prow.read(ai), pcol.read(ai));
                                let dr = (r as i64 - i64::from(or)).unsigned_abs();
                                let dc = (c as i64 - i64::from(oc)).unsigned_abs();
                                let step_len = if dr + dc == 2 {
                                    std::f32::consts::SQRT_2
                                } else {
                                    1.0
                                };
                                prow.write(ai, r as u16);
                                pcol.write(ai, c as u16);
                                ppos.write(ai, (r * w + c) as u32);
                                if track_tour {
                                    tours.write(ai, tours.read(ai) + step_len);
                                }
                            }
                        }
                    }
                }
            });
        }

        std::mem::swap(&mut self.env.mat, &mut self.mat_next);
        std::mem::swap(&mut self.env.index, &mut self.index_next);
        if aco.is_some() {
            std::mem::swap(&mut self.pher, &mut self.pher_next);
        }
    }

    // ---- sparse (agent-centric) stage variants ----------------------
    //
    // Tasks iterate bucket groups of live agents (count-balanced via
    // [`RowBuckets::task_groups`]) instead of row bands of cells. Every
    // write is agent-keyed (each live agent sits in exactly one bucket,
    // each bucket in exactly one task group) or lands on a globally
    // unique cell (movement-apply: all winners' source cells were
    // occupied and all destination cells empty at step start, so the two
    // sets are disjoint and per-winner unique). Under `audit-runtime`
    // the per-phase [`WriteSet`] checks exactly this — an overlapping
    // bucket assignment double-writes an agent slot and panics.

    fn stage_init_sparse(&mut self) {
        // Only live slots are read downstream; clear their futures only.
        let parts = self.parts();
        let schedule = self.next_schedule();
        let buckets = self.buckets.as_ref().expect("sparse mode has buckets");
        let groups = buckets.task_groups(parts);
        let fr = Scatter::new(&mut self.env.props.future_row);
        let fc = Scatter::new(&mut self.env.props.future_col);
        dispatch(&self.pool, schedule, parts, &|t| {
            for bkt in groups[t].clone() {
                for &a in buckets.members(bkt) {
                    // SAFETY: agent-unique slots (bucket-disjoint tasks).
                    unsafe {
                        fr.write(a as usize, NO_FUTURE);
                        fc.write(a as usize, NO_FUTURE);
                    }
                }
            }
        });
    }

    fn stage_initial_calc_sparse(&mut self) {
        // One pass per live agent: scan rows and front status are
        // agent-keyed, so bucket-disjoint tasks cannot conflict.
        let parts = self.parts();
        let schedule = self.next_schedule();
        let buckets = self.buckets.as_ref().expect("sparse mode has buckets");
        let groups = buckets.task_groups(parts);
        let mat = &self.env.mat;
        let dist = self.dist.dist_ref();
        let model = self.cfg.model;
        let pher = self.pher.as_ref();
        let props = &mut self.env.props;
        let prow = &props.row;
        let pcol = &props.col;
        let ids = &props.id;
        let sv = Scatter::new(&mut self.scan.vals);
        let si = Scatter::new(&mut self.scan.idxs);
        let front = Scatter::new(&mut props.front);
        let front_k = Scatter::new(&mut props.front_k);
        dispatch(&self.pool, schedule, parts, &|t| {
            let occ = |r: i64, c: i64| mat.get_or(r, c, CELL_WALL);
            for bkt in groups[t].clone() {
                for &a in buckets.members(bkt) {
                    let ai = a as usize;
                    let (r, c) = (prow[ai] as i64, pcol[ai] as i64);
                    let g = Group::from_label(ids[ai]).expect("live slot has group label");
                    let row: ScanRow = match model {
                        ModelKind::Lem(p) => lem_scan_row(&occ, dist, g, r, c, p.scan_range),
                        ModelKind::Aco(p) => {
                            let tf = pher.expect("ACO has pheromone").of(g);
                            let tau = |rr: i64, cc: i64| tf.get_or(rr, cc, 0.0);
                            aco_scan_row(&occ, &tau, dist, &p, g, r, c)
                        }
                    };
                    for slot in 0..8 {
                        // SAFETY: agent-unique slots.
                        unsafe {
                            sv.write(ai * 8 + slot, row.vals[slot]);
                            si.write(ai * 8 + slot, row.idxs[slot]);
                        }
                    }
                    let fk = dist.front_k(g, r, c);
                    // SAFETY: agent-unique slots.
                    unsafe {
                        front.write(ai, front_status(&occ, fk, r, c));
                        front_k.write(ai, fk as u8);
                    }
                }
            }
        });
    }

    fn stage_tour_sparse(&mut self, step_no: u64) {
        // Identical per-agent work to the dense tour, driven from the
        // count-balanced bucket groups instead of capacity bands.
        let salt = step_no * 4 + KERNEL_TOUR;
        let parts = self.parts();
        let schedule = self.next_schedule();
        let buckets = self.buckets.as_ref().expect("sparse mode has buckets");
        let groups = buckets.task_groups(parts);
        let seed = self.seed;
        let model = self.cfg.model;
        let scan = &self.scan;
        let props = &mut self.env.props;
        let front = &props.front;
        let front_k = &props.front_k;
        let prow = &props.row;
        let pcol = &props.col;
        let fr = Scatter::new(&mut props.future_row);
        let fc = Scatter::new(&mut props.future_col);
        dispatch(&self.pool, schedule, parts, &|t| {
            for bkt in groups[t].clone() {
                for &a in buckets.members(bkt) {
                    let a = a as usize;
                    let mut rng = StreamRng::with_offset(seed, a as u64, salt << 4);
                    let row = ScanRow {
                        vals: scan.row_vals(a).try_into().expect("8 slots"),
                        idxs: scan.row_idxs(a).try_into().expect("8 slots"),
                    };
                    let k = match model {
                        ModelKind::Lem(p) => {
                            lem_select(&row, front[a], front_k[a] as usize, &p, &mut rng)
                        }
                        ModelKind::Aco(p) => {
                            aco_select(&row, front[a], front_k[a] as usize, &p, &mut rng)
                        }
                    };
                    // SAFETY: agent-unique slots.
                    unsafe {
                        match k {
                            Some(k) => {
                                let (dr, dc) = NEIGHBOR_OFFSETS[k];
                                fr.write(a, (i64::from(prow[a]) + dr) as u16);
                                fc.write(a, (i64::from(pcol[a]) + dc) as u16);
                            }
                            None => {
                                fr.write(a, NO_FUTURE);
                                fc.write(a, NO_FUTURE);
                            }
                        }
                    }
                }
            }
        });
    }

    fn stage_movement_sparse(&mut self, step_no: u64) {
        // Claim-free movement: each live agent recomputes the winner at
        // its *target* cell with that cell's own stream (the identical
        // draw the dense resolve makes there) and records whether it won;
        // the apply phase then moves exactly the winners, in place.
        let salt = step_no * 4 + KERNEL_MOVE;
        let counter_base = salt << 4;
        let w = self.geom.width;
        let parts = self.parts();
        let aco = match self.cfg.model {
            ModelKind::Aco(p) => Some(p),
            ModelKind::Lem(_) => None,
        };
        let groups = {
            let buckets = self.buckets.as_ref().expect("sparse mode has buckets");
            buckets.task_groups(parts)
        };

        // Pheromone evaporation sweep (ACO): the field itself is dense,
        // so every plane evaporates band-parallel; the apply phase then
        // overwrites the winners' destination slots with the fused
        // evaporate+deposit value the dense resolve computes there.
        if let Some(p) = aco {
            let schedule = self.next_schedule();
            let pin = self.pher.as_ref().expect("ACO pheromone");
            let pouts: Vec<Scatter<'_, f32>> = self
                .pher_next
                .as_mut()
                .expect("ACO pheromone")
                .planes_mut()
                .iter_mut()
                .map(|m| Scatter::new(m.as_mut_slice()))
                .collect();
            let planes = pin.planes();
            let cells = self.geom.height * w;
            let cell_bands = band_ranges(cells, parts);
            dispatch(&self.pool, schedule, parts, &|b| {
                for (src, pout) in planes.iter().zip(&pouts) {
                    let src = src.as_slice();
                    for i in cell_bands[b].clone() {
                        // SAFETY: band-disjoint slots.
                        unsafe {
                            pout.write(i, PheromoneField::fused_update(src[i], p.tau0, p.rho, 0.0));
                        }
                    }
                }
            });
        }

        // Decode phase: agent-keyed writes into `won`.
        {
            let schedule = self.next_schedule();
            let buckets = self.buckets.as_ref().expect("sparse mode has buckets");
            let mat = &self.env.mat;
            let index = &self.env.index;
            let props = &self.env.props;
            let seed = self.seed;
            let won = Scatter::new(&mut self.won);
            dispatch(&self.pool, schedule, parts, &|t| {
                let occ = |r: i64, c: i64| mat.get_or(r, c, CELL_WALL);
                let idx = |r: i64, c: i64| index.get_or(r, c, 0);
                let fut = |a: u32| (props.future_row[a as usize], props.future_col[a as usize]);
                for bkt in groups[t].clone() {
                    for &a in buckets.members(bkt) {
                        let ai = a as usize;
                        let fr = props.future_row[ai];
                        let dst = if fr == NO_FUTURE {
                            u32::MAX
                        } else {
                            let fc = props.future_col[ai];
                            let tlin = fr as usize * w + fc as usize;
                            let mut trng = StreamRng::with_offset(seed, tlin as u64, counter_base);
                            match gather_winner(
                                &occ,
                                &idx,
                                &fut,
                                i64::from(fr),
                                i64::from(fc),
                                &mut trng,
                            ) {
                                Some(arr) if arr.agent == a => tlin as u32,
                                _ => u32::MAX,
                            }
                        };
                        // SAFETY: agent-unique slot — each live agent sits
                        // in exactly one bucket and each bucket in exactly
                        // one task group (the audit fixture seeds the
                        // violation of precisely this).
                        unsafe { won.write(ai, dst) };
                    }
                }
            });
        }

        // Apply phase, in place: winners' source cells (occupied at step
        // start) and destination cells (empty at step start) are disjoint
        // per-winner-unique sets, so the grid writes cannot conflict;
        // property/tour writes are agent-keyed. Cross-band movers go to
        // per-task outboxes, merged serially in task order below.
        let outboxes: Vec<std::sync::Mutex<Vec<(u32, u16)>>> = (0..parts)
            .map(|_| std::sync::Mutex::new(Vec::new()))
            .collect();
        {
            let schedule = self.next_schedule();
            let buckets = self.buckets.as_ref().expect("sparse mode has buckets");
            let won = &self.won;
            let ids = &self.env.props.id;
            let mat = Scatter::new(self.env.mat.as_mut_slice());
            let index = Scatter::new(self.env.index.as_mut_slice());
            let prow = Scatter::new(&mut self.env.props.row);
            let pcol = Scatter::new(&mut self.env.props.col);
            let ppos = Scatter::new(&mut self.env.pos);
            let tours = Scatter::new(&mut self.tour.len);
            let pin = self.pher.as_ref();
            let pouts: Vec<Scatter<'_, f32>> = match self.pher_next.as_mut() {
                Some(p) => p
                    .planes_mut()
                    .iter_mut()
                    .map(|m| Scatter::new(m.as_mut_slice()))
                    .collect(),
                None => Vec::new(),
            };
            dispatch(&self.pool, schedule, parts, &|t| {
                let mut moved: Vec<(u32, u16)> = Vec::new();
                for bkt in groups[t].clone() {
                    for &a in buckets.members(bkt) {
                        let ai = a as usize;
                        let dst = won[ai];
                        if dst == u32::MAX {
                            continue;
                        }
                        let (nr, nc) = ((dst as usize / w) as u16, (dst as usize % w) as u16);
                        // SAFETY: `prow`/`pcol`/`ppos`/`tours` slots are
                        // agent-unique; `mat`/`index` writes land on this
                        // winner's own source and destination cells, which
                        // are globally unique across winners (see phase
                        // comment).
                        unsafe {
                            let (or_, oc_) = (prow.read(ai), pcol.read(ai));
                            let src = or_ as usize * w + oc_ as usize;
                            let dr = (i64::from(nr) - i64::from(or_)).unsigned_abs();
                            let dc = (i64::from(nc) - i64::from(oc_)).unsigned_abs();
                            let step_len = if dr + dc == 2 {
                                std::f32::consts::SQRT_2
                            } else {
                                1.0
                            };
                            if let (Some(p), Some(pin)) = (aco, pin) {
                                let l_new = tours.read(ai) + step_len;
                                let g = Group::from_label(ids[ai]).expect("winner has group label");
                                let next = PheromoneField::fused_update(
                                    pin.of(g).as_slice()[dst as usize],
                                    p.tau0,
                                    p.rho,
                                    p.q / l_new,
                                );
                                pouts[g.index()].write(dst as usize, next);
                                tours.write(ai, l_new);
                            }
                            mat.write(src, CELL_EMPTY);
                            index.write(src, 0);
                            mat.write(dst as usize, ids[ai]);
                            index.write(dst as usize, a);
                            prow.write(ai, nr);
                            pcol.write(ai, nc);
                            ppos.write(ai, dst);
                        }
                        if buckets.bucket_of_row(nr as usize) != bkt {
                            moved.push((a, nr));
                        }
                    }
                }
                if !moved.is_empty() {
                    // One uncontended lock per task, outside the hot loop.
                    *outboxes[t].lock().expect("outbox poisoned") = moved;
                }
            });
        }

        // Serial maintenance: merge the outboxes in task order (a fixed,
        // schedule-independent order) and flip the pheromone planes.
        let buckets = self.buckets.as_mut().expect("sparse mode has buckets");
        for outbox in outboxes {
            for (a, nr) in outbox.into_inner().expect("outbox poisoned") {
                buckets.move_to(a, nr);
            }
        }
        if aco.is_some() {
            std::mem::swap(&mut self.pher, &mut self.pher_next);
        }
    }
}

impl StageBackend for PooledBackend {
    fn run_stage(&mut self, stage: Stage, step_no: u64, _rec: &mut pedsim_obs::Recorder) {
        // Like the scalar backend, no launch machinery to report: the
        // kernel counters stay at the zeros the core pre-registered.
        let sparse = self.mode == IterationMode::Sparse;
        match stage {
            Stage::Init if sparse => self.stage_init_sparse(),
            Stage::Init => self.stage_init(),
            Stage::InitialCalc if sparse => self.stage_initial_calc_sparse(),
            Stage::InitialCalc => self.stage_initial_calc(),
            Stage::Tour if sparse => self.stage_tour_sparse(step_no),
            Stage::Tour => self.stage_tour(step_no),
            Stage::Movement if sparse => self.stage_movement_sparse(step_no),
            Stage::Movement => self.stage_movement(step_no),
            Stage::Lifecycle | Stage::Metrics => unreachable!("core-driven stage"),
        }
    }

    fn observe(&self, metrics: &mut Metrics) {
        metrics.observe(&self.env.props.row, &self.env.props.col);
    }

    fn run_lifecycle(
        &mut self,
        lifecycle: &OpenLifecycle,
        step: u64,
        metrics: Option<&mut Metrics>,
    ) {
        let mut world = HostWorld {
            env: &mut self.env,
            tour: &mut self.tour,
            buckets: self.buckets.as_mut(),
        };
        lifecycle.run_step(&mut world, step, metrics);
        #[cfg(debug_assertions)]
        if let Some(b) = &self.buckets {
            b.check_consistency(&self.env.alive, &self.env.props.row)
                .expect("buckets consistent after lifecycle");
        }
    }
}

impl Engine for PooledEngine {
    fn step(&mut self) {
        self.core.step(&mut self.backend);
    }

    fn steps_done(&self) -> u64 {
        self.core.steps_done()
    }

    fn metrics(&self) -> Option<&Metrics> {
        self.core.metrics()
    }

    fn step_timings(&self) -> &StepTimings {
        self.core.timings()
    }

    fn telemetry(&self) -> &pedsim_obs::Recorder {
        self.core.recorder()
    }

    fn model(&self) -> ModelKind {
        self.backend.cfg.model
    }

    fn iteration_mode(&self) -> IterationMode {
        self.backend.mode
    }

    fn mat_snapshot(&self) -> Matrix<u8> {
        self.backend.env.mat.clone()
    }

    fn positions(&self) -> (Vec<u16>, Vec<u16>) {
        (
            self.backend.env.props.row.clone(),
            self.backend.env.props.col.clone(),
        )
    }
}

/// Convenience: build a pooled engine for a small classic corridor.
pub fn pooled_engine_small(
    width: usize,
    height: usize,
    per_side: usize,
    model: ModelKind,
    seed: u64,
    threads: usize,
) -> PooledEngine {
    let env = EnvConfig::small(width, height, per_side).with_seed(seed);
    PooledEngine::new(SimConfig::new(env, model).with_checked(true), threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::cpu::cpu_engine_small;
    use crate::model::gather_winner;

    #[test]
    fn offset_slot_inverts_neighbor_offsets() {
        for (k, &(dr, dc)) in NEIGHBOR_OFFSETS.iter().enumerate() {
            assert_eq!(offset_slot(dr, dc), k);
        }
    }

    #[test]
    fn band_ranges_cover_exactly_once() {
        for (n, parts) in [(0, 3), (5, 8), (7, 1), (100, 7), (16, 16)] {
            let bands = band_ranges(n, parts);
            assert_eq!(bands.len(), parts.max(1));
            let mut next = 0;
            for b in &bands {
                assert_eq!(b.start, next, "gap/overlap at {b:?} (n={n}, parts={parts})");
                next = b.end;
            }
            assert_eq!(next, n);
        }
    }

    #[test]
    fn claimed_winner_matches_gather_winner() {
        // Drive the scalar engine a few steps, then at each state compare
        // the claim decode against gather_winner on every cell.
        let mut e = cpu_engine_small(24, 24, 40, ModelKind::lem(), 13);
        for step in 0..12u64 {
            e.step();
            let env = e.environment();
            let (h, w) = (env.mat.height(), env.mat.width());
            // Rebuild what the next step's tour stage would see is not
            // available here; instead synthesise futures: every agent
            // "wants" its current cell's northern neighbour when empty.
            let mut props = env.props.clone();
            for a in 1..props.row.len() {
                let (r, c) = (props.row[a], props.col[a]);
                if r > 0 && env.mat.get(r as usize - 1, c as usize) == CELL_EMPTY {
                    props.future_row[a] = r - 1;
                    props.future_col[a] = c;
                } else {
                    props.future_row[a] = NO_FUTURE;
                    props.future_col[a] = NO_FUTURE;
                }
            }
            // Claims from the synthesised futures.
            let claims: Vec<AtomicU8> = (0..h * w).map(|_| AtomicU8::new(0)).collect();
            for a in 1..props.row.len() {
                if props.future_row[a] == NO_FUTURE {
                    continue;
                }
                let (fr, fc) = (props.future_row[a] as usize, props.future_col[a] as usize);
                let k = offset_slot(
                    i64::from(props.row[a]) - fr as i64,
                    i64::from(props.col[a]) - fc as i64,
                );
                claims[fr * w + fc].fetch_or(1 << k, Ordering::Relaxed);
            }
            let occ = |r: i64, c: i64| env.mat.get_or(r, c, CELL_WALL);
            let idx = |r: i64, c: i64| env.index.get_or(r, c, 0);
            let fut = |a: u32| (props.future_row[a as usize], props.future_col[a as usize]);
            let counter_base = (step * 4 + KERNEL_MOVE) << 4;
            for r in 0..h {
                for c in 0..w {
                    let mut rng =
                        StreamRng::with_offset(env.seed, (r * w + c) as u64, counter_base);
                    let reference = gather_winner(&occ, &idx, &fut, r as i64, c as i64, &mut rng);
                    let decoded = PooledBackend::claimed_winner(
                        &env.mat,
                        &env.index,
                        &claims,
                        env.seed,
                        counter_base,
                        w,
                        r,
                        c,
                    );
                    assert_eq!(decoded, reference, "cell ({r},{c}) at step {step}");
                }
            }
        }
    }

    #[test]
    fn pooled_matches_scalar_closed_world() {
        for model in [ModelKind::lem(), ModelKind::aco()] {
            let mut scalar = cpu_engine_small(32, 32, 60, model, 5);
            scalar.run(40);
            for threads in [1, 2, 4] {
                let mut pooled = pooled_engine_small(32, 32, 60, model, 5, threads);
                pooled.run(40);
                assert_eq!(
                    scalar.mat_snapshot(),
                    pooled.mat_snapshot(),
                    "{} diverged at {threads} threads",
                    model.name()
                );
                assert_eq!(scalar.positions(), pooled.positions());
            }
        }
    }

    #[test]
    fn pooled_consistency_and_progress() {
        let mut e = pooled_engine_small(32, 32, 30, ModelKind::lem(), 42, 3);
        e.run(100);
        e.environment().check_consistency().expect("consistent");
        let m = e.metrics().expect("metrics on");
        assert!(m.total_moves > 0, "nobody moved");
        assert!(m.throughput() > 0, "no crossings");
    }

    /// Seed a deliberate overlap into the tile partition and show the
    /// interleaving explorer catches it: the overlapping rows become
    /// last-writer-wins, so some permuted schedule must diverge.
    #[test]
    fn explorer_catches_seeded_band_overlap() {
        use simt::exec::explore::{explore, permutation, run_permuted_serial};
        let n = 64;
        let parts = 8;
        let mut bands = band_ranges(n, parts);
        // The seeded fault: band 2 grows to also cover band 3's first row.
        bands[2] = bands[2].start..bands[2].end + 1;
        let err = explore(0..128u64, |seed| {
            let mut owner = vec![usize::MAX; n];
            let perm = permutation(seed, 0, parts);
            run_permuted_serial(&perm, &mut |b| {
                for i in bands[b].clone() {
                    owner[i] = b;
                }
            });
            owner
        })
        .expect_err("overlapping partition must be schedule-dependent");
        assert!(err.agreed >= 1);

        // The unmutated partition is schedule-independent.
        let bands = band_ranges(n, parts);
        explore(0..128u64, |seed| {
            let mut owner = vec![usize::MAX; n];
            let perm = permutation(seed, 0, parts);
            run_permuted_serial(&perm, &mut |b| {
                for i in bands[b].clone() {
                    owner[i] = b;
                }
            });
            owner
        })
        .expect("disjoint partition is schedule-independent");
    }

    /// The same seeded overlap, caught at runtime by the write-set race
    /// detector: the doubly-owned slot panics on its second write, and
    /// the pool re-raises on the launching thread.
    #[cfg(feature = "audit-runtime")]
    #[test]
    fn detector_catches_seeded_band_overlap() {
        let pool = WorkerPool::new(4);
        let n = 64;
        let parts = 8;
        let mut bands = band_ranges(n, parts);
        bands[2] = bands[2].start..bands[2].end + 1;
        let mut data = vec![0u32; n];
        let out = Scatter::new(&mut data);
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(parts, &|b| {
                for i in bands[b].clone() {
                    // SAFETY: bounds hold; disjointness is deliberately
                    // violated at one slot to exercise the detector.
                    unsafe { out.write(i, b as u32) };
                }
            });
        }));
        let payload = res.expect_err("write-set detector must fire");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("tile race"), "unexpected panic: {msg}");
    }

    /// A clean run under the detector: disjoint bands never fire it.
    #[cfg(feature = "audit-runtime")]
    #[test]
    fn detector_accepts_disjoint_bands() {
        let pool = WorkerPool::new(4);
        let n = 1000;
        let parts = 16;
        let bands = band_ranges(n, parts);
        let mut data = vec![0u32; n];
        let out = Scatter::new(&mut data);
        pool.run(parts, &|b| {
            for i in bands[b].clone() {
                // SAFETY: band-disjoint slots.
                unsafe { out.write(i, b as u32) };
            }
        });
        drop(out);
        for (i, v) in data.iter().enumerate() {
            let owner = bands.iter().position(|r| r.contains(&i)).unwrap();
            assert_eq!(*v, owner as u32, "slot {i}");
        }
    }

    /// A populated bucket structure for the sparse-partition fixtures:
    /// 16 rows in 8 two-row buckets, 48 live slots laid out round-robin
    /// over the rows, so every bucket holds exactly 6 members.
    fn seeded_buckets() -> RowBuckets {
        let mut buckets = RowBuckets::new(16, 48, 8);
        for slot in 1..=48u32 {
            buckets.insert(slot, (slot % 16) as u16);
        }
        buckets
    }

    #[test]
    fn bucket_task_groups_cover_every_bucket_exactly_once() {
        let mut buckets = seeded_buckets();
        assert_eq!(buckets.n_buckets(), 8);
        assert_eq!(buckets.len(), 48);
        for parts in [1usize, 3, 4, 8, 16] {
            let groups = buckets.task_groups(parts);
            assert_eq!(groups.len(), parts);
            let mut next = 0;
            for g in &groups {
                assert_eq!(g.start, next, "gap/overlap at {g:?} (parts={parts})");
                next = g.end;
            }
            assert!(next <= buckets.n_buckets());
            // Unassigned trailing buckets must be empty.
            let stragglers: usize = (next..buckets.n_buckets())
                .map(|b| buckets.members(b).len())
                .sum();
            assert_eq!(stragglers, 0, "non-empty bucket left unassigned");
            // Count-balance: no group exceeds its proportional target.
            for (t, g) in groups.iter().enumerate() {
                let count: usize = g.clone().map(|b| buckets.members(b).len()).sum();
                let cap = (t + 1) * buckets.len() / parts + 6;
                assert!(count <= cap, "group {t} holds {count} members");
            }
        }
        // Churn keeps the partition sound: drain one bucket entirely and
        // re-home a couple of slots across band boundaries.
        for slot in [16u32, 32, 48] {
            buckets.remove(slot);
        }
        buckets.move_to(1, 15);
        buckets.move_to(2, 0);
        let alive: Vec<bool> = (0..49)
            .map(|s| s != 0 && s != 16 && s != 32 && s != 48)
            .collect();
        let mut rows = vec![0u16; 49];
        for slot in 1..=48u32 {
            rows[slot as usize] = (slot % 16) as u16;
        }
        rows[1] = 15;
        rows[2] = 0;
        buckets
            .check_consistency(&alive, &rows)
            .expect("consistent");
        let groups = buckets.task_groups(4);
        let covered: usize = groups
            .iter()
            .flat_map(|g| g.clone())
            .map(|b| buckets.members(b).len())
            .sum();
        assert_eq!(covered, buckets.len(), "member lost by the partition");
    }

    /// Seed a deliberate overlap into the sparse *bucket* partition —
    /// the agent-centric analogue of the band overlap below — and show
    /// the interleaving explorer catches it: the twice-assigned bucket's
    /// agent slots become last-writer-wins, so some permuted schedule
    /// must diverge. The unmutated partition is schedule-independent.
    #[test]
    fn explorer_catches_seeded_bucket_overlap() {
        use simt::exec::explore::{explore, permutation, run_permuted_serial};
        let buckets = seeded_buckets();
        let parts = 4;
        let scatter = |groups: &[std::ops::Range<usize>]| {
            explore(0..128u64, |seed| {
                let mut owner = vec![usize::MAX; 49];
                let perm = permutation(seed, 0, parts);
                run_permuted_serial(&perm, &mut |t| {
                    for b in groups[t].clone() {
                        for &a in buckets.members(b) {
                            owner[a as usize] = t;
                        }
                    }
                });
                owner
            })
        };

        let mut groups = buckets.task_groups(parts);
        // The seeded fault: group 1 re-covers group 0's last bucket.
        groups[1] = groups[1].start - 1..groups[1].end;
        let err = scatter(&groups).expect_err("overlapping bucket groups are schedule-dependent");
        assert!(err.agreed >= 1);

        let groups = buckets.task_groups(parts);
        scatter(&groups).expect("disjoint bucket groups are schedule-independent");
    }

    /// The same seeded bucket overlap, caught at runtime by the
    /// write-set race detector guarding the sparse stages' agent-keyed
    /// scatters: the twice-assigned bucket's agent slot is written by
    /// two tasks in one phase, so the second write panics and the pool
    /// re-raises on the launching thread.
    #[cfg(feature = "audit-runtime")]
    #[test]
    fn detector_catches_seeded_bucket_overlap() {
        let pool = WorkerPool::new(4);
        let buckets = seeded_buckets();
        let parts = 4;
        let mut groups = buckets.task_groups(parts);
        groups[1] = groups[1].start - 1..groups[1].end;
        let mut data = vec![u32::MAX; 49];
        let out = Scatter::new(&mut data);
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(parts, &|t| {
                for b in groups[t].clone() {
                    for &a in buckets.members(b) {
                        // SAFETY: bounds hold; agent-uniqueness is
                        // deliberately violated at one bucket to exercise
                        // the detector.
                        unsafe { out.write(a as usize, t as u32) };
                    }
                }
            });
        }));
        let payload = res.expect_err("write-set detector must fire");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("tile race"), "unexpected panic: {msg}");
    }

    /// A clean sparse scatter under the detector: disjoint bucket groups
    /// write each live agent slot exactly once and never fire it.
    #[cfg(feature = "audit-runtime")]
    #[test]
    fn detector_accepts_disjoint_bucket_groups() {
        let pool = WorkerPool::new(4);
        let buckets = seeded_buckets();
        let parts = 4;
        let groups = buckets.task_groups(parts);
        let mut data = vec![u32::MAX; 49];
        let out = Scatter::new(&mut data);
        pool.run(parts, &|t| {
            for b in groups[t].clone() {
                for &a in buckets.members(b) {
                    // SAFETY: agent-unique slots (bucket-disjoint groups).
                    unsafe { out.write(a as usize, t as u32) };
                }
            }
        });
        drop(out);
        for slot in 1..=48usize {
            let b = buckets.bucket_of_row(slot % 16);
            let owner = groups.iter().position(|g| g.contains(&b)).unwrap();
            assert_eq!(data[slot], owner as u32, "slot {slot}");
        }
    }

    /// Permuted dispatch must not change trajectories: a handful of
    /// schedule seeds here, hundreds in tests/audit_soundness.rs.
    #[test]
    fn schedule_permutation_preserves_trajectories() {
        let mut reference = pooled_engine_small(24, 24, 40, ModelKind::lem(), 7, 4);
        reference.run(30);
        for seed in [0u64, 1, 0xDEAD_BEEF] {
            let mut permuted = pooled_engine_small(24, 24, 40, ModelKind::lem(), 7, 4);
            permuted.set_schedule_seed(Some(seed));
            permuted.run(30);
            assert_eq!(
                reference.mat_snapshot(),
                permuted.mat_snapshot(),
                "schedule seed {seed} changed the trajectory"
            );
            assert_eq!(reference.positions(), permuted.positions());
        }
    }

    #[test]
    fn pooled_pheromone_matches_scalar() {
        let mut scalar = cpu_engine_small(24, 24, 30, ModelKind::aco(), 9);
        let mut pooled = pooled_engine_small(24, 24, 30, ModelKind::aco(), 9, 4);
        scalar.run(25);
        pooled.run(25);
        let (sp, pp) = (scalar.pheromone().unwrap(), pooled.pheromone().unwrap());
        for g in 0..sp.groups() {
            let g = Group::new(g);
            assert_eq!(sp.of(g).as_slice(), pp.of(g).as_slice());
        }
        assert_eq!(scalar.tour_lengths(), pooled.tour_lengths());
    }
}
