//! Stop conditions: declarative "when is this run over?" predicates.
//!
//! The paper's evaluation runs every simulation to a fixed 25,000-step
//! budget, long after the interesting dynamics are finished — at low
//! density every agent has crossed within a few hundred steps, and past
//! 51,200 agents the crowd gridlocks and nothing changes for the rest of
//! the budget. [`StopCondition`] makes the termination rule part of the
//! run description so sweeps can exit early without changing any measured
//! number: throughput is sticky and capped, so a run stopped at
//! [`StopReason::AllArrived`] reports exactly the throughput it would have
//! reported at the end of the step budget.
//!
//! Conditions are evaluated **between** steps (before the first one, after
//! every subsequent one), purely from the engine's observable state
//! (`steps_done`, [`Metrics`]) — no hidden evaluator state, so the same
//! trajectory always stops at the same step with the same reason,
//! regardless of host, schedule, or batch worker count.

use crate::metrics::{Metrics, MAX_FLUX_WINDOW, MAX_GRIDLOCK_PATIENCE};

/// Why a [`StopCondition`] is rejected by [`StopCondition::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvalidStopCondition {
    /// A `Gridlocked` patience longer than the movement history the
    /// metrics retain — it could never be evaluated and would panic deep
    /// inside the engine loop instead of at configuration time.
    PatienceExceedsRetention {
        /// The requested patience.
        patience: u64,
        /// The retention bound ([`MAX_GRIDLOCK_PATIENCE`]).
        max: u64,
    },
    /// A `SteadyState` window outside the evaluable range: the two halves
    /// each need at least one step, and the metrics only retain
    /// [`MAX_FLUX_WINDOW`] steps of flux history.
    FluxWindowOutOfRange {
        /// The requested window.
        window: u64,
        /// The retention bound ([`MAX_FLUX_WINDOW`]).
        max: u64,
    },
    /// A `SteadyState` epsilon that is negative, NaN, or infinite — the
    /// flux-variation comparison could never be meaningful.
    InvalidEpsilon,
    /// A metric-based condition on a run whose engine was built with
    /// `track_metrics` off — it could never fire, and evaluating it
    /// mid-run used to panic deep inside [`StopCondition::check`].
    /// Caught by [`StopCondition::validate_for`] at `run_until` entry
    /// (and at batch construction) instead.
    RequiresMetrics {
        /// Stable name of the offending condition
        /// ([`crate::engine::StopReason::name`] vocabulary).
        condition: &'static str,
    },
}

impl std::fmt::Display for InvalidStopCondition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::PatienceExceedsRetention { patience, max } => write!(
                f,
                "gridlock patience {patience} exceeds the retained movement \
                 history ({max} steps)"
            ),
            Self::FluxWindowOutOfRange { window, max } => write!(
                f,
                "steady-state window {window} outside the evaluable range \
                 2..={max}"
            ),
            Self::InvalidEpsilon => {
                write!(f, "steady-state epsilon must be finite and non-negative")
            }
            Self::RequiresMetrics { condition } => write!(
                f,
                "stop condition {condition:?} requires metrics: build the \
                 engine with SimConfig::track_metrics on"
            ),
        }
    }
}

impl std::error::Error for InvalidStopCondition {}

/// When to stop a run. Composable via [`StopCondition::FirstOf`].
#[derive(Debug, Clone, PartialEq)]
pub enum StopCondition {
    /// Stop once `steps_done` reaches the budget (the paper's protocol).
    Steps(u64),
    /// Stop once every agent has reached its target region. Requires
    /// metrics tracking. Never fires on an open-boundary world (the
    /// inflow never finishes) — compose a `Steps` cap.
    AllArrived,
    /// Stop once fewer than `threshold` agents moved in each of the last
    /// `patience` consecutive steps while not everyone has arrived (the
    /// paper's "total gridlock" regime). Requires metrics tracking.
    Gridlocked {
        /// Moves-per-step floor below which a step counts as frozen.
        threshold: usize,
        /// Consecutive frozen steps required before declaring gridlock
        /// (≤ [`crate::metrics::MAX_GRIDLOCK_PATIENCE`]).
        patience: u64,
    },
    /// Stop once the windowed flux has settled: the last `window` steps
    /// are fully observed, saw at least one crossing, and the mean flux of
    /// the window's two halves differs by at most `epsilon` (crossings per
    /// step). The steady-state detector for open-boundary worlds; requires
    /// metrics tracking.
    SteadyState {
        /// Largest allowed half-to-half flux difference, in crossings per
        /// step.
        epsilon: f64,
        /// Steps of flux history compared
        /// (2..=[`crate::metrics::MAX_FLUX_WINDOW`]).
        window: u64,
    },
    /// Stop when any member condition fires; the **first** (in list
    /// order) that matches supplies the [`StopReason`].
    FirstOf(Vec<StopCondition>),
}

/// Why a [`StopCondition`]-driven run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StopReason {
    /// The step budget was exhausted.
    StepBudget,
    /// Every agent reached its target region.
    AllArrived,
    /// The crowd froze for the configured patience window.
    Gridlocked,
    /// The windowed flux settled within epsilon.
    SteadyState,
}

impl StopReason {
    /// Stable lower-case name for reports and JSON serialization.
    pub fn name(self) -> &'static str {
        match self {
            StopReason::StepBudget => "step_budget",
            StopReason::AllArrived => "all_arrived",
            StopReason::Gridlocked => "gridlocked",
            StopReason::SteadyState => "steady_state",
        }
    }
}

impl StopCondition {
    /// The common sweep rule: stop when everyone has arrived, else at the
    /// step budget.
    pub fn arrived_or_steps(steps: u64) -> Self {
        StopCondition::FirstOf(vec![StopCondition::AllArrived, StopCondition::Steps(steps)])
    }

    /// The full early-exit rule: arrival, gridlock, or the step budget —
    /// whichever comes first.
    pub fn settled_or_steps(steps: u64, threshold: usize, patience: u64) -> Self {
        StopCondition::FirstOf(vec![
            StopCondition::AllArrived,
            StopCondition::Gridlocked {
                threshold,
                patience,
            },
            StopCondition::Steps(steps),
        ])
    }

    /// The open-boundary sweep rule: stop when the flux settles, else at
    /// the step budget (arrival never fires on an open world).
    pub fn steady_or_steps(steps: u64, epsilon: f64, window: u64) -> Self {
        StopCondition::FirstOf(vec![
            StopCondition::SteadyState { epsilon, window },
            StopCondition::Steps(steps),
        ])
    }

    /// Check the condition's *parameters* (recursively through
    /// [`StopCondition::FirstOf`]) without an engine: a `Gridlocked`
    /// patience beyond [`MAX_GRIDLOCK_PATIENCE`] can never be evaluated,
    /// so callers that accept run descriptions (the batch runner) reject
    /// it here — at construction, with a typed error — instead of letting
    /// a worker thread panic mid-batch.
    pub fn validate(&self) -> Result<(), InvalidStopCondition> {
        match self {
            StopCondition::Gridlocked { patience, .. } if *patience > MAX_GRIDLOCK_PATIENCE => {
                Err(InvalidStopCondition::PatienceExceedsRetention {
                    patience: *patience,
                    max: MAX_GRIDLOCK_PATIENCE,
                })
            }
            StopCondition::SteadyState { window, .. }
                if !(2..=MAX_FLUX_WINDOW).contains(window) =>
            {
                Err(InvalidStopCondition::FluxWindowOutOfRange {
                    window: *window,
                    max: MAX_FLUX_WINDOW,
                })
            }
            StopCondition::SteadyState { epsilon, .. }
                if !epsilon.is_finite() || *epsilon < 0.0 =>
            {
                Err(InvalidStopCondition::InvalidEpsilon)
            }
            StopCondition::FirstOf(conds) => conds.iter().try_for_each(StopCondition::validate),
            _ => Ok(()),
        }
    }

    /// The first metric-dependent member (recursively through
    /// [`StopCondition::FirstOf`]), by stable stop-reason name — `None`
    /// when the condition reads only `steps_done`.
    pub fn requires_metrics(&self) -> Option<&'static str> {
        match self {
            StopCondition::Steps(_) => None,
            StopCondition::AllArrived => Some(StopReason::AllArrived.name()),
            StopCondition::Gridlocked { .. } => Some(StopReason::Gridlocked.name()),
            StopCondition::SteadyState { .. } => Some(StopReason::SteadyState.name()),
            StopCondition::FirstOf(conds) => conds.iter().find_map(StopCondition::requires_metrics),
        }
    }

    /// [`StopCondition::validate`] plus the engine-capability check: with
    /// `track_metrics` off, a metric-based member could never fire, so the
    /// run would either loop forever or panic mid-step. Engines call this
    /// at `run_until` entry and the batch runner at job validation — the
    /// same typed-error-at-the-door pattern as the parameter checks.
    pub fn validate_for(&self, track_metrics: bool) -> Result<(), InvalidStopCondition> {
        self.validate()?;
        if !track_metrics {
            if let Some(condition) = self.requires_metrics() {
                return Err(InvalidStopCondition::RequiresMetrics { condition });
            }
        }
        Ok(())
    }

    /// Whether the condition is satisfied for an engine that has run
    /// `steps_done` steps with the given metrics, and if so, why.
    ///
    /// `AllArrived` and `Gridlocked` read [`Metrics`]; evaluating them on
    /// an engine built with `track_metrics` off is a caller bug and
    /// panics (the condition could otherwise never fire and the run would
    /// never stop).
    pub fn check(&self, steps_done: u64, metrics: Option<&Metrics>) -> Option<StopReason> {
        let need_metrics = || {
            metrics.expect("AllArrived/Gridlocked stop conditions require SimConfig::track_metrics")
        };
        match self {
            StopCondition::Steps(budget) => {
                (steps_done >= *budget).then_some(StopReason::StepBudget)
            }
            StopCondition::AllArrived => need_metrics()
                .all_arrived()
                .then_some(StopReason::AllArrived),
            StopCondition::Gridlocked {
                threshold,
                patience,
            } => need_metrics()
                .is_gridlocked(*threshold, *patience)
                .then_some(StopReason::Gridlocked),
            StopCondition::SteadyState { epsilon, window } => need_metrics()
                .is_steady(*epsilon, *window)
                .then_some(StopReason::SteadyState),
            StopCondition::FirstOf(conds) => {
                conds.iter().find_map(|c| c.check(steps_done, metrics))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Geometry;

    fn metrics_after_freeze(steps: usize) -> Metrics {
        let geom = Geometry::two_sided(16, 16, 3, 2);
        let mut m = Metrics::new(geom, &[0, 5, 5, 10, 10], &[0, 1, 2, 1, 2]);
        for _ in 0..steps {
            m.observe(&[0, 5, 5, 10, 10], &[0, 1, 2, 1, 2]);
        }
        m
    }

    #[test]
    fn steps_fires_at_budget() {
        let c = StopCondition::Steps(10);
        assert_eq!(c.check(9, None), None);
        assert_eq!(c.check(10, None), Some(StopReason::StepBudget));
        assert_eq!(c.check(11, None), Some(StopReason::StepBudget));
    }

    #[test]
    fn gridlock_respects_patience() {
        let c = StopCondition::Gridlocked {
            threshold: 1,
            patience: 3,
        };
        let m2 = metrics_after_freeze(2);
        assert_eq!(c.check(2, Some(&m2)), None);
        let m3 = metrics_after_freeze(3);
        assert_eq!(c.check(3, Some(&m3)), Some(StopReason::Gridlocked));
    }

    #[test]
    fn first_of_reports_first_match_in_list_order() {
        let m = metrics_after_freeze(5);
        let c = StopCondition::FirstOf(vec![
            StopCondition::AllArrived,
            StopCondition::Gridlocked {
                threshold: 1,
                patience: 2,
            },
            StopCondition::Steps(5),
        ]);
        // Both gridlock and the budget hold at step 5; gridlock is listed
        // first among the satisfied members.
        assert_eq!(c.check(5, Some(&m)), Some(StopReason::Gridlocked));
    }

    #[test]
    #[should_panic(expected = "track_metrics")]
    fn metric_conditions_without_metrics_panic() {
        let _ = StopCondition::AllArrived.check(0, None);
    }

    #[test]
    fn reason_names_are_stable() {
        assert_eq!(StopReason::StepBudget.name(), "step_budget");
        assert_eq!(StopReason::AllArrived.name(), "all_arrived");
        assert_eq!(StopReason::Gridlocked.name(), "gridlocked");
        assert_eq!(StopReason::SteadyState.name(), "steady_state");
    }

    #[test]
    fn validate_rejects_bad_steady_state_parameters() {
        use crate::metrics::MAX_FLUX_WINDOW;
        let ok = StopCondition::steady_or_steps(100, 0.5, 32);
        assert_eq!(ok.validate(), Ok(()));
        for window in [0u64, 1, MAX_FLUX_WINDOW + 1] {
            let bad = StopCondition::SteadyState {
                epsilon: 0.5,
                window,
            };
            assert_eq!(
                bad.validate(),
                Err(InvalidStopCondition::FluxWindowOutOfRange {
                    window,
                    max: MAX_FLUX_WINDOW,
                }),
                "window {window}"
            );
        }
        for epsilon in [-0.1, f64::NAN, f64::INFINITY] {
            let bad = StopCondition::SteadyState { epsilon, window: 8 };
            assert_eq!(bad.validate(), Err(InvalidStopCondition::InvalidEpsilon));
        }
        // Nested inside FirstOf, the same rejection surfaces.
        let nested = StopCondition::FirstOf(vec![
            StopCondition::Steps(5),
            StopCondition::SteadyState {
                epsilon: -1.0,
                window: 8,
            },
        ]);
        assert!(nested.validate().is_err());
    }

    #[test]
    fn steady_state_fires_once_flux_settles() {
        use crate::metrics::Geometry;
        let geom = Geometry::two_sided(16, 16, 3, 2);
        let mut m = Metrics::new(geom, &[0, 0, 1, 15, 15], &[0, 0, 1, 0, 1]);
        let c = StopCondition::SteadyState {
            epsilon: 0.75,
            window: 4,
        };
        assert_eq!(c.check(0, Some(&m)), None);
        // One crossing per window half — sustained, settled flow.
        m.observe(&[0, 13, 1, 15, 15], &[0, 0, 1, 0, 1]); // agent 1 crosses
        m.observe(&[0, 13, 1, 15, 15], &[0, 0, 1, 0, 1]);
        m.observe(&[0, 13, 13, 15, 15], &[0, 0, 1, 0, 1]); // agent 2 crosses
        m.observe(&[0, 13, 13, 15, 15], &[0, 0, 1, 0, 1]);
        assert_eq!(c.check(4, Some(&m)), Some(StopReason::SteadyState));
    }

    #[test]
    fn validate_for_flags_metric_conditions_on_metrics_off_runs() {
        // Pure step-budget conditions never need metrics.
        assert_eq!(StopCondition::Steps(10).validate_for(false), Ok(()));
        assert_eq!(StopCondition::Steps(10).requires_metrics(), None);
        // Every metric-based condition is rejected, by stable name, also
        // when nested inside FirstOf.
        let cases: [(StopCondition, &str); 4] = [
            (StopCondition::AllArrived, "all_arrived"),
            (
                StopCondition::Gridlocked {
                    threshold: 1,
                    patience: 4,
                },
                "gridlocked",
            ),
            (
                StopCondition::SteadyState {
                    epsilon: 0.5,
                    window: 8,
                },
                "steady_state",
            ),
            (StopCondition::arrived_or_steps(100), "all_arrived"),
        ];
        for (cond, name) in cases {
            assert_eq!(cond.requires_metrics(), Some(name));
            assert_eq!(
                cond.validate_for(false),
                Err(InvalidStopCondition::RequiresMetrics { condition: name })
            );
            // With metrics on, the same condition is fine.
            assert_eq!(cond.validate_for(true), Ok(()));
        }
        let msg = StopCondition::AllArrived
            .validate_for(false)
            .unwrap_err()
            .to_string();
        assert!(msg.contains("track_metrics"), "{msg}");
        // Parameter errors still take precedence over the metrics check.
        let bad_params = StopCondition::SteadyState {
            epsilon: -1.0,
            window: 8,
        };
        assert_eq!(
            bad_params.validate_for(false),
            Err(InvalidStopCondition::InvalidEpsilon)
        );
    }

    #[test]
    fn validate_rejects_oversized_patience_recursively() {
        use crate::metrics::MAX_GRIDLOCK_PATIENCE;
        let ok = StopCondition::settled_or_steps(100, 1, MAX_GRIDLOCK_PATIENCE);
        assert_eq!(ok.validate(), Ok(()));
        let bad = StopCondition::Gridlocked {
            threshold: 1,
            patience: MAX_GRIDLOCK_PATIENCE + 1,
        };
        assert_eq!(
            bad.validate(),
            Err(InvalidStopCondition::PatienceExceedsRetention {
                patience: MAX_GRIDLOCK_PATIENCE + 1,
                max: MAX_GRIDLOCK_PATIENCE,
            })
        );
        // Nested inside FirstOf, the same rejection surfaces.
        let nested = StopCondition::FirstOf(vec![StopCondition::Steps(10), bad.clone()]);
        assert!(nested.validate().is_err());
        let msg = nested.validate().unwrap_err().to_string();
        assert!(msg.contains("exceeds the retained movement history"));
    }
}
