//! The runtime-selectable backend registry.
//!
//! Every engine implementation registers itself here as an
//! [`EngineBackend`] descriptor — a name, a one-line summary, and a
//! constructor producing a boxed [`Engine`]. Callers (the runner, the
//! benches, the CLI flags) select a backend **by name** through
//! [`Backend`], so a new backend drops in by adding one descriptor to
//! [`BACKENDS`] without touching any engine or any call site.
//!
//! Three backends ship today:
//!
//! | name     | engine                      | execution                               |
//! |----------|-----------------------------|-----------------------------------------|
//! | `scalar` | [`cpu::CpuEngine`]          | single-threaded host loops (reference)  |
//! | `pooled` | [`pooled::PooledEngine`]    | tile-parallel host bands on a pool      |
//! | `simt`   | [`gpu::GpuEngine`]          | virtual-GPU kernel pipeline             |
//!
//! All three are bit-identical in trajectory for equal configurations
//! (the cross-backend golden parity tests), so the choice is purely a
//! performance/instrumentation trade.
//!
//! [`cpu::CpuEngine`]: super::cpu::CpuEngine
//! [`pooled::PooledEngine`]: super::pooled::PooledEngine
//! [`gpu::GpuEngine`]: super::gpu::GpuEngine

use std::sync::Arc;

use simt::exec::ExecPolicy;
use simt::Device;

use crate::params::SimConfig;
use crate::world::CompiledWorld;

use super::cpu::CpuEngine;
use super::gpu::GpuEngine;
use super::pooled::PooledEngine;
use super::Engine;

/// A registered engine backend: the unit of extension for new execution
/// strategies.
#[derive(Debug)]
pub struct EngineBackend {
    /// Registry key (`scalar` / `pooled` / `simt` / …), stable across
    /// releases — recorded verbatim in results provenance.
    pub name: &'static str,
    /// One-line human summary for `--help` style listings.
    pub summary: &'static str,
    /// Whether `threads` changes this backend's execution (parallel
    /// backends); serial backends ignore the thread count.
    pub parallel: bool,
    /// Build per-replica engine state over a shared compiled world with
    /// `threads` workers — every backend flows through its engine's
    /// `from_world` constructor, so there is exactly one setup path and
    /// no backend-specific drift.
    pub build: fn(&Arc<CompiledWorld>, SimConfig, usize) -> Box<dyn Engine + Send>,
}

impl EngineBackend {
    /// Construct this backend's engine from a shared compiled world.
    pub fn build(
        &self,
        world: &Arc<CompiledWorld>,
        cfg: SimConfig,
        threads: usize,
    ) -> Box<dyn Engine + Send> {
        (self.build)(world, cfg, threads)
    }

    /// Compile-then-construct convenience for callers without a shared
    /// world at hand.
    pub fn build_cold(&self, cfg: SimConfig, threads: usize) -> Box<dyn Engine + Send> {
        let world = CompiledWorld::compile(&cfg);
        self.build(&world, cfg, threads)
    }
}

fn build_scalar(
    world: &Arc<CompiledWorld>,
    cfg: SimConfig,
    _threads: usize,
) -> Box<dyn Engine + Send> {
    Box::new(CpuEngine::from_world(world, cfg))
}

fn build_pooled(
    world: &Arc<CompiledWorld>,
    cfg: SimConfig,
    threads: usize,
) -> Box<dyn Engine + Send> {
    Box::new(PooledEngine::from_world(world, cfg, threads))
}

fn build_simt(
    world: &Arc<CompiledWorld>,
    cfg: SimConfig,
    threads: usize,
) -> Box<dyn Engine + Send> {
    let policy = if threads <= 1 {
        ExecPolicy::Sequential
    } else {
        ExecPolicy::Parallel { workers: threads }
    };
    let device = Device::builder().policy(policy).build();
    Box::new(GpuEngine::from_world(world, cfg, device))
}

/// Every registered backend, in presentation order.
pub const BACKENDS: &[EngineBackend] = &[
    EngineBackend {
        name: "scalar",
        summary: "single-threaded host reference engine",
        parallel: false,
        build: build_scalar,
    },
    EngineBackend {
        name: "pooled",
        summary: "tile-parallel pooled CPU engine (worker-pool row bands)",
        parallel: true,
        build: build_pooled,
    },
    EngineBackend {
        name: "simt",
        summary: "virtual-GPU kernel pipeline (sequential or parallel policy)",
        parallel: true,
        build: build_simt,
    },
];

/// Look up a backend descriptor by registry key.
pub fn lookup(name: &str) -> Result<&'static EngineBackend, UnknownBackend> {
    BACKENDS
        .iter()
        .find(|b| b.name == name)
        .ok_or_else(|| UnknownBackend {
            requested: name.to_string(),
        })
}

/// All registered backend names, in presentation order.
pub fn names() -> Vec<&'static str> {
    BACKENDS.iter().map(|b| b.name).collect()
}

/// The requested backend name is not in the registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownBackend {
    /// The name the caller asked for.
    pub requested: String,
}

impl std::fmt::Display for UnknownBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown backend {:?}; known backends: {}",
            self.requested,
            names().join(", ")
        )
    }
}

impl std::error::Error for UnknownBackend {}

/// A backend *selection*: a registry key plus a worker thread count —
/// the value jobs and benches carry around and record in provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Backend {
    /// Registry key to resolve at build time.
    pub name: String,
    /// Worker threads for parallel backends (serial backends ignore it;
    /// clamped to at least 1 at build time).
    pub threads: usize,
}

impl Backend {
    /// Select a backend by name with a thread count.
    pub fn named(name: impl Into<String>, threads: usize) -> Self {
        Self {
            name: name.into(),
            threads: threads.max(1),
        }
    }

    /// The single-threaded reference engine.
    pub fn scalar() -> Self {
        Self::named("scalar", 1)
    }

    /// The tile-parallel pooled CPU engine with `threads` workers.
    pub fn pooled(threads: usize) -> Self {
        Self::named("pooled", threads)
    }

    /// The virtual-GPU engine (sequential policy).
    pub fn simt() -> Self {
        Self::named("simt", 1)
    }

    /// Resolve the selection against the registry (the runner's
    /// validation hook — fails with the typed error before any run
    /// starts).
    pub fn resolve(&self) -> Result<&'static EngineBackend, UnknownBackend> {
        lookup(&self.name)
    }

    /// Resolve and construct the engine (compiles the world itself; use
    /// [`Backend::build_from_world`] to share a compiled artifact).
    pub fn build(&self, cfg: SimConfig) -> Result<Box<dyn Engine + Send>, UnknownBackend> {
        Ok(self.resolve()?.build_cold(cfg, self.threads))
    }

    /// Resolve and construct the engine over a shared compiled world —
    /// the runner's per-replica path.
    pub fn build_from_world(
        &self,
        world: &Arc<CompiledWorld>,
        cfg: SimConfig,
    ) -> Result<Box<dyn Engine + Send>, UnknownBackend> {
        Ok(self.resolve()?.build(world, cfg, self.threads))
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/t{}", self.name, self.threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ModelKind;
    use pedsim_grid::EnvConfig;

    fn small_cfg() -> SimConfig {
        SimConfig::new(EnvConfig::small(16, 16, 8).with_seed(3), ModelKind::lem())
    }

    #[test]
    fn registry_lists_three_backends() {
        assert_eq!(names(), vec!["scalar", "pooled", "simt"]);
        assert!(!lookup("scalar").unwrap().parallel);
        assert!(lookup("pooled").unwrap().parallel);
    }

    #[test]
    fn unknown_backend_is_a_typed_error() {
        let err = lookup("cuda").unwrap_err();
        assert_eq!(err.requested, "cuda");
        let msg = err.to_string();
        assert!(msg.contains("cuda") && msg.contains("pooled"), "{msg}");
        let err2 = Backend::named("opencl", 2).resolve().unwrap_err();
        assert_eq!(err2.requested, "opencl");
    }

    #[test]
    fn every_backend_builds_and_steps() {
        for b in BACKENDS {
            let mut e = b.build_cold(small_cfg(), 2);
            e.run(3);
            assert_eq!(e.steps_done(), 3, "{}", b.name);
        }
    }

    #[test]
    fn all_backends_share_one_compiled_world_bit_for_bit() {
        // One compilation serves every backend; trajectories match a
        // backend that compiled its own world.
        let world = CompiledWorld::compile(&small_cfg());
        let mut reference = Backend::scalar().build(small_cfg()).expect("known");
        reference.run(12);
        for b in BACKENDS {
            let mut e = b.build(&world, small_cfg(), 2);
            e.run(12);
            assert_eq!(e.mat_snapshot(), reference.mat_snapshot(), "{}", b.name);
            assert_eq!(e.positions(), reference.positions(), "{}", b.name);
        }
    }

    #[test]
    fn selections_agree_bit_for_bit() {
        let mut snaps = Vec::new();
        for sel in [
            Backend::scalar(),
            Backend::pooled(1),
            Backend::pooled(4),
            Backend::simt(),
            Backend::named("simt", 3),
        ] {
            let mut e = sel.build(small_cfg()).expect("known backend");
            e.run(12);
            snaps.push((sel.to_string(), e.mat_snapshot(), e.positions()));
        }
        for (name, mat, pos) in &snaps[1..] {
            assert_eq!(mat, &snaps[0].1, "{name} diverged from scalar");
            assert_eq!(pos, &snaps[0].2, "{name} positions diverged");
        }
    }

    #[test]
    fn thread_count_floors_at_one() {
        let b = Backend::named("pooled", 0);
        assert_eq!(b.threads, 1);
        assert_eq!(b.to_string(), "pooled/t1");
    }
}
