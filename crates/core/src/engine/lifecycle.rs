//! The open-boundary agent lifecycle: despawn-at-sink and
//! spawn-at-source, run identically by both engines.
//!
//! Closed worlds place every agent once and run to arrival; open worlds
//! carry continuous streams. Each step, after the four kernels and the
//! metrics observation, an open engine runs two extra phases through
//! [`OpenLifecycle::run_step`]:
//!
//! 1. **Despawn** — every live agent standing inside its group's target
//!    region leaves the grid; its cell empties and its property slot joins
//!    the group's free pool (smallest slot reused first).
//! 2. **Spawn** — for each group with a source, every *empty* source cell
//!    flips an independent coin with probability `rate / |region|`; heads
//!    spawns a recycled slot there (skipped silently when the pool is
//!    dry, so the live population never exceeds the slot capacity).
//!
//! Determinism: the spawn draws use the Philox `(seed, stream, counter)`
//! scheme — group `g` draws from stream [`source_stream`]`(g)` with the
//! counter advanced by a fixed per-step stride — and one draw is consumed
//! per source cell per step *regardless* of occupancy or pool state, so
//! the arrival sequence depends only on `(seed, step)`, never on engine,
//! schedule, or congestion history of the RNG. Both engines drive this
//! module over the same [`LifecycleWorld`] view, which is why open-world
//! trajectories stay bit-identical across engines — the same guarantee
//! the closed worlds already had.

use std::sync::Arc;

use pedsim_grid::cell::Group;
use pedsim_grid::Matrix;
use pedsim_scenario::Scenario;
use philox::StreamRng;

use crate::metrics::{Geometry, Metrics};

/// The dedicated inflow RNG stream of group `g`: `u64::MAX - 9 - g`,
/// directly below the placement streams (`u64::MAX - 1 - g`) and far from
/// the per-cell/per-agent streams the kernels draw from.
#[inline]
pub fn source_stream(g: usize) -> u64 {
    u64::MAX - 9 - g as u64
}

/// One group's source, compiled for the step loop.
struct SourceRuntime {
    group: Group,
    /// Source cells in the deterministic spawn order.
    cells: Vec<(u16, u16)>,
    /// Per-cell spawn probability as a fixed-point threshold: a 32-bit
    /// draw spawns iff `draw < threshold` (threshold `2^32` means always).
    threshold: u64,
}

/// The compiled lifecycle of one open scenario.
pub struct OpenLifecycle {
    geom: Geometry,
    targets: Arc<Matrix<u8>>,
    sources: Vec<SourceRuntime>,
    seed: u64,
}

/// The mutable world surface the lifecycle drives — implemented over the
/// CPU engine's [`pedsim_grid::Environment`] and the GPU engine's
/// device-state buffers, so one copy of the phase logic serves both.
pub trait LifecycleWorld {
    /// Whether slot `i` holds a live agent.
    fn is_alive(&self, i: usize) -> bool;
    /// Current position of slot `i`.
    fn position(&self, i: usize) -> (u16, u16);
    /// Whether cell `(r, c)` is empty (no agent, no wall).
    fn is_cell_empty(&self, r: u16, c: u16) -> bool;
    /// Remove the live agent in slot `i` (group `g`) and recycle the slot.
    fn despawn(&mut self, g: Group, i: usize);
    /// Spawn a recycled slot of group `g` at the empty cell `(r, c)`;
    /// `None` when the group's pool is dry.
    fn spawn(&mut self, g: Group, r: u16, c: u16) -> Option<u32>;
}

impl OpenLifecycle {
    /// Compile `scenario`'s lifecycle, or `None` for closed worlds.
    /// `geom` must be the engine's capacity-sized geometry; `targets` the
    /// environment's already-built mask when available (so the lifecycle
    /// and the metrics share one mask instead of rebuilding it per
    /// engine).
    pub fn from_scenario(
        scenario: &Scenario,
        geom: Geometry,
        targets: Option<Arc<Matrix<u8>>>,
    ) -> Option<Self> {
        if !scenario.is_open() {
            return None;
        }
        let sources = (0..scenario.n_groups())
            .filter_map(|gi| {
                let g = Group::new(gi);
                scenario.source(g).map(|src| {
                    let cells = src.region.cells().to_vec();
                    let p = (src.rate / cells.len() as f64).clamp(0.0, 1.0);
                    SourceRuntime {
                        group: g,
                        cells,
                        threshold: (p * (1u64 << 32) as f64).round() as u64,
                    }
                })
            })
            .collect();
        Some(Self {
            geom,
            targets: targets.unwrap_or_else(|| Arc::new(scenario.target_mask())),
            sources,
            seed: scenario.seed(),
        })
    }

    /// Run the despawn and spawn phases for the step that just finished
    /// (`step` is the 1-based count of completed steps, i.e. the engine's
    /// `steps_done()` after the kernels ran). Lifecycle events are echoed
    /// into `metrics` when tracking is on.
    pub fn run_step<W: LifecycleWorld>(
        &self,
        world: &mut W,
        step: u64,
        mut metrics: Option<&mut Metrics>,
    ) {
        // Despawn: slots in ascending order — a fixed, engine-independent
        // scan. Arrival was already counted by the metrics observation
        // that precedes this phase.
        for i in 1..=self.geom.total_agents() {
            if !world.is_alive(i) {
                continue;
            }
            let g = self.geom.group_of(i);
            let (r, c) = world.position(i);
            if self.targets.get(r as usize, c as usize) & g.target_bit() != 0 {
                world.despawn(g, i);
                if let Some(m) = metrics.as_deref_mut() {
                    m.note_despawn(i);
                }
            }
        }
        // Spawn: groups in index order, cells in region order, one draw
        // per cell — the stream position after a step is a pure function
        // of the step number.
        for src in &self.sources {
            let stride = src.cells.len() as u64;
            let mut rng =
                StreamRng::with_offset(self.seed, source_stream(src.group.index()), step * stride);
            for &(r, c) in &src.cells {
                let draw = u64::from(rng.next_u32());
                if draw >= src.threshold || !world.is_cell_empty(r, c) {
                    continue;
                }
                if let Some(idx) = world.spawn(src.group, r, c) {
                    if let Some(m) = metrics.as_deref_mut() {
                        m.note_spawn(idx as usize, r, c);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn source_streams_sit_below_placement_streams() {
        // Placement uses u64::MAX - 1 - g for g < MAX_GROUPS; sources must
        // not collide with it for any group index.
        for g in 0..pedsim_grid::cell::MAX_GROUPS {
            let s = source_stream(g);
            assert!(s <= u64::MAX - 9);
            assert!(s > u64::MAX - 17);
        }
    }

    #[test]
    fn compile_is_none_for_closed_worlds() {
        let cfg = pedsim_grid::EnvConfig::small(16, 16, 4);
        let scenario = pedsim_scenario::registry::paper_corridor(&cfg);
        let geom = Geometry::two_sided(16, 16, 1, 4);
        assert!(OpenLifecycle::from_scenario(&scenario, geom, None).is_none());
    }

    #[test]
    fn thresholds_scale_with_rate_and_region() {
        let scenario = pedsim_scenario::registry::open_corridor(16, 16, 8, 4.0);
        let geom = Geometry::two_sided(16, 16, 1, 8);
        let lc = OpenLifecycle::from_scenario(&scenario, geom, None).expect("open");
        assert_eq!(lc.sources.len(), 2);
        // rate 4 over a 16-cell band row? (band is rows × 16 cells) —
        // whatever the band size, p = rate / len and the fixed-point
        // threshold round-trips to it.
        for src in &lc.sources {
            let p = src.threshold as f64 / (1u64 << 32) as f64;
            let expect = 4.0 / src.cells.len() as f64;
            assert!((p - expect).abs() < 1e-9, "p {p} vs {expect}");
        }
    }
}
