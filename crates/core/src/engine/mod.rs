//! Simulation engines.
//!
//! Three engines implement the identical model, selectable at runtime
//! through the backend [`registry`]:
//!
//! * [`cpu::CpuEngine`] (`scalar`) — the single-threaded reference (the
//!   paper's "sequential counterpart running on a single threaded CPU");
//! * [`pooled::PooledEngine`] (`pooled`) — the tile-parallel pooled CPU
//!   engine: host-side row bands on a `simt` worker pool with
//!   conflict-free movement claims;
//! * [`gpu::GpuEngine`] (`simt`) — the data-driven kernel pipeline on the
//!   `simt` virtual GPU (sequential or parallel execution policy).
//!
//! All consume counter-based randomness keyed by `(seed, entity id, step
//! salt)`, so for equal configurations their trajectories are
//! **bit-identical** — asserted by `validate::engines_agree`, the
//! cross-backend golden parity tests, and the integration tests, and then
//! relaxed into the paper's statistical CPU-vs-GPU comparison for
//! Figure 6b.

pub mod cpu;
pub mod gpu;
pub mod lifecycle;
pub mod pipeline;
pub mod pooled;
pub mod registry;
pub mod stop;

use pedsim_grid::Matrix;

use crate::metrics::Metrics;
use crate::params::ModelKind;

pub use lifecycle::source_stream;
pub use pipeline::{
    Stage, StageBackend, StepCore, StepTimings, KERNEL_BLOCK_KEYS, KERNEL_LAUNCH_KEYS,
    KERNEL_THREAD_KEYS, STEPS_KEY,
};
pub use registry::{Backend, EngineBackend, UnknownBackend, BACKENDS};
pub use stop::{InvalidStopCondition, StopCondition, StopReason};

/// Why a mid-run model swap was rejected: the model *variant* changed. A
/// LEM run has no pheromone substrate to become an ACO run (and an ACO
/// run's trails mean nothing to LEM), so engines only accept parameter
/// overlays within the running variant — the panic-alarm extension's
/// use case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelSwapError {
    /// The variant the engine is running.
    pub running: &'static str,
    /// The variant the caller asked for.
    pub requested: &'static str,
}

impl std::fmt::Display for ModelSwapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "model variant cannot change mid-run: engine runs {}, swap requested {}",
            self.running, self.requested
        )
    }
}

impl std::error::Error for ModelSwapError {}

/// Shared implementation of the engines' `set_model`: accept a parameter
/// overlay within the running variant, reject a variant change with a
/// typed error.
pub(crate) fn swap_model(current: &mut ModelKind, model: ModelKind) -> Result<(), ModelSwapError> {
    if model.is_aco() != current.is_aco() {
        return Err(ModelSwapError {
            running: current.name(),
            requested: model.name(),
        });
    }
    *current = model;
    Ok(())
}

/// Salted kernel indices within a step: `salt = step * 4 + KERNEL_*`.
pub(crate) const KERNEL_TOUR: u64 = 2;
/// Movement kernel salt offset.
pub(crate) const KERNEL_MOVE: u64 = 3;

/// Common engine interface.
pub trait Engine {
    /// Advance one time step (all four kernels).
    fn step(&mut self);

    /// Steps completed so far.
    fn steps_done(&self) -> u64;

    /// Metrics, when tracking is enabled.
    fn metrics(&self) -> Option<&Metrics>;

    /// Cumulative per-stage wall-clock timings of the unified step
    /// pipeline (see [`pipeline::StepTimings`]) — reported identically by
    /// both engines.
    fn step_timings(&self) -> &StepTimings;

    /// The engine's telemetry recorder: per-stage duration histograms,
    /// kernel-launch counters, physics gauges, and the ring-buffered
    /// event log, fed by the unified step pipeline. Both engines expose
    /// the **same key vocabulary** — counters a backend has no machinery
    /// for (e.g. kernel launches on the CPU) are pre-registered at zero,
    /// so consumers never branch on the engine kind.
    fn telemetry(&self) -> &pedsim_obs::Recorder;

    /// The movement model in use.
    fn model(&self) -> ModelKind;

    /// The traversal mode this engine resolved at build time (`Auto`
    /// settles to `Dense` or `Sparse` against the world's initial
    /// occupancy; explicit modes pass through). Recorded in bench and
    /// run provenance.
    fn iteration_mode(&self) -> crate::params::IterationMode;

    /// Snapshot of the environment matrix (cell labels).
    fn mat_snapshot(&self) -> Matrix<u8>;

    /// Snapshot of agent positions: `(row, col)` vectors indexed by agent
    /// (slot 0 = sentinel).
    fn positions(&self) -> (Vec<u16>, Vec<u16>);

    /// Run `n` steps.
    fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Run until `cond` is satisfied, returning why the run stopped, or a
    /// typed [`InvalidStopCondition`] when the condition could never be
    /// evaluated on this engine — checked **at entry**, before any step
    /// runs. A metric-based condition (`AllArrived` / `Gridlocked` /
    /// `SteadyState`) on an engine built with `track_metrics` off is
    /// rejected here instead of panicking deep inside
    /// [`StopCondition::check`] mid-run.
    ///
    /// The condition is checked before the first step and after every
    /// subsequent one, so a condition already satisfied at entry performs
    /// zero steps. Callers that cannot guarantee eventual arrival should
    /// compose a [`StopCondition::Steps`] cap via
    /// [`StopCondition::arrived_or_steps`] or
    /// [`StopCondition::settled_or_steps`] — an unsatisfiable condition
    /// loops forever.
    fn try_run_until(&mut self, cond: &StopCondition) -> Result<StopReason, InvalidStopCondition> {
        cond.validate_for(self.metrics().is_some())?;
        loop {
            if let Some(reason) = cond.check(self.steps_done(), self.metrics()) {
                return Ok(reason);
            }
            self.step();
        }
    }

    /// [`Engine::try_run_until`], panicking at entry (with the typed
    /// error's message) on a condition this engine can never evaluate.
    fn run_until(&mut self, cond: &StopCondition) -> StopReason {
        self.try_run_until(cond)
            .unwrap_or_else(|e| panic!("invalid stop condition: {e}"))
    }
}

/// Boxed engines delegate, so registry-built `Box<dyn Engine>` values run
/// through the same generic call sites (e.g. the runner's `finish`) as
/// concrete engines.
impl<T: Engine + ?Sized> Engine for Box<T> {
    fn step(&mut self) {
        (**self).step();
    }

    fn steps_done(&self) -> u64 {
        (**self).steps_done()
    }

    fn metrics(&self) -> Option<&Metrics> {
        (**self).metrics()
    }

    fn step_timings(&self) -> &StepTimings {
        (**self).step_timings()
    }

    fn telemetry(&self) -> &pedsim_obs::Recorder {
        (**self).telemetry()
    }

    fn model(&self) -> ModelKind {
        (**self).model()
    }

    fn iteration_mode(&self) -> crate::params::IterationMode {
        (**self).iteration_mode()
    }

    fn mat_snapshot(&self) -> Matrix<u8> {
        (**self).mat_snapshot()
    }

    fn positions(&self) -> (Vec<u16>, Vec<u16>) {
        (**self).positions()
    }
}
