//! The single-threaded reference engine (the paper's CPU implementation).
//!
//! A direct sequential port of the four-kernel pipeline: the same pure
//! model functions the GPU kernels call, in plain nested loops, over the
//! host-side matrices. Randomness uses the same `(seed, entity, salt)`
//! keying as the virtual-GPU kernels, so this engine's trajectory is
//! bit-identical to `GpuEngine`'s for the same configuration — the
//! strongest possible form of the paper's CPU-vs-GPU consistency check.
//!
//! Step orchestration (sequencing, counting, per-stage timing, metrics,
//! lifecycle) lives in the shared [`StepCore`]; this file only implements
//! the four kernel stages over the host matrices ([`StageBackend`]).

use pedsim_grid::cell::{Group, CELL_EMPTY, CELL_WALL, NEIGHBOR_OFFSETS};
use pedsim_grid::property::NO_FUTURE;
use pedsim_grid::scan::{ScanMatrix, TourLengths};
use pedsim_grid::{DistanceData, EnvConfig, Environment, Matrix, PheromoneField};
use philox::StreamRng;

use crate::metrics::{Geometry, Metrics};
use crate::model::{aco_scan_row, aco_select, front_status, gather_winner};
use crate::model::{lem_scan_row, lem_select, ScanRow};
use crate::params::{IterationMode, ModelKind, SimConfig};

use super::lifecycle::{LifecycleWorld, OpenLifecycle};
use super::pipeline::{Stage, StageBackend, StepCore, StepTimings};
use super::{swap_model, Engine, ModelSwapError, KERNEL_MOVE, KERNEL_TOUR};
use crate::world::CompiledWorld;

/// The sequential reference engine.
pub struct CpuEngine {
    core: StepCore,
    backend: CpuBackend,
}

/// The CPU engine's kernel-stage executor: the host-side world state the
/// four stages loop over.
struct CpuBackend {
    cfg: SimConfig,
    geom: Geometry,
    env: Environment,
    mat_next: Matrix<u8>,
    index_next: Matrix<u32>,
    scan: ScanMatrix,
    tour: TourLengths,
    pher: Option<PheromoneField>,
    pher_next: Option<PheromoneField>,
    dist: std::sync::Arc<DistanceData>,
    seed: u64,
    /// Traversal mode, resolved from the configuration at build time
    /// (`Auto` → initial occupancy vs the threshold).
    mode: IterationMode,
    /// Scratch list of resolved movers for the sparse movement pass:
    /// `(slot, dst_row, dst_col, step_len)`.
    winners: Vec<(u32, u16, u16, f32)>,
}

/// The lifecycle's view of a host-side engine's world: the host
/// environment plus the tour lengths (a recycled slot starts a fresh
/// tour). Shared by every backend that keeps its state in an
/// [`Environment`] — the scalar engine here and the pooled engine.
pub(crate) struct HostWorld<'a> {
    pub(crate) env: &'a mut Environment,
    pub(crate) tour: &'a mut TourLengths,
    /// Sparse-mode row buckets to keep in lock-step with the liveness
    /// table (`None` for dense backends and the scalar engine).
    pub(crate) buckets: Option<&'a mut super::pooled::RowBuckets>,
}

impl LifecycleWorld for HostWorld<'_> {
    fn is_alive(&self, i: usize) -> bool {
        self.env.is_alive(i)
    }

    fn position(&self, i: usize) -> (u16, u16) {
        self.env.props.position(i)
    }

    fn is_cell_empty(&self, r: u16, c: u16) -> bool {
        self.env.mat.get(r as usize, c as usize) == CELL_EMPTY
    }

    fn despawn(&mut self, g: Group, i: usize) {
        self.env.despawn(g, i);
        if let Some(b) = self.buckets.as_deref_mut() {
            b.remove(i as u32);
        }
    }

    fn spawn(&mut self, g: Group, r: u16, c: u16) -> Option<u32> {
        let idx = self.env.spawn_from_free(g, r, c)?;
        self.tour.len[idx as usize] = 0.0;
        if let Some(b) = self.buckets.as_deref_mut() {
            b.insert(idx, r);
        }
        Some(idx)
    }
}

impl CpuEngine {
    /// Build the engine (runs the data-preparation stage, §IV.a — from the
    /// attached scenario when present, else the classic corridor). A thin
    /// compile-then-construct wrapper over [`CpuEngine::from_world`].
    pub fn new(cfg: SimConfig) -> Self {
        let world = CompiledWorld::compile(&cfg);
        Self::from_world(&world, cfg)
    }

    /// Build per-replica engine state from an already compiled world —
    /// the shared-artifact stage of the setup pipeline. Clones the placed
    /// environment template and shares the distance planes; bit-identical
    /// to [`CpuEngine::new`] on the same configuration.
    pub fn from_world(world: &std::sync::Arc<CompiledWorld>, cfg: SimConfig) -> Self {
        debug_assert!(
            world.matches(&cfg),
            "CompiledWorld was compiled from a different configuration"
        );
        let env = world.environment();
        let dist = world.distance();
        let geom = world.geometry();
        let core = StepCore::for_world(&cfg, &env, geom);
        let n = env.total_agents();
        let groups = env.n_groups();
        let (pher, pher_next) = match cfg.model {
            ModelKind::Aco(p) => (
                Some(PheromoneField::with_groups(
                    env.height(),
                    env.width(),
                    p.tau0,
                    groups,
                )),
                Some(PheromoneField::with_groups(
                    env.height(),
                    env.width(),
                    p.tau0,
                    groups,
                )),
            ),
            ModelKind::Lem(_) => (None, None),
        };
        let (h, w) = (env.height(), env.width());
        let seed = cfg.env.seed;
        let mode = cfg.iteration.resolve(env.live_count(), h * w);
        Self {
            core,
            backend: CpuBackend {
                cfg,
                geom,
                mat_next: Matrix::filled(h, w, CELL_EMPTY),
                index_next: Matrix::filled(h, w, 0u32),
                scan: ScanMatrix::new(n),
                tour: TourLengths::new(n),
                pher,
                pher_next,
                dist,
                seed,
                mode,
                winners: Vec::new(),
                env,
            },
        }
    }

    /// Borrow the current environment state.
    pub fn environment(&self) -> &Environment {
        &self.backend.env
    }

    /// Replace the model parameters mid-run (the panic-alarm extension).
    /// A model-*variant* change is a typed error — a LEM run has no
    /// pheromone substrate to become an ACO run.
    pub fn set_model(&mut self, model: ModelKind) -> Result<(), ModelSwapError> {
        swap_model(&mut self.backend.cfg.model, model)
    }

    /// Borrow the pheromone field (ACO only).
    pub fn pheromone(&self) -> Option<&PheromoneField> {
        self.backend.pher.as_ref()
    }

    /// Borrow accumulated tour lengths.
    pub fn tour_lengths(&self) -> &TourLengths {
        &self.backend.tour
    }
}

impl CpuBackend {
    fn stage_init(&mut self) {
        // Supporting kernel (§IV.e): clear scan + FUTURE.
        self.scan.clear();
        self.env.props.future_row.fill(NO_FUTURE);
        self.env.props.future_col.fill(NO_FUTURE);
    }

    fn stage_initial_calc(&mut self) {
        // §IV.b: per occupied cell, score the neighbourhood into the scan
        // matrix and record the front-cell status.
        let (h, w) = (self.geom.height, self.geom.width);
        let mat = &self.env.mat;
        let dist = self.dist.dist_ref();
        let occ = |r: i64, c: i64| mat.get_or(r, c, CELL_WALL);
        for r in 0..h {
            for c in 0..w {
                let a = self.env.index.get(r, c);
                if a == 0 {
                    continue;
                }
                let label = mat.get(r, c);
                let g = Group::from_label(label).expect("indexed cell has group label");
                let row: ScanRow = match self.cfg.model {
                    ModelKind::Lem(p) => {
                        lem_scan_row(&occ, dist, g, r as i64, c as i64, p.scan_range)
                    }
                    ModelKind::Aco(p) => {
                        let field = self.pher.as_ref().expect("ACO has pheromone");
                        let tf = field.of(g);
                        let tau = |rr: i64, cc: i64| tf.get_or(rr, cc, 0.0);
                        aco_scan_row(&occ, &tau, dist, &p, g, r as i64, c as i64)
                    }
                };
                let ai = a as usize;
                for slot in 0..8 {
                    self.scan.set(ai, slot, row.vals[slot], row.idxs[slot]);
                }
                let fk = dist.front_k(g, r as i64, c as i64);
                self.env.props.front[ai] = front_status(&occ, fk, r as i64, c as i64);
                self.env.props.front_k[ai] = fk as u8;
            }
        }
    }

    fn stage_tour(&mut self, step_no: u64) {
        // §IV.c: every agent picks its future cell.
        let salt = step_no * 4 + KERNEL_TOUR;
        let n = self.geom.total_agents();
        for i in 1..=n {
            // Dead slots (open-boundary recycling pool) are not on the
            // grid and make no decision; their future stays NO_FUTURE from
            // the init stage.
            if !self.env.alive[i] {
                continue;
            }
            let mut rng = StreamRng::with_offset(self.seed, i as u64, salt << 4);
            let row = ScanRow {
                vals: self.scan.row_vals(i).try_into().expect("8 slots"),
                idxs: self.scan.row_idxs(i).try_into().expect("8 slots"),
            };
            let front = self.env.props.front[i];
            let front_k = self.env.props.front_k[i] as usize;
            let k = match self.cfg.model {
                ModelKind::Lem(p) => lem_select(&row, front, front_k, &p, &mut rng),
                ModelKind::Aco(p) => aco_select(&row, front, front_k, &p, &mut rng),
            };
            match k {
                Some(k) => {
                    let (dr, dc) = NEIGHBOR_OFFSETS[k];
                    let (ar, ac) = self.env.props.position(i);
                    self.env.props.future_row[i] = (i64::from(ar) + dr) as u16;
                    self.env.props.future_col[i] = (i64::from(ac) + dc) as u16;
                }
                None => {
                    self.env.props.future_row[i] = NO_FUTURE;
                    self.env.props.future_col[i] = NO_FUTURE;
                }
            }
        }
    }

    fn stage_movement(&mut self, step_no: u64) {
        // §IV.d: scatter-to-gather movement + pheromone update.
        let salt = step_no * 4 + KERNEL_MOVE;
        let (h, w) = (self.geom.height, self.geom.width);
        let aco = match self.cfg.model {
            ModelKind::Aco(p) => Some(p),
            ModelKind::Lem(_) => None,
        };
        let counter_base = salt << 4;
        {
            let mat = &self.env.mat;
            let index = &self.env.index;
            let props = &self.env.props;
            let occ = |r: i64, c: i64| mat.get_or(r, c, CELL_WALL);
            let idx = |r: i64, c: i64| index.get_or(r, c, 0);
            let fut = |a: u32| (props.future_row[a as usize], props.future_col[a as usize]);
            for r in 0..h {
                for c in 0..w {
                    let lin = (r * w + c) as u64;
                    let mut rng = StreamRng::with_offset(self.seed, lin, counter_base);
                    let arrival = gather_winner(&occ, &idx, &fut, r as i64, c as i64, &mut rng);
                    let own = index.get(r, c);
                    let (new_label, new_index) = if let Some(arr) = arrival {
                        (props.id[arr.agent as usize], arr.agent)
                    } else if own != 0 && props.future_row[own as usize] != NO_FUTURE {
                        // Recompute the decision at our agent's target with
                        // the target cell's own stream — identical draw.
                        let fr = i64::from(props.future_row[own as usize]);
                        let fc = i64::from(props.future_col[own as usize]);
                        let tlin = (fr as usize * w + fc as usize) as u64;
                        let mut trng = StreamRng::with_offset(self.seed, tlin, counter_base);
                        let wins = gather_winner(&occ, &idx, &fut, fr, fc, &mut trng)
                            .is_some_and(|a| a.agent == own);
                        if wins {
                            (CELL_EMPTY, 0)
                        } else {
                            (mat.get(r, c), own)
                        }
                    } else {
                        (mat.get(r, c), own)
                    };
                    self.mat_next.set(r, c, new_label);
                    self.index_next.set(r, c, new_index);

                    // Pheromone: evaporate everywhere, deposit on arrival
                    // (credited to the arriving agent's group plane).
                    if let Some(p) = aco {
                        let deposit: Option<(usize, f32)> = arrival.map(|arr| {
                            let a = arr.agent as usize;
                            let l_new = self.tour.get(a) + arr.step_len();
                            let g =
                                Group::from_label(props.id[a]).expect("arrival has a group label");
                            (g.index(), p.q / l_new)
                        });
                        let pin = self.pher.as_ref().expect("ACO pheromone");
                        let pout = self.pher_next.as_mut().expect("ACO pheromone");
                        for gi in 0..pin.groups() {
                            let g = Group::new(gi);
                            let dep = match deposit {
                                Some((dg, amount)) if dg == gi => amount,
                                _ => 0.0,
                            };
                            let next = PheromoneField::fused_update(
                                pin.of(g).get(r, c),
                                p.tau0,
                                p.rho,
                                dep,
                            );
                            pout.of_mut(g).set(r, c, next);
                        }
                    }
                }
            }
        }

        // Apply the winners' property/tour updates (owned by the target
        // cell in the GPU formulation; sequential here).
        for r in 0..h {
            for c in 0..w {
                let a = self.index_next.get(r, c);
                if a != 0 && self.env.index.get(r, c) != a {
                    let ai = a as usize;
                    let (or, oc) = self.env.props.position(ai);
                    let dr = (r as i64 - i64::from(or)).unsigned_abs();
                    let dc = (c as i64 - i64::from(oc)).unsigned_abs();
                    let step_len = if dr + dc == 2 {
                        std::f32::consts::SQRT_2
                    } else {
                        1.0
                    };
                    self.env.props.row[ai] = r as u16;
                    self.env.props.col[ai] = c as u16;
                    self.env.pos[ai] = (r * w + c) as u32;
                    if aco.is_some() {
                        self.tour.add(ai, step_len);
                    }
                }
            }
        }

        std::mem::swap(&mut self.env.mat, &mut self.mat_next);
        std::mem::swap(&mut self.env.index, &mut self.index_next);
        if aco.is_some() {
            std::mem::swap(&mut self.pher, &mut self.pher_next);
        }
    }

    // ---- sparse (agent-centric) stage variants ----------------------
    //
    // Byte-identical to the dense stages above: the per-cell Philox
    // streams are keyed by cell linear index, so visiting only the cells
    // live agents actually target consumes the exact draws the dense
    // sweep would, and the slot-keyed writes (scan rows, futures,
    // properties) land on the same slots with the same values.

    fn stage_init_sparse(&mut self) {
        // Only live slots are read downstream (sparse InitialCalc rewrites
        // their scan rows; Tour rewrites their futures), so clearing the
        // futures of live slots is the full contract — dead slots' stale
        // records are never read by any sparse stage.
        let n = self.geom.total_agents();
        for i in 1..=n {
            if self.env.alive[i] {
                self.env.props.future_row[i] = NO_FUTURE;
                self.env.props.future_col[i] = NO_FUTURE;
            }
        }
    }

    fn stage_initial_calc_sparse(&mut self) {
        // One pass per live agent instead of per cell: the scan row and
        // front status are slot-keyed, so iterating slots in ascending
        // order writes exactly what the dense cell sweep writes.
        let mat = &self.env.mat;
        let dist = self.dist.dist_ref();
        let occ = |r: i64, c: i64| mat.get_or(r, c, CELL_WALL);
        let n = self.geom.total_agents();
        for i in 1..=n {
            if !self.env.alive[i] {
                continue;
            }
            let (r, c) = (
                self.env.props.row[i] as usize,
                self.env.props.col[i] as usize,
            );
            let label = self.env.props.id[i];
            let g = Group::from_label(label).expect("live slot has group label");
            let row: ScanRow = match self.cfg.model {
                ModelKind::Lem(p) => lem_scan_row(&occ, dist, g, r as i64, c as i64, p.scan_range),
                ModelKind::Aco(p) => {
                    let field = self.pher.as_ref().expect("ACO has pheromone");
                    let tf = field.of(g);
                    let tau = |rr: i64, cc: i64| tf.get_or(rr, cc, 0.0);
                    aco_scan_row(&occ, &tau, dist, &p, g, r as i64, c as i64)
                }
            };
            for slot in 0..8 {
                self.scan.set(i, slot, row.vals[slot], row.idxs[slot]);
            }
            let fk = dist.front_k(g, r as i64, c as i64);
            self.env.props.front[i] = front_status(&occ, fk, r as i64, c as i64);
            self.env.props.front_k[i] = fk as u8;
        }
    }

    fn stage_movement_sparse(&mut self, step_no: u64) {
        // Resolve phase: each live agent with a future recomputes the
        // winner at its *target* cell with that cell's own stream — the
        // same draw the dense sweep makes there — and records itself when
        // it wins. Every contested cell is resolved (identically) by each
        // claimant; exactly the winner pushes.
        let salt = step_no * 4 + KERNEL_MOVE;
        let counter_base = salt << 4;
        let w = self.geom.width;
        let aco = match self.cfg.model {
            ModelKind::Aco(p) => Some(p),
            ModelKind::Lem(_) => None,
        };
        self.winners.clear();
        {
            let mat = &self.env.mat;
            let index = &self.env.index;
            let props = &self.env.props;
            let occ = |r: i64, c: i64| mat.get_or(r, c, CELL_WALL);
            let idx = |r: i64, c: i64| index.get_or(r, c, 0);
            let fut = |a: u32| (props.future_row[a as usize], props.future_col[a as usize]);
            let n = self.geom.total_agents();
            for i in 1..=n {
                if !self.env.alive[i] || props.future_row[i] == NO_FUTURE {
                    continue;
                }
                let fr = i64::from(props.future_row[i]);
                let fc = i64::from(props.future_col[i]);
                let tlin = (fr as usize * w + fc as usize) as u64;
                let mut trng = StreamRng::with_offset(self.seed, tlin, counter_base);
                if let Some(arr) = gather_winner(&occ, &idx, &fut, fr, fc, &mut trng) {
                    if arr.agent == i as u32 {
                        self.winners
                            .push((i as u32, fr as u16, fc as u16, arr.step_len()));
                    }
                }
            }
        }

        // Pheromone phase (ACO): evaporate every cell of every plane, then
        // overwrite the winners' destination cells on their group plane
        // with the fused evaporate+deposit the dense sweep computes there.
        // Runs before the apply phase so `tour` still holds L_k without
        // this step's segment (l_new = L_k + step_len, as dense).
        if let Some(p) = aco {
            let pin = self.pher.as_ref().expect("ACO pheromone");
            let pout = self.pher_next.as_mut().expect("ACO pheromone");
            for gi in 0..pin.groups() {
                let g = Group::new(gi);
                let src = pin.of(g).as_slice();
                let dst = pout.of_mut(g).as_mut_slice();
                for (o, &i) in dst.iter_mut().zip(src) {
                    *o = PheromoneField::fused_update(i, p.tau0, p.rho, 0.0);
                }
            }
            for &(a, fr, fc, step_len) in &self.winners {
                let ai = a as usize;
                let l_new = self.tour.get(ai) + step_len;
                let g = Group::from_label(self.env.props.id[ai]).expect("winner has group label");
                let next = PheromoneField::fused_update(
                    pin.of(g).get(fr as usize, fc as usize),
                    p.tau0,
                    p.rho,
                    p.q / l_new,
                );
                pout.of_mut(g).set(fr as usize, fc as usize, next);
            }
        }

        // Apply phase, in place: winners' source cells (all occupied at
        // step start) and destination cells (all empty at step start) are
        // disjoint sets, so clear-src/set-dst per winner is order-free and
        // lands the exact grid the dense write-then-swap produces.
        for &(a, fr, fc, step_len) in &self.winners {
            let ai = a as usize;
            let (or, oc) = self.env.props.position(ai);
            self.env.mat.set(or as usize, oc as usize, CELL_EMPTY);
            self.env.index.set(or as usize, oc as usize, 0);
            self.env
                .mat
                .set(fr as usize, fc as usize, self.env.props.id[ai]);
            self.env.index.set(fr as usize, fc as usize, a);
            self.env.props.row[ai] = fr;
            self.env.props.col[ai] = fc;
            self.env.pos[ai] = fr as u32 * w as u32 + fc as u32;
            if aco.is_some() {
                self.tour.add(ai, step_len);
            }
        }

        if aco.is_some() {
            std::mem::swap(&mut self.pher, &mut self.pher_next);
        }
    }
}

impl StageBackend for CpuBackend {
    fn run_stage(&mut self, stage: Stage, step_no: u64, _rec: &mut pedsim_obs::Recorder) {
        // The CPU has no launch machinery to report; its kernel counters
        // stay at the zeros the core pre-registered.
        let sparse = self.mode == IterationMode::Sparse;
        match stage {
            Stage::Init if sparse => self.stage_init_sparse(),
            Stage::Init => self.stage_init(),
            Stage::InitialCalc if sparse => self.stage_initial_calc_sparse(),
            Stage::InitialCalc => self.stage_initial_calc(),
            // Tour is slot-keyed in both modes: the loop below already
            // walks live slots in ascending order.
            Stage::Tour => self.stage_tour(step_no),
            Stage::Movement if sparse => self.stage_movement_sparse(step_no),
            Stage::Movement => self.stage_movement(step_no),
            Stage::Lifecycle | Stage::Metrics => unreachable!("core-driven stage"),
        }
    }

    fn observe(&self, metrics: &mut Metrics) {
        metrics.observe(&self.env.props.row, &self.env.props.col);
    }

    fn run_lifecycle(
        &mut self,
        lifecycle: &OpenLifecycle,
        step: u64,
        metrics: Option<&mut Metrics>,
    ) {
        let mut world = HostWorld {
            env: &mut self.env,
            tour: &mut self.tour,
            buckets: None,
        };
        lifecycle.run_step(&mut world, step, metrics);
    }
}

impl Engine for CpuEngine {
    fn step(&mut self) {
        self.core.step(&mut self.backend);
    }

    fn steps_done(&self) -> u64 {
        self.core.steps_done()
    }

    fn metrics(&self) -> Option<&Metrics> {
        self.core.metrics()
    }

    fn step_timings(&self) -> &StepTimings {
        self.core.timings()
    }

    fn telemetry(&self) -> &pedsim_obs::Recorder {
        self.core.recorder()
    }

    fn model(&self) -> ModelKind {
        self.backend.cfg.model
    }

    fn iteration_mode(&self) -> IterationMode {
        self.backend.mode
    }

    fn mat_snapshot(&self) -> Matrix<u8> {
        self.backend.env.mat.clone()
    }

    fn positions(&self) -> (Vec<u16>, Vec<u16>) {
        (
            self.backend.env.props.row.clone(),
            self.backend.env.props.col.clone(),
        )
    }
}

/// Convenience: build a CPU engine for a small scenario (tests/examples).
pub fn cpu_engine_small(
    width: usize,
    height: usize,
    per_side: usize,
    model: ModelKind,
    seed: u64,
) -> CpuEngine {
    let env = EnvConfig::small(width, height, per_side).with_seed(seed);
    CpuEngine::new(SimConfig::new(env, model).with_checked(true))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{AcoParams, LemParams};

    fn run_small(model: ModelKind, steps: u64) -> CpuEngine {
        let mut e = cpu_engine_small(32, 32, 30, model, 42);
        e.run(steps);
        e
    }

    #[test]
    fn sparse_matches_dense_bit_for_bit() {
        for model in [ModelKind::lem(), ModelKind::aco()] {
            let env = EnvConfig::small(32, 32, 30).with_seed(42);
            let base = SimConfig::new(env, model).with_checked(true);
            let mut dense = CpuEngine::new(base.clone().with_iteration_mode(IterationMode::Dense));
            let mut sparse =
                CpuEngine::new(base.clone().with_iteration_mode(IterationMode::Sparse));
            assert_eq!(dense.iteration_mode(), IterationMode::Dense);
            assert_eq!(sparse.iteration_mode(), IterationMode::Sparse);
            for step in 1..=40u64 {
                dense.step();
                sparse.step();
                assert_eq!(
                    dense.mat_snapshot(),
                    sparse.mat_snapshot(),
                    "{} diverged at step {step}",
                    model.name()
                );
                assert_eq!(dense.positions(), sparse.positions());
                sparse
                    .environment()
                    .check_consistency()
                    .expect("sparse consistent");
            }
            if model.is_aco() {
                assert_eq!(
                    dense.pheromone().unwrap().of(Group::TOP).as_slice(),
                    sparse.pheromone().unwrap().of(Group::TOP).as_slice(),
                    "pheromone diverged"
                );
            }
        }
    }

    #[test]
    fn auto_resolves_sparse_on_corridor_occupancy() {
        // 32×32 with 30+30 agents is ~6 % occupancy — Auto goes sparse.
        let e = cpu_engine_small(32, 32, 30, ModelKind::lem(), 1);
        assert_eq!(e.iteration_mode(), IterationMode::Sparse);
        // Near-jammed world stays dense.
        let env = EnvConfig::small(16, 16, 40).with_seed(1);
        let e = CpuEngine::new(SimConfig::new(env, ModelKind::lem()));
        assert_eq!(e.iteration_mode(), IterationMode::Dense);
    }

    #[test]
    fn agents_conserved_lem() {
        let e = run_small(ModelKind::lem(), 50);
        e.environment().check_consistency().expect("consistent");
    }

    #[test]
    fn agents_conserved_aco() {
        let e = run_small(ModelKind::aco(), 50);
        e.environment().check_consistency().expect("consistent");
    }

    #[test]
    fn agents_make_progress() {
        let e = run_small(ModelKind::lem(), 100);
        let m = e.metrics().expect("metrics on");
        assert!(m.total_moves > 0, "nobody moved in 100 steps");
        // On a 32-row grid with ~4 spawn rows, 100 steps crosses many.
        assert!(m.throughput() > 0, "no crossings after 100 steps");
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run_small(ModelKind::aco(), 30);
        let b = run_small(ModelKind::aco(), 30);
        assert_eq!(a.mat_snapshot(), b.mat_snapshot());
        assert_eq!(a.positions(), b.positions());
    }

    #[test]
    fn seeds_change_trajectories() {
        let mut a = cpu_engine_small(32, 32, 30, ModelKind::lem(), 1);
        let mut b = cpu_engine_small(32, 32, 30, ModelKind::lem(), 2);
        a.run(20);
        b.run(20);
        assert_ne!(a.mat_snapshot(), b.mat_snapshot());
    }

    #[test]
    fn moves_are_single_cell() {
        let mut e = cpu_engine_small(24, 24, 20, ModelKind::lem(), 7);
        let (mut pr, mut pc) = e.positions();
        for _ in 0..30 {
            e.step();
            let (r, c) = e.positions();
            for i in 1..r.len() {
                let dr = (i64::from(r[i]) - i64::from(pr[i])).abs();
                let dc = (i64::from(c[i]) - i64::from(pc[i])).abs();
                assert!(dr <= 1 && dc <= 1, "agent {i} jumped ({dr},{dc})");
            }
            pr = r;
            pc = c;
        }
    }

    #[test]
    fn pheromone_stays_positive_and_grows_on_trails() {
        let e = run_small(ModelKind::aco(), 40);
        let p = e.pheromone().expect("ACO field");
        assert!(p
            .of(Group::TOP)
            .as_slice()
            .iter()
            .all(|&v| v >= p.tau0 * 0.999));
        // Somewhere, someone deposited.
        let max = p
            .of(Group::TOP)
            .as_slice()
            .iter()
            .cloned()
            .fold(0.0f32, f32::max);
        assert!(max > p.tau0, "no deposits after 40 steps");
    }

    #[test]
    fn tour_lengths_accumulate_for_aco() {
        let e = run_small(ModelKind::aco(), 40);
        let total: f32 = e.tour_lengths().len.iter().sum();
        assert!(total > 0.0);
    }

    #[test]
    fn set_model_rejects_variant_change_with_typed_error() {
        let mut e = cpu_engine_small(16, 16, 4, ModelKind::lem(), 1);
        let err = e.set_model(ModelKind::aco()).unwrap_err();
        assert_eq!(err.running, "LEM");
        assert_eq!(err.requested, "ACO");
        assert!(err.to_string().contains("variant"));
        // Parameter overlays within the running variant stay fine — the
        // panic-alarm extension's happy path.
        let overlay = ModelKind::Lem(LemParams {
            sigma: 4.0,
            ..LemParams::default()
        });
        assert!(e.set_model(overlay).is_ok());
        assert_eq!(e.model(), overlay);
    }

    #[test]
    fn forward_priority_off_still_works() {
        let model = ModelKind::Lem(LemParams {
            forward_priority: false,
            ..LemParams::default()
        });
        let e = run_small(model, 30);
        e.environment().check_consistency().expect("consistent");
    }

    #[test]
    fn high_evaporation_keeps_field_near_floor() {
        let model = ModelKind::Aco(AcoParams {
            rho: 1.0,
            ..AcoParams::default()
        });
        let e = run_small(model, 20);
        let p = e.pheromone().expect("field");
        // With ρ=1 everything evaporates to the floor each step except
        // fresh deposits.
        let above = p
            .of(Group::TOP)
            .as_slice()
            .iter()
            .filter(|&&v| v > p.tau0 * 1.5)
            .count();
        assert!(above < 40, "{above} cells hold stale pheromone");
    }
}
