//! The unified step-pipeline core both engines drive.
//!
//! Before this module existed, `CpuEngine::step` and `GpuEngine::step`
//! each hand-rolled the same orchestration: run the four kernels in
//! order, bump the step counter, observe metrics, run the open-boundary
//! lifecycle. Only the GPU engine measured its stages. [`StepCore`] owns
//! that orchestration exactly once — engines shrink to backend-specific
//! stage executors behind [`StageBackend`] — and times **every** stage of
//! **both** engines into a [`StepTimings`] report exposed through
//! [`super::Engine::step_timings`]. That per-stage record is the paper's
//! per-kernel speedup instrument generalised to the whole pipeline: the
//! `step_throughput` bench harness turns it into the repo's perf
//! trajectory, and every future optimisation PR is judged against it.
//!
//! Ordering is part of the trajectory contract and is pinned here: the
//! four kernel stages in §IV order, then the metrics observation, then
//! the lifecycle phases (sinks drain arrivals *after* they were counted;
//! sources feed the next step). Timing instrumentation never reorders or
//! skips work, so trajectories through the core are bit-identical to the
//! pre-refactor engines — asserted by the golden hashes in
//! `tests/multi_group.rs`.

use std::time::{Duration, Instant};

use pedsim_obs::Recorder;

use crate::metrics::{Metrics, GRIDLOCK_WARNING_WINDOW};

use super::lifecycle::OpenLifecycle;

/// Telemetry counter keys for per-kernel launch counts, indexed like
/// [`Stage::KERNELS`]. Registered at zero on **both** engines by
/// [`StepCore`], so CPU and GPU telemetry always share one shape; only
/// the GPU backend increments them.
pub const KERNEL_LAUNCH_KEYS: [&str; 4] = [
    "kernel.init.launches",
    "kernel.initial_calc.launches",
    "kernel.tour.launches",
    "kernel.movement.launches",
];

/// Telemetry counter keys for cumulative blocks launched per kernel
/// (see [`KERNEL_LAUNCH_KEYS`]).
pub const KERNEL_BLOCK_KEYS: [&str; 4] = [
    "kernel.init.blocks",
    "kernel.initial_calc.blocks",
    "kernel.tour.blocks",
    "kernel.movement.blocks",
];

/// Telemetry counter keys for cumulative threads launched per kernel
/// (see [`KERNEL_LAUNCH_KEYS`]).
pub const KERNEL_THREAD_KEYS: [&str; 4] = [
    "kernel.init.threads",
    "kernel.initial_calc.threads",
    "kernel.tour.threads",
    "kernel.movement.threads",
];

/// Telemetry counter key for completed pipeline steps.
pub const STEPS_KEY: &str = "pipeline.steps";

/// The gauge level at which the gridlock early warning fires a
/// telemetry event (and re-arms once the gauge falls back below).
pub const GRIDLOCK_EVENT_THRESHOLD: f64 = 0.5;

/// One phase of the unified step pipeline.
///
/// The first four variants are the paper's kernels (§IV.b–e) executed by
/// the backend; the last two are the shared post-step tail the core runs
/// itself. Declaration order is the stable report order, not the
/// execution order of the tail (metrics are observed before the
/// lifecycle runs, so sinks drain arrivals that were already counted).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Supporting initialisation (§IV.e): clear the scan matrix and the
    /// FUTURE buffers.
    Init,
    /// Initial calculation (§IV.b): score each occupied cell's
    /// neighbourhood and record front-cell status.
    InitialCalc,
    /// Tour construction (§IV.c): every agent picks its future cell.
    Tour,
    /// Agent movement (§IV.d): scatter-to-gather conflict resolution and
    /// the pheromone update.
    Movement,
    /// Open-boundary lifecycle (sinks drain, sources feed) — a no-op on
    /// closed worlds, still timed so the report covers every stage.
    Lifecycle,
    /// Metrics observation of the post-step positions — a no-op with
    /// `track_metrics` off, still timed.
    Metrics,
}

impl Stage {
    /// Number of stages (the length of [`Stage::ALL`]).
    pub const COUNT: usize = 6;

    /// Every stage, in stable report order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::Init,
        Stage::InitialCalc,
        Stage::Tour,
        Stage::Movement,
        Stage::Lifecycle,
        Stage::Metrics,
    ];

    /// The four backend-executed kernel stages, in execution order.
    pub const KERNELS: [Stage; 4] = [
        Stage::Init,
        Stage::InitialCalc,
        Stage::Tour,
        Stage::Movement,
    ];

    /// Dense index into per-stage arrays ([`Stage::ALL`] order).
    pub fn index(self) -> usize {
        match self {
            Stage::Init => 0,
            Stage::InitialCalc => 1,
            Stage::Tour => 2,
            Stage::Movement => 3,
            Stage::Lifecycle => 4,
            Stage::Metrics => 5,
        }
    }

    /// Stable lower-case name for reports and JSON serialization.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Init => "init",
            Stage::InitialCalc => "initial_calc",
            Stage::Tour => "tour",
            Stage::Movement => "movement",
            Stage::Lifecycle => "lifecycle",
            Stage::Metrics => "metrics",
        }
    }

    /// Telemetry histogram key for this stage's per-step wall time.
    pub fn ns_key(self) -> &'static str {
        match self {
            Stage::Init => "stage.init_ns",
            Stage::InitialCalc => "stage.initial_calc_ns",
            Stage::Tour => "stage.tour_ns",
            Stage::Movement => "stage.movement_ns",
            Stage::Lifecycle => "stage.lifecycle_ns",
            Stage::Metrics => "stage.metrics_ns",
        }
    }
}

/// Cumulative per-stage wall-clock timings of an engine's step pipeline.
///
/// Accumulated by [`StepCore`] around every stage of every step, on both
/// engines, through one code path — so CPU and GPU numbers are directly
/// comparable (the paper's per-kernel speedup table, measured rather than
/// modelled). Wall-clock readings are inherently non-deterministic; they
/// never feed back into the simulation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StepTimings {
    time: [Duration; Stage::COUNT],
    steps: u64,
}

impl StepTimings {
    /// Cumulative wall time spent in `stage` so far.
    pub fn of(&self, stage: Stage) -> Duration {
        self.time[stage.index()]
    }

    /// Steps the pipeline has completed while timing.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Cumulative wall time across all stages.
    pub fn total(&self) -> Duration {
        self.time.iter().sum()
    }

    /// Timings accumulated since `earlier`, a snapshot of this same
    /// pipeline (per-stage saturating difference). Timing harnesses use
    /// it to discard warmup steps: snapshot after the warmup phase, run
    /// the measured phase, report the delta.
    pub fn delta(&self, earlier: &StepTimings) -> StepTimings {
        let mut out = StepTimings::default();
        for (slot, (now, then)) in out
            .time
            .iter_mut()
            .zip(self.time.iter().zip(earlier.time.iter()))
        {
            *slot = now.saturating_sub(*then);
        }
        out.steps = self.steps.saturating_sub(earlier.steps);
        out
    }

    /// Mean seconds per step spent in `stage` (0 before the first step).
    pub fn per_step_secs(&self, stage: Stage) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.of(stage).as_secs_f64() / self.steps as f64
        }
    }

    fn record(&mut self, stage: Stage, d: Duration) {
        self.time[stage.index()] += d;
    }
}

/// The backend half of an engine: executes the four kernel stages over
/// its own world representation and adapts that world to the shared
/// post-step tail. Everything else — sequencing, counting, timing,
/// metrics, lifecycle — lives in [`StepCore`].
///
/// This trait is the extension point of the backend registry
/// ([`crate::engine::registry`]): a new execution strategy implements the
/// four kernel stages here, pairs itself with a [`StepCore`], and
/// registers an [`crate::engine::registry::EngineBackend`] descriptor —
/// neither existing engine needs to change.
pub trait StageBackend {
    /// Execute one kernel stage of step `step_no` (0-based). Only ever
    /// called with members of [`Stage::KERNELS`], in that order. `rec`
    /// is the engine's telemetry recorder; backends with launch machinery
    /// (the GPU) feed their per-kernel launch statistics into it, the CPU
    /// has nothing to add (its keys stay pre-registered at zero).
    fn run_stage(&mut self, stage: Stage, step_no: u64, rec: &mut Recorder);

    /// Feed the post-step agent positions to the metrics observer.
    fn observe(&self, metrics: &mut Metrics);

    /// Run the open-boundary phases over the backend's world (`step` is
    /// the 1-based count of completed steps).
    fn run_lifecycle(
        &mut self,
        lifecycle: &OpenLifecycle,
        step: u64,
        metrics: Option<&mut Metrics>,
    );
}

/// The shared engine core: step counting, stage sequencing, per-stage
/// timing, and the metrics/lifecycle tail, owned once for every backend.
pub struct StepCore {
    step_no: u64,
    metrics: Option<Metrics>,
    lifecycle: Option<OpenLifecycle>,
    timings: StepTimings,
    recorder: Recorder,
    /// Whether the gridlock early-warning event has fired and not yet
    /// re-armed (the gauge is still above the threshold).
    warned: bool,
}

impl StepCore {
    /// Build the core for a configured world: compile the open-boundary
    /// lifecycle when the scenario has one, and construct metrics when
    /// tracking is on — the construction logic both engines previously
    /// duplicated. `geom` is the engine's capacity-sized geometry (the
    /// same instance its kernels use, so core and backend cannot drift).
    pub fn for_world(
        cfg: &crate::params::SimConfig,
        env: &pedsim_grid::Environment,
        geom: crate::metrics::Geometry,
    ) -> Self {
        use pedsim_grid::cell::CELL_WALL;

        let lifecycle = cfg
            .scenario
            .as_deref()
            .and_then(|s| OpenLifecycle::from_scenario(s, geom, env.targets.clone()));
        let metrics = cfg.track_metrics.then(|| {
            let mut m =
                Metrics::with_targets(geom, env.targets.clone(), &env.props.row, &env.props.col);
            if lifecycle.is_some() {
                let passable = env.width() * env.height() - env.mat.count(CELL_WALL);
                m.enable_open(passable, &env.alive);
            }
            m
        });
        // Pre-register the full launch-counter vocabulary so both
        // engines expose identical telemetry keys; the CPU backend never
        // touches them and reports zeros.
        let mut recorder = Recorder::new();
        recorder.ensure_counter(STEPS_KEY);
        for k in 0..4 {
            recorder.ensure_counter(KERNEL_LAUNCH_KEYS[k]);
            recorder.ensure_counter(KERNEL_BLOCK_KEYS[k]);
            recorder.ensure_counter(KERNEL_THREAD_KEYS[k]);
        }
        Self {
            step_no: 0,
            metrics,
            lifecycle,
            timings: StepTimings::default(),
            recorder,
            warned: false,
        }
    }

    /// Steps completed so far.
    pub fn steps_done(&self) -> u64 {
        self.step_no
    }

    /// Metrics, when tracking is enabled.
    pub fn metrics(&self) -> Option<&Metrics> {
        self.metrics.as_ref()
    }

    /// The cumulative per-stage timing report.
    pub fn timings(&self) -> &StepTimings {
        &self.timings
    }

    /// The engine's telemetry recorder.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Record a stage duration into both the timing report and the
    /// telemetry histogram.
    fn time_stage(&mut self, stage: Stage, d: Duration) {
        self.timings.record(stage, d);
        self.recorder.observe_ns(
            stage.ns_key(),
            d.as_nanos().min(u128::from(u64::MAX)) as u64,
        );
    }

    /// Advance one step: the four kernel stages in §IV order, then the
    /// metrics observation, then the lifecycle phases — each timed and
    /// recorded. Telemetry is strictly observe-only: nothing here feeds
    /// back into the simulation, so trajectories are unchanged.
    pub fn step<B: StageBackend>(&mut self, backend: &mut B) {
        for stage in Stage::KERNELS {
            let t0 = Instant::now();
            backend.run_stage(stage, self.step_no, &mut self.recorder);
            self.time_stage(stage, t0.elapsed());
        }
        self.step_no += 1;
        // Metrics before lifecycle: sinks drain arrivals that the
        // observation has already counted.
        let t0 = Instant::now();
        if let Some(m) = self.metrics.as_mut() {
            backend.observe(m);
        }
        self.time_stage(Stage::Metrics, t0.elapsed());
        let t0 = Instant::now();
        if let Some(lc) = &self.lifecycle {
            backend.run_lifecycle(lc, self.step_no, self.metrics.as_mut());
        }
        self.time_stage(Stage::Lifecycle, t0.elapsed());
        // One source of truth for the step count: the report mirrors the
        // engine's counter instead of keeping its own.
        self.timings.steps = self.step_no;
        self.recorder.inc(STEPS_KEY, 1);
        // Deterministic physics gauges (post-lifecycle state, matching
        // what the next step starts from).
        if let Some(m) = &self.metrics {
            self.recorder
                .set_gauge("sim.throughput", m.throughput() as f64);
            self.recorder
                .set_gauge("sim.total_moves", m.total_moves as f64);
            self.recorder.set_gauge("sim.live", m.live_count() as f64);
            if let Some(risk) = m.gridlock_warning(GRIDLOCK_WARNING_WINDOW) {
                self.recorder.set_gauge("sim.gridlock_risk", risk);
                if risk >= GRIDLOCK_EVENT_THRESHOLD && !self.warned {
                    self.recorder.event(self.step_no, "gridlock.warning", risk);
                    self.warned = true;
                } else if risk < GRIDLOCK_EVENT_THRESHOLD {
                    self.warned = false;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::cpu::{cpu_engine_small, CpuEngine};
    use crate::engine::gpu::GpuEngine;
    use crate::engine::Engine;
    use crate::params::{IterationMode, ModelKind, SimConfig};
    use pedsim_scenario::registry;
    use simt::Device;

    #[test]
    fn stage_indices_match_report_order() {
        for (i, s) in Stage::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
        let names: Vec<_> = Stage::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            [
                "init",
                "initial_calc",
                "tour",
                "movement",
                "lifecycle",
                "metrics"
            ]
        );
    }

    fn assert_monotone_and_covering(e: &mut dyn Engine, label: &str) {
        e.run(6);
        let first = e.step_timings().clone();
        assert_eq!(first.steps(), 6, "{label}: steps counted");
        for stage in Stage::KERNELS {
            assert!(
                first.of(stage) > Duration::ZERO,
                "{label}: kernel stage {} reported zero time",
                stage.name()
            );
        }
        assert!(
            first.of(Stage::Metrics) > Duration::ZERO,
            "{label}: metrics stage untimed"
        );
        e.run(6);
        let second = e.step_timings().clone();
        assert_eq!(second.steps(), 12);
        // Monotone: cumulative time never decreases for any stage, and
        // kernel stages strictly grew (they did real work again).
        for stage in Stage::ALL {
            assert!(
                second.of(stage) >= first.of(stage),
                "{label}: stage {} went backwards",
                stage.name()
            );
        }
        for stage in Stage::KERNELS {
            assert!(
                second.of(stage) > first.of(stage),
                "{label}: kernel stage {} did not accumulate",
                stage.name()
            );
        }
        assert!(second.total() >= first.total());
        assert!(second.per_step_secs(Stage::Movement) > 0.0);
    }

    #[test]
    fn cpu_timings_are_monotone_and_cover_every_stage() {
        let mut e = cpu_engine_small(24, 24, 20, ModelKind::lem(), 3);
        assert_monotone_and_covering(&mut e, "cpu");
    }

    #[test]
    fn gpu_timings_are_monotone_and_cover_every_stage() {
        let env = pedsim_grid::EnvConfig::small(24, 24, 20).with_seed(3);
        let cfg = SimConfig::new(env, ModelKind::lem());
        let mut e = GpuEngine::new(cfg, Device::sequential());
        assert_monotone_and_covering(&mut e, "gpu");
    }

    #[test]
    fn open_worlds_time_the_lifecycle_stage_on_both_engines() {
        let scenario = registry::open_corridor(24, 24, 20, 2.0).with_seed(5);
        let cfg = SimConfig::from_scenario(&scenario, ModelKind::lem());
        let mut cpu = CpuEngine::new(cfg.clone());
        let mut gpu = GpuEngine::new(cfg, Device::sequential());
        cpu.run(30);
        gpu.run(30);
        for (label, t) in [("cpu", cpu.step_timings()), ("gpu", gpu.step_timings())] {
            assert!(
                t.of(Stage::Lifecycle) > Duration::ZERO,
                "{label}: lifecycle stage untimed on an open world"
            );
            for stage in Stage::ALL {
                assert!(t.total() >= t.of(stage));
            }
        }
    }

    #[test]
    fn telemetry_shape_is_engine_independent() {
        let mut cpu = cpu_engine_small(24, 24, 20, ModelKind::lem(), 3);
        let env = pedsim_grid::EnvConfig::small(24, 24, 20).with_seed(3);
        // Pin dense: the launch-count assertions below encode the dense
        // one-launch-per-kernel-per-step contract (sparse movement issues
        // decode+apply launches under the same kernel slot).
        let mut gpu = GpuEngine::new(
            SimConfig::new(env, ModelKind::lem()).with_iteration_mode(IterationMode::Dense),
            Device::sequential(),
        );
        cpu.run(8);
        gpu.run(8);
        let (tc, tg) = (cpu.telemetry(), gpu.telemetry());
        // Identical counter vocabulary on both engines.
        let keys = |r: &pedsim_obs::Recorder| r.counters().map(|(k, _)| k).collect::<Vec<_>>();
        assert_eq!(keys(tc), keys(tg));
        assert_eq!(tc.counter(STEPS_KEY), 8);
        assert_eq!(tg.counter(STEPS_KEY), 8);
        for k in 0..4 {
            // CPU: applicable-but-zero; GPU: one launch per step.
            assert_eq!(tc.counter(KERNEL_LAUNCH_KEYS[k]), 0);
            assert!(tc.has_counter(KERNEL_THREAD_KEYS[k]));
            assert_eq!(tg.counter(KERNEL_LAUNCH_KEYS[k]), 8);
            assert!(tg.counter(KERNEL_BLOCK_KEYS[k]) >= 8);
            assert!(tg.counter(KERNEL_THREAD_KEYS[k]) > 0);
        }
        // The launch counters agree with the GPU's own kernel report.
        let report = gpu.report();
        for k in 0..4 {
            assert_eq!(tg.counter(KERNEL_LAUNCH_KEYS[k]), report.launches[k]);
            assert_eq!(tg.counter(KERNEL_BLOCK_KEYS[k]), report.blocks[k]);
            assert_eq!(tg.counter(KERNEL_THREAD_KEYS[k]), report.threads[k]);
        }
        // Per-stage histograms cover every stage on both engines, and the
        // deterministic gauges agree because the trajectories agree.
        for t in [tc, tg] {
            for stage in Stage::ALL {
                assert_eq!(t.histogram(stage.ns_key()).expect("timed").count(), 8);
            }
        }
        assert_eq!(tc.gauge("sim.throughput"), tg.gauge("sim.throughput"));
        assert_eq!(tc.gauge("sim.total_moves"), tg.gauge("sim.total_moves"));
        assert_eq!(tc.gauge("sim.live"), Some(40.0));
    }

    #[test]
    fn timings_do_not_perturb_trajectories() {
        // The timing instrumentation must be observation-only: two runs of
        // the same configuration produce identical trajectories no matter
        // what the clock reads.
        let mut a = cpu_engine_small(24, 24, 16, ModelKind::aco(), 11);
        let mut b = cpu_engine_small(24, 24, 16, ModelKind::aco(), 11);
        a.run(25);
        b.run(25);
        assert_eq!(a.mat_snapshot(), b.mat_snapshot());
        assert_eq!(a.positions(), b.positions());
    }
}
