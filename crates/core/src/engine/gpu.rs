//! The virtual-GPU engine: the paper's data-driven pipeline on `simt`.
//!
//! Each step launches the four kernels of §IV (supporting init, initial
//! calculation, tour construction, agent movement) with the geometry the
//! paper uses: 16×16-thread blocks for the per-cell kernels (256 threads —
//! the 100 %-occupancy configuration), 256-thread 1-D blocks for the
//! per-agent kernels. Under `ExecPolicy::Parallel` the blocks of each
//! launch run concurrently on the worker pool; under
//! `ExecPolicy::Sequential` the same kernels run on one host thread (used
//! by tests to pin down scheduling independence).
//!
//! Step orchestration (sequencing, counting, per-stage timing, metrics,
//! lifecycle) lives in the shared [`StepCore`]; this file only maps each
//! kernel [`Stage`] to its launch ([`StageBackend`]) and accumulates the
//! launch stats into the [`KernelReport`].

use std::time::Duration;

use pedsim_grid::cell::{Group, CELL_EMPTY};
use pedsim_grid::{Environment, Matrix};
use simt::exec::{BlockKernel, LaunchConfig, LaunchStats};
use simt::profile::KernelProfile;
use simt::{Device, Dim2};

use crate::kernels::{
    DeviceState, EvaporationKernel, InitKernel, InitialCalcKernel, MovementKernel,
    SparseCalcKernel, SparseInitKernel, SparseMoveApplyKernel, SparseMoveDecodeKernel, TourKernel,
};
use crate::metrics::{Geometry, Metrics};
use crate::params::{IterationMode, ModelKind, SimConfig};

use super::lifecycle::{LifecycleWorld, OpenLifecycle};
use super::pipeline::{Stage, StageBackend, StepCore, StepTimings};
use super::{swap_model, Engine, ModelSwapError};
use crate::world::CompiledWorld;

/// The open-boundary lifecycle drives the device state directly: the
/// launches are synchronous, so between steps the buffers are in their
/// host phase and plain mutation is the device-memory host write.
impl LifecycleWorld for DeviceState {
    fn is_alive(&self, i: usize) -> bool {
        self.alive[i] != 0
    }

    fn position(&self, i: usize) -> (u16, u16) {
        (self.row.as_slice()[i], self.col.as_slice()[i])
    }

    fn is_cell_empty(&self, r: u16, c: u16) -> bool {
        self.mat[self.cur].as_slice()[r as usize * self.w + c as usize] == CELL_EMPTY
    }

    fn despawn(&mut self, g: Group, i: usize) {
        let lin = self.row.as_slice()[i] as usize * self.w + self.col.as_slice()[i] as usize;
        let cur = self.cur;
        debug_assert_eq!(self.index[cur].as_slice()[lin], i as u32);
        self.mat[cur].as_mut_slice()[lin] = CELL_EMPTY;
        self.index[cur].as_mut_slice()[lin] = 0;
        self.alive[i] = 0;
        self.live -= 1;
        self.free[g.index()].insert(i as u32);
    }

    fn spawn(&mut self, g: Group, r: u16, c: u16) -> Option<u32> {
        let idx = self.free[g.index()].pop_first()?;
        let lin = r as usize * self.w + c as usize;
        let cur = self.cur;
        self.mat[cur].as_mut_slice()[lin] = g.label();
        self.index[cur].as_mut_slice()[lin] = idx;
        self.row.as_mut_slice()[idx as usize] = r;
        self.col.as_mut_slice()[idx as usize] = c;
        self.pos.as_mut_slice()[idx as usize] = lin as u32;
        self.tour.as_mut_slice()[idx as usize] = 0.0;
        self.alive[idx as usize] = 1;
        self.live += 1;
        Some(idx)
    }
}

/// Per-kernel cumulative timing/profile, indexed init/calc/tour/move.
#[derive(Debug, Clone, Default)]
pub struct KernelReport {
    /// Cumulative wall time per kernel.
    pub time: [Duration; 4],
    /// Cumulative profiles per kernel (empty unless the device profiles).
    pub profile: [KernelProfile; 4],
    /// Launches issued per kernel (one per step per kernel).
    pub launches: [u64; 4],
    /// Cumulative blocks launched per kernel.
    pub blocks: [u64; 4],
    /// Cumulative threads launched per kernel.
    pub threads: [u64; 4],
}

impl KernelReport {
    /// Fold one launch's stats into kernel slot `k` — the single
    /// accounting path every stage launch goes through (previously four
    /// copy-pasted blocks in `GpuEngine::step`).
    fn record(&mut self, k: usize, stats: &LaunchStats) {
        self.time[k] += stats.duration;
        self.launches[k] += 1;
        self.blocks[k] += stats.blocks as u64;
        self.threads[k] += stats.threads;
        if let Some(p) = stats.profile {
            self.profile[k] = self.profile[k].merged(p);
        }
    }
}

/// The data-driven engine on the virtual GPU.
pub struct GpuEngine {
    core: StepCore,
    backend: GpuBackend,
}

/// The GPU engine's kernel-stage executor: device, device-resident world
/// state, and the per-kernel launch report.
struct GpuBackend {
    cfg: SimConfig,
    geom: Geometry,
    device: Device,
    state: DeviceState,
    spawn_rows: usize,
    report: KernelReport,
    /// Launch geometry for the per-cell kernels (initial-calc, movement),
    /// built once — per step only the salt changes. Rebuilding these in
    /// the launch path showed up as per-step overhead in the
    /// `initial_calc` stage profile.
    lc_cells: LaunchConfig,
    /// Launch geometry for the per-row init kernel (`n + 1` rows).
    lc_init: LaunchConfig,
    /// Launch geometry for the per-agent tour kernel (`n` rows).
    lc_tour: LaunchConfig,
    /// Traversal mode, resolved from the configuration at build time
    /// (`Auto` → initial occupancy vs the threshold).
    mode: IterationMode,
    /// Live agent slots in ascending order, rebuilt from the liveness
    /// mask at the start of each sparse step (the lifecycle mutates
    /// liveness between steps). The sparse 1-D launches iterate this
    /// list, making their work O(live agents).
    live_list: Vec<u32>,
}

impl GpuEngine {
    /// Build the engine on `device` (runs data preparation and upload —
    /// from the attached scenario when present, else the classic
    /// corridor). A thin compile-then-construct wrapper over
    /// [`GpuEngine::from_world`].
    pub fn new(cfg: SimConfig, device: Device) -> Self {
        let world = CompiledWorld::compile(&cfg);
        Self::from_world(&world, cfg, device)
    }

    /// Build per-replica engine state on `device` from an already
    /// compiled world: uploads a clone of the placed environment template
    /// and the shared distance planes. Bit-identical to
    /// [`GpuEngine::new`] on the same configuration.
    pub fn from_world(
        world: &std::sync::Arc<CompiledWorld>,
        cfg: SimConfig,
        device: Device,
    ) -> Self {
        debug_assert!(
            world.matches(&cfg),
            "CompiledWorld was compiled from a different configuration"
        );
        let env = world.environment();
        let dist = world.distance();
        let geom = world.geometry();
        let core = StepCore::for_world(&cfg, &env, geom);
        let state = DeviceState::upload(&env, &dist, cfg.model, cfg.checked);
        let seed = cfg.env.seed;
        let lc_cells =
            LaunchConfig::tiled_over(Dim2::new(state.w as u32, state.h as u32), Dim2::square(16))
                .with_seed(seed);
        let lc_init = GpuBackend::rows_config(state.n + 1).with_seed(seed);
        let lc_tour = GpuBackend::rows_config(state.n).with_seed(seed);
        let mode = cfg.iteration.resolve(env.live_count(), state.h * state.w);
        Self {
            core,
            backend: GpuBackend {
                cfg,
                geom,
                device,
                state,
                spawn_rows: env.spawn_rows,
                report: KernelReport::default(),
                lc_cells,
                lc_init,
                lc_tour,
                mode,
                live_list: Vec::new(),
            },
        }
    }

    /// The device this engine launches on.
    pub fn device(&self) -> &Device {
        &self.backend.device
    }

    /// Replace the model parameters mid-run (the panic-alarm extension).
    /// A model-*variant* change is a typed error — a LEM run has no
    /// pheromone substrate to become an ACO run.
    pub fn set_model(&mut self, model: ModelKind) -> Result<(), ModelSwapError> {
        swap_model(&mut self.backend.cfg.model, model)
    }

    /// Cumulative per-kernel timing and profiles.
    pub fn report(&self) -> &KernelReport {
        &self.backend.report
    }

    /// The scenario geometry.
    pub fn geometry(&self) -> Geometry {
        self.backend.geom
    }

    /// Download the full environment for inspection/validation.
    pub fn download_environment(&self) -> Environment {
        self.backend
            .state
            .download(self.backend.spawn_rows, self.backend.cfg.env.seed)
    }

    /// Current pheromone fields, one matrix per group in index order (ACO
    /// only).
    pub fn pheromone_snapshot(&self) -> Option<Vec<Matrix<f32>>> {
        let st = &self.backend.state;
        let p = st.pher.as_ref()?;
        let cur = st.pher_cur;
        Some(
            p.fields
                .iter()
                .map(|f| Matrix::from_vec(st.h, st.w, f[cur].as_slice().to_vec()))
                .collect(),
        )
    }

    /// Accumulated tour lengths (sentinel at 0).
    pub fn tour_snapshot(&self) -> Vec<f32> {
        self.backend.state.tour.as_slice().to_vec()
    }
}

impl GpuBackend {
    /// 1-D launch geometry covering `rows` items in 256-thread blocks.
    fn rows_config(rows: usize) -> LaunchConfig {
        let blocks = (rows as u32).div_ceil(256).max(1);
        LaunchConfig::new(Dim2::new(blocks, 1), Dim2::new(256, 1))
    }

    /// Launch one kernel and fold its stats into report slot `k` and the
    /// telemetry recorder. Associated (not `&mut self`) so the kernel may
    /// keep borrowing `self.state` while the report is written.
    fn launch_counted<K: BlockKernel>(
        device: &Device,
        report: &mut KernelReport,
        rec: &mut pedsim_obs::Recorder,
        k: usize,
        cfg: &LaunchConfig,
        kernel: &K,
        what: &str,
    ) {
        use super::pipeline::{KERNEL_BLOCK_KEYS, KERNEL_LAUNCH_KEYS, KERNEL_THREAD_KEYS};
        let stats = device
            .launch(cfg, kernel)
            .unwrap_or_else(|e| panic!("{what} launch: {e:?}"));
        report.record(k, &stats);
        rec.inc(KERNEL_LAUNCH_KEYS[k], 1);
        rec.inc(KERNEL_BLOCK_KEYS[k], stats.blocks as u64);
        rec.inc(KERNEL_THREAD_KEYS[k], stats.threads);
    }
}

impl StageBackend for GpuBackend {
    fn run_stage(&mut self, stage: Stage, step_no: u64, rec: &mut pedsim_obs::Recorder) {
        let base = step_no * 4;
        let sparse = self.mode == IterationMode::Sparse;
        let seed = self.cfg.env.seed;
        if sparse && stage == Stage::Init {
            // Rebuild the live slot list (ascending — the deterministic
            // iteration order every backend shares) from the liveness
            // mask the lifecycle updated after the previous step.
            let alive = &self.state.alive;
            self.live_list.clear();
            self.live_list.extend(
                (1..alive.len())
                    .filter(|&i| alive[i] != 0)
                    .map(|i| i as u32),
            );
        }
        let live_rows = self.live_list.len().max(1);
        let st = &self.state;
        let cur = st.cur;
        let nxt = 1 - cur;
        match stage {
            Stage::Init if sparse => {
                // Sparse kernel 1: clear live slots' FUTURE fields only —
                // dead slots are never read by the alive-masked tour
                // kernel or the live-list movement launches, and the scan
                // matrix needs no clear (the sparse calc kernel rewrites
                // every live row before tour reads it).
                st.future_row.begin_epoch();
                st.future_col.begin_epoch();
                let init = SparseInitKernel {
                    live: &self.live_list,
                    future_row: st.future_row.view(),
                    future_col: st.future_col.view(),
                };
                let lcfg = Self::rows_config(live_rows).with_seed(seed).with_salt(base);
                Self::launch_counted(
                    &self.device,
                    &mut self.report,
                    rec,
                    0,
                    &lcfg,
                    &init,
                    "init_sparse",
                );
            }
            Stage::Init => {
                // Kernel 1: supporting init (§IV.e).
                st.scan_val.begin_epoch();
                st.scan_idx.begin_epoch();
                st.future_row.begin_epoch();
                st.future_col.begin_epoch();
                let init = InitKernel {
                    rows: st.n + 1,
                    scan_val: st.scan_val.view(),
                    scan_idx: st.scan_idx.view(),
                    future_row: st.future_row.view(),
                    future_col: st.future_col.view(),
                };
                let lcfg = self.lc_init.with_salt(base);
                Self::launch_counted(&self.device, &mut self.report, rec, 0, &lcfg, &init, "init");
            }
            Stage::InitialCalc if sparse => {
                // Sparse kernel 2: one thread per live agent scores its
                // own neighbourhood — same slot-keyed writes, same values
                // as the dense per-cell sweep.
                st.scan_val.begin_epoch();
                st.scan_idx.begin_epoch();
                st.front.begin_epoch();
                st.front_k.begin_epoch();
                let pher_slices = st.pher.as_ref().map(|p| p.slices(st.pher_cur));
                let calc = SparseCalcKernel {
                    w: st.w,
                    h: st.h,
                    live: &self.live_list,
                    mat_in: st.mat[cur].as_slice(),
                    row: st.row.as_slice(),
                    col: st.col.as_slice(),
                    id: &st.id,
                    dist: st.dist_ref(),
                    pher_in: pher_slices.as_deref(),
                    model: self.cfg.model,
                    scan_val: st.scan_val.view(),
                    scan_idx: st.scan_idx.view(),
                    front: st.front.view(),
                    front_k: st.front_k.view(),
                };
                let lcfg = Self::rows_config(live_rows)
                    .with_seed(seed)
                    .with_salt(base + 1);
                Self::launch_counted(
                    &self.device,
                    &mut self.report,
                    rec,
                    1,
                    &lcfg,
                    &calc,
                    "initial_calc_sparse",
                );
            }
            Stage::InitialCalc => {
                // Kernel 2: initial calculation (§IV.b).
                st.scan_val.begin_epoch();
                st.scan_idx.begin_epoch();
                st.front.begin_epoch();
                st.front_k.begin_epoch();
                let pher_slices = st.pher.as_ref().map(|p| p.slices(st.pher_cur));
                let calc = InitialCalcKernel {
                    w: st.w,
                    h: st.h,
                    mat_in: st.mat[cur].as_slice(),
                    index_in: st.index[cur].as_slice(),
                    dist: st.dist_ref(),
                    pher_in: pher_slices.as_deref(),
                    model: self.cfg.model,
                    scan_val: st.scan_val.view(),
                    scan_idx: st.scan_idx.view(),
                    front: st.front.view(),
                    front_k: st.front_k.view(),
                };
                let lcfg = self.lc_cells.with_salt(base + 1);
                Self::launch_counted(
                    &self.device,
                    &mut self.report,
                    rec,
                    1,
                    &lcfg,
                    &calc,
                    "initial_calc",
                );
            }
            Stage::Tour => {
                // Kernel 3: tour construction (§IV.c).
                st.future_row.begin_epoch();
                st.future_col.begin_epoch();
                let tour = TourKernel {
                    n: st.n,
                    alive: &st.alive,
                    scan_val: st.scan_val.as_slice(),
                    scan_idx: st.scan_idx.as_slice(),
                    front: st.front.as_slice(),
                    front_k: st.front_k.as_slice(),
                    row: st.row.as_slice(),
                    col: st.col.as_slice(),
                    future_row: st.future_row.view(),
                    future_col: st.future_col.view(),
                    model: self.cfg.model,
                };
                let lcfg = self.lc_tour.with_salt(base + 2);
                Self::launch_counted(&self.device, &mut self.report, rec, 2, &lcfg, &tour, "tour");
            }
            Stage::Movement if sparse => {
                // Sparse kernel 4, three launches (all salted `base + 3`,
                // so the decode draws the dense sweep's per-cell streams):
                //
                // 1. decode — each live agent resolves its target cell's
                //    gather and records the outcome in `won`;
                // 2. (ACO) a dense evaporation sweep into the next
                //    pheromone side — the field is a per-cell substrate,
                //    so this launch alone stays O(cells);
                // 3. apply — winners move in place on the current
                //    `mat`/`index` side (sources and destinations are
                //    disjoint, per-winner-unique cell sets), overwrite
                //    their destination's pheromone entry with the fused
                //    evaporate+deposit, and update `row`/`col`/`pos`.
                //
                // `cur` does not flip; the pheromone pair does.
                let aco = match self.cfg.model {
                    ModelKind::Aco(p) => Some(p),
                    ModelKind::Lem(_) => None,
                };
                let lcfg = Self::rows_config(live_rows)
                    .with_seed(seed)
                    .with_salt(base + 3);
                st.won.begin_epoch();
                let decode = SparseMoveDecodeKernel {
                    w: st.w,
                    h: st.h,
                    live: &self.live_list,
                    mat_in: st.mat[cur].as_slice(),
                    index_in: st.index[cur].as_slice(),
                    future_row: st.future_row.as_slice(),
                    future_col: st.future_col.as_slice(),
                    won: st.won.view(),
                };
                Self::launch_counted(
                    &self.device,
                    &mut self.report,
                    rec,
                    3,
                    &lcfg,
                    &decode,
                    "movement_decode_sparse",
                );

                let pher_nxt = 1 - st.pher_cur;
                if let (Some(p), Some(pb)) = (aco, st.pher.as_ref()) {
                    pb.begin_epoch(pher_nxt);
                    let pher_slices = pb.slices(st.pher_cur);
                    let pher_views = pb.views(pher_nxt);
                    let evap = EvaporationKernel {
                        w: st.w,
                        h: st.h,
                        pher_in: &pher_slices,
                        pher_out: &pher_views,
                        params: p,
                    };
                    let ecfg = self.lc_cells.with_salt(base + 3);
                    Self::launch_counted(
                        &self.device,
                        &mut self.report,
                        rec,
                        3,
                        &ecfg,
                        &evap,
                        "pheromone_evaporate",
                    );
                    // Fresh epoch: the apply launch overwrites winners'
                    // destination entries the sweep just wrote.
                    pb.begin_epoch(pher_nxt);
                }

                st.mat[cur].begin_epoch();
                st.index[cur].begin_epoch();
                st.row.begin_epoch();
                st.col.begin_epoch();
                st.pos.begin_epoch();
                st.tour.begin_epoch();
                let pher_slices = st.pher.as_ref().map(|p| p.slices(st.pher_cur));
                let pher_views = st.pher.as_ref().map(|p| p.views(pher_nxt));
                let apply = SparseMoveApplyKernel {
                    w: st.w,
                    live: &self.live_list,
                    won: st.won.as_slice(),
                    id: &st.id,
                    row: st.row.view(),
                    col: st.col.view(),
                    pos: st.pos.view(),
                    mat: st.mat[cur].view(),
                    index: st.index[cur].view(),
                    tour: st.tour.view(),
                    pher_in: pher_slices.as_deref(),
                    pher_out: pher_views.as_deref(),
                    aco,
                };
                Self::launch_counted(
                    &self.device,
                    &mut self.report,
                    rec,
                    3,
                    &lcfg,
                    &apply,
                    "movement_apply_sparse",
                );
                if aco.is_some() {
                    self.state.pher_cur = pher_nxt;
                }
            }
            Stage::Movement => {
                // Kernel 4: agent movement (§IV.d).
                let pher_nxt = 1 - st.pher_cur;
                st.mat[nxt].begin_epoch();
                st.index[nxt].begin_epoch();
                st.row.begin_epoch();
                st.col.begin_epoch();
                st.pos.begin_epoch();
                st.tour.begin_epoch();
                if let Some(p) = st.pher.as_ref() {
                    p.begin_epoch(pher_nxt);
                }
                let aco = match self.cfg.model {
                    ModelKind::Aco(p) => Some(p),
                    ModelKind::Lem(_) => None,
                };
                let pher_slices = st.pher.as_ref().map(|p| p.slices(st.pher_cur));
                let pher_views = st.pher.as_ref().map(|p| p.views(pher_nxt));
                let mv = MovementKernel {
                    w: st.w,
                    h: st.h,
                    mat_in: st.mat[cur].as_slice(),
                    index_in: st.index[cur].as_slice(),
                    future_row: st.future_row.as_slice(),
                    future_col: st.future_col.as_slice(),
                    id: &st.id,
                    row: st.row.view(),
                    col: st.col.view(),
                    pos: st.pos.view(),
                    tour: st.tour.view(),
                    mat_out: st.mat[nxt].view(),
                    index_out: st.index[nxt].view(),
                    pher_in: pher_slices.as_deref(),
                    pher_out: pher_views.as_deref(),
                    aco,
                };
                let lcfg = self.lc_cells.with_salt(base + 3);
                Self::launch_counted(
                    &self.device,
                    &mut self.report,
                    rec,
                    3,
                    &lcfg,
                    &mv,
                    "movement",
                );
                self.state.cur = nxt;
                if self.state.pher.is_some() {
                    self.state.pher_cur = pher_nxt;
                }
            }
            Stage::Lifecycle | Stage::Metrics => unreachable!("core-driven stage"),
        }
    }

    fn observe(&self, metrics: &mut Metrics) {
        metrics.observe(self.state.row.as_slice(), self.state.col.as_slice());
    }

    fn run_lifecycle(
        &mut self,
        lifecycle: &OpenLifecycle,
        step: u64,
        metrics: Option<&mut Metrics>,
    ) {
        // Open-boundary phases on the host side of the synchronous step:
        // sinks drain arrivals (already counted by the metrics
        // observation), sources feed the next launch.
        lifecycle.run_step(&mut self.state, step, metrics);
    }
}

impl Engine for GpuEngine {
    fn step(&mut self) {
        self.core.step(&mut self.backend);
    }

    fn steps_done(&self) -> u64 {
        self.core.steps_done()
    }

    fn metrics(&self) -> Option<&Metrics> {
        self.core.metrics()
    }

    fn step_timings(&self) -> &StepTimings {
        self.core.timings()
    }

    fn telemetry(&self) -> &pedsim_obs::Recorder {
        self.core.recorder()
    }

    fn model(&self) -> ModelKind {
        self.backend.cfg.model
    }

    fn iteration_mode(&self) -> IterationMode {
        self.backend.mode
    }

    fn mat_snapshot(&self) -> Matrix<u8> {
        let st = &self.backend.state;
        Matrix::from_vec(st.h, st.w, st.mat[st.cur].as_slice().to_vec())
    }

    fn positions(&self) -> (Vec<u16>, Vec<u16>) {
        (
            self.backend.state.row.as_slice().to_vec(),
            self.backend.state.col.as_slice().to_vec(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pedsim_grid::EnvConfig;
    use simt::exec::ExecPolicy;

    fn engine(model: ModelKind, policy: ExecPolicy, seed: u64) -> GpuEngine {
        let env = EnvConfig::small(32, 32, 30).with_seed(seed);
        let device = Device::builder().policy(policy).build();
        GpuEngine::new(SimConfig::new(env, model).with_checked(true), device)
    }

    #[test]
    fn sparse_matches_dense_bit_for_bit() {
        for model in [ModelKind::lem(), ModelKind::aco()] {
            for policy in [ExecPolicy::Sequential, ExecPolicy::Parallel { workers: 4 }] {
                let env = EnvConfig::small(32, 32, 30).with_seed(42);
                let build = |mode| {
                    let device = Device::builder().policy(policy).build();
                    GpuEngine::new(
                        SimConfig::new(env, model)
                            .with_checked(true)
                            .with_iteration_mode(mode),
                        device,
                    )
                };
                let mut dense = build(IterationMode::Dense);
                let mut sparse = build(IterationMode::Sparse);
                assert_eq!(sparse.iteration_mode(), IterationMode::Sparse);
                for step in 1..=40u64 {
                    dense.step();
                    sparse.step();
                    assert_eq!(
                        dense.mat_snapshot(),
                        sparse.mat_snapshot(),
                        "{} diverged at step {step}",
                        model.name()
                    );
                    assert_eq!(dense.positions(), sparse.positions());
                }
                assert_eq!(dense.pheromone_snapshot(), sparse.pheromone_snapshot());
                sparse
                    .download_environment()
                    .check_consistency()
                    .expect("sparse device state consistent");
            }
        }
    }

    #[test]
    fn consistency_preserved_over_steps() {
        for model in [ModelKind::lem(), ModelKind::aco()] {
            let mut e = engine(model, ExecPolicy::Sequential, 3);
            e.run(40);
            e.download_environment()
                .check_consistency()
                .unwrap_or_else(|err| panic!("{} inconsistent: {err}", model.name()));
        }
    }

    #[test]
    fn sequential_and_parallel_policies_agree() {
        for model in [ModelKind::lem(), ModelKind::aco()] {
            let mut seq = engine(model, ExecPolicy::Sequential, 11);
            let mut par = engine(model, ExecPolicy::Parallel { workers: 4 }, 11);
            seq.run(25);
            par.run(25);
            assert_eq!(
                seq.mat_snapshot(),
                par.mat_snapshot(),
                "{} diverged between policies",
                model.name()
            );
            assert_eq!(seq.positions(), par.positions());
        }
    }

    #[test]
    fn agents_cross_eventually() {
        let mut e = engine(ModelKind::lem(), ExecPolicy::Parallel { workers: 4 }, 5);
        e.run(120);
        let m = e.metrics().expect("metrics");
        assert!(m.throughput() > 0, "no crossings in 120 steps");
    }

    #[test]
    fn kernel_report_accumulates() {
        let mut e = engine(ModelKind::aco(), ExecPolicy::Sequential, 1);
        e.run(5);
        let r = e.report();
        assert!(r.time.iter().all(|t| *t > Duration::ZERO));
        // The unified core times the same four kernel stages; its wall
        // clock wraps the launch, so it can only read higher.
        let t = e.step_timings();
        for (stage, k) in Stage::KERNELS.into_iter().zip(0..4) {
            assert!(t.of(stage) >= r.time[k], "{} under-timed", stage.name());
        }
    }

    #[test]
    fn profiling_device_reports_no_divergence_in_calc() {
        let env = EnvConfig::small(32, 32, 30).with_seed(2);
        let device = Device::builder()
            .policy(ExecPolicy::Sequential)
            .profiling(true)
            .build();
        let mut e = GpuEngine::new(
            SimConfig::new(env, ModelKind::aco()).with_checked(true),
            device,
        );
        e.run(3);
        // The paper's claim: the predicated formulation records no warp
        // divergence in the scoring and movement kernels.
        assert_eq!(e.report().profile[1].divergent_branches, 0);
        assert_eq!(e.report().profile[3].divergent_branches, 0);
        assert!(e.report().profile[1].threads > 0);
    }

    #[test]
    fn set_model_rejects_variant_change_with_typed_error() {
        let mut e = engine(ModelKind::aco(), ExecPolicy::Sequential, 1);
        let err = e.set_model(ModelKind::lem()).unwrap_err();
        assert_eq!(err.running, "ACO");
        assert_eq!(err.requested, "LEM");
        assert!(e.set_model(ModelKind::aco()).is_ok());
    }

    #[test]
    fn pheromone_snapshot_present_only_for_aco() {
        let mut a = engine(ModelKind::aco(), ExecPolicy::Sequential, 1);
        a.run(5);
        assert!(a.pheromone_snapshot().is_some());
        let mut l = engine(ModelKind::lem(), ExecPolicy::Sequential, 1);
        l.run(5);
        assert!(l.pheromone_snapshot().is_none());
    }
}
