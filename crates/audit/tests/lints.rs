//! Fixture-file tests: one violating and one clean fixture per lint,
//! plus pragma suppression, unused-pragma, and malformed-pragma cases.
//!
//! Fixtures live under `tests/fixtures/` (a directory the workspace
//! walker skips, so the deliberate violations cannot fail the real
//! audit). Each fixture is linted under a synthetic engine-crate path so
//! path-scoped lints apply.

use pedsim_audit::{lint_source, lint_source_counted};

/// Lint a fixture as if it lived in the pooled backend's directory (in
/// scope for every path-scoped lint).
fn lint_as_engine(text: &str) -> Vec<pedsim_audit::Finding> {
    lint_source("crates/core/src/engine/fixture.rs", text)
}

fn lints_of(findings: &[pedsim_audit::Finding]) -> Vec<&str> {
    findings.iter().map(|f| f.lint.as_str()).collect()
}

#[test]
fn safety_comment_fixtures() {
    let bad = lint_as_engine(include_str!("fixtures/safety_comment_bad.rs"));
    assert_eq!(lints_of(&bad), ["safety-comment"], "{bad:#?}");
    let ok = lint_as_engine(include_str!("fixtures/safety_comment_ok.rs"));
    assert!(ok.is_empty(), "{ok:#?}");
}

#[test]
fn wall_clock_fixtures() {
    let bad = lint_as_engine(include_str!("fixtures/wall_clock_bad.rs"));
    assert_eq!(lints_of(&bad), ["wall-clock"], "{bad:#?}");
    let ok = lint_as_engine(include_str!("fixtures/wall_clock_ok.rs"));
    assert!(ok.is_empty(), "{ok:#?}");
}

#[test]
fn wall_clock_scope_is_path_based() {
    // The same violating source is clean outside the engine crates
    // (bench code times things on purpose) and inside the sanctioned
    // StepTimings site.
    let text = include_str!("fixtures/wall_clock_bad.rs");
    assert!(lint_source("crates/bench/src/fixture.rs", text).is_empty());
    assert!(lint_source("crates/core/src/engine/pipeline.rs", text).is_empty());
}

#[test]
fn thread_spawn_fixtures() {
    let bad = lint_as_engine(include_str!("fixtures/thread_spawn_bad.rs"));
    assert_eq!(lints_of(&bad), ["thread-spawn"], "{bad:#?}");
    // The clean fixture spawns inside #[cfg(test)] — exempt.
    let ok = lint_as_engine(include_str!("fixtures/thread_spawn_ok.rs"));
    assert!(ok.is_empty(), "{ok:#?}");
    // The WorkerPool file is the one sanctioned spawn site.
    let pool = lint_source(
        "crates/simt/src/exec/pool.rs",
        include_str!("fixtures/thread_spawn_bad.rs"),
    );
    assert!(pool.is_empty(), "{pool:#?}");
}

#[test]
fn hash_container_fixtures() {
    let bad = lint_as_engine(include_str!("fixtures/hash_container_bad.rs"));
    assert_eq!(
        lints_of(&bad),
        ["hash-container", "hash-container", "hash-container"]
    );
    let ok = lint_as_engine(include_str!("fixtures/hash_container_ok.rs"));
    assert!(ok.is_empty(), "{ok:#?}");
    // Scenario compilation is in scope too.
    let scen = lint_source(
        "crates/scenario/src/fixture.rs",
        include_str!("fixtures/hash_container_bad.rs"),
    );
    assert!(!scen.is_empty());
}

#[test]
fn static_mut_fixtures() {
    let bad = lint_as_engine(include_str!("fixtures/static_mut_bad.rs"));
    assert_eq!(lints_of(&bad), ["static-mut"], "{bad:#?}");
    let ok = lint_as_engine(include_str!("fixtures/static_mut_ok.rs"));
    assert!(ok.is_empty(), "{ok:#?}");
    // static-mut applies outside engine crates too.
    let anywhere = lint_source(
        "crates/bench/src/fixture.rs",
        include_str!("fixtures/static_mut_bad.rs"),
    );
    assert_eq!(lints_of(&anywhere), ["static-mut"]);
}

#[test]
fn atomic_ordering_fixtures() {
    let bad = lint_as_engine(include_str!("fixtures/atomic_ordering_bad.rs"));
    assert_eq!(lints_of(&bad), ["atomic-ordering"], "{bad:#?}");
    let ok = lint_as_engine(include_str!("fixtures/atomic_ordering_ok.rs"));
    assert!(ok.is_empty(), "{ok:#?}");
    // Out of scope outside core/simt: grid has no atomics policy.
    let grid = lint_source(
        "crates/grid/src/fixture.rs",
        include_str!("fixtures/atomic_ordering_bad.rs"),
    );
    assert!(grid.is_empty(), "{grid:#?}");
}

#[test]
fn allow_pragma_suppresses_and_is_counted() {
    let (findings, used) = lint_source_counted(
        "crates/core/src/engine/fixture.rs",
        include_str!("fixtures/allow_suppressed.rs"),
    );
    assert!(findings.is_empty(), "{findings:#?}");
    assert_eq!(used, 1);
}

#[test]
fn unused_allow_is_flagged() {
    let findings = lint_as_engine(include_str!("fixtures/unused_allow.rs"));
    assert_eq!(lints_of(&findings), ["unused-allow"], "{findings:#?}");
}

#[test]
fn malformed_allow_is_flagged_and_does_not_suppress() {
    let findings = lint_as_engine(include_str!("fixtures/malformed_allow.rs"));
    let mut lints = lints_of(&findings);
    lints.sort_unstable();
    assert_eq!(lints, ["malformed-allow", "wall-clock"], "{findings:#?}");
}

#[test]
fn test_files_skip_determinism_lints_but_not_safety() {
    // A tests/ path: spawning and hashing are fine, naked unsafe is not.
    let src = "fn f() { std::thread::spawn(|| {}); }\n\
               fn g(p: *const u32) -> u32 { unsafe { *p } }\n";
    let findings = lint_source("crates/simt/tests/fixture.rs", src);
    assert_eq!(lints_of(&findings), ["safety-comment"], "{findings:#?}");
}

#[test]
fn findings_are_sorted_and_anchored() {
    let bad = lint_as_engine(include_str!("fixtures/safety_comment_bad.rs"));
    assert_eq!(bad[0].file, "crates/core/src/engine/fixture.rs");
    assert_eq!(bad[0].line, 4);
    assert!(bad[0].snippet.contains("unsafe"));
}
