//! The acceptance gate, run as a plain test: the whole workspace must be
//! lint-clean, so `cargo test` fails the moment anyone adds an
//! unannotated `unsafe`, an ad-hoc thread, or an undocumented atomic to
//! the engine crates.

use std::path::Path;

#[test]
fn workspace_is_audit_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = pedsim_audit::audit_workspace(&root).expect("scan workspace");
    assert!(
        report.files > 50,
        "walker found too few files: {}",
        report.files
    );
    assert!(
        report.findings.is_empty(),
        "workspace has {} audit finding(s):\n{}",
        report.findings.len(),
        report
            .findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn workspace_walk_is_deterministic() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let a = pedsim_audit::workspace_files(&root).expect("walk");
    let b = pedsim_audit::workspace_files(&root).expect("walk");
    assert_eq!(a, b);
    assert!(a.windows(2).all(|w| w[0] < w[1]), "paths not sorted/unique");
}
