//! Violating fixture: `static mut` global state.

static mut COUNTER: u64 = 0;

pub fn bump() {
    // SAFETY: none — this is exactly the pattern the lint forbids.
    unsafe { COUNTER += 1 }
}
