//! Clean fixture: atomics instead of `static mut`.

use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

pub fn bump() {
    // ordering: relaxed — a standalone counter with no dependent reads.
    COUNTER.fetch_add(1, Ordering::Relaxed);
}
