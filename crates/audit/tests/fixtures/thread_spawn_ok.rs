//! Clean fixture: querying parallelism is fine; spawning is not done.

pub fn cores() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_spawn() {
        std::thread::spawn(|| {}).join().unwrap();
    }
}
