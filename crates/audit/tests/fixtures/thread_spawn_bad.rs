//! Violating fixture: ad-hoc thread in an engine crate.

pub fn fire() {
    std::thread::spawn(|| {});
}
