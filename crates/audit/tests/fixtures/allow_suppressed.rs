//! Fixture: a violation suppressed by a justified pragma is clean.

pub fn stamp() -> std::time::Instant {
    // audit:allow(wall-clock, fixture demonstrating pragma suppression)
    std::time::Instant::now()
}
