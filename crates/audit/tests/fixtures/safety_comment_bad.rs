//! Violating fixture: `unsafe` with no SAFETY comment anywhere nearby.

pub fn deref(p: *const u32) -> u32 {
    unsafe { *p }
}
