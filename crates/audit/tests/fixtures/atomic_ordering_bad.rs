//! Violating fixture: an atomic store with no rationale comment.

use std::sync::atomic::{AtomicU32, Ordering};

pub fn set(a: &AtomicU32) {
    a.store(1, Ordering::Release);
}
