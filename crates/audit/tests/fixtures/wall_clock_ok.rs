//! Clean fixture: no wall clock in code. A mention of Instant::now() in
//! a comment or a string must not trip the lint.

pub fn describe() -> &'static str {
    "timing goes through StepTimings, never Instant::now"
}
