//! Clean fixture: the ordering choice is documented, and `cmp::Ordering`
//! never trips the atomic lint.

use std::cmp::Ordering as CmpOrdering;
use std::sync::atomic::{AtomicU32, Ordering};

pub fn set(a: &AtomicU32) {
    // ordering: release — publishes the preceding writes to the acquirer.
    a.store(1, Ordering::Release);
}

pub fn sign(x: i32) -> &'static str {
    match x.cmp(&0) {
        CmpOrdering::Less => "neg",
        CmpOrdering::Equal => "zero",
        CmpOrdering::Greater => "pos",
    }
}
