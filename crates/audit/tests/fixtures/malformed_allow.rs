//! Violating fixture: pragmas must name a known lint and give a reason.

pub fn stamp() -> std::time::Instant {
    // audit:allow(wall-clock)
    std::time::Instant::now()
}
