//! Violating fixture: wall clock in an engine crate.

pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}
