//! Clean fixture: every `unsafe` carries a SAFETY comment.

pub fn deref(p: *const u32) -> u32 {
    // SAFETY: callers pass a pointer derived from a live reference.
    unsafe { *p }
}

/// Read slot `i` without bounds checking.
///
/// SAFETY: `i` must be in bounds of the allocation behind `p`.
pub unsafe fn get(p: *const u32, i: usize) -> u32 {
    // SAFETY: in bounds per this function's contract.
    unsafe { *p.add(i) }
}
