//! Violating fixture: a pragma that suppresses nothing is itself flagged.

// audit:allow(wall-clock, stale suppression kept after the code moved)
pub fn nothing() {}
