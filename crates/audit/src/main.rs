//! The `pedsim-audit` binary: walk the workspace, run every lint, print
//! findings, optionally journal them as JSONL, exit non-zero on any.
//!
//! ```text
//! cargo run -p pedsim-audit                       # gate the workspace
//! cargo run -p pedsim-audit -- --journal results/audit.jsonl
//! cargo run -p pedsim-audit -- --root /some/tree  # audit another tree
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use pedsim_audit::{audit_workspace, Report};
use pedsim_obs::journal::{Journal, Record};

fn usage() -> ! {
    eprintln!("usage: pedsim-audit [--root PATH] [--journal PATH] [--quiet]");
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut journal: Option<PathBuf> = None;
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--journal" => journal = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--quiet" => quiet = true,
            _ => usage(),
        }
    }
    // Default root: the workspace two levels above this crate's manifest.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .expect("workspace root")
    });

    let report = match audit_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("pedsim-audit: cannot scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if let Some(path) = journal {
        if let Err(e) = write_journal(&path, &report) {
            eprintln!("pedsim-audit: cannot write journal {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if !quiet {
        for f in &report.findings {
            println!("{f}");
        }
    }
    println!(
        "pedsim-audit: {} files scanned, {} finding(s), {} allow pragma(s) in use",
        report.files,
        report.findings.len(),
        report.allows_used
    );
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// One JSONL record per finding plus a trailing summary record. All
/// fields are deterministic (path-sorted, no wall clock), so repeat runs
/// on the same tree produce byte-identical journals.
fn write_journal(path: &std::path::Path, report: &Report) -> std::io::Result<()> {
    let mut j = Journal::open(path)?;
    for f in &report.findings {
        let mut r = Record::new("pedsim.audit.v1");
        r.str_field("lint", &f.lint);
        r.str_field("file", &f.file);
        r.u64_field("line", f.line as u64);
        r.str_field("message", &f.message);
        r.str_field("snippet", &f.snippet);
        j.write(&r)?;
    }
    let mut s = Record::new("pedsim.audit.summary.v1");
    s.u64_field("files", report.files as u64);
    s.u64_field("findings", report.findings.len() as u64);
    s.u64_field("allows_used", report.allows_used as u64);
    j.write(&s)?;
    Ok(())
}
