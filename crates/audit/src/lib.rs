//! # pedsim-audit — workspace soundness lints
//!
//! The repo's golden-test contract is bit-identical trajectories across
//! engines, backends, and thread counts, and the pooled backend rests on a
//! small set of `unsafe` scatter primitives whose correctness is a matter
//! of *stated invariants*. This crate turns the conventions guarding both
//! into machine-checked lints:
//!
//! | lint | requirement | scope |
//! |------|-------------|-------|
//! | `safety-comment`   | every `unsafe` block/impl/fn carries a `// SAFETY:` comment within the preceding lines | all non-vendor code |
//! | `wall-clock`       | no `Instant::now`/`SystemTime` in engine crates (timing belongs to `StepTimings`/`LaunchStats`) | engine crate `src/` |
//! | `thread-spawn`     | no ad-hoc threads in engine crates (`WorkerPool` is the one spawn site) | engine crate `src/` |
//! | `hash-container`   | no `HashMap`/`HashSet` in deterministic paths (iteration order is not stable) | engine + scenario `src/` |
//! | `static-mut`       | no `static mut` anywhere | all non-vendor code |
//! | `atomic-ordering`  | every atomic `Ordering::*` use is justified by an `ordering:` comment nearby | `crates/core` + `crates/simt` `src/` |
//!
//! Findings can be suppressed with a pragma on the same line or the line
//! above: `// audit:allow(lint-name, reason)`. A pragma must name a known
//! lint and give a non-empty reason (`malformed-allow` otherwise), and a
//! pragma that suppresses nothing is itself a finding (`unused-allow`), so
//! stale suppressions cannot accumulate.
//!
//! The scanner is textual but not naive: string literals (including raw
//! strings), char literals, and comments are stripped before pattern
//! matching, and `#[cfg(test)]` items plus `tests/` files are exempt from
//! the determinism lints (test code may spawn threads and hash freely —
//! the golden tests are what they exist to defend).
//!
//! The `pedsim-audit` binary walks every workspace `.rs` file (skipping
//! `crates/vendor`, `target`, and lint `fixtures/`), prints findings
//! deterministically sorted, optionally journals them as JSONL through
//! `pedsim-obs`, and exits non-zero on any finding. See DESIGN.md §14 for
//! the catalog rationale and the two documented wall-clock exemptions.

use std::fmt;
use std::path::{Path, PathBuf};

/// The atomic `Ordering` variants (so `cmp::Ordering::Less` never trips
/// the atomic lint).
const ATOMIC_ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// How many preceding lines a `SAFETY:` comment may sit above its
/// `unsafe` (covers a doc-comment contract above an `unsafe fn`).
const SAFETY_WINDOW: usize = 8;

/// How many preceding lines an `ordering:` comment may sit above an
/// atomic op (one rationale comment may cover a short run of operations,
/// e.g. a counter-merge loop).
const ORDERING_WINDOW: usize = 16;

/// Crates whose `src/` trees are deterministic engine code: no wall
/// clock, no ad-hoc threads, no hash containers.
const ENGINE_SRC: [&str; 4] = [
    "crates/core/src/",
    "crates/simt/src/",
    "crates/grid/src/",
    "crates/philox/src/",
];

/// `hash-container` additionally covers scenario compilation (worlds must
/// compile identically run-to-run).
const HASH_EXTRA_SRC: [&str; 1] = ["crates/scenario/src/"];

/// `atomic-ordering` covers the two crates holding the unsafe
/// concurrency core.
const ATOMIC_SRC: [&str; 2] = ["crates/core/src/", "crates/simt/src/"];

/// The two sanctioned wall-clock sites: `StepTimings` accumulation in the
/// shared step pipeline, and `LaunchStats` duration in the virtual
/// device's launcher. Justified in DESIGN.md §14.
const WALL_CLOCK_EXEMPT: [&str; 2] = [
    "crates/core/src/engine/pipeline.rs",
    "crates/simt/src/exec/mod.rs",
];

/// The one sanctioned spawn site: the persistent `WorkerPool`.
const THREAD_SPAWN_EXEMPT: [&str; 1] = ["crates/simt/src/exec/pool.rs"];

/// Every lint name the pragma parser accepts.
pub const LINT_NAMES: [&str; 6] = [
    "safety-comment",
    "wall-clock",
    "thread-spawn",
    "hash-container",
    "static-mut",
    "atomic-ordering",
];

/// One audit finding, anchored to a file and 1-based line.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Repo-relative path, forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Lint name (`safety-comment`, …, or `unused-allow`/`malformed-allow`).
    pub lint: String,
    /// What the lint requires.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}\n    {}",
            self.file, self.line, self.lint, self.message, self.snippet
        )
    }
}

/// A whole-workspace audit result.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, sorted by (file, line, lint).
    pub findings: Vec<Finding>,
    /// Files scanned.
    pub files: usize,
    /// `audit:allow` pragmas that suppressed a finding.
    pub allows_used: usize,
}

/// One source line after lexical stripping.
#[derive(Debug, Default, Clone)]
struct Line {
    /// Code with comments removed and string/char literal *contents*
    /// blanked (quotes kept so token boundaries survive).
    code: String,
    /// Concatenated comment text on this line (line, block, and doc).
    comment: String,
    /// The raw source line (for snippets).
    raw: String,
}

/// Lexer state carried across lines.
enum Mode {
    Normal,
    /// Inside `/* */`, with nesting depth.
    Block(u32),
    /// Inside a `"…"` string.
    Str,
    /// Inside a raw string closed by `"` followed by this many `#`s.
    RawStr(u32),
}

/// Strip `text` into per-line code/comment channels. Handles nested block
/// comments, escapes, raw strings, and the char-literal/lifetime
/// ambiguity (`'a'` vs `'a`).
fn strip(text: &str) -> Vec<Line> {
    let mut out = Vec::new();
    let mut mode = Mode::Normal;
    for raw in text.lines() {
        let mut line = Line {
            raw: raw.to_owned(),
            ..Line::default()
        };
        let b: Vec<char> = raw.chars().collect();
        let mut i = 0;
        while i < b.len() {
            match mode {
                Mode::Block(ref mut depth) => {
                    if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                        *depth -= 1;
                        i += 2;
                        if *depth == 0 {
                            mode = Mode::Normal;
                        }
                    } else if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                        *depth += 1;
                        i += 2;
                    } else {
                        line.comment.push(b[i]);
                        i += 1;
                    }
                }
                Mode::Str => {
                    if b[i] == '\\' {
                        i += 2; // skip the escaped char (may run off end: line continuation)
                    } else if b[i] == '"' {
                        line.code.push('"');
                        mode = Mode::Normal;
                        i += 1;
                    } else {
                        i += 1;
                    }
                }
                Mode::RawStr(hashes) => {
                    if b[i] == '"' {
                        let n = hashes as usize;
                        let tail: String = b[i + 1..].iter().take(n).collect();
                        if tail.len() == n && tail.chars().all(|c| c == '#') {
                            line.code.push('"');
                            for _ in 0..n {
                                line.code.push('#');
                            }
                            mode = Mode::Normal;
                            i += 1 + n;
                            continue;
                        }
                    }
                    i += 1;
                }
                Mode::Normal => {
                    let c = b[i];
                    if c == '/' && b.get(i + 1) == Some(&'/') {
                        // Line comment (doc or not): rest of line.
                        line.comment.extend(&b[i + 2..]);
                        i = b.len();
                    } else if c == '/' && b.get(i + 1) == Some(&'*') {
                        mode = Mode::Block(1);
                        i += 2;
                    } else if c == '"' {
                        line.code.push('"');
                        mode = Mode::Str;
                        i += 1;
                    } else if c == 'r'
                        && !prev_is_ident(&b, i)
                        && raw_string_hashes(&b, i + 1).is_some()
                    {
                        let hashes = raw_string_hashes(&b, i + 1).expect("checked");
                        line.code.push('r');
                        for _ in 0..hashes {
                            line.code.push('#');
                        }
                        line.code.push('"');
                        mode = Mode::RawStr(hashes);
                        i += 2 + hashes as usize;
                    } else if c == '\'' && !prev_is_ident(&b, i) {
                        // Char literal vs lifetime: a literal is '\…' or 'x'.
                        if b.get(i + 1) == Some(&'\\') {
                            // Escaped char literal: scan to the closing quote.
                            let mut j = i + 2;
                            while j < b.len() && b[j] != '\'' {
                                j += 1;
                            }
                            line.code.push_str("''");
                            i = (j + 1).min(b.len());
                        } else if b.get(i + 2) == Some(&'\'') {
                            line.code.push_str("''");
                            i += 3;
                        } else {
                            // A lifetime; keep the tick as code.
                            line.code.push('\'');
                            i += 1;
                        }
                    } else {
                        line.code.push(c);
                        i += 1;
                    }
                }
            }
        }
        out.push(line);
    }
    out
}

/// Is the char before index `i` part of an identifier (so `r`/`'` there
/// cannot start a raw string / char literal)?
fn prev_is_ident(b: &[char], i: usize) -> bool {
    i > 0 && (b[i - 1].is_alphanumeric() || b[i - 1] == '_')
}

/// If `b[start..]` is `#*"` (zero or more hashes then a quote), the hash
/// count — i.e. an `r`-prefixed raw string begins here.
fn raw_string_hashes(b: &[char], start: usize) -> Option<u32> {
    let mut n = 0;
    let mut i = start;
    while b.get(i) == Some(&'#') {
        n += 1;
        i += 1;
    }
    (b.get(i) == Some(&'"')).then_some(n)
}

/// Mark lines inside `#[cfg(test)]` items (the attribute, the item
/// header, and everything to the item's closing brace).
fn mark_test_lines(lines: &[Line]) -> Vec<bool> {
    let mut in_test = vec![false; lines.len()];
    let mut depth: i64 = 0;
    // When inside a test item, the depth above which we remain test code.
    let mut test_floor: Option<i64> = None;
    // A `#[cfg(test)]` was seen and its item has not opened a brace yet.
    let mut pending = false;
    for (idx, line) in lines.iter().enumerate() {
        if line.code.contains("#[cfg(test)]") {
            pending = true;
        }
        if pending || test_floor.is_some() {
            in_test[idx] = true;
        }
        for c in line.code.chars() {
            match c {
                '{' => {
                    if pending {
                        test_floor = Some(depth);
                        pending = false;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if test_floor.is_some_and(|f| depth <= f) {
                        test_floor = None;
                    }
                }
                // `#[cfg(test)] use …;` — a brace-less item ends the
                // pending state at its semicolon.
                ';' if pending && test_floor.is_none() => pending = false,
                _ => {}
            }
        }
    }
    in_test
}

/// Find word-boundary occurrences of `word` in `code`.
fn has_word(code: &str, word: &str) -> bool {
    let b: Vec<char> = code.chars().collect();
    let w: Vec<char> = word.chars().collect();
    let mut i = 0;
    while i + w.len() <= b.len() {
        if b[i..i + w.len()] == w[..] {
            let before_ok = i == 0 || (!b[i - 1].is_alphanumeric() && b[i - 1] != '_');
            let after = b.get(i + w.len());
            let after_ok = after.is_none_or(|c| !c.is_alphanumeric() && *c != '_');
            if before_ok && after_ok {
                return true;
            }
        }
        i += 1;
    }
    false
}

/// Does `code` use an atomic memory ordering (`Ordering::Relaxed` …)?
fn has_atomic_ordering(code: &str) -> bool {
    let mut rest = code;
    while let Some(pos) = rest.find("Ordering::") {
        let tail = &rest[pos + "Ordering::".len()..];
        if ATOMIC_ORDERINGS
            .iter()
            .any(|v| tail.starts_with(v) && !rest[..pos].ends_with("cmp::"))
        {
            return true;
        }
        rest = &rest[pos + "Ordering::".len()..];
    }
    false
}

fn in_scope(relpath: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| relpath.starts_with(p))
}

/// Is this file test code as a whole (an integration-test tree)?
fn is_test_file(relpath: &str) -> bool {
    relpath.starts_with("tests/") || relpath.contains("/tests/")
}

/// An `audit:allow` pragma parsed out of a comment.
struct Allow {
    line: usize,
    lint: String,
    reason_ok: bool,
    used: bool,
}

/// Parse every `audit:allow(lint, reason)` pragma in the comments. A
/// pragma must open the comment (`// audit:allow(…)`) — mentioning the
/// syntax mid-sentence in documentation does not create one.
fn parse_allows(lines: &[Line]) -> Vec<Allow> {
    let mut out = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let mut rest = line.comment.trim_start();
        while rest.starts_with("audit:allow(") {
            rest = &rest["audit:allow(".len()..];
            let Some(close) = rest.find(')') else { break };
            let body = &rest[..close];
            rest = rest[close + 1..].trim_start();
            let (lint, reason) = match body.split_once(',') {
                Some((l, r)) => (l.trim(), r.trim()),
                None => (body.trim(), ""),
            };
            out.push(Allow {
                line: idx + 1,
                lint: lint.to_owned(),
                reason_ok: !reason.is_empty(),
                used: false,
            });
        }
    }
    out
}

/// Lint one file's source. `relpath` decides which lints are in scope and
/// must be repo-relative with forward slashes.
pub fn lint_source(relpath: &str, text: &str) -> Vec<Finding> {
    lint_source_counted(relpath, text).0
}

/// As [`lint_source`], also returning how many pragmas suppressed
/// something (the binary reports the workspace total).
pub fn lint_source_counted(relpath: &str, text: &str) -> (Vec<Finding>, usize) {
    let lines = strip(text);
    let in_test_item = mark_test_lines(&lines);
    let file_is_test = is_test_file(relpath);
    let mut allows = parse_allows(&lines);
    let mut findings = Vec::new();

    let push = |findings: &mut Vec<Finding>,
                allows: &mut Vec<Allow>,
                lineno: usize,
                lint: &str,
                message: String,
                snippet: &str| {
        // A matching pragma on this line or the line above suppresses.
        for a in allows.iter_mut() {
            if a.lint == lint && a.reason_ok && (a.line == lineno || a.line + 1 == lineno) {
                a.used = true;
                return;
            }
        }
        findings.push(Finding {
            file: relpath.to_owned(),
            line: lineno,
            lint: lint.to_owned(),
            message,
            snippet: snippet.trim().chars().take(160).collect(),
        });
    };

    let comment_nearby = |idx: usize, window: usize, needle: &str| {
        let lo = idx.saturating_sub(window);
        lines[lo..=idx]
            .iter()
            .any(|l| l.comment.to_ascii_lowercase().contains(needle))
    };

    for (idx, line) in lines.iter().enumerate() {
        let lineno = idx + 1;
        let code = line.code.as_str();
        let test_code = file_is_test || in_test_item[idx];

        // safety-comment: everywhere, tests included — an unchecked
        // `unsafe` in a test can corrupt the very state the test pins.
        if has_word(code, "unsafe") && !comment_nearby(idx, SAFETY_WINDOW, "safety:") {
            push(
                &mut findings,
                &mut allows,
                lineno,
                "safety-comment",
                format!("`unsafe` without a `// SAFETY:` comment within {SAFETY_WINDOW} lines"),
                &line.raw,
            );
        }

        // static-mut: everywhere.
        if code.contains("static mut ") {
            push(
                &mut findings,
                &mut allows,
                lineno,
                "static-mut",
                "`static mut` is never sound here; use an atomic or interior mutability".to_owned(),
                &line.raw,
            );
        }

        if test_code {
            continue; // determinism lints stop at test code
        }

        // wall-clock: engine crates, minus the two sanctioned timing sites.
        if in_scope(relpath, &ENGINE_SRC)
            && !WALL_CLOCK_EXEMPT.contains(&relpath)
            && (code.contains("Instant::now") || code.contains("SystemTime"))
        {
            push(
                &mut findings,
                &mut allows,
                lineno,
                "wall-clock",
                "wall clock in an engine crate: timing belongs to StepTimings/LaunchStats"
                    .to_owned(),
                &line.raw,
            );
        }

        // thread-spawn: engine crates, minus the WorkerPool.
        if in_scope(relpath, &ENGINE_SRC)
            && !THREAD_SPAWN_EXEMPT.contains(&relpath)
            && (code.contains("thread::spawn")
                || code.contains("thread::Builder")
                || code.contains("thread::scope"))
        {
            push(
                &mut findings,
                &mut allows,
                lineno,
                "thread-spawn",
                "ad-hoc thread in an engine crate: all parallelism goes through WorkerPool"
                    .to_owned(),
                &line.raw,
            );
        }

        // hash-container: engine + scenario crates.
        if (in_scope(relpath, &ENGINE_SRC) || in_scope(relpath, &HASH_EXTRA_SRC))
            && (has_word(code, "HashMap") || has_word(code, "HashSet"))
        {
            push(
                &mut findings,
                &mut allows,
                lineno,
                "hash-container",
                "HashMap/HashSet in a deterministic path: iteration order is unstable; \
                 use BTreeMap/BTreeSet or a Vec"
                    .to_owned(),
                &line.raw,
            );
        }

        // atomic-ordering: the concurrency core.
        if in_scope(relpath, &ATOMIC_SRC)
            && has_atomic_ordering(code)
            && !comment_nearby(idx, ORDERING_WINDOW, "ordering")
        {
            push(
                &mut findings,
                &mut allows,
                lineno,
                "atomic-ordering",
                format!(
                    "atomic Ordering without an `ordering:` rationale comment within \
                     {ORDERING_WINDOW} lines"
                ),
                &line.raw,
            );
        }
    }

    // Pragma hygiene.
    let mut used = 0;
    for a in &allows {
        if !a.reason_ok || !LINT_NAMES.contains(&a.lint.as_str()) {
            findings.push(Finding {
                file: relpath.to_owned(),
                line: a.line,
                lint: "malformed-allow".to_owned(),
                message: format!(
                    "audit:allow must name a known lint and give a reason, got `{}`",
                    a.lint
                ),
                snippet: lines[a.line - 1].raw.trim().chars().take(160).collect(),
            });
        } else if !a.used {
            findings.push(Finding {
                file: relpath.to_owned(),
                line: a.line,
                lint: "unused-allow".to_owned(),
                message: format!("audit:allow({}) suppresses nothing — remove it", a.lint),
                snippet: lines[a.line - 1].raw.trim().chars().take(160).collect(),
            });
        } else {
            used += 1;
        }
    }

    findings.sort();
    (findings, used)
}

/// Directories the walker never descends into.
const SKIP_DIRS: [&str; 6] = [
    "target",
    ".git",
    "vendor",
    "fixtures",
    "results",
    "node_modules",
];

/// Collect every workspace `.rs` file under `root`, sorted, repo-relative.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut stack = vec![root.to_path_buf()];
    let mut files = Vec::new();
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<_> = std::fs::read_dir(&dir)?
            .collect::<Result<Vec<_>, _>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        entries.sort();
        for path in entries {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Audit every workspace `.rs` file under `root`.
pub fn audit_workspace(root: &Path) -> std::io::Result<Report> {
    let mut report = Report::default();
    for path in workspace_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let text = std::fs::read_to_string(&path)?;
        let (findings, used) = lint_source_counted(&rel, &text);
        report.findings.extend(findings);
        report.allows_used += used;
        report.files += 1;
    }
    report.findings.sort();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripper_blanks_strings_and_comments() {
        let lines = strip("let s = \"unsafe Ordering::Relaxed\"; // unsafe here\nlet c = 'x';");
        assert!(!lines[0].code.contains("unsafe"));
        assert!(lines[0].comment.contains("unsafe here"));
        assert_eq!(lines[1].code, "let c = '';");
    }

    #[test]
    fn stripper_handles_raw_strings_and_lifetimes() {
        let lines = strip("let r = r#\"static mut\"#;\nfn f<'a>(x: &'a u32) -> &'a u32 { x }");
        assert!(!lines[0].code.contains("static mut"));
        assert!(lines[1].code.contains("<'a>"));
    }

    #[test]
    fn stripper_handles_nested_block_comments() {
        let lines = strip("/* a /* nested */ still comment */ let x = 1;");
        assert_eq!(lines[0].code.trim(), "let x = 1;");
        assert!(lines[0].comment.contains("nested"));
    }

    #[test]
    fn test_items_are_marked() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() {}\n}\nfn c() {}\n";
        let lines = strip(src);
        let marks = mark_test_lines(&lines);
        assert_eq!(marks, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn word_boundaries_hold() {
        assert!(has_word("unsafe {", "unsafe"));
        assert!(!has_word("unsafe_op_in_unsafe_fn", "unsafe"));
        assert!(!has_word("AssertUnwindSafe", "unsafe"));
    }

    #[test]
    fn cmp_ordering_is_not_atomic() {
        assert!(has_atomic_ordering("x.load(Ordering::Relaxed)"));
        assert!(!has_atomic_ordering(
            "match o { cmp::Ordering::Less => {} }"
        ));
        assert!(!has_atomic_ordering("Ordering::Less"));
    }
}
