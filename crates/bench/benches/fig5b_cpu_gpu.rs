//! Criterion bench for Figures 5b/5c: per-step cost of the ACO model on
//! the single-threaded CPU engine vs the parallel virtual GPU.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pedsim_core::prelude::*;
use simt::Device;

fn bench_cpu_vs_gpu(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5b_step_cost");
    group.sample_size(10);
    let device = Device::parallel();
    for &agents in &[2_560usize, 25_600] {
        let env = EnvConfig::small(480, 480, agents / 2).with_seed(1);
        let cfg = SimConfig::new(env, ModelKind::aco())
            .with_checked(false)
            .with_metrics(false);
        group.bench_with_input(BenchmarkId::new("cpu", agents), &agents, |b, _| {
            let mut engine = CpuEngine::new(cfg.clone());
            b.iter(|| engine.step());
        });
        group.bench_with_input(BenchmarkId::new("gpu", agents), &agents, |b, _| {
            let mut engine = GpuEngine::new(cfg.clone(), device.clone());
            b.iter(|| engine.step());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cpu_vs_gpu);
criterion_main!(benches);
