//! Criterion bench for flow-field construction at the paper's 480×480
//! scale: the one-time data-preparation cost a scenario world adds over
//! the row-table fast path, for three obstacle densities.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use pedsim_grid::{DistanceTables, GridDistanceField};
use pedsim_scenario::registry;

fn bench_flow_field(c: &mut Criterion) {
    let mut group = c.benchmark_group("flow_field_480");
    group.sample_size(10);

    // Baseline: the paper's row tables (2·480·8 entries, closed form).
    group.bench_function("row_tables", |b| {
        b.iter(|| black_box(DistanceTables::new(480)));
    });

    // Dijkstra flow fields over G·480·480 cells (one plane per group; the
    // four-way plaza measures the 4-group cost).
    for (name, scenario) in [
        (
            "open",
            registry::paper_corridor(&pedsim_grid::EnvConfig::paper(25_600)),
        ),
        ("doorway_gap8", registry::doorway(480, 480, 12_800, 8)),
        ("pillar_hall", registry::pillar_hall(480, 480, 12_800, 6)),
        ("four_way", registry::four_way_crossing(480, 6_400)),
    ] {
        group.bench_with_input(
            BenchmarkId::new("grid_dijkstra", name),
            &scenario,
            |b, s| {
                b.iter(|| {
                    let targets: Vec<&[(u16, u16)]> =
                        s.groups().iter().map(|g| g.target.cells()).collect();
                    black_box(GridDistanceField::compute(
                        s.height(),
                        s.width(),
                        |r, c| s.is_wall(r, c),
                        &targets,
                    ))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_flow_field);
criterion_main!(benches);
