//! Per-kernel microbenches and the §IV technique ablations as criterion
//! benchmarks: one launch per iteration on the paper's 480×480 geometry.

use criterion::{criterion_group, criterion_main, Criterion};
use pedsim_bench::ablation;
use pedsim_core::kernels::{DeviceState, InitialCalcKernel, MovementKernel, TourKernel};
use pedsim_core::params::ModelKind;
use pedsim_core::prelude::*;
use simt::exec::LaunchConfig;
use simt::{Device, Dim2};

fn bench_kernels(c: &mut Criterion) {
    let env = Environment::new(&EnvConfig::small(480, 480, 12_800).with_seed(7));
    let dist = pedsim_grid::DistanceData::rows(env.height());
    let state = DeviceState::upload(&env, &dist, ModelKind::aco(), false);
    let device = Device::parallel();
    let cells = LaunchConfig::tiled_over(Dim2::square(480), Dim2::square(16)).with_seed(7);
    let rows = LaunchConfig::new(
        Dim2::new((state.n as u32).div_ceil(256), 1),
        Dim2::new(256, 1),
    )
    .with_seed(7);

    let mut group = c.benchmark_group("kernels_480x480_25600agents");
    group.sample_size(20);

    let pher_slices = state.pher.as_ref().map(|p| p.slices(0));
    let pher_views = state.pher.as_ref().map(|p| p.views(1));

    group.bench_function("initial_calc_aco", |b| {
        b.iter(|| {
            let k = InitialCalcKernel {
                w: state.w,
                h: state.h,
                mat_in: state.mat[0].as_slice(),
                index_in: state.index[0].as_slice(),
                dist: state.dist_ref(),
                pher_in: pher_slices.as_deref(),
                model: ModelKind::aco(),
                scan_val: state.scan_val.view(),
                scan_idx: state.scan_idx.view(),
                front: state.front.view(),
                front_k: state.front_k.view(),
            };
            device.launch(&cells, &k).expect("launch");
        })
    });

    group.bench_function("tour_aco", |b| {
        b.iter(|| {
            let k = TourKernel {
                n: state.n,
                alive: &state.alive,
                scan_val: state.scan_val.as_slice(),
                scan_idx: state.scan_idx.as_slice(),
                front: state.front.as_slice(),
                front_k: state.front_k.as_slice(),
                row: state.row.as_slice(),
                col: state.col.as_slice(),
                future_row: state.future_row.view(),
                future_col: state.future_col.view(),
                model: ModelKind::aco(),
            };
            device.launch(&rows, &k).expect("launch");
        })
    });

    group.bench_function("movement_aco", |b| {
        let aco = match ModelKind::aco() {
            ModelKind::Aco(p) => Some(p),
            _ => None,
        };
        b.iter(|| {
            let k = MovementKernel {
                w: state.w,
                h: state.h,
                mat_in: state.mat[0].as_slice(),
                index_in: state.index[0].as_slice(),
                future_row: state.future_row.as_slice(),
                future_col: state.future_col.as_slice(),
                id: &state.id,
                row: state.row.view(),
                col: state.col.view(),
                pos: state.pos.view(),
                tour: state.tour.view(),
                mat_out: state.mat[1].view(),
                index_out: state.index[1].view(),
                pher_in: pher_slices.as_deref(),
                pher_out: pher_views.as_deref(),
                aco,
            };
            device.launch(&cells, &k).expect("launch");
        })
    });
    group.finish();

    // The §IV ablations at bench rigor (small geometry; the binary covers
    // the full-size comparison).
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    group.bench_function("movement_gather_vs_atomic", |b| {
        b.iter(|| ablation::movement_variants(96, 1024, 1))
    });
    group.bench_function("tiled_vs_direct", |b| {
        b.iter(|| ablation::tiled_variants(96, 1024, 1))
    });
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
