//! Criterion bench for Figure 5a: per-step cost of LEM vs ACO on the
//! parallel virtual GPU (the wall-clock series itself is produced by the
//! `fig5` binary; this bench gives statistically robust per-step numbers
//! at two spot populations).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pedsim_core::prelude::*;
use simt::Device;

fn bench_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5a_step_cost");
    group.sample_size(10);
    let device = Device::parallel();
    for &agents in &[2_560usize, 25_600] {
        for (name, model) in [("LEM", ModelKind::lem()), ("ACO", ModelKind::aco())] {
            group.bench_with_input(BenchmarkId::new(name, agents), &agents, |b, &agents| {
                let env = EnvConfig::small(480, 480, agents / 2).with_seed(1);
                let cfg = SimConfig::new(env, model)
                    .with_checked(false)
                    .with_metrics(false);
                let mut engine = GpuEngine::new(cfg, device.clone());
                b.iter(|| engine.step());
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_models);
criterion_main!(benches);
