//! Step throughput of the unified engine pipeline: per-stage wall time,
//! steps/second, and the CPU-vs-GPU ratio — the repo's perf trajectory.
//!
//! The paper's headline result is per-kernel speedup of the four-stage
//! pipeline; the unified `StepCore` now times every stage of **both**
//! engines through one code path, so that comparison is measurable
//! end-to-end instead of modelled. This harness runs a closed and an open
//! registry world on both engines, aggregates the per-stage
//! [`pedsim_core::engine::StepTimings`] that `pedsim_runner` surfaces on
//! every [`RunResult`](pedsim_runner::RunResult), and writes
//! `results/step_throughput_<scale>.{csv,json}` plus the repo-root
//! `BENCH_step_throughput.json` record that every subsequent optimisation
//! PR is judged against.
//!
//! Every number here is wall-clock and therefore non-deterministic; the
//! record captures *shape* (which stages dominate, how far apart the
//! engines sit), not bit-stable bytes.

use std::collections::BTreeSet;

use pedsim_core::engine::Stage;
use pedsim_core::prelude::*;
use pedsim_runner::{Batch, BatchReport, Job};
use pedsim_scenario::registry;

use crate::report::Table;
use crate::scale::Scale;

/// Step-throughput protocol parameters.
#[derive(Debug, Clone)]
pub struct StConfig {
    /// Grid side (square worlds).
    pub side: usize,
    /// Initial agents per side of the closed corridor.
    pub closed_per_side: usize,
    /// Recyclable slot capacity per side of the open corridor.
    pub open_capacity: usize,
    /// Open-corridor inflow rate (expected arrivals per step per group).
    pub open_rate: f64,
    /// Steps per replica (a pure step budget — timing runs never stop
    /// early, so every replica times exactly this many steps).
    pub steps: u64,
    /// Repeats per (world, engine); timings aggregate across them.
    pub repeats: u64,
    /// Base seed; repeat `k` uses `seed + k`.
    pub seed: u64,
}

impl StConfig {
    /// Protocol for `scale`.
    pub fn for_scale(scale: Scale) -> Self {
        match scale {
            // The paper's geometry at its mid population (25,600 agents on
            // 480×480). The step budget is a timing sample, not the
            // paper's 25,000-step evaluation budget — per-stage means
            // stabilise within a few hundred steps.
            Scale::Paper => Self {
                side: 480,
                closed_per_side: 12_800,
                open_capacity: 10_000,
                open_rate: 16.0,
                steps: 400,
                repeats: 2,
                seed: 9_300,
            },
            Scale::Default => Self {
                side: 96,
                closed_per_side: 600,
                open_capacity: 500,
                open_rate: 4.0,
                steps: 300,
                repeats: 2,
                seed: 9_300,
            },
            Scale::Smoke => Self {
                side: 32,
                closed_per_side: 30,
                open_capacity: 40,
                open_rate: 2.0,
                steps: 120,
                repeats: 1,
                seed: 9_300,
            },
        }
    }

    /// The measured worlds: one closed, one open registry scenario.
    pub fn worlds(&self) -> [(&'static str, bool); 2] {
        [("paper_corridor", false), ("open_corridor", true)]
    }

    fn scenario(&self, world: &str, seed: u64) -> Scenario {
        match world {
            "paper_corridor" => registry::paper_corridor(
                &EnvConfig::small(self.side, self.side, self.closed_per_side).with_seed(seed),
            ),
            "open_corridor" => {
                registry::open_corridor(self.side, self.side, self.open_capacity, self.open_rate)
                    .with_seed(seed)
            }
            other => panic!("unknown step-throughput world {other:?}"),
        }
    }

    /// The job list: every world × engine × repeat, ACO model (the
    /// heavier pipeline — pheromone scan and update on every stage pass),
    /// stopping on the pure step budget.
    pub fn jobs(&self) -> Vec<Job> {
        let mut jobs = Vec::new();
        for (world, _) in self.worlds() {
            for k in 0..self.repeats {
                let cfg =
                    SimConfig::from_scenario(self.scenario(world, self.seed + k), ModelKind::aco());
                let stop = StopCondition::Steps(self.steps);
                jobs.push(Job::cpu(format!("{world}/cpu"), cfg.clone(), stop.clone()));
                jobs.push(Job::gpu(format!("{world}/gpu"), cfg, stop));
            }
        }
        jobs
    }
}

/// One (world, engine) cell of the measurement (repeats aggregated).
#[derive(Debug, Clone)]
pub struct StRow {
    /// Registry world name.
    pub world: &'static str,
    /// Whether the world runs the open-boundary lifecycle.
    pub open: bool,
    /// Engine name (`"cpu"` / `"gpu"`).
    pub engine: &'static str,
    /// Agents (population for closed worlds, slot capacity for open).
    pub agents: usize,
    /// Total steps timed across repeats.
    pub steps: u64,
    /// Simulated steps per wall-clock second.
    pub steps_per_sec: f64,
    /// Mean milliseconds per step per stage ([`Stage::ALL`] order).
    pub stage_ms: [f64; Stage::COUNT],
    /// Mean milliseconds per step across all stages.
    pub total_ms: f64,
}

/// CPU-over-GPU time ratio for one world (how much slower the reference
/// engine is per stage; > 1 means the GPU pipeline wins).
#[derive(Debug, Clone)]
pub struct StRatio {
    /// Registry world name.
    pub world: &'static str,
    /// Total-pipeline ratio.
    pub total: f64,
    /// Per-stage ratios ([`Stage::ALL`] order; 0 when the GPU stage
    /// measured zero time).
    pub stages: [f64; Stage::COUNT],
}

/// Run the measurement on `workers` pool threads (1 for clean timings —
/// concurrent replicas contend for cores), returning the raw per-replica
/// report — the journal/registry emitters consume this before
/// [`aggregate`] collapses it into the table.
pub fn run_report(cfg: &StConfig, workers: usize) -> BatchReport {
    Batch::new(workers).run(&cfg.jobs())
}

/// [`run_report`] + [`aggregate`] in one call.
pub fn run(cfg: &StConfig, workers: usize) -> Vec<StRow> {
    aggregate(cfg, &run_report(cfg, workers))
}

/// Aggregate a finished measurement per (world, engine) cell.
pub fn aggregate(cfg: &StConfig, report: &BatchReport) -> Vec<StRow> {
    let mut rows = Vec::new();
    for (world, open) in cfg.worlds() {
        for engine in ["cpu", "gpu"] {
            let label = format!("{world}/{engine}");
            let results: Vec<_> = report.with_label(&label).collect();
            if results.is_empty() {
                continue;
            }
            let steps: u64 = results.iter().map(|r| r.steps).sum();
            let wall: f64 = results.iter().map(|r| r.wall.as_secs_f64()).sum();
            let mut stage_ms = [0.0; Stage::COUNT];
            for stage in Stage::ALL {
                let secs: f64 = results
                    .iter()
                    .map(|r| r.stages.of(stage).as_secs_f64())
                    .sum();
                stage_ms[stage.index()] = if steps == 0 {
                    0.0
                } else {
                    secs * 1e3 / steps as f64
                };
            }
            rows.push(StRow {
                world,
                open,
                engine,
                agents: results[0].agents,
                steps,
                steps_per_sec: if wall > 0.0 { steps as f64 / wall } else { 0.0 },
                stage_ms,
                total_ms: stage_ms.iter().sum(),
            });
        }
    }
    rows
}

/// Pair each world's CPU and GPU rows into time ratios.
pub fn ratios(rows: &[StRow]) -> Vec<StRatio> {
    let worlds: BTreeSet<&'static str> = rows.iter().map(|r| r.world).collect();
    worlds
        .into_iter()
        .filter_map(|world| {
            let cpu = rows
                .iter()
                .find(|r| r.world == world && r.engine == "cpu")?;
            let gpu = rows
                .iter()
                .find(|r| r.world == world && r.engine == "gpu")?;
            let ratio = |c: f64, g: f64| if g > 0.0 { c / g } else { 0.0 };
            let mut stages = [0.0; Stage::COUNT];
            for (i, slot) in stages.iter_mut().enumerate() {
                *slot = ratio(cpu.stage_ms[i], gpu.stage_ms[i]);
            }
            Some(StRatio {
                world,
                total: ratio(cpu.total_ms, gpu.total_ms),
                stages,
            })
        })
        .collect()
}

/// The smoke acceptance gate: every world was measured on **both**
/// engines, every replica ran its full budget, and every stage that does
/// real work reported non-zero time — the kernel stages everywhere, the
/// metrics stage (tracking is on), and the lifecycle stage on open
/// worlds (a silently-unconstructed lifecycle must fail the gate, not
/// ship a zero column).
pub fn covers_both_engines_and_all_stages(rows: &[StRow]) -> bool {
    let worlds: BTreeSet<&'static str> = rows.iter().map(|r| r.world).collect();
    !worlds.is_empty()
        && worlds.iter().all(|w| {
            ["cpu", "gpu"].iter().all(|e| {
                rows.iter().any(|r| {
                    r.world == *w
                        && r.engine == *e
                        && r.steps > 0
                        && Stage::KERNELS.iter().all(|s| r.stage_ms[s.index()] > 0.0)
                        && r.stage_ms[Stage::Metrics.index()] > 0.0
                        && (!r.open || r.stage_ms[Stage::Lifecycle.index()] > 0.0)
                })
            })
        })
}

/// Render the measurement as a table (Markdown/CSV).
pub fn table(rows: &[StRow]) -> Table {
    let mut headers = vec![
        "world".to_string(),
        "engine".to_string(),
        "agents".to_string(),
        "steps".to_string(),
        "steps_per_sec".to_string(),
    ];
    headers.extend(Stage::ALL.iter().map(|s| format!("{}_ms", s.name())));
    headers.push("total_ms".to_string());
    let mut t = Table::new(headers);
    for r in rows {
        let mut row = vec![
            r.world.to_string(),
            r.engine.to_string(),
            r.agents.to_string(),
            r.steps.to_string(),
            format!("{:.1}", r.steps_per_sec),
        ];
        row.extend(r.stage_ms.iter().map(|ms| format!("{ms:.4}")));
        row.push(format!("{:.4}", r.total_ms));
        t.push_row(row);
    }
    t
}

fn stages_object(values: &[f64; Stage::COUNT], precision: usize) -> String {
    let mut s = String::from("{");
    for stage in Stage::ALL {
        if s.len() > 1 {
            s.push_str(", ");
        }
        s.push_str(&format!(
            "\"{}\": {:.precision$}",
            stage.name(),
            values[stage.index()]
        ));
    }
    s.push('}');
    s
}

/// JSON for `results/step_throughput_<scale>.json` and the repo-root
/// `BENCH_step_throughput.json`: per-stage breakdowns for both engines
/// plus CPU-over-GPU ratios, per world.
pub fn to_json(scale: Scale, cfg: &StConfig, rows: &[StRow]) -> String {
    let ratios = ratios(rows);
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"step_throughput\",\n");
    s.push_str("  \"schema\": \"pedsim.step_throughput.v1\",\n");
    s.push_str(&format!("  \"scale\": \"{}\",\n", scale.label()));
    s.push_str(&format!("  \"side\": {},\n", cfg.side));
    s.push_str(&format!("  \"steps_per_replica\": {},\n", cfg.steps));
    s.push_str(&format!("  \"repeats\": {},\n", cfg.repeats));
    s.push_str("  \"worlds\": [\n");
    let worlds = cfg.worlds();
    let present: Vec<_> = worlds
        .iter()
        .filter(|(w, _)| rows.iter().any(|r| r.world == *w))
        .collect();
    for (wi, (world, open)) in present.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"world\": \"{world}\", \"open\": {open}, \"engines\": [\n"
        ));
        let engine_rows: Vec<_> = rows.iter().filter(|r| r.world == *world).collect();
        for (i, r) in engine_rows.iter().enumerate() {
            let comma = if i + 1 < engine_rows.len() { "," } else { "" };
            s.push_str(&format!(
                "      {{\"engine\": \"{}\", \"agents\": {}, \"steps\": {}, \
                 \"steps_per_sec\": {:.1}, \"total_ms_per_step\": {:.4}, \
                 \"stages_ms_per_step\": {}}}{comma}\n",
                r.engine,
                r.agents,
                r.steps,
                r.steps_per_sec,
                r.total_ms,
                stages_object(&r.stage_ms, 4),
            ));
        }
        s.push_str("    ]");
        if let Some(ratio) = ratios.iter().find(|x| x.world == *world) {
            s.push_str(&format!(
                ", \"cpu_over_gpu\": {{\"total\": {:.3}, \"stages\": {}}}",
                ratio.total,
                stages_object(&ratio.stages, 3),
            ));
        }
        let comma = if wi + 1 < present.len() { "," } else { "" };
        s.push_str(&format!("}}{comma}\n"));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_protocol_is_small_and_jobs_cover_both_engines_and_worlds() {
        let cfg = StConfig::for_scale(Scale::Smoke);
        assert!(cfg.steps <= 200);
        let jobs = cfg.jobs();
        assert_eq!(jobs.len(), cfg.worlds().len() * 2 * cfg.repeats as usize);
        for job in &jobs {
            assert!(job.validate().is_ok());
        }
        for (world, open) in cfg.worlds() {
            for engine in ["cpu", "gpu"] {
                let label = format!("{world}/{engine}");
                let matched: Vec<_> = jobs.iter().filter(|j| j.label == label).collect();
                assert_eq!(matched.len(), cfg.repeats as usize, "{label}");
                for j in matched {
                    assert_eq!(j.engine.name(), engine);
                    let s = j.cfg.scenario.as_ref().expect("registry world");
                    assert_eq!(s.is_open(), open);
                }
            }
        }
    }

    #[test]
    fn tiny_run_covers_all_stages_and_yields_ratios() {
        let cfg = StConfig {
            side: 24,
            closed_per_side: 16,
            open_capacity: 12,
            open_rate: 1.5,
            steps: 25,
            repeats: 1,
            seed: 1,
        };
        let rows = run(&cfg, 2);
        assert_eq!(rows.len(), 4, "2 worlds x 2 engines");
        assert!(covers_both_engines_and_all_stages(&rows));
        for r in &rows {
            assert_eq!(r.steps, cfg.steps);
            assert!(r.steps_per_sec > 0.0, "{}/{} untimed", r.world, r.engine);
            assert!(r.total_ms > 0.0);
            // Open worlds exercise the lifecycle stage for real.
            if r.open {
                assert!(r.stage_ms[Stage::Lifecycle.index()] > 0.0);
            }
        }
        let ratios = ratios(&rows);
        assert_eq!(ratios.len(), 2);
        for x in &ratios {
            assert!(x.total > 0.0, "{}: no total ratio", x.world);
        }
        let json = to_json(Scale::Smoke, &cfg, &rows);
        assert!(json.contains("\"bench\": \"step_throughput\""));
        for stage in Stage::ALL {
            assert!(json.contains(&format!("\"{}\":", stage.name())));
        }
        assert!(json.contains("\"cpu\"") && json.contains("\"gpu\""));
        assert!(json.contains("cpu_over_gpu"));
    }

    #[test]
    fn coverage_gate_rejects_missing_engines_and_idle_stages() {
        assert!(!covers_both_engines_and_all_stages(&[]));
        let row = |engine: &'static str| StRow {
            world: "paper_corridor",
            open: false,
            engine,
            agents: 10,
            steps: 5,
            steps_per_sec: 1.0,
            stage_ms: [1.0; Stage::COUNT],
            total_ms: 6.0,
        };
        // GPU row missing.
        assert!(!covers_both_engines_and_all_stages(&[row("cpu")]));
        // Both present: covered.
        assert!(covers_both_engines_and_all_stages(&[
            row("cpu"),
            row("gpu")
        ]));
        // A zero kernel stage breaks coverage.
        let mut dead = row("gpu");
        dead.stage_ms[Stage::Tour.index()] = 0.0;
        assert!(!covers_both_engines_and_all_stages(&[row("cpu"), dead]));
        // An open world with an idle lifecycle stage breaks coverage; a
        // closed world is allowed a zero lifecycle column.
        let open_row = |engine: &'static str, lifecycle_ms: f64| {
            let mut r = row(engine);
            r.world = "open_corridor";
            r.open = true;
            r.stage_ms[Stage::Lifecycle.index()] = lifecycle_ms;
            r
        };
        assert!(covers_both_engines_and_all_stages(&[
            open_row("cpu", 0.01),
            open_row("gpu", 0.01),
        ]));
        assert!(!covers_both_engines_and_all_stages(&[
            open_row("cpu", 0.01),
            open_row("gpu", 0.0),
        ]));
        let mut closed_idle = row("gpu");
        closed_idle.stage_ms[Stage::Lifecycle.index()] = 0.0;
        assert!(covers_both_engines_and_all_stages(&[
            row("cpu"),
            closed_idle
        ]));
    }
}
