//! Step throughput of the unified engine pipeline: per-stage wall time,
//! steps/second, and the CPU-vs-GPU ratio — the repo's perf trajectory.
//!
//! The paper's headline result is per-kernel speedup of the four-stage
//! pipeline; the unified `StepCore` now times every stage of **both**
//! engines through one code path, so that comparison is measurable
//! end-to-end instead of modelled. This harness runs a closed and an open
//! registry world on both engines, aggregates the per-stage
//! [`pedsim_core::engine::StepTimings`] that `pedsim_runner` surfaces on
//! every [`RunResult`](pedsim_runner::RunResult), and writes
//! `results/step_throughput_<scale>.{csv,json}` plus the repo-root
//! `BENCH_step_throughput.json` record that every subsequent optimisation
//! PR is judged against.
//!
//! Every number here is wall-clock and therefore non-deterministic; the
//! record captures *shape* (which stages dominate, how far apart the
//! engines sit), not bit-stable bytes.
//!
//! The **scale ladder** rides alongside the world×engine matrix: the
//! classic corridor at growing grid sides (96 → 1024 → 4096; roughly
//! 10³ → 10⁵ → 10⁶ agents, the larger rungs behind the default/paper
//! scales) swept across every backend-registry configuration
//! ([`LADDER_BACKENDS`]). Ladder rows land in the same JSON record and
//! registry, keyed by backend and thread count.

use std::collections::BTreeSet;

use pedsim_core::engine::{Backend, Stage};
use pedsim_core::prelude::*;
use pedsim_runner::{Batch, BatchReport, Job};
use pedsim_scenario::registry;

use crate::report::Table;
use crate::scale::Scale;

/// Step-throughput protocol parameters.
#[derive(Debug, Clone)]
pub struct StConfig {
    /// Grid side (square worlds).
    pub side: usize,
    /// Initial agents per side of the closed corridor.
    pub closed_per_side: usize,
    /// Recyclable slot capacity per side of the open corridor.
    pub open_capacity: usize,
    /// Open-corridor inflow rate (expected arrivals per step per group).
    pub open_rate: f64,
    /// Steps per replica (a pure step budget — timing runs never stop
    /// early, so every replica times exactly this many steps).
    pub steps: u64,
    /// Repeats per (world, engine); timings aggregate across them.
    pub repeats: u64,
    /// Base seed; repeat `k` uses `seed + k`.
    pub seed: u64,
}

impl StConfig {
    /// Protocol for `scale`.
    pub fn for_scale(scale: Scale) -> Self {
        match scale {
            // The paper's geometry at its mid population (25,600 agents on
            // 480×480). The step budget is a timing sample, not the
            // paper's 25,000-step evaluation budget — per-stage means
            // stabilise within a few hundred steps.
            Scale::Paper => Self {
                side: 480,
                closed_per_side: 12_800,
                open_capacity: 10_000,
                open_rate: 16.0,
                steps: 400,
                repeats: 2,
                seed: 9_300,
            },
            Scale::Default => Self {
                side: 96,
                closed_per_side: 600,
                open_capacity: 500,
                open_rate: 4.0,
                steps: 300,
                repeats: 2,
                seed: 9_300,
            },
            Scale::Smoke => Self {
                side: 32,
                closed_per_side: 30,
                open_capacity: 40,
                open_rate: 2.0,
                steps: 120,
                repeats: 1,
                seed: 9_300,
            },
        }
    }

    /// The measured worlds: one closed, one open registry scenario.
    pub fn worlds(&self) -> [(&'static str, bool); 2] {
        [("paper_corridor", false), ("open_corridor", true)]
    }

    fn scenario(&self, world: &str, seed: u64) -> Scenario {
        match world {
            "paper_corridor" => registry::paper_corridor(
                &EnvConfig::small(self.side, self.side, self.closed_per_side).with_seed(seed),
            ),
            "open_corridor" => {
                registry::open_corridor(self.side, self.side, self.open_capacity, self.open_rate)
                    .with_seed(seed)
            }
            other => panic!("unknown step-throughput world {other:?}"),
        }
    }

    /// The job list: every world × engine × repeat, ACO model (the
    /// heavier pipeline — pheromone scan and update on every stage pass),
    /// stopping on the pure step budget.
    pub fn jobs(&self) -> Vec<Job> {
        let mut jobs = Vec::new();
        for (world, _) in self.worlds() {
            for k in 0..self.repeats {
                let cfg = SimConfig::from_scenario(
                    &self.scenario(world, self.seed + k),
                    ModelKind::aco(),
                );
                let stop = StopCondition::Steps(self.steps);
                jobs.push(Job::cpu(format!("{world}/cpu"), cfg.clone(), stop.clone()));
                jobs.push(Job::gpu(format!("{world}/gpu"), cfg, stop));
            }
        }
        jobs
    }
}

/// One (world, engine) cell of the measurement (repeats aggregated).
#[derive(Debug, Clone)]
pub struct StRow {
    /// Registry world name.
    pub world: &'static str,
    /// Whether the world runs the open-boundary lifecycle.
    pub open: bool,
    /// Engine name (`"cpu"` / `"gpu"`).
    pub engine: &'static str,
    /// Agents (population for closed worlds, slot capacity for open).
    pub agents: usize,
    /// Total steps timed across repeats.
    pub steps: u64,
    /// Simulated steps per wall-clock second.
    pub steps_per_sec: f64,
    /// Mean milliseconds per step per stage ([`Stage::ALL`] order).
    pub stage_ms: [f64; Stage::COUNT],
    /// Mean milliseconds per step across all stages.
    pub total_ms: f64,
}

/// CPU-over-GPU time ratio for one world (how much slower the reference
/// engine is per stage; > 1 means the GPU pipeline wins).
#[derive(Debug, Clone)]
pub struct StRatio {
    /// Registry world name.
    pub world: &'static str,
    /// Total-pipeline ratio.
    pub total: f64,
    /// Per-stage ratios ([`Stage::ALL`] order; 0 when the GPU stage
    /// measured zero time).
    pub stages: [f64; Stage::COUNT],
}

/// Run the measurement on `workers` pool threads (1 for clean timings —
/// concurrent replicas contend for cores), returning the raw per-replica
/// report — the journal/registry emitters consume this before
/// [`aggregate`] collapses it into the table.
pub fn run_report(cfg: &StConfig, workers: usize) -> BatchReport {
    Batch::new(workers).run(&cfg.jobs())
}

/// [`run_report`] + [`aggregate`] in one call.
pub fn run(cfg: &StConfig, workers: usize) -> Vec<StRow> {
    aggregate(cfg, &run_report(cfg, workers))
}

/// Aggregate a finished measurement per (world, engine) cell.
pub fn aggregate(cfg: &StConfig, report: &BatchReport) -> Vec<StRow> {
    let mut rows = Vec::new();
    for (world, open) in cfg.worlds() {
        for engine in ["cpu", "gpu"] {
            let label = format!("{world}/{engine}");
            let results: Vec<_> = report.with_label(&label).collect();
            if results.is_empty() {
                continue;
            }
            let steps: u64 = results.iter().map(|r| r.steps).sum();
            let wall: f64 = results.iter().map(|r| r.wall.as_secs_f64()).sum();
            let mut stage_ms = [0.0; Stage::COUNT];
            for stage in Stage::ALL {
                let secs: f64 = results
                    .iter()
                    .map(|r| r.stages.of(stage).as_secs_f64())
                    .sum();
                stage_ms[stage.index()] = if steps == 0 {
                    0.0
                } else {
                    secs * 1e3 / steps as f64
                };
            }
            rows.push(StRow {
                world,
                open,
                engine,
                agents: results[0].agents,
                steps,
                steps_per_sec: if wall > 0.0 { steps as f64 / wall } else { 0.0 },
                stage_ms,
                total_ms: stage_ms.iter().sum(),
            });
        }
    }
    rows
}

/// Pair each world's CPU and GPU rows into time ratios.
pub fn ratios(rows: &[StRow]) -> Vec<StRatio> {
    let worlds: BTreeSet<&'static str> = rows.iter().map(|r| r.world).collect();
    worlds
        .into_iter()
        .filter_map(|world| {
            let cpu = rows
                .iter()
                .find(|r| r.world == world && r.engine == "cpu")?;
            let gpu = rows
                .iter()
                .find(|r| r.world == world && r.engine == "gpu")?;
            let ratio = |c: f64, g: f64| if g > 0.0 { c / g } else { 0.0 };
            let mut stages = [0.0; Stage::COUNT];
            for (i, slot) in stages.iter_mut().enumerate() {
                *slot = ratio(cpu.stage_ms[i], gpu.stage_ms[i]);
            }
            Some(StRatio {
                world,
                total: ratio(cpu.total_ms, gpu.total_ms),
                stages,
            })
        })
        .collect()
}

/// The smoke acceptance gate: every world was measured on **both**
/// engines, every replica ran its full budget, and every stage that does
/// real work reported non-zero time — the kernel stages everywhere, the
/// metrics stage (tracking is on), and the lifecycle stage on open
/// worlds (a silently-unconstructed lifecycle must fail the gate, not
/// ship a zero column).
pub fn covers_both_engines_and_all_stages(rows: &[StRow]) -> bool {
    let worlds: BTreeSet<&'static str> = rows.iter().map(|r| r.world).collect();
    !worlds.is_empty()
        && worlds.iter().all(|w| {
            ["cpu", "gpu"].iter().all(|e| {
                rows.iter().any(|r| {
                    r.world == *w
                        && r.engine == *e
                        && r.steps > 0
                        && Stage::KERNELS.iter().all(|s| r.stage_ms[s.index()] > 0.0)
                        && r.stage_ms[Stage::Metrics.index()] > 0.0
                        && (!r.open || r.stage_ms[Stage::Lifecycle.index()] > 0.0)
                })
            })
        })
}

/// One rung of the scale ladder: a square classic-corridor world.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LadderRung {
    /// Grid side.
    pub side: usize,
    /// Agents per side (total population is twice this).
    pub per_side: usize,
    /// Measured steps per replica (pure step budget).
    pub steps: u64,
    /// Untimed warmup steps discarded before the clock starts.
    pub warmup: u64,
}

impl LadderRung {
    /// Initial occupancy of this rung's world (`agents / cells`) — what
    /// `IterationMode::Auto` resolves against.
    pub fn occupancy(&self) -> f64 {
        (self.per_side * 2) as f64 / (self.side * self.side) as f64
    }
}

/// The backend-registry configurations the ladder sweeps, in report
/// order: the scalar reference, the pooled backend at 1/2/4 workers,
/// and the virtual-GPU engine.
pub const LADDER_BACKENDS: &[(&str, usize)] = &[
    ("scalar", 1),
    ("pooled", 1),
    ("pooled", 2),
    ("pooled", 4),
    ("simt", 1),
];

/// The stage-traversal modes every ladder cell is measured under, in
/// report order. Sweeping both pins the sparse-over-dense speedup as a
/// first-class series instead of an anecdote.
pub const LADDER_MODES: &[IterationMode] = &[IterationMode::Dense, IterationMode::Sparse];

/// Seed shared by every ladder replica.
pub const LADDER_SEED: u64 = 9_700;

/// The rungs measured at `scale`. Every scale climbs from the smoke
/// rung; the 10⁵-agent rung needs `default`, the 10⁶-agent rung
/// `--paper` (minutes per backend on one core). The big rungs carry a
/// warmup discard and enough measured steps that one slow first step
/// (page faults, cold caches) cannot dominate the mean — at 10/3
/// measured steps with no warmup they used to be noise traps.
pub fn ladder_rungs(scale: Scale) -> Vec<LadderRung> {
    let mut rungs = vec![LadderRung {
        side: 96,
        per_side: 400,
        steps: 40,
        warmup: 5,
    }];
    if scale != Scale::Smoke {
        rungs.push(LadderRung {
            side: 1024,
            per_side: 50_000,
            steps: 30,
            warmup: 3,
        });
    }
    if scale == Scale::Paper {
        rungs.push(LadderRung {
            side: 4096,
            per_side: 500_000,
            steps: 10,
            warmup: 2,
        });
    }
    rungs
}

/// Canonical ladder job label:
/// `ladder/s<side>/<backend>/t<threads>/<mode>`.
pub fn ladder_label(side: usize, backend: &str, threads: usize, mode: IterationMode) -> String {
    format!("ladder/s{side}/{backend}/t{threads}/{}", mode.name())
}

/// The ladder job list over explicit rungs: every rung × backend
/// configuration × traversal mode (restricted to `only`'s backend
/// configuration when given), LEM on the classic corridor with metrics
/// off — the ladder times the kernel pipeline, not the observables. One
/// replica per cell: the registry accumulates repeats across runs, and
/// a 10⁶-agent rung cannot afford in-process repetition.
pub fn ladder_jobs_for(rungs: &[LadderRung], only: Option<(&str, usize)>) -> Vec<Job> {
    let mut jobs = Vec::new();
    for rung in rungs {
        for &(backend, threads) in LADDER_BACKENDS {
            if let Some((b, t)) = only {
                if b != backend || t != threads {
                    continue;
                }
            }
            for &mode in LADDER_MODES {
                let env =
                    EnvConfig::small(rung.side, rung.side, rung.per_side).with_seed(LADDER_SEED);
                let cfg =
                    SimConfig::from_scenario(&registry::paper_corridor(&env), ModelKind::lem())
                        .with_metrics(false)
                        .with_iteration_mode(mode);
                jobs.push(
                    Job::backend(
                        ladder_label(rung.side, backend, threads, mode),
                        cfg,
                        Backend::named(backend, threads),
                        // Stop conditions count warmup steps too.
                        StopCondition::Steps(rung.warmup + rung.steps),
                    )
                    .with_warmup(rung.warmup),
                );
            }
        }
    }
    jobs
}

/// [`ladder_jobs_for`] over the rungs of `scale`.
pub fn ladder_jobs(scale: Scale, only: Option<(&str, usize)>) -> Vec<Job> {
    ladder_jobs_for(&ladder_rungs(scale), only)
}

/// One (rung, backend configuration, traversal mode) cell of the
/// ladder.
#[derive(Debug, Clone)]
pub struct LadderRow {
    /// Grid side of the rung.
    pub side: usize,
    /// Total agents simulated.
    pub agents: usize,
    /// Initial occupancy (`agents / cells`) of the rung's world.
    pub occupancy: f64,
    /// Backend registry key.
    pub backend: &'static str,
    /// Worker threads.
    pub threads: usize,
    /// Stage-traversal mode the cell ran under (`"dense"` / `"sparse"`).
    pub mode: &'static str,
    /// Untimed warmup steps discarded before measurement.
    pub warmup: u64,
    /// Steps timed (warmup excluded).
    pub steps: u64,
    /// Simulated steps per wall-clock second.
    pub steps_per_sec: f64,
    /// Mean milliseconds per step per stage ([`Stage::ALL`] order).
    pub stage_ms: [f64; Stage::COUNT],
    /// Mean milliseconds per step in the movement stage (the conflict-
    /// resolution kernel the pooled backend parallelises).
    pub movement_ms: f64,
    /// Mean milliseconds per step across all stages.
    pub total_ms: f64,
}

/// Aggregate a finished ladder batch into per-cell rows (report order:
/// rung-major, then [`LADDER_BACKENDS`], then [`LADDER_MODES`]).
pub fn aggregate_ladder(rungs: &[LadderRung], report: &BatchReport) -> Vec<LadderRow> {
    let mut out = Vec::new();
    for rung in rungs {
        for &(backend, threads) in LADDER_BACKENDS {
            for &mode in LADDER_MODES {
                let label = ladder_label(rung.side, backend, threads, mode);
                let results: Vec<_> = report.with_label(&label).collect();
                if results.is_empty() {
                    continue;
                }
                let steps: u64 = results.iter().map(|r| r.steps).sum();
                let wall: f64 = results.iter().map(|r| r.wall.as_secs_f64()).sum();
                let per_step_ms = |secs: f64| {
                    if steps == 0 {
                        0.0
                    } else {
                        secs * 1e3 / steps as f64
                    }
                };
                let mut stage_ms = [0.0; Stage::COUNT];
                for stage in Stage::ALL {
                    let secs: f64 = results
                        .iter()
                        .map(|r| r.stages.of(stage).as_secs_f64())
                        .sum();
                    stage_ms[stage.index()] = per_step_ms(secs);
                }
                out.push(LadderRow {
                    side: rung.side,
                    agents: results[0].agents,
                    occupancy: rung.occupancy(),
                    backend,
                    threads,
                    mode: mode.name(),
                    warmup: rung.warmup,
                    steps,
                    steps_per_sec: if wall > 0.0 { steps as f64 / wall } else { 0.0 },
                    stage_ms,
                    movement_ms: stage_ms[Stage::Movement.index()],
                    total_ms: stage_ms.iter().sum(),
                });
            }
        }
    }
    out
}

/// Movement-stage speedup of the widest pooled configuration over the
/// scalar reference, per `(side, mode)`: `(side, mode,
/// scalar_movement_ms / pooled_movement_ms)`. Cells missing either side
/// of the ratio are skipped. On a single-core host this honestly
/// reports ≈1× or below — the pooled backend buys nothing without cores
/// to spend.
pub fn ladder_speedups(rows: &[LadderRow]) -> Vec<(usize, &'static str, f64)> {
    let widest = LADDER_BACKENDS
        .iter()
        .filter(|(b, _)| *b == "pooled")
        .map(|&(_, t)| t)
        .max()
        .unwrap_or(1);
    let cells: BTreeSet<(usize, &'static str)> = rows.iter().map(|r| (r.side, r.mode)).collect();
    cells
        .into_iter()
        .filter_map(|(side, mode)| {
            let scalar = rows
                .iter()
                .find(|r| r.side == side && r.mode == mode && r.backend == "scalar")?;
            let pooled = rows.iter().find(|r| {
                r.side == side && r.mode == mode && r.backend == "pooled" && r.threads == widest
            })?;
            if pooled.movement_ms > 0.0 {
                Some((side, mode, scalar.movement_ms / pooled.movement_ms))
            } else {
                None
            }
        })
        .collect()
}

/// Total-step speedup of sparse over dense traversal, per `(side,
/// backend, threads)` cell: `dense_total_ms / sparse_total_ms`. The
/// tentpole series — O(live agents) stepping must beat the O(cells)
/// sweep wherever occupancy is low, and by more as the grid grows.
pub fn sparse_speedups(rows: &[LadderRow]) -> Vec<(usize, &'static str, usize, f64)> {
    let cells: BTreeSet<(usize, &'static str, usize)> = rows
        .iter()
        .map(|r| (r.side, r.backend, r.threads))
        .collect();
    cells
        .into_iter()
        .filter_map(|(side, backend, threads)| {
            let find = |mode: &str| {
                rows.iter().find(|r| {
                    r.side == side && r.backend == backend && r.threads == threads && r.mode == mode
                })
            };
            let (dense, sparse) = (find("dense")?, find("sparse")?);
            if sparse.total_ms > 0.0 {
                Some((side, backend, threads, dense.total_ms / sparse.total_ms))
            } else {
                None
            }
        })
        .collect()
}

/// Pooled thread-scaling efficiency per `(side, mode, threads)`:
/// `steps_per_sec(t) / (steps_per_sec(1) · t)`. 1.0 is perfect linear
/// scaling; a flat thread curve reads as `1/t`. The dense rows were
/// historically near-flat because row bands balanced *cells*, not
/// agents — this series keeps that regression visible.
pub fn thread_scaling(rows: &[LadderRow]) -> Vec<(usize, &'static str, usize, f64)> {
    let mut out = Vec::new();
    let cells: BTreeSet<(usize, &'static str)> = rows
        .iter()
        .filter(|r| r.backend == "pooled")
        .map(|r| (r.side, r.mode))
        .collect();
    for (side, mode) in cells {
        let sps = |threads: usize| {
            rows.iter()
                .find(|r| {
                    r.side == side
                        && r.mode == mode
                        && r.backend == "pooled"
                        && r.threads == threads
                })
                .map(|r| r.steps_per_sec)
        };
        let Some(base) = sps(1) else { continue };
        if base <= 0.0 {
            continue;
        }
        for &(backend, threads) in LADDER_BACKENDS {
            if backend != "pooled" {
                continue;
            }
            if let Some(v) = sps(threads) {
                out.push((side, mode, threads, v / (base * threads as f64)));
            }
        }
    }
    out
}

/// Render the ladder as a table (Markdown/CSV).
pub fn ladder_table(rows: &[LadderRow]) -> Table {
    let mut t = Table::new(vec![
        "side".to_string(),
        "agents".to_string(),
        "occupancy".to_string(),
        "backend".to_string(),
        "threads".to_string(),
        "mode".to_string(),
        "steps".to_string(),
        "steps_per_sec".to_string(),
        "movement_ms".to_string(),
        "total_ms".to_string(),
    ]);
    for r in rows {
        t.push_row(vec![
            r.side.to_string(),
            r.agents.to_string(),
            format!("{:.4}", r.occupancy),
            r.backend.to_string(),
            r.threads.to_string(),
            r.mode.to_string(),
            r.steps.to_string(),
            format!("{:.1}", r.steps_per_sec),
            format!("{:.4}", r.movement_ms),
            format!("{:.4}", r.total_ms),
        ]);
    }
    t
}

/// Render the measurement as a table (Markdown/CSV).
pub fn table(rows: &[StRow]) -> Table {
    let mut headers = vec![
        "world".to_string(),
        "engine".to_string(),
        "agents".to_string(),
        "steps".to_string(),
        "steps_per_sec".to_string(),
    ];
    headers.extend(Stage::ALL.iter().map(|s| format!("{}_ms", s.name())));
    headers.push("total_ms".to_string());
    let mut t = Table::new(headers);
    for r in rows {
        let mut row = vec![
            r.world.to_string(),
            r.engine.to_string(),
            r.agents.to_string(),
            r.steps.to_string(),
            format!("{:.1}", r.steps_per_sec),
        ];
        row.extend(r.stage_ms.iter().map(|ms| format!("{ms:.4}")));
        row.push(format!("{:.4}", r.total_ms));
        t.push_row(row);
    }
    t
}

fn stages_object(values: &[f64; Stage::COUNT], precision: usize) -> String {
    let mut s = String::from("{");
    for stage in Stage::ALL {
        if s.len() > 1 {
            s.push_str(", ");
        }
        s.push_str(&format!(
            "\"{}\": {:.precision$}",
            stage.name(),
            values[stage.index()]
        ));
    }
    s.push('}');
    s
}

/// JSON for `results/step_throughput_<scale>.json` and the repo-root
/// `BENCH_step_throughput.json`: per-stage breakdowns for both engines
/// plus CPU-over-GPU ratios, per world, and the backend scale ladder —
/// v3 adds per-cell occupancy / traversal mode / per-stage timings and
/// the sparse-over-dense and thread-scaling-efficiency derived series.
pub fn to_json(scale: Scale, cfg: &StConfig, rows: &[StRow], ladder: &[LadderRow]) -> String {
    let ratios = ratios(rows);
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"step_throughput\",\n");
    s.push_str("  \"schema\": \"pedsim.step_throughput.v3\",\n");
    s.push_str(&format!("  \"scale\": \"{}\",\n", scale.label()));
    s.push_str(&format!("  \"side\": {},\n", cfg.side));
    s.push_str(&format!("  \"steps_per_replica\": {},\n", cfg.steps));
    s.push_str(&format!("  \"repeats\": {},\n", cfg.repeats));
    s.push_str("  \"worlds\": [\n");
    let worlds = cfg.worlds();
    let present: Vec<_> = worlds
        .iter()
        .filter(|(w, _)| rows.iter().any(|r| r.world == *w))
        .collect();
    for (wi, (world, open)) in present.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"world\": \"{world}\", \"open\": {open}, \"engines\": [\n"
        ));
        let engine_rows: Vec<_> = rows.iter().filter(|r| r.world == *world).collect();
        for (i, r) in engine_rows.iter().enumerate() {
            let comma = if i + 1 < engine_rows.len() { "," } else { "" };
            s.push_str(&format!(
                "      {{\"engine\": \"{}\", \"agents\": {}, \"steps\": {}, \
                 \"steps_per_sec\": {:.1}, \"total_ms_per_step\": {:.4}, \
                 \"stages_ms_per_step\": {}}}{comma}\n",
                r.engine,
                r.agents,
                r.steps,
                r.steps_per_sec,
                r.total_ms,
                stages_object(&r.stage_ms, 4),
            ));
        }
        s.push_str("    ]");
        if let Some(ratio) = ratios.iter().find(|x| x.world == *world) {
            s.push_str(&format!(
                ", \"cpu_over_gpu\": {{\"total\": {:.3}, \"stages\": {}}}",
                ratio.total,
                stages_object(&ratio.stages, 3),
            ));
        }
        let comma = if wi + 1 < present.len() { "," } else { "" };
        s.push_str(&format!("}}{comma}\n"));
    }
    s.push_str("  ],\n");
    s.push_str("  \"ladder\": [\n");
    for (i, r) in ladder.iter().enumerate() {
        let comma = if i + 1 < ladder.len() { "," } else { "" };
        s.push_str(&format!(
            "    {{\"side\": {}, \"agents\": {}, \"occupancy\": {:.4}, \"backend\": \"{}\", \
             \"threads\": {}, \"iteration_mode\": \"{}\", \"warmup\": {}, \"steps\": {}, \
             \"steps_per_sec\": {:.1}, \"movement_ms_per_step\": {:.4}, \
             \"total_ms_per_step\": {:.4}, \"stages_ms_per_step\": {}}}{comma}\n",
            r.side,
            r.agents,
            r.occupancy,
            r.backend,
            r.threads,
            r.mode,
            r.warmup,
            r.steps,
            r.steps_per_sec,
            r.movement_ms,
            r.total_ms,
            stages_object(&r.stage_ms, 4),
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"ladder_movement_speedup\": [\n");
    let speedups = ladder_speedups(ladder);
    for (i, (side, mode, x)) in speedups.iter().enumerate() {
        let comma = if i + 1 < speedups.len() { "," } else { "" };
        s.push_str(&format!(
            "    {{\"side\": {side}, \"mode\": \"{mode}\", \"pooled_over_scalar\": {x:.3}}}{comma}\n"
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"sparse_over_dense\": [\n");
    let sparse = sparse_speedups(ladder);
    for (i, (side, backend, threads, x)) in sparse.iter().enumerate() {
        let comma = if i + 1 < sparse.len() { "," } else { "" };
        s.push_str(&format!(
            "    {{\"side\": {side}, \"backend\": \"{backend}\", \"threads\": {threads}, \
             \"total_speedup\": {x:.3}}}{comma}\n"
        ));
    }
    s.push_str("  ],\n");
    s.push_str("  \"thread_scaling_efficiency\": [\n");
    let scaling = thread_scaling(ladder);
    for (i, (side, mode, threads, eff)) in scaling.iter().enumerate() {
        let comma = if i + 1 < scaling.len() { "," } else { "" };
        s.push_str(&format!(
            "    {{\"side\": {side}, \"mode\": \"{mode}\", \"threads\": {threads}, \
             \"efficiency\": {eff:.3}}}{comma}\n"
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_protocol_is_small_and_jobs_cover_both_engines_and_worlds() {
        let cfg = StConfig::for_scale(Scale::Smoke);
        assert!(cfg.steps <= 200);
        let jobs = cfg.jobs();
        assert_eq!(jobs.len(), cfg.worlds().len() * 2 * cfg.repeats as usize);
        for job in &jobs {
            assert!(job.validate().is_ok());
        }
        for (world, open) in cfg.worlds() {
            for engine in ["cpu", "gpu"] {
                let label = format!("{world}/{engine}");
                let matched: Vec<_> = jobs.iter().filter(|j| j.label == label).collect();
                assert_eq!(matched.len(), cfg.repeats as usize, "{label}");
                for j in matched {
                    assert_eq!(j.engine.name(), engine);
                    let s = j.cfg.scenario.as_ref().expect("registry world");
                    assert_eq!(s.is_open(), open);
                }
            }
        }
    }

    #[test]
    fn tiny_run_covers_all_stages_and_yields_ratios() {
        let cfg = StConfig {
            side: 24,
            closed_per_side: 16,
            open_capacity: 12,
            open_rate: 1.5,
            steps: 25,
            repeats: 1,
            seed: 1,
        };
        let rows = run(&cfg, 2);
        assert_eq!(rows.len(), 4, "2 worlds x 2 engines");
        assert!(covers_both_engines_and_all_stages(&rows));
        for r in &rows {
            assert_eq!(r.steps, cfg.steps);
            assert!(r.steps_per_sec > 0.0, "{}/{} untimed", r.world, r.engine);
            assert!(r.total_ms > 0.0);
            // Open worlds exercise the lifecycle stage for real.
            if r.open {
                assert!(r.stage_ms[Stage::Lifecycle.index()] > 0.0);
            }
        }
        let ratios = ratios(&rows);
        assert_eq!(ratios.len(), 2);
        for x in &ratios {
            assert!(x.total > 0.0, "{}: no total ratio", x.world);
        }
        let json = to_json(Scale::Smoke, &cfg, &rows, &[]);
        assert!(json.contains("\"bench\": \"step_throughput\""));
        assert!(json.contains("\"schema\": \"pedsim.step_throughput.v3\""));
        for stage in Stage::ALL {
            assert!(json.contains(&format!("\"{}\":", stage.name())));
        }
        assert!(json.contains("\"cpu\"") && json.contains("\"gpu\""));
        assert!(json.contains("cpu_over_gpu"));
        assert!(json.contains("\"ladder\": ["));
    }

    #[test]
    fn ladder_jobs_cover_every_backend_and_validate() {
        let cells = LADDER_BACKENDS.len() * LADDER_MODES.len();
        let jobs = ladder_jobs(Scale::Smoke, None);
        assert_eq!(jobs.len(), cells);
        for job in &jobs {
            assert!(job.validate().is_ok(), "{}", job.label);
            // Warmup rides inside the step budget, never on top of it.
            assert!(job.warmup > 0, "{}", job.label);
            assert_eq!(job.stop, StopCondition::Steps(job.warmup + 40));
        }
        // Every label is distinct and names its backend configuration
        // and traversal mode.
        let labels: BTreeSet<&str> = jobs.iter().map(|j| j.label.as_str()).collect();
        assert_eq!(labels.len(), jobs.len());
        for &(backend, threads) in LADDER_BACKENDS {
            for &mode in LADDER_MODES {
                let label = ladder_label(96, backend, threads, mode);
                let job = jobs.iter().find(|j| j.label == label).expect("cell");
                assert_eq!(job.engine.backend_sel(), (backend, threads));
                assert_eq!(job.cfg.iteration, mode);
            }
        }
        // Larger scales add rungs without dropping the smoke rung.
        assert_eq!(ladder_jobs(Scale::Default, None).len(), 2 * cells);
        assert_eq!(ladder_jobs(Scale::Paper, None).len(), 3 * cells);
        // `only` restricts to one backend configuration per rung; both
        // modes stay.
        let pooled4 = ladder_jobs(Scale::Default, Some(("pooled", 4)));
        assert_eq!(pooled4.len(), 2 * LADDER_MODES.len());
        assert!(pooled4.iter().all(|j| j.label.contains("pooled/t4/")));
    }

    #[test]
    fn tiny_ladder_run_aggregates_and_reports_speedups() {
        let rungs = [LadderRung {
            side: 24,
            per_side: 20,
            steps: 10,
            warmup: 2,
        }];
        let jobs = ladder_jobs_for(&rungs, None);
        let report = Batch::new(1).run(&jobs);
        let rows = aggregate_ladder(&rungs, &report);
        assert_eq!(rows.len(), LADDER_BACKENDS.len() * LADDER_MODES.len());
        for r in &rows {
            // Warmup steps are discarded from the timed count.
            assert_eq!(r.steps, 10);
            assert_eq!(r.warmup, 2);
            assert_eq!(r.agents, 40);
            assert!((r.occupancy - 40.0 / (24.0 * 24.0)).abs() < 1e-12);
            assert!(
                r.steps_per_sec > 0.0,
                "{}/t{}/{} untimed",
                r.backend,
                r.threads,
                r.mode
            );
            assert!(r.movement_ms > 0.0);
            assert_eq!(r.movement_ms, r.stage_ms[Stage::Movement.index()]);
        }
        // One movement-speedup entry per mode; sparse-over-dense per
        // backend configuration; pooled scaling per mode × thread count.
        let speedups = ladder_speedups(&rows);
        assert_eq!(speedups.len(), LADDER_MODES.len());
        for (side, _, x) in &speedups {
            assert_eq!(*side, 24);
            assert!(*x > 0.0);
        }
        let sparse = sparse_speedups(&rows);
        assert_eq!(sparse.len(), LADDER_BACKENDS.len());
        assert!(sparse.iter().all(|(_, _, _, x)| *x > 0.0));
        let scaling = thread_scaling(&rows);
        assert_eq!(scaling.len(), 3 * LADDER_MODES.len());
        for (_, mode, threads, eff) in &scaling {
            assert!(*eff > 0.0, "pooled t{threads} {mode} unmeasured");
            if *threads == 1 {
                assert!((eff - 1.0).abs() < 1e-12);
            }
        }
        let json = to_json(Scale::Smoke, &StConfig::for_scale(Scale::Smoke), &[], &rows);
        assert!(json.contains("\"backend\": \"pooled\""));
        assert!(json.contains("\"iteration_mode\": \"sparse\""));
        assert!(json.contains("\"occupancy\":"));
        assert!(json.contains("\"stages_ms_per_step\":"));
        assert!(json.contains("ladder_movement_speedup"));
        assert!(json.contains("sparse_over_dense"));
        assert!(json.contains("thread_scaling_efficiency"));
    }

    #[test]
    fn coverage_gate_rejects_missing_engines_and_idle_stages() {
        assert!(!covers_both_engines_and_all_stages(&[]));
        let row = |engine: &'static str| StRow {
            world: "paper_corridor",
            open: false,
            engine,
            agents: 10,
            steps: 5,
            steps_per_sec: 1.0,
            stage_ms: [1.0; Stage::COUNT],
            total_ms: 6.0,
        };
        // GPU row missing.
        assert!(!covers_both_engines_and_all_stages(&[row("cpu")]));
        // Both present: covered.
        assert!(covers_both_engines_and_all_stages(&[
            row("cpu"),
            row("gpu")
        ]));
        // A zero kernel stage breaks coverage.
        let mut dead = row("gpu");
        dead.stage_ms[Stage::Tour.index()] = 0.0;
        assert!(!covers_both_engines_and_all_stages(&[row("cpu"), dead]));
        // An open world with an idle lifecycle stage breaks coverage; a
        // closed world is allowed a zero lifecycle column.
        let open_row = |engine: &'static str, lifecycle_ms: f64| {
            let mut r = row(engine);
            r.world = "open_corridor";
            r.open = true;
            r.stage_ms[Stage::Lifecycle.index()] = lifecycle_ms;
            r
        };
        assert!(covers_both_engines_and_all_stages(&[
            open_row("cpu", 0.01),
            open_row("gpu", 0.01),
        ]));
        assert!(!covers_both_engines_and_all_stages(&[
            open_row("cpu", 0.01),
            open_row("gpu", 0.0),
        ]));
        let mut closed_idle = row("gpu");
        closed_idle.stage_ms[Stage::Lifecycle.index()] = 0.0;
        assert!(covers_both_engines_and_all_stages(&[
            row("cpu"),
            closed_idle
        ]));
    }
}
