//! Ablations of the paper's §IV implementation techniques and the model
//! constants DESIGN.md lists as unspecified.
//!
//! * [`movement_variants`] — scatter-to-gather (§IV.d) vs the rejected
//!   atomic-CAS formulation: wall time and atomic-op counts;
//! * [`divergence_demo`] — branchy vs branchless (logical-operator)
//!   selection: recorded warp divergence and modelled cycles;
//! * [`tiled_variants`] — 18×18 shared-tile loads (Figure 3) vs direct
//!   global reads in the scoring kernel. Note the honest caveat: on a
//!   *host-parallel* substrate the tile copy is pure overhead (host caches
//!   do what shared memory does on Fermi), so the wall-clock winner flips;
//!   the modelled-cycle column shows why the tile wins on the real device;
//! * [`param_sweep`] — throughput sensitivity to the unspecified
//!   constants (LEM σ; ACO ρ).

use std::time::Duration;

use pedsim_core::kernels::{
    AtomicMovementKernel, DeviceState, InitialCalcKernel, MovementKernel, TourKernel,
};
use pedsim_core::model::{front_status, lem_scan_row};
use pedsim_core::params::{AcoParams, LemParams, ModelKind, SimConfig};
use pedsim_core::prelude::*;
use pedsim_grid::cell::{Group, CELL_WALL};
use pedsim_grid::Matrix;
use simt::exec::{BlockCtx, BlockKernel, ExecPolicy, LaunchConfig};
use simt::memory::{AtomicBuffer, ScatterBuffer, ScatterView};
use simt::profile::{CycleModel, KernelProfile};
use simt::{Device, DeviceProps, Dim2};

use crate::report::{f3, secs, Table};

/// Prepare a device state with populated futures (init→calc→tour run
/// once), ready for movement-kernel experiments.
fn prepared_state(side: usize, agents: usize, seed: u64) -> DeviceState {
    let env = Environment::new(&EnvConfig::small(side, side, agents / 2).with_seed(seed));
    let dist = pedsim_grid::DistanceData::rows(env.height());
    let state = DeviceState::upload(&env, &dist, ModelKind::lem(), false);
    let device = Device::sequential();
    let calc = InitialCalcKernel {
        w: state.w,
        h: state.h,
        mat_in: state.mat[0].as_slice(),
        index_in: state.index[0].as_slice(),
        dist: state.dist_ref(),
        pher_in: None,
        model: ModelKind::lem(),
        scan_val: state.scan_val.view(),
        scan_idx: state.scan_idx.view(),
        front: state.front.view(),
        front_k: state.front_k.view(),
    };
    let cells =
        LaunchConfig::tiled_over(Dim2::new(state.w as u32, state.h as u32), Dim2::square(16))
            .with_seed(seed);
    device.launch(&cells, &calc).expect("calc");
    let tour = TourKernel {
        n: state.n,
        alive: &state.alive,
        scan_val: state.scan_val.as_slice(),
        scan_idx: state.scan_idx.as_slice(),
        front: state.front.as_slice(),
        front_k: state.front_k.as_slice(),
        row: state.row.as_slice(),
        col: state.col.as_slice(),
        future_row: state.future_row.view(),
        future_col: state.future_col.view(),
        model: ModelKind::lem(),
    };
    let rows = LaunchConfig::new(
        Dim2::new((state.n as u32).div_ceil(256), 1),
        Dim2::new(256, 1),
    )
    .with_seed(seed)
    .with_salt(2);
    device.launch(&rows, &tour).expect("tour");
    state
}

/// Result of the movement-variant comparison.
#[derive(Debug, Clone)]
pub struct MovementAblation {
    /// Cumulative launch time of the scatter-to-gather kernel.
    pub gather_time: Duration,
    /// Cumulative launch time of the atomic-CAS kernel.
    pub atomic_time: Duration,
    /// Atomic operations the CAS variant performed.
    pub atomic_ops: u64,
    /// One-launch profiles `(gather, atomic)` for the Fermi cost model.
    pub profiles: (KernelProfile, KernelProfile),
}

/// Compare the two movement formulations over `reps` launches of the same
/// post-tour state.
pub fn movement_variants(side: usize, agents: usize, reps: usize) -> MovementAblation {
    let state = prepared_state(side, agents, 97);
    let device = Device::builder()
        .policy(ExecPolicy::parallel_auto())
        .profiling(true)
        .build();
    let cells =
        LaunchConfig::tiled_over(Dim2::new(state.w as u32, state.h as u32), Dim2::square(16))
            .with_seed(97)
            .with_salt(3);
    let rows_cfg = LaunchConfig::new(
        Dim2::new((state.n as u32).div_ceil(256), 1),
        Dim2::new(256, 1),
    )
    .with_seed(97)
    .with_salt(3);

    // Scatter-to-gather: writes go to the ping-pong "next" buffers; inputs
    // are untouched, so every rep sees the identical state.
    let mut gather_time = Duration::ZERO;
    let mut gather_profile = KernelProfile::default();
    for rep in 0..reps {
        let k = MovementKernel {
            w: state.w,
            h: state.h,
            mat_in: state.mat[0].as_slice(),
            index_in: state.index[0].as_slice(),
            future_row: state.future_row.as_slice(),
            future_col: state.future_col.as_slice(),
            id: &state.id,
            row: state.row.view(),
            col: state.col.view(),
            pos: state.pos.view(),
            tour: state.tour.view(),
            mat_out: state.mat[1].view(),
            index_out: state.index[1].view(),
            pher_in: None,
            pher_out: None,
            aco: None,
        };
        let stats = device.launch(&cells, &k).expect("gather");
        gather_time += stats.duration;
        if rep == 0 {
            gather_profile = stats.profile.expect("profiling on");
        }
    }

    // Atomic CAS: mutates in place → reload outside the timed region.
    let mat_atomic = AtomicBuffer::new(state.w * state.h, 0);
    let index_atomic = AtomicBuffer::new(state.w * state.h, 0);
    let mat_src: Vec<u32> = state.mat[0]
        .as_slice()
        .iter()
        .map(|&v| u32::from(v))
        .collect();
    let index_src: Vec<u32> = state.index[0].as_slice().to_vec();
    let row_scratch = ScatterBuffer::from_vec(state.row.as_slice().to_vec(), false);
    let col_scratch = ScatterBuffer::from_vec(state.col.as_slice().to_vec(), false);
    let mut atomic_time = Duration::ZERO;
    let mut atomic_ops = 0u64;
    let mut atomic_profile = KernelProfile::default();
    for rep in 0..reps {
        mat_atomic.load_from(&mat_src);
        index_atomic.load_from(&index_src);
        let k = AtomicMovementKernel {
            w: state.w,
            n: state.n,
            mat: &mat_atomic,
            index: &index_atomic,
            future_row: state.future_row.as_slice(),
            future_col: state.future_col.as_slice(),
            id: &state.id,
            row: row_scratch.view(),
            col: col_scratch.view(),
        };
        let stats = device.launch(&rows_cfg, &k).expect("atomic");
        atomic_time += stats.duration;
        if let Some(p) = stats.profile {
            atomic_ops += p.atomic_ops;
            if rep == 0 {
                atomic_profile = p;
            }
        }
    }

    MovementAblation {
        gather_time,
        atomic_time,
        atomic_ops,
        profiles: (gather_profile, atomic_profile),
    }
}

/// A deliberately branchy selection kernel (what the paper avoids).
struct BranchyKernel<'a> {
    data: &'a [u32],
    out: ScatterView<'a, u32>,
}

impl BlockKernel for BranchyKernel<'_> {
    fn block(&self, ctx: &mut BlockCtx) {
        ctx.threads(|t| {
            let i = t.global_linear();
            if i < self.data.len() {
                // Data-dependent branch: lanes disagree within warps.
                let v = if t.branch(self.data[i].is_multiple_of(2)) {
                    self.data[i] / 2
                } else {
                    self.data[i].wrapping_mul(3).wrapping_add(1)
                };
                t.alu(2);
                self.out.write(i, v);
            }
        });
    }
    fn name(&self) -> &'static str {
        "branchy_select"
    }
}

/// The branchless equivalent (the paper's logical-operator style).
struct BranchlessKernel<'a> {
    data: &'a [u32],
    out: ScatterView<'a, u32>,
}

impl BlockKernel for BranchlessKernel<'_> {
    fn block(&self, ctx: &mut BlockCtx) {
        ctx.threads(|t| {
            let i = t.global_linear();
            if i < self.data.len() {
                let x = self.data[i];
                let v = t.select(
                    x.is_multiple_of(2),
                    x / 2,
                    x.wrapping_mul(3).wrapping_add(1),
                );
                t.alu(2);
                self.out.write(i, v);
            }
        });
    }
    fn name(&self) -> &'static str {
        "branchless_select"
    }
}

/// Divergence-profile comparison of the two styles; returns
/// `(branchy, branchless)` profiles over one launch each.
pub fn divergence_demo(cells: usize) -> (KernelProfile, KernelProfile) {
    let data: Vec<u32> = (0..cells as u32)
        .map(|i| i.wrapping_mul(2_654_435_761))
        .collect();
    let out = ScatterBuffer::<u32>::zeroed(cells, false);
    let device = Device::builder()
        .policy(ExecPolicy::Sequential)
        .profiling(true)
        .build();
    let cfg = LaunchConfig::new(
        Dim2::new((cells as u32).div_ceil(256), 1),
        Dim2::new(256, 1),
    );
    out.begin_epoch();
    let branchy = device
        .launch(
            &cfg,
            &BranchyKernel {
                data: &data,
                out: out.view(),
            },
        )
        .expect("branchy")
        .profile
        .expect("profiling on");
    out.begin_epoch();
    let branchless = device
        .launch(
            &cfg,
            &BranchlessKernel {
                data: &data,
                out: out.view(),
            },
        )
        .expect("branchless")
        .profile
        .expect("profiling on");
    (branchy, branchless)
}

/// Render the divergence demo with modelled Fermi cycles.
pub fn divergence_table(branchy: &KernelProfile, branchless: &KernelProfile) -> Table {
    let model = CycleModel::default();
    let fermi = DeviceProps::gtx_560_ti_448();
    let mut t = Table::new(vec![
        "variant",
        "divergent_branches",
        "uniform_branches",
        "modelled_fermi_us",
    ]);
    for (name, p) in [("branchy", branchy), ("branchless (paper)", branchless)] {
        t.push_row(vec![
            name.to_string(),
            p.divergent_branches.to_string(),
            p.uniform_branches.to_string(),
            format!("{:.1}", model.seconds(p, &fermi) * 1e6),
        ]);
    }
    t
}

/// The scoring kernel without shared tiles: every neighbourhood access is
/// a direct global read.
struct UntiledCalcKernel<'a> {
    w: usize,
    h: usize,
    mat_in: &'a [u8],
    index_in: &'a [u32],
    dist: pedsim_grid::DistRef<'a>,
    scan_val: ScatterView<'a, f32>,
    scan_idx: ScatterView<'a, u8>,
    front: ScatterView<'a, u8>,
}

impl BlockKernel for UntiledCalcKernel<'_> {
    fn block(&self, ctx: &mut BlockCtx) {
        let (w, h) = (self.w, self.h);
        let mat = Matrix::from_vec(h, w, self.mat_in.to_vec());
        ctx.threads(|t| {
            let (r, c) = t.global_rc();
            if (r as usize) < h && (c as usize) < w {
                let (ri, ci) = (i64::from(r), i64::from(c));
                let occ = |rr: i64, cc: i64| mat.get_or(rr, cc, CELL_WALL);
                if let Some(g) = Group::from_label(occ(ri, ci)) {
                    let a = self.index_in[r as usize * w + c as usize] as usize;
                    let row = lem_scan_row(&occ, self.dist, g, ri, ci, 1);
                    t.note_global_loads(10);
                    for s in 0..8 {
                        self.scan_val.write(a * 8 + s, row.vals[s]);
                        self.scan_idx.write(a * 8 + s, row.idxs[s]);
                    }
                    let fk = self.dist.front_k(g, ri, ci);
                    self.front.write(a, front_status(&occ, fk, ri, ci));
                }
            }
        });
    }
    fn name(&self) -> &'static str {
        "initial_calc_untiled"
    }
}

/// Result of the tiled-vs-direct comparison.
#[derive(Debug, Clone)]
pub struct TiledAblation {
    /// Tiled (paper Figure 3) cumulative time.
    pub tiled_time: Duration,
    /// Direct-global cumulative time.
    pub direct_time: Duration,
    /// Profiles `(tiled, direct)` of one launch each.
    pub profiles: (KernelProfile, KernelProfile),
}

/// Compare tiled vs direct-global scoring over `reps` launches.
pub fn tiled_variants(side: usize, agents: usize, reps: usize) -> TiledAblation {
    let state = prepared_state(side, agents, 131);
    let device = Device::builder()
        .policy(ExecPolicy::parallel_auto())
        .profiling(true)
        .build();
    let cells =
        LaunchConfig::tiled_over(Dim2::new(state.w as u32, state.h as u32), Dim2::square(16));
    let mut tiled_time = Duration::ZERO;
    let mut direct_time = Duration::ZERO;
    let mut tiled_profile = KernelProfile::default();
    let mut direct_profile = KernelProfile::default();
    for i in 0..reps {
        let k = InitialCalcKernel {
            w: state.w,
            h: state.h,
            mat_in: state.mat[0].as_slice(),
            index_in: state.index[0].as_slice(),
            dist: state.dist_ref(),
            pher_in: None,
            model: ModelKind::lem(),
            scan_val: state.scan_val.view(),
            scan_idx: state.scan_idx.view(),
            front: state.front.view(),
            front_k: state.front_k.view(),
        };
        let s = device.launch(&cells, &k).expect("tiled");
        tiled_time += s.duration;
        if i == 0 {
            tiled_profile = s.profile.expect("profiling");
        }
        let k = UntiledCalcKernel {
            w: state.w,
            h: state.h,
            mat_in: state.mat[0].as_slice(),
            index_in: state.index[0].as_slice(),
            dist: state.dist_ref(),
            scan_val: state.scan_val.view(),
            scan_idx: state.scan_idx.view(),
            front: state.front.view(),
        };
        let s = device.launch(&cells, &k).expect("direct");
        direct_time += s.duration;
        if i == 0 {
            direct_profile = s.profile.expect("profiling");
        }
    }
    TiledAblation {
        tiled_time,
        direct_time,
        profiles: (tiled_profile, direct_profile),
    }
}

/// Throughput sensitivity sweep over one unspecified constant.
///
/// Runs at a medium density (~28 % fill) with a tight step budget — the
/// regime where Fig. 6a separates the models and where these constants
/// actually move the outcome (at low density every setting crosses
/// everyone and the sweep is flat). All twelve parameter settings run as
/// one concurrent batch, each replica exiting early once everyone has
/// arrived.
pub fn param_sweep(side: usize, agents: usize, steps: u64) -> Table {
    use pedsim_core::engine::StopCondition;
    use pedsim_runner::{Batch, Job};

    let agents = agents.max(side * side * 28 / 100);
    let env = EnvConfig::small(side, side, agents / 2).with_seed(555);
    let points: Vec<(&str, &str, String, ModelKind)> = [0.5, 1.0, 2.0, 4.0]
        .iter()
        .map(|&sigma| {
            let model = ModelKind::Lem(LemParams {
                sigma,
                ..LemParams::default()
            });
            ("LEM", "sigma", format!("{sigma}"), model)
        })
        .chain([0.005f32, 0.02, 0.1, 0.5].iter().map(|&rho| {
            let model = ModelKind::Aco(AcoParams {
                rho,
                ..AcoParams::default()
            });
            ("ACO", "rho", format!("{rho}"), model)
        }))
        .chain([0.5f32, 1.0, 2.0, 4.0].iter().map(|&beta| {
            let model = ModelKind::Aco(AcoParams {
                beta,
                ..AcoParams::default()
            });
            ("ACO", "beta", format!("{beta}"), model)
        }))
        .collect();

    let jobs: Vec<Job> = points
        .iter()
        .map(|(model_name, param, value, model)| {
            Job::gpu(
                format!("{model_name}/{param}/{value}"),
                SimConfig::new(env, *model),
                StopCondition::arrived_or_steps(steps),
            )
        })
        .collect();
    let report = Batch::auto().run(&jobs);

    let mut t = Table::new(vec!["model", "parameter", "value", "throughput"]);
    for (model_name, param, value, _) in &points {
        let label = format!("{model_name}/{param}/{value}");
        let tp = report
            .with_label(&label)
            .next()
            .and_then(|r| r.throughput)
            .expect("every sweep point tracked metrics");
        t.push_row(vec![
            (*model_name).to_string(),
            (*param).to_string(),
            value.clone(),
            tp.to_string(),
        ]);
    }
    t
}

/// Render the movement ablation.
///
/// The host wall-clock alone can mislead here: the CAS kernel launches one
/// thread per *agent* while the gather kernel covers every *cell*, and a
/// host core pays nothing extra for an uncontended CAS. The modelled-Fermi
/// column applies the §IV argument — atomics serialise on the device — via
/// the cycle model's atomic cost.
pub fn movement_table(a: &MovementAblation) -> Table {
    let model = CycleModel::default();
    let fermi = DeviceProps::gtx_560_ti_448();
    let (gp, ap) = &a.profiles;
    let mut t = Table::new(vec![
        "variant",
        "host_time_s",
        "atomic_ops",
        "modelled_fermi_us",
    ]);
    t.push_row(vec![
        "scatter-to-gather (paper)".to_string(),
        secs(a.gather_time),
        "0".to_string(),
        format!("{:.1}", model.seconds(gp, &fermi) * 1e6),
    ]);
    t.push_row(vec![
        "atomic CAS".to_string(),
        secs(a.atomic_time),
        a.atomic_ops.to_string(),
        format!("{:.1}", model.seconds(ap, &fermi) * 1e6),
    ]);
    t
}

/// Render the tiled ablation with modelled Fermi times.
pub fn tiled_table(a: &TiledAblation) -> Table {
    let model = CycleModel::default();
    let fermi = DeviceProps::gtx_560_ti_448();
    let mut t = Table::new(vec![
        "variant",
        "host_time_s",
        "global_loads",
        "modelled_fermi_ms",
    ]);
    let (tp, dp) = &a.profiles;
    t.push_row(vec![
        "tiled 18x18 (paper)".to_string(),
        secs(a.tiled_time),
        tp.global_loads.to_string(),
        f3(model.seconds(tp, &fermi) * 1e3),
    ]);
    t.push_row(vec![
        "direct global".to_string(),
        secs(a.direct_time),
        dp.global_loads.to_string(),
        f3(model.seconds(dp, &fermi) * 1e3),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn movement_ablation_counts_atomics() {
        let a = movement_variants(64, 400, 2);
        assert!(a.atomic_ops > 0, "CAS variant must use atomics");
        assert!(a.gather_time > Duration::ZERO);
        assert!(a.atomic_time > Duration::ZERO);
    }

    #[test]
    fn divergence_demo_separates_styles() {
        let (branchy, branchless) = divergence_demo(4096);
        assert!(branchy.divergent_branches > 0, "{branchy:?}");
        assert_eq!(branchless.divergent_branches, 0, "{branchless:?}");
        let t = divergence_table(&branchy, &branchless);
        assert_eq!(t.rows.len(), 2);
    }

    #[test]
    fn tiled_ablation_produces_profiles() {
        let a = tiled_variants(64, 400, 1);
        let (tp, dp) = &a.profiles;
        assert!(tp.global_loads > 0);
        assert!(dp.global_loads > 0);
        assert_eq!(tiled_table(&a).rows.len(), 2);
    }
}
