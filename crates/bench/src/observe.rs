//! Shared observability plumbing for the benchmark binaries: the
//! `--journal` / `--registry` flags, and the append path from a finished
//! [`BatchReport`] into the JSONL run journal and the append-only
//! results registry.
//!
//! Every timing bench appends one registry row per replica, stamped
//! with the world-configuration fingerprint, the commit, and the scale
//! preset — the provenance the `registry_query` regression gate keys
//! on. The journal is opt-in (`--journal <path>`) and captures the full
//! per-replica record, wall-clock tail included.

use std::io;
use std::path::PathBuf;

use pedsim_obs::journal::Journal;
use pedsim_obs::{log_summary, provenance, registry};
use pedsim_runner::BatchReport;

use crate::scale::{arg_value, Scale};

/// Default registry location, relative to the working directory.
pub const DEFAULT_REGISTRY: &str = "results/registry.csv";

/// Observability sinks selected on a bench command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sinks {
    /// JSONL journal path (`--journal <path>`; absent = no journal).
    pub journal: Option<PathBuf>,
    /// Registry CSV path (`--registry <path>`, default
    /// [`DEFAULT_REGISTRY`]; `--no-registry` disables).
    pub registry: Option<PathBuf>,
}

impl Sinks {
    /// Parse the observability flags from CLI args.
    pub fn from_args(args: &[String]) -> Self {
        let journal = arg_value(args, "--journal").map(PathBuf::from);
        let registry = if args.iter().any(|a| a == "--no-registry") {
            None
        } else {
            Some(PathBuf::from(
                arg_value(args, "--registry").unwrap_or_else(|| DEFAULT_REGISTRY.to_owned()),
            ))
        };
        Self { journal, registry }
    }
}

/// Append every replica of `report` to the selected sinks: one JSONL
/// record per replica to the journal, one provenance-stamped row per
/// replica to the registry. Either sink failing is an error — a bench
/// whose record never landed must not pass its gate.
pub fn emit(sinks: &Sinks, bench: &str, scale: Scale, report: &BatchReport) -> io::Result<()> {
    if let Some(path) = &sinks.journal {
        let mut journal = Journal::open(path)?;
        for result in &report.results {
            journal.write(&result.journal_record())?;
        }
        log_summary!(
            "journaled {} runs to {}",
            report.results.len(),
            path.display()
        );
    }
    if let Some(path) = &sinks.registry {
        let commit = provenance::commit();
        let rows: Vec<registry::Row> = report
            .results
            .iter()
            .map(|r| r.registry_row(bench, scale.label(), &commit))
            .collect();
        registry::append(path, &rows)?;
        log_summary!(
            "appended {} registry rows to {}",
            rows.len(),
            path.display()
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn sinks_parse_defaults_overrides_and_opt_outs() {
        let d = Sinks::from_args(&v(&[]));
        assert_eq!(d.journal, None);
        assert_eq!(d.registry, Some(PathBuf::from(DEFAULT_REGISTRY)));

        let s = Sinks::from_args(&v(&[
            "--journal",
            "/tmp/j.jsonl",
            "--registry",
            "/tmp/r.csv",
        ]));
        assert_eq!(s.journal, Some(PathBuf::from("/tmp/j.jsonl")));
        assert_eq!(s.registry, Some(PathBuf::from("/tmp/r.csv")));

        let off = Sinks::from_args(&v(&["--no-registry"]));
        assert_eq!(off.registry, None);
    }

    #[test]
    fn emit_writes_journal_lines_and_registry_rows() {
        use pedsim_runner::{Batch, Job};
        let dir = std::env::temp_dir().join("pedsim_bench_observe_test");
        let _ = std::fs::remove_dir_all(&dir);
        let sinks = Sinks {
            journal: Some(dir.join("run.jsonl")),
            registry: Some(dir.join("registry.csv")),
        };
        let env = pedsim_grid::EnvConfig::small(16, 16, 4).with_seed(2);
        let cfg = pedsim_core::params::SimConfig::new(env, pedsim_core::params::ModelKind::lem());
        let report = Batch::new(1).run(&[Job::gpu(
            "t",
            cfg,
            pedsim_core::engine::StopCondition::Steps(10),
        )]);
        emit(&sinks, "observe_test", Scale::Smoke, &report).expect("emit");
        let journal = std::fs::read_to_string(dir.join("run.jsonl")).unwrap();
        assert_eq!(journal.lines().count(), 1);
        assert!(journal.contains("\"schema\": \"pedsim.run.v1\""));
        let rows = registry::load(&dir.join("registry.csv")).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].bench, "observe_test");
        assert_eq!(rows[0].scale, "smoke");
        assert_eq!(rows[0].config.len(), 16);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
