//! Figure 5: execution time and speedup (§V).
//!
//! * **5a** — ACO vs LEM wall time on the virtual GPU across populations.
//!   Paper: "The execution time of the ACO and LEM are found to be almost
//!   same. There is a marginal increase of 11 % in the execution time of
//!   ACO."
//! * **5b** — ACO wall time, single-threaded CPU engine vs parallel
//!   virtual GPU. Paper: 837.5 s vs 46.66 s at 2,560 agents (25,000 steps).
//! * **5c** — the speedup ratio per population. Paper: 18× at 2,560
//!   declining to ~11× at 102,400 (448 CUDA cores); here the ceiling is
//!   the host core count, so the *shape to check* is "parallel wins at
//!   every population" and the ACO/LEM overhead ratio, not the absolute
//!   factor.

use std::time::Duration;

use pedsim_core::prelude::*;
use pedsim_runner::{Batch, Job};
use simt::Device;

use crate::report::{f3, secs, Table};
use crate::scale::Scale;

/// Timing-protocol parameters.
#[derive(Debug, Clone)]
pub struct Fig5Config {
    /// Environment width/height (square).
    pub side: usize,
    /// Total-population series.
    pub populations: Vec<usize>,
    /// Steps per timed run.
    pub steps: u64,
    /// Seed.
    pub seed: u64,
}

impl Fig5Config {
    /// Protocol for `scale`.
    pub fn for_scale(scale: Scale) -> Self {
        match scale {
            // The paper's populations: 2,560 → 102,400 in 2,560 steps; we
            // time the five spot sizes the text quotes. 25,000 steps.
            Scale::Paper => Self {
                side: 480,
                populations: vec![2_560, 10_240, 25_600, 51_200, 102_400],
                steps: 25_000,
                seed: 2014,
            },
            Scale::Default => Self {
                side: 480,
                populations: vec![2_560, 10_240, 25_600, 51_200, 102_400],
                steps: 60,
                seed: 2014,
            },
            Scale::Smoke => Self {
                side: 96,
                populations: vec![512, 2_048],
                steps: 10,
                seed: 2014,
            },
        }
    }
}

/// One row of the Figure-5 series.
#[derive(Debug, Clone, Copy)]
pub struct Fig5Row {
    /// Total agents.
    pub agents: usize,
    /// LEM on the parallel virtual GPU.
    pub lem_gpu: Duration,
    /// ACO on the parallel virtual GPU.
    pub aco_gpu: Duration,
    /// ACO on the single-threaded CPU engine.
    pub aco_cpu: Duration,
}

impl Fig5Row {
    /// Fig. 5c's speedup: CPU time / GPU time.
    pub fn speedup(&self) -> f64 {
        self.aco_cpu.as_secs_f64() / self.aco_gpu.as_secs_f64().max(1e-12)
    }

    /// Fig. 5a's overhead: ACO time / LEM time (paper: ≈ 1.11).
    pub fn aco_over_lem(&self) -> f64 {
        self.aco_gpu.as_secs_f64() / self.lem_gpu.as_secs_f64().max(1e-12)
    }
}

/// Run the full Figure-5 timing protocol through the batch runner.
///
/// Timing runs disable metrics and conflict checking (the paper measures
/// "time spent solely for simulation") and stop on the fixed step budget
/// — early termination would change the measured workload. The batch uses
/// a **single** pool worker so replicas are timed one at a time with no
/// cross-replica contention; the GPU jobs keep the parallel device (the
/// thing being measured), the CPU job is the single-threaded reference.
/// `RunResult::wall` covers the simulation loop alone, engine
/// construction excluded, exactly as the hand-rolled timers did.
pub fn run(cfg: &Fig5Config) -> Vec<Fig5Row> {
    let device = Device::parallel();
    let timer = Batch::new(1);
    cfg.populations
        .iter()
        .map(|&agents| {
            let env = EnvConfig::small(cfg.side, cfg.side, agents / 2).with_seed(cfg.seed);
            let scfg = |model: ModelKind| {
                SimConfig::new(env, model)
                    .with_checked(false)
                    .with_metrics(false)
            };
            let jobs = [
                Job::on_device(
                    "lem_gpu",
                    scfg(ModelKind::lem()),
                    device.clone(),
                    StopCondition::Steps(cfg.steps),
                ),
                Job::on_device(
                    "aco_gpu",
                    scfg(ModelKind::aco()),
                    device.clone(),
                    StopCondition::Steps(cfg.steps),
                ),
                Job::cpu(
                    "aco_cpu",
                    scfg(ModelKind::aco()),
                    StopCondition::Steps(cfg.steps),
                ),
            ];
            let report = timer.run(&jobs);
            let wall = |label: &str| {
                report
                    .with_label(label)
                    .next()
                    .expect("one result per label")
                    .wall
            };
            Fig5Row {
                agents,
                lem_gpu: wall("lem_gpu"),
                aco_gpu: wall("aco_gpu"),
                aco_cpu: wall("aco_cpu"),
            }
        })
        .collect()
}

/// Render Fig. 5a (exec time ACO vs LEM on GPU).
pub fn table_5a(rows: &[Fig5Row]) -> Table {
    let mut t = Table::new(vec!["agents", "lem_gpu_s", "aco_gpu_s", "aco_over_lem"]);
    for r in rows {
        t.push_row(vec![
            r.agents.to_string(),
            secs(r.lem_gpu),
            secs(r.aco_gpu),
            f3(r.aco_over_lem()),
        ]);
    }
    t
}

/// Render Fig. 5b (ACO exec time CPU vs GPU).
pub fn table_5b(rows: &[Fig5Row]) -> Table {
    let mut t = Table::new(vec!["agents", "aco_cpu_s", "aco_gpu_s"]);
    for r in rows {
        t.push_row(vec![r.agents.to_string(), secs(r.aco_cpu), secs(r.aco_gpu)]);
    }
    t
}

/// Render Fig. 5c (speedup).
pub fn table_5c(rows: &[Fig5Row]) -> Table {
    let mut t = Table::new(vec!["agents", "speedup_cpu_over_gpu"]);
    for r in rows {
        t.push_row(vec![r.agents.to_string(), f3(r.speedup())]);
    }
    t
}

/// Fig. 5b/5c **modelled on the paper's hardware**: the wall-clock
/// comparison above is bounded by the host's core count (a single-core
/// host cannot show a parallel win at all), so this variant profiles the
/// kernels' SIMT event counters and converts them into modelled times on
/// the paper's own devices — GTX 560 Ti warp-wide execution vs i7-930
/// serial execution (`simt::CycleModel`). This is the substitution that
/// keeps the figure's "who wins" meaningful on any host; EXPERIMENTS.md
/// reports both.
pub fn modeled_speedup(cfg: &Fig5Config, profile_steps: u64) -> Table {
    use simt::exec::ExecPolicy;
    use simt::profile::{CycleModel, KernelProfile};
    use simt::DeviceProps;

    let model = CycleModel::default();
    let gpu_props = DeviceProps::gtx_560_ti_448();
    let cpu_props = DeviceProps::i7_930();
    let mut t = Table::new(vec![
        "agents",
        "modelled_gpu_s",
        "modelled_cpu_s",
        "modelled_speedup",
    ]);
    for &agents in &cfg.populations {
        let env = EnvConfig::small(cfg.side, cfg.side, agents / 2).with_seed(cfg.seed);
        let device = Device::builder()
            .policy(ExecPolicy::Sequential)
            .profiling(true)
            .build();
        let mut engine = GpuEngine::new(
            SimConfig::new(env, ModelKind::aco()).with_metrics(false),
            device,
        );
        engine.run(profile_steps);
        let total: KernelProfile = engine
            .report()
            .profile
            .iter()
            .fold(KernelProfile::default(), |acc, p| acc.merged(*p));
        let scale = cfg.steps as f64 / profile_steps as f64;
        let gpu_s = model.seconds(&total, &gpu_props) * scale;
        let cpu_s = model.serial_seconds(&total, &cpu_props) * scale;
        t.push_row(vec![
            agents.to_string(),
            f3(gpu_s),
            f3(cpu_s),
            f3(cpu_s / gpu_s.max(1e-12)),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_protocol_produces_rows() {
        let cfg = Fig5Config::for_scale(Scale::Smoke);
        let rows = run(&cfg);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.lem_gpu > Duration::ZERO);
            assert!(r.aco_gpu > Duration::ZERO);
            assert!(r.aco_cpu > Duration::ZERO);
            assert!(r.speedup() > 0.0);
        }
        let t = table_5a(&rows);
        assert_eq!(t.rows.len(), 2);
        assert!(table_5c(&rows).markdown().contains("speedup"));
    }
}
