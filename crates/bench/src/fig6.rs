//! Figure 6: throughput (§VI).
//!
//! * **6a** — LEM vs ACO throughput on the GPU across population
//!   densities, repeats averaged. Paper shape: equal for the first ~9
//!   densities; LEM collapses around density 10 (25,600 agents: 17,417 vs
//!   25,600); ACO peaks at density 11; +39.6 % overall; both ≈ 0 past
//!   51,200 agents (gridlock).
//! * **6b** — ACO throughput CPU vs GPU plus the binomial-GLM analysis:
//!   crossing probability ~ population + CPU/GPU indicator, first and last
//!   quarter of scenarios suppressed (the paper suppresses 10 of 40),
//!   indicator tested for significance (paper p = 0.6145).
//!
//! Scale note: `Default` uses a 120×120 grid with the paper's *fill
//! fractions* (density i ⇒ the same agents-per-cell as 2,560·i on 480²)
//! and a steps budget proportional to the grid height.
//!
//! Execution: every (density, model, repeat) replica is an independent
//! [`pedsim_runner::Job`] run concurrently on a [`pedsim_runner::Batch`]
//! pool with `AllArrived` early termination — at low density a replica
//! stops within a few hundred steps instead of burning the full budget,
//! and throughput is unchanged by the early exit (it is sticky and
//! capped, so it cannot grow after everyone has arrived).

use pedsim_core::prelude::*;
use pedsim_runner::{Batch, Job};
use pedsim_stats::BinomialGlm;

use crate::report::{f3, Table};
use crate::scale::Scale;

/// Throughput-protocol parameters.
#[derive(Debug, Clone)]
pub struct Fig6Config {
    /// Environment side (square grid).
    pub side: usize,
    /// Total-population series (density 1..).
    pub densities: Vec<usize>,
    /// Steps per run.
    pub steps: u64,
    /// Repeats averaged per point (paper: 10).
    pub repeats: u64,
    /// Base seed; repeat `k` of density `i` uses `seed + i*1000 + k`.
    pub seed: u64,
}

impl Fig6Config {
    /// Protocol for `scale`, for Fig. 6a (20 densities).
    pub fn for_scale(scale: Scale) -> Self {
        match scale {
            Scale::Paper => Self {
                side: 480,
                densities: (1..=20).map(|i| 2_560 * i).collect(),
                steps: 25_000,
                repeats: 10,
                seed: 640,
            },
            // 120² grid. Density placement is *re-calibrated*, not just
            // rescaled: gridlock needs jams that span the corridor, so a
            // 4x shorter corridor jams at a higher fill than the paper's
            // 480-row one (LEM collapses at ~11 % fill on 480², at ~26 %
            // on 120² — measured by the probe in EXPERIMENTS.md). The
            // sweep therefore spans 2.2 %…44 % fill so the paper's shape
            // (equal → LEM collapse mid-sweep → joint gridlock) lands in
            // frame, with the collapse around density 12 of 20.
            Scale::Default => Self {
                side: 120,
                densities: (1..=20).map(|i| 320 * i).collect(),
                steps: 2_500,
                repeats: 2,
                seed: 640,
            },
            Scale::Smoke => Self {
                side: 48,
                densities: vec![64, 256, 512],
                steps: 300,
                repeats: 2,
                seed: 640,
            },
        }
    }
}

/// The jobs of one model/engine series: every density × repeat replica,
/// seeded exactly as the legacy serial loop was (`seed_base + density ×
/// 1000 + repeat`), labelled `d<density>/<suffix>` for aggregation.
fn series_jobs(
    cfg: &Fig6Config,
    model: ModelKind,
    use_cpu: bool,
    seed_base: u64,
    suffix: &str,
) -> Vec<Job> {
    let mut jobs = Vec::with_capacity(cfg.densities.len() * cfg.repeats as usize);
    for (i, &agents) in cfg.densities.iter().enumerate() {
        for k in 0..cfg.repeats {
            let seed = seed_base + (i + 1) as u64 * 1000 + k;
            let env = EnvConfig::small(cfg.side, cfg.side, agents / 2).with_seed(seed);
            let scfg = SimConfig::new(env, model).with_checked(false);
            let label = format!("d{:02}/{suffix}", i + 1);
            let stop = StopCondition::arrived_or_steps(cfg.steps);
            jobs.push(if use_cpu {
                Job::cpu(label, scfg, stop)
            } else {
                Job::gpu(label, scfg, stop)
            });
        }
    }
    jobs
}

/// One density point of Fig. 6a.
#[derive(Debug, Clone, Copy)]
pub struct Fig6aRow {
    /// 1-based density index (the paper's "simulation number").
    pub density: usize,
    /// Total agents.
    pub agents: usize,
    /// Mean LEM throughput (GPU engine).
    pub lem: f64,
    /// Mean ACO throughput (GPU engine).
    pub aco: f64,
}

/// Run Fig. 6a: LEM vs ACO on the virtual GPU — one batch over every
/// (density, model, repeat) replica, each exiting early once all agents
/// have arrived.
pub fn run_6a(cfg: &Fig6Config) -> Vec<Fig6aRow> {
    let mut jobs = series_jobs(cfg, ModelKind::lem(), false, cfg.seed, "LEM");
    jobs.extend(series_jobs(cfg, ModelKind::aco(), false, cfg.seed, "ACO"));
    let report = Batch::auto().run(&jobs);
    cfg.densities
        .iter()
        .enumerate()
        .map(|(i, &agents)| Fig6aRow {
            density: i + 1,
            agents,
            lem: report.mean_throughput(&format!("d{:02}/LEM", i + 1)),
            aco: report.mean_throughput(&format!("d{:02}/ACO", i + 1)),
        })
        .collect()
}

/// Overall ACO gain over LEM across all densities (paper: +39.6 %).
pub fn overall_aco_gain(rows: &[Fig6aRow]) -> f64 {
    let lem: f64 = rows.iter().map(|r| r.lem).sum();
    let aco: f64 = rows.iter().map(|r| r.aco).sum();
    if lem == 0.0 {
        f64::INFINITY
    } else {
        aco / lem - 1.0
    }
}

/// Render Fig. 6a.
pub fn table_6a(rows: &[Fig6aRow]) -> Table {
    let mut t = Table::new(vec![
        "density",
        "agents",
        "lem_throughput",
        "aco_throughput",
    ]);
    for r in rows {
        t.push_row(vec![
            r.density.to_string(),
            r.agents.to_string(),
            f3(r.lem),
            f3(r.aco),
        ]);
    }
    t
}

/// One density point of Fig. 6b.
#[derive(Debug, Clone, Copy)]
pub struct Fig6bRow {
    /// 1-based density index.
    pub density: usize,
    /// Total agents.
    pub agents: usize,
    /// Mean ACO throughput, CPU engine.
    pub cpu: f64,
    /// Mean ACO throughput, GPU engine.
    pub gpu: f64,
}

/// The Fig. 6b analysis output.
#[derive(Debug, Clone)]
pub struct Fig6bAnalysis {
    /// Per-density throughput means.
    pub rows: Vec<Fig6bRow>,
    /// GLM coefficient of the GPU indicator.
    pub gpu_coef: f64,
    /// Wald statistic of the indicator.
    pub gpu_z: f64,
    /// Two-sided p-value of the indicator (paper: 0.6145).
    pub gpu_p: f64,
    /// Scenarios used in the GLM after suppressing the saturated ends.
    pub glm_scenarios: usize,
}

/// Run Fig. 6b: ACO CPU vs GPU + GLM.
///
/// Per the paper, the CPU and GPU runs of a repeat use *different seeds*
/// (`seed` offsets) so the comparison is statistical, not the trivial
/// bit-equality that `validate::engines_agree` already proves.
pub fn run_6b(cfg: &Fig6Config) -> Fig6bAnalysis {
    let mut jobs = series_jobs(cfg, ModelKind::aco(), true, cfg.seed, "cpu");
    jobs.extend(series_jobs(
        cfg,
        ModelKind::aco(),
        false,
        cfg.seed + 500_000,
        "gpu",
    ));
    let report = Batch::auto().run(&jobs);
    let rows: Vec<Fig6bRow> = cfg
        .densities
        .iter()
        .enumerate()
        .map(|(i, &agents)| Fig6bRow {
            density: i + 1,
            agents,
            cpu: report.mean_throughput(&format!("d{:02}/cpu", i + 1)),
            gpu: report.mean_throughput(&format!("d{:02}/gpu", i + 1)),
        })
        .collect();

    // Suppress the first and last quarter of scenarios (the paper drops 10
    // of 40 at each end): in the kept band crossing is neither certain nor
    // impossible, so the GLM is well-conditioned.
    let n = rows.len();
    let skip = n / 4;
    let kept: Vec<Fig6bRow> = rows[skip..n - skip].to_vec();

    let mut glm = BinomialGlm::new();
    for r in &kept {
        // Covariate: population in thousands (keeps the IRLS well-scaled).
        let x = r.agents as f64 / 1000.0;
        glm.push(&[x, 0.0], r.cpu.round() as u64, r.agents as u64);
        glm.push(&[x, 1.0], r.gpu.round() as u64, r.agents as u64);
    }
    let fit = glm.fit().expect("GLM fit");
    Fig6bAnalysis {
        rows,
        gpu_coef: fit.coef[2],
        gpu_z: fit.z[2],
        gpu_p: fit.p[2],
        glm_scenarios: kept.len(),
    }
}

/// Render Fig. 6b's series.
pub fn table_6b(analysis: &Fig6bAnalysis) -> Table {
    let mut t = Table::new(vec![
        "density",
        "agents",
        "cpu_throughput",
        "gpu_throughput",
    ]);
    for r in &analysis.rows {
        t.push_row(vec![
            r.density.to_string(),
            r.agents.to_string(),
            f3(r.cpu),
            f3(r.gpu),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_6a_produces_shape_inputs() {
        let cfg = Fig6Config::for_scale(Scale::Smoke);
        let rows = run_6a(&cfg);
        assert_eq!(rows.len(), 3);
        // Low density: both models get everyone (or nearly everyone) across.
        let r0 = rows[0];
        assert!(r0.lem > 0.0 && r0.aco > 0.0, "{r0:?}");
        let gain = overall_aco_gain(&rows);
        assert!(gain.is_finite());
        assert_eq!(table_6a(&rows).rows.len(), 3);
    }

    #[test]
    fn smoke_6b_fits_glm() {
        let mut cfg = Fig6Config::for_scale(Scale::Smoke);
        cfg.densities = vec![64, 128, 256, 384, 512, 640, 768, 896];
        cfg.steps = 150;
        let analysis = run_6b(&cfg);
        assert_eq!(analysis.rows.len(), 8);
        assert_eq!(analysis.glm_scenarios, 4);
        assert!(analysis.gpu_p.is_finite());
        assert!((0.0..=1.0).contains(&analysis.gpu_p));
    }
}
