//! Protocol scales.
//!
//! The paper's full protocol (480×480 cells, 25,000 steps, 10 repeats,
//! populations to 102,400) is hours-to-days of compute on a host-parallel
//! substrate. Every harness therefore supports three scales:
//!
//! * `Paper` — the full protocol, parameter-for-parameter;
//! * `Default` — a shape-preserving reduction (same *fill fractions* and
//!   steps-per-row budget on a smaller grid, fewer repeats) that runs in
//!   minutes; EXPERIMENTS.md records which scale produced each number;
//! * `Smoke` — seconds; CI/sanity only.

/// Experiment scale selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// The paper's full protocol.
    Paper,
    /// Shape-preserving reduced protocol (the default).
    #[default]
    Default,
    /// Tiny sanity scale.
    Smoke,
}

/// Conflicting scale flags on one command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScaleConflict;

impl std::fmt::Display for ScaleConflict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "--paper and --smoke are mutually exclusive; pass at most one scale flag"
        )
    }
}

impl std::error::Error for ScaleConflict {}

impl Scale {
    /// Parse from CLI args (`--paper`, `--smoke`; default otherwise).
    /// Passing both flags is an error — silently preferring `--paper`
    /// used to launch an hours-long run when the caller asked for a
    /// seconds-long one.
    pub fn from_args(args: &[String]) -> Result<Self, ScaleConflict> {
        let paper = args.iter().any(|a| a == "--paper");
        let smoke = args.iter().any(|a| a == "--smoke");
        match (paper, smoke) {
            (true, true) => Err(ScaleConflict),
            (true, false) => Ok(Scale::Paper),
            (false, true) => Ok(Scale::Smoke),
            (false, false) => Ok(Scale::Default),
        }
    }

    /// [`Scale::from_args`] for binaries: exits with a usage message on
    /// conflicting flags instead of panicking.
    pub fn from_args_or_exit(args: &[String]) -> Self {
        Self::from_args(args).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        })
    }

    /// Short label for file names and table captions.
    pub fn label(self) -> &'static str {
        match self {
            Scale::Paper => "paper",
            Scale::Default => "default",
            Scale::Smoke => "smoke",
        }
    }
}

/// Parse `--flag value` style options.
pub fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_scales() {
        assert_eq!(Scale::from_args(&v(&["--paper"])), Ok(Scale::Paper));
        assert_eq!(Scale::from_args(&v(&["--smoke"])), Ok(Scale::Smoke));
        assert_eq!(Scale::from_args(&v(&["--part", "a"])), Ok(Scale::Default));
    }

    #[test]
    fn conflicting_scale_flags_are_rejected() {
        // Both orders: the old code silently picked --paper.
        let err = Scale::from_args(&v(&["--paper", "--smoke"])).unwrap_err();
        assert!(err.to_string().contains("mutually exclusive"));
        assert!(Scale::from_args(&v(&["--smoke", "--x", "--paper"])).is_err());
    }

    #[test]
    fn parses_values() {
        let args = v(&["--part", "b", "--paper"]);
        assert_eq!(arg_value(&args, "--part").as_deref(), Some("b"));
        assert_eq!(arg_value(&args, "--missing"), None);
    }
}
