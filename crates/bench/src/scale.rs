//! Protocol scales.
//!
//! The paper's full protocol (480×480 cells, 25,000 steps, 10 repeats,
//! populations to 102,400) is hours-to-days of compute on a host-parallel
//! substrate. Every harness therefore supports three scales:
//!
//! * `Paper` — the full protocol, parameter-for-parameter;
//! * `Default` — a shape-preserving reduction (same *fill fractions* and
//!   steps-per-row budget on a smaller grid, fewer repeats) that runs in
//!   minutes; EXPERIMENTS.md records which scale produced each number;
//! * `Smoke` — seconds; CI/sanity only.

/// Experiment scale selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scale {
    /// The paper's full protocol.
    Paper,
    /// Shape-preserving reduced protocol (the default).
    #[default]
    Default,
    /// Tiny sanity scale.
    Smoke,
}

impl Scale {
    /// Parse from CLI args (`--paper`, `--smoke`; default otherwise).
    pub fn from_args(args: &[String]) -> Self {
        if args.iter().any(|a| a == "--paper") {
            Scale::Paper
        } else if args.iter().any(|a| a == "--smoke") {
            Scale::Smoke
        } else {
            Scale::Default
        }
    }

    /// Short label for file names and table captions.
    pub fn label(self) -> &'static str {
        match self {
            Scale::Paper => "paper",
            Scale::Default => "default",
            Scale::Smoke => "smoke",
        }
    }
}

/// Parse `--flag value` style options.
pub fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_scales() {
        assert_eq!(Scale::from_args(&v(&["--paper"])), Scale::Paper);
        assert_eq!(Scale::from_args(&v(&["--smoke"])), Scale::Smoke);
        assert_eq!(Scale::from_args(&v(&["--part", "a"])), Scale::Default);
    }

    #[test]
    fn parses_values() {
        let args = v(&["--part", "b", "--paper"]);
        assert_eq!(arg_value(&args, "--part").as_deref(), Some("b"));
        assert_eq!(arg_value(&args, "--missing"), None);
    }
}
