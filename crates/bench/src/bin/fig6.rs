//! Regenerate Figure 6 (throughput, §VI).
//!
//! ```text
//! cargo run -p pedsim-bench --release --bin fig6 -- [--part a|b|all] [--paper|--smoke]
//! ```
//!
//! Part a: LEM vs ACO throughput across densities (paper: ACO +39.6 %
//! overall, LEM collapse at density 10, gridlock past density 20).
//! Part b: ACO throughput CPU vs GPU plus the binomial-GLM test on the
//! CPU/GPU indicator (paper: p = 0.6145, not significant).

use pedsim_bench::scale::{arg_value, Scale};
use pedsim_bench::{fig6, Table};
use pedsim_obs::log_summary;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args_or_exit(&args);
    let part = arg_value(&args, "--part").unwrap_or_else(|| "all".into());
    let cfg = fig6::Fig6Config::for_scale(scale);
    let base = std::path::Path::new(".");

    let emit = |name: &str, title: &str, table: &Table| {
        println!("\n## {title} ({} scale)\n", scale.label());
        print!("{}", table.markdown());
        match table.save_csv(base, name) {
            Ok(p) => log_summary!("wrote {}", p.display()),
            Err(e) => eprintln!("could not write {name}.csv: {e}"),
        }
    };

    if part == "a" || part == "all" {
        log_summary!(
            "fig6a [{}]: {}x{}, {} steps, {} repeats, {} densities…",
            scale.label(),
            cfg.side,
            cfg.side,
            cfg.steps,
            cfg.repeats,
            cfg.densities.len()
        );
        let rows = fig6::run_6a(&cfg);
        emit(
            &format!("fig6a_{}", scale.label()),
            "Figure 6a — throughput, LEM vs ACO (virtual GPU)",
            &fig6::table_6a(&rows),
        );
        let gain = fig6::overall_aco_gain(&rows);
        println!(
            "\noverall ACO throughput gain over LEM: {:+.1}% (paper: +39.6%)",
            gain * 100.0
        );
        if let Some(collapse) = rows.iter().find(|r| r.aco > 1.2 * r.lem.max(1.0)) {
            println!(
                "first density where ACO clearly beats LEM: {} ({} agents)",
                collapse.density, collapse.agents
            );
        }
    }

    if part == "b" || part == "all" {
        log_summary!(
            "fig6b [{}]: CPU vs GPU ACO sweep ({} densities x {} repeats, both engines)…",
            scale.label(),
            cfg.densities.len(),
            cfg.repeats
        );
        let analysis = fig6::run_6b(&cfg);
        emit(
            &format!("fig6b_{}", scale.label()),
            "Figure 6b — ACO throughput, CPU vs virtual GPU",
            &fig6::table_6b(&analysis),
        );
        println!(
            "\nbinomial GLM (crossed/agents ~ population + is_gpu), {} scenarios kept:",
            analysis.glm_scenarios
        );
        println!(
            "  is_gpu coefficient = {:+.4}, z = {:+.3}, two-sided p = {:.4} (paper: p = 0.6145)",
            analysis.gpu_coef, analysis.gpu_z, analysis.gpu_p
        );
        println!(
            "  conclusion: {}",
            if analysis.gpu_p > 0.05 {
                "no significant CPU/GPU difference — matches the paper"
            } else {
                "significant difference — does NOT match the paper (check scale/seeds)"
            }
        );
    }
}
