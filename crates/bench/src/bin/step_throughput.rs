//! Step throughput of the unified engine pipeline: per-stage wall time,
//! steps/second, and CPU-vs-GPU ratios on closed and open registry
//! worlds.
//!
//! ```text
//! cargo run -p pedsim-bench --release --bin step_throughput -- \
//!     [--paper|--smoke] [--workers N] [--journal PATH] \
//!     [--registry PATH | --no-registry]
//! ```
//!
//! Writes `results/step_throughput_<scale>.{csv,json}` plus the repo-root
//! `BENCH_step_throughput.json` perf-trajectory record, appends one
//! provenance-stamped row per replica to the results registry (and,
//! with `--journal`, one JSONL record per replica), and prints a
//! Markdown table. Exits non-zero when the smoke-scale measurement does
//! not cover both engines and every pipeline stage. Progress chatter
//! honors `PEDSIM_LOG` (off/summary/verbose).

use pedsim_bench::observe::{self, Sinks};
use pedsim_bench::report;
use pedsim_bench::scale::{arg_value, Scale};
use pedsim_bench::step_throughput as st;
use pedsim_obs::log_summary;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args_or_exit(&args);
    // Default to one worker: replicas racing for cores would pollute the
    // per-stage wall clocks this harness exists to record.
    let workers = arg_value(&args, "--workers")
        .and_then(|w| w.parse().ok())
        .unwrap_or(1);
    let sinks = Sinks::from_args(&args);
    let cfg = st::StConfig::for_scale(scale);
    let base = std::path::Path::new(".");

    log_summary!(
        "step_throughput [{}]: {side}x{side} closed+open corridors, both engines, \
         {} steps x {} repeats, on {workers} workers…",
        scale.label(),
        cfg.steps,
        cfg.repeats,
        side = cfg.side,
    );

    let t0 = std::time::Instant::now();
    let batch = st::run_report(&cfg, workers);
    let elapsed = t0.elapsed();
    let rows = st::aggregate(&cfg, &batch);

    let sinks_ok = match observe::emit(&sinks, "step_throughput", scale, &batch) {
        Ok(()) => true,
        Err(e) => {
            eprintln!("could not record observability sinks: {e}");
            false
        }
    };

    println!("\n## Step throughput ({} scale)\n", scale.label());
    let table = st::table(&rows);
    print!("{}", table.markdown());
    println!();
    for ratio in st::ratios(&rows) {
        println!(
            "{}: CPU spends {:.2}x the GPU pipeline's wall time per step",
            ratio.world, ratio.total
        );
    }

    let name = format!("step_throughput_{}", scale.label());
    match table.save_csv(base, &name) {
        Ok(p) => log_summary!("wrote {}", p.display()),
        Err(e) => eprintln!("could not write {name}.csv: {e}"),
    }
    let json = st::to_json(scale, &cfg, &rows);
    match report::save_json(base, &name, &json) {
        Ok(p) => log_summary!("wrote {}", p.display()),
        Err(e) => eprintln!("could not write {name}.json: {e}"),
    }
    let bench_path = base.join("BENCH_step_throughput.json");
    let record_written = match std::fs::write(&bench_path, &json) {
        Ok(()) => {
            log_summary!("wrote {}", bench_path.display());
            true
        }
        Err(e) => {
            eprintln!("could not write {}: {e}", bench_path.display());
            false
        }
    };
    log_summary!("wall: {:.2}s on {workers} workers", elapsed.as_secs_f64());

    let ok = st::covers_both_engines_and_all_stages(&rows);
    println!(
        "\nmeasurement {}",
        if ok {
            "covers both engines and every pipeline stage"
        } else {
            "is INCOMPLETE: an engine or stage reported no time"
        },
    );
    // The coverage check is the CI acceptance gate at smoke scale; larger
    // scales only report. A failed record or sink write must also fail
    // the gate — otherwise CI would validate whatever stale record is
    // lying around.
    if (!ok || !record_written || !sinks_ok) && scale == Scale::Smoke {
        std::process::exit(1);
    }
}
