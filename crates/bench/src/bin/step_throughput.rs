//! Step throughput of the unified engine pipeline: per-stage wall time,
//! steps/second, and CPU-vs-GPU ratios on closed and open registry
//! worlds.
//!
//! ```text
//! cargo run -p pedsim-bench --release --bin step_throughput -- \
//!     [--paper|--smoke] [--workers N]
//! ```
//!
//! Writes `results/step_throughput_<scale>.{csv,json}` plus the repo-root
//! `BENCH_step_throughput.json` perf-trajectory record, and prints a
//! Markdown table. Exits non-zero when the smoke-scale measurement does
//! not cover both engines and every pipeline stage.

use pedsim_bench::report;
use pedsim_bench::scale::{arg_value, Scale};
use pedsim_bench::step_throughput as st;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args_or_exit(&args);
    // Default to one worker: replicas racing for cores would pollute the
    // per-stage wall clocks this harness exists to record.
    let workers = arg_value(&args, "--workers")
        .and_then(|w| w.parse().ok())
        .unwrap_or(1);
    let cfg = st::StConfig::for_scale(scale);
    let base = std::path::Path::new(".");

    eprintln!(
        "step_throughput [{}]: {side}x{side} closed+open corridors, both engines, \
         {} steps x {} repeats, on {workers} workers…",
        scale.label(),
        cfg.steps,
        cfg.repeats,
        side = cfg.side,
    );

    let t0 = std::time::Instant::now();
    let rows = st::run(&cfg, workers);
    let elapsed = t0.elapsed();

    println!("\n## Step throughput ({} scale)\n", scale.label());
    let table = st::table(&rows);
    print!("{}", table.markdown());
    println!();
    for ratio in st::ratios(&rows) {
        println!(
            "{}: CPU spends {:.2}x the GPU pipeline's wall time per step",
            ratio.world, ratio.total
        );
    }

    let name = format!("step_throughput_{}", scale.label());
    match table.save_csv(base, &name) {
        Ok(p) => eprintln!("wrote {}", p.display()),
        Err(e) => eprintln!("could not write {name}.csv: {e}"),
    }
    let json = st::to_json(scale, &cfg, &rows);
    match report::save_json(base, &name, &json) {
        Ok(p) => eprintln!("wrote {}", p.display()),
        Err(e) => eprintln!("could not write {name}.json: {e}"),
    }
    let bench_path = base.join("BENCH_step_throughput.json");
    let record_written = match std::fs::write(&bench_path, &json) {
        Ok(()) => {
            eprintln!("wrote {}", bench_path.display());
            true
        }
        Err(e) => {
            eprintln!("could not write {}: {e}", bench_path.display());
            false
        }
    };
    eprintln!("wall: {:.2}s on {workers} workers", elapsed.as_secs_f64());

    let ok = st::covers_both_engines_and_all_stages(&rows);
    println!(
        "\nmeasurement {}",
        if ok {
            "covers both engines and every pipeline stage"
        } else {
            "is INCOMPLETE: an engine or stage reported no time"
        },
    );
    // The coverage check is the CI acceptance gate at smoke scale; larger
    // scales only report. A failed record write must also fail the gate —
    // otherwise CI would validate whatever stale record is lying around.
    if (!ok || !record_written) && scale == Scale::Smoke {
        std::process::exit(1);
    }
}
