//! Step throughput of the unified engine pipeline: per-stage wall time,
//! steps/second, and CPU-vs-GPU ratios on closed and open registry
//! worlds, plus the backend scale ladder.
//!
//! ```text
//! cargo run -p pedsim-bench --release --bin step_throughput -- \
//!     [--paper|--smoke] [--workers N] [--journal PATH] \
//!     [--registry PATH | --no-registry] \
//!     [--backend NAME [--threads N]] [--ablation atomic]
//! ```
//!
//! Default mode writes `results/step_throughput_<scale>.{csv,json}` plus
//! the repo-root `BENCH_step_throughput.json` perf-trajectory record
//! (including the backend scale ladder), appends one provenance-stamped
//! row per replica to the results registry (and, with `--journal`, one
//! JSONL record per replica), and prints Markdown tables. Exits non-zero
//! when the smoke-scale measurement does not cover both engines and
//! every pipeline stage. Progress chatter honors `PEDSIM_LOG`.
//!
//! `--backend NAME [--threads N]` runs only the ladder cell(s) for that
//! backend configuration (threads defaults to 1) — the CI thread-matrix
//! entry point. Registry rows are appended; the engine-pair record and
//! its coverage gate are skipped.
//!
//! `--ablation atomic` instead measures the rejected atomic-CAS movement
//! kernel against the production scatter-to-gather kernel at this scale
//! and exits. The atomic variant's claim order depends on scheduling, so
//! its numbers are **non-deterministic** and never enter the registry.

use pedsim_bench::observe::{self, Sinks};
use pedsim_bench::report;
use pedsim_bench::scale::{arg_value, Scale};
use pedsim_bench::step_throughput as st;
use pedsim_bench::{ablation, Table};
use pedsim_obs::log_summary;
use pedsim_runner::Batch;

fn run_atomic_ablation(scale: Scale, cfg: &st::StConfig) {
    let reps = match scale {
        Scale::Paper => 20,
        Scale::Default => 10,
        Scale::Smoke => 3,
    };
    let agents = cfg.closed_per_side * 2;
    log_summary!(
        "movement ablation [{}]: gather vs atomic-CAS, {side}x{side}, {agents} agents, \
         {reps} reps…",
        scale.label(),
        side = cfg.side,
    );
    let m = ablation::movement_variants(cfg.side, agents, reps);
    let per_ms = |d: std::time::Duration| d.as_secs_f64() * 1e3 / reps as f64;
    let mut t = Table::new(vec![
        "variant".to_string(),
        "ms_per_launch".to_string(),
        "atomic_ops".to_string(),
        "deterministic".to_string(),
    ]);
    t.push_row(vec![
        "scatter_to_gather".to_string(),
        format!("{:.4}", per_ms(m.gather_time)),
        "0".to_string(),
        "yes".to_string(),
    ]);
    t.push_row(vec![
        "atomic_cas".to_string(),
        format!("{:.4}", per_ms(m.atomic_time)),
        (m.atomic_ops / reps as u64).to_string(),
        "NO (schedule-dependent)".to_string(),
    ]);
    println!("\n## Movement ablation ({} scale)\n", scale.label());
    print!("{}", t.markdown());
    println!("\natomic-CAS results are non-deterministic and excluded from the results registry.");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args_or_exit(&args);
    // Default to one worker: replicas racing for cores would pollute the
    // per-stage wall clocks this harness exists to record.
    let workers = arg_value(&args, "--workers")
        .and_then(|w| w.parse().ok())
        .unwrap_or(1);
    let sinks = Sinks::from_args(&args);
    let cfg = st::StConfig::for_scale(scale);
    let base = std::path::Path::new(".");

    if arg_value(&args, "--ablation").as_deref() == Some("atomic") {
        run_atomic_ablation(scale, &cfg);
        return;
    }

    let backend_only = arg_value(&args, "--backend");
    let threads_only: usize = arg_value(&args, "--threads")
        .and_then(|t| t.parse().ok())
        .unwrap_or(1);

    // The ladder: classic corridor at growing sides × backend registry
    // configurations. In `--backend` mode this is the whole run.
    let only = backend_only.as_deref().map(|b| (b, threads_only));
    let rungs = st::ladder_rungs(scale);
    let ladder_jobs = st::ladder_jobs_for(&rungs, only);
    if let Some((b, t)) = only {
        if ladder_jobs.is_empty() {
            eprintln!("error: --backend {b} --threads {t} matches no ladder configuration");
            std::process::exit(2);
        }
    }

    let mut pair_rows = Vec::new();
    let mut sinks_ok = true;
    let mut record_written = true;
    let t0 = std::time::Instant::now();

    if only.is_none() {
        log_summary!(
            "step_throughput [{}]: {side}x{side} closed+open corridors, both engines, \
             {} steps x {} repeats, on {workers} workers…",
            scale.label(),
            cfg.steps,
            cfg.repeats,
            side = cfg.side,
        );
        let batch = st::run_report(&cfg, workers);
        pair_rows = st::aggregate(&cfg, &batch);
        if let Err(e) = observe::emit(&sinks, "step_throughput", scale, &batch) {
            eprintln!("could not record observability sinks: {e}");
            sinks_ok = false;
        }
    }

    log_summary!(
        "scale ladder [{}]: {} rungs x {} backend configs…",
        scale.label(),
        rungs.len(),
        ladder_jobs.len() / rungs.len().max(1),
    );
    let ladder_batch = Batch::new(workers).run(&ladder_jobs);
    let ladder_rows = st::aggregate_ladder(&rungs, &ladder_batch);
    if let Err(e) = observe::emit(&sinks, "step_throughput", scale, &ladder_batch) {
        eprintln!("could not record observability sinks: {e}");
        sinks_ok = false;
    }
    let elapsed = t0.elapsed();

    if only.is_none() {
        println!("\n## Step throughput ({} scale)\n", scale.label());
        let table = st::table(&pair_rows);
        print!("{}", table.markdown());
        println!();
        for ratio in st::ratios(&pair_rows) {
            println!(
                "{}: CPU spends {:.2}x the GPU pipeline's wall time per step",
                ratio.world, ratio.total
            );
        }
        let name = format!("step_throughput_{}", scale.label());
        match table.save_csv(base, &name) {
            Ok(p) => log_summary!("wrote {}", p.display()),
            Err(e) => eprintln!("could not write {name}.csv: {e}"),
        }
        let json = st::to_json(scale, &cfg, &pair_rows, &ladder_rows);
        match report::save_json(base, &name, &json) {
            Ok(p) => log_summary!("wrote {}", p.display()),
            Err(e) => eprintln!("could not write {name}.json: {e}"),
        }
        let bench_path = base.join("BENCH_step_throughput.json");
        record_written = match std::fs::write(&bench_path, &json) {
            Ok(()) => {
                log_summary!("wrote {}", bench_path.display());
                true
            }
            Err(e) => {
                eprintln!("could not write {}: {e}", bench_path.display());
                false
            }
        };
    }

    println!("\n## Backend scale ladder ({} scale)\n", scale.label());
    print!("{}", st::ladder_table(&ladder_rows).markdown());
    for (side, mode, x) in st::ladder_speedups(&ladder_rows) {
        println!(
            "side {side} [{mode}]: pooled movement runs at {x:.2}x the scalar stage \
             (gains beyond the banded kernels' single-thread advantage need real cores)",
        );
    }
    for (side, backend, threads, x) in st::sparse_speedups(&ladder_rows) {
        println!("side {side}: {backend}/t{threads} steps {x:.2}x faster sparse than dense");
    }
    for (side, mode, threads, eff) in st::thread_scaling(&ladder_rows) {
        if threads > 1 {
            println!("side {side} [{mode}]: pooled t{threads} thread-scaling efficiency {eff:.2}");
        }
    }
    log_summary!("wall: {:.2}s on {workers} workers", elapsed.as_secs_f64());

    // Gates. In --backend mode: every requested ladder cell must have
    // timed real steps. In default mode: the engine-pair coverage gate as
    // before, plus the sink/record checks, at smoke scale only.
    let ladder_ok = ladder_rows.len() == ladder_jobs.len()
        && ladder_rows
            .iter()
            .all(|r| r.steps > 0 && r.movement_ms > 0.0);
    if only.is_some() {
        if !ladder_ok || !sinks_ok {
            eprintln!("ladder measurement incomplete");
            std::process::exit(1);
        }
        return;
    }
    let ok = st::covers_both_engines_and_all_stages(&pair_rows);
    println!(
        "\nmeasurement {}",
        if ok && ladder_ok {
            "covers both engines, every pipeline stage, and every ladder cell"
        } else {
            "is INCOMPLETE: an engine, stage, or ladder cell reported no time"
        },
    );
    // The coverage check is the CI acceptance gate at smoke scale; larger
    // scales only report. A failed record or sink write must also fail
    // the gate — otherwise CI would validate whatever stale record is
    // lying around.
    if (!ok || !ladder_ok || !record_written || !sinks_ok) && scale == Scale::Smoke {
        std::process::exit(1);
    }
}
