//! Fundamental diagram of the open corridor: sweep the inflow rate,
//! measure steady-state flux, density, and steps/second.
//!
//! ```text
//! cargo run -p pedsim-bench --release --bin fundamental_diagram -- \
//!     [--paper|--smoke] [--workers N] [--no-world-cache] [--journal PATH] \
//!     [--registry PATH | --no-registry]
//! ```
//!
//! Writes `results/fundamental_diagram_<scale>.{csv,json}` plus the
//! repo-root `BENCH_fundamental_diagram.json` perf-trajectory record,
//! appends one provenance-stamped row per replica to the results
//! registry (and, with `--journal`, one JSONL record per replica), and
//! prints a Markdown table. With the world cache on (the default), a
//! setup-amortization probe additionally measures how the cache
//! amortizes flow-field compilation across the replicas of one ladder
//! rung and records the cached-arm rows under the `fd_world_cache`
//! bench name; `--no-world-cache` compiles every replica cold and skips
//! the probe — the control arm the CI cache-identity check diffs
//! against. Exits non-zero when the smoke-scale curve fails the
//! rises-then-saturates sanity check (or, with the cache on, when the
//! probe's measured speedup lands under 5x despite a measurable cold
//! arm). Progress chatter honors `PEDSIM_LOG` (off/summary/verbose).

use pedsim_bench::fundamental_diagram as fd;
use pedsim_bench::observe::{self, Sinks};
use pedsim_bench::report;
use pedsim_bench::scale::{arg_value, Scale};
use pedsim_obs::log_summary;

/// Below this total cold-arm setup time the amortization ratio is mostly
/// timer noise, so the smoke gate does not judge it.
const MEASURABLE_COLD_SETUP_S: f64 = 1e-4;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args_or_exit(&args);
    let workers = arg_value(&args, "--workers")
        .and_then(|w| w.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    let world_cache = !args.iter().any(|a| a == "--no-world-cache");
    let sinks = Sinks::from_args(&args);
    let cfg = fd::FdConfig::for_scale(scale);
    let base = std::path::Path::new(".");

    log_summary!(
        "fundamental_diagram [{}]: open {side}x{side} corridor, {} rates x {} repeats, \
         budget {} steps, flux window {}, world cache {}, on {workers} workers…",
        scale.label(),
        cfg.rates.len(),
        cfg.repeats,
        cfg.steps,
        cfg.window,
        if world_cache { "on" } else { "off" },
        side = cfg.side,
    );

    let t0 = std::time::Instant::now();
    let batch = fd::run_report(&cfg, workers, world_cache);
    let elapsed = t0.elapsed();
    let rows = fd::aggregate(&cfg, &batch);

    let mut sinks_ok = match observe::emit(&sinks, "fundamental_diagram", scale, &batch) {
        Ok(()) => true,
        Err(e) => {
            eprintln!("could not record observability sinks: {e}");
            false
        }
    };

    // Setup-amortization probe: only meaningful with the cache on.
    let amortization = world_cache.then(|| {
        let (a, warm) = fd::measure_amortization(&cfg, workers);
        log_summary!(
            "world cache amortization over {} replicas of the top rung: \
             cold setup {:.2} ms, cached setup {:.3} ms — {:.1}x",
            a.replicas,
            a.cold_setup_s * 1e3,
            a.cached_setup_s * 1e3,
            a.speedup,
        );
        if let Err(e) = observe::emit(&sinks, fd::AMORTIZATION_BENCH, scale, &warm) {
            eprintln!("could not record amortization probe sinks: {e}");
            sinks_ok = false;
        }
        a
    });

    println!("\n## Fundamental diagram ({} scale)\n", scale.label());
    let table = fd::table(&rows);
    print!("{}", table.markdown());

    let name = format!("fundamental_diagram_{}", scale.label());
    match table.save_csv(base, &name) {
        Ok(p) => log_summary!("wrote {}", p.display()),
        Err(e) => eprintln!("could not write {name}.csv: {e}"),
    }
    match report::save_json(base, &name, &fd::to_json(scale, &cfg, &rows)) {
        Ok(p) => log_summary!("wrote {}", p.display()),
        Err(e) => eprintln!("could not write {name}.json: {e}"),
    }
    let bench_path = base.join("BENCH_fundamental_diagram.json");
    let bench_json = fd::to_bench_json(scale, &cfg, &rows, amortization.as_ref());
    match std::fs::write(&bench_path, bench_json) {
        Ok(()) => log_summary!("wrote {}", bench_path.display()),
        Err(e) => eprintln!("could not write {}: {e}", bench_path.display()),
    }
    log_summary!("wall: {:.2}s on {workers} workers", elapsed.as_secs_f64());

    let ok = fd::curve_rises_then_saturates(&rows);
    println!(
        "\nflux curve {} (low-rate flux {:.3}, high-rate flux {:.3})",
        if ok {
            "rises with inflow then saturates — as expected"
        } else {
            "does NOT show the expected rise-then-saturate shape"
        },
        rows.first().map_or(0.0, |r| r.flux),
        rows.last().map_or(0.0, |r| r.flux),
    );
    let amortized = amortization.is_none_or(|a| {
        let judged = a.cold_setup_s >= MEASURABLE_COLD_SETUP_S;
        if judged && a.speedup < 5.0 {
            eprintln!(
                "world cache amortization {:.1}x is under the expected 5x \
                 (cold {:.3} ms vs cached {:.3} ms)",
                a.speedup,
                a.cold_setup_s * 1e3,
                a.cached_setup_s * 1e3,
            );
            false
        } else {
            true
        }
    });
    // The shape check is the CI acceptance gate, calibrated for the smoke
    // ladder; research-scale ladders may legitimately sit entirely in
    // free flow or entirely congested, so larger scales only report. A
    // failed sink write also fails the gate — a bench whose registry row
    // never landed must not pass. Neither must a world cache that stopped
    // amortizing setup.
    if (!ok || !sinks_ok || !amortized) && scale == Scale::Smoke {
        std::process::exit(1);
    }
}
