//! Fundamental diagram of the open corridor: sweep the inflow rate,
//! measure steady-state flux, density, and steps/second.
//!
//! ```text
//! cargo run -p pedsim-bench --release --bin fundamental_diagram -- \
//!     [--paper|--smoke] [--workers N] [--journal PATH] \
//!     [--registry PATH | --no-registry]
//! ```
//!
//! Writes `results/fundamental_diagram_<scale>.{csv,json}` plus the
//! repo-root `BENCH_fundamental_diagram.json` perf-trajectory record,
//! appends one provenance-stamped row per replica to the results
//! registry (and, with `--journal`, one JSONL record per replica), and
//! prints a Markdown table. Exits non-zero when the smoke-scale curve
//! fails the rises-then-saturates sanity check. Progress chatter honors
//! `PEDSIM_LOG` (off/summary/verbose).

use pedsim_bench::fundamental_diagram as fd;
use pedsim_bench::observe::{self, Sinks};
use pedsim_bench::report;
use pedsim_bench::scale::{arg_value, Scale};
use pedsim_obs::log_summary;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args_or_exit(&args);
    let workers = arg_value(&args, "--workers")
        .and_then(|w| w.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    let sinks = Sinks::from_args(&args);
    let cfg = fd::FdConfig::for_scale(scale);
    let base = std::path::Path::new(".");

    log_summary!(
        "fundamental_diagram [{}]: open {side}x{side} corridor, {} rates x {} repeats, \
         budget {} steps, flux window {}, on {workers} workers…",
        scale.label(),
        cfg.rates.len(),
        cfg.repeats,
        cfg.steps,
        cfg.window,
        side = cfg.side,
    );

    let t0 = std::time::Instant::now();
    let batch = fd::run_report(&cfg, workers);
    let elapsed = t0.elapsed();
    let rows = fd::aggregate(&cfg, &batch);

    let sinks_ok = match observe::emit(&sinks, "fundamental_diagram", scale, &batch) {
        Ok(()) => true,
        Err(e) => {
            eprintln!("could not record observability sinks: {e}");
            false
        }
    };

    println!("\n## Fundamental diagram ({} scale)\n", scale.label());
    let table = fd::table(&rows);
    print!("{}", table.markdown());

    let name = format!("fundamental_diagram_{}", scale.label());
    match table.save_csv(base, &name) {
        Ok(p) => log_summary!("wrote {}", p.display()),
        Err(e) => eprintln!("could not write {name}.csv: {e}"),
    }
    match report::save_json(base, &name, &fd::to_json(scale, &cfg, &rows)) {
        Ok(p) => log_summary!("wrote {}", p.display()),
        Err(e) => eprintln!("could not write {name}.json: {e}"),
    }
    let bench_path = base.join("BENCH_fundamental_diagram.json");
    match std::fs::write(&bench_path, fd::to_bench_json(scale, &cfg, &rows)) {
        Ok(()) => log_summary!("wrote {}", bench_path.display()),
        Err(e) => eprintln!("could not write {}: {e}", bench_path.display()),
    }
    log_summary!("wall: {:.2}s on {workers} workers", elapsed.as_secs_f64());

    let ok = fd::curve_rises_then_saturates(&rows);
    println!(
        "\nflux curve {} (low-rate flux {:.3}, high-rate flux {:.3})",
        if ok {
            "rises with inflow then saturates — as expected"
        } else {
            "does NOT show the expected rise-then-saturate shape"
        },
        rows.first().map_or(0.0, |r| r.flux),
        rows.last().map_or(0.0, |r| r.flux),
    );
    // The shape check is the CI acceptance gate, calibrated for the smoke
    // ladder; research-scale ladders may legitimately sit entirely in
    // free flow or entirely congested, so larger scales only report. A
    // failed sink write also fails the gate — a bench whose registry row
    // never landed must not pass.
    if (!ok || !sinks_ok) && scale == Scale::Smoke {
        std::process::exit(1);
    }
}
