//! Regenerate Figure 5 (execution time and speedup, §V).
//!
//! ```text
//! cargo run -p pedsim-bench --release --bin fig5 -- [--part a|b|c|all] [--paper|--smoke]
//! ```
//!
//! Writes `results/fig5*.csv` and prints Markdown tables.

use pedsim_bench::scale::{arg_value, Scale};
use pedsim_bench::{fig5, Table};
use pedsim_obs::log_summary;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args_or_exit(&args);
    let part = arg_value(&args, "--part").unwrap_or_else(|| "all".into());
    let cfg = fig5::Fig5Config::for_scale(scale);

    log_summary!(
        "fig5 [{}]: {}x{} grid, {} steps, populations {:?} — timing both engines…",
        scale.label(),
        cfg.side,
        cfg.side,
        cfg.steps,
        cfg.populations
    );
    let rows = fig5::run(&cfg);
    let base = std::path::Path::new(".");

    let emit = |name: &str, title: &str, table: &Table| {
        println!("\n## {title} ({} scale)\n", scale.label());
        print!("{}", table.markdown());
        match table.save_csv(base, name) {
            Ok(p) => log_summary!("wrote {}", p.display()),
            Err(e) => eprintln!("could not write {name}.csv: {e}"),
        }
    };

    if part == "a" || part == "all" {
        emit(
            &format!("fig5a_{}", scale.label()),
            "Figure 5a — execution time, ACO vs LEM on the virtual GPU",
            &fig5::table_5a(&rows),
        );
        let mean_ratio: f64 =
            rows.iter().map(fig5::Fig5Row::aco_over_lem).sum::<f64>() / rows.len() as f64;
        println!(
            "\nmean ACO/LEM time ratio: {:.3} (paper: ~1.11)",
            mean_ratio
        );
    }
    if part == "b" || part == "all" {
        emit(
            &format!("fig5b_{}", scale.label()),
            "Figure 5b — ACO execution time, CPU vs virtual GPU",
            &fig5::table_5b(&rows),
        );
    }
    if part == "c" || part == "all" {
        emit(
            &format!("fig5c_{}", scale.label()),
            "Figure 5c — wall-clock speedup (CPU time / GPU time) on this host",
            &fig5::table_5c(&rows),
        );
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        println!(
            "\nhost workers: {workers} (the wall-clock speedup ceiling of this \
             substrate; the paper's ceiling was 448 CUDA cores → 18x…11x)"
        );
        let profile_steps = if matches!(scale, pedsim_bench::Scale::Smoke) {
            2
        } else {
            5
        };
        emit(
            &format!("fig5c_modeled_{}", scale.label()),
            "Figure 5b/5c — modelled on the paper's hardware (GTX 560 Ti vs i7-930, cycle model)",
            &fig5::modeled_speedup(&cfg, profile_steps),
        );
    }
}
