//! Ablations of the paper's §IV implementation techniques.
//!
//! ```text
//! cargo run -p pedsim-bench --release --bin ablation [-- --smoke]
//! ```

use pedsim_bench::ablation;
use pedsim_bench::scale::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args_or_exit(&args);
    let (side, agents, reps, sweep_steps) = match scale {
        Scale::Paper => (480, 25_600, 50, 4_000),
        Scale::Default => (240, 6_400, 20, 1_000),
        Scale::Smoke => (64, 400, 3, 100),
    };
    let base = std::path::Path::new(".");

    println!("## Ablation 1 — scatter-to-gather vs atomic CAS movement\n");
    let mv = ablation::movement_variants(side, agents, reps);
    let t = ablation::movement_table(&mv);
    print!("{}", t.markdown());
    let _ = t.save_csv(base, &format!("ablation_movement_{}", scale.label()));
    println!(
        "\n(paper §IV.d: \"an atomic operation serializes an application and \
         thus increases computation time\"; the CAS variant is also \
         schedule-dependent — only the gather kernel is deterministic)"
    );

    println!("\n## Ablation 2 — branchy vs branchless selection\n");
    let (branchy, branchless) = ablation::divergence_demo(480 * 480);
    let t = ablation::divergence_table(&branchy, &branchless);
    print!("{}", t.markdown());
    let _ = t.save_csv(base, &format!("ablation_divergence_{}", scale.label()));

    println!("\n## Ablation 3 — tiled (18x18 halo) vs direct-global scoring\n");
    let tl = ablation::tiled_variants(side, agents, reps);
    let t = ablation::tiled_table(&tl);
    print!("{}", t.markdown());
    let _ = t.save_csv(base, &format!("ablation_tiled_{}", scale.label()));
    println!(
        "\n(host wall-clock can favour the direct variant — host caches already \
         do what Fermi shared memory does; the modelled-cycle column shows the \
         on-device effect the paper optimised for)"
    );

    println!("\n## Ablation 4 — unspecified-constant sweeps\n");
    let t = ablation::param_sweep(side.min(96), agents, sweep_steps);
    print!("{}", t.markdown());
    let _ = t.save_csv(base, &format!("ablation_params_{}", scale.label()));
}
