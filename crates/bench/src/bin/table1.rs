//! Regenerate Table I (hardware specifications) and the property-matrix
//! schema, and verify the paper's occupancy claim.
//!
//! ```text
//! cargo run -p pedsim-bench --bin table1 [-- --property]
//! ```

use pedsim_bench::table1;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let base = std::path::Path::new(".");

    println!("## Table I — hardware specifications (paper vs this substrate)\n");
    let hw = table1::hardware_table();
    print!("{}", hw.markdown());
    let _ = hw.save_csv(base, "table1_hardware");

    if args.iter().any(|a| a == "--property") || args.is_empty() {
        println!("\n## Table I (second) — property-matrix record\n");
        let schema = table1::property_schema();
        print!("{}", schema.markdown());
        let _ = schema.save_csv(base, "table1_property");
    }

    println!("\n## Occupancy verification (CC 2.0, paper §IV.a claim)\n");
    let occ = table1::occupancy_check();
    print!("{}", occ.markdown());
    let _ = occ.save_csv(base, "table1_occupancy");
    println!(
        "\nThe paper sizes every kernel at 256-thread blocks to hold 100% \
         occupancy on CC 2.0; the rows above verify that and show the \
         configurations that lose it."
    );
}
