//! Query the append-only results registry and gate on KPI regressions.
//!
//! ```text
//! cargo run -p pedsim-bench --release --bin registry_query -- \
//!     [--registry results/registry.csv] [--kpi steps_per_sec] \
//!     [--last 5] [--check]
//! ```
//!
//! Groups registry rows into series (bench × scale × world × engine ×
//! model × config fingerprint), prints the newest measurement of every
//! series against the mean of its predecessors within the `--last`
//! window, and — with `--check` — exits non-zero when any series
//! drifted beyond the KPI's tolerance (DESIGN.md §12 has the table).

use pedsim_bench::registry_query as rq;
use pedsim_bench::scale::arg_value;
use pedsim_obs::registry::KPIS;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let path = std::path::PathBuf::from(
        arg_value(&args, "--registry").unwrap_or_else(|| "results/registry.csv".to_owned()),
    );
    let kpi = arg_value(&args, "--kpi").unwrap_or_else(|| "steps_per_sec".to_owned());
    let last = arg_value(&args, "--last")
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    let check = args.iter().any(|a| a == "--check");

    if pedsim_obs::registry::tolerance_for(&kpi).is_none() {
        eprintln!(
            "error: unknown KPI {kpi:?}; known KPIs: {}",
            KPIS.join(", ")
        );
        std::process::exit(2);
    }
    let outcomes = match rq::query(&path, &kpi, last) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: could not read registry {}: {e}", path.display());
            std::process::exit(2);
        }
    };
    for outcome in &outcomes {
        println!("{}", outcome.describe());
    }
    println!("{}", rq::summary_line(&kpi, &outcomes));
    if check && rq::any_regression(&outcomes) {
        std::process::exit(1);
    }
}
