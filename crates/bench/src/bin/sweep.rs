//! Scenario sweep: registry worlds × densities × seeds, one batched run,
//! one JSON report.
//!
//! ```text
//! cargo run -p pedsim-bench --release --bin sweep -- \
//!     [--paper|--smoke] [--workers N] [--journal PATH] [--verify-determinism]
//! ```
//!
//! Writes `results/sweep_<scale>.json` (the deterministic serialization —
//! byte-identical for any worker count) plus a Markdown summary on
//! stdout; `--journal` additionally appends one JSONL record per
//! replica. `--verify-determinism` re-runs the whole sweep on 1 worker
//! and asserts the JSON bytes match. Progress chatter honors
//! `PEDSIM_LOG` (off/summary/verbose).

use pedsim_bench::report;
use pedsim_bench::scale::{arg_value, Scale};
use pedsim_bench::sweep::SweepProtocol;
use pedsim_obs::log_summary;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args_or_exit(&args);
    let workers = arg_value(&args, "--workers")
        .and_then(|w| w.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    let proto = SweepProtocol::for_scale(scale);

    log_summary!(
        "sweep [{}]: {} worlds x {} densities x {} seeds x 2 models = {} replicas on {} workers \
         (budget {} steps, early exit on arrival/gridlock)…",
        scale.label(),
        proto.worlds.len(),
        proto.per_sides.len(),
        proto.seeds.len(),
        proto.worlds.len() * proto.per_sides.len() * proto.seeds.len() * 2,
        workers,
        proto.steps,
    );

    let t0 = std::time::Instant::now();
    let batch_report = proto.run(workers);
    let elapsed = t0.elapsed();

    println!("\n## Scenario sweep ({} scale)\n", scale.label());
    print!("{}", proto.summary_table(&batch_report).markdown());
    println!(
        "\n{} replicas: {} arrived, {} gridlocked, {} flux-steady, {} exhausted the \
         budget; {} simulated steps total (mean {:.1}/replica)",
        batch_report.jobs,
        batch_report.arrived,
        batch_report.gridlocked,
        batch_report.steady,
        batch_report.exhausted,
        batch_report.steps_total,
        batch_report.mean_steps,
    );
    log_summary!(
        "wall: {:.2}s on {workers} workers ({:.2} CPU-seconds of simulation; critical path {:.2}s)",
        elapsed.as_secs_f64(),
        batch_report.wall_total.as_secs_f64(),
        batch_report.wall_max.as_secs_f64(),
    );

    let base = std::path::Path::new(".");
    let name = format!("sweep_{}", scale.label());
    match report::save_json(base, &name, &batch_report.to_json()) {
        Ok(p) => log_summary!("wrote {}", p.display()),
        Err(e) => eprintln!("could not write {name}.json: {e}"),
    }

    if let Some(path) = arg_value(&args, "--journal").map(std::path::PathBuf::from) {
        let write_all = || -> std::io::Result<()> {
            let mut journal = pedsim_obs::journal::Journal::open(&path)?;
            for result in &batch_report.results {
                journal.write(&result.journal_record())?;
            }
            Ok(())
        };
        match write_all() {
            Ok(()) => log_summary!(
                "journaled {} runs to {}",
                batch_report.results.len(),
                path.display()
            ),
            Err(e) => eprintln!("could not write journal {}: {e}", path.display()),
        }
    }

    if args.iter().any(|a| a == "--verify-determinism") {
        log_summary!("re-running on 1 worker to verify determinism…");
        let single = proto.run(1);
        assert_eq!(
            single.to_json(),
            batch_report.to_json(),
            "BatchReport diverged between {workers} workers and 1 worker"
        );
        log_summary!("OK: report bytes identical across worker counts");
    }
}
