//! KPI queries over the results registry — the CI regression gate.
//!
//! `registry_query` reads `results/registry.csv`, groups rows into
//! series (same bench, scale, world, engine, backend, thread count,
//! model, and config fingerprint), and diffs the newest measurement of
//! each series
//! against the mean of its up-to-`last - 1` predecessors under the KPI
//! tolerance table ([`pedsim_obs::registry::tolerance_for`]). With
//! `--check`, any regression turns into a non-zero exit — the perf gate
//! CI runs after appending its own smoke records.

use std::io;
use std::path::Path;

use pedsim_obs::registry::{self, CheckOutcome, Verdict};

/// Load the registry at `path` and check `kpi` over the newest `last`
/// rows of every series.
pub fn query(path: &Path, kpi: &str, last: usize) -> io::Result<Vec<CheckOutcome>> {
    let rows = registry::load(path)?;
    Ok(registry::check(&rows, kpi, last))
}

/// Whether any series regressed.
pub fn any_regression(outcomes: &[CheckOutcome]) -> bool {
    outcomes.iter().any(|o| o.verdict == Verdict::Regression)
}

/// One-line tally over the outcomes: passed / insufficient / regressed.
pub fn summary_line(kpi: &str, outcomes: &[CheckOutcome]) -> String {
    let count = |v: Verdict| outcomes.iter().filter(|o| o.verdict == v).count();
    format!(
        "{kpi}: {} series checked — {} ok, {} insufficient history, {} regressed",
        outcomes.len(),
        count(Verdict::Pass),
        count(Verdict::Insufficient),
        count(Verdict::Regression),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pedsim_obs::registry::Row;

    fn smoke_row(commit: &str, steps_per_sec: f64) -> Row {
        Row {
            schema: registry::SCHEMA.to_owned(),
            config: "00c0ffee00c0ffee".to_owned(),
            commit: commit.to_owned(),
            scale: "smoke".to_owned(),
            bench: "step_throughput".to_owned(),
            world: "paper_corridor".to_owned(),
            engine: "gpu".to_owned(),
            backend: "simt".to_owned(),
            threads: 1,
            model: "ACO".to_owned(),
            seed: 9_300,
            agents: 60,
            steps: 120,
            flux: 1.2,
            bands: Some(2.0),
            segregation: Some(0.6),
            gridlock_risk: Some(0.0),
            steps_per_sec,
            total_ms_per_step: 1.0,
            stage_ms: [0.1; 6],
            setup_s: 0.001,
        }
    }

    #[test]
    fn two_smoke_runs_diff_and_an_injected_regression_fails_the_gate() {
        let dir = std::env::temp_dir().join("pedsim_bench_registry_query_test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("registry.csv");

        // Two healthy smoke runs at different commits: the gate passes.
        registry::append(&path, &[smoke_row("commit000001", 1000.0)]).unwrap();
        registry::append(&path, &[smoke_row("commit000002", 900.0)]).unwrap();
        let outcomes = query(&path, "steps_per_sec", 2).unwrap();
        assert_eq!(outcomes.len(), 1);
        assert_eq!(outcomes[0].verdict, Verdict::Pass);
        assert_eq!(outcomes[0].baseline, Some(1000.0));
        assert_eq!(outcomes[0].latest, Some(900.0));
        assert!(!any_regression(&outcomes));
        assert!(summary_line("steps_per_sec", &outcomes).contains("1 ok"));

        // Inject a >50% throughput collapse: the gate must trip.
        registry::append(&path, &[smoke_row("commit000003", 100.0)]).unwrap();
        let outcomes = query(&path, "steps_per_sec", 2).unwrap();
        assert_eq!(outcomes[0].verdict, Verdict::Regression);
        assert!(any_regression(&outcomes));
        assert!(summary_line("steps_per_sec", &outcomes).contains("1 regressed"));

        // The deterministic physics gate is exact: a drifted segregation
        // value regresses even though throughput would tolerate it.
        let mut drifted = smoke_row("commit000004", 95.0);
        drifted.segregation = Some(0.7);
        registry::append(&path, &[drifted]).unwrap();
        let outcomes = query(&path, "segregation", 2).unwrap();
        assert!(any_regression(&outcomes));

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_registry_is_an_io_error() {
        assert!(query(Path::new("/nonexistent/registry.csv"), "flux", 5).is_err());
    }
}
