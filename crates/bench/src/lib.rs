//! # pedsim-bench — the paper's evaluation, regenerated
//!
//! One module per experiment (see DESIGN.md §4 for the index):
//!
//! * [`fig5`] — execution-time comparisons: LEM vs ACO on the virtual GPU
//!   (Fig. 5a), ACO on CPU vs GPU (Fig. 5b), and the derived speedup curve
//!   (Fig. 5c);
//! * [`fig6`] — throughput: LEM vs ACO on the GPU across densities
//!   (Fig. 6a) and CPU vs GPU with the binomial-GLM significance test
//!   (Fig. 6b);
//! * [`table1`] — the hardware table and the property-matrix schema;
//! * [`ablation`] — the §IV implementation-technique claims measured:
//!   scatter-to-gather vs atomics, tiled vs direct global access,
//!   branchless vs branchy selection, and model-parameter sweeps;
//! * [`sweep`] — registry worlds × densities × seeds as one early-
//!   terminating batch with a JSON `BatchReport`;
//! * [`fundamental_diagram`] — the open corridor's flux/density curve
//!   across an inflow ladder (steady-state stop, windowed flux), seeding
//!   the repo-root `BENCH_fundamental_diagram.json` perf trajectory;
//! * [`step_throughput`] — per-stage wall time and steps/second of the
//!   unified engine pipeline on both engines (closed + open worlds),
//!   seeding the repo-root `BENCH_step_throughput.json` perf trajectory;
//! * [`report`] — Markdown/CSV/JSON emitters (the MATLAB-plotting
//!   substitute);
//! * [`scale`] — the `--paper` / default / `--smoke` protocol scales;
//! * [`observe`] — the `--journal` / `--registry` sinks: per-replica
//!   JSONL records and provenance-stamped rows for the append-only
//!   results registry;
//! * [`registry_query`] — KPI queries over the registry and the CI
//!   regression gate behind the `registry_query` binary.
//!
//! Binaries `fig5`, `fig6`, `table1`, `ablation`, `sweep` drive these and
//! write `results/*.csv` / `results/*.json` next to a Markdown rendition
//! on stdout. The sweeping experiments execute their replicas through
//! `pedsim-runner` batches with per-replica stop conditions instead of
//! hand-rolled serial loops.

#![warn(missing_docs)]

pub mod ablation;
pub mod fig5;
pub mod fig6;
pub mod fundamental_diagram;
pub mod observe;
pub mod registry_query;
pub mod report;
pub mod scale;
pub mod step_throughput;
pub mod sweep;
pub mod table1;

pub use report::Table;
pub use scale::Scale;
