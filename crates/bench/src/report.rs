//! Result tables: Markdown to stdout, CSV to `results/`.
//!
//! The paper plotted with MATLAB; this reproduction emits the same series
//! as machine-readable CSV plus a human-readable Markdown table (the
//! substitution noted in DESIGN.md §2).

use std::fmt::Write as _;
use std::path::Path;

/// A simple column-oriented result table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells (stringified values).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn push_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Render as GitHub Markdown.
    pub fn markdown(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            s,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(s, "| {} |", row.join(" | "));
        }
        s
    }

    /// Render as CSV.
    pub fn csv(&self) -> String {
        let mut s = String::new();
        let esc = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let _ = writeln!(
            s,
            "{}",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                s,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        s
    }

    /// Write the CSV into `results/<name>.csv` under `base` (creating the
    /// directory), returning the path written.
    pub fn save_csv(&self, base: &Path, name: &str) -> std::io::Result<std::path::PathBuf> {
        let dir = base.join("results");
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{name}.csv"));
        std::fs::write(&path, self.csv())?;
        Ok(path)
    }
}

/// Write pre-serialized JSON (e.g. a `pedsim_runner::BatchReport`) into
/// `results/<name>.json` under `base`, returning the path written.
pub fn save_json(base: &Path, name: &str, json: &str) -> std::io::Result<std::path::PathBuf> {
    let dir = base.join("results");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    std::fs::write(&path, json)?;
    Ok(path)
}

/// Format seconds with sensible precision.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Format a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_and_csv_roundtrip() {
        let mut t = Table::new(vec!["a", "b"]);
        t.push_row(vec!["1", "2"]);
        t.push_row(vec!["x,y", "z\"q\""]);
        let md = t.markdown();
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
        let csv = t.csv();
        assert!(csv.starts_with("a,b\n"));
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"z\"\"q\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_rows_rejected() {
        let mut t = Table::new(vec!["a", "b"]);
        t.push_row(vec!["1"]);
    }

    #[test]
    fn save_csv_writes_file() {
        let dir = std::env::temp_dir().join("pedsim_bench_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut t = Table::new(vec!["h"]);
        t.push_row(vec!["v"]);
        let p = t.save_csv(&dir, "unit").unwrap();
        assert_eq!(std::fs::read_to_string(p).unwrap(), "h\nv\n");
    }
}
