//! Table I: hardware specifications (§V) and the property-matrix schema
//! (§IV.a).
//!
//! The hardware table is reproduced three ways: the paper's CPU, the
//! paper's GPU, and the *actual* substrate executing this reproduction
//! (the host CPU driving the `simt` virtual device) — making the
//! substitution of DESIGN.md §2 visible in the output. The occupancy
//! claim ("256 threads per block maintains 100 % occupancy") is verified
//! live against the Fermi occupancy calculator.

use simt::occupancy::occupancy;
use simt::DeviceProps;

use crate::report::Table;

/// The hardware table (paper Table I plus the substrate row).
pub fn hardware_table() -> Table {
    let mut t = Table::new(vec![
        "attribute",
        "paper CPU (i7-930)",
        "paper GPU (GTX 560 Ti)",
        "this substrate (host)",
    ]);
    let cpu = DeviceProps::i7_930();
    let gpu = DeviceProps::gtx_560_ti_448();
    let host = DeviceProps::host();
    let cores = |d: &DeviceProps| (d.sm_count * d.cores_per_sm).to_string();
    t.push_row(vec![
        "processor cores".into(),
        cores(&cpu),
        cores(&gpu),
        cores(&host),
    ]);
    t.push_row(vec![
        "clock (MHz)".to_string(),
        cpu.clock_mhz.to_string(),
        gpu.clock_mhz.to_string(),
        if host.clock_mhz == 0 {
            "n/a".into()
        } else {
            host.clock_mhz.to_string()
        },
    ]);
    t.push_row(vec![
        "memory (MiB)".to_string(),
        cpu.global_mem_mib.to_string(),
        gpu.global_mem_mib.to_string(),
        "host RAM".into(),
    ]);
    t.push_row(vec![
        "compute capability".to_string(),
        "—".into(),
        format!("{}.{}", gpu.compute_capability.0, gpu.compute_capability.1),
        "virtual (simt)".into(),
    ]);
    t
}

/// The property-matrix schema (paper Table I, second table).
pub fn property_schema() -> Table {
    let mut t = Table::new(vec!["field", "description", "this reproduction"]);
    for (f, d, r) in [
        ("ID", "identity of the pedestrian, 1 or 2", "props.id (u8)"),
        (
            "INDEX NO",
            "index into the property/scan matrices",
            "implicit (row number)",
        ),
        ("ROW", "present row position", "props.row (u16)"),
        ("COLUMN", "present column position", "props.col (u16)"),
        ("EMPTY", "unused", "dropped"),
        (
            "FUTURE ROW",
            "chosen next row, reset each step",
            "props.future_row (u16, NO_FUTURE sentinel)",
        ),
        (
            "FUTURE COLUMN",
            "chosen next column",
            "props.future_col (u16)",
        ),
        (
            "FRONT CELL",
            "contents of the forward cell",
            "props.front (u8)",
        ),
    ] {
        t.push_row(vec![f, d, r]);
    }
    t
}

/// Verify the paper's occupancy claim on the Fermi property sheet;
/// returns the rendered verification table.
pub fn occupancy_check() -> Table {
    let fermi = DeviceProps::gtx_560_ti_448();
    let mut t = Table::new(vec![
        "threads/block",
        "regs/thread",
        "shared B",
        "active blocks/SM",
        "occupancy",
        "limiter",
    ]);
    for (threads, regs, shared) in [
        (256u32, 20u32, 2_324u32), // the movement kernel's footprint
        (256, 20, 8 * 1024),
        (128, 20, 2_324),
        (512, 20, 2_324),
        (256, 63, 0),
    ] {
        match occupancy(&fermi, threads, regs, shared) {
            Some(o) => t.push_row(vec![
                threads.to_string(),
                regs.to_string(),
                shared.to_string(),
                o.active_blocks_per_sm.to_string(),
                format!("{:.0}%", o.occupancy * 100.0),
                format!("{:?}", o.limiter),
            ]),
            None => t.push_row(vec![
                threads.to_string(),
                regs.to_string(),
                shared.to_string(),
                "—".into(),
                "invalid".into(),
                "—".into(),
            ]),
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hardware_rows_quote_the_paper() {
        let md = hardware_table().markdown();
        assert!(md.contains("448"));
        assert!(md.contains("1464"));
        assert!(md.contains("2800"));
    }

    #[test]
    fn schema_lists_all_paper_fields() {
        let t = property_schema();
        assert_eq!(t.rows.len(), 8);
        assert!(t.markdown().contains("FRONT CELL"));
    }

    #[test]
    fn occupancy_table_confirms_the_claim() {
        let md = occupancy_check().markdown();
        // 256-thread rows reach 100 %.
        assert!(md.contains("100%"));
    }
}
