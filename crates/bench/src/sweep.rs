//! Scenario sweeps: registry worlds × densities × seeds as one batch.
//!
//! The paper's protocol fixes one geometry and sweeps population; the
//! scenario subsystem adds worlds, and the runner adds fleets. This
//! module is the cross product: every registry world at several
//! densities, several replica seeds each, both models, executed as one
//! [`Batch`] with full early termination (arrival, gridlock, or the step
//! budget — whichever first) and aggregated into a single JSON
//! [`BatchReport`]. The deterministic serialization is byte-identical
//! for any pool worker count and any job submission order.

use pedsim_core::prelude::*;
use pedsim_runner::{Batch, BatchReport, Job, FLUX_REPORT_WINDOW};
use pedsim_scenario::sweep as grids;

use crate::report::{f3, Table};
use crate::scale::Scale;

/// Sweep-protocol parameters.
#[derive(Debug, Clone)]
pub struct SweepProtocol {
    /// Environment side (square grid).
    pub side: usize,
    /// Registry worlds swept.
    pub worlds: Vec<&'static str>,
    /// Agents-per-side series (the density axis).
    pub per_sides: Vec<usize>,
    /// Replica seeds.
    pub seeds: Vec<u64>,
    /// Step budget per replica (the early-exit backstop).
    pub steps: u64,
    /// Moves-per-step floor for the gridlock stop.
    pub gridlock_threshold: usize,
    /// Consecutive frozen steps before a replica stops as gridlocked.
    pub gridlock_patience: u64,
    /// Steady-state epsilon (crossings per step) for open-boundary worlds.
    pub steady_epsilon: f64,
    /// Steady-state flux window for open-boundary worlds.
    pub steady_window: u64,
}

impl SweepProtocol {
    /// Protocol for `scale`: all four registry worlds, three densities,
    /// five seeds (ten at paper scale).
    pub fn for_scale(scale: Scale) -> Self {
        let worlds = pedsim_scenario::registry::names().to_vec();
        match scale {
            Scale::Paper => Self {
                side: 480,
                worlds,
                per_sides: vec![1_280, 5_120, 12_800],
                seeds: (1..=10).collect(),
                steps: 25_000,
                gridlock_threshold: 4,
                gridlock_patience: 50,
                steady_epsilon: 0.5,
                steady_window: FLUX_REPORT_WINDOW,
            },
            Scale::Default => Self {
                side: 64,
                worlds,
                per_sides: vec![96, 256, 448],
                seeds: (1..=5).collect(),
                steps: 1_500,
                gridlock_threshold: 2,
                gridlock_patience: 30,
                steady_epsilon: 0.5,
                steady_window: FLUX_REPORT_WINDOW,
            },
            Scale::Smoke => Self {
                side: 32,
                worlds,
                per_sides: vec![24, 48, 96],
                seeds: (1..=5).collect(),
                steps: 250,
                gridlock_threshold: 1,
                gridlock_patience: 10,
                steady_epsilon: 0.75,
                // At least the report window: a replica that stops
                // SteadyState has always observed it, so its flux field
                // is never null.
                steady_window: FLUX_REPORT_WINDOW,
            },
        }
    }

    /// The job list: worlds × densities × seeds × both models. Closed
    /// worlds stop on arrival/gridlock/budget; open worlds (which never
    /// "arrive") stop on steady flux, gridlock, or the budget.
    pub fn jobs(&self) -> Vec<Job> {
        let closed_stop = StopCondition::settled_or_steps(
            self.steps,
            self.gridlock_threshold,
            self.gridlock_patience,
        );
        let open_stop = StopCondition::FirstOf(vec![
            StopCondition::SteadyState {
                epsilon: self.steady_epsilon,
                window: self.steady_window,
            },
            StopCondition::Gridlocked {
                threshold: self.gridlock_threshold,
                patience: self.gridlock_patience,
            },
            StopCondition::Steps(self.steps),
        ]);
        let points = grids::grid(&self.worlds, self.side, &self.per_sides, &self.seeds);
        let mut jobs = Vec::with_capacity(points.len() * 2);
        for point in &points {
            let stop = if point.scenario.is_open() {
                &open_stop
            } else {
                &closed_stop
            };
            for model in [ModelKind::lem(), ModelKind::aco()] {
                let label = format!(
                    "{}/n{:06}/{}",
                    point.world,
                    point.per_side * 2,
                    model.name()
                );
                jobs.push(Job::gpu(
                    label,
                    SimConfig::from_scenario(&point.scenario, model),
                    stop.clone(),
                ));
            }
        }
        jobs
    }

    /// Run the sweep on `workers` pool threads.
    pub fn run(&self, workers: usize) -> BatchReport {
        Batch::new(workers).run(&self.jobs())
    }

    /// Per-label summary of a finished sweep: replicas, mean throughput,
    /// arrival fraction, mean steps to stop.
    pub fn summary_table(&self, report: &BatchReport) -> Table {
        let mut t = Table::new(vec![
            "world",
            "agents",
            "model",
            "replicas",
            "mean_throughput",
            "arrived",
            "gridlocked",
            "steady",
            "mean_steps",
        ]);
        let mut labels: Vec<&str> = report.results.iter().map(|r| r.label.as_str()).collect();
        labels.dedup(); // results are in canonical (sorted) order
        for label in labels {
            let rows: Vec<_> = report.with_label(label).collect();
            let n = rows.len();
            let arrived = rows
                .iter()
                .filter(|r| r.stop == StopReason::AllArrived)
                .count();
            let gridlocked = rows
                .iter()
                .filter(|r| r.stop == StopReason::Gridlocked)
                .count();
            let steady = rows
                .iter()
                .filter(|r| r.stop == StopReason::SteadyState)
                .count();
            let mean_steps = rows.iter().map(|r| r.steps).sum::<u64>() as f64 / n as f64;
            let first = rows[0];
            t.push_row(vec![
                first.world.clone(),
                first.agents.to_string(),
                first.model.clone(),
                n.to_string(),
                f3(report.mean_throughput(label)),
                format!("{arrived}/{n}"),
                format!("{gridlocked}/{n}"),
                format!("{steady}/{n}"),
                f3(mean_steps),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SweepProtocol {
        SweepProtocol {
            side: 24,
            worlds: vec!["paper_corridor", "doorway"],
            per_sides: vec![8, 16],
            seeds: vec![1, 2],
            steps: 150,
            gridlock_threshold: 1,
            gridlock_patience: 8,
            steady_epsilon: 0.5,
            steady_window: 32,
        }
    }

    #[test]
    fn sweep_covers_the_grid_and_serializes() {
        let proto = tiny();
        let jobs = proto.jobs();
        assert_eq!(jobs.len(), 2 * 2 * 2 * 2); // worlds × densities × seeds × models
        let report = proto.run(2);
        assert_eq!(report.jobs, 16);
        let json = report.to_json();
        assert!(json.contains("pedsim.batch_report.v7"));
        assert!(json.contains("paper_corridor"));
        assert_eq!(proto.summary_table(&report).rows.len(), 8);
    }

    #[test]
    fn sweep_json_is_worker_count_invariant() {
        let proto = tiny();
        let a = proto.run(1).to_json();
        let b = proto.run(4).to_json();
        assert_eq!(a, b);
    }

    #[test]
    fn all_scales_have_enough_axes() {
        for scale in [Scale::Paper, Scale::Default, Scale::Smoke] {
            let p = SweepProtocol::for_scale(scale);
            // Every registry world is swept — multi-group and open-
            // boundary ones included, so they cannot rot outside CI's
            // reach.
            assert_eq!(p.worlds.len(), pedsim_scenario::registry::names().len());
            assert!(p.worlds.contains(&"four_way_crossing"));
            assert!(p.worlds.contains(&"t_junction_merge"));
            assert!(p.worlds.contains(&"open_corridor"));
            assert!(p.worlds.contains(&"open_crossing"));
            assert!(p.per_sides.len() >= 3);
            assert!(p.seeds.len() >= 5);
        }
    }

    #[test]
    fn open_worlds_get_the_steady_stop() {
        let mut p = tiny();
        p.worlds = vec!["paper_corridor", "open_corridor"];
        let jobs = p.jobs();
        for job in &jobs {
            let open = job.cfg.scenario.as_ref().is_some_and(|s| s.is_open());
            let has_steady = matches!(
                &job.stop,
                StopCondition::FirstOf(cs)
                    if cs.iter().any(|c| matches!(c, StopCondition::SteadyState { .. }))
            );
            assert_eq!(open, has_steady, "job {}", job.label);
            assert!(job.validate().is_ok());
        }
    }
}
