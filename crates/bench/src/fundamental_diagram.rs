//! Fundamental diagram of the open corridor: flux vs density vs inflow.
//!
//! The paper reports throughput of one transient wave; corridor studies
//! (uni/bi-directional straight-corridor flow, dynamic-navigation-field
//! models) report the **fundamental diagram** — steady-state flux as a
//! function of density at a sustained inflow. The open-boundary lifecycle
//! makes that measurable here: this harness sweeps the inflow rate of
//! [`pedsim_scenario::registry::open_corridor`], lets every replica run to
//! flux steady state (or the step budget), and records windowed flux,
//! live density, and wall-clock steps/second.
//!
//! Expected shape: flux tracks the inflow at low rates (free flow), then
//! saturates once the opposing streams' lane capacity is reached — the
//! rising-then-flat curve the smoke acceptance checks.
//!
//! Every (rate, repeat) replica is an independent [`pedsim_runner::Job`]
//! on a [`pedsim_runner::Batch`] pool; results aggregate per rate.

use std::time::Duration;

use pedsim_core::prelude::*;
use pedsim_runner::{Batch, BatchReport, Job, FLUX_REPORT_WINDOW};
use pedsim_scenario::registry;

use crate::report::{f3, Table};
use crate::scale::Scale;

/// Fundamental-diagram protocol parameters.
#[derive(Debug, Clone)]
pub struct FdConfig {
    /// Corridor side (square grid).
    pub side: usize,
    /// Inflow ladder: expected arrivals per step per group.
    pub rates: Vec<f64>,
    /// Step budget per replica (the steady-state backstop).
    pub steps: u64,
    /// Repeats averaged per rate.
    pub repeats: u64,
    /// Base seed; repeat `k` of rate index `i` uses
    /// `seed + (i + 1) * 1000 + k`.
    pub seed: u64,
    /// Flux window for the steady-state stop (and the reported flux).
    pub window: u64,
    /// Steady-state epsilon as a *fraction* of the inflow rate (absolute
    /// floor 0.2 crossings/step), so denser ladders tolerate
    /// proportionally more flux noise.
    pub epsilon_frac: f64,
}

impl FdConfig {
    /// Protocol for `scale`.
    pub fn for_scale(scale: Scale) -> Self {
        match scale {
            Scale::Paper => Self {
                side: 480,
                rates: vec![2.0, 4.0, 8.0, 16.0, 32.0, 48.0, 64.0],
                steps: 25_000,
                repeats: 3,
                seed: 7_100,
                window: FLUX_REPORT_WINDOW,
                epsilon_frac: 0.15,
            },
            Scale::Default => Self {
                side: 96,
                rates: vec![0.5, 1.0, 2.0, 4.0, 8.0, 12.0],
                steps: 2_000,
                repeats: 2,
                seed: 7_100,
                window: FLUX_REPORT_WINDOW,
                epsilon_frac: 0.2,
            },
            Scale::Smoke => Self {
                side: 32,
                rates: vec![0.25, 0.5, 1.0, 2.0, 4.0],
                steps: 400,
                repeats: 2,
                seed: 7_100,
                window: FLUX_REPORT_WINDOW,
                epsilon_frac: 0.3,
            },
        }
    }

    /// Slot capacity per group for an inflow of `rate`: four transit
    /// times' worth of arrivals (so congestion — not the recycling pool —
    /// is what saturates the flux at moderate rates), capped at a third of
    /// the grid per group (beyond that the corridor physically cannot hold
    /// the crowd anyway).
    pub fn capacity_for(&self, rate: f64) -> usize {
        let by_inflow = (rate * self.side as f64 * 4.0).ceil() as usize;
        by_inflow.clamp(32, (self.side * self.side / 3).max(32))
    }

    /// The job list: every rate × repeat replica, ACO model, stopping at
    /// flux steady state or the budget.
    pub fn jobs(&self) -> Vec<Job> {
        let mut jobs = Vec::with_capacity(self.rates.len() * self.repeats as usize);
        for (i, &rate) in self.rates.iter().enumerate() {
            let epsilon = (rate * self.epsilon_frac).max(0.2);
            let stop = StopCondition::steady_or_steps(self.steps, epsilon, self.window);
            for k in 0..self.repeats {
                let seed = self.seed + (i + 1) as u64 * 1000 + k;
                let scenario =
                    registry::open_corridor(self.side, self.side, self.capacity_for(rate), rate)
                        .with_seed(seed);
                let cfg = SimConfig::from_scenario(&scenario, ModelKind::aco());
                jobs.push(Job::gpu(format!("r{i:02}/{rate}"), cfg, stop.clone()));
            }
        }
        jobs
    }
}

/// One rate point of the diagram (repeats aggregated).
#[derive(Debug, Clone)]
pub struct FdRow {
    /// Inflow rate (arrivals per step per group).
    pub rate: f64,
    /// Mean windowed flux at stop (crossings per step, both streams).
    pub flux: f64,
    /// Mean live density at stop (agents per cell).
    pub density: f64,
    /// Mean live agents at stop.
    pub live: f64,
    /// Mean steps to stop.
    pub steps: f64,
    /// Replicas that stopped at [`StopReason::SteadyState`].
    pub steady: usize,
    /// Replicas at this rate.
    pub replicas: usize,
    /// Mean per-row directional band count at stop (lane formation).
    pub bands: f64,
    /// Mean group segregation index at stop, in `[0, 1]`.
    pub segregation: f64,
    /// Mean gridlock early-warning gauge at stop, in `[0, 1]` (0 when no
    /// replica ran long enough to measure it).
    pub gridlock_risk: f64,
    /// Simulated steps per wall-clock second (all replicas at this rate;
    /// non-deterministic — excluded from the deterministic JSON).
    pub steps_per_sec: f64,
}

/// Run the sweep on `workers` pool threads, returning the raw
/// per-replica report — the journal/registry emitters consume this
/// before [`aggregate`] collapses it into the curve. `world_cache`
/// toggles the batch executor's compiled-world cache; trajectories (and
/// the deterministic report) are bit-identical either way, only `setup`
/// timings move — which is exactly what the CI cache-identity check
/// asserts.
pub fn run_report(cfg: &FdConfig, workers: usize, world_cache: bool) -> BatchReport {
    Batch::new(workers)
        .with_world_cache(world_cache)
        .run(&cfg.jobs())
}

/// [`run_report`] + [`aggregate`] in one call (world cache on).
pub fn run(cfg: &FdConfig, workers: usize) -> Vec<FdRow> {
    aggregate(cfg, &run_report(cfg, workers, true))
}

/// Replicas in the setup-amortization probe.
pub const AMORTIZATION_REPLICAS: u64 = 12;

/// Registry bench name for the probe's rows. Distinct from
/// `fundamental_diagram` on purpose: probe replicas run 1 step and
/// report no meaningful flux, so they must not join the physics series
/// the flux gate checks.
pub const AMORTIZATION_BENCH: &str = "fd_world_cache";

/// The measured setup amortization of a cached ladder rung.
#[derive(Debug, Clone, Copy)]
pub struct SetupAmortization {
    /// Probe replicas per arm.
    pub replicas: u64,
    /// Total world-acquisition seconds across the cold arm (every
    /// replica compiles its world from scratch).
    pub cold_setup_s: f64,
    /// Total world-acquisition seconds across the cached arm (every
    /// replica fetches the rung's compiled world from the cache).
    pub cached_setup_s: f64,
    /// `cold_setup_s / cached_setup_s`.
    pub speedup: f64,
}

/// The probe job list: [`AMORTIZATION_REPLICAS`] replicas of the *top*
/// ladder rung, all with the same seed — i.e. the same compiled world —
/// each running a single step (the probe measures setup, not
/// simulation).
pub fn probe_jobs(cfg: &FdConfig) -> Vec<Job> {
    let rate = *cfg.rates.last().expect("non-empty ladder");
    let scenario = registry::open_corridor(cfg.side, cfg.side, cfg.capacity_for(rate), rate)
        .with_seed(cfg.seed);
    (0..AMORTIZATION_REPLICAS)
        .map(|k| {
            Job::gpu(
                format!("cache_probe/{k}"),
                SimConfig::from_scenario(&scenario, ModelKind::aco()),
                StopCondition::Steps(1),
            )
        })
        .collect()
}

/// Measure how the world cache amortizes flow-field compilation across
/// the replicas of one ladder rung: a cold arm (cache off — every
/// replica compiles), then a cached arm on a pre-filled cache (every
/// replica fetches). Returns the measurement plus the cached arm's
/// report, whose rows carry the hit-path `setup` timings for the
/// results registry (under [`AMORTIZATION_BENCH`]).
pub fn measure_amortization(cfg: &FdConfig, workers: usize) -> (SetupAmortization, BatchReport) {
    let jobs = probe_jobs(cfg);
    let cold = Batch::new(workers).with_world_cache(false).run(&jobs);
    let batch = Batch::new(workers);
    let _fill = batch.run(&jobs); // first pass pays the single compile
    let warm = batch.run(&jobs); // every acquisition is now a cache hit
    let cold_setup_s = cold.setup_total.as_secs_f64();
    let cached_setup_s = warm.setup_total.as_secs_f64();
    (
        SetupAmortization {
            replicas: AMORTIZATION_REPLICAS,
            cold_setup_s,
            cached_setup_s,
            speedup: cold_setup_s / cached_setup_s.max(1e-9),
        },
        warm,
    )
}

/// Aggregate a finished sweep per rate.
pub fn aggregate(cfg: &FdConfig, report: &BatchReport) -> Vec<FdRow> {
    let cells = (cfg.side * cfg.side) as f64;
    cfg.rates
        .iter()
        .enumerate()
        .map(|(i, &rate)| {
            let rows: Vec<_> = report
                .results
                .iter()
                .filter(|r| r.label.starts_with(&format!("r{i:02}/")))
                .collect();
            let mean = |vals: Vec<f64>| -> f64 {
                if vals.is_empty() {
                    0.0
                } else {
                    vals.iter().sum::<f64>() / vals.len() as f64
                }
            };
            let flux = mean(rows.iter().filter_map(|r| r.flux).collect());
            let live = mean(
                rows.iter()
                    .filter_map(|r| r.live.map(|l| l as f64))
                    .collect(),
            );
            let steps = mean(rows.iter().map(|r| r.steps as f64).collect());
            let steady = rows
                .iter()
                .filter(|r| r.stop == StopReason::SteadyState)
                .count();
            let wall: Duration = rows.iter().map(|r| r.wall).sum();
            let total_steps: u64 = rows.iter().map(|r| r.steps).sum();
            FdRow {
                rate,
                flux,
                density: live / cells,
                live,
                steps,
                steady,
                replicas: rows.len(),
                bands: mean(rows.iter().filter_map(|r| r.bands).collect()),
                segregation: mean(rows.iter().filter_map(|r| r.segregation).collect()),
                gridlock_risk: mean(rows.iter().filter_map(|r| r.gridlock_risk).collect()),
                steps_per_sec: if wall.is_zero() {
                    0.0
                } else {
                    total_steps as f64 / wall.as_secs_f64()
                },
            }
        })
        .collect()
}

/// The rising-then-saturating sanity check the smoke run asserts, in
/// terms of *served load*: the offered load at rate `r` is `2r` crossings
/// per step (two streams). Free flow serves most of it, so flux rises
/// with the inflow; past the corridor's capacity the served fraction
/// collapses (plateau, then the jam branch), so the top of the ladder
/// serves a much smaller share than the bottom.
pub fn curve_rises_then_saturates(rows: &[FdRow]) -> bool {
    if rows.len() < 3 {
        return false;
    }
    let served = |r: &FdRow| r.flux / (2.0 * r.rate).max(1e-9);
    let first = rows.first().expect("non-empty");
    let last = rows.last().expect("non-empty");
    let peak_flux = rows.iter().map(|r| r.flux).fold(0.0f64, f64::max);
    // Rise: some rung clearly out-fluxes the bottom of the ladder.
    let rises = peak_flux > first.flux * 1.5;
    // Free flow at the bottom, saturation at the top.
    let free_flow = served(first) >= 0.5;
    let saturated = served(last) <= 0.6 * served(first);
    rises && free_flow && saturated
}

/// Render the diagram as a table (Markdown/CSV).
pub fn table(rows: &[FdRow]) -> Table {
    let mut t = Table::new(vec![
        "rate",
        "flux",
        "density",
        "live",
        "mean_steps",
        "steady",
        "bands",
        "segregation",
        "gridlock_risk",
        "steps_per_sec",
    ]);
    for r in rows {
        t.push_row(vec![
            f3(r.rate),
            f3(r.flux),
            format!("{:.5}", r.density),
            f3(r.live),
            f3(r.steps),
            format!("{}/{}", r.steady, r.replicas),
            f3(r.bands),
            f3(r.segregation),
            f3(r.gridlock_risk),
            format!("{:.0}", r.steps_per_sec),
        ]);
    }
    t
}

/// Deterministic JSON for `results/` (wall-clock series excluded).
pub fn to_json(scale: Scale, cfg: &FdConfig, rows: &[FdRow]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"pedsim.fundamental_diagram.v1\",\n");
    s.push_str(&format!("  \"scale\": \"{}\",\n", scale.label()));
    s.push_str(&format!("  \"side\": {},\n", cfg.side));
    s.push_str(&format!("  \"window\": {},\n", cfg.window));
    s.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        s.push_str(&format!(
            "    {{\"rate\": {}, \"flux\": {}, \"density\": {}, \"live\": {}, \
             \"mean_steps\": {}, \"steady\": {}, \"replicas\": {}, \"bands\": {}, \
             \"segregation\": {}, \"gridlock_risk\": {}}}{comma}\n",
            r.rate,
            r.flux,
            r.density,
            r.live,
            r.steps,
            r.steady,
            r.replicas,
            r.bands,
            r.segregation,
            r.gridlock_risk
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// The repo-root perf-trajectory record (`BENCH_fundamental_diagram.json`):
/// the flux/density curve plus the wall-clock steps/second series, and —
/// when measured — the world-cache setup amortization.
pub fn to_bench_json(
    scale: Scale,
    cfg: &FdConfig,
    rows: &[FdRow],
    amortization: Option<&SetupAmortization>,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"fundamental_diagram\",\n");
    s.push_str(&format!("  \"scale\": \"{}\",\n", scale.label()));
    s.push_str(&format!("  \"side\": {},\n", cfg.side));
    s.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        s.push_str(&format!(
            "    {{\"rate\": {}, \"flux\": {:.4}, \"density\": {:.6}, \
             \"steps_per_sec\": {:.1}}}{comma}\n",
            r.rate, r.flux, r.density, r.steps_per_sec
        ));
    }
    s.push_str("  ]");
    if let Some(a) = amortization {
        s.push_str(&format!(
            ",\n  \"setup_amortization\": {{\"replicas\": {}, \"cold_setup_s\": {:.6}, \
             \"cached_setup_s\": {:.6}, \"speedup\": {:.1}}}",
            a.replicas, a.cold_setup_s, a.cached_setup_s, a.speedup
        ));
    }
    s.push_str("\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_protocol_is_small_and_jobs_cover_the_ladder() {
        let cfg = FdConfig::for_scale(Scale::Smoke);
        let jobs = cfg.jobs();
        assert_eq!(jobs.len(), cfg.rates.len() * cfg.repeats as usize);
        assert!(cfg.steps <= 500);
        for job in &jobs {
            assert!(job.validate().is_ok());
            let scenario = job.cfg.scenario.as_ref().expect("open world");
            assert!(scenario.is_open());
        }
    }

    #[test]
    fn probe_replicas_share_one_compiled_world() {
        let cfg = FdConfig::for_scale(Scale::Smoke);
        let jobs = probe_jobs(&cfg);
        assert_eq!(jobs.len(), AMORTIZATION_REPLICAS as usize);
        // All replicas target the identical configuration (same seed!) —
        // the full-key cache case — and distinct labels keep their
        // report rows apart.
        let fingerprint = pedsim_core::world::CompiledWorld::fingerprint_of(&jobs[0].cfg);
        for job in &jobs {
            assert!(job.validate().is_ok());
            assert_eq!(
                pedsim_core::world::CompiledWorld::fingerprint_of(&job.cfg),
                fingerprint
            );
        }
        let labels: std::collections::BTreeSet<_> = jobs.iter().map(|j| j.label.clone()).collect();
        assert_eq!(labels.len(), jobs.len());
    }

    #[test]
    fn capacity_scales_with_rate() {
        let cfg = FdConfig::for_scale(Scale::Smoke);
        assert!(cfg.capacity_for(4.0) > cfg.capacity_for(0.25));
        assert!(cfg.capacity_for(0.0) >= 32);
    }

    #[test]
    fn saturation_check_wants_rise_and_capacity_collapse() {
        let mk = |points: &[(f64, f64)]| -> Vec<FdRow> {
            points
                .iter()
                .map(|&(rate, flux)| FdRow {
                    rate,
                    flux,
                    density: 0.0,
                    live: 0.0,
                    steps: 0.0,
                    steady: 0,
                    replicas: 1,
                    bands: 0.0,
                    segregation: 0.0,
                    gridlock_risk: 0.0,
                    steps_per_sec: 0.0,
                })
                .collect()
        };
        // Free flow at the bottom (≈ 90 % of the offered 2r served), peak
        // mid-ladder, jam branch at the top: the expected shape.
        assert!(curve_rises_then_saturates(&mk(&[
            (0.25, 0.45),
            (1.0, 1.7),
            (2.0, 3.5),
            (4.0, 2.0),
        ])));
        // A plateau (no decline) also counts as saturation.
        assert!(curve_rises_then_saturates(&mk(&[
            (0.25, 0.45),
            (1.0, 1.7),
            (2.0, 3.3),
            (4.0, 3.5),
        ])));
        // Perfectly proportional flux never saturates.
        assert!(!curve_rises_then_saturates(&mk(&[
            (0.25, 0.5),
            (1.0, 2.0),
            (2.0, 4.0),
            (4.0, 8.0),
        ])));
        // Flat from the start: no free-flow rise.
        assert!(!curve_rises_then_saturates(&mk(&[
            (0.25, 0.1),
            (1.0, 0.1),
            (2.0, 0.1),
            (4.0, 0.1),
        ])));
        // Too short.
        assert!(!curve_rises_then_saturates(&mk(&[(0.25, 0.5), (4.0, 3.0)])));
    }
}
