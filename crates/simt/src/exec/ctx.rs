//! Block and thread execution contexts.
//!
//! A kernel body receives a [`BlockCtx`] and structures its work as
//! *phases*: cooperative tile loads, [`BlockCtx::sync`] barriers, and
//! [`BlockCtx::threads`] passes that run every thread of the block in warp
//! order. Phase boundaries are the block barriers — the same structure a
//! CUDA kernel has around `__syncthreads()`, made explicit so that a single
//! host thread can execute a block without per-thread stacks.
//!
//! Each [`ThreadCtx`] exposes the SIMT identity (`threadIdx`/`blockIdx`
//! equivalents), a counter-based RNG stream (the CURAND substitute), and
//! the profiling hooks: [`ThreadCtx::branch`] for data-dependent branches
//! (recorded per warp for divergence accounting) and [`ThreadCtx::select`]
//! for the branchless logical-operator selection the paper uses instead.

use philox::StreamRng;

use crate::dim::Dim2;
use crate::memory::{MultiTile, Tile};
use crate::profile::KernelProfile;
use crate::warp::{WarpDivergence, WARP_SIZE};

/// Per-block execution context.
pub struct BlockCtx {
    pub(crate) block_idx: Dim2,
    pub(crate) grid: Dim2,
    pub(crate) block_dim: Dim2,
    pub(crate) seed: u64,
    pub(crate) salt: u64,
    pub(crate) profiling: bool,
    pub(crate) profile: KernelProfile,
    pub(crate) warp: WarpDivergence,
}

impl BlockCtx {
    pub(crate) fn new(
        block_idx: Dim2,
        grid: Dim2,
        block_dim: Dim2,
        seed: u64,
        salt: u64,
        profiling: bool,
    ) -> Self {
        Self {
            block_idx,
            grid,
            block_dim,
            seed,
            salt,
            profiling,
            profile: KernelProfile::default(),
            warp: WarpDivergence::new(),
        }
    }

    /// This block's index within the grid.
    #[inline]
    pub fn block_idx(&self) -> Dim2 {
        self.block_idx
    }

    /// Threads per block.
    #[inline]
    pub fn block_dim(&self) -> Dim2 {
        self.block_dim
    }

    /// Blocks per grid.
    #[inline]
    pub fn grid_dim(&self) -> Dim2 {
        self.grid
    }

    /// Global `(row, col)` of this block's thread `(0, 0)`.
    #[inline]
    pub fn origin(&self) -> (u32, u32) {
        (
            self.block_idx.y * self.block_dim.y,
            self.block_idx.x * self.block_dim.x,
        )
    }

    /// A block-level barrier marker (`__syncthreads`). Phases separated by
    /// [`BlockCtx::threads`] calls are already ordered; this records the
    /// barrier in the profile so kernel structure is costed.
    #[inline]
    pub fn sync(&mut self) {
        if self.profiling {
            self.profile.barriers += 1;
        }
    }

    /// Cooperatively load a shared tile covering this block's cells plus a
    /// `halo` ring (the paper's 18×18 load, Figure 3).
    pub fn load_tile<T: Copy>(&mut self, src: &[T], src_dim: Dim2, halo: u32, fill: T) -> Tile<T> {
        let (tile, loads) =
            Tile::load_with_halo(src, src_dim, self.origin(), self.block_dim, halo, fill);
        if self.profiling {
            self.profile.global_loads += loads;
            self.profile.shared_stores += tile.area() as u64;
        }
        tile
    }

    /// Cooperatively load one stacked tile per group plane (the combined
    /// local matrix of §IV.b — the paper's two-group 36×18 pheromone
    /// stack, generalised to N directional groups).
    pub fn load_multi_tile<T: Copy>(
        &mut self,
        srcs: &[&[T]],
        src_dim: Dim2,
        halo: u32,
        fill: T,
    ) -> MultiTile<T> {
        let (tile, loads) =
            MultiTile::load_with_halo(srcs, src_dim, self.origin(), self.block_dim, halo, fill);
        if self.profiling {
            self.profile.global_loads += loads;
            self.profile.shared_stores += (tile.bytes() / std::mem::size_of::<T>()) as u64;
        }
        tile
    }

    /// Run one phase: every thread of the block, in warp order (row-major
    /// `(ty, tx)`, 32 lanes per warp). Divergence recorded by
    /// [`ThreadCtx::branch`] is folded into the block profile per warp.
    pub fn threads<F: FnMut(&mut ThreadCtx)>(&mut self, mut f: F) {
        let bw = self.block_dim.x;
        let bh = self.block_dim.y;
        let n = bw * bh;
        for linear in 0..n {
            let tx = linear % bw;
            let ty = linear / bw;
            let mut t = ThreadCtx {
                tx,
                ty,
                linear,
                block_idx: self.block_idx,
                grid: self.grid,
                block_dim: self.block_dim,
                seed: self.seed,
                salt: self.salt,
                profiling: self.profiling,
                profile: &mut self.profile,
                warp: &mut self.warp,
                site: 0,
            };
            f(&mut t);
            if self.profiling {
                self.warp.lane_done();
                self.profile.threads += 1;
                if linear % WARP_SIZE == WARP_SIZE - 1 || linear == n - 1 {
                    let (div, uni) = self.warp.finish();
                    self.profile.divergent_branches += div;
                    self.profile.uniform_branches += uni;
                }
            }
        }
    }

    /// Record `n` global-memory loads performed outside a tile helper.
    #[inline]
    pub fn note_global_loads(&mut self, n: u64) {
        if self.profiling {
            self.profile.global_loads += n;
        }
    }

    /// Record `n` global-memory stores performed outside a tile helper.
    #[inline]
    pub fn note_global_stores(&mut self, n: u64) {
        if self.profiling {
            self.profile.global_stores += n;
        }
    }

    /// The block-local profile accumulated so far.
    #[inline]
    pub fn profile(&self) -> &KernelProfile {
        &self.profile
    }
}

/// Per-thread execution context for one [`BlockCtx::threads`] phase.
pub struct ThreadCtx<'b> {
    /// Thread x (column) within the block.
    pub tx: u32,
    /// Thread y (row) within the block.
    pub ty: u32,
    linear: u32,
    block_idx: Dim2,
    grid: Dim2,
    block_dim: Dim2,
    seed: u64,
    salt: u64,
    profiling: bool,
    profile: &'b mut KernelProfile,
    warp: &'b mut WarpDivergence,
    site: usize,
}

impl ThreadCtx<'_> {
    /// Global `(row, col)` of this thread (row = y axis).
    #[inline]
    pub fn global_rc(&self) -> (u32, u32) {
        (
            self.block_idx.y * self.block_dim.y + self.ty,
            self.block_idx.x * self.block_dim.x + self.tx,
        )
    }

    /// Row-major linear id over the whole launch extent
    /// (`grid.x·block.x` columns wide).
    #[inline]
    pub fn global_linear(&self) -> usize {
        let (r, c) = self.global_rc();
        r as usize * (self.grid.x as usize * self.block_dim.x as usize) + c as usize
    }

    /// Linear thread index within the block.
    #[inline]
    pub fn linear_in_block(&self) -> u32 {
        self.linear
    }

    /// Lane within the warp.
    #[inline]
    pub fn lane(&self) -> u32 {
        self.linear % WARP_SIZE
    }

    /// Warp index within the block.
    #[inline]
    pub fn warp(&self) -> u32 {
        self.linear / WARP_SIZE
    }

    /// The thread's CURAND-style stream for this launch: stream id = global
    /// thread id, counter offset = launch salt. Draws are independent of
    /// execution order and identical under both execution policies.
    #[inline]
    pub fn rng(&self) -> StreamRng {
        StreamRng::with_offset(self.seed, self.global_linear() as u64, self.salt << 4)
    }

    /// A stream for an arbitrary id (e.g. keyed by *cell* rather than by
    /// thread, so a recomputing neighbour derives the identical draw — the
    /// trick the movement kernel uses to stay scatter-free).
    #[inline]
    pub fn rng_for(&self, stream: u64) -> StreamRng {
        StreamRng::with_offset(self.seed, stream, self.salt << 4)
    }

    /// Evaluate a data-dependent branch condition, recording it for warp
    /// divergence accounting. Use for genuinely divergent control flow; use
    /// [`ThreadCtx::select`] for the paper's branchless alternative.
    #[inline]
    pub fn branch(&mut self, cond: bool) -> bool {
        if self.profiling {
            self.warp.record(self.site, cond);
            self.site += 1;
        }
        cond
    }

    /// Branchless select (the paper's "index operation and logical
    /// operators avoiding any warp divergence"). Counted as one ALU op, not
    /// a branch site.
    #[inline]
    pub fn select<T: Copy>(&mut self, cond: bool, if_true: T, if_false: T) -> T {
        if self.profiling {
            self.profile.alu_ops += 1;
        }
        // Both operands are already evaluated (no short-circuit), which is
        // precisely the SIMT-friendly property; the conditional move below
        // compiles branch-free.
        if cond {
            if_true
        } else {
            if_false
        }
    }

    /// Record `n` plain ALU operations.
    #[inline]
    pub fn alu(&mut self, n: u64) {
        if self.profiling {
            self.profile.alu_ops += n;
        }
    }

    /// Record `n` shared-memory reads.
    #[inline]
    pub fn note_shared_loads(&mut self, n: u64) {
        if self.profiling {
            self.profile.shared_loads += n;
        }
    }

    /// Record `n` global-memory loads.
    #[inline]
    pub fn note_global_loads(&mut self, n: u64) {
        if self.profiling {
            self.profile.global_loads += n;
        }
    }

    /// Record `n` global-memory stores.
    #[inline]
    pub fn note_global_stores(&mut self, n: u64) {
        if self.profiling {
            self.profile.global_stores += n;
        }
    }

    /// Record `n` atomic operations (the ablation's movement variant).
    #[inline]
    pub fn note_atomics(&mut self, n: u64) {
        if self.profiling {
            self.profile.atomic_ops += n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(profiling: bool) -> BlockCtx {
        BlockCtx::new(
            Dim2::new(1, 2),
            Dim2::new(4, 4),
            Dim2::new(16, 16),
            7,
            3,
            profiling,
        )
    }

    #[test]
    fn thread_identity() {
        let mut c = ctx(false);
        let mut seen = Vec::new();
        c.threads(|t| {
            if t.linear_in_block() == 17 {
                seen.push((t.tx, t.ty, t.lane(), t.warp(), t.global_rc()));
            }
        });
        // linear 17 in a 16-wide block: tx=1, ty=1; lane 17, warp 0.
        // block (x=1,y=2) → global row = 2*16+1 = 33, col = 1*16+1 = 17.
        assert_eq!(seen, vec![(1, 1, 17, 0, (33, 17))]);
    }

    #[test]
    fn global_linear_is_row_major_over_launch() {
        let mut c = BlockCtx::new(
            Dim2::new(0, 0),
            Dim2::new(2, 2),
            Dim2::new(8, 8),
            0,
            0,
            false,
        );
        let mut ids = Vec::new();
        c.threads(|t| ids.push(t.global_linear()));
        // Launch extent is 16 columns wide; block (0,0) covers rows 0..8,
        // cols 0..8 → first row ids 0..8, second row 16..24.
        assert_eq!(&ids[0..3], &[0, 1, 2]);
        assert_eq!(ids[8], 16);
    }

    #[test]
    fn divergence_counted_per_warp() {
        let mut c = ctx(true);
        c.threads(|t| {
            let lane = t.lane();
            t.branch(lane < 16); // diverges in every warp
            t.branch(true); // uniform in every warp
        });
        // 256 threads = 8 warps.
        assert_eq!(c.profile().divergent_branches, 8);
        assert_eq!(c.profile().uniform_branches, 8);
        assert_eq!(c.profile().threads, 256);
    }

    #[test]
    fn select_records_alu_not_branch() {
        let mut c = ctx(true);
        c.threads(|t| {
            let v = t.select(t.lane() < 16, 1u32, 2u32);
            assert!(v == 1 || v == 2);
        });
        assert_eq!(c.profile().divergent_branches, 0);
        assert_eq!(c.profile().alu_ops, 256);
    }

    #[test]
    fn rng_streams_are_per_thread_and_stable() {
        let mut c1 = ctx(false);
        let mut c2 = ctx(false);
        let mut draws1 = Vec::new();
        let mut draws2 = Vec::new();
        c1.threads(|t| draws1.push(t.rng().next_u32()));
        c2.threads(|t| draws2.push(t.rng().next_u32()));
        assert_eq!(draws1, draws2);
        // distinct threads, distinct draws (overwhelmingly)
        let unique: std::collections::HashSet<_> = draws1.iter().collect();
        assert!(unique.len() > 250);
    }

    #[test]
    fn rng_for_shared_stream_agrees_across_threads() {
        let mut c = ctx(false);
        let mut draws = Vec::new();
        c.threads(|t| draws.push(t.rng_for(999).next_u32()));
        assert!(draws.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn profiling_off_costs_nothing() {
        let mut c = ctx(false);
        c.threads(|t| {
            t.branch(t.lane() == 0);
            t.alu(5);
        });
        assert_eq!(c.profile(), &KernelProfile::default());
    }

    #[test]
    fn tile_load_counts() {
        let src = vec![1u8; 64 * 64];
        let mut c = BlockCtx::new(
            Dim2::new(1, 1),
            Dim2::new(4, 4),
            Dim2::new(16, 16),
            0,
            0,
            true,
        );
        let tile = c.load_tile(&src, Dim2::square(64), 1, 0u8);
        assert_eq!(tile.area(), 18 * 18);
        assert_eq!(c.profile().global_loads, 18 * 18); // fully interior
        assert_eq!(c.profile().shared_stores, 18 * 18);
    }
}
