//! Kernel launch machinery: configs, policies, contexts, and the launcher.

pub mod ctx;
pub mod explore;
pub mod pool;

pub use ctx::{BlockCtx, ThreadCtx};

use std::time::{Duration, Instant};

use crate::device::Device;
use crate::dim::Dim2;
use crate::error::{LaunchError, Result};
use crate::occupancy::{occupancy, Occupancy};
use crate::profile::{KernelProfile, ProfileSink};

/// How blocks are executed on the host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecPolicy {
    /// One host thread, blocks in row-major order. Deterministic and the
    /// baseline for the speedup figures.
    Sequential,
    /// Blocks distributed over a persistent worker pool — the virtual
    /// GPU's "SM array".
    Parallel {
        /// Number of host worker threads.
        workers: usize,
    },
}

impl ExecPolicy {
    /// Parallel over all available host cores.
    pub fn parallel_auto() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ExecPolicy::Parallel { workers }
    }
}

/// A kernel body, executed once per block.
///
/// Implementations must be `Sync`: under the parallel policy many blocks
/// run concurrently, sharing `&self`. All mutable state flows through the
/// memory-space types (`ScatterBuffer` views, block-local tiles).
pub trait BlockKernel: Sync {
    /// Execute one block.
    fn block(&self, ctx: &mut BlockCtx);

    /// Shared-memory bytes this kernel allocates per block (tile
    /// footprints). Used for launch validation and occupancy reporting.
    fn shared_bytes(&self) -> u32 {
        0
    }

    /// Estimated registers per thread (occupancy reporting only).
    fn regs_per_thread(&self) -> u32 {
        0
    }

    /// Kernel name for diagnostics.
    fn name(&self) -> &'static str {
        "kernel"
    }
}

/// Grid/block geometry plus the RNG keying for one launch.
#[derive(Debug, Clone, Copy)]
pub struct LaunchConfig {
    /// Blocks per grid.
    pub grid: Dim2,
    /// Threads per block.
    pub block: Dim2,
    /// Experiment seed (feeds every thread's RNG stream).
    pub seed: u64,
    /// Launch salt: must differ between launches that should draw fresh
    /// randomness (the engine uses `step * kernel_count + kernel_index`).
    pub salt: u64,
}

impl LaunchConfig {
    /// A grid of `grid` blocks of `block` threads.
    pub fn new(grid: Dim2, block: Dim2) -> Self {
        Self {
            grid,
            block,
            seed: 0,
            salt: 0,
        }
    }

    /// Enough `tile`-sized blocks to cover `extent` cells (the paper's
    /// "each thread is assigned to each cell" layout: 480×480 cells → 30×30
    /// blocks of 16×16).
    pub fn tiled_over(extent: Dim2, tile: Dim2) -> Self {
        Self::new(extent.tiles(tile), tile)
    }

    /// Set the experiment seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the launch salt.
    pub fn with_salt(mut self, salt: u64) -> Self {
        self.salt = salt;
        self
    }

    /// Total threads launched.
    pub fn total_threads(&self) -> u64 {
        self.grid.count() as u64 * self.block.count() as u64
    }
}

/// What a launch reports back.
#[derive(Debug, Clone)]
pub struct LaunchStats {
    /// Blocks executed.
    pub blocks: usize,
    /// Threads executed.
    pub threads: u64,
    /// Wall-clock duration of the launch.
    pub duration: Duration,
    /// Event counters (only when the device has profiling enabled).
    pub profile: Option<KernelProfile>,
    /// Occupancy of this configuration on the device's property sheet.
    pub occupancy: Option<Occupancy>,
}

impl Device {
    /// Launch `kernel` over `cfg`, blocking until every block has run.
    pub fn launch<K: BlockKernel>(&self, cfg: &LaunchConfig, kernel: &K) -> Result<LaunchStats> {
        if !cfg.grid.is_nonempty() || !cfg.block.is_nonempty() {
            return Err(LaunchError::EmptyLaunch {
                grid: cfg.grid,
                block: cfg.block,
            });
        }
        let threads_per_block = cfg.block.count() as u32;
        if threads_per_block > self.props().max_threads_per_block {
            return Err(LaunchError::BlockTooLarge {
                requested: threads_per_block,
                limit: self.props().max_threads_per_block,
            });
        }
        let shared = kernel.shared_bytes();
        if shared > self.props().shared_mem_per_block {
            return Err(LaunchError::SharedMemTooLarge {
                requested: shared,
                limit: self.props().shared_mem_per_block,
            });
        }

        let profiling = self.profiling();
        let sink = ProfileSink::new();
        let n_blocks = cfg.grid.count();
        let grid = cfg.grid;
        let block = cfg.block;
        let (seed, salt) = (cfg.seed, cfg.salt);

        let run_block = |i: usize| {
            let bidx = grid.delinear(i);
            let mut ctx = BlockCtx::new(bidx, grid, block, seed, salt, profiling);
            kernel.block(&mut ctx);
            if profiling {
                sink.add(ctx.profile());
            }
        };

        let start = Instant::now();
        match self.pool() {
            None => {
                for i in 0..n_blocks {
                    run_block(i);
                }
            }
            Some(pool) => pool.run(n_blocks, &run_block),
        }
        let duration = start.elapsed();

        Ok(LaunchStats {
            blocks: n_blocks,
            threads: cfg.total_threads(),
            duration,
            profile: profiling.then(|| sink.snapshot()),
            occupancy: occupancy(
                self.props(),
                threads_per_block,
                kernel.regs_per_thread(),
                shared,
            ),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::ScatterBuffer;

    struct Iota<'a> {
        out: &'a ScatterBuffer<u32>,
        width: u32,
    }

    impl BlockKernel for Iota<'_> {
        fn block(&self, ctx: &mut BlockCtx) {
            let view = self.out.view();
            let width = self.width;
            ctx.threads(|t| {
                let (r, c) = t.global_rc();
                if r < width && c < width {
                    view.write((r * width + c) as usize, r * 1000 + c);
                }
            });
        }
        fn name(&self) -> &'static str {
            "iota"
        }
    }

    fn run_iota(device: &Device, width: u32) -> Vec<u32> {
        let out = ScatterBuffer::<u32>::zeroed((width * width) as usize, true);
        out.begin_epoch();
        let cfg = LaunchConfig::tiled_over(Dim2::square(width), Dim2::square(16)).with_seed(1);
        device
            .launch(&cfg, &Iota { out: &out, width })
            .expect("launch");
        out.as_slice().to_vec()
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let seq = Device::sequential();
        let par = Device::builder()
            .policy(ExecPolicy::Parallel { workers: 4 })
            .build();
        assert_eq!(run_iota(&seq, 48), run_iota(&par, 48));
    }

    #[test]
    fn non_multiple_extent_guarded_by_kernel() {
        let d = Device::sequential();
        let vals = run_iota(&d, 20); // 20 is not a multiple of 16
        assert_eq!(vals[19 * 20 + 19], 19 * 1000 + 19);
    }

    #[test]
    fn empty_launch_rejected() {
        let d = Device::sequential();
        let cfg = LaunchConfig::new(Dim2::new(0, 1), Dim2::square(16));
        let out = ScatterBuffer::<u32>::zeroed(1, false);
        let err = d
            .launch(
                &cfg,
                &Iota {
                    out: &out,
                    width: 1,
                },
            )
            .unwrap_err();
        assert!(matches!(err, LaunchError::EmptyLaunch { .. }));
    }

    #[test]
    fn oversized_block_rejected() {
        let d = Device::sequential();
        let cfg = LaunchConfig::new(Dim2::square(1), Dim2::square(64)); // 4096 threads
        let out = ScatterBuffer::<u32>::zeroed(1, false);
        let err = d
            .launch(
                &cfg,
                &Iota {
                    out: &out,
                    width: 1,
                },
            )
            .unwrap_err();
        assert!(matches!(err, LaunchError::BlockTooLarge { .. }));
    }

    struct SharedHog;
    impl BlockKernel for SharedHog {
        fn block(&self, _ctx: &mut BlockCtx) {}
        fn shared_bytes(&self) -> u32 {
            64 * 1024
        }
    }

    #[test]
    fn oversized_shared_rejected() {
        let d = Device::sequential();
        let cfg = LaunchConfig::new(Dim2::square(1), Dim2::square(16));
        let err = d.launch(&cfg, &SharedHog).unwrap_err();
        assert!(matches!(err, LaunchError::SharedMemTooLarge { .. }));
    }

    #[test]
    fn stats_report_geometry_and_occupancy() {
        let d = Device::sequential();
        let out = ScatterBuffer::<u32>::zeroed(48 * 48, false);
        let cfg = LaunchConfig::tiled_over(Dim2::square(48), Dim2::square(16));
        let stats = d
            .launch(
                &cfg,
                &Iota {
                    out: &out,
                    width: 48,
                },
            )
            .unwrap();
        assert_eq!(stats.blocks, 9);
        assert_eq!(stats.threads, 9 * 256);
        let occ = stats.occupancy.expect("occupancy");
        assert!((occ.occupancy - 1.0).abs() < 1e-12); // 256-thread blocks
        assert!(stats.profile.is_none()); // profiling off by default
    }

    #[test]
    fn profiling_device_collects_counters() {
        let d = Device::builder()
            .policy(ExecPolicy::Sequential)
            .profiling(true)
            .build();
        let out = ScatterBuffer::<u32>::zeroed(32 * 32, false);
        let cfg = LaunchConfig::tiled_over(Dim2::square(32), Dim2::square(16));
        let stats = d
            .launch(
                &cfg,
                &Iota {
                    out: &out,
                    width: 32,
                },
            )
            .unwrap();
        let p = stats.profile.expect("profile");
        assert_eq!(p.threads, 4 * 256);
    }

    #[test]
    fn parallel_launch_is_repeatable() {
        let par = Device::parallel();
        let a = run_iota(&par, 64);
        let b = run_iota(&par, 64);
        assert_eq!(a, b);
    }
}
