//! Bounded interleaving exploration for the unsafe concurrency core.
//!
//! The pool's block scheduler (an atomic claim cursor) hands out blocks in
//! whatever order the OS happens to run the workers, so any single test
//! run observes exactly one interleaving. This module makes schedule
//! variation *reproducible*: a Philox-seeded permutation reorders the
//! block index space before dispatch, and [`explore`] re-runs a workload
//! under hundreds of such schedules asserting every one produces the same
//! result. A schedule-dependent outcome — a lost claim, an
//! order-sensitive reduction, a cross-tile write — surfaces as a
//! [`Divergence`] naming the offending seed, which then reproduces
//! deterministically.
//!
//! This is bounded exploration, not a model checker: it permutes the
//! *block issue order* (the schedule dimension the pooled backend actually
//! varies between hosts) rather than every instruction interleaving.
//! Paired with the write-set race detector (`audit-runtime` feature) it
//! covers the two failure modes the 3-phase claim protocol is designed
//! against: non-commutative claim resolution and cross-tile writes.

use philox::StreamRng;

use super::pool::WorkerPool;

/// Fisher–Yates permutation of `0..n`, keyed by `(seed, launch)` through
/// the same counter-based Philox generator the simulation uses. The same
/// key always yields the same permutation, on every host.
pub fn permutation(seed: u64, launch: u64, n: usize) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    let mut rng = StreamRng::new(seed, launch);
    // Classic Fisher–Yates: swap slot i with a uniform pick from 0..=i.
    for i in (1..n).rev() {
        let j = rng.bounded_u32(i as u32 + 1) as usize;
        perm.swap(i, j);
    }
    perm
}

/// Run `f` over `perm`'s index space on the pool, issuing block `perm[b]`
/// where an unpermuted launch would issue block `b`. Every index still
/// runs exactly once; only the claim order changes.
pub fn run_permuted(pool: &WorkerPool, perm: &[usize], f: &(dyn Fn(usize) + Sync)) {
    pool.run(perm.len(), &|b| f(perm[b]));
}

/// Run `f` over `perm` serially on the calling thread, in permuted order.
///
/// Use this (not [`run_permuted`]) for workloads that are *expected* to
/// conflict — e.g. seeding a deliberate tile overlap to prove a detector
/// catches it. Racing plain writes on the pool would be undefined
/// behaviour; serial permuted execution exercises the same order
/// sensitivity with none.
pub fn run_permuted_serial(perm: &[usize], f: &mut dyn FnMut(usize)) {
    for &b in perm {
        f(b);
    }
}

/// A schedule under which the workload's result diverged from schedule 0.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Seed of the diverging schedule.
    pub seed: u64,
    /// Position of that seed in the explored sequence (0-based).
    pub index: usize,
    /// Number of schedules that matched before the divergence.
    pub agreed: usize,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "schedule seed {} (#{}) diverged from the reference after {} agreeing schedule(s)",
            self.seed, self.index, self.agreed
        )
    }
}

/// Run the workload once per seed and require every result to equal the
/// first seed's. Returns the (shared) result, or the first [`Divergence`].
///
/// `run` receives the schedule seed and must be deterministic *given* the
/// seed — typically it wires the seed into
/// `PooledEngine::set_schedule_seed` or [`run_permuted`] and returns a
/// digest of the final state.
pub fn explore<R, I>(seeds: I, mut run: impl FnMut(u64) -> R) -> Result<R, Box<Divergence>>
where
    R: PartialEq,
    I: IntoIterator<Item = u64>,
{
    let mut seeds = seeds.into_iter();
    let first_seed = seeds.next().expect("explore needs at least one schedule");
    let reference = run(first_seed);
    for (i, seed) in seeds.enumerate() {
        if run(seed) != reference {
            return Err(Box::new(Divergence {
                seed,
                index: i + 1,
                agreed: i + 1,
            }));
        }
    }
    Ok(reference)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn permutation_is_a_bijection() {
        for n in [0usize, 1, 2, 7, 64, 257] {
            let p = permutation(42, 3, n);
            let mut seen = vec![false; n];
            assert_eq!(p.len(), n);
            for &v in &p {
                assert!(!seen[v], "duplicate index {v} for n={n}");
                seen[v] = true;
            }
        }
    }

    #[test]
    fn permutation_is_deterministic_and_keyed() {
        assert_eq!(permutation(7, 0, 100), permutation(7, 0, 100));
        assert_ne!(permutation(7, 0, 100), permutation(7, 1, 100));
        assert_ne!(permutation(7, 0, 100), permutation(8, 0, 100));
    }

    #[test]
    fn run_permuted_covers_every_index_once() {
        let pool = WorkerPool::new(4);
        let hits: Vec<AtomicU64> = (0..300).map(|_| AtomicU64::new(0)).collect();
        let perm = permutation(11, 0, 300);
        run_permuted(&pool, &perm, &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn explore_accepts_schedule_independent_work() {
        // Summation is commutative: every schedule agrees.
        let result = explore(0..32u64, |seed| {
            let perm = permutation(seed, 0, 50);
            let mut sum = 0u64;
            run_permuted_serial(&perm, &mut |i| sum += i as u64);
            sum
        });
        assert_eq!(result.expect("sums agree"), 49 * 50 / 2);
    }

    #[test]
    fn explore_flags_order_dependent_work() {
        // "Last writer wins" depends on issue order: must diverge.
        let err = explore(0..32u64, |seed| {
            let perm = permutation(seed, 0, 50);
            let mut last = 0usize;
            run_permuted_serial(&perm, &mut |i| last = i);
            last
        })
        .expect_err("order-dependent result must diverge");
        assert!(err.index > 0);
        assert!(err.agreed >= 1);
    }
}
