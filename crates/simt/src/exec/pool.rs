//! A persistent worker pool for block dispatch.
//!
//! The virtual device launches on the order of 10⁵ kernels per simulation
//! (four kernels × 25,000 steps), so the pool keeps its workers alive
//! across launches — spawning threads per launch would dominate runtime.
//! Blocks are claimed from a shared atomic cursor in small chunks
//! (work-stealing by competition, like the GPU's hardware block scheduler
//! handing CTAs to free SMs).
//!
//! The pool is deliberately not rayon: the launch semantics (one job at a
//! time, all workers on it, caller blocked until completion, per-launch
//! profiling) mirror a CUDA stream's behaviour and are part of the
//! substrate being reproduced.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::{Condvar, Mutex};

/// The job payload workers execute: a lifetime-erased `Fn(block_index)`.
struct Job {
    /// Type- and lifetime-erased closure pointer. Valid for the duration of
    /// the `run` call that installed it (see SAFETY in [`WorkerPool::run`]).
    f: *const (dyn Fn(usize) + Sync),
    /// Number of items (blocks) in the job.
    n: usize,
    /// Items claimed per cursor grab.
    chunk: usize,
}

// SAFETY: the raw pointer is only dereferenced while the installing `run`
// call is blocked waiting for completion, which keeps the referent alive.
unsafe impl Send for Job {}

struct State {
    job: Option<Job>,
    /// Bumped once per job; workers use it to detect new work.
    generation: u64,
    /// Workers still executing the current job.
    active: usize,
    /// First panic payload caught during the current job, re-raised on the
    /// launching thread once every worker has drained.
    panic: Option<Box<dyn std::any::Any + Send>>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    work_cv: Condvar,
    done_cv: Condvar,
    cursor: AtomicUsize,
}

/// A fixed-size pool of block-execution workers.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    workers: usize,
}

impl WorkerPool {
    /// Spawn `workers` threads (≥ 1).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                job: None,
                generation: 0,
                active: 0,
                panic: None,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            cursor: AtomicUsize::new(0),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("simt-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn simt worker")
            })
            .collect();
        Self {
            shared,
            handles,
            workers,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Execute `f(0..n)` across the pool; returns when every index ran.
    ///
    /// Launches are serialized: the pool runs one job at a time, and a
    /// concurrent `run` (e.g. two batch replicas sharing one parallel
    /// device) queues until the in-flight job drains instead of
    /// corrupting it.
    ///
    /// Panics in workers are contained per claimed chunk: the panicking
    /// chunk is abandoned at the faulting index, the remaining workers
    /// drain the rest of the job, and the *first* panic payload is
    /// re-raised here on the launching thread. The pool itself stays
    /// usable — a subsequent `run` starts from clean state.
    pub fn run(&self, n: usize, f: &(dyn Fn(usize) + Sync)) {
        if n == 0 {
            return;
        }
        // SAFETY: we erase the lifetime of `f` to store it in the shared
        // state. The reference stays valid because this function does not
        // return until all workers have finished the job and decremented
        // `active`, after which no worker touches the pointer again.
        let f_static: *const (dyn Fn(usize) + Sync) = unsafe {
            std::mem::transmute::<*const (dyn Fn(usize) + Sync), *const (dyn Fn(usize) + Sync)>(
                f as *const _,
            )
        };
        let chunk = (n / (self.workers * 4)).max(1);
        let mut st = self.shared.state.lock();
        while st.job.is_some() {
            self.shared.done_cv.wait(&mut st);
        }
        self.shared.cursor.store(0, Ordering::Relaxed);
        st.job = Some(Job {
            f: f_static,
            n,
            chunk,
        });
        st.generation += 1;
        st.active = self.workers;
        self.shared.work_cv.notify_all();
        while st.active > 0 {
            self.shared.done_cv.wait(&mut st);
        }
        st.job = None;
        let payload = st.panic.take();
        // Wake any launcher queued behind this job.
        self.shared.done_cv.notify_all();
        drop(st);
        if let Some(payload) = payload {
            std::panic::resume_unwind(payload);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock();
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut seen_generation = 0u64;
    loop {
        let (f, n, chunk) = {
            let mut st = shared.state.lock();
            loop {
                if st.shutdown {
                    return;
                }
                if st.generation > seen_generation {
                    seen_generation = st.generation;
                    let job = st.job.as_ref().expect("generation bumped without job");
                    break (job.f, job.n, job.chunk);
                }
                shared.work_cv.wait(&mut st);
            }
        };
        // SAFETY: see `run` — the closure outlives the job execution.
        let f = unsafe { &*f };
        loop {
            let start = shared.cursor.fetch_add(chunk, Ordering::Relaxed);
            if start >= n {
                break;
            }
            let end = (start + chunk).min(n);
            // Contain panics per chunk so one faulting block cannot hang
            // the pool: the chunk is abandoned, the first payload is kept
            // for the launching thread, and this worker keeps claiming.
            let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                for i in start..end {
                    f(i);
                }
            }));
            if let Err(payload) = outcome {
                let mut st = shared.state.lock();
                if st.panic.is_none() {
                    st.panic = Some(payload);
                }
            }
        }
        let mut st = shared.state.lock();
        st.active -= 1;
        if st.active == 0 {
            shared.done_cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_every_index_exactly_once() {
        let pool = WorkerPool::new(4);
        let hits: Vec<AtomicU64> = (0..1000).map(|_| AtomicU64::new(0)).collect();
        pool.run(1000, &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn sequential_jobs_reuse_workers() {
        let pool = WorkerPool::new(3);
        let sum = AtomicU64::new(0);
        for _ in 0..50 {
            pool.run(64, &|i| {
                sum.fetch_add(i as u64, Ordering::Relaxed);
            });
        }
        assert_eq!(sum.load(Ordering::Relaxed), 50 * (63 * 64 / 2));
    }

    #[test]
    fn zero_items_is_noop() {
        let pool = WorkerPool::new(2);
        pool.run(0, &|_| panic!("must not run"));
    }

    #[test]
    fn single_worker_pool_works() {
        let pool = WorkerPool::new(1);
        let sum = AtomicU64::new(0);
        pool.run(10, &|i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 45);
    }

    #[test]
    fn drop_joins_cleanly() {
        let pool = WorkerPool::new(8);
        pool.run(100, &|_| {});
        drop(pool); // must not hang
    }

    #[test]
    fn concurrent_launches_serialize_cleanly() {
        let pool = WorkerPool::new(4);
        let hits: Vec<AtomicU64> = (0..512).map(|_| AtomicU64::new(0)).collect();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..20 {
                        pool.run(512, &|i| {
                            hits[i].fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        // 4 launchers × 20 jobs, each covering every index exactly once.
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 80));
    }

    #[test]
    fn worker_panic_reraises_and_pool_survives() {
        let pool = WorkerPool::new(4);
        let hits: Vec<AtomicU64> = (0..200).map(|_| AtomicU64::new(0)).collect();
        let res = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(200, &|i| {
                if i == 37 {
                    panic!("kernel fault at {i}");
                }
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
        }));
        let payload = res.expect_err("panic must reach the launching thread");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("kernel fault at 37"), "{msg}");
        // No index ran twice, and the job did not hang.
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) <= 1));

        // The next launch starts from clean state and runs every index.
        let sum = AtomicU64::new(0);
        pool.run(64, &|i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 63 * 64 / 2);
    }

    #[test]
    fn every_worker_panicking_still_drains() {
        let pool = WorkerPool::new(3);
        for _ in 0..3 {
            let res = std::panic::catch_unwind(AssertUnwindSafe(|| {
                pool.run(48, &|_| panic!("all items fault"));
            }));
            assert!(res.is_err());
        }
        let sum = AtomicU64::new(0);
        pool.run(10, &|i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 45);
    }

    #[test]
    fn captures_environment() {
        let pool = WorkerPool::new(2);
        let data = vec![1u64; 256];
        let sum = AtomicU64::new(0);
        pool.run(data.len(), &|i| {
            sum.fetch_add(data[i], Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 256);
    }
}
