//! A persistent worker pool for block dispatch.
//!
//! The virtual device launches on the order of 10⁵ kernels per simulation
//! (four kernels × 25,000 steps), so the pool keeps its workers alive
//! across launches — spawning threads per launch would dominate runtime.
//! Blocks are claimed from a shared atomic cursor in small chunks
//! (work-stealing by competition, like the GPU's hardware block scheduler
//! handing CTAs to free SMs).
//!
//! The pool is deliberately not rayon: the launch semantics (one job at a
//! time, all workers on it, caller blocked until completion, per-launch
//! profiling) mirror a CUDA stream's behaviour and are part of the
//! substrate being reproduced.

use std::panic::AssertUnwindSafe;
use std::ptr::NonNull;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::{Condvar, Mutex};

/// The pool's single lifetime-erasure site: a `NonNull` handle to the
/// job closure whose scope contract lives here and nowhere else.
///
/// ## Scope contract
///
/// A `JobHandle` is created from the `&(dyn Fn(usize) + Sync)` passed to
/// [`WorkerPool::run`] and is valid **only inside that call's lifetime**:
///
/// 1. `run` installs the handle under the state lock and then blocks on
///    `done_cv` until every worker has decremented `active` to zero;
/// 2. workers only obtain the handle by copying it out of the installed
///    [`Job`] (under the same lock) and only call [`JobHandle::get`]
///    between that copy and their `active` decrement;
/// 3. `run` clears the job before returning, and the debug-mode
///    `executing` counter asserts no worker is still inside the closure
///    at that point.
///
/// Together these guarantee the referent outlives every dereference, so
/// the erased lifetime is never actually exceeded.
#[derive(Clone, Copy)]
struct JobHandle {
    f: NonNull<dyn Fn(usize) + Sync>,
}

impl JobHandle {
    fn new(f: &(dyn Fn(usize) + Sync)) -> Self {
        // SAFETY: lifetime erasure to `'static` for storage only; every
        // dereference happens through `get`, whose contract (the scope
        // contract above) keeps it inside the real borrow.
        let f: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(f) };
        Self {
            f: NonNull::from(f),
        }
    }

    /// Borrow the closure.
    ///
    /// SAFETY: the caller must be inside the scope-contract window above
    /// (worker rule 2) — the installing `run` call is still blocked, so
    /// the referent is alive.
    unsafe fn get<'scope>(&self) -> &'scope (dyn Fn(usize) + Sync) {
        // SAFETY: non-null by construction from a reference; liveness per
        // this method's contract.
        unsafe { self.f.as_ref() }
    }
}

// SAFETY: the handle is a pointer to a `Sync` closure (`&dyn Fn + Sync`
// is itself Send), moved to workers only inside the scope-contract
// window during which the referent is kept alive by the blocked `run`.
unsafe impl Send for JobHandle {}

/// The job payload workers execute: a lifetime-erased `Fn(block_index)`.
struct Job {
    /// Handle to the job closure (see [`JobHandle`] for the contract).
    f: JobHandle,
    /// Number of items (blocks) in the job.
    n: usize,
    /// Items claimed per cursor grab.
    chunk: usize,
}

struct State {
    job: Option<Job>,
    /// Bumped once per job; workers use it to detect new work.
    generation: u64,
    /// Workers still executing the current job.
    active: usize,
    /// First panic payload caught during the current job, re-raised on the
    /// launching thread once every worker has drained.
    panic: Option<Box<dyn std::any::Any + Send>>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    work_cv: Condvar,
    done_cv: Condvar,
    cursor: AtomicUsize,
    /// Debug-mode check of the [`JobHandle`] scope contract: workers
    /// currently *inside* the erased closure. Must be zero whenever
    /// `run` observes `active == 0`.
    #[cfg(debug_assertions)]
    executing: AtomicUsize,
}

// The block index currently executing on this thread, when inside a
// pool job. The pooled backend's write-set race detector uses this to
// attribute scatter writes to tiles.
#[cfg(feature = "audit-runtime")]
thread_local! {
    static CURRENT_BLOCK: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

/// The block index the calling thread is currently executing for its
/// pool, if any (`audit-runtime` builds only).
#[cfg(feature = "audit-runtime")]
pub fn current_block() -> Option<usize> {
    CURRENT_BLOCK.with(|c| c.get())
}

/// A fixed-size pool of block-execution workers.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    workers: usize,
}

impl WorkerPool {
    /// Spawn `workers` threads (≥ 1).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                job: None,
                generation: 0,
                active: 0,
                panic: None,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            cursor: AtomicUsize::new(0),
            #[cfg(debug_assertions)]
            executing: AtomicUsize::new(0),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("simt-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn simt worker")
            })
            .collect();
        Self {
            shared,
            handles,
            workers,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Execute `f(0..n)` across the pool; returns when every index ran.
    ///
    /// Launches are serialized: the pool runs one job at a time, and a
    /// concurrent `run` (e.g. two batch replicas sharing one parallel
    /// device) queues until the in-flight job drains instead of
    /// corrupting it.
    ///
    /// Panics in workers are contained per claimed chunk: the panicking
    /// chunk is abandoned at the faulting index, the remaining workers
    /// drain the rest of the job, and the *first* panic payload is
    /// re-raised here on the launching thread. The pool itself stays
    /// usable — a subsequent `run` starts from clean state.
    pub fn run(&self, n: usize, f: &(dyn Fn(usize) + Sync)) {
        if n == 0 {
            return;
        }
        // The one lifetime-erasure step; see `JobHandle` for the scope
        // contract this function upholds by blocking until the job drains.
        let handle = JobHandle::new(f);
        let chunk = (n / (self.workers * 4)).max(1);
        let mut st = self.shared.state.lock();
        while st.job.is_some() {
            self.shared.done_cv.wait(&mut st);
        }
        // ordering: relaxed — the cursor reset is published to workers by
        // the state-mutex release below, not by the atomic itself.
        self.shared.cursor.store(0, Ordering::Relaxed);
        st.job = Some(Job {
            f: handle,
            n,
            chunk,
        });
        st.generation += 1;
        st.active = self.workers;
        self.shared.work_cv.notify_all();
        while st.active > 0 {
            self.shared.done_cv.wait(&mut st);
        }
        // JobHandle scope contract, rule 3 (debug builds): once `active`
        // hit zero no worker may still be inside the erased closure.
        // ordering: relaxed — the mutex acquired around each worker's
        // `active` decrement ordered its `executing` updates before this.
        #[cfg(debug_assertions)]
        debug_assert_eq!(
            self.shared.executing.load(Ordering::Relaxed),
            0,
            "worker still inside the job closure after drain"
        );
        st.job = None;
        let payload = st.panic.take();
        // Wake any launcher queued behind this job.
        self.shared.done_cv.notify_all();
        drop(st);
        if let Some(payload) = payload {
            std::panic::resume_unwind(payload);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock();
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut seen_generation = 0u64;
    loop {
        let (handle, n, chunk) = {
            let mut st = shared.state.lock();
            loop {
                if st.shutdown {
                    return;
                }
                if st.generation > seen_generation {
                    seen_generation = st.generation;
                    let job = st.job.as_ref().expect("generation bumped without job");
                    break (job.f, job.n, job.chunk);
                }
                shared.work_cv.wait(&mut st);
            }
        };
        // SAFETY: scope-contract window (rule 2 on `JobHandle`) — the
        // installing `run` call is still blocked on `done_cv` until this
        // worker decrements `active` below, so the closure is alive.
        let f = unsafe { handle.get() };
        loop {
            // ordering: relaxed — the cursor is a pure claim ticket; item
            // data was published by the state-mutex handoff, and claimed
            // ranges never overlap regardless of ordering.
            let start = shared.cursor.fetch_add(chunk, Ordering::Relaxed);
            if start >= n {
                break;
            }
            let end = (start + chunk).min(n);
            // ordering: relaxed — `executing` is a debug-only counter read
            // after the mutex-ordered drain; see the assert in `run`.
            #[cfg(debug_assertions)]
            shared.executing.fetch_add(1, Ordering::Relaxed);
            // Contain panics per chunk so one faulting block cannot hang
            // the pool: the chunk is abandoned, the first payload is kept
            // for the launching thread, and this worker keeps claiming.
            let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                for i in start..end {
                    #[cfg(feature = "audit-runtime")]
                    CURRENT_BLOCK.with(|c| c.set(Some(i)));
                    f(i);
                }
            }));
            #[cfg(feature = "audit-runtime")]
            CURRENT_BLOCK.with(|c| c.set(None));
            // ordering: relaxed — same debug-counter argument as above.
            #[cfg(debug_assertions)]
            shared.executing.fetch_sub(1, Ordering::Relaxed);
            if let Err(payload) = outcome {
                let mut st = shared.state.lock();
                if st.panic.is_none() {
                    st.panic = Some(payload);
                }
            }
        }
        let mut st = shared.state.lock();
        st.active -= 1;
        if st.active == 0 {
            shared.done_cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_every_index_exactly_once() {
        let pool = WorkerPool::new(4);
        let hits: Vec<AtomicU64> = (0..1000).map(|_| AtomicU64::new(0)).collect();
        pool.run(1000, &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn sequential_jobs_reuse_workers() {
        let pool = WorkerPool::new(3);
        let sum = AtomicU64::new(0);
        for _ in 0..50 {
            pool.run(64, &|i| {
                sum.fetch_add(i as u64, Ordering::Relaxed);
            });
        }
        assert_eq!(sum.load(Ordering::Relaxed), 50 * (63 * 64 / 2));
    }

    #[test]
    fn zero_items_is_noop() {
        let pool = WorkerPool::new(2);
        pool.run(0, &|_| panic!("must not run"));
    }

    #[test]
    fn single_worker_pool_works() {
        let pool = WorkerPool::new(1);
        let sum = AtomicU64::new(0);
        pool.run(10, &|i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 45);
    }

    #[test]
    fn drop_joins_cleanly() {
        let pool = WorkerPool::new(8);
        pool.run(100, &|_| {});
        drop(pool); // must not hang
    }

    #[test]
    fn concurrent_launches_serialize_cleanly() {
        let pool = WorkerPool::new(4);
        let hits: Vec<AtomicU64> = (0..512).map(|_| AtomicU64::new(0)).collect();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..20 {
                        pool.run(512, &|i| {
                            hits[i].fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        // 4 launchers × 20 jobs, each covering every index exactly once.
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 80));
    }

    #[test]
    fn worker_panic_reraises_and_pool_survives() {
        let pool = WorkerPool::new(4);
        let hits: Vec<AtomicU64> = (0..200).map(|_| AtomicU64::new(0)).collect();
        let res = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(200, &|i| {
                if i == 37 {
                    panic!("kernel fault at {i}");
                }
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
        }));
        let payload = res.expect_err("panic must reach the launching thread");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("kernel fault at 37"), "{msg}");
        // No index ran twice, and the job did not hang.
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) <= 1));

        // The next launch starts from clean state and runs every index.
        let sum = AtomicU64::new(0);
        pool.run(64, &|i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 63 * 64 / 2);
    }

    #[test]
    fn every_worker_panicking_still_drains() {
        let pool = WorkerPool::new(3);
        for _ in 0..3 {
            let res = std::panic::catch_unwind(AssertUnwindSafe(|| {
                pool.run(48, &|_| panic!("all items fault"));
            }));
            assert!(res.is_err());
        }
        let sum = AtomicU64::new(0);
        pool.run(10, &|i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 45);
    }

    #[test]
    fn captures_environment() {
        let pool = WorkerPool::new(2);
        let data = vec![1u64; 256];
        let sum = AtomicU64::new(0);
        pool.run(data.len(), &|i| {
            sum.fetch_add(data[i], Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 256);
    }
}
