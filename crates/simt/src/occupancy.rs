//! The Fermi occupancy calculator.
//!
//! The paper states (§IV.a): *"Maintaining 100 % occupancy, the maximum
//! number of threads that could be launched in a single thread block is
//! 256"* and sizes every kernel at 256 threads per block. This module
//! re-implements the CUDA Occupancy Calculator's arithmetic for compute
//! capability 2.0 so that claim is *checked*, not assumed (see the unit
//! tests), and so ablation benches can ask what-if questions about register
//! and shared-memory pressure.
//!
//! Model (CC 2.0 allocation granularities):
//! * warps are allocated whole (block warps = ⌈threads/32⌉);
//! * registers are allocated per warp in units of 64 registers
//!   (`regs/thread × 32`, rounded up to 64);
//! * shared memory is allocated per block in 128-byte units;
//! * resident blocks per SM are limited by: the block slots (8), the warp
//!   slots (48), register capacity (32 K), and shared capacity (48 KiB).

use crate::device::DeviceProps;
use crate::warp::{warps_for, WARP_SIZE};

/// Shared-memory allocation granularity on CC 2.0, bytes.
const SHARED_ALLOC_GRANULARITY: u32 = 128;
/// Register allocation granularity per warp on CC 2.0.
const REG_ALLOC_GRANULARITY: u32 = 64;

/// What stops more blocks from becoming resident.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Limiter {
    /// The per-SM block-slot limit.
    BlockSlots,
    /// The per-SM warp-slot (thread) limit.
    WarpSlots,
    /// Register file capacity.
    Registers,
    /// Shared memory capacity.
    SharedMemory,
}

/// Result of an occupancy query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Occupancy {
    /// Blocks resident per SM.
    pub active_blocks_per_sm: u32,
    /// Warps resident per SM.
    pub active_warps_per_sm: u32,
    /// Fraction of the SM's warp slots in use (1.0 = 100 %).
    pub occupancy: f64,
    /// Which resource is the bottleneck.
    pub limiter: Limiter,
}

/// Compute occupancy for a kernel configuration on `props`.
///
/// `threads_per_block` must be non-zero and within the device limit;
/// `regs_per_thread` and `shared_bytes_per_block` may be zero (meaning
/// "not limiting").
pub fn occupancy(
    props: &DeviceProps,
    threads_per_block: u32,
    regs_per_thread: u32,
    shared_bytes_per_block: u32,
) -> Option<Occupancy> {
    if threads_per_block == 0
        || threads_per_block > props.max_threads_per_block
        || shared_bytes_per_block > props.shared_mem_per_block
    {
        return None;
    }

    let warps_per_block = warps_for(threads_per_block);
    let max_warps_per_sm = props.max_threads_per_sm / WARP_SIZE;

    let limit_block_slots = props.max_blocks_per_sm;
    let limit_warp_slots = max_warps_per_sm / warps_per_block;

    let limit_regs = if regs_per_thread == 0 {
        u32::MAX
    } else {
        let regs_per_warp = (regs_per_thread * WARP_SIZE).next_multiple_of(REG_ALLOC_GRANULARITY);
        let regs_per_block = regs_per_warp * warps_per_block;
        if regs_per_block > props.regs_per_sm {
            0
        } else {
            props.regs_per_sm / regs_per_block
        }
    };

    let limit_shared = if shared_bytes_per_block == 0 {
        u32::MAX
    } else {
        let alloc = shared_bytes_per_block.next_multiple_of(SHARED_ALLOC_GRANULARITY);
        props.shared_mem_per_sm / alloc
    };

    let (active, limiter) = [
        (limit_block_slots, Limiter::BlockSlots),
        (limit_warp_slots, Limiter::WarpSlots),
        (limit_regs, Limiter::Registers),
        (limit_shared, Limiter::SharedMemory),
    ]
    .into_iter()
    .min_by_key(|&(n, _)| n)
    .expect("non-empty candidate list");

    let active_warps = active * warps_per_block;
    Some(Occupancy {
        active_blocks_per_sm: active,
        active_warps_per_sm: active_warps,
        occupancy: f64::from(active_warps) / f64::from(max_warps_per_sm),
        limiter,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fermi() -> DeviceProps {
        DeviceProps::gtx_560_ti_448()
    }

    /// The paper's configuration: 256-thread blocks reach 100 % occupancy
    /// on CC 2.0 (6 resident blocks × 8 warps = 48 warps).
    #[test]
    fn paper_config_is_full_occupancy() {
        let o = occupancy(&fermi(), 256, 20, 8 * 1024).unwrap();
        assert_eq!(o.active_blocks_per_sm, 6);
        assert_eq!(o.active_warps_per_sm, 48);
        assert!((o.occupancy - 1.0).abs() < 1e-12);
    }

    /// …and 256 is the *maximum* such size in the paper's sense: the next
    /// hardware-sensible step (512 threads) still reaches 100 % only with 3
    /// blocks, but 384+ threads with the paper's shared usage would not fit
    /// 100 % at e.g. 320 threads (10 warps → ⌊48/10⌋ = 4 blocks = 40 warps).
    #[test]
    fn non_divisor_block_sizes_lose_occupancy() {
        let o = occupancy(&fermi(), 320, 0, 0).unwrap();
        assert_eq!(o.active_warps_per_sm, 40);
        assert!(o.occupancy < 1.0);
        assert_eq!(o.limiter, Limiter::WarpSlots);
    }

    /// Small blocks are limited by the 8-block slot limit: 128-thread
    /// blocks cap at 8 × 4 = 32 warps = 67 %.
    #[test]
    fn small_blocks_hit_block_slot_limit() {
        let o = occupancy(&fermi(), 128, 0, 0).unwrap();
        assert_eq!(o.limiter, Limiter::BlockSlots);
        assert_eq!(o.active_blocks_per_sm, 8);
        assert!((o.occupancy - 32.0 / 48.0).abs() < 1e-12);
    }

    /// Register pressure: 63 regs/thread on a 256-thread block.
    /// 63·32 = 2016 → 2048 per warp → 16384 per block → 2 blocks.
    #[test]
    fn register_pressure_limits() {
        let o = occupancy(&fermi(), 256, 63, 0).unwrap();
        assert_eq!(o.limiter, Limiter::Registers);
        assert_eq!(o.active_blocks_per_sm, 2);
    }

    /// Shared-memory pressure: 24 KiB per block → 2 blocks per SM.
    #[test]
    fn shared_pressure_limits() {
        let o = occupancy(&fermi(), 256, 0, 24 * 1024).unwrap();
        assert_eq!(o.limiter, Limiter::SharedMemory);
        assert_eq!(o.active_blocks_per_sm, 2);
    }

    /// The paper's actual shared usage in the movement kernel: an 18×18 u8
    /// mat tile + 18×18 u32 index tile + 32×16 f32 pheromone tile ≈ 3.7 KiB
    /// still sustains 6 blocks (shared limit would allow 12).
    #[test]
    fn paper_movement_kernel_shared_fits() {
        let shared = 18 * 18 + 18 * 18 * 4 + 32 * 16 * 4;
        let o = occupancy(&fermi(), 256, 20, shared as u32).unwrap();
        assert_eq!(o.active_blocks_per_sm, 6);
        assert!((o.occupancy - 1.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(occupancy(&fermi(), 0, 0, 0).is_none());
        assert!(occupancy(&fermi(), 2048, 0, 0).is_none());
        assert!(occupancy(&fermi(), 256, 0, 64 * 1024).is_none());
    }

    #[test]
    fn impossible_register_demand_zero_blocks() {
        // 256 regs/thread would need 64 KiB of registers per block.
        let o = occupancy(&fermi(), 1024, 256, 0).unwrap();
        assert_eq!(o.active_blocks_per_sm, 0);
        assert_eq!(o.limiter, Limiter::Registers);
        assert_eq!(o.occupancy, 0.0);
    }
}
