//! Warp decomposition and divergence tracking.
//!
//! Threads of a block execute in warps of 32. Lane order within a block is
//! row-major over `(ty, tx)` — the same order CUDA assigns `threadIdx` to
//! lanes — so a 16×16 block is 8 warps of two rows each, exactly the layout
//! the paper's halo-load index mapping relies on ("There are 32 threads
//! involved for the first 2 rows … this whole warp is used to load the halo
//! elements").
//!
//! Divergence is tracked structurally: every call to
//! [`crate::exec::ThreadCtx::branch`] is a *branch site*, identified by its
//! ordinal position in the thread's execution. After a warp finishes a
//! phase, a site counts as **divergent** if its lanes did not all evaluate
//! the same condition (or did not all reach it), and **uniform** otherwise.
//! This is the SIMT reconvergence-stack view of divergence, reduced to
//! counting.

/// Threads per warp, fixed at the CUDA value.
pub const WARP_SIZE: u32 = 32;

/// Lane index of a thread within its block (row-major thread order).
#[inline]
pub fn lane_of(thread_linear: u32) -> u32 {
    thread_linear % WARP_SIZE
}

/// Warp index of a thread within its block (row-major thread order).
#[inline]
pub fn warp_of(thread_linear: u32) -> u32 {
    thread_linear / WARP_SIZE
}

/// Number of warps needed for `threads` threads (ceiling).
#[inline]
pub fn warps_for(threads: u32) -> u32 {
    threads.div_ceil(WARP_SIZE)
}

/// Per-warp branch-site bookkeeping for one phase of one warp.
///
/// `record(site, cond)` is called by each lane as it executes; `finish`
/// folds the sites into (divergent, uniform) counts and resets.
#[derive(Debug, Default)]
pub struct WarpDivergence {
    /// Per-site: (lanes that reached the site, lanes that evaluated true).
    sites: Vec<(u32, u32)>,
    /// Lanes that executed in this warp this phase.
    lanes_seen: u32,
}

impl WarpDivergence {
    /// Create an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that the current lane evaluated branch site `site` as `cond`.
    #[inline]
    pub fn record(&mut self, site: usize, cond: bool) {
        if self.sites.len() <= site {
            self.sites.resize(site + 1, (0, 0));
        }
        let entry = &mut self.sites[site];
        entry.0 += 1;
        entry.1 += u32::from(cond);
    }

    /// Note that one more lane ran this phase.
    #[inline]
    pub fn lane_done(&mut self) {
        self.lanes_seen += 1;
    }

    /// Fold the recorded sites into `(divergent, uniform)` counts and reset
    /// the tracker for the next warp.
    pub fn finish(&mut self) -> (u64, u64) {
        let lanes = self.lanes_seen;
        let mut divergent = 0;
        let mut uniform = 0;
        for &(reached, true_count) in &self.sites {
            // A site is uniform iff every lane reached it and all lanes
            // agreed. Lanes skipping the site (early return / guard) is
            // itself divergence.
            if reached == lanes && (true_count == 0 || true_count == reached) {
                uniform += 1;
            } else {
                divergent += 1;
            }
        }
        self.sites.clear();
        self.lanes_seen = 0;
        (divergent, uniform)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_and_warp_layout() {
        // 16x16 block: thread (ty=0..16, tx=0..16), linear = ty*16+tx.
        // First two rows (linear 0..32) form warp 0 — the paper's halo warp.
        assert_eq!(warp_of(0), 0);
        assert_eq!(warp_of(31), 0);
        assert_eq!(warp_of(32), 1);
        assert_eq!(lane_of(33), 1);
        assert_eq!(warps_for(256), 8);
        assert_eq!(warps_for(1), 1);
        assert_eq!(warps_for(0), 0);
    }

    #[test]
    fn uniform_branch_counts_uniform() {
        let mut w = WarpDivergence::new();
        for _ in 0..32 {
            w.record(0, true);
            w.lane_done();
        }
        assert_eq!(w.finish(), (0, 1));
    }

    #[test]
    fn split_branch_counts_divergent() {
        let mut w = WarpDivergence::new();
        for lane in 0..32 {
            w.record(0, lane < 16);
            w.lane_done();
        }
        assert_eq!(w.finish(), (1, 0));
    }

    #[test]
    fn skipped_site_counts_divergent() {
        let mut w = WarpDivergence::new();
        for lane in 0..32 {
            w.record(0, true);
            if lane == 0 {
                w.record(1, true); // only lane 0 reaches site 1
            }
            w.lane_done();
        }
        let (div, uni) = w.finish();
        assert_eq!((div, uni), (1, 1));
    }

    #[test]
    fn finish_resets() {
        let mut w = WarpDivergence::new();
        for lane in 0..32 {
            w.record(0, lane == 0);
            w.lane_done();
        }
        assert_eq!(w.finish(), (1, 0));
        // Fresh phase: all uniform again.
        for _ in 0..32 {
            w.record(0, false);
            w.lane_done();
        }
        assert_eq!(w.finish(), (0, 1));
    }
}
