//! Device descriptions and the device handle kernels are launched on.
//!
//! [`DeviceProps`] carries the hardware attributes the paper's Table I
//! lists; [`Device`] couples a property set with an execution policy and a
//! worker pool.

use std::sync::Arc;

use crate::exec::pool::WorkerPool;
use crate::exec::ExecPolicy;

/// Static properties of a (real or virtual) device.
///
/// The fields mirror the CUDA device attributes the paper's implementation
/// depends on: they feed the occupancy calculator and the cycle model, and
/// `table1` prints them next to the paper's hardware table.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProps {
    /// Marketing name.
    pub name: String,
    /// Compute capability `(major, minor)`; `(0, 0)` for host CPUs.
    pub compute_capability: (u32, u32),
    /// Number of streaming multiprocessors (or host cores).
    pub sm_count: u32,
    /// Scalar cores per SM (32 on Fermi).
    pub cores_per_sm: u32,
    /// Threads per warp.
    pub warp_size: u32,
    /// Hardware limit on threads per block.
    pub max_threads_per_block: u32,
    /// Hardware limit on resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Hardware limit on resident blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Shared memory per SM, bytes.
    pub shared_mem_per_sm: u32,
    /// Shared memory limit per block, bytes.
    pub shared_mem_per_block: u32,
    /// 32-bit registers per SM.
    pub regs_per_sm: u32,
    /// Core clock, MHz.
    pub clock_mhz: u32,
    /// Device memory, MiB.
    pub global_mem_mib: u32,
}

impl DeviceProps {
    /// The paper's GPU: GeForce GTX 560 Ti (448-core edition), Fermi CC 2.0,
    /// 14 SMs × 32 cores, 1.464 GHz, 1.25 GB GDDR5 (paper Table I).
    pub fn gtx_560_ti_448() -> Self {
        Self {
            name: "NVIDIA GeForce GTX 560 Ti (448 cores)".into(),
            compute_capability: (2, 0),
            sm_count: 14,
            cores_per_sm: 32,
            warp_size: 32,
            max_threads_per_block: 1024,
            max_threads_per_sm: 1536,
            max_blocks_per_sm: 8,
            shared_mem_per_sm: 48 * 1024,
            shared_mem_per_block: 48 * 1024,
            regs_per_sm: 32 * 1024,
            clock_mhz: 1464,
            global_mem_mib: 1280,
        }
    }

    /// The paper's CPU: Intel Core i7-930 (4 cores, 2.8 GHz, 6 GB DDR3).
    pub fn i7_930() -> Self {
        Self {
            name: "Intel Core i7-930".into(),
            compute_capability: (0, 0),
            sm_count: 4,
            cores_per_sm: 1,
            warp_size: 1,
            max_threads_per_block: 1,
            max_threads_per_sm: 2,
            max_blocks_per_sm: 1,
            shared_mem_per_sm: 256 * 1024,
            shared_mem_per_block: 256 * 1024,
            regs_per_sm: 0,
            clock_mhz: 2800,
            global_mem_mib: 6 * 1024,
        }
    }

    /// A descriptor for the host this binary runs on (the actual substrate
    /// executing the virtual GPU). Core count is introspected.
    pub fn host() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get() as u32)
            .unwrap_or(1);
        Self {
            name: format!("host CPU ({cores} hardware threads)"),
            compute_capability: (0, 0),
            sm_count: cores,
            cores_per_sm: 1,
            warp_size: 1,
            max_threads_per_block: 1,
            max_threads_per_sm: 2,
            max_blocks_per_sm: 1,
            shared_mem_per_sm: 0,
            shared_mem_per_block: 0,
            regs_per_sm: 0,
            clock_mhz: 0,
            global_mem_mib: 0,
        }
    }
}

impl Default for DeviceProps {
    fn default() -> Self {
        Self::gtx_560_ti_448()
    }
}

/// A virtual device: properties + execution policy (+ worker pool when
/// parallel). Cheap to clone (`Arc` inside).
#[derive(Clone)]
pub struct Device {
    inner: Arc<DeviceInner>,
}

struct DeviceInner {
    props: DeviceProps,
    policy: ExecPolicy,
    pool: Option<WorkerPool>,
    profiling: bool,
}

impl Device {
    /// Start building a device.
    pub fn builder() -> DeviceBuilder {
        DeviceBuilder::default()
    }

    /// Shorthand: sequential device with default (paper GPU) properties.
    pub fn sequential() -> Self {
        Self::builder().policy(ExecPolicy::Sequential).build()
    }

    /// Shorthand: parallel device using all host cores.
    pub fn parallel() -> Self {
        Self::builder().policy(ExecPolicy::parallel_auto()).build()
    }

    /// Device properties.
    pub fn props(&self) -> &DeviceProps {
        &self.inner.props
    }

    /// The execution policy this device launches with.
    pub fn policy(&self) -> ExecPolicy {
        self.inner.policy
    }

    /// Whether launches collect `KernelProfile` counters.
    pub fn profiling(&self) -> bool {
        self.inner.profiling
    }

    pub(crate) fn pool(&self) -> Option<&WorkerPool> {
        self.inner.pool.as_ref()
    }

    /// Number of host worker threads used by the parallel policy (1 when
    /// sequential).
    pub fn worker_count(&self) -> usize {
        match self.inner.policy {
            ExecPolicy::Sequential => 1,
            ExecPolicy::Parallel { workers } => workers.max(1),
        }
    }
}

impl std::fmt::Debug for Device {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Device")
            .field("name", &self.inner.props.name)
            .field("policy", &self.inner.policy)
            .field("profiling", &self.inner.profiling)
            .finish()
    }
}

/// Builder for [`Device`].
#[derive(Debug, Default)]
pub struct DeviceBuilder {
    props: Option<DeviceProps>,
    policy: Option<ExecPolicy>,
    profiling: bool,
}

impl DeviceBuilder {
    /// Set the device property sheet (defaults to the paper's GTX 560 Ti).
    pub fn props(mut self, props: DeviceProps) -> Self {
        self.props = Some(props);
        self
    }

    /// Set the execution policy (defaults to parallel over all host cores).
    pub fn policy(mut self, policy: ExecPolicy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Enable per-launch profiling counters (divergence, memory ops).
    /// Off by default; wall-clock benches should leave it off.
    pub fn profiling(mut self, on: bool) -> Self {
        self.profiling = on;
        self
    }

    /// Construct the device (spawning the worker pool if parallel).
    pub fn build(self) -> Device {
        let policy = self.policy.unwrap_or_else(ExecPolicy::parallel_auto);
        let pool = match policy {
            ExecPolicy::Sequential => None,
            ExecPolicy::Parallel { workers } => Some(WorkerPool::new(workers.max(1))),
        };
        Device {
            inner: Arc::new(DeviceInner {
                props: self.props.unwrap_or_default(),
                policy,
                pool,
                profiling: self.profiling,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_gpu_matches_table1() {
        let g = DeviceProps::gtx_560_ti_448();
        // Paper Table I: 448 processor cores, 1.464 GHz, 1.25 GB.
        assert_eq!(g.sm_count * g.cores_per_sm, 448);
        assert_eq!(g.clock_mhz, 1464);
        assert_eq!(g.global_mem_mib, 1280);
        assert_eq!(g.compute_capability, (2, 0));
    }

    #[test]
    fn paper_cpu_matches_table1() {
        let c = DeviceProps::i7_930();
        assert_eq!(c.sm_count, 4);
        assert_eq!(c.clock_mhz, 2800);
    }

    #[test]
    fn builder_defaults() {
        let d = Device::builder().build();
        assert_eq!(d.props().name, DeviceProps::gtx_560_ti_448().name);
        assert!(d.worker_count() >= 1);
    }

    #[test]
    fn sequential_has_no_pool() {
        let d = Device::sequential();
        assert!(d.pool().is_none());
        assert_eq!(d.worker_count(), 1);
    }
}
