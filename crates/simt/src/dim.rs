//! Two-dimensional launch geometry.
//!
//! The paper's kernels are all 2-D (the environment is a 2-D grid; the tour
//! kernel is agents × 8), so the launch hierarchy is fixed at two
//! dimensions. `x` is the fast (column) axis, `y` the slow (row) axis,
//! matching CUDA's `threadIdx.x` being contiguous within a warp.

/// A 2-D extent or index: `x` columns (fast axis), `y` rows (slow axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Dim2 {
    /// Extent along the fast (column) axis.
    pub x: u32,
    /// Extent along the slow (row) axis.
    pub y: u32,
}

impl Dim2 {
    /// Construct from `(x, y)`.
    #[inline]
    pub const fn new(x: u32, y: u32) -> Self {
        Self { x, y }
    }

    /// A square extent.
    #[inline]
    pub const fn square(n: u32) -> Self {
        Self { x: n, y: n }
    }

    /// Total number of elements (`x · y`).
    #[inline]
    pub const fn count(self) -> usize {
        self.x as usize * self.y as usize
    }

    /// Row-major linearisation of an index within this extent.
    #[inline]
    pub const fn linear(self, idx: Dim2) -> usize {
        idx.y as usize * self.x as usize + idx.x as usize
    }

    /// Inverse of [`Dim2::linear`].
    #[inline]
    pub const fn delinear(self, lin: usize) -> Dim2 {
        Dim2 {
            x: (lin % self.x as usize) as u32,
            y: (lin / self.x as usize) as u32,
        }
    }

    /// Number of tiles of size `tile` needed to cover this extent
    /// (ceiling division per axis).
    #[inline]
    pub const fn tiles(self, tile: Dim2) -> Dim2 {
        Dim2 {
            x: self.x.div_ceil(tile.x),
            y: self.y.div_ceil(tile.y),
        }
    }

    /// True when both extents are non-zero.
    #[inline]
    pub const fn is_nonempty(self) -> bool {
        self.x > 0 && self.y > 0
    }
}

impl std::fmt::Display for Dim2 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_roundtrip() {
        let d = Dim2::new(480, 480);
        for &(x, y) in &[(0, 0), (479, 0), (0, 479), (479, 479), (13, 250)] {
            let idx = Dim2::new(x, y);
            assert_eq!(d.delinear(d.linear(idx)), idx);
        }
    }

    #[test]
    fn linear_is_row_major() {
        let d = Dim2::new(10, 4);
        assert_eq!(d.linear(Dim2::new(3, 2)), 23);
    }

    #[test]
    fn tiles_cover() {
        // 480 is a multiple of 16 (the paper chooses the environment to be):
        assert_eq!(Dim2::square(480).tiles(Dim2::square(16)), Dim2::square(30));
        // non-multiples round up:
        assert_eq!(Dim2::new(17, 33).tiles(Dim2::square(16)), Dim2::new(2, 3));
    }

    #[test]
    fn count_matches() {
        assert_eq!(Dim2::new(16, 16).count(), 256);
        assert_eq!(Dim2::new(0, 5).count(), 0);
        assert!(!Dim2::new(0, 5).is_nonempty());
    }
}
