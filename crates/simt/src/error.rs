//! Launch-time error types.

use crate::dim::Dim2;

/// Result alias for launch operations.
pub type Result<T> = std::result::Result<T, LaunchError>;

/// Reasons a kernel launch can be rejected before any block runs.
///
/// These mirror the CUDA runtime's `cudaErrorInvalidConfiguration` family:
/// the virtual device enforces the same structural limits a real device
/// would, so kernels that would not launch on the paper's GPU do not launch
/// here either.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LaunchError {
    /// Grid or block extent has a zero component.
    EmptyLaunch {
        /// Offending grid extent.
        grid: Dim2,
        /// Offending block extent.
        block: Dim2,
    },
    /// Block exceeds the device's `max_threads_per_block`.
    BlockTooLarge {
        /// Requested threads per block.
        requested: u32,
        /// Device limit.
        limit: u32,
    },
    /// Declared shared memory exceeds the per-block limit.
    SharedMemTooLarge {
        /// Requested bytes.
        requested: u32,
        /// Device limit.
        limit: u32,
    },
}

impl std::fmt::Display for LaunchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaunchError::EmptyLaunch { grid, block } => {
                write!(f, "empty launch: grid {grid}, block {block}")
            }
            LaunchError::BlockTooLarge { requested, limit } => {
                write!(
                    f,
                    "block of {requested} threads exceeds device limit {limit}"
                )
            }
            LaunchError::SharedMemTooLarge { requested, limit } => {
                write!(
                    f,
                    "shared memory request of {requested} B exceeds per-block limit {limit} B"
                )
            }
        }
    }
}

impl std::error::Error for LaunchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = LaunchError::BlockTooLarge {
            requested: 2048,
            limit: 1024,
        };
        let s = e.to_string();
        assert!(s.contains("2048") && s.contains("1024"));
    }
}
