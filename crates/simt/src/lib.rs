//! # simt — a virtual GPU for data-driven simulation kernels
//!
//! The paper this repository reproduces runs its pedestrian models as CUDA
//! kernels on a Fermi-class GPU (GeForce GTX 560 Ti, compute capability
//! 2.0). No GPU is available here, so this crate rebuilds the *execution
//! model* the paper's contribution lives in:
//!
//! * a **launch hierarchy** — kernels run over a grid of blocks of threads,
//!   threads grouped into warps of 32 ([`exec`]);
//! * **memory spaces** — global buffers, read-only constant buffers, and
//!   per-block shared tiles with the paper's 18×18 halo loads ([`memory`]);
//! * **scatter-to-gather enforcement** — scattered global writes go through
//!   a [`memory::ScatterBuffer`] whose checked mode panics on any write
//!   race, which is exactly the property the paper's scatter-to-gather
//!   transformation establishes on real hardware;
//! * a **warp-divergence profiler** and a simple cycle model ([`profile`]),
//!   so the paper's "avoid warp divergence with logical operators" claims
//!   become measurable;
//! * the **Fermi occupancy calculator** ([`occupancy`]), verifying the
//!   paper's "256 threads per block keeps 100 % occupancy" configuration;
//! * two execution policies ([`exec::ExecPolicy`]): `Sequential`
//!   (deterministic, single host thread) and `Parallel` (blocks distributed
//!   over a persistent crossbeam worker pool). Because all randomness is
//!   counter-based (`philox`), both policies produce **bit-identical**
//!   simulation trajectories; only wall-clock differs.
//!
//! The crate is model-agnostic: nothing in it knows about pedestrians. The
//! pedestrian kernels live in `pedsim-core`.
//!
//! ## Quick example
//!
//! ```
//! use simt::exec::{BlockKernel, BlockCtx, ExecPolicy, LaunchConfig};
//! use simt::memory::ScatterBuffer;
//! use simt::{Device, Dim2};
//!
//! // A kernel that writes each cell's global linear id into a buffer.
//! struct Iota<'a> {
//!     out: &'a ScatterBuffer<u32>,
//! }
//!
//! impl BlockKernel for Iota<'_> {
//!     fn block(&self, ctx: &mut BlockCtx) {
//!         let out = self.out.view();
//!         ctx.threads(|t| {
//!             let gid = t.global_linear();
//!             if gid < out.len() {
//!                 out.write(gid, gid as u32);
//!             }
//!         });
//!     }
//! }
//!
//! let device = Device::builder().policy(ExecPolicy::Sequential).build();
//! let out = ScatterBuffer::<u32>::zeroed(64, true);
//! let cfg = LaunchConfig::tiled_over(Dim2::new(8, 8), Dim2::new(4, 4));
//! device.launch(&cfg, &Iota { out: &out }).unwrap();
//! assert_eq!(out.as_slice()[63], 63);
//! ```

#![warn(missing_docs)]
// Soundness gates (DESIGN.md §14): every unsafe operation inside an
// unsafe fn needs its own block + SAFETY comment, and stale blocks fail
// the build instead of rotting.
#![deny(unsafe_op_in_unsafe_fn)]
#![deny(unused_unsafe)]

pub mod device;
pub mod dim;
pub mod error;
pub mod exec;
pub mod memory;
pub mod occupancy;
pub mod profile;
pub mod warp;

pub use device::{Device, DeviceBuilder, DeviceProps};
pub use dim::Dim2;
pub use error::{LaunchError, Result};
pub use exec::{BlockCtx, BlockKernel, ExecPolicy, LaunchConfig, LaunchStats, ThreadCtx};
pub use occupancy::{Limiter, Occupancy};
pub use profile::{CycleModel, KernelProfile};
pub use warp::WARP_SIZE;
