//! Device memory spaces.
//!
//! Three spaces mirror the CUDA hierarchy the paper uses:
//!
//! * [`global`] — large buffers all threads can read, plus
//!   [`ScatterBuffer`] for the *disjoint scattered writes* that the paper's
//!   scatter-to-gather transformation guarantees (checked at runtime in
//!   tests), and [`AtomicBuffer`] for the atomic-operation alternative the
//!   paper rejects (kept for the ablation benches);
//! * [`constant`] — small read-only buffers (the paper's pre-computed
//!   distance matrix and move-length table live here);
//! * [`shared`] — per-block tiles with the 18×18 halo-load pattern of the
//!   paper's Figure 3.

pub mod constant;
pub mod global;
pub mod shared;

pub use constant::ConstantBuffer;
pub use global::{AtomicBuffer, ScatterBuffer, ScatterView};
pub use shared::{MultiTile, Tile};
