//! Constant memory: small read-only buffers shared by all threads.
//!
//! The paper keeps two tables here: the pre-computed distance matrix
//! (§IV.a — "This distance matrix is copied to the constant memory of the
//! GPU, as the values in the matrix remain constant") and the per-direction
//! tour-length increments (§IV.d). On hardware, constant memory is cached
//! and broadcast; here the analogue is an immutable `Arc` the launcher can
//! hand to every block for free.

use std::sync::Arc;

/// An immutable device-resident table.
#[derive(Debug, Clone)]
pub struct ConstantBuffer<T> {
    data: Arc<[T]>,
}

impl<T: Copy> ConstantBuffer<T> {
    /// Upload a table.
    pub fn new(data: Vec<T>) -> Self {
        Self { data: data.into() }
    }

    /// Read one element.
    #[inline]
    pub fn get(&self, i: usize) -> T {
        self.data[i]
    }

    /// The whole table.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl<T: Copy> From<Vec<T>> for ConstantBuffer<T> {
    fn from(v: Vec<T>) -> Self {
        Self::new(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_cheap_clone() {
        let c = ConstantBuffer::new(vec![1.0f32, 2.0, 3.0]);
        let d = c.clone();
        assert_eq!(c.get(1), 2.0);
        assert_eq!(d.as_slice(), &[1.0, 2.0, 3.0]);
        assert_eq!(d.len(), 3);
        assert!(!d.is_empty());
    }
}
