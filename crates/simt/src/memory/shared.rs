//! Per-block shared-memory tiles and halo loading.
//!
//! The paper's stencil kernels give each 16×16 thread block an 18×18 shared
//! tile: the 16×16 *internal* elements plus a one-cell *halo* ring loaded
//! from the neighbouring tiles (Figure 3). Cells outside the environment
//! read as a caller-chosen fill value (a wall for the occupancy matrix).
//!
//! On hardware the halo load is a hand-written warp index mapping to avoid
//! divergence; here [`Tile::load_with_halo`] performs the same data
//! movement and reports how many global words it touched so the profiler
//! can account for it. Tiles are block-local values — created inside
//! `BlockKernel::block`, dropped at block end — which is exactly the
//! lifetime shared memory has.

use crate::dim::Dim2;

/// A block-local 2-D tile with a halo ring, addressed in *global*
/// coordinates.
#[derive(Debug, Clone)]
pub struct Tile<T> {
    /// Global row of the first (top-left) element held, i.e. inner origin − halo.
    base_r: i64,
    /// Global column of the first element held.
    base_c: i64,
    /// Tile width including halo.
    w: usize,
    /// Tile height including halo.
    h: usize,
    data: Vec<T>,
}

impl<T: Copy> Tile<T> {
    /// Load a tile covering `inner` cells at `origin` (global coords) plus a
    /// `halo`-cell ring, from a row-major `src` of extent `src_dim`.
    /// Out-of-bounds cells are filled with `fill`.
    ///
    /// Returns the tile and the number of in-bounds global words read (the
    /// profiler's `global_loads` contribution; the shared-store count is
    /// simply the tile area).
    pub fn load_with_halo(
        src: &[T],
        src_dim: Dim2,
        origin: (u32, u32),
        inner: Dim2,
        halo: u32,
        fill: T,
    ) -> (Self, u64) {
        debug_assert_eq!(src.len(), src_dim.count(), "source extent mismatch");
        let base_r = i64::from(origin.0) - i64::from(halo);
        let base_c = i64::from(origin.1) - i64::from(halo);
        let h = (inner.y + 2 * halo) as usize;
        let w = (inner.x + 2 * halo) as usize;
        let mut data = Vec::with_capacity(w * h);
        let mut loads = 0u64;
        // In-bounds column span of the tile, clamped once per launch
        // geometry instead of bounds-checking every element: interior rows
        // become one slice copy (fully-interior tiles — every block but the
        // grid rim — take the memcpy path for the whole row).
        let c_lo = base_c.clamp(0, i64::from(src_dim.x)) as usize;
        let c_hi = (base_c + w as i64).clamp(0, i64::from(src_dim.x)) as usize;
        // Clamped so a tile entirely outside the columns (c_lo == c_hi,
        // which takes the all-fill row path) cannot underflow the fills.
        let left_fill = (c_lo as i64 - base_c).clamp(0, w as i64) as usize;
        let right_fill = w - left_fill - (c_hi - c_lo);
        for dr in 0..h as i64 {
            let r = base_r + dr;
            if r < 0 || r >= i64::from(src_dim.y) || c_lo == c_hi {
                data.extend(std::iter::repeat_n(fill, w));
                continue;
            }
            let row_off = r as usize * src_dim.x as usize;
            data.extend(std::iter::repeat_n(fill, left_fill));
            data.extend_from_slice(&src[row_off + c_lo..row_off + c_hi]);
            data.extend(std::iter::repeat_n(fill, right_fill));
            loads += (c_hi - c_lo) as u64;
        }
        (
            Self {
                base_r,
                base_c,
                w,
                h,
                data,
            },
            loads,
        )
    }

    /// Read the element at global coordinates `(r, c)`.
    ///
    /// Panics (debug) if the coordinate is outside the tile+halo extent —
    /// the shared-memory out-of-bounds access the paper's Figure 3 exists
    /// to prevent.
    #[inline]
    pub fn get(&self, r: i64, c: i64) -> T {
        let lr = r - self.base_r;
        let lc = c - self.base_c;
        debug_assert!(
            lr >= 0 && (lr as usize) < self.h && lc >= 0 && (lc as usize) < self.w,
            "tile access ({r},{c}) outside tile based at ({},{}) size {}x{}",
            self.base_r,
            self.base_c,
            self.w,
            self.h,
        );
        self.data[lr as usize * self.w + lc as usize]
    }

    /// Overwrite the element at global coordinates `(r, c)` (e.g. the
    /// paper's in-tile pheromone evaporation before write-back).
    #[inline]
    pub fn set(&mut self, r: i64, c: i64, v: T) {
        let lr = (r - self.base_r) as usize;
        let lc = (c - self.base_c) as usize;
        debug_assert!(lr < self.h && lc < self.w);
        self.data[lr * self.w + lc] = v;
    }

    /// Total elements held (inner + halo) — the shared-memory footprint.
    #[inline]
    pub fn area(&self) -> usize {
        self.w * self.h
    }

    /// Shared-memory bytes this tile occupies.
    #[inline]
    pub fn bytes(&self) -> usize {
        self.area() * std::mem::size_of::<T>()
    }
}

/// N same-shape tiles selected by a group index: one stacked local matrix
/// per directional group's field, addressed so that "a pedestrian label
/// is used to access proper cells, avoiding warp divergences" (§IV.b).
/// The paper's single 36×18 (and 32×16) combined top/bottom pheromone
/// matrix is the two-plane special case.
#[derive(Debug, Clone)]
pub struct MultiTile<T> {
    tiles: Vec<Tile<T>>,
}

impl<T: Copy> MultiTile<T> {
    /// Load every plane with identical geometry from `srcs` (one source
    /// slice per group, all of extent `src_dim`).
    pub fn load_with_halo(
        srcs: &[&[T]],
        src_dim: Dim2,
        origin: (u32, u32),
        inner: Dim2,
        halo: u32,
        fill: T,
    ) -> (Self, u64) {
        assert!(!srcs.is_empty(), "multi tile needs at least one plane");
        let mut tiles = Vec::with_capacity(srcs.len());
        let mut loads = 0u64;
        for src in srcs {
            let (t, l) = Tile::load_with_halo(src, src_dim, origin, inner, halo, fill);
            tiles.push(t);
            loads += l;
        }
        (Self { tiles }, loads)
    }

    /// Number of planes held.
    #[inline]
    pub fn planes(&self) -> usize {
        self.tiles.len()
    }

    /// Read from plane `which` at global `(r, c)`.
    #[inline]
    pub fn get(&self, which: usize, r: i64, c: i64) -> T {
        self.tiles[which].get(r, c)
    }

    /// Write to plane `which` at global `(r, c)`.
    #[inline]
    pub fn set(&mut self, which: usize, r: i64, c: i64, v: T) {
        self.tiles[which].set(r, c, v);
    }

    /// Combined shared-memory bytes.
    #[inline]
    pub fn bytes(&self) -> usize {
        self.tiles.iter().map(Tile::bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_8x8() -> Vec<u32> {
        (0..64).collect()
    }

    #[test]
    fn interior_tile_matches_source() {
        let src = grid_8x8();
        let (tile, loads) =
            Tile::load_with_halo(&src, Dim2::square(8), (2, 2), Dim2::square(4), 1, 999);
        // 6x6 tile fully interior → all 36 loads from global.
        assert_eq!(loads, 36);
        for r in 1..7 {
            for c in 1..7 {
                assert_eq!(tile.get(r, c), (r * 8 + c) as u32);
            }
        }
        assert_eq!(tile.area(), 36);
    }

    #[test]
    fn border_tile_fills_outside() {
        let src = grid_8x8();
        let (tile, loads) =
            Tile::load_with_halo(&src, Dim2::square(8), (0, 0), Dim2::square(4), 1, 999);
        // Top and left halo rows are outside: 5x5 in-bounds of a 6x6 tile.
        assert_eq!(loads, 25);
        assert_eq!(tile.get(-1, -1), 999);
        assert_eq!(tile.get(-1, 3), 999);
        assert_eq!(tile.get(3, -1), 999);
        assert_eq!(tile.get(0, 0), 0);
        assert_eq!(tile.get(4, 4), 36);
    }

    #[test]
    fn paper_geometry_18x18() {
        // The paper's exact configuration: 16x16 inner + halo = 18x18.
        let src = vec![7u8; 480 * 480];
        let (tile, _) =
            Tile::load_with_halo(&src, Dim2::square(480), (16, 32), Dim2::square(16), 1, 0);
        assert_eq!(tile.area(), 18 * 18);
        assert_eq!(tile.bytes(), 324);
        assert_eq!(tile.get(15, 31), 7); // halo cell from the neighbour tile
        assert_eq!(tile.get(32, 48), 7); // far corner halo
    }

    #[test]
    fn set_then_get() {
        let src = vec![0f32; 64];
        let (mut tile, _) =
            Tile::load_with_halo(&src, Dim2::square(8), (0, 0), Dim2::square(4), 1, 0.0);
        tile.set(2, 2, 3.5);
        assert_eq!(tile.get(2, 2), 3.5);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn out_of_tile_access_panics() {
        let src = grid_8x8();
        let (tile, _) = Tile::load_with_halo(&src, Dim2::square(8), (2, 2), Dim2::square(4), 1, 0);
        // (2,2) origin, 4x4 inner, halo 1 → valid global rows 1..=6.
        tile.get(7, 2);
    }

    #[test]
    fn multi_tile_selects_plane() {
        let planes: Vec<Vec<f32>> = (0..4).map(|g| vec![g as f32; 64]).collect();
        let refs: Vec<&[f32]> = planes.iter().map(Vec::as_slice).collect();
        let (multi, loads) =
            MultiTile::load_with_halo(&refs, Dim2::square(8), (2, 2), Dim2::square(4), 1, -1.0);
        assert_eq!(multi.planes(), 4);
        assert_eq!(loads, 4 * 36);
        for g in 0..4 {
            assert_eq!(multi.get(g, 3, 3), g as f32);
        }
        assert_eq!(multi.bytes(), 4 * 36 * 4);
    }

    #[test]
    fn multi_tile_two_planes_match_the_paper_dual_layout() {
        // The paper's combined top/bottom local matrix is the two-plane
        // case: each plane reads exactly its own source with halo fill.
        let top = vec![1.0f32; 64];
        let bot = vec![2.0f32; 64];
        let (dual, loads) = MultiTile::load_with_halo(
            &[&top, &bot],
            Dim2::square(8),
            (2, 2),
            Dim2::square(4),
            1,
            0.0,
        );
        assert_eq!(loads, 72);
        assert_eq!(dual.get(0, 3, 3), 1.0);
        assert_eq!(dual.get(1, 3, 3), 2.0);
        assert_eq!(dual.bytes(), 2 * 36 * 4);
    }
}
