//! Global device memory.
//!
//! ## The scatter-to-gather contract
//!
//! The paper's movement kernel avoids CUDA atomics by arranging that **every
//! global slot is written by at most one thread per kernel** (§IV.d, the
//! scatter-to-gather transformation of Scavo [21]). On real hardware that
//! contract is invisible — violating it silently corrupts data. Here it is
//! a *checkable invariant*: [`ScatterBuffer`] can carry one atomic flag per
//! slot, and in checked mode a second write to the same slot within one
//! write epoch panics with both indices. The simulation test-suite runs
//! entirely in checked mode; wall-clock benchmarks construct unchecked
//! buffers (flag array absent, zero overhead beyond the raw store).
//!
//! ## Safety model
//!
//! A `ScatterBuffer` may be in one of two phases, managed by the caller
//! (the engine):
//!
//! * **host phase** — no kernel is running; `as_slice`/`as_mut_slice` give
//!   ordinary access;
//! * **launch phase** — a kernel is running; threads write disjoint slots
//!   through [`ScatterView::write`] and must not read the buffer at all.
//!
//! Because `Device::launch` is synchronous, the two phases never overlap in
//! time; the engine guarantees no buffer is both read and scatter-written
//! in the same launch (kernels read the *other* buffer of a double-buffered
//! pair, or a tile snapshot taken before any write).

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

/// A global buffer supporting disjoint scattered writes from many threads.
///
/// See the module docs for the contract. `T` must be `Copy` (plain data,
/// as on a real device).
pub struct ScatterBuffer<T> {
    data: Box<[UnsafeCell<T>]>,
    /// One flag per slot in checked mode; empty when unchecked.
    flags: Box<[AtomicBool]>,
}

// SAFETY: all mutation goes through `ScatterView::write`, whose contract
// (enforced in checked mode) is that distinct threads touch distinct slots
// within a write epoch, and reads never overlap writes (phase discipline
// documented above). `T: Copy + Send + Sync` keeps values plain data.
unsafe impl<T: Copy + Send + Sync> Sync for ScatterBuffer<T> {}
unsafe impl<T: Copy + Send + Sync> Send for ScatterBuffer<T> {}

impl<T: Copy + Send + Sync> ScatterBuffer<T> {
    /// Allocate `len` slots initialised to `init`.
    pub fn new(len: usize, init: T, checked: bool) -> Self {
        let data: Box<[UnsafeCell<T>]> = (0..len).map(|_| UnsafeCell::new(init)).collect();
        let flags: Box<[AtomicBool]> = if checked {
            (0..len).map(|_| AtomicBool::new(false)).collect()
        } else {
            Box::new([])
        };
        Self { data, flags }
    }

    /// Allocate from an existing vector.
    pub fn from_vec(v: Vec<T>, checked: bool) -> Self {
        let len = v.len();
        let data: Box<[UnsafeCell<T>]> = v.into_iter().map(UnsafeCell::new).collect();
        let flags: Box<[AtomicBool]> = if checked {
            (0..len).map(|_| AtomicBool::new(false)).collect()
        } else {
            Box::new([])
        };
        Self { data, flags }
    }

    /// Number of slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer has no slots.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Whether write-conflict checking is enabled.
    #[inline]
    pub fn is_checked(&self) -> bool {
        !self.flags.is_empty()
    }

    /// Host-phase read access.
    ///
    /// Must not be called while a kernel is scatter-writing this buffer
    /// (see module safety model); the engine's synchronous launches make
    /// that straightforward to uphold.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        // SAFETY: UnsafeCell<T> has the same layout as T; host phase means
        // no concurrent writers.
        unsafe { std::slice::from_raw_parts(self.data.as_ptr().cast::<T>(), self.data.len()) }
    }

    /// Host-phase mutable access.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        // SAFETY: &mut self proves exclusivity.
        unsafe {
            std::slice::from_raw_parts_mut(self.data.as_mut_ptr().cast::<T>(), self.data.len())
        }
    }

    /// Begin a write epoch: clears the conflict flags (checked mode only).
    ///
    /// The engine calls this before every kernel launch that writes the
    /// buffer. Unchecked buffers make this a no-op.
    pub fn begin_epoch(&self) {
        for f in self.flags.iter() {
            // ordering: relaxed — the epoch reset happens in the host
            // phase, before any launch; the launch hand-off synchronises.
            f.store(false, Ordering::Relaxed);
        }
    }

    /// Obtain the launch-phase write view.
    #[inline]
    pub fn view(&self) -> ScatterView<'_, T> {
        ScatterView {
            data: &self.data,
            flags: &self.flags,
        }
    }

    /// Fill every slot (host phase).
    pub fn fill(&mut self, value: T) {
        self.as_mut_slice().fill(value);
    }
}

impl<T: Copy + Send + Sync + Default> ScatterBuffer<T> {
    /// Allocate `len` slots of `T::default()`.
    pub fn zeroed(len: usize, checked: bool) -> Self {
        Self::new(len, T::default(), checked)
    }
}

impl<T: Copy + Send + Sync + std::fmt::Debug> std::fmt::Debug for ScatterBuffer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScatterBuffer")
            .field("len", &self.len())
            .field("checked", &self.is_checked())
            .finish()
    }
}

/// Launch-phase write handle for a [`ScatterBuffer`].
#[derive(Clone, Copy)]
pub struct ScatterView<'a, T> {
    data: &'a [UnsafeCell<T>],
    flags: &'a [AtomicBool],
}

// SAFETY: same argument as for `ScatterBuffer` — disjoint writes are the
// view's contract, checked at runtime in checked mode.
unsafe impl<T: Copy + Send + Sync> Sync for ScatterView<'_, T> {}
unsafe impl<T: Copy + Send + Sync> Send for ScatterView<'_, T> {}

impl<T: Copy + Send + Sync> ScatterView<'_, T> {
    /// Number of slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer has no slots.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read `slot` during a launch.
    ///
    /// Contract (the in-place read-modify-write discipline): within one
    /// epoch, a slot that is read through the view must only ever be
    /// written by the *same* thread that reads it (e.g. a movement thread
    /// reading an agent's tour length before accumulating into it). Slots
    /// owned by other threads must not be read — use an `as_slice` snapshot
    /// of a buffer that is not written this launch instead.
    #[inline]
    pub fn read(&self, slot: usize) -> T {
        // SAFETY: per the contract above there is no concurrent writer for
        // a slot the owning thread reads.
        unsafe { *self.data[slot].get() }
    }

    /// Write `value` into `slot`.
    ///
    /// Panics in checked mode if any thread already wrote `slot` in this
    /// epoch — the scatter-to-gather contract violation the paper's design
    /// rules out.
    #[inline]
    pub fn write(&self, slot: usize, value: T) {
        if !self.flags.is_empty() {
            // ordering: relaxed — the swap's atomicity alone decides the
            // first writer; no other memory is published through the flag.
            let prev = self.flags[slot].swap(true, Ordering::Relaxed);
            assert!(
                !prev,
                "scatter-to-gather violation: slot {slot} written twice in one epoch"
            );
        }
        // SAFETY: bounds-checked by the index below; disjointness across
        // threads is the caller contract (verified above in checked mode).
        unsafe {
            *self.data[slot].get() = value;
        }
    }
}

/// Global memory with hardware-style atomic read-modify-write, for the
/// atomic-operation movement variant the paper compares against
/// (§IV.d: "an atomic operation serialises an application").
///
/// Only `u32` payloads are provided — the CUDA `atomicCAS`/`atomicExch`
/// subset the alternative implementation needs.
#[derive(Debug)]
pub struct AtomicBuffer {
    data: Box<[AtomicU32]>,
}

impl AtomicBuffer {
    /// Allocate `len` slots initialised to `init`.
    pub fn new(len: usize, init: u32) -> Self {
        Self {
            data: (0..len).map(|_| AtomicU32::new(init)).collect(),
        }
    }

    /// Copy values in from a slice.
    pub fn load_from(&self, src: &[u32]) {
        assert_eq!(src.len(), self.data.len());
        for (a, &v) in self.data.iter().zip(src) {
            // ordering: relaxed — host-phase upload; the launch hand-off
            // publishes it to worker threads.
            a.store(v, Ordering::Relaxed);
        }
    }

    /// Number of slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the buffer has no slots.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Plain load.
    #[inline]
    pub fn load(&self, slot: usize) -> u32 {
        // ordering: relaxed — mirrors a plain CUDA global load; any
        // cross-thread protocol is built from the AcqRel RMWs below.
        self.data[slot].load(Ordering::Relaxed)
    }

    /// Plain store.
    #[inline]
    pub fn store(&self, slot: usize, value: u32) {
        // ordering: relaxed — plain global store, same model as `load`.
        self.data[slot].store(value, Ordering::Relaxed);
    }

    /// `atomicCAS`: returns the previous value; the swap happened iff the
    /// return equals `expected`.
    #[inline]
    pub fn compare_and_swap(&self, slot: usize, expected: u32, new: u32) -> u32 {
        // ordering: AcqRel on success so a winning claim publishes the
        // claimant's prior writes and the reader of the claim sees them;
        // Acquire on failure so a losing thread observes the winner's.
        match self.data[slot].compare_exchange(expected, new, Ordering::AcqRel, Ordering::Acquire) {
            Ok(prev) | Err(prev) => prev,
        }
    }

    /// `atomicExch`.
    #[inline]
    pub fn exchange(&self, slot: usize, new: u32) -> u32 {
        // ordering: AcqRel — exchange participates in the same
        // claim-style protocols as `compare_and_swap`.
        self.data[slot].swap(new, Ordering::AcqRel)
    }

    /// Snapshot into a vector (host phase).
    pub fn to_vec(&self) -> Vec<u32> {
        self.data
            .iter()
            // ordering: relaxed — host phase, no concurrent writers.
            .map(|a| a.load(Ordering::Relaxed))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scatter_roundtrip() {
        let buf = ScatterBuffer::<u32>::zeroed(16, true);
        buf.begin_epoch();
        let v = buf.view();
        for i in 0..16 {
            v.write(i, (i * i) as u32);
        }
        assert_eq!(buf.as_slice()[5], 25);
    }

    #[test]
    #[should_panic(expected = "scatter-to-gather violation")]
    fn checked_mode_panics_on_double_write() {
        let buf = ScatterBuffer::<u32>::zeroed(4, true);
        buf.begin_epoch();
        let v = buf.view();
        v.write(2, 1);
        v.write(2, 2);
    }

    #[test]
    fn unchecked_mode_allows_overwrite() {
        let buf = ScatterBuffer::<u32>::zeroed(4, false);
        buf.begin_epoch();
        let v = buf.view();
        v.write(2, 1);
        v.write(2, 2);
        assert_eq!(buf.as_slice()[2], 2);
    }

    #[test]
    fn epoch_reset_allows_rewrite() {
        let buf = ScatterBuffer::<u32>::zeroed(4, true);
        buf.begin_epoch();
        buf.view().write(1, 10);
        buf.begin_epoch();
        buf.view().write(1, 20);
        assert_eq!(buf.as_slice()[1], 20);
    }

    #[test]
    fn concurrent_disjoint_writes() {
        let buf = ScatterBuffer::<u64>::zeroed(4096, true);
        buf.begin_epoch();
        std::thread::scope(|s| {
            for t in 0..4 {
                let view = buf.view();
                s.spawn(move || {
                    for i in (t..4096).step_by(4) {
                        view.write(i, i as u64);
                    }
                });
            }
        });
        assert!(buf
            .as_slice()
            .iter()
            .enumerate()
            .all(|(i, &v)| v == i as u64));
    }

    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn write_out_of_bounds_panics() {
        let buf = ScatterBuffer::<u32>::zeroed(4, false);
        buf.view().write(4, 0);
    }

    #[test]
    fn atomic_cas_claims_once() {
        let buf = AtomicBuffer::new(1, 0);
        let buf_ref = &buf;
        let winners: Vec<bool> = std::thread::scope(|s| {
            let hs: Vec<_> = (1..=8)
                .map(|t| s.spawn(move || buf_ref.compare_and_swap(0, 0, t) == 0))
                .collect();
            hs.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(winners.iter().filter(|&&w| w).count(), 1);
        assert_ne!(buf.load(0), 0);
    }

    #[test]
    fn from_vec_preserves_order() {
        let buf = ScatterBuffer::from_vec(vec![3u8, 1, 4, 1, 5], true);
        assert_eq!(buf.as_slice(), &[3, 1, 4, 1, 5]);
        assert_eq!(buf.len(), 5);
    }
}
