//! Launch profiling: SIMT event counters and a first-order cycle model.
//!
//! The paper argues for three implementation techniques — branchless
//! selection (no warp divergence), shared-memory tiling (fewer global
//! transactions), and scatter-to-gather (no atomics). The profiler makes
//! each of those claims measurable on the virtual device: kernels report
//! events through [`crate::exec::ThreadCtx`]/[`crate::exec::BlockCtx`], the
//! launcher aggregates them, and [`CycleModel`] converts the totals into a
//! modelled execution time on a given [`DeviceProps`].
//!
//! The cycle model is deliberately first-order (throughput-only, no
//! latency hiding curve); it exists to *rank* kernel variants the way a
//! Fermi would, not to predict absolute runtimes. Wall-clock figures in the
//! benches always come from real timers, never from this model.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::device::DeviceProps;
use crate::warp::WARP_SIZE;

/// Event totals for one kernel launch (or a sum over launches).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelProfile {
    /// Branch sites where a warp's lanes disagreed (serialised paths).
    pub divergent_branches: u64,
    /// Branch sites where all lanes agreed (free on SIMT).
    pub uniform_branches: u64,
    /// 32-bit words read from global memory.
    pub global_loads: u64,
    /// 32-bit words written to global memory.
    pub global_stores: u64,
    /// 32-bit words read from shared tiles.
    pub shared_loads: u64,
    /// 32-bit words written to shared tiles.
    pub shared_stores: u64,
    /// Atomic read-modify-write operations on global memory.
    pub atomic_ops: u64,
    /// Block-level barriers (`__syncthreads` equivalents).
    pub barriers: u64,
    /// Plain ALU operations reported by kernels (select/arith helpers).
    pub alu_ops: u64,
    /// Threads executed.
    pub threads: u64,
}

impl KernelProfile {
    /// Component-wise sum.
    pub fn merged(self, other: Self) -> Self {
        Self {
            divergent_branches: self.divergent_branches + other.divergent_branches,
            uniform_branches: self.uniform_branches + other.uniform_branches,
            global_loads: self.global_loads + other.global_loads,
            global_stores: self.global_stores + other.global_stores,
            shared_loads: self.shared_loads + other.shared_loads,
            shared_stores: self.shared_stores + other.shared_stores,
            atomic_ops: self.atomic_ops + other.atomic_ops,
            barriers: self.barriers + other.barriers,
            alu_ops: self.alu_ops + other.alu_ops,
            threads: self.threads + other.threads,
        }
    }

    /// Fraction of branch sites that diverged (0 when there were none).
    pub fn divergence_ratio(&self) -> f64 {
        let total = self.divergent_branches + self.uniform_branches;
        if total == 0 {
            0.0
        } else {
            self.divergent_branches as f64 / total as f64
        }
    }
}

/// Thread-safe accumulator the launcher aggregates block profiles into.
#[derive(Debug, Default)]
pub struct ProfileSink {
    divergent_branches: AtomicU64,
    uniform_branches: AtomicU64,
    global_loads: AtomicU64,
    global_stores: AtomicU64,
    shared_loads: AtomicU64,
    shared_stores: AtomicU64,
    atomic_ops: AtomicU64,
    barriers: AtomicU64,
    alu_ops: AtomicU64,
    threads: AtomicU64,
}

impl ProfileSink {
    /// New zeroed sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one block's local counters.
    ///
    /// ordering: relaxed throughout — each field is an independent event
    /// counter with no cross-field invariant, and the launch's
    /// end-of-job barrier (the pool's state mutex) publishes the totals
    /// before `snapshot` can run.
    pub fn add(&self, p: &KernelProfile) {
        self.divergent_branches
            .fetch_add(p.divergent_branches, Ordering::Relaxed);
        self.uniform_branches
            .fetch_add(p.uniform_branches, Ordering::Relaxed);
        self.global_loads
            .fetch_add(p.global_loads, Ordering::Relaxed);
        self.global_stores
            .fetch_add(p.global_stores, Ordering::Relaxed);
        self.shared_loads
            .fetch_add(p.shared_loads, Ordering::Relaxed);
        self.shared_stores
            .fetch_add(p.shared_stores, Ordering::Relaxed);
        // ordering: relaxed — same independent-counter argument as above.
        self.atomic_ops.fetch_add(p.atomic_ops, Ordering::Relaxed);
        self.barriers.fetch_add(p.barriers, Ordering::Relaxed);
        self.alu_ops.fetch_add(p.alu_ops, Ordering::Relaxed);
        self.threads.fetch_add(p.threads, Ordering::Relaxed);
    }

    /// Snapshot the totals.
    ///
    /// ordering: relaxed — called after the launch has drained (host
    /// phase), when no writer is live; the pool barrier ordered the adds.
    pub fn snapshot(&self) -> KernelProfile {
        KernelProfile {
            divergent_branches: self.divergent_branches.load(Ordering::Relaxed),
            uniform_branches: self.uniform_branches.load(Ordering::Relaxed),
            global_loads: self.global_loads.load(Ordering::Relaxed),
            global_stores: self.global_stores.load(Ordering::Relaxed),
            shared_loads: self.shared_loads.load(Ordering::Relaxed),
            shared_stores: self.shared_stores.load(Ordering::Relaxed),
            atomic_ops: self.atomic_ops.load(Ordering::Relaxed),
            barriers: self.barriers.load(Ordering::Relaxed),
            alu_ops: self.alu_ops.load(Ordering::Relaxed),
            threads: self.threads.load(Ordering::Relaxed),
        }
    }
}

/// First-order SIMT cost model: counters → modelled cycles on a device.
///
/// Costs are per-warp issue slots:
/// * ALU op: 1 cycle per warp (32 lanes issue together);
/// * shared access: 2 cycles per warp access (bank-conflict-free);
/// * global access: `global_cycles` per warp transaction of 32 words
///   (coalesced; Fermi ≈ 400–800 cycles latency, throughput-amortised
///   default 16);
/// * divergent branch: the warp pays `divergence_penalty` extra issue
///   slots (both paths serialised);
/// * atomic: `atomic_cycles` serialised cycles each — this is what makes
///   the paper's atomic-free movement kernel win in the ablation;
/// * barrier: `barrier_cycles` per block barrier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CycleModel {
    /// Cycles per warp-wide global transaction (32 words, coalesced).
    pub global_cycles: f64,
    /// Cycles per warp-wide shared access.
    pub shared_cycles: f64,
    /// Extra cycles per divergent branch site per warp.
    pub divergence_penalty: f64,
    /// Cycles per atomic operation (serialised).
    pub atomic_cycles: f64,
    /// Cycles per block barrier.
    pub barrier_cycles: f64,
}

impl Default for CycleModel {
    fn default() -> Self {
        Self {
            global_cycles: 16.0,
            shared_cycles: 2.0,
            divergence_penalty: 24.0,
            atomic_cycles: 64.0,
            barrier_cycles: 16.0,
        }
    }
}

impl CycleModel {
    /// Modelled cycles for a profile, before dividing across SMs.
    pub fn cycles(&self, p: &KernelProfile) -> f64 {
        let warp = f64::from(WARP_SIZE);
        let alu = p.alu_ops as f64 / warp;
        let sh = (p.shared_loads + p.shared_stores) as f64 / warp * self.shared_cycles;
        let gl = (p.global_loads + p.global_stores) as f64 / warp * self.global_cycles;
        let div = p.divergent_branches as f64 * self.divergence_penalty;
        let uni = p.uniform_branches as f64 / warp;
        let at = p.atomic_ops as f64 * self.atomic_cycles;
        let bar = p.barriers as f64 * self.barrier_cycles;
        alu + sh + gl + div + uni + at + bar
    }

    /// Modelled wall time on `props`, assuming perfect SM load balance.
    pub fn seconds(&self, p: &KernelProfile, props: &DeviceProps) -> f64 {
        let cycles = self.cycles(p) / f64::from(props.sm_count.max(1));
        cycles / (f64::from(props.clock_mhz.max(1)) * 1e6)
    }

    /// Modelled cycles of the same work executed **serially, one lane at a
    /// time** — the single-threaded CPU reading of the counters. No warp
    /// amortisation, no divergence penalty (a scalar core just branches),
    /// cache-backed memory costs.
    pub fn serial_cycles(&self, p: &KernelProfile) -> f64 {
        let alu = p.alu_ops as f64;
        let branches = (p.divergent_branches + p.uniform_branches) as f64;
        let sh = (p.shared_loads + p.shared_stores) as f64; // L1-resident
        let gl = (p.global_loads + p.global_stores) as f64 * 2.0; // L2/DRAM mix
        let at = p.atomic_ops as f64 * 4.0; // uncontended lock-prefixed op
        alu + branches + sh + gl + at
    }

    /// Modelled serial wall time on a host described by `props` (uses the
    /// clock only; core count is irrelevant for a single thread).
    pub fn serial_seconds(&self, p: &KernelProfile, props: &DeviceProps) -> f64 {
        self.serial_cycles(p) / (f64::from(props.clock_mhz.max(1)) * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(divergent: u64, atomics: u64) -> KernelProfile {
        KernelProfile {
            divergent_branches: divergent,
            uniform_branches: 100,
            global_loads: 3200,
            global_stores: 320,
            shared_loads: 6400,
            shared_stores: 640,
            atomic_ops: atomics,
            barriers: 2,
            alu_ops: 32_000,
            threads: 256,
        }
    }

    #[test]
    fn merge_is_componentwise() {
        let a = profile(1, 2);
        let b = profile(3, 4);
        let m = a.merged(b);
        assert_eq!(m.divergent_branches, 4);
        assert_eq!(m.atomic_ops, 6);
        assert_eq!(m.threads, 512);
    }

    #[test]
    fn divergence_ratio() {
        assert_eq!(profile(0, 0).divergence_ratio(), 0.0);
        assert!((profile(100, 0).divergence_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(KernelProfile::default().divergence_ratio(), 0.0);
    }

    #[test]
    fn model_penalises_divergence_and_atomics() {
        let m = CycleModel::default();
        assert!(m.cycles(&profile(50, 0)) > m.cycles(&profile(0, 0)));
        assert!(m.cycles(&profile(0, 50)) > m.cycles(&profile(0, 0)));
    }

    #[test]
    fn more_sms_is_faster() {
        let m = CycleModel::default();
        let p = profile(0, 0);
        let gpu = DeviceProps::gtx_560_ti_448();
        let mut half = gpu.clone();
        half.sm_count = 7;
        assert!(m.seconds(&p, &gpu) < m.seconds(&p, &half));
    }

    #[test]
    fn serial_model_is_much_slower_than_simt() {
        // The whole point of the data-driven port: the same counters cost
        // far more executed one lane at a time on the paper's CPU than
        // warp-wide on the paper's GPU.
        let m = CycleModel::default();
        let p = profile(0, 0);
        let gpu = DeviceProps::gtx_560_ti_448();
        let cpu = DeviceProps::i7_930();
        assert!(m.serial_seconds(&p, &cpu) > 3.0 * m.seconds(&p, &gpu));
    }

    #[test]
    fn sink_accumulates_concurrently() {
        let sink = ProfileSink::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        sink.add(&profile(1, 1));
                    }
                });
            }
        });
        let total = sink.snapshot();
        assert_eq!(total.divergent_branches, 400);
        assert_eq!(total.threads, 400 * 256);
    }
}
