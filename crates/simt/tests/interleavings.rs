//! Bounded interleaving exploration of the pool's concurrency core.
//!
//! These tests re-run the two protocols that rest on unsafe or atomic
//! code — the fetch_or claim board used by the movement kernel's 3-phase
//! protocol, and the pool's launch/panic paths — under hundreds of
//! Philox-seeded schedule permutations, asserting schedule independence.

use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};

use simt::exec::explore::{explore, permutation, run_permuted, run_permuted_serial};
use simt::exec::pool::WorkerPool;

/// The movement kernel's claim idiom: each contender ORs its slot bit
/// into a per-cell byte. The winner is a pure function of the *set* of
/// claimants (lowest set bit), so every schedule must agree.
#[test]
fn claim_board_loses_no_claims_across_schedules() {
    const CELLS: usize = 97;
    const CONTENDERS: usize = 388; // 4 per cell, off-stride of CELLS

    // Serial reference: the claim set with every contender applied.
    let mut expect = vec![0u8; CELLS];
    for c in 0..CONTENDERS {
        expect[c % CELLS] |= 1 << (c / CELLS % 8);
    }

    let pool = WorkerPool::new(4);
    let result = explore(0..300u64, |seed| {
        let claims: Vec<AtomicU8> = (0..CELLS).map(|_| AtomicU8::new(0)).collect();
        let perm = permutation(seed, 0, CONTENDERS);
        run_permuted(&pool, &perm, &|c| {
            // ordering: relaxed — claims are only read after the launch
            // barrier; fetch_or commutes, so issue order is irrelevant.
            claims[c % CELLS].fetch_or(1 << (c / CELLS % 8), Ordering::Relaxed);
        });
        claims
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect::<Vec<u8>>()
    });
    assert_eq!(result.expect("claim board is schedule-independent"), expect);
}

/// Winner resolution (lowest set bit of the claim byte) is schedule
/// independent even though individual fetch_or calls race.
#[test]
fn claim_winner_is_schedule_independent() {
    const CELLS: usize = 64;
    let pool = WorkerPool::new(3);
    let result = explore(0..200u64, |seed| {
        let claims: Vec<AtomicU8> = (0..CELLS).map(|_| AtomicU8::new(0)).collect();
        let perm = permutation(seed, 1, CELLS * 3);
        run_permuted(&pool, &perm, &|c| {
            // ordering: relaxed — commutative claim set, read post-barrier.
            claims[c % CELLS].fetch_or(1 << (c % 5), Ordering::Relaxed);
        });
        claims
            .iter()
            .map(|c| c.load(Ordering::Relaxed).trailing_zeros())
            .collect::<Vec<u32>>()
    });
    result.expect("winner selection must not depend on the schedule");
}

/// The explorer must *detect* schedule dependence: a deliberately
/// overlapping tile partition (two bands both writing one row) produces
/// a last-writer-wins outcome that varies with issue order. Serial
/// permuted execution keeps the conflict order-sensitive but UB-free.
#[test]
fn explorer_catches_overlapping_tile_partition() {
    const ROWS: usize = 40;
    // Bands of 10 rows — but band 1 is mis-partitioned to also cover
    // band 2's first row (row 20), the seeded-overlap acceptance case.
    let bands: Vec<std::ops::Range<usize>> = vec![0..10, 10..21, 20..30, 30..40];

    let err = explore(0..64u64, |seed| {
        let mut owner = vec![usize::MAX; ROWS];
        let perm = permutation(seed, 0, bands.len());
        run_permuted_serial(&perm, &mut |b| {
            for r in bands[b].clone() {
                owner[r] = b;
            }
        });
        owner
    })
    .expect_err("overlapping bands must diverge across schedules");
    assert!(err.agreed >= 1, "reference schedule itself must run");
}

/// Launch/panic paths stay sound under schedule permutation: the first
/// panic payload reaches the launcher, no index runs twice, and the pool
/// survives to run the next (clean) permuted job — across many seeds.
#[test]
fn panic_paths_survive_schedule_exploration() {
    let pool = WorkerPool::new(4);
    for seed in 0..50u64 {
        let perm = permutation(seed, 2, 128);
        let hits: Vec<AtomicU64> = (0..128).map(|_| AtomicU64::new(0)).collect();
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_permuted(&pool, &perm, &|i| {
                if i == 77 {
                    panic!("fault under seed {seed}");
                }
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
        }));
        assert!(res.is_err(), "panic must reach the launcher (seed {seed})");
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) <= 1));

        // The pool must come back clean for the next schedule.
        let count = AtomicUsize::new(0);
        run_permuted(&pool, &permutation(seed, 3, 64), &|_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 64);
    }
}
