//! Property-based tests for the virtual GPU substrate.

use proptest::prelude::*;
use simt::exec::{BlockCtx, BlockKernel, ExecPolicy, LaunchConfig};
use simt::memory::{ScatterBuffer, Tile};
use simt::occupancy::occupancy;
use simt::{Device, DeviceProps, Dim2};

/// A kernel computing a per-cell hash of its coordinates — enough state to
/// expose any scheduling dependence.
struct HashKernel<'a> {
    out: &'a ScatterBuffer<u64>,
    extent: Dim2,
}

impl BlockKernel for HashKernel<'_> {
    fn block(&self, ctx: &mut BlockCtx) {
        let view = self.out.view();
        let extent = self.extent;
        ctx.threads(|t| {
            let (r, c) = t.global_rc();
            if r < extent.y && c < extent.x {
                // Key the stream by the *cell*, not the thread: `t.rng()`
                // keys by the launch extent and is only stable for a fixed
                // geometry, which is why the simulation kernels use
                // `rng_for(cell)` everywhere.
                let mut rng = t.rng_for(u64::from(r) * u64::from(extent.x) + u64::from(c));
                let v = u64::from(rng.next_u32()) ^ (u64::from(r) << 40) ^ u64::from(c);
                view.write((r * extent.x + c) as usize, v);
            }
        });
    }
}

fn run_hash(extent: Dim2, block: Dim2, seed: u64, policy: ExecPolicy) -> Vec<u64> {
    let device = Device::builder().policy(policy).build();
    let out = ScatterBuffer::<u64>::zeroed(extent.count(), true);
    out.begin_epoch();
    let cfg = LaunchConfig::tiled_over(extent, block).with_seed(seed);
    device
        .launch(&cfg, &HashKernel { out: &out, extent })
        .expect("launch");
    out.as_slice().to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Sequential and parallel policies produce identical buffers for any
    /// extent/block geometry and seed.
    #[test]
    fn policies_agree(
        w in 1u32..100,
        h in 1u32..100,
        bx in 1u32..20,
        by in 1u32..20,
        seed in any::<u64>(),
        workers in 1usize..8,
    ) {
        prop_assume!(bx * by <= 1024);
        let extent = Dim2::new(w, h);
        let block = Dim2::new(bx, by);
        let seq = run_hash(extent, block, seed, ExecPolicy::Sequential);
        let par = run_hash(extent, block, seed, ExecPolicy::Parallel { workers });
        prop_assert_eq!(seq, par);
    }

    /// Block geometry does not change the result — only the schedule.
    #[test]
    fn block_shape_is_irrelevant(
        w in 1u32..80,
        h in 1u32..80,
        seed in any::<u64>(),
    ) {
        let extent = Dim2::new(w, h);
        let a = run_hash(extent, Dim2::new(16, 16), seed, ExecPolicy::Sequential);
        let b = run_hash(extent, Dim2::new(8, 4), seed, ExecPolicy::Sequential);
        prop_assert_eq!(a, b);
    }

    /// Tile loads reproduce the source exactly inside bounds and the fill
    /// outside, for arbitrary geometry.
    #[test]
    fn tile_matches_reference(
        w in 1usize..64,
        h in 1usize..64,
        ox in 0u32..64,
        oy in 0u32..64,
        inner in 1u32..20,
        halo in 0u32..4,
    ) {
        let src: Vec<u32> = (0..w * h).map(|i| i as u32).collect();
        let dim = Dim2::new(w as u32, h as u32);
        let (tile, loads) =
            Tile::load_with_halo(&src, dim, (oy, ox), Dim2::square(inner), halo, u32::MAX);
        let mut expected_loads = 0u64;
        for r in i64::from(oy) - i64::from(halo)..i64::from(oy + inner + halo) {
            for c in i64::from(ox) - i64::from(halo)..i64::from(ox + inner + halo) {
                let want = if r >= 0 && c >= 0 && (r as usize) < h && (c as usize) < w {
                    expected_loads += 1;
                    src[r as usize * w + c as usize]
                } else {
                    u32::MAX
                };
                prop_assert_eq!(tile.get(r, c), want);
            }
        }
        prop_assert_eq!(loads, expected_loads);
    }

    /// Occupancy is monotone: adding register or shared pressure never
    /// increases resident blocks.
    #[test]
    fn occupancy_monotone(
        threads in prop::sample::select(vec![32u32, 64, 128, 192, 256, 384, 512, 768, 1024]),
        regs in 0u32..64,
        shared in 0u32..48 * 1024,
    ) {
        let fermi = DeviceProps::gtx_560_ti_448();
        let base = occupancy(&fermi, threads, regs, shared).expect("valid");
        if let Some(more_regs) = occupancy(&fermi, threads, regs + 8, shared) {
            prop_assert!(more_regs.active_blocks_per_sm <= base.active_blocks_per_sm);
        }
        if let Some(more_shared) = occupancy(&fermi, threads, regs, (shared + 4096).min(48 * 1024)) {
            prop_assert!(more_shared.active_blocks_per_sm <= base.active_blocks_per_sm);
        }
        prop_assert!(base.occupancy <= 1.0);
    }

    /// Disjoint concurrent scatter writes land exactly once each.
    #[test]
    fn scatter_writes_all_land(len in 1usize..5000, seed in any::<u64>()) {
        let extent = Dim2::new(len.min(256) as u32, len.div_ceil(256).min(256) as u32);
        let n = extent.count();
        let buf = ScatterBuffer::<u64>::new(n, u64::MAX, true);
        buf.begin_epoch();
        let device = Device::builder().policy(ExecPolicy::Parallel { workers: 4 }).build();
        let cfg = LaunchConfig::tiled_over(extent, Dim2::new(16, 16)).with_seed(seed);
        struct W<'a> {
            out: &'a ScatterBuffer<u64>,
            extent: Dim2,
        }
        impl BlockKernel for W<'_> {
            fn block(&self, ctx: &mut BlockCtx) {
                let v = self.out.view();
                let e = self.extent;
                ctx.threads(|t| {
                    let (r, c) = t.global_rc();
                    if r < e.y && c < e.x {
                        v.write((r * e.x + c) as usize, u64::from(r) * 1_000 + u64::from(c));
                    }
                });
            }
        }
        device.launch(&cfg, &W { out: &buf, extent }).expect("launch");
        for (i, &v) in buf.as_slice().iter().enumerate() {
            let (r, c) = (i / extent.x as usize, i % extent.x as usize);
            prop_assert_eq!(v, r as u64 * 1_000 + c as u64);
        }
    }
}
