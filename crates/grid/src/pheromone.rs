//! The two per-group pheromone fields (§III, §IV.a: "Two separate matrices
//! are used to keep track of pheromones deposited by the top and bottom
//! pedestrians").
//!
//! Pheromone here models "the visual proposition to follow predecessors in
//! a densely populated environment" — a top-group agent is attracted by
//! pheromone that *other top-group agents* deposited, which is what makes
//! lanes form in the bi-directional flow.

use crate::cell::Group;
use crate::matrix::Matrix;

/// The paired pheromone matrices.
#[derive(Debug, Clone, PartialEq)]
pub struct PheromoneField {
    /// Deposits by the top group.
    pub top: Matrix<f32>,
    /// Deposits by the bottom group.
    pub bottom: Matrix<f32>,
    /// Initial/floor level τ₀ (evaporation never drops below it, keeping
    /// eq. (2) probabilities non-degenerate).
    pub tau0: f32,
}

impl PheromoneField {
    /// Uniform fields at `tau0`.
    pub fn new(height: usize, width: usize, tau0: f32) -> Self {
        assert!(tau0 > 0.0, "tau0 must be positive");
        Self {
            top: Matrix::filled(height, width, tau0),
            bottom: Matrix::filled(height, width, tau0),
            tau0,
        }
    }

    /// The matrix a given group *deposits into and follows*.
    #[inline]
    pub fn of(&self, g: Group) -> &Matrix<f32> {
        match g {
            Group::Top => &self.top,
            Group::Bottom => &self.bottom,
        }
    }

    /// Mutable access to a group's matrix.
    #[inline]
    pub fn of_mut(&mut self, g: Group) -> &mut Matrix<f32> {
        match g {
            Group::Top => &mut self.top,
            Group::Bottom => &mut self.bottom,
        }
    }

    /// Apply eq. (3) everywhere: `τ ← max(τ0·floor?, (1−ρ)·τ)`.
    ///
    /// The floor keeps unvisited cells selectable, playing the role of the
    /// τ_min bound in MAX-MIN ant systems.
    pub fn evaporate(&mut self, rho: f32) {
        debug_assert!((0.0..=1.0).contains(&rho));
        let keep = 1.0 - rho;
        let floor = self.tau0;
        for m in [&mut self.top, &mut self.bottom] {
            for v in m.as_mut_slice() {
                *v = (*v * keep).max(floor);
            }
        }
    }

    /// Deposit `amount` at `(r, c)` on group `g`'s matrix (eq. (4)).
    #[inline]
    pub fn deposit(&mut self, g: Group, r: usize, c: usize, amount: f32) {
        let m = self.of_mut(g);
        let cur = m.get(r, c);
        m.set(r, c, cur + amount);
    }

    /// Evaporate-then-deposit for a single cell, the fused per-cell update
    /// the movement kernel applies in shared memory before write-back.
    #[inline]
    pub fn fused_update(tau: f32, tau0: f32, rho: f32, deposit: f32) -> f32 {
        ((1.0 - rho) * tau).max(tau0) + deposit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_uniform() {
        let p = PheromoneField::new(4, 4, 0.1);
        assert!(p.top.as_slice().iter().all(|&v| v == 0.1));
        assert!(p.bottom.as_slice().iter().all(|&v| v == 0.1));
    }

    #[test]
    fn evaporation_decays_toward_floor() {
        let mut p = PheromoneField::new(2, 2, 0.1);
        p.deposit(Group::Top, 0, 0, 1.0);
        for _ in 0..100 {
            p.evaporate(0.1);
        }
        let v = p.top.get(0, 0);
        assert!((v - 0.1).abs() < 1e-4, "decayed to floor, got {v}");
        // The floor is never undershot anywhere.
        assert!(p.top.as_slice().iter().all(|&v| v >= 0.1));
    }

    #[test]
    fn deposit_targets_group_matrix() {
        let mut p = PheromoneField::new(2, 2, 0.1);
        p.deposit(Group::Bottom, 1, 1, 0.5);
        assert!((p.bottom.get(1, 1) - 0.6).abs() < 1e-6);
        assert_eq!(p.top.get(1, 1), 0.1);
    }

    #[test]
    fn fused_matches_sequential() {
        let tau = 0.7f32;
        let (tau0, rho, dep) = (0.1f32, 0.05f32, 0.2f32);
        let mut p = PheromoneField::new(1, 1, tau0);
        p.top.set(0, 0, tau);
        p.evaporate(rho);
        p.deposit(Group::Top, 0, 0, dep);
        let fused = PheromoneField::fused_update(tau, tau0, rho, dep);
        assert!((p.top.get(0, 0) - fused).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "tau0 must be positive")]
    fn zero_tau0_rejected() {
        let _ = PheromoneField::new(2, 2, 0.0);
    }
}
