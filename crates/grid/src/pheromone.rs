//! The per-group pheromone fields (§III, §IV.a: "Two separate matrices
//! are used to keep track of pheromones deposited by the top and bottom
//! pedestrians" — generalised to one matrix per directional group).
//!
//! Pheromone here models "the visual proposition to follow predecessors in
//! a densely populated environment" — an agent is attracted by pheromone
//! that *other agents of its own group* deposited, which is what makes
//! lanes form in multi-directional flow.

use crate::cell::{Group, MAX_GROUPS};
use crate::matrix::Matrix;

/// The per-group pheromone matrices (plane `g` belongs to group `g`).
#[derive(Debug, Clone, PartialEq)]
pub struct PheromoneField {
    fields: Vec<Matrix<f32>>,
    /// Initial/floor level τ₀ (evaporation never drops below it, keeping
    /// eq. (2) probabilities non-degenerate).
    pub tau0: f32,
}

impl PheromoneField {
    /// Uniform two-group fields at `tau0` (the paper's layout).
    pub fn new(height: usize, width: usize, tau0: f32) -> Self {
        Self::with_groups(height, width, tau0, 2)
    }

    /// Uniform fields at `tau0` for `groups` directional groups.
    pub fn with_groups(height: usize, width: usize, tau0: f32, groups: usize) -> Self {
        assert!(tau0 > 0.0, "tau0 must be positive");
        assert!(
            (1..=MAX_GROUPS).contains(&groups),
            "group count {groups} out of range 1..={MAX_GROUPS}"
        );
        Self {
            fields: (0..groups)
                .map(|_| Matrix::filled(height, width, tau0))
                .collect(),
            tau0,
        }
    }

    /// Number of group planes.
    #[inline]
    pub fn groups(&self) -> usize {
        self.fields.len()
    }

    /// The matrix a given group *deposits into and follows*.
    #[inline]
    pub fn of(&self, g: Group) -> &Matrix<f32> {
        &self.fields[g.index()]
    }

    /// Mutable access to a group's matrix.
    #[inline]
    pub fn of_mut(&mut self, g: Group) -> &mut Matrix<f32> {
        &mut self.fields[g.index()]
    }

    /// All group planes, in index order.
    #[inline]
    pub fn planes(&self) -> &[Matrix<f32>] {
        &self.fields
    }

    /// Mutable access to every group plane at once (parallel backends
    /// split the planes into per-band scatter targets).
    #[inline]
    pub fn planes_mut(&mut self) -> &mut [Matrix<f32>] {
        &mut self.fields
    }

    /// Apply eq. (3) everywhere: `τ ← max(τ0·floor?, (1−ρ)·τ)`.
    ///
    /// The floor keeps unvisited cells selectable, playing the role of the
    /// τ_min bound in MAX-MIN ant systems.
    pub fn evaporate(&mut self, rho: f32) {
        debug_assert!((0.0..=1.0).contains(&rho));
        let keep = 1.0 - rho;
        let floor = self.tau0;
        for m in &mut self.fields {
            for v in m.as_mut_slice() {
                *v = (*v * keep).max(floor);
            }
        }
    }

    /// Deposit `amount` at `(r, c)` on group `g`'s matrix (eq. (4)).
    #[inline]
    pub fn deposit(&mut self, g: Group, r: usize, c: usize, amount: f32) {
        let m = self.of_mut(g);
        let cur = m.get(r, c);
        m.set(r, c, cur + amount);
    }

    /// Evaporate-then-deposit for a single cell, the fused per-cell update
    /// the movement kernel applies in shared memory before write-back.
    #[inline]
    pub fn fused_update(tau: f32, tau0: f32, rho: f32, deposit: f32) -> f32 {
        ((1.0 - rho) * tau).max(tau0) + deposit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_uniform() {
        let p = PheromoneField::new(4, 4, 0.1);
        assert_eq!(p.groups(), 2);
        for g in Group::BOTH {
            assert!(p.of(g).as_slice().iter().all(|&v| v == 0.1));
        }
    }

    #[test]
    fn four_group_field_has_four_planes() {
        let p = PheromoneField::with_groups(4, 4, 0.2, 4);
        assert_eq!(p.groups(), 4);
        assert!(p.planes().iter().all(|m| m.get(0, 0) == 0.2));
    }

    #[test]
    fn evaporation_decays_toward_floor() {
        let mut p = PheromoneField::new(2, 2, 0.1);
        p.deposit(Group::TOP, 0, 0, 1.0);
        for _ in 0..100 {
            p.evaporate(0.1);
        }
        let v = p.of(Group::TOP).get(0, 0);
        assert!((v - 0.1).abs() < 1e-4, "decayed to floor, got {v}");
        // The floor is never undershot anywhere.
        assert!(p.of(Group::TOP).as_slice().iter().all(|&v| v >= 0.1));
    }

    #[test]
    fn deposit_targets_group_matrix() {
        let mut p = PheromoneField::with_groups(2, 2, 0.1, 3);
        let third = Group::new(2);
        p.deposit(third, 1, 1, 0.5);
        assert!((p.of(third).get(1, 1) - 0.6).abs() < 1e-6);
        assert_eq!(p.of(Group::TOP).get(1, 1), 0.1);
        assert_eq!(p.of(Group::BOTTOM).get(1, 1), 0.1);
    }

    #[test]
    fn fused_matches_sequential() {
        let tau = 0.7f32;
        let (tau0, rho, dep) = (0.1f32, 0.05f32, 0.2f32);
        let mut p = PheromoneField::new(1, 1, tau0);
        p.of_mut(Group::TOP).set(0, 0, tau);
        p.evaporate(rho);
        p.deposit(Group::TOP, 0, 0, dep);
        let fused = PheromoneField::fused_update(tau, tau0, rho, dep);
        assert!((p.of(Group::TOP).get(0, 0) - fused).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "tau0 must be positive")]
    fn zero_tau0_rejected() {
        let _ = PheromoneField::new(2, 2, 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn too_many_groups_rejected() {
        let _ = PheromoneField::with_groups(2, 2, 0.1, MAX_GROUPS + 1);
    }
}
