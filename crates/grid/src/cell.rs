//! Cell labels, pedestrian groups, and the Figure-1 neighbourhood.
//!
//! The environment matrix stores one byte per cell: `0` empty, `1` a
//! top-group pedestrian, `2` a bottom-group pedestrian (paper §IV.a). The
//! fourth value, [`CELL_WALL`], marks permanently occupied cells: the halo
//! fill outside the environment (so border agents see the outside as
//! unavailable) *and* interior obstacle cells placed by
//! `pedsim-scenario` — doorjambs, pillars, corridor walls. Both read
//! identically to the kernels: not empty, never a mover.
//!
//! ## Neighbour numbering
//!
//! The paper's Figure 1 numbers the Moore neighbourhood 1–8 such that for a
//! *top* agent (moving toward higher rows) Cell #1 is the forward cell and
//! #2/#3 the forward diagonals, while for a *bottom* agent the forward cell
//! is #6 ("the first element of each row … Cell #1 for top placed agents
//! and Cell #6 for bottom placed", §IV.c). [`NEIGHBOR_OFFSETS`] fixes that
//! numbering (0-based: offset `k` is the paper's Cell #(k+1)):
//!
//! | k | paper # | (dr, dc) | top-group meaning | bottom-group meaning |
//! |---|---------|----------|-------------------|----------------------|
//! | 0 | 1 | (+1, 0) | forward | backward |
//! | 1 | 2 | (+1, −1) | forward-left | backward |
//! | 2 | 3 | (+1, +1) | forward-right | backward |
//! | 3 | 4 | (0, −1) | lateral | lateral |
//! | 4 | 5 | (0, +1) | lateral | lateral |
//! | 5 | 6 | (−1, 0) | backward | forward |
//! | 6 | 7 | (−1, −1) | backward | forward-left |
//! | 7 | 8 | (−1, +1) | backward | forward-right |

/// Empty cell label.
pub const CELL_EMPTY: u8 = 0;
/// Top-group pedestrian label.
pub const CELL_TOP: u8 = 1;
/// Bottom-group pedestrian label.
pub const CELL_BOTTOM: u8 = 2;
/// Permanently occupied label: the outside-the-environment halo fill and
/// interior obstacle cells (walls, pillars, doorway jambs).
pub const CELL_WALL: u8 = 255;

/// The eight Moore-neighbourhood offsets `(dr, dc)` in the paper's
/// Figure-1 order (see module docs).
pub const NEIGHBOR_OFFSETS: [(i64, i64); 8] = [
    (1, 0),
    (1, -1),
    (1, 1),
    (0, -1),
    (0, 1),
    (-1, 0),
    (-1, -1),
    (-1, 1),
];

/// Euclidean step length for each neighbour (the tour-length increments the
/// paper stores in constant memory, §IV.d).
pub const MOVE_LEN: [f32; 8] = [
    1.0,
    std::f32::consts::SQRT_2,
    std::f32::consts::SQRT_2,
    1.0,
    1.0,
    1.0,
    std::f32::consts::SQRT_2,
    std::f32::consts::SQRT_2,
];

/// One of the two pedestrian populations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Group {
    /// Spawns in the top rows; target is the bottom edge (higher rows).
    Top,
    /// Spawns in the bottom rows; target is the top edge (row 0).
    Bottom,
}

impl Group {
    /// The cell label of this group's agents.
    #[inline]
    pub const fn label(self) -> u8 {
        match self {
            Group::Top => CELL_TOP,
            Group::Bottom => CELL_BOTTOM,
        }
    }

    /// Group from a cell label (`None` for empty/wall).
    #[inline]
    pub const fn from_label(label: u8) -> Option<Group> {
        match label {
            CELL_TOP => Some(Group::Top),
            CELL_BOTTOM => Some(Group::Bottom),
            _ => None,
        }
    }

    /// The opposite group.
    #[inline]
    pub const fn opposite(self) -> Group {
        match self {
            Group::Top => Group::Bottom,
            Group::Bottom => Group::Top,
        }
    }

    /// Index of this group's *forward* neighbour in [`NEIGHBOR_OFFSETS`]
    /// (paper Cell #1 for top, Cell #6 for bottom).
    #[inline]
    pub const fn forward_index(self) -> usize {
        match self {
            Group::Top => 0,
            Group::Bottom => 5,
        }
    }

    /// Target row of this group (the far edge).
    #[inline]
    pub const fn target_row(self, height: usize) -> usize {
        match self {
            Group::Top => height - 1,
            Group::Bottom => 0,
        }
    }

    /// Signed forward direction along the row axis (+1 for top, −1 for
    /// bottom).
    #[inline]
    pub const fn forward_dr(self) -> i64 {
        match self {
            Group::Top => 1,
            Group::Bottom => -1,
        }
    }

    /// 0 for top, 1 for bottom — the index used to pick the pheromone half
    /// in the stacked dual tile.
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            Group::Top => 0,
            Group::Bottom => 1,
        }
    }

    /// This group's bit in a per-cell target-region bitmask (bit 0 top,
    /// bit 1 bottom).
    #[inline]
    pub const fn target_bit(self) -> u8 {
        1 << self.index()
    }

    /// Both groups.
    pub const BOTH: [Group; 2] = [Group::Top, Group::Bottom];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_roundtrip() {
        for g in Group::BOTH {
            assert_eq!(Group::from_label(g.label()), Some(g));
        }
        assert_eq!(Group::from_label(CELL_EMPTY), None);
        assert_eq!(Group::from_label(CELL_WALL), None);
    }

    #[test]
    fn forward_cells_match_paper() {
        // Paper §IV.c: first (least-distance) cell is #1 for top, #6 for bottom.
        assert_eq!(NEIGHBOR_OFFSETS[Group::Top.forward_index()], (1, 0));
        assert_eq!(NEIGHBOR_OFFSETS[Group::Bottom.forward_index()], (-1, 0));
    }

    #[test]
    fn offsets_are_the_moore_neighbourhood() {
        let mut set: Vec<_> = NEIGHBOR_OFFSETS.to_vec();
        set.sort_unstable();
        set.dedup();
        assert_eq!(set.len(), 8);
        assert!(!set.contains(&(0, 0)));
        assert!(set.iter().all(|&(r, c)| r.abs() <= 1 && c.abs() <= 1));
    }

    #[test]
    fn move_lengths_match_geometry() {
        for (k, &(dr, dc)) in NEIGHBOR_OFFSETS.iter().enumerate() {
            let expect = (((dr * dr) + (dc * dc)) as f32).sqrt();
            assert!((MOVE_LEN[k] - expect).abs() < 1e-6);
        }
    }

    #[test]
    fn targets_are_opposite_edges() {
        assert_eq!(Group::Top.target_row(480), 479);
        assert_eq!(Group::Bottom.target_row(480), 0);
        assert_eq!(Group::Top.opposite(), Group::Bottom);
    }
}
