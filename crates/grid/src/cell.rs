//! Cell labels, directional pedestrian groups, and the Figure-1
//! neighbourhood.
//!
//! The environment matrix stores one byte per cell: `0` empty, `g + 1` a
//! pedestrian of group `g` (the paper's two-stream special case uses `1`
//! top, `2` bottom, §IV.a — exactly labels `Group::TOP`/`Group::BOTTOM`
//! under the generalised scheme). The value [`CELL_WALL`] marks permanently
//! occupied cells: the halo fill outside the environment (so border agents
//! see the outside as unavailable) *and* interior obstacle cells placed by
//! `pedsim-scenario` — doorjambs, pillars, corridor walls. Both read
//! identically to the kernels: not empty, never a mover.
//!
//! ## Directional groups
//!
//! The paper hard-codes two opposing streams. This module generalises that
//! to up to [`MAX_GROUPS`] *directional groups*, each identified by a dense
//! index `0..n`: group `g` labels its agents `g + 1`, owns bit `g` of the
//! per-cell target bitmask, reads plane `g` of every per-group field
//! (pheromone, distance), and draws its placement RNG from stream
//! `u64::MAX - 1 - g`. Groups 0 and 1 reproduce the paper's top/bottom
//! streams bit for bit (same labels, same streams, same forward cells).
//!
//! A group's *travel direction* is a [`Heading`]; it selects the group's
//! forward neighbour slot (the tie-break anchor of flow-field routing and
//! the forward-priority cell of the row fast path). Headings are carried by
//! the distance field (`pedsim_grid::DistanceData::forward`), not by
//! [`Group`] itself — only the two classic corridor groups have an
//! intrinsic heading.
//!
//! ## Neighbour numbering
//!
//! The paper's Figure 1 numbers the Moore neighbourhood 1–8 such that for a
//! *top* agent (moving toward higher rows) Cell #1 is the forward cell and
//! #2/#3 the forward diagonals, while for a *bottom* agent the forward cell
//! is #6 ("the first element of each row … Cell #1 for top placed agents
//! and Cell #6 for bottom placed", §IV.c). [`NEIGHBOR_OFFSETS`] fixes that
//! numbering (0-based: offset `k` is the paper's Cell #(k+1)):
//!
//! | k | paper # | (dr, dc) | heading with this forward slot |
//! |---|---------|----------|--------------------------------|
//! | 0 | 1 | (+1, 0) | [`Heading::Down`] |
//! | 1 | 2 | (+1, −1) | |
//! | 2 | 3 | (+1, +1) | |
//! | 3 | 4 | (0, −1) | [`Heading::Left`] |
//! | 4 | 5 | (0, +1) | [`Heading::Right`] |
//! | 5 | 6 | (−1, 0) | [`Heading::Up`] |
//! | 6 | 7 | (−1, −1) | |
//! | 7 | 8 | (−1, +1) | |

/// Empty cell label.
pub const CELL_EMPTY: u8 = 0;
/// Group-0 ("top") pedestrian label — the paper's top stream.
pub const CELL_TOP: u8 = 1;
/// Group-1 ("bottom") pedestrian label — the paper's bottom stream.
pub const CELL_BOTTOM: u8 = 2;
/// Permanently occupied label: the outside-the-environment halo fill and
/// interior obstacle cells (walls, pillars, doorway jambs).
pub const CELL_WALL: u8 = 255;

/// Maximum directional groups a world may declare. Bounded by the u8
/// per-cell target bitmask (one bit per group); labels `1..=MAX_GROUPS`
/// stay far away from [`CELL_WALL`].
pub const MAX_GROUPS: usize = 8;

/// The eight Moore-neighbourhood offsets `(dr, dc)` in the paper's
/// Figure-1 order (see module docs).
pub const NEIGHBOR_OFFSETS: [(i64, i64); 8] = [
    (1, 0),
    (1, -1),
    (1, 1),
    (0, -1),
    (0, 1),
    (-1, 0),
    (-1, -1),
    (-1, 1),
];

/// Euclidean step length for each neighbour (the tour-length increments the
/// paper stores in constant memory, §IV.d).
pub const MOVE_LEN: [f32; 8] = [
    1.0,
    std::f32::consts::SQRT_2,
    std::f32::consts::SQRT_2,
    1.0,
    1.0,
    1.0,
    std::f32::consts::SQRT_2,
    std::f32::consts::SQRT_2,
];

/// A group's travel direction: which axis it walks and which way.
///
/// The heading determines the group's *forward* neighbour slot in
/// [`NEIGHBOR_OFFSETS`] — the cell the forward-priority rule steps into on
/// the row fast path, and the tie-break anchor of flow-field `front_k`
/// resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Heading {
    /// Toward higher rows (the paper's top group).
    Down,
    /// Toward row 0 (the paper's bottom group).
    Up,
    /// Toward higher columns.
    Right,
    /// Toward column 0.
    Left,
}

impl Heading {
    /// Index of this heading's forward neighbour in [`NEIGHBOR_OFFSETS`]
    /// (paper Cell #1 for down, #6 for up, #5 for right, #4 for left).
    #[inline]
    pub const fn forward_index(self) -> usize {
        match self {
            Heading::Down => 0,
            Heading::Up => 5,
            Heading::Right => 4,
            Heading::Left => 3,
        }
    }

    /// The forward step `(dr, dc)`.
    #[inline]
    pub const fn delta(self) -> (i64, i64) {
        NEIGHBOR_OFFSETS[self.forward_index()]
    }

    /// The heading whose forward displacement best matches `(dr, dc)`
    /// (dominant axis wins; row beats column on a tie — the corridor
    /// convention).
    pub fn from_delta(dr: f64, dc: f64) -> Heading {
        if dr.abs() >= dc.abs() {
            if dr >= 0.0 {
                Heading::Down
            } else {
                Heading::Up
            }
        } else if dc >= 0.0 {
            Heading::Right
        } else {
            Heading::Left
        }
    }
}

/// One directional pedestrian group, identified by a dense index
/// `0..`[`MAX_GROUPS`].
///
/// [`Group::TOP`] and [`Group::BOTTOM`] are the paper's two streams
/// (indices 0 and 1); worlds with more streams allocate further indices
/// via [`Group::new`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Group(u8);

impl Group {
    /// The paper's top stream (group 0, label 1, spawns in the top rows of
    /// the classic corridor).
    pub const TOP: Group = Group(0);
    /// The paper's bottom stream (group 1, label 2).
    pub const BOTTOM: Group = Group(1);

    /// The two classic corridor groups, in index order.
    pub const BOTH: [Group; 2] = [Group::TOP, Group::BOTTOM];

    /// Group with the given index (`index < MAX_GROUPS`).
    #[inline]
    pub const fn new(index: usize) -> Group {
        assert!(index < MAX_GROUPS, "group index out of range");
        Group(index as u8)
    }

    /// This group's dense index: its plane in every per-group field
    /// (pheromone, distance), its bit in the target mask, its slot in the
    /// placement-stream sequence.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The cell label of this group's agents (`index + 1`).
    #[inline]
    pub const fn label(self) -> u8 {
        self.0 + 1
    }

    /// Group from a cell label (`None` for empty/wall/out-of-range).
    #[inline]
    pub const fn from_label(label: u8) -> Option<Group> {
        if label >= 1 && label <= MAX_GROUPS as u8 {
            Some(Group(label - 1))
        } else {
            None
        }
    }

    /// This group's bit in a per-cell target-region bitmask (bit 0 top,
    /// bit 1 bottom, bit `g` for group `g`).
    #[inline]
    pub const fn target_bit(self) -> u8 {
        1 << self.0
    }

    /// The first `n` groups, in index order.
    #[inline]
    pub fn first_n(n: usize) -> impl Iterator<Item = Group> {
        assert!(n <= MAX_GROUPS, "group count exceeds MAX_GROUPS");
        (0..n).map(|i| Group(i as u8))
    }

    /// The opposite classic group (top ↔ bottom). Only meaningful for the
    /// two corridor groups; asserts on others.
    #[inline]
    pub const fn opposite(self) -> Group {
        assert!(self.0 < 2, "opposite() is a two-group corridor notion");
        Group(1 - self.0)
    }

    /// The classic corridor heading of this group (down for top, up for
    /// bottom). Only the two corridor groups have an intrinsic heading;
    /// asserts on others — multi-group worlds carry their headings in the
    /// distance field.
    #[inline]
    pub const fn heading(self) -> Heading {
        match self.0 {
            0 => Heading::Down,
            1 => Heading::Up,
            _ => panic!("only the two classic corridor groups have an intrinsic heading"),
        }
    }

    /// Index of this group's *forward* neighbour in [`NEIGHBOR_OFFSETS`]
    /// under the classic corridor convention (paper Cell #1 for top,
    /// Cell #6 for bottom). Two-group corridor only, like
    /// [`Group::heading`].
    #[inline]
    pub const fn forward_index(self) -> usize {
        self.heading().forward_index()
    }

    /// Target row of this group in the classic corridor (the far edge).
    /// Two-group corridor only.
    #[inline]
    pub const fn target_row(self, height: usize) -> usize {
        match self.heading() {
            Heading::Down => height - 1,
            _ => 0,
        }
    }

    /// Signed forward direction along the row axis (+1 for top, −1 for
    /// bottom). Two-group corridor only.
    #[inline]
    pub const fn forward_dr(self) -> i64 {
        self.heading().delta().0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_roundtrip() {
        for g in Group::first_n(MAX_GROUPS) {
            assert_eq!(Group::from_label(g.label()), Some(g));
            assert_eq!(g.label() as usize, g.index() + 1);
        }
        assert_eq!(Group::from_label(CELL_EMPTY), None);
        assert_eq!(Group::from_label(CELL_WALL), None);
        assert_eq!(Group::from_label(MAX_GROUPS as u8 + 1), None);
    }

    #[test]
    fn classic_labels_unchanged() {
        // The paper's two-stream labels are the generalised scheme's
        // groups 0 and 1 — the bit-identity anchor for legacy worlds.
        assert_eq!(Group::TOP.label(), CELL_TOP);
        assert_eq!(Group::BOTTOM.label(), CELL_BOTTOM);
        assert_eq!(Group::TOP.index(), 0);
        assert_eq!(Group::BOTTOM.index(), 1);
        assert_eq!(Group::TOP.target_bit(), 1);
        assert_eq!(Group::BOTTOM.target_bit(), 2);
    }

    #[test]
    fn forward_cells_match_paper() {
        // Paper §IV.c: first (least-distance) cell is #1 for top, #6 for bottom.
        assert_eq!(NEIGHBOR_OFFSETS[Group::TOP.forward_index()], (1, 0));
        assert_eq!(NEIGHBOR_OFFSETS[Group::BOTTOM.forward_index()], (-1, 0));
    }

    #[test]
    fn headings_cover_all_axes() {
        assert_eq!(Heading::Down.delta(), (1, 0));
        assert_eq!(Heading::Up.delta(), (-1, 0));
        assert_eq!(Heading::Right.delta(), (0, 1));
        assert_eq!(Heading::Left.delta(), (0, -1));
        let slots: Vec<usize> = [Heading::Down, Heading::Up, Heading::Right, Heading::Left]
            .iter()
            .map(|h| h.forward_index())
            .collect();
        assert_eq!(slots, vec![0, 5, 4, 3]);
    }

    #[test]
    fn heading_from_delta_picks_dominant_axis() {
        assert_eq!(Heading::from_delta(10.0, 3.0), Heading::Down);
        assert_eq!(Heading::from_delta(-10.0, 3.0), Heading::Up);
        assert_eq!(Heading::from_delta(2.0, 9.0), Heading::Right);
        assert_eq!(Heading::from_delta(2.0, -9.0), Heading::Left);
        // Row beats column on a tie (corridor convention).
        assert_eq!(Heading::from_delta(5.0, 5.0), Heading::Down);
    }

    #[test]
    fn offsets_are_the_moore_neighbourhood() {
        let mut set: Vec<_> = NEIGHBOR_OFFSETS.to_vec();
        set.sort_unstable();
        set.dedup();
        assert_eq!(set.len(), 8);
        assert!(!set.contains(&(0, 0)));
        assert!(set.iter().all(|&(r, c)| r.abs() <= 1 && c.abs() <= 1));
    }

    #[test]
    fn move_lengths_match_geometry() {
        for (k, &(dr, dc)) in NEIGHBOR_OFFSETS.iter().enumerate() {
            let expect = (((dr * dr) + (dc * dc)) as f32).sqrt();
            assert!((MOVE_LEN[k] - expect).abs() < 1e-6);
        }
    }

    #[test]
    fn targets_are_opposite_edges() {
        assert_eq!(Group::TOP.target_row(480), 479);
        assert_eq!(Group::BOTTOM.target_row(480), 0);
        assert_eq!(Group::TOP.opposite(), Group::BOTTOM);
    }

    #[test]
    #[should_panic(expected = "intrinsic heading")]
    fn extra_groups_have_no_intrinsic_heading() {
        let _ = Group::new(2).heading();
    }
}
