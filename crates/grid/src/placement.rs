//! Random confined placement (§III: "Initially the agents on both sides of
//! the environment are placed randomly but kept confined to the pre-defined
//! number of rows").

use philox::StreamRng;

use crate::cell::{Group, CELL_EMPTY};
use crate::matrix::Matrix;
use crate::property::PropertyTable;

/// Place `count` agents of `group` uniformly at random into the group's
/// spawn band (`spawn_rows` rows at the group's own edge), assigning agent
/// indices `first_index..first_index + count`.
///
/// Uses a partial Fisher–Yates shuffle over the band's cells, so placement
/// is uniform over all `C(band, count)` configurations and deterministic in
/// the RNG stream.
///
/// Panics if the band cannot hold `count` agents or any band cell is
/// already occupied.
#[allow(clippy::too_many_arguments)]
pub fn place_confined(
    mat: &mut Matrix<u8>,
    index: &mut Matrix<u32>,
    props: &mut PropertyTable,
    group: Group,
    count: usize,
    spawn_rows: usize,
    first_index: u32,
    rng: &mut StreamRng,
) {
    let width = mat.width();
    let height = mat.height();
    assert!(spawn_rows <= height / 2, "spawn bands must not overlap");
    let capacity = spawn_rows * width;
    assert!(
        count <= capacity,
        "cannot place {count} agents in a band of {capacity} cells"
    );

    assert!(
        group.index() < 2,
        "band placement is a two-group corridor notion; scenario worlds \
         place through place_in_cells"
    );
    let row0 = if group == Group::TOP {
        0
    } else {
        height - spawn_rows
    };

    // Band cells as (r, c) in row-major order — the enumeration order is
    // part of the deterministic placement contract.
    let cells: Vec<(u16, u16)> = (row0..row0 + spawn_rows)
        .flat_map(|r| (0..width).map(move |c| (r as u16, c as u16)))
        .collect();
    place_in_cells(
        mat,
        index,
        props,
        group.label(),
        cells,
        count,
        first_index,
        rng,
    );
}

/// Place `count` agents with `label` uniformly at random among `cells`
/// (given in a caller-fixed order), assigning indices
/// `first_index..first_index + count` — the region-general form of
/// [`place_confined`] used by scenario spawn regions.
///
/// Uses a partial Fisher–Yates shuffle over `cells`, so placement is
/// uniform over all `C(cells, count)` configurations and deterministic in
/// the RNG stream *and* the cell order.
///
/// Panics if `cells` cannot hold `count` agents or any chosen cell is
/// already occupied (spawn regions must be empty — in particular, disjoint
/// from walls and from other groups' regions).
#[allow(clippy::too_many_arguments)]
pub fn place_in_cells(
    mat: &mut Matrix<u8>,
    index: &mut Matrix<u32>,
    props: &mut PropertyTable,
    label: u8,
    mut cells: Vec<(u16, u16)>,
    count: usize,
    first_index: u32,
    rng: &mut StreamRng,
) {
    let capacity = cells.len();
    assert!(
        count <= capacity,
        "cannot place {count} agents in a region of {capacity} cells"
    );
    for i in 0..count {
        let j = i + rng.bounded_u32((capacity - i) as u32) as usize;
        cells.swap(i, j);
    }
    for (k, &(r, c)) in cells[..count].iter().enumerate() {
        let idx = first_index + k as u32;
        assert_eq!(
            mat.get(r as usize, c as usize),
            CELL_EMPTY,
            "spawn cell ({r},{c}) already occupied"
        );
        mat.set(r as usize, c as usize, label);
        index.set(r as usize, c as usize, idx);
        props.place(idx as usize, label, r, c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{CELL_BOTTOM, CELL_TOP};

    fn setup(n: usize) -> (Matrix<u8>, Matrix<u32>, PropertyTable) {
        (
            Matrix::filled(32, 16, CELL_EMPTY),
            Matrix::filled(32, 16, 0u32),
            PropertyTable::new(n),
        )
    }

    #[test]
    fn places_exact_count_in_band() {
        let (mut mat, mut index, mut props) = setup(20);
        let mut rng = StreamRng::new(1, 0);
        place_confined(
            &mut mat,
            &mut index,
            &mut props,
            Group::TOP,
            20,
            3,
            1,
            &mut rng,
        );
        assert_eq!(mat.count(CELL_TOP), 20);
        // Confined to rows 0..3.
        for (r, _, v) in mat.iter_cells() {
            if v == CELL_TOP {
                assert!(r < 3);
            }
        }
    }

    #[test]
    fn bottom_band_is_at_far_edge() {
        let (mut mat, mut index, mut props) = setup(10);
        let mut rng = StreamRng::new(2, 0);
        place_confined(
            &mut mat,
            &mut index,
            &mut props,
            Group::BOTTOM,
            10,
            2,
            1,
            &mut rng,
        );
        for (r, _, v) in mat.iter_cells() {
            if v == CELL_BOTTOM {
                assert!(r >= 30);
            }
        }
    }

    #[test]
    fn index_and_props_consistent() {
        let (mut mat, mut index, mut props) = setup(12);
        let mut rng = StreamRng::new(3, 0);
        place_confined(
            &mut mat,
            &mut index,
            &mut props,
            Group::TOP,
            12,
            2,
            1,
            &mut rng,
        );
        for (r, c, v) in index.iter_cells() {
            if v != 0 {
                assert_eq!(props.position(v as usize), (r as u16, c as u16));
                assert_eq!(props.id[v as usize], mat.get(r, c));
            }
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let (mut m1, mut i1, mut p1) = setup(15);
        let (mut m2, mut i2, mut p2) = setup(15);
        place_confined(
            &mut m1,
            &mut i1,
            &mut p1,
            Group::TOP,
            15,
            3,
            1,
            &mut StreamRng::new(7, 0),
        );
        place_confined(
            &mut m2,
            &mut i2,
            &mut p2,
            Group::TOP,
            15,
            3,
            1,
            &mut StreamRng::new(7, 0),
        );
        assert_eq!(m1, m2);
        assert_eq!(p1, p2);
    }

    #[test]
    fn full_band_fills_every_cell() {
        let (mut mat, mut index, mut props) = setup(48);
        let mut rng = StreamRng::new(5, 0);
        place_confined(
            &mut mat,
            &mut index,
            &mut props,
            Group::TOP,
            48,
            3,
            1,
            &mut rng,
        );
        for r in 0..3 {
            for c in 0..16 {
                assert_eq!(mat.get(r, c), CELL_TOP);
            }
        }
    }

    #[test]
    fn region_form_matches_band_form_exactly() {
        // The scenario path must reproduce the legacy band placement bit
        // for bit when handed the same cells in the same order.
        let (mut m1, mut i1, mut p1) = setup(15);
        let (mut m2, mut i2, mut p2) = setup(15);
        place_confined(
            &mut m1,
            &mut i1,
            &mut p1,
            Group::TOP,
            15,
            3,
            1,
            &mut StreamRng::new(9, 4),
        );
        let band: Vec<(u16, u16)> = (0..3u16)
            .flat_map(|r| (0..16u16).map(move |c| (r, c)))
            .collect();
        place_in_cells(
            &mut m2,
            &mut i2,
            &mut p2,
            Group::TOP.label(),
            band,
            15,
            1,
            &mut StreamRng::new(9, 4),
        );
        assert_eq!(m1, m2);
        assert_eq!(i1, i2);
        assert_eq!(p1, p2);
    }

    #[test]
    fn region_placement_confined_to_cells() {
        let (mut mat, mut index, mut props) = setup(6);
        // An L-shaped region.
        let region = vec![
            (5u16, 5u16),
            (5, 6),
            (6, 5),
            (7, 5),
            (8, 5),
            (9, 9),
            (2, 11),
        ];
        let mut rng = StreamRng::new(4, 0);
        place_in_cells(
            &mut mat,
            &mut index,
            &mut props,
            CELL_TOP,
            region.clone(),
            6,
            1,
            &mut rng,
        );
        assert_eq!(mat.count(CELL_TOP), 6);
        for (r, c, v) in mat.iter_cells() {
            if v == CELL_TOP {
                assert!(region.contains(&(r as u16, c as u16)), "({r},{c})");
            }
        }
    }

    #[test]
    #[should_panic(expected = "cannot place")]
    fn overfull_band_rejected() {
        let (mut mat, mut index, mut props) = setup(49);
        let mut rng = StreamRng::new(5, 0);
        place_confined(
            &mut mat,
            &mut index,
            &mut props,
            Group::TOP,
            49,
            3,
            1,
            &mut rng,
        );
    }
}
