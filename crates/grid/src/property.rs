//! The per-agent property table (paper Table I, §IV.a).
//!
//! The paper stores one row per pedestrian plus a 0th sentinel row "to
//! avoid warp divergence within the simulation steps": threads assigned to
//! empty cells read index 0 from the index matrix and harmlessly operate on
//! row 0 instead of branching. The same convention is kept here.
//!
//! The layout is struct-of-arrays rather than the paper's array-of-rows:
//! each simulation kernel then reads and writes *disjoint* field vectors
//! (e.g. the movement kernel reads `future_*` and writes `row`/`col`),
//! which is what lets the Rust engines run the kernels in parallel without
//! locks. The paper's EMPTY column (unused) is dropped; its INDEX NO column
//! is implicit (an agent's index *is* its row number).

/// Sentinel for "no future cell chosen" in `future_row`/`future_col`.
///
/// The paper initialises FUTURE ROW/COLUMN to 0, which is ambiguous with
/// the real cell (0,0); a `u16::MAX` sentinel removes the ambiguity.
pub const NO_FUTURE: u16 = u16::MAX;

/// Struct-of-arrays agent records; index 0 is the sentinel row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropertyTable {
    /// Group label (1 top, 2 bottom); 0 in the sentinel row.
    pub id: Vec<u8>,
    /// Current row per agent.
    pub row: Vec<u16>,
    /// Current column per agent.
    pub col: Vec<u16>,
    /// Chosen next row ([`NO_FUTURE`] when none).
    pub future_row: Vec<u16>,
    /// Chosen next column ([`NO_FUTURE`] when none).
    pub future_col: Vec<u16>,
    /// Contents of the agent's front cell, refreshed each step
    /// (the Table-I FRONT CELL field).
    pub front: Vec<u8>,
    /// Which neighbour slot (0–7) is the agent's front cell this step: the
    /// distance-argmin neighbour. For the paper's row-distance corridor
    /// this is always the group's row-forward cell; flow-field worlds
    /// point it downhill around obstacles.
    pub front_k: Vec<u8>,
}

impl PropertyTable {
    /// A table for `n_agents` agents (rows `1..=n_agents` live, row 0
    /// sentinel).
    pub fn new(n_agents: usize) -> Self {
        let n = n_agents + 1;
        Self {
            id: vec![0; n],
            row: vec![0; n],
            col: vec![0; n],
            future_row: vec![NO_FUTURE; n],
            future_col: vec![NO_FUTURE; n],
            front: vec![0; n],
            front_k: vec![0; n],
        }
    }

    /// Number of live agents (excludes the sentinel row).
    #[inline]
    pub fn agent_count(&self) -> usize {
        self.id.len() - 1
    }

    /// Total rows including the sentinel.
    #[inline]
    pub fn rows(&self) -> usize {
        self.id.len()
    }

    /// Register agent `idx` (1-based) at `(r, c)` with `label`.
    pub fn place(&mut self, idx: usize, label: u8, r: u16, c: u16) {
        debug_assert!(idx >= 1 && idx < self.rows(), "agent index out of range");
        self.id[idx] = label;
        self.row[idx] = r;
        self.col[idx] = c;
        self.future_row[idx] = NO_FUTURE;
        self.future_col[idx] = NO_FUTURE;
        self.front[idx] = 0;
        self.front_k[idx] = 0;
    }

    /// Current position of agent `idx`.
    #[inline]
    pub fn position(&self, idx: usize) -> (u16, u16) {
        (self.row[idx], self.col[idx])
    }

    /// Whether agent `idx` has a pending future cell.
    #[inline]
    pub fn has_future(&self, idx: usize) -> bool {
        self.future_row[idx] != NO_FUTURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sentinel_row_exists() {
        let t = PropertyTable::new(10);
        assert_eq!(t.rows(), 11);
        assert_eq!(t.agent_count(), 10);
        assert_eq!(t.id[0], 0);
    }

    #[test]
    fn place_and_query() {
        let mut t = PropertyTable::new(3);
        t.place(2, 1, 5, 7);
        assert_eq!(t.position(2), (5, 7));
        assert_eq!(t.id[2], 1);
        assert!(!t.has_future(2));
        t.future_row[2] = 6;
        t.future_col[2] = 7;
        assert!(t.has_future(2));
    }
}
